#!/usr/bin/env bash
# Proves the Thread-Safety Analysis wiring actually rejects an unlocked
# access to a guarded field:
#   pass 1: ci/tsa_negative.cc compiles cleanly (annotations are valid);
#   pass 2: with -DHORIZON_TSA_NEGATIVE_TEST the same file MUST fail with
#           a -Wthread-safety diagnostic.
# Requires clang++ (gcc has no thread-safety analysis).
set -u
cd "$(dirname "$0")/.."

CXX="${CXX:-clang++}"
if ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "check_tsa_negative: $CXX is not clang; skipping (analysis is clang-only)" >&2
  exit 0
fi

FLAGS=(-std=c++20 -fsyntax-only -Isrc -Wthread-safety -Werror=thread-safety)

if ! "$CXX" "${FLAGS[@]}" ci/tsa_negative.cc; then
  echo "FAIL: tsa_negative.cc must compile cleanly without the define" >&2
  exit 1
fi

if out=$("$CXX" "${FLAGS[@]}" -DHORIZON_TSA_NEGATIVE_TEST ci/tsa_negative.cc 2>&1); then
  echo "FAIL: the deliberately unlocked access compiled -- thread-safety" >&2
  echo "      analysis is not guarding HORIZON_GUARDED_BY fields" >&2
  exit 1
fi
if ! grep -q "thread-safety" <<<"$out"; then
  echo "FAIL: compile failed, but not with a -Wthread-safety diagnostic:" >&2
  echo "$out" >&2
  exit 1
fi

echo "OK: unlocked guarded access fails the clang build as intended"
