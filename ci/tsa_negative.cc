// Compile-fail probe for the Thread-Safety Analysis wiring.
//
// Built twice by ci/check_tsa_negative.sh with clang:
//   1. without -DHORIZON_TSA_NEGATIVE_TEST: must compile cleanly under
//      -Wthread-safety -Werror=thread-safety (the locked path is fine);
//   2. with    -DHORIZON_TSA_NEGATIVE_TEST: adds a deliberately unlocked
//      access to a HORIZON_GUARDED_BY field, and the build MUST fail.
// If (2) ever compiles, the annotation layer has silently stopped
// guarding anything (e.g. annotations.h degraded to no-ops under clang),
// which is exactly the regression this check exists to catch.
//
// Not part of any CMake target: gcc builds never see this file.
#include "common/annotations.h"

namespace {

class GuardedCounter {
 public:
  void Increment() {
    horizon::MutexLock lock(mu_);
    ++value_;
  }

  int UnlockedRead() {
#ifdef HORIZON_TSA_NEGATIVE_TEST
    return value_;  // BAD: guarded read without mu_ -- must not compile
#else
    horizon::MutexLock lock(mu_);
    return value_;
#endif
  }

 private:
  horizon::Mutex mu_;
  int value_ HORIZON_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  GuardedCounter counter;
  counter.Increment();
  return counter.UnlockedRead() == 1 ? 0 : 1;
}
