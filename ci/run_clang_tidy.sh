#!/usr/bin/env bash
# Tree-wide clang-tidy at zero warnings.
#
# Runs clang-tidy (the curated profile in .clang-tidy) over every
# first-party translation unit in src/, tools/, bench/, and examples/
# with --warnings-as-errors=* so a single finding fails the job.
#
# Reuses an existing compilation database when the named build dir has
# one (the top-level CMakeLists exports compile_commands.json on every
# configure), so the regular `build/` dir serves tidy, the analyzer's
# libclang backend, and compilation alike.  Configures only when the
# database is missing.
#
# Usage: ci/run_clang_tidy.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: $TIDY not found; install clang-tidy or set CLANG_TIDY" >&2
  exit 1
fi

BUILD_DIR="${1:-build}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_CXX_COMPILER="${CXX:-clang++}" \
      >/dev/null
fi

# First-party sources only: generated/third-party code (gtest, benchmark)
# lives outside these roots, and the tests are covered by the compilers'
# own -Werror builds rather than tidy.
mapfile -t sources < <(git ls-files 'src/**/*.cc' 'tools/*.cc' 'bench/*.cc' 'examples/*.cpp')
if [ "${#sources[@]}" -eq 0 ]; then
  echo "run_clang_tidy: no sources found (run from the repo root?)" >&2
  exit 1
fi

# run-clang-tidy (the parallel driver) is not always installed next to
# clang-tidy; fall back to xargs-parallel direct invocation.
jobs="$(nproc 2>/dev/null || echo 4)"
echo "run_clang_tidy: ${#sources[@]} translation units, -j${jobs}"
printf '%s\n' "${sources[@]}" | xargs -P "$jobs" -n 4 \
    "$TIDY" -p "$BUILD_DIR" --quiet --warnings-as-errors='*'

echo "run_clang_tidy: clean"
