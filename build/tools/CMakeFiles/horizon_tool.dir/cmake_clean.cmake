file(REMOVE_RECURSE
  "CMakeFiles/horizon_tool.dir/horizon_tool.cc.o"
  "CMakeFiles/horizon_tool.dir/horizon_tool.cc.o.d"
  "horizon_tool"
  "horizon_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizon_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
