# Empty dependencies file for horizon_tool.
# This may be replaced when dependencies are built.
