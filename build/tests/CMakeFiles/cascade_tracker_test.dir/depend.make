# Empty dependencies file for cascade_tracker_test.
# This may be replaced when dependencies are built.
