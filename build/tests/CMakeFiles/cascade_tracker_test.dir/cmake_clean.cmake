file(REMOVE_RECURSE
  "CMakeFiles/cascade_tracker_test.dir/cascade_tracker_test.cc.o"
  "CMakeFiles/cascade_tracker_test.dir/cascade_tracker_test.cc.o.d"
  "cascade_tracker_test"
  "cascade_tracker_test.pdb"
  "cascade_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascade_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
