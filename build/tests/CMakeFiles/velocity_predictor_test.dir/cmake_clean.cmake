file(REMOVE_RECURSE
  "CMakeFiles/velocity_predictor_test.dir/velocity_predictor_test.cc.o"
  "CMakeFiles/velocity_predictor_test.dir/velocity_predictor_test.cc.o.d"
  "velocity_predictor_test"
  "velocity_predictor_test.pdb"
  "velocity_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/velocity_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
