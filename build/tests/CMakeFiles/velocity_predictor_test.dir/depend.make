# Empty dependencies file for velocity_predictor_test.
# This may be replaced when dependencies are built.
