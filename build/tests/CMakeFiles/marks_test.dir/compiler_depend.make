# Empty compiler generated dependencies file for marks_test.
# This may be replaced when dependencies are built.
