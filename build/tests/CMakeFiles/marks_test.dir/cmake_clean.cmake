file(REMOVE_RECURSE
  "CMakeFiles/marks_test.dir/marks_test.cc.o"
  "CMakeFiles/marks_test.dir/marks_test.cc.o.d"
  "marks_test"
  "marks_test.pdb"
  "marks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
