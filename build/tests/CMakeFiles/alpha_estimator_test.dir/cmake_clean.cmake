file(REMOVE_RECURSE
  "CMakeFiles/alpha_estimator_test.dir/alpha_estimator_test.cc.o"
  "CMakeFiles/alpha_estimator_test.dir/alpha_estimator_test.cc.o.d"
  "alpha_estimator_test"
  "alpha_estimator_test.pdb"
  "alpha_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
