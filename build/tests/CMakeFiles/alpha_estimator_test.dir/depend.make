# Empty dependencies file for alpha_estimator_test.
# This may be replaced when dependencies are built.
