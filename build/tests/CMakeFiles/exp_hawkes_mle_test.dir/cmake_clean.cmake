file(REMOVE_RECURSE
  "CMakeFiles/exp_hawkes_mle_test.dir/exp_hawkes_mle_test.cc.o"
  "CMakeFiles/exp_hawkes_mle_test.dir/exp_hawkes_mle_test.cc.o.d"
  "exp_hawkes_mle_test"
  "exp_hawkes_mle_test.pdb"
  "exp_hawkes_mle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_hawkes_mle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
