# Empty compiler generated dependencies file for exp_hawkes_mle_test.
# This may be replaced when dependencies are built.
