file(REMOVE_RECURSE
  "CMakeFiles/hawkes_predictor_test.dir/hawkes_predictor_test.cc.o"
  "CMakeFiles/hawkes_predictor_test.dir/hawkes_predictor_test.cc.o.d"
  "hawkes_predictor_test"
  "hawkes_predictor_test.pdb"
  "hawkes_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawkes_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
