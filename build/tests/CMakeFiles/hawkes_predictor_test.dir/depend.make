# Empty dependencies file for hawkes_predictor_test.
# This may be replaced when dependencies are built.
