# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hwk_serialization_test.
