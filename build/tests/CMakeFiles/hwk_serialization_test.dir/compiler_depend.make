# Empty compiler generated dependencies file for hwk_serialization_test.
# This may be replaced when dependencies are built.
