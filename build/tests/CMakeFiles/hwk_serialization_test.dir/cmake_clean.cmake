file(REMOVE_RECURSE
  "CMakeFiles/hwk_serialization_test.dir/hwk_serialization_test.cc.o"
  "CMakeFiles/hwk_serialization_test.dir/hwk_serialization_test.cc.o.d"
  "hwk_serialization_test"
  "hwk_serialization_test.pdb"
  "hwk_serialization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwk_serialization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
