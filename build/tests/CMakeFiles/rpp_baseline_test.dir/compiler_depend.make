# Empty compiler generated dependencies file for rpp_baseline_test.
# This may be replaced when dependencies are built.
