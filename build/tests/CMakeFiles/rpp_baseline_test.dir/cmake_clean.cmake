file(REMOVE_RECURSE
  "CMakeFiles/rpp_baseline_test.dir/rpp_baseline_test.cc.o"
  "CMakeFiles/rpp_baseline_test.dir/rpp_baseline_test.cc.o.d"
  "rpp_baseline_test"
  "rpp_baseline_test.pdb"
  "rpp_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpp_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
