# Empty compiler generated dependencies file for seismic_test.
# This may be replaced when dependencies are built.
