file(REMOVE_RECURSE
  "CMakeFiles/seismic_test.dir/seismic_test.cc.o"
  "CMakeFiles/seismic_test.dir/seismic_test.cc.o.d"
  "seismic_test"
  "seismic_test.pdb"
  "seismic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seismic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
