# Empty dependencies file for rpp_process_test.
# This may be replaced when dependencies are built.
