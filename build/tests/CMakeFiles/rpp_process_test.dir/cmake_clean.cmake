file(REMOVE_RECURSE
  "CMakeFiles/rpp_process_test.dir/rpp_process_test.cc.o"
  "CMakeFiles/rpp_process_test.dir/rpp_process_test.cc.o.d"
  "rpp_process_test"
  "rpp_process_test.pdb"
  "rpp_process_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpp_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
