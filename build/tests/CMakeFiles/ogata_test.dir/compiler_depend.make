# Empty compiler generated dependencies file for ogata_test.
# This may be replaced when dependencies are built.
