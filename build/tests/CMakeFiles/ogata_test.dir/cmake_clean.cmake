file(REMOVE_RECURSE
  "CMakeFiles/ogata_test.dir/ogata_test.cc.o"
  "CMakeFiles/ogata_test.dir/ogata_test.cc.o.d"
  "ogata_test"
  "ogata_test.pdb"
  "ogata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ogata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
