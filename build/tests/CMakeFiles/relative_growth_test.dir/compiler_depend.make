# Empty compiler generated dependencies file for relative_growth_test.
# This may be replaced when dependencies are built.
