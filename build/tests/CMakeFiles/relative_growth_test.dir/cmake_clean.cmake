file(REMOVE_RECURSE
  "CMakeFiles/relative_growth_test.dir/relative_growth_test.cc.o"
  "CMakeFiles/relative_growth_test.dir/relative_growth_test.cc.o.d"
  "relative_growth_test"
  "relative_growth_test.pdb"
  "relative_growth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relative_growth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
