file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_arbitrary_horizons.dir/bench_fig1_arbitrary_horizons.cc.o"
  "CMakeFiles/bench_fig1_arbitrary_horizons.dir/bench_fig1_arbitrary_horizons.cc.o.d"
  "bench_fig1_arbitrary_horizons"
  "bench_fig1_arbitrary_horizons.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_arbitrary_horizons.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
