# Empty compiler generated dependencies file for bench_fig1_arbitrary_horizons.
# This may be replaced when dependencies are built.
