file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_truncation.dir/bench_extension_truncation.cc.o"
  "CMakeFiles/bench_extension_truncation.dir/bench_extension_truncation.cc.o.d"
  "bench_extension_truncation"
  "bench_extension_truncation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_truncation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
