# Empty dependencies file for bench_extension_truncation.
# This may be replaced when dependencies are built.
