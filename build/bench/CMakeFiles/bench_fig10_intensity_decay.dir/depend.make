# Empty dependencies file for bench_fig10_intensity_decay.
# This may be replaced when dependencies are built.
