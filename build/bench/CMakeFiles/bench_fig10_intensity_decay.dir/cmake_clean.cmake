file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_intensity_decay.dir/bench_fig10_intensity_decay.cc.o"
  "CMakeFiles/bench_fig10_intensity_decay.dir/bench_fig10_intensity_decay.cc.o.d"
  "bench_fig10_intensity_decay"
  "bench_fig10_intensity_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_intensity_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
