# Empty dependencies file for bench_fig11_delta_star_sensitivity.
# This may be replaced when dependencies are built.
