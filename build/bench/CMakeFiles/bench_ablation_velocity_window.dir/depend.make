# Empty dependencies file for bench_ablation_velocity_window.
# This may be replaced when dependencies are built.
