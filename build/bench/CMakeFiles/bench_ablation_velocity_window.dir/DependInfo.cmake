
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_velocity_window.cc" "bench/CMakeFiles/bench_ablation_velocity_window.dir/bench_ablation_velocity_window.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_velocity_window.dir/bench_ablation_velocity_window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/horizon_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/horizon_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/horizon_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/horizon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gbdt/CMakeFiles/horizon_gbdt.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/horizon_features.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/horizon_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/horizon_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/pointprocess/CMakeFiles/horizon_pointprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/horizon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
