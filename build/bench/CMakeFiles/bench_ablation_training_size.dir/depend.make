# Empty dependencies file for bench_ablation_training_size.
# This may be replaced when dependencies are built.
