file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_conformal.dir/bench_extension_conformal.cc.o"
  "CMakeFiles/bench_extension_conformal.dir/bench_extension_conformal.cc.o.d"
  "bench_extension_conformal"
  "bench_extension_conformal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_conformal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
