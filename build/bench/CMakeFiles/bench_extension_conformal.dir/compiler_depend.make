# Empty compiler generated dependencies file for bench_extension_conformal.
# This may be replaced when dependencies are built.
