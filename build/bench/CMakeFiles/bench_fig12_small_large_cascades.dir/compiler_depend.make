# Empty compiler generated dependencies file for bench_fig12_small_large_cascades.
# This may be replaced when dependencies are built.
