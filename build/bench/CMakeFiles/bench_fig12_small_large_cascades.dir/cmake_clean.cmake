file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_small_large_cascades.dir/bench_fig12_small_large_cascades.cc.o"
  "CMakeFiles/bench_fig12_small_large_cascades.dir/bench_fig12_small_large_cascades.cc.o.d"
  "bench_fig12_small_large_cascades"
  "bench_fig12_small_large_cascades.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_small_large_cascades.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
