file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_reshare_depth.dir/bench_fig5_reshare_depth.cc.o"
  "CMakeFiles/bench_fig5_reshare_depth.dir/bench_fig5_reshare_depth.cc.o.d"
  "bench_fig5_reshare_depth"
  "bench_fig5_reshare_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_reshare_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
