# Empty dependencies file for bench_fig7_alpha_vs_size.
# This may be replaced when dependencies are built.
