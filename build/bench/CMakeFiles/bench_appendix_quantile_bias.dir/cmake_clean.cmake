file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_quantile_bias.dir/bench_appendix_quantile_bias.cc.o"
  "CMakeFiles/bench_appendix_quantile_bias.dir/bench_appendix_quantile_bias.cc.o.d"
  "bench_appendix_quantile_bias"
  "bench_appendix_quantile_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_quantile_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
