# Empty compiler generated dependencies file for bench_appendix_quantile_bias.
# This may be replaced when dependencies are built.
