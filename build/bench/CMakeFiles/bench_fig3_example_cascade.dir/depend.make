# Empty dependencies file for bench_fig3_example_cascade.
# This may be replaced when dependencies are built.
