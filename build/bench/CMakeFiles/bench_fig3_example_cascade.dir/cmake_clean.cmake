file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_example_cascade.dir/bench_fig3_example_cascade.cc.o"
  "CMakeFiles/bench_fig3_example_cascade.dir/bench_fig3_example_cascade.cc.o.d"
  "bench_fig3_example_cascade"
  "bench_fig3_example_cascade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_example_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
