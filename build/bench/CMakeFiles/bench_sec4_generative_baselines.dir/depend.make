# Empty dependencies file for bench_sec4_generative_baselines.
# This may be replaced when dependencies are built.
