file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_generative_baselines.dir/bench_sec4_generative_baselines.cc.o"
  "CMakeFiles/bench_sec4_generative_baselines.dir/bench_sec4_generative_baselines.cc.o.d"
  "bench_sec4_generative_baselines"
  "bench_sec4_generative_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_generative_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
