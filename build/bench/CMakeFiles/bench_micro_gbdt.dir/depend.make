# Empty dependencies file for bench_micro_gbdt.
# This may be replaced when dependencies are built.
