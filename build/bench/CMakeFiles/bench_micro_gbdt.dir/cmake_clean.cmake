file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_gbdt.dir/bench_micro_gbdt.cc.o"
  "CMakeFiles/bench_micro_gbdt.dir/bench_micro_gbdt.cc.o.d"
  "bench_micro_gbdt"
  "bench_micro_gbdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
