# Empty dependencies file for bench_fig2_computation_cost.
# This may be replaced when dependencies are built.
