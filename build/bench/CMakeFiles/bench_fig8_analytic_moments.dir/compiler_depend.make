# Empty compiler generated dependencies file for bench_fig8_analytic_moments.
# This may be replaced when dependencies are built.
