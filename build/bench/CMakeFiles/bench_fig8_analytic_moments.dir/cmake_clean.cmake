file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_analytic_moments.dir/bench_fig8_analytic_moments.cc.o"
  "CMakeFiles/bench_fig8_analytic_moments.dir/bench_fig8_analytic_moments.cc.o.d"
  "bench_fig8_analytic_moments"
  "bench_fig8_analytic_moments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_analytic_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
