file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_infinite_horizon.dir/bench_table1_infinite_horizon.cc.o"
  "CMakeFiles/bench_table1_infinite_horizon.dir/bench_table1_infinite_horizon.cc.o.d"
  "bench_table1_infinite_horizon"
  "bench_table1_infinite_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_infinite_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
