# Empty dependencies file for bench_table1_infinite_horizon.
# This may be replaced when dependencies are built.
