file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_cascade_properties.dir/bench_fig9_cascade_properties.cc.o"
  "CMakeFiles/bench_fig9_cascade_properties.dir/bench_fig9_cascade_properties.cc.o.d"
  "bench_fig9_cascade_properties"
  "bench_fig9_cascade_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_cascade_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
