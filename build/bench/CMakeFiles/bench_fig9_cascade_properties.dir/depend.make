# Empty dependencies file for bench_fig9_cascade_properties.
# This may be replaced when dependencies are built.
