# Empty dependencies file for bench_micro_stream.
# This may be replaced when dependencies are built.
