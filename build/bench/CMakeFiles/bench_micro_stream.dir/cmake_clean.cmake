file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_stream.dir/bench_micro_stream.cc.o"
  "CMakeFiles/bench_micro_stream.dir/bench_micro_stream.cc.o.d"
  "bench_micro_stream"
  "bench_micro_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
