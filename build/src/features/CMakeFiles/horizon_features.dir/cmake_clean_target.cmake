file(REMOVE_RECURSE
  "libhorizon_features.a"
)
