# Empty dependencies file for horizon_features.
# This may be replaced when dependencies are built.
