
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/extractor.cc" "src/features/CMakeFiles/horizon_features.dir/extractor.cc.o" "gcc" "src/features/CMakeFiles/horizon_features.dir/extractor.cc.o.d"
  "/root/repo/src/features/schema.cc" "src/features/CMakeFiles/horizon_features.dir/schema.cc.o" "gcc" "src/features/CMakeFiles/horizon_features.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/horizon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/horizon_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/horizon_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/pointprocess/CMakeFiles/horizon_pointprocess.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
