file(REMOVE_RECURSE
  "CMakeFiles/horizon_features.dir/extractor.cc.o"
  "CMakeFiles/horizon_features.dir/extractor.cc.o.d"
  "CMakeFiles/horizon_features.dir/schema.cc.o"
  "CMakeFiles/horizon_features.dir/schema.cc.o.d"
  "libhorizon_features.a"
  "libhorizon_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizon_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
