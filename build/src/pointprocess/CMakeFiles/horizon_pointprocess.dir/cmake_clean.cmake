file(REMOVE_RECURSE
  "CMakeFiles/horizon_pointprocess.dir/exp_hawkes.cc.o"
  "CMakeFiles/horizon_pointprocess.dir/exp_hawkes.cc.o.d"
  "CMakeFiles/horizon_pointprocess.dir/exp_hawkes_mle.cc.o"
  "CMakeFiles/horizon_pointprocess.dir/exp_hawkes_mle.cc.o.d"
  "CMakeFiles/horizon_pointprocess.dir/kernels.cc.o"
  "CMakeFiles/horizon_pointprocess.dir/kernels.cc.o.d"
  "CMakeFiles/horizon_pointprocess.dir/marks.cc.o"
  "CMakeFiles/horizon_pointprocess.dir/marks.cc.o.d"
  "CMakeFiles/horizon_pointprocess.dir/rpp_process.cc.o"
  "CMakeFiles/horizon_pointprocess.dir/rpp_process.cc.o.d"
  "CMakeFiles/horizon_pointprocess.dir/transform.cc.o"
  "CMakeFiles/horizon_pointprocess.dir/transform.cc.o.d"
  "libhorizon_pointprocess.a"
  "libhorizon_pointprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizon_pointprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
