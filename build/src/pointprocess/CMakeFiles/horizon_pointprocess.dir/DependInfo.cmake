
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pointprocess/exp_hawkes.cc" "src/pointprocess/CMakeFiles/horizon_pointprocess.dir/exp_hawkes.cc.o" "gcc" "src/pointprocess/CMakeFiles/horizon_pointprocess.dir/exp_hawkes.cc.o.d"
  "/root/repo/src/pointprocess/exp_hawkes_mle.cc" "src/pointprocess/CMakeFiles/horizon_pointprocess.dir/exp_hawkes_mle.cc.o" "gcc" "src/pointprocess/CMakeFiles/horizon_pointprocess.dir/exp_hawkes_mle.cc.o.d"
  "/root/repo/src/pointprocess/kernels.cc" "src/pointprocess/CMakeFiles/horizon_pointprocess.dir/kernels.cc.o" "gcc" "src/pointprocess/CMakeFiles/horizon_pointprocess.dir/kernels.cc.o.d"
  "/root/repo/src/pointprocess/marks.cc" "src/pointprocess/CMakeFiles/horizon_pointprocess.dir/marks.cc.o" "gcc" "src/pointprocess/CMakeFiles/horizon_pointprocess.dir/marks.cc.o.d"
  "/root/repo/src/pointprocess/rpp_process.cc" "src/pointprocess/CMakeFiles/horizon_pointprocess.dir/rpp_process.cc.o" "gcc" "src/pointprocess/CMakeFiles/horizon_pointprocess.dir/rpp_process.cc.o.d"
  "/root/repo/src/pointprocess/transform.cc" "src/pointprocess/CMakeFiles/horizon_pointprocess.dir/transform.cc.o" "gcc" "src/pointprocess/CMakeFiles/horizon_pointprocess.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/horizon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
