file(REMOVE_RECURSE
  "libhorizon_pointprocess.a"
)
