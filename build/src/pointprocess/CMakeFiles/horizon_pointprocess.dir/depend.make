# Empty dependencies file for horizon_pointprocess.
# This may be replaced when dependencies are built.
