file(REMOVE_RECURSE
  "CMakeFiles/horizon_eval.dir/experiment.cc.o"
  "CMakeFiles/horizon_eval.dir/experiment.cc.o.d"
  "CMakeFiles/horizon_eval.dir/importance.cc.o"
  "CMakeFiles/horizon_eval.dir/importance.cc.o.d"
  "CMakeFiles/horizon_eval.dir/metrics.cc.o"
  "CMakeFiles/horizon_eval.dir/metrics.cc.o.d"
  "CMakeFiles/horizon_eval.dir/split.cc.o"
  "CMakeFiles/horizon_eval.dir/split.cc.o.d"
  "libhorizon_eval.a"
  "libhorizon_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizon_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
