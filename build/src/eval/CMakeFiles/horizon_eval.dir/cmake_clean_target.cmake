file(REMOVE_RECURSE
  "libhorizon_eval.a"
)
