# Empty dependencies file for horizon_eval.
# This may be replaced when dependencies are built.
