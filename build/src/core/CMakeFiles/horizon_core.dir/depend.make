# Empty dependencies file for horizon_core.
# This may be replaced when dependencies are built.
