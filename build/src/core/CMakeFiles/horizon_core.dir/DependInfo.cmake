
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alpha_estimator.cc" "src/core/CMakeFiles/horizon_core.dir/alpha_estimator.cc.o" "gcc" "src/core/CMakeFiles/horizon_core.dir/alpha_estimator.cc.o.d"
  "/root/repo/src/core/conformal.cc" "src/core/CMakeFiles/horizon_core.dir/conformal.cc.o" "gcc" "src/core/CMakeFiles/horizon_core.dir/conformal.cc.o.d"
  "/root/repo/src/core/hawkes_predictor.cc" "src/core/CMakeFiles/horizon_core.dir/hawkes_predictor.cc.o" "gcc" "src/core/CMakeFiles/horizon_core.dir/hawkes_predictor.cc.o.d"
  "/root/repo/src/core/relative_growth.cc" "src/core/CMakeFiles/horizon_core.dir/relative_growth.cc.o" "gcc" "src/core/CMakeFiles/horizon_core.dir/relative_growth.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/horizon_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/horizon_core.dir/trainer.cc.o.d"
  "/root/repo/src/core/velocity_predictor.cc" "src/core/CMakeFiles/horizon_core.dir/velocity_predictor.cc.o" "gcc" "src/core/CMakeFiles/horizon_core.dir/velocity_predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/horizon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/horizon_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/gbdt/CMakeFiles/horizon_gbdt.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/horizon_features.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/horizon_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/pointprocess/CMakeFiles/horizon_pointprocess.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
