file(REMOVE_RECURSE
  "libhorizon_core.a"
)
