file(REMOVE_RECURSE
  "CMakeFiles/horizon_core.dir/alpha_estimator.cc.o"
  "CMakeFiles/horizon_core.dir/alpha_estimator.cc.o.d"
  "CMakeFiles/horizon_core.dir/conformal.cc.o"
  "CMakeFiles/horizon_core.dir/conformal.cc.o.d"
  "CMakeFiles/horizon_core.dir/hawkes_predictor.cc.o"
  "CMakeFiles/horizon_core.dir/hawkes_predictor.cc.o.d"
  "CMakeFiles/horizon_core.dir/relative_growth.cc.o"
  "CMakeFiles/horizon_core.dir/relative_growth.cc.o.d"
  "CMakeFiles/horizon_core.dir/trainer.cc.o"
  "CMakeFiles/horizon_core.dir/trainer.cc.o.d"
  "CMakeFiles/horizon_core.dir/velocity_predictor.cc.o"
  "CMakeFiles/horizon_core.dir/velocity_predictor.cc.o.d"
  "libhorizon_core.a"
  "libhorizon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
