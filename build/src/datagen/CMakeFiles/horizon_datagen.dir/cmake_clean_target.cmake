file(REMOVE_RECURSE
  "libhorizon_datagen.a"
)
