# Empty dependencies file for horizon_datagen.
# This may be replaced when dependencies are built.
