file(REMOVE_RECURSE
  "CMakeFiles/horizon_datagen.dir/event_stream.cc.o"
  "CMakeFiles/horizon_datagen.dir/event_stream.cc.o.d"
  "CMakeFiles/horizon_datagen.dir/generator.cc.o"
  "CMakeFiles/horizon_datagen.dir/generator.cc.o.d"
  "CMakeFiles/horizon_datagen.dir/io.cc.o"
  "CMakeFiles/horizon_datagen.dir/io.cc.o.d"
  "libhorizon_datagen.a"
  "libhorizon_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizon_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
