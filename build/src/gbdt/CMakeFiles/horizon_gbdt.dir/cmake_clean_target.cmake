file(REMOVE_RECURSE
  "libhorizon_gbdt.a"
)
