file(REMOVE_RECURSE
  "CMakeFiles/horizon_gbdt.dir/dataset.cc.o"
  "CMakeFiles/horizon_gbdt.dir/dataset.cc.o.d"
  "CMakeFiles/horizon_gbdt.dir/gbdt.cc.o"
  "CMakeFiles/horizon_gbdt.dir/gbdt.cc.o.d"
  "CMakeFiles/horizon_gbdt.dir/tree.cc.o"
  "CMakeFiles/horizon_gbdt.dir/tree.cc.o.d"
  "libhorizon_gbdt.a"
  "libhorizon_gbdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizon_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
