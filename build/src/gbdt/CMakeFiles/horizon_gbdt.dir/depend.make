# Empty dependencies file for horizon_gbdt.
# This may be replaced when dependencies are built.
