# Empty compiler generated dependencies file for horizon_serving.
# This may be replaced when dependencies are built.
