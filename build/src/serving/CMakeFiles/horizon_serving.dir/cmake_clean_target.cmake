file(REMOVE_RECURSE
  "libhorizon_serving.a"
)
