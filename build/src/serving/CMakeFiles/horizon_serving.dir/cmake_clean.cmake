file(REMOVE_RECURSE
  "CMakeFiles/horizon_serving.dir/prediction_service.cc.o"
  "CMakeFiles/horizon_serving.dir/prediction_service.cc.o.d"
  "libhorizon_serving.a"
  "libhorizon_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizon_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
