file(REMOVE_RECURSE
  "CMakeFiles/horizon_common.dir/math_util.cc.o"
  "CMakeFiles/horizon_common.dir/math_util.cc.o.d"
  "CMakeFiles/horizon_common.dir/rng.cc.o"
  "CMakeFiles/horizon_common.dir/rng.cc.o.d"
  "CMakeFiles/horizon_common.dir/table.cc.o"
  "CMakeFiles/horizon_common.dir/table.cc.o.d"
  "CMakeFiles/horizon_common.dir/units.cc.o"
  "CMakeFiles/horizon_common.dir/units.cc.o.d"
  "libhorizon_common.a"
  "libhorizon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
