file(REMOVE_RECURSE
  "libhorizon_common.a"
)
