# Empty compiler generated dependencies file for horizon_common.
# This may be replaced when dependencies are built.
