file(REMOVE_RECURSE
  "CMakeFiles/horizon_stream.dir/cascade_tracker.cc.o"
  "CMakeFiles/horizon_stream.dir/cascade_tracker.cc.o.d"
  "CMakeFiles/horizon_stream.dir/exponential_histogram.cc.o"
  "CMakeFiles/horizon_stream.dir/exponential_histogram.cc.o.d"
  "CMakeFiles/horizon_stream.dir/sliding_window.cc.o"
  "CMakeFiles/horizon_stream.dir/sliding_window.cc.o.d"
  "libhorizon_stream.a"
  "libhorizon_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizon_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
