
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/cascade_tracker.cc" "src/stream/CMakeFiles/horizon_stream.dir/cascade_tracker.cc.o" "gcc" "src/stream/CMakeFiles/horizon_stream.dir/cascade_tracker.cc.o.d"
  "/root/repo/src/stream/exponential_histogram.cc" "src/stream/CMakeFiles/horizon_stream.dir/exponential_histogram.cc.o" "gcc" "src/stream/CMakeFiles/horizon_stream.dir/exponential_histogram.cc.o.d"
  "/root/repo/src/stream/sliding_window.cc" "src/stream/CMakeFiles/horizon_stream.dir/sliding_window.cc.o" "gcc" "src/stream/CMakeFiles/horizon_stream.dir/sliding_window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/horizon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
