file(REMOVE_RECURSE
  "libhorizon_stream.a"
)
