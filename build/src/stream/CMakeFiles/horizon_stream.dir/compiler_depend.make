# Empty compiler generated dependencies file for horizon_stream.
# This may be replaced when dependencies are built.
