file(REMOVE_RECURSE
  "libhorizon_baselines.a"
)
