# Empty compiler generated dependencies file for horizon_baselines.
# This may be replaced when dependencies are built.
