
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/feature_models.cc" "src/baselines/CMakeFiles/horizon_baselines.dir/feature_models.cc.o" "gcc" "src/baselines/CMakeFiles/horizon_baselines.dir/feature_models.cc.o.d"
  "/root/repo/src/baselines/hip.cc" "src/baselines/CMakeFiles/horizon_baselines.dir/hip.cc.o" "gcc" "src/baselines/CMakeFiles/horizon_baselines.dir/hip.cc.o.d"
  "/root/repo/src/baselines/rpp.cc" "src/baselines/CMakeFiles/horizon_baselines.dir/rpp.cc.o" "gcc" "src/baselines/CMakeFiles/horizon_baselines.dir/rpp.cc.o.d"
  "/root/repo/src/baselines/seismic.cc" "src/baselines/CMakeFiles/horizon_baselines.dir/seismic.cc.o" "gcc" "src/baselines/CMakeFiles/horizon_baselines.dir/seismic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/horizon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pointprocess/CMakeFiles/horizon_pointprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/gbdt/CMakeFiles/horizon_gbdt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
