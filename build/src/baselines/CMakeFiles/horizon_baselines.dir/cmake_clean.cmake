file(REMOVE_RECURSE
  "CMakeFiles/horizon_baselines.dir/feature_models.cc.o"
  "CMakeFiles/horizon_baselines.dir/feature_models.cc.o.d"
  "CMakeFiles/horizon_baselines.dir/hip.cc.o"
  "CMakeFiles/horizon_baselines.dir/hip.cc.o.d"
  "CMakeFiles/horizon_baselines.dir/rpp.cc.o"
  "CMakeFiles/horizon_baselines.dir/rpp.cc.o.d"
  "CMakeFiles/horizon_baselines.dir/seismic.cc.o"
  "CMakeFiles/horizon_baselines.dir/seismic.cc.o.d"
  "libhorizon_baselines.a"
  "libhorizon_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/horizon_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
