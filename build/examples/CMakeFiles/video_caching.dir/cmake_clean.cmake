file(REMOVE_RECURSE
  "CMakeFiles/video_caching.dir/video_caching.cpp.o"
  "CMakeFiles/video_caching.dir/video_caching.cpp.o.d"
  "video_caching"
  "video_caching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_caching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
