# Empty dependencies file for video_caching.
# This may be replaced when dependencies are built.
