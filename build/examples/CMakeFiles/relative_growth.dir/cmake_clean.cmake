file(REMOVE_RECURSE
  "CMakeFiles/relative_growth.dir/relative_growth.cpp.o"
  "CMakeFiles/relative_growth.dir/relative_growth.cpp.o.d"
  "relative_growth"
  "relative_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relative_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
