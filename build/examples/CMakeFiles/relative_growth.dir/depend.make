# Empty dependencies file for relative_growth.
# This may be replaced when dependencies are built.
