// Extension bench for the Sec. 1 claim: "In cases where content is
// removed ... cascades are truncated ... Such truncated cascades are also
// unusable as training data in fixed or infinite horizon models."
//
// We censor a fraction of training cascades at random removal ages and
// compare how much usable training signal each model family retains, and
// what that does to test accuracy at a long horizon (4d):
//   * PB@4d needs the full (s, s+4d] window observed -> loses most
//     truncated examples;
//   * HWK trains its reference predictors at shorter delta* (6h here) and
//     its alpha regressor from whatever tail is observed -> keeps most.
#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/feature_models.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/hawkes_predictor.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace {

using namespace horizon;

// Subset of an example set by example indices.
struct SubSet {
  gbdt::DataMatrix x;
  std::vector<double> targets;
  std::vector<double> alpha_targets;
};

SubSet Subset(const core::ExampleSet& set, const std::vector<double>& targets,
              const std::vector<size_t>& keep) {
  SubSet out;
  out.x = gbdt::DataMatrix(0, 0);
  for (size_t i : keep) {
    std::vector<float> row(set.x.Row(i), set.x.Row(i) + set.x.num_features());
    out.x.AppendRow(row);
    out.targets.push_back(targets[i]);
    out.alpha_targets.push_back(set.alpha_targets[i]);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Extension: training with truncated (removed) cascades -- the "
              "Sec. 1 claim.\n\n");

  const double kShortRef = 6 * kHour;   // HWK reference horizon
  const double kEvalHorizon = 4 * kDay; // evaluation & PB horizon

  eval::ExperimentConfig config;
  config.examples.reference_horizons = {kShortRef, kEvalHorizon};
  eval::ExperimentData data = eval::PrepareExperiment(config);
  const auto truth = eval::TrueCounts(data.dataset, data.test, kEvalHorizon);

  Table table({"truncated frac", "HWK usable", "PB@4d usable", "HWK MAPE",
               "PB@4d MAPE", "HWK tau", "PB@4d tau"});

  for (double truncated_fraction : {0.0, 0.3, 0.6, 0.9}) {
    // Assign removal ages to a fraction of TRAINING cascades (log-uniform
    // between 6h and 4d -- content removed within its active life).
    Rng rng(777);
    std::vector<double> removal_age(data.dataset.cascades.size(), 1e300);
    for (size_t ci : data.split.train) {
      if (rng.Bernoulli(truncated_fraction)) {
        removal_age[ci] =
            std::exp(rng.Uniform(std::log(6 * kHour), std::log(4 * kDay)));
      }
    }

    // Usability filters per model family.  An example (cascade ci,
    // prediction age s) is usable for a target horizon h iff the target
    // window [s, s+h] is fully observed: s + h <= removal_age.
    std::vector<size_t> hwk_keep, pb_keep;
    for (size_t i = 0; i < data.train.size(); ++i) {
      const auto& ref = data.train.refs[i];
      const double removal = removal_age[ref.cascade_index];
      if (ref.prediction_age + kShortRef <= removal) hwk_keep.push_back(i);
      if (ref.prediction_age + kEvalHorizon <= removal) pb_keep.push_back(i);
    }
    if (hwk_keep.size() < 50 || pb_keep.size() < 50) {
      std::printf("truncated frac %.1f: too few usable examples, skipping\n",
                  truncated_fraction);
      continue;
    }

    // HWK trained at the short reference only (its alpha targets came from
    // the observed tail; with removal they are computed from the censored
    // prefix, which the estimators tolerate).
    const SubSet hwk_data = Subset(data.train, data.train.log1p_increments[0],
                                   hwk_keep);
    core::HawkesPredictorParams params;
    params.reference_horizons = {kShortRef};
    params.gbdt_count = eval::BenchGbdtParams();
    params.gbdt_alpha = eval::BenchGbdtParams();
    core::HawkesPredictor hwk(params);
    hwk.Fit(hwk_data.x, {hwk_data.targets}, hwk_data.alpha_targets);

    const SubSet pb_data = Subset(data.train, data.train.log1p_increments[1],
                                  pb_keep);
    baselines::PointBasedModels pb(eval::BenchGbdtParams());
    pb.Fit(pb_data.x, {kEvalHorizon}, {pb_data.targets});

    std::vector<double> hwk_pred(data.test.size()), pb_pred(data.test.size());
    for (size_t i = 0; i < data.test.size(); ++i) {
      hwk_pred[i] = data.test.refs[i].n_s +
                    hwk.PredictIncrement(data.test.x.Row(i), kEvalHorizon);
      pb_pred[i] = data.test.refs[i].n_s +
                   pb.PredictIncrement(data.test.x.Row(i), kEvalHorizon);
    }
    const auto hm = eval::ComputeMetrics(hwk_pred, truth);
    const auto pm = eval::ComputeMetrics(pb_pred, truth);
    table.AddRow({Table::Num(truncated_fraction, 2), std::to_string(hwk_keep.size()),
                  std::to_string(pb_keep.size()), Table::Num(hm.median_ape, 3),
                  Table::Num(pm.median_ape, 3), Table::Num(hm.kendall_tau, 3),
                  Table::Num(pm.kendall_tau, 3)});
  }
  table.Print("Training under content-removal truncation (eval at 4d)");
  table.WriteCsv("extension_truncation.csv");

  std::printf("Shape to check: as truncation grows, the per-horizon PB@4d model "
              "loses most\nof its usable training examples and degrades, while "
              "HWK keeps training from\nshort-reference targets -- the Sec. 1 "
              "argument for reference-horizon models.\n");
  return 0;
}
