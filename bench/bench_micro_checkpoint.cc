// Micro-benchmark (google-benchmark): checkpoint/restore latency of the
// serving stack as a function of the live-item count.
//
// Measures PredictionService::Checkpoint (shard-parallel snapshot +
// CRC-framed atomic writes) and Restore (CRC verification + re-shard) at
// 256 / 1k / 4k live items, plus the per-item CascadeTracker serialization
// round trip that dominates the blob cost.  Checkpoints are written to a
// scratch directory under TMPDIR.
//
// Unless --benchmark_out is given, results are also written to
// BENCH_checkpoint.json (google-benchmark JSON format).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "core/trainer.h"
#include "serving/prediction_service.h"

namespace {

using namespace horizon;

/// Dataset + trained model shared by every benchmark (built once).
struct Env {
  datagen::SyntheticDataset dataset;
  features::FeatureExtractor extractor{stream::TrackerConfig{}};
  core::HawkesPredictor model;

  Env()
      : dataset([] {
          datagen::GeneratorConfig config;
          config.num_pages = 30;
          config.num_posts = 200;
          config.base_mean_size = 60.0;
          config.seed = 91;
          return datagen::Generator(config).Generate();
        }()),
        model([] {
          core::HawkesPredictorParams params;
          params.reference_horizons = {1 * kDay};
          params.gbdt_count.num_trees = 40;
          params.gbdt_alpha.num_trees = 40;
          return params;
        }()) {
    std::vector<size_t> indices;
    for (size_t i = 0; i < dataset.cascades.size(); ++i) indices.push_back(i);
    core::ExampleSetOptions options;
    options.reference_horizons = {1 * kDay};
    const auto examples =
        core::BuildExampleSet(dataset, indices, extractor, options);
    model.Fit(examples.x, examples.log1p_increments, examples.alpha_targets);
  }
};

Env& GetEnv() {
  static Env* env = new Env();
  return *env;
}

std::string ScratchDir() {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/horizon_bench_checkpoint";
}

/// Registers `items` items, each fed up to 50 view events.
serving::PredictionService* MakeLoadedService(int64_t items) {
  Env& env = GetEnv();
  auto* service = new serving::PredictionService(&env.model, &env.extractor,
                                                 serving::ServiceConfig{});
  for (int64_t id = 0; id < items; ++id) {
    const auto& cascade =
        env.dataset.cascades[static_cast<size_t>(id) % env.dataset.cascades.size()];
    // Setup over generated data; ids are unique so registration cannot fail.
    (void)service->RegisterItem(id, 0.0, env.dataset.PageOf(cascade.post),
                                cascade.post);
    size_t fed = 0;
    for (const auto& e : cascade.views) {
      if (e.time >= 6 * kHour || fed >= 50) break;
      (void)service->Ingest(id, stream::EngagementType::kView, e.time);
      ++fed;
    }
  }
  return service;
}

// -- Checkpoint latency vs live-item count.

void BM_Checkpoint(benchmark::State& state) {
  serving::PredictionService* service = MakeLoadedService(state.range(0));
  const std::string dir = ScratchDir();
  io::RemoveTree(dir);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->Checkpoint(dir));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  io::RemoveTree(dir);
  delete service;
}
BENCHMARK(BM_Checkpoint)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// -- Restore latency vs live-item count.

void BM_Restore(benchmark::State& state) {
  Env& env = GetEnv();
  serving::PredictionService* source = MakeLoadedService(state.range(0));
  const std::string dir = ScratchDir();
  io::RemoveTree(dir);
  if (!source->Checkpoint(dir)) {
    state.SkipWithError("checkpoint failed");
    delete source;
    return;
  }
  serving::PredictionService target(&env.model, &env.extractor,
                                    serving::ServiceConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(target.Restore(dir));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  io::RemoveTree(dir);
  delete source;
}
BENCHMARK(BM_Restore)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// -- Per-item tracker serialization round trip (the blob hot path).

void BM_TrackerSerializeRoundTrip(benchmark::State& state) {
  Env& env = GetEnv();
  const auto& cascade = env.dataset.cascades[0];
  stream::CascadeTracker tracker(0.0, stream::TrackerConfig{});
  size_t fed = 0;
  for (const auto& e : cascade.views) {
    if (fed >= 200) break;
    tracker.Observe(stream::EngagementType::kView, e.time);
    ++fed;
  }
  stream::CascadeTracker restored(0.0, stream::TrackerConfig{});
  for (auto _ : state) {
    const std::string blob = tracker.Serialize();
    benchmark::DoNotOptimize(restored.Deserialize(blob));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackerSerializeRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  // Default to emitting BENCH_checkpoint.json unless the caller already
  // directs the report elsewhere.
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  static char out_flag[] = "--benchmark_out=BENCH_checkpoint.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int argc_adj = static_cast<int>(args.size());
  benchmark::Initialize(&argc_adj, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc_adj, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
