// Micro-benchmark (google-benchmark): the stream substrate.  DGIM
// exponential-histogram Add/Count vs the exact sliding window, plus the
// memory footprint that makes O(1)-state tracking feasible per item.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "stream/cascade_tracker.h"
#include "stream/exponential_histogram.h"
#include "stream/sliding_window.h"

namespace {

using namespace horizon;
using namespace horizon::stream;

void BM_ExponentialHistogramAdd(benchmark::State& state) {
  const double epsilon = 1.0 / static_cast<double>(state.range(0));
  ExponentialHistogram hist(3600.0, epsilon);
  double t = 0.0;
  Rng rng(1);
  for (auto _ : state) {
    t += rng.Exponential(1.0);
    hist.Add(t);
  }
  state.counters["buckets"] = static_cast<double>(hist.NumBuckets());
}
BENCHMARK(BM_ExponentialHistogramAdd)->Arg(2)->Arg(10)->Arg(100);

void BM_ExactSlidingWindowAdd(benchmark::State& state) {
  ExactSlidingWindow window(3600.0);
  double t = 0.0;
  Rng rng(1);
  for (auto _ : state) {
    t += rng.Exponential(1.0);
    window.Add(t);
    if ((window.TotalCount() & 1023) == 0) {
      benchmark::DoNotOptimize(window.Count(t));
    }
  }
  state.counters["mem_events"] = static_cast<double>(window.MemoryEvents());
}
BENCHMARK(BM_ExactSlidingWindowAdd);

void BM_ExponentialHistogramCount(benchmark::State& state) {
  ExponentialHistogram hist(3600.0, 0.1);
  double t = 0.0;
  Rng rng(2);
  for (int i = 0; i < 100000; ++i) {
    t += rng.Exponential(2.0);
    hist.Add(t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.Count(t));
  }
}
BENCHMARK(BM_ExponentialHistogramCount);

void BM_CascadeTrackerObserve(benchmark::State& state) {
  CascadeTracker tracker(0.0, TrackerConfig{});
  double t = 0.0;
  Rng rng(3);
  for (auto _ : state) {
    t += rng.Exponential(0.5);
    tracker.Observe(EngagementType::kView, t);
  }
}
BENCHMARK(BM_CascadeTrackerObserve);

void BM_CascadeTrackerSnapshot(benchmark::State& state) {
  CascadeTracker tracker(0.0, TrackerConfig{});
  double t = 0.0;
  Rng rng(4);
  for (int i = 0; i < state.range(0); ++i) {
    t += rng.Exponential(0.5);
    tracker.Observe(EngagementType::kView, t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.Snapshot(t));
  }
  // The point of the data structure: snapshot cost must be flat in the
  // number of observed events (compare across /1000 /100000).
}
BENCHMARK(BM_CascadeTrackerSnapshot)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
