// Figure 8 (Appendix A.8): conditional expected value (top) and
// conditional variance (bottom) of the count increment as functions of
// time, for lambda(s)/alpha = 1 and beta = 1, 2, 4.  Each analytic curve
// is cross-checked with a Monte-Carlo estimate at a few time points.
//
// NOTE: the variance uses the corrected closed form (see exp_hawkes.h);
// the paper's printed Prop. A.2 contains an algebra slip.  The qualitative
// shape the figure shows -- variance rising to a peak-ish transient and
// converging to a finite limit -- is preserved.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "pointprocess/exp_hawkes.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Reproduction of Figure 8 (Appendix A.8): analytic conditional "
              "moments, lambda(s)/alpha = 1.\n\n");

  const double rho1 = 0.5;
  const std::vector<double> betas = {1.0, 2.0, 4.0};

  Table mean_table({"t", "E (beta=1)", "E (beta=2)", "E (beta=4)"});
  Table var_table({"t", "Var (beta=1)", "Var (beta=2)", "Var (beta=4)"});

  for (double t = 0.25; t <= 8.0; t += 0.25) {
    std::vector<std::string> mean_row = {Table::Num(t, 3)};
    std::vector<std::string> var_row = {Table::Num(t, 3)};
    for (double beta : betas) {
      const double alpha = beta * (1.0 - rho1);
      const double lambda_s = alpha;  // lambda(s)/alpha = 1
      const double rho2 = rho1 * rho1;  // constant marks in this figure
      mean_row.push_back(
          Table::Num(pp::ConditionalMeanIncrement(lambda_s, alpha, t), 4));
      var_row.push_back(Table::Num(
          pp::ConditionalVarianceIncrement(lambda_s, beta, rho1, rho2, t), 4));
    }
    mean_table.AddRow(mean_row);
    var_table.AddRow(var_row);
  }
  mean_table.Print("Figure 8 (top): conditional expected increment");
  mean_table.WriteCsv("fig8_mean.csv");
  var_table.Print("Figure 8 (bottom): conditional variance of the increment");
  var_table.WriteCsv("fig8_var.csv");

  // Monte-Carlo cross-check at a few points for beta = 2.
  {
    const double beta = 2.0, alpha = beta * (1.0 - rho1);
    pp::ExpHawkesParams params;
    params.beta = beta;
    params.lambda0 = alpha;
    params.marks = std::make_shared<pp::ConstantMark>(rho1);
    Rng rng(7);
    Table mc({"t", "analytic E", "MC E", "analytic Var", "MC Var"});
    for (double t : {0.5, 1.0, 2.0, 4.0}) {
      RunningStats stats;
      pp::SimulateOptions options;
      options.horizon = t;
      for (int rep = 0; rep < 20000; ++rep) {
        stats.Add(static_cast<double>(pp::SimulateExpHawkes(params, options, rng).size()));
      }
      mc.AddRow({Table::Num(t, 3),
                 Table::Num(pp::ConditionalMeanIncrement(params.lambda0, alpha, t), 4),
                 Table::Num(stats.mean(), 4),
                 Table::Num(pp::ConditionalVarianceIncrement(params.lambda0, beta,
                                                             rho1, rho1 * rho1, t),
                            4),
                 Table::Num(stats.variance(), 4)});
    }
    mc.Print("Monte-Carlo cross-check (beta = 2, 20000 runs per point)");
    mc.WriteCsv("fig8_mc.csv");
  }

  std::printf("Paper shape to check: mean saturates at 1 with rate alpha; "
              "variance transient\nthen converges to the Eq.-20-style limit; "
              "larger beta converges faster.\n");
  return 0;
}
