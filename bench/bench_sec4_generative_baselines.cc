// Section 4 of the paper discusses the per-item computation cost and
// accuracy profile of four generative approaches: RPP, SEISMIC, HIP, and
// MLE-fitted exponential-kernel Hawkes.  This bench puts all four (plus
// the proposed feature-based HWK model) on the same footing: infinite-
// horizon accuracy and per-item prediction cost on a common test set.
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "baselines/hip.h"
#include "baselines/rpp.h"
#include "baselines/seismic.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/hawkes_predictor.h"
#include "core/velocity_predictor.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "pointprocess/exp_hawkes.h"
#include "pointprocess/exp_hawkes_mle.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Sec. 4 discussion: generative per-item models vs the feature-based "
              "Hawkes model.\n\n");

  eval::ExperimentConfig config;
  config.generator.num_posts = 1500;
  eval::ExperimentData data = eval::PrepareExperiment(config);

  core::HawkesPredictorParams hwk_params;
  hwk_params.reference_horizons = config.examples.reference_horizons;
  hwk_params.gbdt_count = eval::BenchGbdtParams();
  hwk_params.gbdt_alpha = eval::BenchGbdtParams();
  core::HawkesPredictor hwk(hwk_params);
  hwk.Fit(data.train.x, data.train.log1p_increments, data.train.alpha_targets);

  baselines::SeismicCf seismic;
  baselines::RppModel rpp;
  baselines::HipModel hip;

  const double inf = std::numeric_limits<double>::infinity();
  // Cap the evaluation subset: the per-item fitters are the bottleneck.
  const size_t max_items = 400;

  struct Row {
    std::string name;
    std::vector<double> pred, truth;
    double seconds = 0.0;
    size_t n = 0;
  };
  Row rows[6] = {{"HWK (6h,1d,4d)", {}, {}, 0.0, 0},
                 {"Velocity (training-free)", {}, {}, 0.0, 0},
                 {"SEISMIC-CF", {}, {}, 0.0, 0},
                 {"RPP (MLE/item)", {}, {}, 0.0, 0},
                 {"HIP (LSQ/item)", {}, {}, 0.0, 0},
                 {"Hawkes exp (MLE/item)", {}, {}, 0.0, 0}};
  core::VelocityHawkesPredictor velocity;
  const stream::TrackerConfig tracker_config = config.tracker;

  const auto truth_all = eval::TrueCounts(data.dataset, data.test, inf);
  size_t used = 0;
  for (size_t i = 0; i < data.test.size() && used < max_items; i += 2) {
    const auto& ref = data.test.refs[i];
    const auto& cascade = data.dataset.cascades[ref.cascade_index];
    std::vector<double> times;
    for (const auto& e : cascade.views) {
      if (e.time >= ref.prediction_age) break;
      times.push_back(e.time);
    }
    if (times.size() < 5) continue;
    ++used;
    const double truth = truth_all[i];
    const double s = ref.prediction_age;

    {
      Timer t;
      const double pred = ref.n_s + hwk.PredictFinalIncrement(data.test.x.Row(i));
      rows[0].seconds += t.ElapsedSeconds();
      rows[0].pred.push_back(pred);
      rows[0].truth.push_back(truth);
    }
    {
      // Training-free velocity predictor: O(1)-state tracker replay (the
      // replay itself is ingest cost, not prediction cost; only the final
      // query is timed).
      stream::CascadeTracker tracker(0.0, tracker_config);
      for (double time : times) {
        tracker.Observe(stream::EngagementType::kView, time);
      }
      const auto snapshot = tracker.Snapshot(s);
      Timer t;
      const double pred = ref.n_s + velocity.PredictIncrement(snapshot, inf);
      rows[1].seconds += t.ElapsedSeconds();
      rows[1].pred.push_back(pred);
      rows[1].truth.push_back(truth);
    }
    {
      Timer t;
      const double pred = seismic.PredictFinal(times, s);
      rows[2].seconds += t.ElapsedSeconds();
      rows[2].pred.push_back(pred);
      rows[2].truth.push_back(truth);
    }
    {
      Timer t;
      const auto fit = rpp.Fit(times, s);
      const double pred = ref.n_s + rpp.PredictIncrement(fit, ref.n_s, s, inf);
      rows[3].seconds += t.ElapsedSeconds();
      if (fit.ok) {
        rows[3].pred.push_back(pred);
        rows[3].truth.push_back(truth);
      }
    }
    {
      Timer t;
      const auto fit = hip.Fit(times, s);
      const double pred = ref.n_s + hip.PredictIncrement(fit, times, s, inf);
      rows[4].seconds += t.ElapsedSeconds();
      if (fit.ok) {
        rows[4].pred.push_back(pred);
        rows[4].truth.push_back(truth);
      }
    }
    {
      Timer t;
      const auto fit = pp::FitExpHawkesMle(times, s);
      double pred = truth;  // fallback never used when ok
      if (fit.ok) {
        const double lambda_s = fit.lambda0 * std::exp(-fit.beta * s);
        // Conditional mean needs lambda(s) including excitation; evaluate
        // via the fitted parameters and the observed history.
        double a = 0.0, prev = 0.0;
        for (double time : times) {
          a *= std::exp(-fit.beta * (time - prev));
          a += 1.0;
          prev = time;
        }
        const double lam =
            lambda_s + fit.beta * fit.rho1 * a * std::exp(-fit.beta * (s - prev));
        pred = ref.n_s + pp::ConditionalMeanIncrement(lam, fit.alpha(), inf);
      }
      rows[5].seconds += t.ElapsedSeconds();
      if (fit.ok) {
        rows[5].pred.push_back(pred);
        rows[5].truth.push_back(truth);
      }
    }
  }

  Table table({"Model", "MAPE", "tau", "n", "ms/item"});
  for (const auto& row : rows) {
    const auto metrics = eval::ComputeMetrics(row.pred, row.truth);
    table.AddRow({row.name, Table::Num(metrics.median_ape, 3),
                  Table::Num(metrics.kendall_tau, 3), std::to_string(metrics.n),
                  Table::Num(row.seconds / std::max<size_t>(used, 1) * 1e3, 3)});
  }
  table.Print("Sec. 4: infinite-horizon accuracy and per-item cost");
  table.WriteCsv("sec4_generative_baselines.csv");

  std::printf("Shape to check: the feature-based HWK model is both the most "
              "accurate and\nthe only one whose cost does not involve a per-item "
              "history pass or fit;\nthe per-item MLE approaches are orders of "
              "magnitude more expensive.\n");
  return 0;
}
