// Micro-benchmark (google-benchmark): concurrent serving-path throughput.
//
// Measures aggregate ingest events/sec, query predictions/sec, and a mixed
// ingest+query workload against one shared sharded PredictionService at
// 1/2/4/8 client threads, plus the single-caller TopK scan (which fans out
// over shards internally).  Each item is written by exactly one thread
// (the tracker's per-item event-time ordering contract); the reported
// items_per_second is the aggregate across threads.
//
// Unless --benchmark_out is given, results are also written to
// BENCH_serving.json (google-benchmark JSON format).  The ingest and
// query benchmarks also export lat_p50_us / lat_p95_us / lat_p99_us
// counters extracted from the service's own latency histograms, so the
// JSON carries tail latency alongside throughput.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "obs/metrics.h"
#include "serving/prediction_service.h"

namespace {

using namespace horizon;

/// Dataset + trained model shared by every benchmark (built once).
struct Env {
  datagen::SyntheticDataset dataset;
  features::FeatureExtractor extractor{stream::TrackerConfig{}};
  core::HawkesPredictor model;

  Env()
      : dataset([] {
          datagen::GeneratorConfig config;
          config.num_pages = 30;
          config.num_posts = 200;
          config.base_mean_size = 60.0;
          config.seed = 91;
          return datagen::Generator(config).Generate();
        }()),
        model([] {
          core::HawkesPredictorParams params;
          params.reference_horizons = {1 * kDay};
          params.gbdt_count.num_trees = 40;
          params.gbdt_alpha.num_trees = 40;
          return params;
        }()) {
    std::vector<size_t> indices;
    for (size_t i = 0; i < dataset.cascades.size(); ++i) indices.push_back(i);
    core::ExampleSetOptions options;
    options.reference_horizons = {1 * kDay};
    const auto examples =
        core::BuildExampleSet(dataset, indices, extractor, options);
    model.Fit(examples.x, examples.log1p_increments, examples.alpha_targets);
  }
};

Env& GetEnv() {
  static Env* env = new Env();
  return *env;
}

constexpr int64_t kItems = 512;

/// Registers kItems items (ids 0..kItems-1) against the shared model.
serving::PredictionService* MakeLoadedService(bool feed_events) {
  Env& env = GetEnv();
  auto* service = new serving::PredictionService(&env.model, &env.extractor,
                                                 serving::ServiceConfig{});
  for (int64_t id = 0; id < kItems; ++id) {
    const auto& cascade =
        env.dataset.cascades[static_cast<size_t>(id) % env.dataset.cascades.size()];
    // Setup over generated data; ids are unique so registration cannot fail.
    (void)service->RegisterItem(id, 0.0, env.dataset.PageOf(cascade.post),
                                cascade.post);
    if (!feed_events) continue;
    size_t fed = 0;
    for (const auto& e : cascade.views) {
      if (e.time >= 6 * kHour || fed >= 100) break;
      (void)service->Ingest(id, stream::EngagementType::kView, e.time);  // measured op; status checked by tests, not benches
      ++fed;
    }
  }
  return service;
}

/// Resets the named latency histogram so the percentiles published after
/// the timed loop reflect only this benchmark's observations.
obs::Histogram* ResetLatencyHistogram(const char* metric) {
  obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(metric);
  h->Reset();
  return h;
}

/// Publishes p50/p95/p99 (microseconds) from a service latency histogram
/// as benchmark counters; they land in the JSON report per run.
void PublishLatencyPercentiles(benchmark::State& state, const char* metric) {
  const obs::Histogram* h =
      obs::MetricsRegistry::Global().GetHistogram(metric);
  if (h->Count() == 0) return;
  state.counters["lat_p50_us"] = h->Quantile(0.50) * 1e6;
  state.counters["lat_p95_us"] = h->Quantile(0.95) * 1e6;
  state.counters["lat_p99_us"] = h->Quantile(0.99) * 1e6;
}

// -- Ingest throughput: each thread streams events into its own item stripe.

void BM_ServingIngest(benchmark::State& state) {
  static serving::PredictionService* service = nullptr;
  if (state.thread_index() == 0) {
    service = MakeLoadedService(/*feed_events=*/false);
    ResetLatencyHistogram("horizon_serving_ingest_latency_seconds");
  }
  const int threads = state.threads();
  int64_t id = state.thread_index();
  double t = 1.0;
  for (auto _ : state) {
    (void)service->Ingest(id, stream::EngagementType::kView, t);  // measured op; status checked by tests, not benches
    id += threads;
    if (id >= kItems) {
      id = state.thread_index();
      t += 1.0;  // keep per-item event times strictly increasing
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    PublishLatencyPercentiles(state, "horizon_serving_ingest_latency_seconds");
    delete service;
    service = nullptr;
  }
}
BENCHMARK(BM_ServingIngest)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

// -- Query throughput: every thread queries the whole (pre-fed) item set.

void BM_ServingQuery(benchmark::State& state) {
  static serving::PredictionService* service = nullptr;
  if (state.thread_index() == 0) {
    service = MakeLoadedService(/*feed_events=*/true);
    ResetLatencyHistogram("horizon_serving_query_latency_seconds");
  }
  int64_t id = state.thread_index();
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->Query(id, 6 * kHour, 1 * kDay));
    id = (id + 1) % kItems;
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    PublishLatencyPercentiles(state, "horizon_serving_query_latency_seconds");
    delete service;
    service = nullptr;
  }
}
BENCHMARK(BM_ServingQuery)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

// -- BatchQuery: one caller resolves the whole item set per call; the
//    service batches every row through the flat forests in one pass.

void BM_ServingBatchQuery(benchmark::State& state) {
  serving::PredictionService* service = MakeLoadedService(/*feed_events=*/true);
  serving::QueryRequest request;
  for (int64_t id = 0; id < kItems; ++id) request.ids.push_back(id);
  request.s = 6 * kHour;
  request.delta = 1 * kDay;
  ResetLatencyHistogram("horizon_serving_batch_query_latency_seconds");
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->BatchQuery(request));
  }
  state.SetItemsProcessed(state.iterations() * kItems);
  PublishLatencyPercentiles(state,
                            "horizon_serving_batch_query_latency_seconds");
  delete service;
}
BENCHMARK(BM_ServingBatchQuery)->Unit(benchmark::kMillisecond);

// -- Mixed workload: 4 ingests then 1 query per round, per-thread stripe.

void BM_ServingMixed(benchmark::State& state) {
  static serving::PredictionService* service = nullptr;
  if (state.thread_index() == 0) service = MakeLoadedService(/*feed_events=*/false);
  const int threads = state.threads();
  int64_t id = state.thread_index();
  double t = 1.0;
  int step = 0;
  for (auto _ : state) {
    if (step < 4) {
      (void)service->Ingest(id, stream::EngagementType::kView, t);  // measured op; status checked by tests, not benches
      ++step;
    } else {
      // Querying the item just written: s == t satisfies the snapshot
      // ordering contract without coordination across threads.
      benchmark::DoNotOptimize(service->Query(id, t, 1 * kDay));
      step = 0;
      id += threads;
      if (id >= kItems) {
        id = state.thread_index();
        t += 1.0;
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete service;
    service = nullptr;
  }
}
BENCHMARK(BM_ServingMixed)->Threads(1)->Threads(2)->Threads(4)->Threads(8);

// -- IngestBatch: one caller, shard-parallel application.

void BM_ServingIngestBatch(benchmark::State& state) {
  serving::PredictionService* service = MakeLoadedService(/*feed_events=*/false);
  const size_t batch = static_cast<size_t>(state.range(0));
  std::vector<serving::IngestEvent> events(batch);
  double t = 1.0;
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      events[i] = {static_cast<int64_t>(i % kItems),
                   stream::EngagementType::kView, t};
    }
    benchmark::DoNotOptimize(service->IngestBatch(events));
    t += 1.0;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
  delete service;
}
BENCHMARK(BM_ServingIngestBatch)->Arg(1024)->Arg(8192);

// -- TopK: one caller; the service scans shards in parallel and batches
//    the whole shard through the flat forests.

void BM_ServingTopK(benchmark::State& state) {
  serving::PredictionService* service = MakeLoadedService(/*feed_events=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service->TopK(6 * kHour, 1 * kDay, 10));
  }
  // Every live item is scored per call.
  state.SetItemsProcessed(state.iterations() * kItems);
  delete service;
}
BENCHMARK(BM_ServingTopK)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Default to emitting BENCH_serving.json unless the caller already
  // directs the report elsewhere.
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  static char out_flag[] = "--benchmark_out=BENCH_serving.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int argc_adj = static_cast<int>(args.size());
  benchmark::Initialize(&argc_adj, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc_adj, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
