// Figure 12 (Appendix A.18): prediction performance conditioned on the
// true content popularity -- Median APE and Kendall tau vs horizon for
// small vs large cascades, for HWK (6h,1d,4d) and PB.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/feature_models.h"
#include "common/table.h"
#include "core/hawkes_predictor.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Reproduction of Figure 12 (Appendix A.18): performance on small "
              "vs large cascades.\n\n");

  const std::vector<double> grid = eval::PaperHorizonGrid();

  eval::ExperimentConfig config;
  config.examples.reference_horizons = grid;
  eval::ExperimentData data = eval::PrepareExperiment(config);

  // HWK (6h,1d,4d): grid indices 2, 4, 6.
  core::HawkesPredictorParams params;
  params.reference_horizons = {grid[2], grid[4], grid[6]};
  params.gbdt_count = eval::BenchGbdtParams();
  params.gbdt_alpha = eval::BenchGbdtParams();
  core::HawkesPredictor hwk(params);
  hwk.Fit(data.train.x,
          {data.train.log1p_increments[2], data.train.log1p_increments[4],
           data.train.log1p_increments[6]},
          data.train.alpha_targets);

  baselines::PointBasedModels pb(eval::BenchGbdtParams());
  pb.Fit(data.train.x, grid, data.train.log1p_increments);

  // Split test examples by final cascade size (median of the test set).
  std::vector<double> final_sizes;
  for (const auto& ref : data.test.refs) {
    final_sizes.push_back(
        static_cast<double>(data.dataset.cascades[ref.cascade_index].TotalViews()));
  }
  std::vector<double> sorted = final_sizes;
  std::sort(sorted.begin(), sorted.end());
  const double split_size = sorted[sorted.size() / 2];
  std::printf("size split at %g total views (test-set median)\n\n", split_size);

  for (const bool large : {false, true}) {
    Table table({"Horizon", "HWK MAPE", "PB MAPE", "HWK tau", "PB tau", "n"});
    for (double delta : grid) {
      const auto truth_all = eval::TrueCounts(data.dataset, data.test, delta);
      std::vector<double> hwk_pred, pb_pred, truth;
      for (size_t i = 0; i < data.test.size(); ++i) {
        const bool is_large = final_sizes[i] >= split_size;
        if (is_large != large) continue;
        hwk_pred.push_back(data.test.refs[i].n_s +
                           hwk.PredictIncrement(data.test.x.Row(i), delta));
        pb_pred.push_back(data.test.refs[i].n_s +
                          pb.PredictIncrement(data.test.x.Row(i), delta));
        truth.push_back(truth_all[i]);
      }
      const auto hm = eval::ComputeMetrics(hwk_pred, truth);
      const auto pm = eval::ComputeMetrics(pb_pred, truth);
      table.AddRow({FormatDuration(delta), Table::Num(hm.median_ape, 3),
                    Table::Num(pm.median_ape, 3), Table::Num(hm.kendall_tau, 3),
                    Table::Num(pm.kendall_tau, 3), std::to_string(hm.n)});
    }
    const std::string name = large ? "large cascades" : "small cascades";
    table.Print("Figure 12: " + name);
    table.WriteCsv(large ? "fig12_large.csv" : "fig12_small.csv");
  }

  std::printf("Paper shape to check: all methods feature better Median APE on "
              "large\ncascades than small ones; HWK's edge on long horizons is "
              "clearest for\nsmall cascades.\n");
  return 0;
}
