// Ablation: GBDT capacity (trees x depth) for the count predictor f at
// delta* = 1d -- the accuracy / training-cost / inference-cost frontier
// behind the constant-time prediction claim.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/timer.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Ablation: GBDT capacity for the delta* = 1d count predictor.\n\n");

  eval::ExperimentConfig config;
  config.examples.reference_horizons = {1 * kDay};
  eval::ExperimentData data = eval::PrepareExperiment(config);
  const auto truth = eval::TrueCounts(data.dataset, data.test, 1 * kDay);

  Table table({"trees", "depth", "Median APE", "tau", "train s", "predict us/row"});
  for (int trees : {10, 40, 80, 160}) {
    for (int depth : {3, 5, 7}) {
      gbdt::GbdtParams params = eval::BenchGbdtParams();
      params.num_trees = trees;
      params.tree.max_depth = depth;
      gbdt::GbdtRegressor model(params);

      Timer train_timer;
      model.Fit(data.train.x, data.train.log1p_increments[0]);
      const double train_s = train_timer.ElapsedSeconds();

      std::vector<double> pred(data.test.size());
      Timer predict_timer;
      for (size_t i = 0; i < data.test.size(); ++i) {
        pred[i] = data.test.refs[i].n_s +
                  std::max(std::expm1(model.Predict(data.test.x.Row(i))), 0.0);
      }
      const double predict_us =
          predict_timer.ElapsedSeconds() * 1e6 / static_cast<double>(data.test.size());

      const auto metrics = eval::ComputeMetrics(pred, truth);
      table.AddRow({std::to_string(trees), std::to_string(depth),
                    Table::Num(metrics.median_ape, 3),
                    Table::Num(metrics.kendall_tau, 3), Table::Num(train_s, 3),
                    Table::Num(predict_us, 3)});
    }
  }
  table.Print("GBDT capacity frontier (count predictor at 1d)");
  table.WriteCsv("ablation_gbdt_capacity.csv");

  std::printf("Expected: accuracy saturates around ~80 trees x depth 5; inference "
              "stays\nin the microsecond range throughout -- the paper's "
              "constant-cost regime.\n");
  return 0;
}
