// Figure 2: mean clock time (ms) to produce one prediction as a function
// of the normalized observed cascade size N(s), for the proposed Hawkes
// model (constant: a few GBDT inferences over O(1)-state features) and
// SEISMIC-CF (linear: a pass over the full event history).
#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/seismic.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/hawkes_predictor.h"
#include "eval/experiment.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Reproduction of Figure 2 (Sec. 5.4): computation cost vs observed "
              "cascade size.\n\n");

  eval::ExperimentConfig config;
  config.generator.num_posts = 1200;
  config.generator.base_mean_size = 300.0;  // stretch the size axis
  eval::ExperimentData data = eval::PrepareExperiment(config);

  core::HawkesPredictorParams hwk_params;
  hwk_params.reference_horizons = config.examples.reference_horizons;
  hwk_params.gbdt_count = eval::BenchGbdtParams();
  hwk_params.gbdt_alpha = eval::BenchGbdtParams();
  core::HawkesPredictor hwk(hwk_params);
  hwk.Fit(data.train.x, data.train.log1p_increments, data.train.alpha_targets);

  baselines::SeismicCf seismic;

  // Pool all examples (train + test) and bin them by observed size N(s).
  struct Item {
    size_t cascade_index;
    double s;
    size_t n_s;
    const float* row;
  };
  std::vector<Item> items;
  for (size_t i = 0; i < data.test.size(); ++i) {
    const auto& ref = data.test.refs[i];
    items.push_back({ref.cascade_index, ref.prediction_age,
                     static_cast<size_t>(ref.n_s), data.test.x.Row(i)});
  }

  double mean_size = 0.0;
  for (const auto& it : items) mean_size += static_cast<double>(it.n_s);
  mean_size /= static_cast<double>(items.size());

  // Log-spaced bins of N(s).
  const std::vector<double> bin_edges = {0, 10, 30, 100, 300, 1000, 3000, 10000,
                                         100000, 1e18};
  Table table({"N(s) bin", "norm. size", "n", "Hawkes ms", "SEISMIC ms",
               "SEISMIC/Hawkes"});

  for (size_t b = 0; b + 1 < bin_edges.size(); ++b) {
    std::vector<const Item*> bin;
    for (const auto& it : items) {
      if (static_cast<double>(it.n_s) >= bin_edges[b] &&
          static_cast<double>(it.n_s) < bin_edges[b + 1]) {
        bin.push_back(&it);
      }
    }
    if (bin.empty()) continue;

    // Pre-extract SEISMIC's event histories (memory cost of the baseline).
    std::vector<std::vector<double>> histories;
    histories.reserve(bin.size());
    double bin_mean = 0.0;
    for (const Item* it : bin) {
      std::vector<double> times;
      const auto& cascade = data.dataset.cascades[it->cascade_index];
      for (const auto& e : cascade.views) {
        if (e.time >= it->s) break;
        times.push_back(e.time);
      }
      histories.push_back(std::move(times));
      bin_mean += static_cast<double>(it->n_s);
    }
    bin_mean /= static_cast<double>(bin.size());

    // Repeat to get stable timings for cheap predictions.
    const int reps = static_cast<int>(std::max(1.0, 20000.0 / bin.size() /
                                                        std::max(bin_mean, 1.0)));
    double sink_value = 0.0;
    volatile double* sink = &sink_value;

    Timer hwk_timer;
    for (int r = 0; r < reps; ++r) {
      for (const Item* it : bin) {
        *sink = *sink + hwk.PredictIncrement(it->row, 2 * kDay);
      }
    }
    const double hwk_ms =
        hwk_timer.ElapsedMillis() / (static_cast<double>(bin.size()) * reps);

    Timer seismic_timer;
    for (int r = 0; r < reps; ++r) {
      for (size_t k = 0; k < bin.size(); ++k) {
        *sink = *sink + seismic.PredictFinal(histories[k], bin[k]->s);
      }
    }
    const double seismic_ms =
        seismic_timer.ElapsedMillis() / (static_cast<double>(bin.size()) * reps);

    char bin_label[64];
    std::snprintf(bin_label, sizeof(bin_label), "[%g, %g)", bin_edges[b],
                  bin_edges[b + 1]);
    table.AddRow({bin_label, Table::Num(bin_mean / mean_size, 3),
                  std::to_string(bin.size()), Table::Num(hwk_ms, 4),
                  Table::Num(seismic_ms, 4),
                  Table::Num(seismic_ms / std::max(hwk_ms, 1e-12), 3)});
    (void)sink_value;
  }

  table.Print("Figure 2: mean prediction time (ms) vs observed cascade size");
  table.WriteCsv("fig2.csv");

  std::printf("Paper shape to check: Hawkes column flat (constant time); SEISMIC "
              "column\ngrows ~linearly with N(s) (the paper reports a ~4000x "
              "spread across bins).\n");
  return 0;
}
