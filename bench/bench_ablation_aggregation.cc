// Ablation: arithmetic-mean vs geometric-mean aggregation of multiple
// reference-horizon predictors (Sec. 3.2.3), for the HWK (6h,1d,4d)
// configuration, across the full horizon grid.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "core/hawkes_predictor.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Ablation: multi-reference aggregation rule "
              "(arithmetic vs geometric mean).\n\n");

  const std::vector<double> grid = eval::PaperHorizonGrid();
  eval::ExperimentConfig config;
  config.examples.reference_horizons = grid;
  eval::ExperimentData data = eval::PrepareExperiment(config);

  auto train = [&](core::Aggregation agg) {
    core::HawkesPredictorParams params;
    params.reference_horizons = {grid[2], grid[4], grid[6]};  // 6h, 1d, 4d
    params.aggregation = agg;
    params.gbdt_count = eval::BenchGbdtParams();
    params.gbdt_alpha = eval::BenchGbdtParams();
    core::HawkesPredictor model(params);
    model.Fit(data.train.x,
              {data.train.log1p_increments[2], data.train.log1p_increments[4],
               data.train.log1p_increments[6]},
              data.train.alpha_targets);
    return model;
  };
  core::HawkesPredictor arith = train(core::Aggregation::kArithmeticMean);
  core::HawkesPredictor geo = train(core::Aggregation::kGeometricMean);

  Table table({"Horizon", "arith MAPE", "geo MAPE", "arith tau", "geo tau"});
  double arith_avg = 0.0, geo_avg = 0.0;
  for (double delta : grid) {
    const auto truth = eval::TrueCounts(data.dataset, data.test, delta);
    std::vector<double> ap(data.test.size()), gp(data.test.size());
    for (size_t i = 0; i < data.test.size(); ++i) {
      ap[i] = data.test.refs[i].n_s +
              arith.PredictIncrement(data.test.x.Row(i), delta);
      gp[i] = data.test.refs[i].n_s + geo.PredictIncrement(data.test.x.Row(i), delta);
    }
    const auto am = eval::ComputeMetrics(ap, truth);
    const auto gm = eval::ComputeMetrics(gp, truth);
    arith_avg += am.median_ape / static_cast<double>(grid.size());
    geo_avg += gm.median_ape / static_cast<double>(grid.size());
    table.AddRow({FormatDuration(delta), Table::Num(am.median_ape, 3),
                  Table::Num(gm.median_ape, 3), Table::Num(am.kendall_tau, 3),
                  Table::Num(gm.kendall_tau, 3)});
  }
  table.Print("Aggregation ablation: HWK (6h,1d,4d)");
  table.WriteCsv("ablation_aggregation.csv");
  std::printf("average Median APE: arithmetic %.3f, geometric %.3f\n", arith_avg,
              geo_avg);
  std::printf("\nExpected: the two rules are close; geometric (Eq. 10, averaging "
              "in log\nspace) is typically slightly better on Median APE because "
              "the targets are\nlog-scale.\n");
  return 0;
}
