// Figure 6 (Appendix A.2): distribution of effective-growth-exponent
// estimates over the dataset -- mean-value vs median-value estimator, with
// start time 0 vs 1 hour.  The paper reports a wide range of values, a
// median around 1/day for the mean-value estimator, and the median-value
// estimator systematically above the mean-value one.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/math_util.h"
#include "common/table.h"
#include "core/alpha_estimator.h"
#include "datagen/generator.h"

namespace {
using namespace horizon;

std::vector<double> Estimates(const datagen::SyntheticDataset& data,
                              core::AlphaEstimatorKind kind, double start_time) {
  std::vector<double> out;
  core::AlphaEstimatorOptions options;
  options.start_time = start_time;
  options.gamma = 0.5;
  for (const auto& cascade : data.cascades) {
    if (cascade.TotalViews() < 20) continue;
    std::vector<double> times;
    times.reserve(cascade.TotalViews());
    for (const auto& e : cascade.views) times.push_back(e.time);
    const double alpha = core::EstimateAlpha(kind, times, options);
    if (alpha > 0.0) out.push_back(alpha * kDay);  // report in 1/day units
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Reproduction of Figure 6 (Appendix A.2): CDFs of alpha estimates "
              "(units: 1/day).\n\n");

  datagen::GeneratorConfig config;
  config.num_pages = 300;
  config.num_posts = 2600;
  config.base_mean_size = 150.0;
  config.seed = 20211215;
  const auto data = datagen::Generator(config).Generate();

  struct Variant {
    const char* name;
    core::AlphaEstimatorKind kind;
    double start;
  };
  const std::vector<Variant> variants = {
      {"mean, start 0", core::AlphaEstimatorKind::kMeanValue, 0.0},
      {"mean, start 1h", core::AlphaEstimatorKind::kMeanValue, kHour},
      {"median, start 0", core::AlphaEstimatorKind::kQuantileValue, 0.0},
      {"median, start 1h", core::AlphaEstimatorKind::kQuantileValue, kHour},
  };

  std::vector<std::vector<double>> estimates;
  for (const auto& v : variants) estimates.push_back(Estimates(data, v.kind, v.start));

  // CDF table at fixed quantile levels.
  Table table({"quantile", "mean s0", "mean s1h", "median s0", "median s1h"});
  for (double q : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95}) {
    std::vector<std::string> row = {Table::Num(q, 2)};
    for (const auto& est : estimates) row.push_back(Table::Num(Quantile(est, q), 3));
    table.AddRow(row);
  }
  table.Print("Figure 6: quantiles of alpha estimates (1/day)");
  table.WriteCsv("fig6.csv");

  // Headline comparisons from the paper's text.
  const double median_mean0 = Median(estimates[0]);
  const double median_median0 = Median(estimates[2]);
  std::printf("median of mean-value estimates (start 0):   %.3f /day\n",
              median_mean0);
  std::printf("median of median-value estimates (start 0): %.3f /day\n",
              median_median0);
  std::printf("\nPaper shape to check: wide range of estimates; mean-value "
              "median ~1/day;\nmedian-value estimator larger than mean-value; "
              "excluding the first hour\nshifts the median-value estimator "
              "more than the mean-value one.\n");
  return 0;
}
