// Figures 4/5 (Appendix A.1): the information-diffusion genealogy of an
// example post.  Figure 4's graph snapshots become summary statistics of
// the reshare tree over time; Figure 5 is the view-event intensity broken
// down by reshare depth (hop distance from the original post).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "datagen/generator.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Reproduction of Figures 4-5 (Appendix A.1): diffusion genealogy "
              "and per-depth intensities.\n\n");

  datagen::GeneratorConfig config;
  config.num_pages = 100;
  config.num_posts = 600;
  config.base_mean_size = 250.0;
  config.base_share_prob = 0.05;  // richer reshare trees for the example
  config.seed = 424242;
  const auto data = datagen::Generator(config).Generate();

  // Pick the cascade with the deepest reshare tree among large cascades.
  size_t best = 0;
  int best_depth = -1;
  for (size_t c = 0; c < data.cascades.size(); ++c) {
    const auto& cascade = data.cascades[c];
    if (cascade.TotalViews() < 1000) continue;
    const int depth = cascade.reshare_depth.empty()
                          ? 0
                          : *std::max_element(cascade.reshare_depth.begin(),
                                              cascade.reshare_depth.end());
    if (depth > best_depth) {
      best_depth = depth;
      best = c;
    }
  }
  const auto& cascade = data.cascades[best];
  std::printf("example post: total views=%zu reshares=%zu max depth=%d\n\n",
              cascade.TotalViews(), cascade.share_times.size(), best_depth);

  // Figure 4 analogue: growth of the diffusion structure over time.
  Table graph_table({"age", "views", "reshare nodes", "max depth"});
  for (double age : {1 * kHour, 6 * kHour, 1 * kDay, 2 * kDay, 7 * kDay}) {
    size_t views = 0, shares = 0;
    int depth = 0;
    for (size_t i = 0; i < cascade.views.size(); ++i) {
      if (cascade.views[i].time >= age) break;
      ++views;
      if (cascade.is_share[i]) ++shares;
      depth = std::max(depth, cascade.reshare_depth[i]);
    }
    graph_table.AddRow({FormatDuration(age), std::to_string(views),
                        std::to_string(shares), std::to_string(depth)});
  }
  graph_table.Print("Figure 4: diffusion structure over time");
  graph_table.WriteCsv("fig4.csv");

  // Figure 5: view intensity per 2-hour bin, by reshare depth (0, 1, 2+).
  const double bin = 2 * kHour;
  const int num_bins = static_cast<int>(4 * kDay / bin);
  std::vector<std::vector<size_t>> counts(3, std::vector<size_t>(num_bins, 0));
  for (size_t i = 0; i < cascade.views.size(); ++i) {
    const int b = static_cast<int>(cascade.views[i].time / bin);
    if (b >= num_bins) continue;
    const int d = std::min(cascade.reshare_depth[i], 2);
    ++counts[static_cast<size_t>(d)][static_cast<size_t>(b)];
  }
  Table depth_table({"age (h)", "depth 0", "depth 1", "depth 2+"});
  for (int b = 0; b < num_bins; ++b) {
    depth_table.AddRow({Table::Num((b + 1) * bin / kHour, 4),
                        std::to_string(counts[0][static_cast<size_t>(b)]),
                        std::to_string(counts[1][static_cast<size_t>(b)]),
                        std::to_string(counts[2][static_cast<size_t>(b)])});
  }
  depth_table.Print("Figure 5: view intensity by reshare depth (2h bins)");
  depth_table.WriteCsv("fig5.csv");

  std::printf("Paper shape to check: depth-0 views dominate early; deeper-depth "
              "view\nactivity arrives later and produces the inflection points "
              "of the aggregate\ncumulative curve.\n");
  return 0;
}
