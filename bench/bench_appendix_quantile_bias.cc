// Appendix A.10 / Corollary A.4: the bias of the quantile-value estimator.
// For lambda(0) = alpha n and gamma = 1 - 1/n,
//   E[T_{1-1/n}] <= (log n + 1 + o(1)) / alpha,
// hence E[alpha_hat] >= alpha (1 - o(1)) / (log n + 1).  We verify the
// bound empirically across n and report the actual bias factor.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/alpha_estimator.h"
#include "pointprocess/exp_hawkes.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Validation of Corollary A.4 (Appendix A.10): quantile-estimator "
              "bias bound.\n\n");

  const double beta = 2.0, rho1 = 0.5;
  const double alpha = beta * (1.0 - rho1);

  Table table({"n", "gamma", "mean T_gamma * alpha", "bound log(n)+1",
               "mean alpha_hat / alpha", "lower bound 1/(log n + 1)"});

  Rng rng(2024);
  for (double n : {10.0, 30.0, 100.0, 300.0, 1000.0}) {
    const double gamma = 1.0 - 1.0 / n;
    pp::ExpHawkesParams params;
    params.beta = beta;
    params.lambda0 = alpha * n;  // so that E[N(inf)] = n
    params.marks = std::make_shared<pp::ConstantMark>(rho1);
    pp::SimulateOptions options;
    options.horizon = 60.0 / alpha;

    RunningStats t_gamma_stats, ratio_stats;
    core::AlphaEstimatorOptions est_options;
    est_options.gamma = gamma;
    const int reps = 600;
    for (int rep = 0; rep < reps; ++rep) {
      const auto events = pp::SimulateExpHawkes(params, options, rng);
      if (events.empty()) continue;
      std::vector<double> times;
      for (const auto& e : events) times.push_back(e.time);
      const double alpha_hat = core::QuantileAlphaEstimate(times, est_options);
      if (alpha_hat <= 0.0) continue;
      t_gamma_stats.Add(1.0 / alpha_hat);  // T_gamma
      ratio_stats.Add(alpha_hat / alpha);
    }
    table.AddRow({Table::Num(n, 4), Table::Num(gamma, 4),
                  Table::Num(t_gamma_stats.mean() * alpha, 4),
                  Table::Num(std::log(n) + 1.0, 4),
                  Table::Num(ratio_stats.mean(), 4),
                  Table::Num(1.0 / (std::log(n) + 1.0), 4)});
  }
  table.Print("Corollary A.4: E[T_gamma] vs the (log n + 1)/alpha bound");
  table.WriteCsv("appendix_quantile_bias.csv");

  std::printf("Shape to check: column 3 stays below column 4 (the bound holds), "
              "and the\nbias factor (column 5) stays above column 6 -- the "
              "estimator is biased but\nonly logarithmically in n.\n");
  return 0;
}
