// Ablation: which estimator of the effective growth exponent should the
// alpha regressor g be trained on?  Mean-value vs quantile-value targets
// (gamma in {0.25, 0.5, 0.75}), evaluated by downstream prediction
// accuracy of HWK (1d) on long horizons.
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/hawkes_predictor.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace {
using namespace horizon;

struct Variant {
  std::string name;
  core::AlphaEstimatorKind kind;
  double gamma;
};

}  // namespace

int main() {
  std::printf("Ablation: alpha-estimator targets for the growth regressor g "
              "(Sec. 3.2.4).\n\n");

  const std::vector<double> grid = eval::PaperHorizonGrid();
  const std::vector<Variant> variants = {
      {"mean", core::AlphaEstimatorKind::kMeanValue, 0.5},
      {"quantile g=0.25", core::AlphaEstimatorKind::kQuantileValue, 0.25},
      {"quantile g=0.5", core::AlphaEstimatorKind::kQuantileValue, 0.5},
      {"quantile g=0.75", core::AlphaEstimatorKind::kQuantileValue, 0.75},
  };

  std::vector<std::string> header = {"Horizon"};
  for (const auto& v : variants) header.push_back(v.name);
  Table mape_table(header);

  // Build per-variant training data (alpha targets differ; counts do not).
  std::vector<std::vector<std::string>> rows(grid.size());
  for (size_t g = 0; g < grid.size(); ++g) rows[g].push_back(FormatDuration(grid[g]));

  for (const auto& variant : variants) {
    eval::ExperimentConfig config;
    config.examples.reference_horizons = grid;
    config.examples.alpha_kind = variant.kind;
    config.examples.alpha_quantile_gamma = variant.gamma;
    eval::ExperimentData data = eval::PrepareExperiment(config);

    core::HawkesPredictorParams params;
    params.reference_horizons = {grid[4]};  // 1d
    params.gbdt_count = eval::BenchGbdtParams();
    params.gbdt_alpha = eval::BenchGbdtParams();
    core::HawkesPredictor model(params);
    model.Fit(data.train.x, {data.train.log1p_increments[4]},
              data.train.alpha_targets);

    for (size_t g = 0; g < grid.size(); ++g) {
      const auto truth = eval::TrueCounts(data.dataset, data.test, grid[g]);
      std::vector<double> pred(data.test.size());
      for (size_t i = 0; i < data.test.size(); ++i) {
        pred[i] = data.test.refs[i].n_s +
                  model.PredictIncrement(data.test.x.Row(i), grid[g]);
      }
      rows[g].push_back(Table::Num(eval::MedianApe(pred, truth), 3));
    }
  }
  for (auto& row : rows) mape_table.AddRow(row);
  mape_table.Print("Median APE of HWK(1d) by alpha-target estimator");
  mape_table.WriteCsv("ablation_alpha_estimator.csv");

  std::printf("Expected: accuracy at delta = delta* (1d) is identical by "
              "construction; the\nestimators differ on horizons far from "
              "delta*, where the transfer factor\n(1-e^{-alpha delta}) "
              "matters; the mean-value estimator is the most stable.\n");
  return 0;
}
