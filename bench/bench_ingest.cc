// Micro-benchmark (google-benchmark): ingest-pipeline saturation.
//
// Compares the synchronous mutex-per-commit ingest path against the
// asynchronous MPSC-queue + applier pipeline at 1/2/4/8 producer
// threads.  With kBlock backpressure the async numbers are the honest
// end-to-end rate: once the rings fill, producers run at exactly the
// appliers' group-commit drain rate, so items_per_second measures
// applied events, not merely enqueued ones (the final drain barrier is
// inside the timed region via the blocking pushes).
//
// Also measures single-item query latency while every queue sits at
// capacity -- the epoch-snapshot read path must not queue behind the
// appliers' shard locks.
//
// Unless --benchmark_out is given, results are written to
// BENCH_ingest.json (google-benchmark JSON format).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "obs/metrics.h"
#include "serving/prediction_service.h"

namespace {

using namespace horizon;

/// Dataset + trained model shared by every benchmark (built once).
struct Env {
  datagen::SyntheticDataset dataset;
  features::FeatureExtractor extractor{stream::TrackerConfig{}};
  core::HawkesPredictor model;

  Env()
      : dataset([] {
          datagen::GeneratorConfig config;
          config.num_pages = 30;
          config.num_posts = 200;
          config.base_mean_size = 60.0;
          config.seed = 91;
          return datagen::Generator(config).Generate();
        }()),
        model([] {
          core::HawkesPredictorParams params;
          params.reference_horizons = {1 * kDay};
          params.gbdt_count.num_trees = 40;
          params.gbdt_alpha.num_trees = 40;
          return params;
        }()) {
    std::vector<size_t> indices;
    for (size_t i = 0; i < dataset.cascades.size(); ++i) indices.push_back(i);
    core::ExampleSetOptions options;
    options.reference_horizons = {1 * kDay};
    const auto examples =
        core::BuildExampleSet(dataset, indices, extractor, options);
    model.Fit(examples.x, examples.log1p_increments, examples.alpha_targets);
  }
};

Env& GetEnv() {
  static Env* env = new Env();
  return *env;
}

constexpr int64_t kItems = 512;

serving::PredictionService* MakeService(serving::IngestMode mode,
                                        int num_shards = 0) {
  Env& env = GetEnv();
  serving::ServiceConfig config;
  config.ingest_mode = mode;  // pinned: the env var must not leak in
  if (num_shards > 0) config.num_shards = num_shards;
  // Deep rings absorb producer bursts between group commits.
  config.ingest_queue_capacity = 1 << 15;
  auto* service =
      new serving::PredictionService(&env.model, &env.extractor, config);
  for (int64_t id = 0; id < kItems; ++id) {
    const auto& cascade =
        env.dataset
            .cascades[static_cast<size_t>(id) % env.dataset.cascades.size()];
    // Setup over generated data; ids are unique so registration cannot fail.
    (void)service->RegisterItem(id, 0.0, env.dataset.PageOf(cascade.post),
                                cascade.post);
  }
  return service;
}

/// Publishes the pipeline's own accounting into the JSON report.
void PublishPipelineCounters(benchmark::State& state) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  state.counters["backpressure"] = static_cast<double>(
      registry.GetCounter("horizon_serving_ingest_backpressure_total")->Value());
  const obs::Histogram* batches = registry.GetHistogram(
      "horizon_serving_apply_batch_events", obs::CountBuckets());
  if (batches->Count() > 0) {
    state.counters["mean_commit_batch"] =
        batches->Sum() / static_cast<double>(batches->Count());
  }
}

// -- Aggregate pipeline throughput: spawn P producer threads, stream a
//    fixed event count each, join, drain.  Timed in WALL CLOCK from the
//    single benchmark thread (UseRealTime), so items_per_second is the
//    unambiguous aggregate rate INCLUDING the drain barrier -- none of
//    google-benchmark's per-thread CPU averaging applies.  Arg(0): 0 =
//    sync (the PR-3 mutex path), 1 = async MPSC pipeline.  Arg(1):
//    producer threads.

constexpr int64_t kEventsPerProducer = 1 << 16;

void BM_IngestPipeline(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? serving::IngestMode::kSync
                                        : serving::IngestMode::kAsync;
  const int producers = static_cast<int>(state.range(1));
  // Async shard count sized to the machine: one applier per core keeps
  // the appliers busy (large group commits) instead of 16 mostly-idle
  // threads waking per event.  Sync keeps the default shard fan-out
  // (more shards only ever HELP the mutex path by splitting contention).
  const int shards = mode == serving::IngestMode::kAsync
                         ? static_cast<int>(std::max(
                               1u, std::thread::hardware_concurrency()))
                         : 0;
  serving::PredictionService* service = MakeService(mode, shards);
  double base_t = 1.0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        // Per-producer item stripe; per-item times strictly increase
        // across iterations via base_t.
        int64_t id = p;
        double t = base_t;
        for (int64_t i = 0; i < kEventsPerProducer; ++i) {
          (void)service->Ingest(id, stream::EngagementType::kView, t);  // measured op; status checked by tests, not benches
          id += producers;
          if (id >= kItems) {
            id = p;
            // Advance by a window-scale step: realistic streams spread
            // events over time, so the trackers keep evicting instead of
            // accumulating every event into the largest window.
            t += 1 * kHour;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    // The drain barrier is part of the measured cost: throughput means
    // APPLIED events per second, not enqueued.
    if (mode == serving::IngestMode::kAsync) (void)service->Flush();
    base_t += kEventsPerProducer * kHour;  // coarse upper bound keeps times monotone
  }
  state.SetItemsProcessed(state.iterations() * producers * kEventsPerProducer);
  state.SetLabel(mode == serving::IngestMode::kSync ? "sync" : "async");
  if (mode == serving::IngestMode::kAsync) PublishPipelineCounters(state);
  delete service;
}
BENCHMARK(BM_IngestPipeline)
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({0, 4})
    ->Args({0, 8})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({1, 4})
    ->Args({1, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// -- IngestBatch under both pipelines: one caller, 8192-event batches. ---

void BM_IngestBatch(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? serving::IngestMode::kSync
                                        : serving::IngestMode::kAsync;
  const int shards = mode == serving::IngestMode::kAsync
                         ? static_cast<int>(std::max(
                               1u, std::thread::hardware_concurrency()))
                         : 0;
  serving::PredictionService* service = MakeService(mode, shards);
  constexpr size_t kBatch = 8192;
  std::vector<serving::IngestEvent> events(kBatch);
  double t = 1.0;
  for (auto _ : state) {
    for (size_t i = 0; i < kBatch; ++i) {
      events[i] = {static_cast<int64_t>(i % kItems),
                   stream::EngagementType::kView, t};
    }
    benchmark::DoNotOptimize(service->IngestBatch(events));
    t += 1 * kHour;  // window-scale step; see BM_IngestPipeline
  }
  if (mode == serving::IngestMode::kAsync) (void)service->Flush();
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(kBatch));
  state.SetLabel(mode == serving::IngestMode::kSync ? "sync" : "async");
  delete service;
}
BENCHMARK(BM_IngestBatch)->Arg(0)->Arg(1)->UseRealTime();

// -- Query latency at queue capacity: 7 producers park the rings at
//    their bound while one caller queries through the epoch snapshots.

void BM_QueryUnderIngestSaturation(benchmark::State& state) {
  Env& env = GetEnv();
  serving::ServiceConfig config;
  config.ingest_mode = serving::IngestMode::kAsync;
  config.num_shards = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  config.ingest_queue_capacity = 256;  // small ring: saturates instantly
  auto* service =
      new serving::PredictionService(&env.model, &env.extractor, config);
  for (int64_t id = 0; id < kItems; ++id) {
    const auto& cascade =
        env.dataset
            .cascades[static_cast<size_t>(id) % env.dataset.cascades.size()];
    (void)service->RegisterItem(id, 0.0, env.dataset.PageOf(cascade.post),
                                cascade.post);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  constexpr int kProducers = 7;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      double t = 1.0;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int64_t id = p; id < kItems; id += kProducers) {
          (void)service->Ingest(id, stream::EngagementType::kView, t);
        }
        t += 1 * kHour;  // window-scale step; see BM_IngestPipeline
      }
    });
  }

  int64_t id = 0;
  for (auto _ : state) {
    // s far past every producer timestamp keeps the snapshot contract.
    benchmark::DoNotOptimize(service->Query(id, 1e12, 1 * kDay));
    id = (id + 1) % kItems;
  }
  state.SetItemsProcessed(state.iterations());

  stop.store(true);
  for (auto& t : producers) t.join();
  PublishPipelineCounters(state);
  delete service;
}
BENCHMARK(BM_QueryUnderIngestSaturation)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  // Default to emitting BENCH_ingest.json unless the caller already
  // directs the report elsewhere.
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  static char out_flag[] = "--benchmark_out=BENCH_ingest.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int argc_adj = static_cast<int>(args.size());
  benchmark::Initialize(&argc_adj, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc_adj, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
