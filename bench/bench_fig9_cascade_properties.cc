// Figure 9 (Appendix A.12): complementary CDFs of cascade size (normalized
// by the mean) and cascade duration (age at which 95% of the final views
// is reached).  The paper reports long-tailed distributions and a median
// duration of about 3 days.
#include <cstdio>
#include <vector>

#include "common/math_util.h"
#include "common/table.h"
#include "datagen/generator.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Reproduction of Figure 9 (Appendix A.12): cascade size and "
              "duration distributions.\n\n");

  datagen::GeneratorConfig config;
  config.num_pages = 300;
  config.num_posts = 2600;
  config.base_mean_size = 150.0;
  config.seed = 20211215;
  const auto data = datagen::Generator(config).Generate();

  std::vector<double> sizes, durations;
  for (const auto& cascade : data.cascades) {
    if (cascade.TotalViews() == 0) continue;
    sizes.push_back(static_cast<double>(cascade.TotalViews()));
    durations.push_back(cascade.DurationAtFraction(0.95) / kDay);
  }
  double mean_size = 0.0;
  for (double s : sizes) mean_size += s;
  mean_size /= static_cast<double>(sizes.size());
  for (double& s : sizes) s /= mean_size;

  auto ccdf = [](const std::vector<double>& values, double x) {
    size_t count = 0;
    for (double v : values) count += v >= x ? 1 : 0;
    return static_cast<double>(count) / static_cast<double>(values.size());
  };

  Table size_table({"normalized size x", "CCDF P(S >= x)"});
  for (double x = 0.01; x <= 300.0; x *= 2.0) {
    size_table.AddRow({Table::Num(x, 3), Table::Num(ccdf(sizes, x), 4)});
  }
  size_table.Print("Figure 9 (left): CCDF of normalized cascade size");
  size_table.WriteCsv("fig9_size.csv");

  Table duration_table({"duration x (days)", "CCDF P(D >= x)"});
  for (double x = 0.05; x <= 60.0; x *= 1.8) {
    duration_table.AddRow({Table::Num(x, 3), Table::Num(ccdf(durations, x), 4)});
  }
  duration_table.Print("Figure 9 (right): CCDF of cascade duration (0.95 mass)");
  duration_table.WriteCsv("fig9_duration.csv");

  std::printf("median duration: %.2f days (paper: ~3 days)\n", Median(durations));
  std::printf("size p99 / median: %.1fx (long tail)\n",
              Quantile(sizes, 0.99) / Median(sizes));
  std::printf("\nPaper shape to check: both CCDFs long-tailed; most view mass "
              "within a week;\nmedian duration of a few days.\n");
  return 0;
}
