// Micro-benchmark (google-benchmark): GBDT inference and training cost.
//
// The headline trajectory is batch predictions/s across the inference
// paths introduced by the vectorized hot-path rework:
//
//   BM_GbdtBatchFlatScalar     FlatForest::PredictRows (the pre-rework
//                              depth-first scalar baseline)
//   BM_GbdtBatchBlocked/<k>    BlockForest::PredictStrided under kernel
//                              flavor <k> (scalar | sse | avx2)
//   BM_GbdtBatchQuantized/<k>  QuantizedForest::PredictCodes (uint16
//                              rank-space codes, integer compares)
//
// All batch benchmarks run single-threaded on pre-materialized inputs so
// the numbers compare kernels, not the thread pool.  Kernel flavors the
// running CPU cannot execute are skipped.  Unless --benchmark_out is
// given, results are written to BENCH_gbdt.json (google-benchmark JSON
// format); the acceptance bar is blocked-AVX2 (or the widest available
// flavor) >= 5x the flat scalar baseline on the same model and batch.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gbdt/gbdt.h"
#include "gbdt/simd_dispatch.h"

namespace {

using namespace horizon;
using namespace horizon::gbdt;

DataMatrix MakeData(size_t rows, size_t features, std::vector<double>* y) {
  Rng rng(11);
  DataMatrix x(rows, features);
  y->resize(rows);
  for (size_t i = 0; i < rows; ++i) {
    double target = 0.0;
    for (size_t f = 0; f < features; ++f) {
      const double v = rng.Uniform();
      x.Set(i, f, static_cast<float>(v));
      if (f < 5) target += v;
    }
    (*y)[i] = target + rng.Normal(0.0, 0.1);
  }
  return x;
}

// Shared trained model + batch for every inference benchmark, built once:
// training is orders of magnitude slower than a single batch pass, and
// identical inputs are what make the flavors comparable.
constexpr size_t kBatchRows = 16384;
constexpr size_t kNumFeatures = 100;

struct InferenceSetup {
  GbdtRegressor model;
  DataMatrix x{0, 0};
  ExampleBatch soa;                // column-major copy of x
  std::vector<uint16_t> codes;     // quantized SoA copy of x
  std::vector<double> out;

  InferenceSetup() : model([] {
    GbdtParams params;
    params.num_trees = 80;
    params.tree.max_depth = 5;
    return params;
  }()) {
    std::vector<double> y;
    x = MakeData(kBatchRows, kNumFeatures, &y);
    model.Fit(x, y);
    soa = ExampleBatch(kBatchRows, kNumFeatures);
    for (size_t r = 0; r < kBatchRows; ++r) {
      for (size_t f = 0; f < kNumFeatures; ++f) soa.Set(r, f, x.Get(r, f));
    }
    codes = model.quantized_forest().Quantize(soa);
    out.resize(kBatchRows);
  }
};

InferenceSetup& Setup() {
  static InferenceSetup* setup = new InferenceSetup();
  return *setup;
}

// Pins HORIZON_SIMD to `flavor` for the duration of one benchmark run.
// Returns false (benchmark should skip) when the CPU cannot execute it.
bool PinKernel(SimdKernel flavor) {
  for (SimdKernel k : SupportedKernels()) {
    if (k == flavor) {
      ::setenv("HORIZON_SIMD", SimdKernelName(flavor), /*overwrite=*/1);
      RefreshKernelFromEnv();
      return true;
    }
  }
  return false;
}

void UnpinKernel() {
  ::unsetenv("HORIZON_SIMD");
  RefreshKernelFromEnv();
}

void BM_GbdtBatchFlatScalar(benchmark::State& state) {
  InferenceSetup& s = Setup();
  for (auto _ : state) {
    s.model.flat_forest().PredictRows(s.x.Row(0), kBatchRows, kNumFeatures,
                                      s.out.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatchRows));
}
BENCHMARK(BM_GbdtBatchFlatScalar)->Unit(benchmark::kMillisecond);

void BM_GbdtBatchBlocked(benchmark::State& state) {
  const auto flavor = static_cast<SimdKernel>(state.range(0));
  if (!PinKernel(flavor)) {
    state.SkipWithError("kernel flavor unsupported on this CPU");
    return;
  }
  InferenceSetup& s = Setup();
  // Column-major SoA input: row_stride 1, feature stride = num_rows --
  // the layout serving feeds the kernels.
  for (auto _ : state) {
    s.model.block_forest().PredictStrided(s.soa.data(), kBatchRows,
                                          /*row_stride=*/1,
                                          /*feat_stride=*/kBatchRows,
                                          s.out.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  UnpinKernel();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatchRows));
  state.SetLabel(SimdKernelName(flavor));
}
BENCHMARK(BM_GbdtBatchBlocked)
    ->Arg(static_cast<int>(SimdKernel::kScalar))
    ->Arg(static_cast<int>(SimdKernel::kSse))
    ->Arg(static_cast<int>(SimdKernel::kAvx2))
    ->Unit(benchmark::kMillisecond);

void BM_GbdtBatchQuantized(benchmark::State& state) {
  const auto flavor = static_cast<SimdKernel>(state.range(0));
  if (!PinKernel(flavor)) {
    state.SkipWithError("kernel flavor unsupported on this CPU");
    return;
  }
  InferenceSetup& s = Setup();
  for (auto _ : state) {
    s.model.quantized_forest().PredictCodes(s.codes.data(), kBatchRows,
                                            /*row_stride=*/1,
                                            /*feat_stride=*/kBatchRows,
                                            s.out.data());
    benchmark::DoNotOptimize(s.out.data());
  }
  UnpinKernel();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatchRows));
  state.SetLabel(SimdKernelName(flavor));
}
BENCHMARK(BM_GbdtBatchQuantized)
    ->Arg(static_cast<int>(SimdKernel::kScalar))
    ->Arg(static_cast<int>(SimdKernel::kSse))
    ->Arg(static_cast<int>(SimdKernel::kAvx2))
    ->Unit(benchmark::kMillisecond);

void BM_GbdtPredictSingleRow(benchmark::State& state) {
  std::vector<double> y;
  const DataMatrix x = MakeData(4000, 100, &y);
  GbdtParams params;
  params.num_trees = static_cast<int>(state.range(0));
  params.tree.max_depth = static_cast<int>(state.range(1));
  GbdtRegressor model(params);
  model.Fit(x, y);
  size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(x.Row(row)));
    row = (row + 1) % x.num_rows();
  }
}
BENCHMARK(BM_GbdtPredictSingleRow)
    ->Args({20, 3})
    ->Args({80, 5})
    ->Args({160, 7});

void BM_GbdtTrain(benchmark::State& state) {
  std::vector<double> y;
  const DataMatrix x = MakeData(static_cast<size_t>(state.range(0)), 100, &y);
  GbdtParams params;
  params.num_trees = 40;
  params.tree.max_depth = 5;
  for (auto _ : state) {
    GbdtRegressor model(params);
    model.Fit(x, y);
    benchmark::DoNotOptimize(model.base_score());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GbdtTrain)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_BinnedDatasetCreate(benchmark::State& state) {
  std::vector<double> y;
  const DataMatrix x = MakeData(static_cast<size_t>(state.range(0)), 100, &y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BinnedDataset::Create(x));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BinnedDatasetCreate)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Default to emitting BENCH_gbdt.json unless the caller already directs
  // the report elsewhere.
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  static char out_flag[] = "--benchmark_out=BENCH_gbdt.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int argc_adj = static_cast<int>(args.size());
  benchmark::Initialize(&argc_adj, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc_adj, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
