// Micro-benchmark (google-benchmark): GBDT single-row inference latency vs
// ensemble size/depth -- the constant "few GBDT inferences" cost of the
// proposed predictor (Fig. 2's flat curve) -- plus training throughput.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "gbdt/gbdt.h"

namespace {

using namespace horizon;
using namespace horizon::gbdt;

DataMatrix MakeData(size_t rows, size_t features, std::vector<double>* y) {
  Rng rng(11);
  DataMatrix x(rows, features);
  y->resize(rows);
  for (size_t i = 0; i < rows; ++i) {
    double target = 0.0;
    for (size_t f = 0; f < features; ++f) {
      const double v = rng.Uniform();
      x.Set(i, f, static_cast<float>(v));
      if (f < 5) target += v;
    }
    (*y)[i] = target + rng.Normal(0.0, 0.1);
  }
  return x;
}

void BM_GbdtPredictSingleRow(benchmark::State& state) {
  std::vector<double> y;
  const DataMatrix x = MakeData(4000, 100, &y);
  GbdtParams params;
  params.num_trees = static_cast<int>(state.range(0));
  params.tree.max_depth = static_cast<int>(state.range(1));
  GbdtRegressor model(params);
  model.Fit(x, y);
  size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(x.Row(row)));
    row = (row + 1) % x.num_rows();
  }
}
BENCHMARK(BM_GbdtPredictSingleRow)
    ->Args({20, 3})
    ->Args({80, 5})
    ->Args({160, 7});

void BM_GbdtTrain(benchmark::State& state) {
  std::vector<double> y;
  const DataMatrix x = MakeData(static_cast<size_t>(state.range(0)), 100, &y);
  GbdtParams params;
  params.num_trees = 40;
  params.tree.max_depth = 5;
  for (auto _ : state) {
    GbdtRegressor model(params);
    model.Fit(x, y);
    benchmark::DoNotOptimize(model.base_score());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GbdtTrain)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_BinnedDatasetCreate(benchmark::State& state) {
  std::vector<double> y;
  const DataMatrix x = MakeData(static_cast<size_t>(state.range(0)), 100, &y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BinnedDataset::Create(x));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BinnedDatasetCreate)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
