// Table 2: cardinality and permutation importance of the feature
// categories for (a) the cascade-size point predictor f at delta* = 1d and
// (b) the effective-growth-exponent predictor g.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/math_util.h"
#include "common/table.h"
#include "core/hawkes_predictor.h"
#include "eval/experiment.h"
#include "eval/importance.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Reproduction of Table 2 (Appendix A.16): feature-category "
              "importances.\n\n");

  eval::ExperimentConfig config;
  config.examples.reference_horizons = {1 * kDay};
  eval::ExperimentData data = eval::PrepareExperiment(config);

  // Train f (count at 1d) and g (log alpha) directly as plain GBDTs so we
  // can compute permutation importances against their own targets.
  gbdt::GbdtRegressor f(eval::BenchGbdtParams());
  f.Fit(data.train.x, data.train.log1p_increments[0]);

  std::vector<double> log_alpha_train(data.train.size());
  for (size_t i = 0; i < data.train.size(); ++i) {
    log_alpha_train[i] =
        std::log(Clamp(data.train.alpha_targets[i], 1e-9, 1.0));
  }
  gbdt::GbdtRegressor g(eval::BenchGbdtParams());
  g.Fit(data.train.x, log_alpha_train);

  // Test-set targets.
  std::vector<double> log_alpha_test(data.test.size());
  for (size_t i = 0; i < data.test.size(); ++i) {
    log_alpha_test[i] = std::log(Clamp(data.test.alpha_targets[i], 1e-9, 1.0));
  }

  const auto f_importance =
      eval::PermutationImportance(f, data.test.x, data.test.log1p_increments[0]);
  const auto g_importance =
      eval::PermutationImportance(g, data.test.x, log_alpha_test);

  const auto& schema = data.extractor->schema();
  const auto f_by_cat = eval::AggregateByCategory(schema, f_importance);
  const auto g_by_cat = eval::AggregateByCategory(schema, g_importance);

  Table table({"Category", "Num features", "Importance f (size at 1d)",
               "Importance g (alpha)"});
  for (int c = 0; c < features::kNumFeatureCategories; ++c) {
    const auto cat = static_cast<features::FeatureCategory>(c);
    table.AddRow({features::FeatureCategoryName(cat),
                  std::to_string(schema.CountOf(cat)), Table::Num(f_by_cat[c], 4),
                  Table::Num(g_by_cat[c], 4)});
  }
  table.Print("Table 2: feature category importances (permutation, test set)");
  table.WriteCsv("table2.csv");

  // Top-10 individual features per model, for inspection.
  auto print_top = [&](const char* name, const std::vector<double>& importance) {
    std::vector<size_t> order(importance.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return importance[a] > importance[b]; });
    Table top({"Rank", "Feature", "Importance"});
    for (size_t r = 0; r < 10 && r < order.size(); ++r) {
      top.AddRow({std::to_string(r + 1), schema.def(order[r]).name,
                  Table::Num(importance[order[r]], 4)});
    }
    top.Print(std::string("Top features: ") + name);
  };
  print_top("f (cascade size at delta*)", f_importance);
  print_top("g (effective growth exponent)", g_importance);

  std::printf("Paper shape to check: engagement features dominate both models; "
              "views-on-post\nlead for f; page features and page-level engagement "
              "lead for g.\n");
  return 0;
}
