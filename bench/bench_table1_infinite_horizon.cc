// Table 1: infinite-horizon prediction accuracy of the proposed Hawkes
// model vs SEISMIC-CF, overall and conditional on content popularity
// (Low/High, split at 1000 views) and prediction time (Early/Late, split
// at 24h content age).  Also reproduces the Sec. 5.2 RPP result: per-item
// MLE cost and MAPE on a subset.
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "baselines/rpp.h"
#include "baselines/seismic.h"
#include "common/table.h"
#include "common/timer.h"
#include "core/hawkes_predictor.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace {

using namespace horizon;  // bench binary: brevity over namespace hygiene

std::vector<double> ViewTimesBefore(const datagen::Cascade& cascade, double s) {
  std::vector<double> times;
  for (const auto& e : cascade.views) {
    if (e.time >= s) break;
    times.push_back(e.time);
  }
  return times;
}

struct SliceResult {
  std::string name;
  eval::MetricSummary hawkes;
  eval::MetricSummary seismic;
};

}  // namespace

int main() {
  std::printf("Reproduction of Table 1 (Sec. 5.2): infinite-horizon prediction.\n");
  std::printf("Hawkes = HWK(6h,1d,4d) with GBDT point predictors; baseline = "
              "SEISMIC-CF.\n\n");

  eval::ExperimentConfig config;
  eval::ExperimentData data = eval::PrepareExperiment(config);
  std::printf("dataset: %zu cascades, %zu train / %zu test examples\n",
              data.dataset.cascades.size(), data.train.size(), data.test.size());

  core::HawkesPredictorParams hwk_params;
  hwk_params.reference_horizons = config.examples.reference_horizons;
  hwk_params.gbdt_count = eval::BenchGbdtParams();
  hwk_params.gbdt_alpha = eval::BenchGbdtParams();
  core::HawkesPredictor hwk(hwk_params);
  hwk.Fit(data.train.x, data.train.log1p_increments, data.train.alpha_targets);

  baselines::SeismicCf seismic;

  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> truth_all = eval::TrueCounts(data.dataset, data.test, inf);

  std::vector<double> hwk_pred(data.test.size());
  std::vector<double> seismic_pred(data.test.size());
  for (size_t i = 0; i < data.test.size(); ++i) {
    const auto& ref = data.test.refs[i];
    hwk_pred[i] = ref.n_s + hwk.PredictFinalIncrement(data.test.x.Row(i));
    const auto times =
        ViewTimesBefore(data.dataset.cascades[ref.cascade_index], ref.prediction_age);
    seismic_pred[i] = seismic.PredictFinal(times, ref.prediction_age);
  }

  // Slices.
  auto evaluate_slice = [&](const std::string& name, auto&& keep) {
    SliceResult result;
    result.name = name;
    std::vector<double> hp, sp, t;
    for (size_t i = 0; i < data.test.size(); ++i) {
      if (!keep(i)) continue;
      hp.push_back(hwk_pred[i]);
      sp.push_back(seismic_pred[i]);
      t.push_back(truth_all[i]);
    }
    result.hawkes = eval::ComputeMetrics(hp, t);
    result.seismic = eval::ComputeMetrics(sp, t);
    return result;
  };

  const double kPopularitySplit = 1000.0;  // views, as in the paper
  const double kAgeSplit = 24 * kHour;
  std::vector<SliceResult> slices;
  slices.push_back(evaluate_slice("Overall", [&](size_t) { return true; }));
  slices.push_back(evaluate_slice(
      "Low", [&](size_t i) { return truth_all[i] < kPopularitySplit; }));
  slices.push_back(evaluate_slice(
      "High", [&](size_t i) { return truth_all[i] >= kPopularitySplit; }));
  slices.push_back(evaluate_slice("Early", [&](size_t i) {
    return data.test.refs[i].prediction_age < kAgeSplit;
  }));
  slices.push_back(evaluate_slice("Late", [&](size_t i) {
    return data.test.refs[i].prediction_age >= kAgeSplit;
  }));

  Table table({"Dataset", "HWK MAPE", "HWK tau", "HWK RMSE", "SEISMIC MAPE",
               "SEISMIC tau", "SEISMIC RMSE", "n"});
  for (const auto& s : slices) {
    table.AddRow({s.name, Table::Num(s.hawkes.median_ape, 3),
                  Table::Num(s.hawkes.kendall_tau, 3), Table::Sci(s.hawkes.rmse),
                  Table::Num(s.seismic.median_ape, 3),
                  Table::Num(s.seismic.kendall_tau, 3), Table::Sci(s.seismic.rmse),
                  std::to_string(s.hawkes.n)});
  }
  table.Print("Table 1: Hawkes vs SEISMIC-CF, infinite horizon");
  table.WriteCsv("table1.csv");

  // --- RPP on a subset (Sec. 5.2): per-item iterative MLE ---
  baselines::RppModel rpp;
  std::vector<double> rpp_pred, rpp_truth;
  double fit_seconds = 0.0;
  long long evals = 0;
  size_t attempted = 0;
  for (size_t i = 0; i < data.test.size() && rpp_pred.size() < 150; i += 3) {
    const auto& ref = data.test.refs[i];
    const auto times =
        ViewTimesBefore(data.dataset.cascades[ref.cascade_index], ref.prediction_age);
    if (times.size() < 5) continue;
    ++attempted;
    Timer timer;
    const auto fit = rpp.Fit(times, ref.prediction_age);
    fit_seconds += timer.ElapsedSeconds();
    evals += fit.likelihood_evaluations;
    if (!fit.ok) continue;
    rpp_pred.push_back(ref.n_s + rpp.PredictIncrement(fit, ref.n_s,
                                                      ref.prediction_age,
                                                      std::numeric_limits<double>::infinity()));
    rpp_truth.push_back(truth_all[i]);
  }
  const auto rpp_metrics = eval::ComputeMetrics(rpp_pred, rpp_truth);
  Table rpp_table({"Model", "MAPE", "tau", "n", "mean fit ms", "mean LL evals"});
  rpp_table.AddRow({"RPP (subset)", Table::Num(rpp_metrics.median_ape, 3),
                    Table::Num(rpp_metrics.kendall_tau, 3),
                    std::to_string(rpp_metrics.n),
                    Table::Num(fit_seconds / std::max<size_t>(attempted, 1) * 1e3, 3),
                    Table::Num(static_cast<double>(evals) /
                                   std::max<size_t>(attempted, 1),
                               4)});
  rpp_table.Print("Sec. 5.2: RPP per-item MLE on a subset");
  rpp_table.WriteCsv("table1_rpp.csv");

  std::printf("Paper shape to check: HWK beats SEISMIC-CF on MAPE and tau in every "
              "slice;\nRMSE gap largest on Low/Early; RPP MAPE far worse "
              "(paper: 4.1) with per-item\niterative fitting cost.\n");
  return 0;
}
