// Extension bench: end-to-end uncertainty quantification.  The paper's
// Appendix A.6 derives the process variance "to assess the prediction
// error"; here we go further and wrap the HWK predictor in split-conformal
// intervals, then measure their empirical coverage and width across
// horizons on held-out cascades.
#include <cstdio>
#include <vector>

#include "common/math_util.h"
#include "common/table.h"
#include "core/conformal.h"
#include "core/hawkes_predictor.h"
#include "eval/experiment.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Extension: conformal prediction intervals around HWK "
              "predictions.\n\n");

  eval::ExperimentConfig config;
  eval::ExperimentData data = eval::PrepareExperiment(config);

  // Proper split conformal: the calibration fold must be held out from
  // model training, or in-sample residuals undercover.  Split the training
  // cascades 70/30 into fit and calibration folds.
  const size_t fit_count = data.split.train.size() * 7 / 10;
  std::vector<size_t> fit_fold(data.split.train.begin(),
                               data.split.train.begin() +
                                   static_cast<ptrdiff_t>(fit_count));
  std::vector<size_t> cal_fold(data.split.train.begin() +
                                   static_cast<ptrdiff_t>(fit_count),
                               data.split.train.end());
  const auto fit_examples =
      core::BuildExampleSet(data.dataset, fit_fold, *data.extractor, config.examples);
  auto cal_options = config.examples;
  cal_options.seed = config.examples.seed + 99;
  const auto cal_examples =
      core::BuildExampleSet(data.dataset, cal_fold, *data.extractor, cal_options);

  core::HawkesPredictorParams params;
  params.reference_horizons = config.examples.reference_horizons;
  params.gbdt_count = eval::BenchGbdtParams();
  params.gbdt_alpha = eval::BenchGbdtParams();
  core::HawkesPredictor model(params);
  model.Fit(fit_examples.x, fit_examples.log1p_increments,
            fit_examples.alpha_targets);

  const std::vector<double> horizons = {3 * kHour, 12 * kHour, 1 * kDay, 4 * kDay};
  std::vector<double> cal_pred, cal_truth, cal_horizon;
  for (size_t i = 0; i < cal_examples.size(); ++i) {
    const auto& ref = cal_examples.refs[i];
    for (double h : horizons) {
      cal_pred.push_back(model.PredictIncrement(cal_examples.x.Row(i), h));
      cal_truth.push_back(core::TrueIncrement(data.dataset.cascades[ref.cascade_index],
                                              ref.prediction_age, h));
      cal_horizon.push_back(h);
    }
  }
  core::ConformalCalibrator calibrator;
  calibrator.Calibrate(cal_pred, cal_truth, cal_horizon);
  std::printf("calibrated on %zu residuals\n\n", cal_pred.size());

  Table table({"Horizon", "target coverage", "empirical coverage",
               "median rel. width", "n"});
  for (double h : horizons) {
    for (double miscoverage : {0.2, 0.1}) {
      int covered = 0, n = 0;
      std::vector<double> widths;
      for (size_t i = 0; i < data.test.size(); ++i) {
        const auto& ref = data.test.refs[i];
        const double pred = model.PredictIncrement(data.test.x.Row(i), h);
        const double truth = core::TrueIncrement(
            data.dataset.cascades[ref.cascade_index], ref.prediction_age, h);
        const auto iv = calibrator.IntervalFor(pred, h, miscoverage);
        if (truth >= iv.lo && truth <= iv.hi) ++covered;
        if (truth > 0) widths.push_back((iv.hi - iv.lo) / truth);
        ++n;
      }
      table.AddRow({FormatDuration(h), Table::Num(1.0 - miscoverage, 3),
                    Table::Num(static_cast<double>(covered) / n, 3),
                    Table::Num(Median(widths), 3), std::to_string(n)});
    }
  }
  table.Print("Conformal intervals: coverage and width by horizon");
  table.WriteCsv("extension_conformal.csv");

  std::printf("Shape to check: empirical coverage >= target at every horizon "
              "(the conformal\nguarantee), with widths growing with horizon "
              "(more future randomness).\n");
  return 0;
}
