// Figure 1: Median APE (left) and Kendall tau rank correlation (right) as
// a function of the prediction horizon, for:
//   HWK (1d), HWK (6h,4d), HWK (6h,1d,4d)  -- the proposed models,
//   PB                                      -- per-horizon point-based models,
//   HF (1h-7d), HF (1h,6h,1d,4d)            -- horizon-as-feature models.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "baselines/feature_models.h"
#include "common/table.h"
#include "core/hawkes_predictor.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace {
using namespace horizon;

core::HawkesPredictor TrainHwk(const eval::ExperimentData& data,
                               const std::vector<double>& grid,
                               const std::vector<size_t>& ref_indices) {
  core::HawkesPredictorParams params;
  params.reference_horizons.clear();
  std::vector<std::vector<double>> targets;
  for (size_t idx : ref_indices) {
    params.reference_horizons.push_back(grid[idx]);
    targets.push_back(data.train.log1p_increments[idx]);
  }
  params.gbdt_count = eval::BenchGbdtParams();
  params.gbdt_alpha = eval::BenchGbdtParams();
  core::HawkesPredictor model(params);
  model.Fit(data.train.x, targets, data.train.alpha_targets);
  return model;
}

}  // namespace

int main() {
  std::printf("Reproduction of Figure 1 (Sec. 5.3): accuracy over arbitrary "
              "horizons.\n\n");

  const std::vector<double> grid = eval::PaperHorizonGrid();

  eval::ExperimentConfig config;
  config.examples.reference_horizons = grid;  // targets at all 8 horizons
  eval::ExperimentData data = eval::PrepareExperiment(config);
  std::printf("dataset: %zu cascades, %zu train / %zu test examples\n\n",
              data.dataset.cascades.size(), data.train.size(), data.test.size());

  // Grid indices: 0=1h 1=3h 2=6h 3=12h 4=1d 5=2d 6=4d 7=7d.
  core::HawkesPredictor hwk_1d = TrainHwk(data, grid, {4});
  core::HawkesPredictor hwk_2ref = TrainHwk(data, grid, {2, 6});
  core::HawkesPredictor hwk_3ref = TrainHwk(data, grid, {2, 4, 6});

  baselines::PointBasedModels pb(eval::BenchGbdtParams());
  pb.Fit(data.train.x, grid, data.train.log1p_increments);

  baselines::HorizonFeatureModel hf_all(eval::BenchGbdtParams());
  hf_all.Fit(data.train.x, grid, data.train.log1p_increments);

  baselines::HorizonFeatureModel hf_subset(eval::BenchGbdtParams());
  hf_subset.Fit(data.train.x, {grid[0], grid[2], grid[4], grid[6]},
                {data.train.log1p_increments[0], data.train.log1p_increments[2],
                 data.train.log1p_increments[4], data.train.log1p_increments[6]});

  struct ModelEntry {
    std::string name;
    std::function<double(const float*, double)> predict_increment;
  };
  std::vector<ModelEntry> models;
  models.push_back({"HWK (1d)", [&](const float* row, double d) {
                      return hwk_1d.PredictIncrement(row, d);
                    }});
  models.push_back({"HWK (6h,4d)", [&](const float* row, double d) {
                      return hwk_2ref.PredictIncrement(row, d);
                    }});
  models.push_back({"HWK (6h,1d,4d)", [&](const float* row, double d) {
                      return hwk_3ref.PredictIncrement(row, d);
                    }});
  models.push_back({"PB", [&](const float* row, double d) {
                      return pb.PredictIncrement(row, d);
                    }});
  models.push_back({"HF (1h-7d)", [&](const float* row, double d) {
                      return hf_all.PredictIncrement(row, d);
                    }});
  models.push_back({"HF (1h,6h,1d,4d)", [&](const float* row, double d) {
                      return hf_subset.PredictIncrement(row, d);
                    }});

  std::vector<std::string> header = {"Horizon"};
  for (const auto& m : models) header.push_back(m.name);
  Table mape_table(header);
  Table tau_table(header);

  for (double delta : grid) {
    const std::vector<double> truth = eval::TrueCounts(data.dataset, data.test, delta);
    std::vector<std::string> mape_row = {FormatDuration(delta)};
    std::vector<std::string> tau_row = {FormatDuration(delta)};
    for (const auto& m : models) {
      std::vector<double> pred(data.test.size());
      for (size_t i = 0; i < data.test.size(); ++i) {
        pred[i] = data.test.refs[i].n_s +
                  m.predict_increment(data.test.x.Row(i), delta);
      }
      const auto metrics = eval::ComputeMetrics(pred, truth);
      mape_row.push_back(Table::Num(metrics.median_ape, 3));
      tau_row.push_back(Table::Num(metrics.kendall_tau, 3));
    }
    mape_table.AddRow(mape_row);
    tau_table.AddRow(tau_row);
  }

  mape_table.Print("Figure 1 (left): Median APE vs horizon");
  mape_table.WriteCsv("fig1_mape.csv");
  tau_table.Print("Figure 1 (right): Kendall tau vs horizon");
  tau_table.WriteCsv("fig1_tau.csv");

  // --- Replication on a second dataset (the paper used two datasets and
  // "obtained similar results"): different seed, different scale. ---
  {
    eval::ExperimentConfig config_b;
    config_b.examples.reference_horizons = grid;
    config_b.generator.seed = 20191107;  // "dataset 2"
    config_b.generator.num_posts = 1800;
    config_b.generator.base_mean_size = 220.0;
    eval::ExperimentData data_b = eval::PrepareExperiment(config_b);

    core::HawkesPredictor hwk_b = TrainHwk(data_b, grid, {2, 4, 6});
    baselines::PointBasedModels pb_b(eval::BenchGbdtParams());
    pb_b.Fit(data_b.train.x, grid, data_b.train.log1p_increments);

    Table table_b({"Horizon", "HWK (6h,1d,4d) MAPE", "PB MAPE",
                   "HWK tau", "PB tau"});
    for (double delta : grid) {
      const auto truth = eval::TrueCounts(data_b.dataset, data_b.test, delta);
      std::vector<double> hp(data_b.test.size()), pp(data_b.test.size());
      for (size_t i = 0; i < data_b.test.size(); ++i) {
        hp[i] = data_b.test.refs[i].n_s +
                hwk_b.PredictIncrement(data_b.test.x.Row(i), delta);
        pp[i] = data_b.test.refs[i].n_s +
                pb_b.PredictIncrement(data_b.test.x.Row(i), delta);
      }
      const auto hm = eval::ComputeMetrics(hp, truth);
      const auto pm = eval::ComputeMetrics(pp, truth);
      table_b.AddRow({FormatDuration(delta), Table::Num(hm.median_ape, 3),
                      Table::Num(pm.median_ape, 3), Table::Num(hm.kendall_tau, 3),
                      Table::Num(pm.kendall_tau, 3)});
    }
    table_b.Print("Replication on dataset B (different seed/scale)");
    table_b.WriteCsv("fig1_dataset_b.csv");
  }

  std::printf(
      "Paper shape to check: HWK variants track PB closely for delta > 24h;\n"
      "HF (1h,6h,1d,4d) dips at unseen horizons (3h, 12h, 2d) relative to\n"
      "HF (1h-7d); multi-reference HWK slightly beats single-reference;\n"
      "the dataset-B replication shows the same HWK-vs-PB relationship.\n");
  return 0;
}
