// Figure 11 (Appendix A.17): sensitivity of the single-reference HWK model
// to the choice of the reference horizon delta*.  Small delta* (1h, 3h)
// should do poorly on long horizons; gains saturate past delta* = 24h; the
// choice trades off short- vs long-horizon accuracy.
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/hawkes_predictor.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Reproduction of Figure 11 (Appendix A.17): delta* sensitivity.\n\n");

  const std::vector<double> grid = eval::PaperHorizonGrid();

  eval::ExperimentConfig config;
  config.examples.reference_horizons = grid;
  eval::ExperimentData data = eval::PrepareExperiment(config);

  // One single-reference model per delta* in the grid.
  std::vector<core::HawkesPredictor> models;
  for (size_t r = 0; r < grid.size(); ++r) {
    core::HawkesPredictorParams params;
    params.reference_horizons = {grid[r]};
    params.gbdt_count = eval::BenchGbdtParams();
    params.gbdt_alpha = eval::BenchGbdtParams();
    models.emplace_back(params);
    models.back().Fit(data.train.x, {data.train.log1p_increments[r]},
                      data.train.alpha_targets);
  }

  std::vector<std::string> header = {"Horizon"};
  for (double ref : grid) header.push_back("HWK(" + FormatDuration(ref) + ")");
  Table mape_table(header);
  Table tau_table(header);
  // Track the per-model average MAPE across horizons (the tuning criterion
  // used in the appendix).
  std::vector<double> avg_mape(models.size(), 0.0);

  for (double delta : grid) {
    const auto truth = eval::TrueCounts(data.dataset, data.test, delta);
    std::vector<std::string> mape_row = {FormatDuration(delta)};
    std::vector<std::string> tau_row = {FormatDuration(delta)};
    for (size_t m = 0; m < models.size(); ++m) {
      std::vector<double> pred(data.test.size());
      for (size_t i = 0; i < data.test.size(); ++i) {
        pred[i] = data.test.refs[i].n_s +
                  models[m].PredictIncrement(data.test.x.Row(i), delta);
      }
      const auto metrics = eval::ComputeMetrics(pred, truth);
      mape_row.push_back(Table::Num(metrics.median_ape, 3));
      tau_row.push_back(Table::Num(metrics.kendall_tau, 3));
      avg_mape[m] += metrics.median_ape / static_cast<double>(grid.size());
    }
    mape_table.AddRow(mape_row);
    tau_table.AddRow(tau_row);
  }
  mape_table.Print("Figure 11 (top): Median APE vs horizon, per delta*");
  mape_table.WriteCsv("fig11_mape.csv");
  tau_table.Print("Figure 11 (bottom): Kendall tau vs horizon, per delta*");
  tau_table.WriteCsv("fig11_tau.csv");

  Table avg_table({"delta*", "avg Median APE across horizons"});
  size_t best = 0;
  for (size_t m = 0; m < models.size(); ++m) {
    avg_table.AddRow({FormatDuration(grid[m]), Table::Num(avg_mape[m], 3)});
    if (avg_mape[m] < avg_mape[best]) best = m;
  }
  avg_table.Print("Tuning criterion: average Median APE (lower is better)");
  avg_table.WriteCsv("fig11_avg.csv");
  std::printf("best single delta* by average Median APE: %s\n\n",
              FormatDuration(grid[best]).c_str());

  std::printf("Paper shape to check: delta* = 1h/3h poor on long horizons; "
              "gains saturate\nbeyond 24h; short-horizon accuracy favors small "
              "delta* -- a trade-off.\n");
  return 0;
}
