// Ablation: the sliding-window layout behind the velocity features --
// the constant-time proxy for the stochastic intensity lambda(s) (Sec. 4,
// "Hawkes with exponential kernel").  Sweeps the window bank and the DGIM
// approximation accuracy and reports downstream accuracy of HWK (1d).
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/hawkes_predictor.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace {
using namespace horizon;

struct Variant {
  std::string name;
  std::vector<double> windows;
  double epsilon;
};

}  // namespace

int main() {
  std::printf("Ablation: velocity-window layout and DGIM epsilon.\n\n");

  const std::vector<Variant> variants = {
      {"single 15m", {15 * kMinute}, 0.05},
      {"single 6h", {6 * kHour}, 0.05},
      {"bank {15m,1h,6h,1d}", {15 * kMinute, kHour, 6 * kHour, kDay}, 0.05},
      {"bank, coarse eps=0.5", {15 * kMinute, kHour, 6 * kHour, kDay}, 0.5},
  };
  const std::vector<double> eval_horizons = {3 * kHour, 1 * kDay, 4 * kDay};

  std::vector<std::string> header = {"Tracker variant"};
  for (double d : eval_horizons) header.push_back("MAPE @" + FormatDuration(d));
  header.push_back("features");
  Table table(header);

  for (const auto& variant : variants) {
    eval::ExperimentConfig config;
    config.tracker.window_lengths = variant.windows;
    config.tracker.epsilon = variant.epsilon;
    config.examples.reference_horizons = {1 * kDay};
    eval::ExperimentData data = eval::PrepareExperiment(config);

    core::HawkesPredictorParams params;
    params.reference_horizons = {1 * kDay};
    params.gbdt_count = eval::BenchGbdtParams();
    params.gbdt_alpha = eval::BenchGbdtParams();
    core::HawkesPredictor model(params);
    model.Fit(data.train.x, data.train.log1p_increments, data.train.alpha_targets);

    std::vector<std::string> row = {variant.name};
    for (double delta : eval_horizons) {
      const auto truth = eval::TrueCounts(data.dataset, data.test, delta);
      std::vector<double> pred(data.test.size());
      for (size_t i = 0; i < data.test.size(); ++i) {
        pred[i] = data.test.refs[i].n_s +
                  model.PredictIncrement(data.test.x.Row(i), delta);
      }
      row.push_back(Table::Num(eval::MedianApe(pred, truth), 3));
    }
    row.push_back(std::to_string(data.extractor->schema().size()));
    table.AddRow(row);
  }
  table.Print("Velocity-window ablation: downstream Median APE of HWK(1d)");
  table.WriteCsv("ablation_velocity_window.csv");

  std::printf("Expected: differences are small -- the EWMA rate already carries "
              "most of\nthe lambda(s) signal -- and a coarse DGIM epsilon costs "
              "almost nothing\n(the GBDT absorbs bounded counter noise), which "
              "is why the O(log)-space\ncounters are safe at production "
              "scale.\n");
  return 0;
}
