// Figure 10 (Appendix A.12): aggregate "fresh" view counts per 30-minute
// bin vs content age, with daily seasonality.  Under exponential decay the
// series is ~linear on semi-log axes over several days; under power-law
// decay it would be linear on log-log axes.  We fit both and report R^2,
// reproducing the paper's conclusion that the exponential hypothesis fits
// and the power-law one does not.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/math_util.h"
#include "common/table.h"
#include "datagen/generator.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Reproduction of Figure 10 (Appendix A.12): aggregate intensity "
              "decay.\n\n");

  datagen::GeneratorConfig config;
  config.num_pages = 300;
  config.num_posts = 2600;
  config.base_mean_size = 150.0;
  config.seasonality_amplitude = 0.5;  // daily seasonality, as in the figure
  config.seed = 20211215;
  const auto data = datagen::Generator(config).Generate();

  const double bin = 30 * kMinute;
  const int num_bins = static_cast<int>(7 * kDay / bin);
  std::vector<double> counts(num_bins, 0.0);
  for (const auto& cascade : data.cascades) {
    for (const auto& e : cascade.views) {
      const int b = static_cast<int>(e.time / bin);
      if (b < num_bins) counts[static_cast<size_t>(b)] += 1.0;
    }
  }

  Table table({"age (h)", "views per 30-min bin"});
  for (int b = 0; b < num_bins; b += 4) {  // print every 2 hours
    table.AddRow({Table::Num((b + 0.5) * bin / kHour, 4),
                  Table::Num(counts[static_cast<size_t>(b)], 6)});
  }
  table.Print("Figure 10: aggregate fresh view counts (30-min bins)");
  table.WriteCsv("fig10.csv");

  // Hypothesis tests on daily-averaged counts (averaging out seasonality),
  // over the window [0.5d, 6d].
  std::vector<double> t_lin, log_count, log_t;
  const int day_bins = static_cast<int>(kDay / bin);
  for (int d = 0; d < 6; ++d) {
    double sum = 0.0;
    for (int b = d * day_bins; b < (d + 1) * day_bins; ++b) {
      sum += counts[static_cast<size_t>(b)];
    }
    const double avg = sum / day_bins;
    if (avg <= 0.0) continue;
    const double t_mid = (d + 0.5);
    t_lin.push_back(t_mid);
    log_count.push_back(std::log(avg));
    log_t.push_back(std::log(t_mid));
  }
  const LinearFit semilog = FitLine(t_lin, log_count);   // exponential decay
  const LinearFit loglog = FitLine(log_t, log_count);    // power-law decay

  Table fits({"hypothesis", "axes", "slope", "R^2"});
  fits.AddRow({"exponential decay", "linear t, log y", Table::Num(semilog.slope, 4),
               Table::Num(semilog.r2, 4)});
  fits.AddRow({"power-law decay", "log t, log y", Table::Num(loglog.slope, 4),
               Table::Num(loglog.r2, 4)});
  fits.Print("Decay-hypothesis fits on daily-averaged counts, days 0-6");
  fits.WriteCsv("fig10_fits.csv");

  std::printf("Paper shape to check: daily seasonality in the binned series; "
              "the semi-log\n(exponential) fit explains the multi-day trend "
              "better than the log-log\n(power-law) fit.\n");
  return 0;
}
