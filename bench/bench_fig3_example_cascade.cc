// Figure 3 (Appendix A.1): an example post's popularity growth --
// cumulative views and views per 30-minute bin, exhibiting several bursts
// of view activity.  We pick a large multi-burst cascade from the
// generator and print both series.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "common/units.h"
#include "datagen/generator.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Reproduction of Figure 3 (Appendix A.1): example cascade series.\n\n");

  datagen::GeneratorConfig config;
  config.num_pages = 100;
  config.num_posts = 600;
  config.base_mean_size = 250.0;
  config.seed = 424242;
  const auto data = datagen::Generator(config).Generate();

  // Pick the cascade with the most distinct activity bursts over >= 2 days:
  // count 30-min bins that are local maxima above 5% of the peak bin.
  const double bin = 30 * kMinute;
  size_t best = 0;
  int best_bursts = -1;
  for (size_t c = 0; c < data.cascades.size(); ++c) {
    const auto& cascade = data.cascades[c];
    if (cascade.TotalViews() < 2000) continue;
    if (cascade.DurationAtFraction(0.95) < 2 * kDay) continue;
    const int num_bins = static_cast<int>(4 * kDay / bin);
    std::vector<int> counts(num_bins, 0);
    for (const auto& e : cascade.views) {
      const int b = static_cast<int>(e.time / bin);
      if (b < num_bins) ++counts[b];
    }
    int peak = 0;
    for (int v : counts) peak = std::max(peak, v);
    int bursts = 0;
    for (int b = 1; b + 1 < num_bins; ++b) {
      if (counts[b] > counts[b - 1] && counts[b] >= counts[b + 1] &&
          counts[b] > peak / 20) {
        ++bursts;
      }
    }
    if (bursts > best_bursts) {
      best_bursts = bursts;
      best = c;
    }
  }

  const auto& cascade = data.cascades[best];
  std::printf("example post: id=%d media=%s total views=%zu bursts=%d "
              "duration(0.95)=%.1fd\n\n",
              cascade.post.id, datagen::MediaTypeName(cascade.post.media),
              cascade.TotalViews(), best_bursts,
              cascade.DurationAtFraction(0.95) / kDay);

  Table table({"age (h)", "views in 30-min bin", "cumulative views"});
  const int num_bins = static_cast<int>(4 * kDay / bin);
  size_t cumulative = 0, idx = 0;
  for (int b = 0; b < num_bins; ++b) {
    const double t_end = (b + 1) * bin;
    size_t in_bin = 0;
    while (idx < cascade.views.size() && cascade.views[idx].time < t_end) {
      ++in_bin;
      ++idx;
    }
    cumulative += in_bin;
    if (b % 2 == 0) {  // print hourly rows to keep the table readable
      table.AddRow({Table::Num(t_end / kHour, 4), std::to_string(in_bin),
                    std::to_string(cumulative)});
    }
  }
  table.Print("Figure 3: example cascade (30-min bins, printed hourly)");
  table.WriteCsv("fig3.csv");

  std::printf("Paper shape to check: multiple bursts of view activity, some soon "
              "after\ncreation and some days later; cumulative curve with "
              "visible inflections.\n");
  return 0;
}
