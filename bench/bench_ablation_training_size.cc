// Ablation: learning curve -- prediction accuracy of HWK (6h,1d,4d) as a
// function of the number of training cascades.  Quantifies how much
// labeled history a deployment needs before the feature-based model beats
// the training-free velocity predictor.
#include <cstdio>
#include <vector>

#include "common/table.h"
#include "core/hawkes_predictor.h"
#include "core/velocity_predictor.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "stream/cascade_tracker.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Ablation: learning curve over training-set size.\n\n");

  eval::ExperimentConfig config;
  eval::ExperimentData data = eval::PrepareExperiment(config);
  const double delta = 1 * kDay;
  const auto truth = eval::TrueCounts(data.dataset, data.test, delta);

  // Training-free reference: velocity predictor on replayed trackers.
  double velocity_mape = 0.0;
  {
    core::VelocityHawkesPredictor velocity;
    std::vector<double> pred(data.test.size());
    for (size_t i = 0; i < data.test.size(); ++i) {
      const auto& ref = data.test.refs[i];
      const auto snapshot = data.extractor->ReplaySnapshot(
          data.dataset.cascades[ref.cascade_index], ref.prediction_age);
      pred[i] = ref.n_s + velocity.PredictIncrement(snapshot, delta);
    }
    velocity_mape = eval::MedianApe(pred, truth);
  }

  Table table({"train cascades", "examples", "HWK MAPE", "HWK tau",
               "beats velocity?"});
  for (size_t train_cascades : {25u, 50u, 100u, 400u, 1200u}) {
    if (train_cascades > data.split.train.size()) break;
    std::vector<size_t> subset(data.split.train.begin(),
                               data.split.train.begin() +
                                   static_cast<ptrdiff_t>(train_cascades));
    const auto examples = core::BuildExampleSet(data.dataset, subset,
                                                *data.extractor, config.examples);
    core::HawkesPredictorParams params;
    params.reference_horizons = config.examples.reference_horizons;
    params.gbdt_count = eval::BenchGbdtParams();
    params.gbdt_alpha = eval::BenchGbdtParams();
    params.gbdt_count.tree.min_samples_leaf =
        train_cascades < 100 ? 3 : params.gbdt_count.tree.min_samples_leaf;
    params.gbdt_alpha.tree.min_samples_leaf =
        params.gbdt_count.tree.min_samples_leaf;
    core::HawkesPredictor model(params);
    model.Fit(examples.x, examples.log1p_increments, examples.alpha_targets);

    std::vector<double> pred(data.test.size());
    for (size_t i = 0; i < data.test.size(); ++i) {
      pred[i] = data.test.refs[i].n_s +
                model.PredictIncrement(data.test.x.Row(i), delta);
    }
    const auto metrics = eval::ComputeMetrics(pred, truth);
    table.AddRow({std::to_string(train_cascades), std::to_string(examples.size()),
                  Table::Num(metrics.median_ape, 3),
                  Table::Num(metrics.kendall_tau, 3),
                  metrics.median_ape < velocity_mape ? "yes" : "no"});
  }
  table.Print("Learning curve at the 1d horizon");
  table.WriteCsv("ablation_training_size.csv");
  std::printf("training-free velocity predictor MAPE at 1d: %.3f\n\n",
              velocity_mape);
  std::printf("Shape to check: accuracy improves steeply up to a few hundred "
              "cascades and\nsaturates; even small training sets beat the "
              "training-free fallback.\n");
  return 0;
}
