// Figure 7 (Appendix A.2): median and quartiles of the effective-growth-
// exponent estimates conditional on cascade size (normalized by the mean).
// The paper observes a decrease for small cascades and near-invariance for
// larger ones.
#include <cstdio>
#include <vector>

#include "common/math_util.h"
#include "common/table.h"
#include "core/alpha_estimator.h"
#include "datagen/generator.h"

namespace {
using namespace horizon;
}  // namespace

int main() {
  std::printf("Reproduction of Figure 7 (Appendix A.2): alpha estimates vs "
              "cascade size.\n\n");

  datagen::GeneratorConfig config;
  config.num_pages = 300;
  config.num_posts = 2600;
  config.base_mean_size = 150.0;
  config.seed = 20211215;
  const auto data = datagen::Generator(config).Generate();

  double mean_size = 0.0;
  for (const auto& c : data.cascades) mean_size += static_cast<double>(c.TotalViews());
  mean_size /= static_cast<double>(data.cascades.size());

  struct Bin {
    double lo, hi;
    std::vector<double> mean_est;
    std::vector<double> median_est;
  };
  std::vector<Bin> bins;
  for (double lo = 0.01; lo < 100.0; lo *= 3.0) {
    bins.push_back({lo, lo * 3.0, {}, {}});
  }

  core::AlphaEstimatorOptions mean_opt;   // start 0
  core::AlphaEstimatorOptions median_opt;
  median_opt.start_time = kHour;          // the more robust variant
  median_opt.gamma = 0.5;

  for (const auto& cascade : data.cascades) {
    if (cascade.TotalViews() < 10) continue;
    const double norm = static_cast<double>(cascade.TotalViews()) / mean_size;
    std::vector<double> times;
    for (const auto& e : cascade.views) times.push_back(e.time);
    const double a_mean =
        core::EstimateAlpha(core::AlphaEstimatorKind::kMeanValue, times, mean_opt);
    const double a_median = core::EstimateAlpha(
        core::AlphaEstimatorKind::kQuantileValue, times, median_opt);
    for (auto& bin : bins) {
      if (norm >= bin.lo && norm < bin.hi) {
        if (a_mean > 0) bin.mean_est.push_back(a_mean * kDay);
        if (a_median > 0) bin.median_est.push_back(a_median * kDay);
        break;
      }
    }
  }

  Table table({"norm. size bin", "n", "mean est q25", "mean est q50", "mean est q75",
               "median est q25", "median est q50", "median est q75"});
  for (const auto& bin : bins) {
    if (bin.mean_est.size() < 10) continue;
    char label[64];
    std::snprintf(label, sizeof(label), "[%.2f, %.2f)", bin.lo, bin.hi);
    table.AddRow({label, std::to_string(bin.mean_est.size()),
                  Table::Num(Quantile(bin.mean_est, 0.25), 3),
                  Table::Num(Quantile(bin.mean_est, 0.5), 3),
                  Table::Num(Quantile(bin.mean_est, 0.75), 3),
                  Table::Num(Quantile(bin.median_est, 0.25), 3),
                  Table::Num(Quantile(bin.median_est, 0.5), 3),
                  Table::Num(Quantile(bin.median_est, 0.75), 3)});
  }
  table.Print("Figure 7: alpha estimate quartiles vs normalized cascade size (1/day)");
  table.WriteCsv("fig7.csv");

  std::printf("Paper shape to check: estimates decrease with size for small "
              "cascades, then\nstay largely invariant; the median-value (start "
              "1h) variant is the more\nstable of the two.\n");
  return 0;
}
