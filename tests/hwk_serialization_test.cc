#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "core/hawkes_predictor.h"

namespace horizon::core {
namespace {

// Small trained model over a toy problem (same construction as
// hawkes_predictor_test).
HawkesPredictor TrainToyModel(const std::vector<double>& refs,
                              Aggregation agg = Aggregation::kGeometricMean) {
  const size_t n = 800;
  gbdt::DataMatrix x(n, 2);
  std::vector<std::vector<double>> targets(refs.size());
  std::vector<double> alphas;
  Rng rng(31);
  for (size_t i = 0; i < n; ++i) {
    const double alpha =
        std::exp(rng.Uniform(std::log(0.3 / kDay), std::log(6.0 / kDay)));
    const double final_inc = std::exp(rng.Uniform(std::log(30.0), std::log(2000.0)));
    x.Set(i, 0, static_cast<float>(std::log(final_inc)));
    x.Set(i, 1, static_cast<float>(std::log(alpha * kDay)));
    for (size_t h = 0; h < refs.size(); ++h) {
      targets[h].push_back(std::log1p(final_inc * -std::expm1(-alpha * refs[h])));
    }
    alphas.push_back(alpha);
  }
  HawkesPredictorParams params;
  params.reference_horizons = refs;
  params.aggregation = agg;
  params.gbdt_count.num_trees = 30;
  params.gbdt_alpha.num_trees = 30;
  HawkesPredictor model(params);
  model.Fit(x, targets, alphas);
  return model;
}

TEST(HwkSerializationTest, RoundTripPredictionsIdentical) {
  const std::vector<double> refs = {6 * kHour, 1 * kDay, 4 * kDay};
  const HawkesPredictor original = TrainToyModel(refs);
  const std::string blob = original.Serialize();

  HawkesPredictor restored;
  ASSERT_TRUE(restored.Deserialize(blob));
  EXPECT_TRUE(restored.trained());
  EXPECT_EQ(restored.num_reference_horizons(), 3u);

  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    const float row[2] = {static_cast<float>(rng.Uniform(3.0, 7.0)),
                          static_cast<float>(rng.Uniform(-1.0, 2.0))};
    for (double delta : {1 * kHour, 12 * kHour, 2 * kDay, 7 * kDay}) {
      EXPECT_DOUBLE_EQ(original.PredictIncrement(row, delta),
                       restored.PredictIncrement(row, delta));
    }
    EXPECT_DOUBLE_EQ(original.PredictAlpha(row), restored.PredictAlpha(row));
    EXPECT_DOUBLE_EQ(original.PredictFinalIncrement(row),
                     restored.PredictFinalIncrement(row));
  }
}

TEST(HwkSerializationTest, PreservesAggregationAndParams) {
  const HawkesPredictor arith =
      TrainToyModel({6 * kHour, 1 * kDay}, Aggregation::kArithmeticMean);
  HawkesPredictor restored;
  ASSERT_TRUE(restored.Deserialize(arith.Serialize()));
  EXPECT_EQ(restored.params().aggregation, Aggregation::kArithmeticMean);
  EXPECT_DOUBLE_EQ(restored.params().reference_horizons[0], 6 * kHour);
  EXPECT_DOUBLE_EQ(restored.params().alpha_min, arith.params().alpha_min);
}

TEST(HwkSerializationTest, RejectsGarbage) {
  HawkesPredictor model;
  EXPECT_FALSE(model.Deserialize(""));
  EXPECT_FALSE(model.Deserialize("hwk v2\n1 geo 0.1 1\n100\n"));
  EXPECT_FALSE(model.Deserialize("not a model at all"));
}

TEST(HwkSerializationTest, RejectsTruncatedBlob) {
  const HawkesPredictor original = TrainToyModel({1 * kDay});
  std::string blob = original.Serialize();
  blob.resize(blob.size() / 2);
  HawkesPredictor restored;
  EXPECT_FALSE(restored.Deserialize(blob));
}

TEST(HwkSerializationTest, FuzzTruncationsNeverCrash) {
  // Any prefix of a valid blob must be rejected cleanly (never crash,
  // never yield a trained model from a strict prefix).
  const HawkesPredictor original = TrainToyModel({6 * kHour, 1 * kDay});
  const std::string blob = original.Serialize();
  Rng rng(71);
  for (int i = 0; i < 60; ++i) {
    const size_t cut = rng.UniformInt(blob.size());
    HawkesPredictor restored;
    EXPECT_FALSE(restored.Deserialize(blob.substr(0, cut))) << "cut=" << cut;
  }
}

TEST(HwkSerializationTest, FuzzByteCorruptionsNeverCrash) {
  // Flipping bytes must either fail cleanly or produce a loadable model;
  // it must never crash or CHECK-fail.
  const HawkesPredictor original = TrainToyModel({1 * kDay});
  const std::string blob = original.Serialize();
  Rng rng(73);
  for (int i = 0; i < 60; ++i) {
    std::string corrupted = blob;
    const size_t pos = rng.UniformInt(corrupted.size());
    corrupted[pos] = static_cast<char>(rng.UniformInt(256));
    HawkesPredictor restored;
    const bool ok = restored.Deserialize(corrupted);
    if (ok) {
      // If it parsed, it must be usable.
      const float row[2] = {5.0f, 0.0f};
      const double v = restored.PredictIncrement(row, 1 * kDay);
      EXPECT_GE(v, 0.0);
    }
  }
}

}  // namespace
}  // namespace horizon::core
