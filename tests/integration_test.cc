// End-to-end test: generate a synthetic workload, train the HWK predictor
// and the PB baseline, and check that accuracies land in the regime the
// paper reports (HWK consistent across horizons; comparable to PB).
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/feature_models.h"
#include "core/hawkes_predictor.h"
#include "core/trainer.h"
#include "datagen/generator.h"
#include "eval/metrics.h"
#include "eval/split.h"
#include "features/extractor.h"

namespace horizon {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GeneratorConfig config;
    config.num_pages = 120;
    config.num_posts = 900;
    config.base_mean_size = 120.0;
    config.max_views_per_cascade = 60000;
    config.seed = 2021;
    dataset_ = new datagen::SyntheticDataset(datagen::Generator(config).Generate());
    extractor_ = new features::FeatureExtractor(stream::TrackerConfig{});

    const eval::Split split = eval::SplitIndices(dataset_->cascades.size(), 0.3, 9);

    core::ExampleSetOptions options;
    options.reference_horizons = {6 * kHour, 1 * kDay, 4 * kDay};
    options.samples_per_cascade = 2;
    options.seed = 13;
    train_ = new core::ExampleSet(
        core::BuildExampleSet(*dataset_, split.train, *extractor_, options));
    test_ = new core::ExampleSet(
        core::BuildExampleSet(*dataset_, split.test, *extractor_, options));
  }

  static void TearDownTestSuite() {
    delete dataset_;
    delete extractor_;
    delete train_;
    delete test_;
    dataset_ = nullptr;
  }

  static gbdt::GbdtParams Gbdt() {
    gbdt::GbdtParams params;
    params.num_trees = 80;
    params.tree.max_depth = 5;
    params.tree.min_samples_leaf = 10;
    return params;
  }

  static datagen::SyntheticDataset* dataset_;
  static features::FeatureExtractor* extractor_;
  static core::ExampleSet* train_;
  static core::ExampleSet* test_;
};

datagen::SyntheticDataset* EndToEndTest::dataset_ = nullptr;
features::FeatureExtractor* EndToEndTest::extractor_ = nullptr;
core::ExampleSet* EndToEndTest::train_ = nullptr;
core::ExampleSet* EndToEndTest::test_ = nullptr;

TEST_F(EndToEndTest, HawkesPredictorBeatsNaiveAcrossHorizons) {
  core::HawkesPredictorParams params;
  params.reference_horizons = {6 * kHour, 1 * kDay, 4 * kDay};
  params.gbdt_count = Gbdt();
  params.gbdt_alpha = Gbdt();
  core::HawkesPredictor model(params);
  model.Fit(train_->x, train_->log1p_increments, train_->alpha_targets);

  for (double delta : {3 * kHour, 1 * kDay, 2 * kDay}) {
    std::vector<double> pred, truth, naive;
    for (size_t i = 0; i < test_->size(); ++i) {
      const auto& ref = test_->refs[i];
      const double true_inc = core::TrueIncrement(
          dataset_->cascades[ref.cascade_index], ref.prediction_age, delta);
      if (ref.n_s + true_inc <= 0.0) continue;
      pred.push_back(ref.n_s + model.PredictIncrement(test_->x.Row(i), delta));
      naive.push_back(ref.n_s);  // "no further growth" baseline
      truth.push_back(ref.n_s + true_inc);
    }
    ASSERT_GT(pred.size(), 100u);
    const auto model_metrics = eval::ComputeMetrics(pred, truth);
    const auto naive_metrics = eval::ComputeMetrics(naive, truth);
    // Sanity: learned model must beat "popularity freezes now".
    EXPECT_LT(model_metrics.median_ape, naive_metrics.median_ape)
        << "delta=" << delta;
    EXPECT_LT(model_metrics.median_ape, 1.0) << "delta=" << delta;
    EXPECT_GT(model_metrics.kendall_tau, 0.55) << "delta=" << delta;
  }
}

TEST_F(EndToEndTest, HawkesComparableToPointBasedAtUnseenHorizon) {
  // HWK trained with refs {6h, 1d, 4d}; PB trained exactly at 2d.
  core::HawkesPredictorParams params;
  params.reference_horizons = {6 * kHour, 1 * kDay, 4 * kDay};
  params.gbdt_count = Gbdt();
  params.gbdt_alpha = Gbdt();
  core::HawkesPredictor hwk(params);
  hwk.Fit(train_->x, train_->log1p_increments, train_->alpha_targets);

  const double delta = 2 * kDay;
  // Build PB targets for 2d from the same training examples.
  std::vector<double> pb_targets;
  for (const auto& ref : train_->refs) {
    pb_targets.push_back(std::log1p(core::TrueIncrement(
        dataset_->cascades[ref.cascade_index], ref.prediction_age, delta)));
  }
  baselines::PointBasedModels pb(Gbdt());
  pb.Fit(train_->x, {delta}, {pb_targets});

  std::vector<double> hwk_pred, pb_pred, truth;
  for (size_t i = 0; i < test_->size(); ++i) {
    const auto& ref = test_->refs[i];
    const double t = ref.n_s + core::TrueIncrement(
        dataset_->cascades[ref.cascade_index], ref.prediction_age, delta);
    if (t <= 0.0) continue;
    hwk_pred.push_back(ref.n_s + hwk.PredictIncrement(test_->x.Row(i), delta));
    pb_pred.push_back(ref.n_s + pb.PredictIncrement(test_->x.Row(i), delta));
    truth.push_back(t);
  }
  const double hwk_ape = eval::MedianApe(hwk_pred, truth);
  const double pb_ape = eval::MedianApe(pb_pred, truth);
  // The paper's finding: HWK reaches parity with per-horizon models on
  // longer horizons.  Allow a modest band.
  EXPECT_LT(hwk_ape, pb_ape * 1.35);
}

TEST_F(EndToEndTest, AlphaPredictionsCorrelateWithGroundTruth) {
  core::HawkesPredictorParams params;
  params.reference_horizons = {1 * kDay};
  params.gbdt_count = Gbdt();
  params.gbdt_alpha = Gbdt();
  core::HawkesPredictor model(params);
  // The shared example set carries targets for {6h, 1d, 4d}; this model
  // uses only the 1d reference.
  model.Fit(train_->x, {train_->log1p_increments[1]}, train_->alpha_targets);

  std::vector<double> predicted, truth;
  for (size_t i = 0; i < test_->size(); ++i) {
    const auto& ref = test_->refs[i];
    predicted.push_back(std::log(model.PredictAlpha(test_->x.Row(i))));
    truth.push_back(std::log(dataset_->cascades[ref.cascade_index].post.TrueAlpha()));
  }
  EXPECT_GT(eval::KendallTau(predicted, truth), 0.25);
}

TEST_F(EndToEndTest, ConstantTimePredictionIndependentOfCascadeSize) {
  // The feature vector has fixed width; prediction cost must not depend on
  // cascade size.  We check the structural property: rows for the largest
  // and smallest cascades have identical dimensionality.
  size_t small_idx = 0, large_idx = 0;
  for (size_t i = 0; i < dataset_->cascades.size(); ++i) {
    if (dataset_->cascades[i].TotalViews() <
        dataset_->cascades[small_idx].TotalViews()) {
      small_idx = i;
    }
    if (dataset_->cascades[i].TotalViews() >
        dataset_->cascades[large_idx].TotalViews()) {
      large_idx = i;
    }
  }
  ASSERT_GT(dataset_->cascades[large_idx].TotalViews(),
            dataset_->cascades[small_idx].TotalViews());
  const auto snap_small =
      extractor_->ReplaySnapshot(dataset_->cascades[small_idx], kDay);
  const auto snap_large =
      extractor_->ReplaySnapshot(dataset_->cascades[large_idx], kDay);
  const auto row_small =
      extractor_->Extract(dataset_->PageOf(dataset_->cascades[small_idx].post),
                          dataset_->cascades[small_idx].post, snap_small);
  const auto row_large =
      extractor_->Extract(dataset_->PageOf(dataset_->cascades[large_idx].post),
                          dataset_->cascades[large_idx].post, snap_large);
  EXPECT_EQ(row_small.size(), row_large.size());
}

}  // namespace
}  // namespace horizon
