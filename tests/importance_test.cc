#include "eval/importance.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace horizon::eval {
namespace {

TEST(PermutationImportanceTest, InformativeFeatureDominates) {
  Rng rng(3);
  const size_t n = 1500;
  gbdt::DataMatrix x(n, 3);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < 3; ++f) x.Set(i, f, static_cast<float>(rng.Uniform()));
    y[i] = 8.0 * x.Get(i, 1) + rng.Normal(0.0, 0.05);
  }
  gbdt::GbdtParams params;
  params.num_trees = 50;
  gbdt::GbdtRegressor model(params);
  model.Fit(x, y);

  const auto importance = PermutationImportance(model, x, y, /*repeats=*/2);
  ASSERT_EQ(importance.size(), 3u);
  EXPECT_GT(importance[1], 0.9);
  const double total = std::accumulate(importance.begin(), importance.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PermutationImportanceTest, DoesNotMutateInput) {
  Rng rng(5);
  gbdt::DataMatrix x(200, 2);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    x.Set(i, 0, static_cast<float>(rng.Uniform()));
    x.Set(i, 1, static_cast<float>(rng.Uniform()));
    y[i] = x.Get(i, 0);
  }
  gbdt::DataMatrix copy = x;
  gbdt::GbdtParams params;
  params.num_trees = 20;
  gbdt::GbdtRegressor model(params);
  model.Fit(x, y);
  PermutationImportance(model, x, y);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(x.Get(i, 0), copy.Get(i, 0));
    EXPECT_EQ(x.Get(i, 1), copy.Get(i, 1));
  }
}

TEST(AggregateByCategoryTest, SumsWithinCategories) {
  features::FeatureSchema schema;
  schema.Add("a", features::FeatureCategory::kContent);
  schema.Add("b", features::FeatureCategory::kPage);
  schema.Add("c", features::FeatureCategory::kContent);
  const std::vector<double> importances = {0.2, 0.5, 0.3};
  const auto by_cat = AggregateByCategory(schema, importances);
  EXPECT_DOUBLE_EQ(by_cat[static_cast<int>(features::FeatureCategory::kContent)], 0.5);
  EXPECT_DOUBLE_EQ(by_cat[static_cast<int>(features::FeatureCategory::kPage)], 0.5);
  EXPECT_DOUBLE_EQ(by_cat[static_cast<int>(features::FeatureCategory::kOther)], 0.0);
}

}  // namespace
}  // namespace horizon::eval
