#include "common/math_util.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

namespace horizon {
namespace {

TEST(Log1mExpTest, MatchesNaiveForModerateValues) {
  for (double x : {0.1, 0.5, 0.7, 1.0, 2.0, 5.0, 20.0}) {
    EXPECT_NEAR(Log1mExp(x), std::log(1.0 - std::exp(-x)), 1e-12) << "x=" << x;
  }
}

TEST(Log1mExpTest, AccurateForTinyValues) {
  // 1 - e^{-x} ~ x for tiny x; naive log(1 - exp(-x)) loses precision.
  const double x = 1e-12;
  EXPECT_NEAR(Log1mExp(x), std::log(x), 1e-6);
}

TEST(Log1mExpTest, ZeroGivesNegativeInfinity) {
  EXPECT_EQ(Log1mExp(0.0), -std::numeric_limits<double>::infinity());
}

TEST(Log1mExpTest, LargeValuesApproachZero) {
  EXPECT_NEAR(Log1mExp(50.0), 0.0, 1e-20);
  EXPECT_LT(Log1mExp(50.0), 0.0);
}

TEST(LogAddExpTest, MatchesNaive) {
  EXPECT_NEAR(LogAddExp(1.0, 2.0), std::log(std::exp(1.0) + std::exp(2.0)), 1e-12);
}

TEST(LogAddExpTest, HandlesLargeMagnitudes) {
  EXPECT_NEAR(LogAddExp(1000.0, 1000.0), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogAddExp(-1000.0, 0.0), 0.0, 1e-9);
}

TEST(LogAddExpTest, NegativeInfinityIdentity) {
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_EQ(LogAddExp(ninf, 3.0), 3.0);
  EXPECT_EQ(LogAddExp(3.0, ninf), 3.0);
}

TEST(ClampTest, Basic) {
  EXPECT_EQ(Clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_EQ(Clamp(-1.0, 0.0, 10.0), 0.0);
  EXPECT_EQ(Clamp(11.0, 0.0, 10.0), 10.0);
}

TEST(KahanSumTest, CompensatesSmallAdditions) {
  KahanSum sum;
  sum.Add(1e16);
  for (int i = 0; i < 10000; ++i) sum.Add(1.0);
  sum.Add(-1e16);
  EXPECT_NEAR(sum.value(), 10000.0, 1e-6);
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> values = {1.0, 2.0, 4.0, 8.0, 16.0};
  for (double v : values) stats.Add(v);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean(), 6.2);
  // Unbiased variance of {1,2,4,8,16}.
  double m2 = 0.0;
  for (double v : values) m2 += (v - 6.2) * (v - 6.2);
  EXPECT_NEAR(stats.variance(), m2 / 4.0, 1e-12);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 16.0);
}

TEST(RunningStatsTest, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.variance(), 0.0);
  stats.Add(3.0);
  EXPECT_EQ(stats.mean(), 3.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(QuantileTest, KnownValues) {
  const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_NEAR(Quantile(v, 0.25), 1.75, 1e-12);
}

TEST(QuantileTest, SingleAndEmpty) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.9), 7.0);
  EXPECT_TRUE(std::isnan(Quantile({}, 0.5)));
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(FitLineTest, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.5 * i - 7.0);
  }
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(FitLineTest, NoisyLineHasLowerR2) {
  std::vector<double> x, y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(i);
    y.push_back(i + ((i % 2 == 0) ? 30.0 : -30.0));
  }
  const LinearFit fit = FitLine(x, y);
  EXPECT_GT(fit.r2, 0.0);
  EXPECT_LT(fit.r2, 0.95);
}

TEST(FitLineTest, DegenerateInputs) {
  EXPECT_EQ(FitLine({1.0}, {2.0}).slope, 0.0);
  // Constant x: no slope derivable.
  const LinearFit fit = FitLine({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(fit.slope, 0.0);
}

TEST(PearsonTest, PerfectCorrelations) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, DegenerateReturnsNaN) {
  EXPECT_TRUE(std::isnan(PearsonCorrelation({1.0, 1.0}, {2.0, 3.0})));
}

}  // namespace
}  // namespace horizon
