#include "eval/metrics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace horizon::eval {
namespace {

TEST(MedianApeTest, HandComputed) {
  // APEs: |9-10|/10 = 0.1, |30-20|/20 = 0.5, |40-40|/40 = 0 -> median 0.1.
  EXPECT_DOUBLE_EQ(MedianApe({9.0, 30.0, 40.0}, {10.0, 20.0, 40.0}), 0.1);
}

TEST(MedianApeTest, DropsZeroTruths) {
  // The item with zero truth is dropped; remaining APEs {0.1, 0.5}.
  EXPECT_DOUBLE_EQ(MedianApe({9.0, 30.0, 5.0}, {10.0, 20.0, 0.0}), 0.3);
}

TEST(MedianApeTest, AllZeroTruthsIsNaN) {
  EXPECT_TRUE(std::isnan(MedianApe({1.0}, {0.0})));
}

TEST(RmseTest, HandComputed) {
  // Errors {3, -4}: RMSE = sqrt((9 + 16)/2) = 3.5355...
  EXPECT_NEAR(Rmse({4.0, 0.0}, {1.0, 4.0}), std::sqrt(12.5), 1e-12);
}

TEST(RmseTest, PerfectPredictionIsZero) {
  EXPECT_DOUBLE_EQ(Rmse({1.0, 2.0}, {1.0, 2.0}), 0.0);
}

TEST(KendallTauTest, PerfectAgreement) {
  EXPECT_NEAR(KendallTau({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
}

TEST(KendallTauTest, PerfectDisagreement) {
  EXPECT_NEAR(KendallTau({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0, 1e-12);
}

TEST(KendallTauTest, KnownMixedCase) {
  // Pairs of (1,1),(2,3),(3,2): concordant = 2, discordant = 1, tau = 1/3.
  EXPECT_NEAR(KendallTau({1, 2, 3}, {1, 3, 2}), 1.0 / 3.0, 1e-12);
}

TEST(KendallTauTest, DegenerateInputs) {
  EXPECT_TRUE(std::isnan(KendallTau({1.0}, {1.0})));
  EXPECT_TRUE(std::isnan(KendallTau({1.0, 1.0}, {2.0, 3.0})));  // all x tied
}

// Brute-force tau-b for verification.
double BruteForceTauB(const std::vector<double>& x, const std::vector<double>& y) {
  const size_t n = x.size();
  long long concordant = 0, discordant = 0, tie_x = 0, tie_y = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dx = x[i] - x[j], dy = y[i] - y[j];
      if (dx == 0.0 && dy == 0.0) {
        ++tie_x;
        ++tie_y;
      } else if (dx == 0.0) {
        ++tie_x;
      } else if (dy == 0.0) {
        ++tie_y;
      } else if (dx * dy > 0) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = static_cast<double>(n) * (n - 1) / 2.0;
  const double denom = std::sqrt((n0 - tie_x) * (n0 - tie_y));
  return (concordant - discordant) / denom;
}

class KendallTauPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KendallTauPropertyTest, MatchesBruteForceWithTies) {
  Rng rng(GetParam());
  const size_t n = 120;
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    // Coarse grids produce plenty of ties.
    x[i] = static_cast<double>(rng.UniformInt(12));
    y[i] = static_cast<double>(rng.UniformInt(8));
  }
  EXPECT_NEAR(KendallTau(x, y), BruteForceTauB(x, y), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KendallTauPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(KendallTauTest, LargeInputRuns) {
  Rng rng(77);
  const size_t n = 200000;
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform();
    y[i] = x[i] + rng.Normal(0.0, 0.5);
  }
  const double tau = KendallTau(x, y);
  EXPECT_GT(tau, 0.3);
  EXPECT_LT(tau, 0.8);
}

TEST(ComputeMetricsTest, BundlesAllThree) {
  const std::vector<double> pred = {9.0, 30.0, 40.0};
  const std::vector<double> truth = {10.0, 20.0, 40.0};
  const MetricSummary m = ComputeMetrics(pred, truth);
  EXPECT_DOUBLE_EQ(m.median_ape, MedianApe(pred, truth));
  EXPECT_DOUBLE_EQ(m.kendall_tau, KendallTau(pred, truth));
  EXPECT_DOUBLE_EQ(m.rmse, Rmse(pred, truth));
  EXPECT_EQ(m.n, 3u);
}

}  // namespace
}  // namespace horizon::eval
