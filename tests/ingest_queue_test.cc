// IngestQueue unit + concurrency suite: the bounded MPSC queue's policy
// layer (backpressure, drain barriers, shutdown) and the lock-free
// ordering contracts the async serving path depends on.  The
// multi-producer tests run under the TSan CI job (`concurrency` label).
#include "serving/ingest_queue.h"

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace horizon::serving {
namespace {

QueuedEvent Event(int64_t id, double t) {
  QueuedEvent e;
  e.item_id = id;
  e.type = stream::EngagementType::kView;
  e.time = t;
  return e;
}

TEST(IngestQueueTest, PushPopRoundTripPreservesPayload) {
  IngestQueue q(/*capacity=*/16, BackpressurePolicy::kReject);
  ASSERT_TRUE(q.Push(Event(42, 1.5)).ok());
  ASSERT_TRUE(q.Push(Event(43, 2.5)).ok());
  EXPECT_EQ(q.pushed(), 2u);
  EXPECT_EQ(q.SizeApprox(), 2u);

  std::vector<QueuedEvent> out;
  EXPECT_EQ(q.PopBatch(&out, 64), 2u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].item_id, 42);
  EXPECT_DOUBLE_EQ(out[0].time, 1.5);
  EXPECT_EQ(out[1].item_id, 43);
  EXPECT_DOUBLE_EQ(out[1].time, 2.5);
  EXPECT_EQ(q.SizeApprox(), 0u);
}

TEST(IngestQueueTest, CapacityRoundsUpToPowerOfTwo) {
  IngestQueue q(/*capacity=*/10, BackpressurePolicy::kReject);
  EXPECT_EQ(q.capacity(), 16u);
}

TEST(IngestQueueTest, RejectPolicyFailsFastWithResourceExhausted) {
  IngestQueue q(/*capacity=*/8, BackpressurePolicy::kReject);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.Push(Event(i, i)).ok()) << "push " << i;
  }
  EXPECT_EQ(q.backpressure_events(), 0u);

  const Status full = q.Push(Event(99, 99.0));
  EXPECT_FALSE(full.ok());
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  // Every full-queue encounter is accounted, none silently dropped.
  EXPECT_EQ(q.backpressure_events(), 1u);
  EXPECT_EQ(q.pushed(), 8u);

  // Draining one slot makes the next push succeed again.
  std::vector<QueuedEvent> out;
  ASSERT_EQ(q.PopBatch(&out, 1), 1u);
  q.MarkConsumed(1);
  EXPECT_TRUE(q.Push(Event(100, 100.0)).ok());
  EXPECT_EQ(q.pushed(), 9u);
}

TEST(IngestQueueTest, BlockPolicyParksProducerUntilSpaceFrees) {
  IngestQueue q(/*capacity=*/4, BackpressurePolicy::kBlock);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.Push(Event(i, i)).ok());

  // This producer must park on the full ring, then complete once the
  // consumer below frees a slot.  kBlock never drops: the push returns
  // kOk, not kResourceExhausted.
  std::atomic<bool> push_done{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(Event(1000, 1000.0)).ok());
    push_done.store(true);
  });

  // The ring is full and nothing is draining yet, so the producer's
  // first attempt must hit the full ring and account the stall; wait for
  // that (deterministic) before freeing any space.
  while (q.backpressure_events() == 0) std::this_thread::yield();
  EXPECT_FALSE(push_done.load());

  // Consumer side: drain slots until the parked producer gets through.
  std::vector<QueuedEvent> out;
  while (!push_done.load()) {
    if (q.PopBatch(&out, 1) == 1) q.MarkConsumed(1);
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_GE(q.backpressure_events(), 1u);  // the stall was accounted
  EXPECT_EQ(q.pushed(), 5u);

  // Everything pushed is eventually popped exactly once.
  while (q.PopBatch(&out, 64) > 0) {
  }
  EXPECT_EQ(out.size(), 5u);
}

TEST(IngestQueueTest, PushAfterStopIsRejectedUnderBothPolicies) {
  for (const auto policy :
       {BackpressurePolicy::kBlock, BackpressurePolicy::kReject}) {
    IngestQueue q(/*capacity=*/8, policy);
    ASSERT_TRUE(q.Push(Event(1, 1.0)).ok());
    q.Stop();
    EXPECT_TRUE(q.stopped());
    const Status s = q.Push(Event(2, 2.0));
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(q.pushed(), 1u);
  }
}

TEST(IngestQueueTest, WaitForEventsReturnsFalseOnlyWhenStoppedAndDrained) {
  IngestQueue q(/*capacity=*/8, BackpressurePolicy::kReject);
  ASSERT_TRUE(q.Push(Event(1, 1.0)).ok());
  q.Stop();
  // Stopped but not drained: the applier must keep draining.
  EXPECT_TRUE(q.WaitForEvents());
  std::vector<QueuedEvent> out;
  ASSERT_EQ(q.PopBatch(&out, 64), 1u);
  q.MarkConsumed(1);
  // Stopped and drained: the applier may exit.
  EXPECT_FALSE(q.WaitForEvents());
}

TEST(IngestQueueTest, WaitConsumedBlocksUntilApplierCatchesUp) {
  IngestQueue q(/*capacity=*/64, BackpressurePolicy::kBlock);
  constexpr uint64_t kEvents = 32;
  for (uint64_t i = 0; i < kEvents; ++i) {
    ASSERT_TRUE(q.Push(Event(static_cast<int64_t>(i), 0.0)).ok());
  }

  std::atomic<bool> barrier_released{false};
  std::thread waiter([&] {
    q.WaitConsumed(kEvents);  // "everything accepted so far is applied"
    barrier_released.store(true);
  });

  std::vector<QueuedEvent> out;
  uint64_t drained = 0;
  while (drained < kEvents) {
    out.clear();
    const size_t n = q.PopBatch(&out, 8);
    // The barrier may only release once consumed() reaches the target.
    if (drained + n < kEvents) EXPECT_FALSE(barrier_released.load());
    q.MarkConsumed(n);
    drained += n;
  }
  waiter.join();
  EXPECT_TRUE(barrier_released.load());
  EXPECT_EQ(q.consumed(), kEvents);
  EXPECT_EQ(q.consumed(), q.pushed());  // the drained <=> linearized state
}

// Multi-producer hammer: every event arrives exactly once and FIFO per
// producer (the Vyukov ring's ordering guarantee the applier relies on
// for the tracker's non-decreasing-timestamps precondition).
TEST(IngestQueueTest, MultiProducerDeliversEveryEventFifoPerProducer) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 5000;
  IngestQueue q(/*capacity=*/256, BackpressurePolicy::kBlock);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // item_id encodes (producer, sequence) so the consumer can check
        // per-producer order without any extra synchronization.
        ASSERT_TRUE(q.Push(Event(p * 1000000 + i, i)).ok());
      }
    });
  }

  std::vector<int> next_seq(kProducers, 0);
  uint64_t received = 0;
  std::vector<QueuedEvent> out;
  while (received < static_cast<uint64_t>(kProducers) * kPerProducer) {
    out.clear();
    const size_t n = q.PopBatch(&out, 128);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (const QueuedEvent& e : out) {
      const int p = static_cast<int>(e.item_id / 1000000);
      const int seq = static_cast<int>(e.item_id % 1000000);
      ASSERT_LT(p, kProducers);
      EXPECT_EQ(seq, next_seq[p]) << "producer " << p << " out of order";
      next_seq[p] = seq + 1;
    }
    q.MarkConsumed(n);
    received += n;
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(q.pushed(), static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(q.consumed(), q.pushed());
  EXPECT_EQ(q.SizeApprox(), 0u);
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next_seq[p], kPerProducer);
}

// Seeded interleaving stress: a tiny ring + randomized producer pacing
// drives the full/empty/park/wake edges far harder than steady-state
// throughput does.  Each seed fixes one interleaving family; the loop
// makes the edge coverage reproducible rather than load-dependent.
TEST(IngestQueueTest, SeededInterleavingStressConservesEvents) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  for (const uint32_t seed : {1u, 7u, 1234u}) {
    IngestQueue q(/*capacity=*/8, BackpressurePolicy::kBlock);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p, seed] {
        std::mt19937 rng(seed * 97 + static_cast<uint32_t>(p));
        for (int i = 0; i < kPerProducer; ++i) {
          ASSERT_TRUE(q.Push(Event(p * 1000000 + i, i)).ok());
          if (rng() % 4 == 0) std::this_thread::yield();
        }
      });
    }

    std::mt19937 rng(seed);
    std::vector<int> next_seq(kProducers, 0);
    uint64_t received = 0;
    std::vector<QueuedEvent> out;
    while (received < static_cast<uint64_t>(kProducers) * kPerProducer) {
      out.clear();
      const size_t max = 1 + rng() % 16;  // vary group-commit sizes
      const size_t n = q.PopBatch(&out, max);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      for (const QueuedEvent& e : out) {
        const int p = static_cast<int>(e.item_id / 1000000);
        const int seq = static_cast<int>(e.item_id % 1000000);
        EXPECT_EQ(seq, next_seq[p]);
        next_seq[p] = seq + 1;
      }
      q.MarkConsumed(n);
      received += n;
      if (rng() % 8 == 0) std::this_thread::yield();
    }
    for (auto& t : producers) t.join();
    EXPECT_EQ(q.pushed(), q.consumed()) << "seed " << seed;
    EXPECT_GT(q.backpressure_events(), 0u)
        << "seed " << seed
        << ": a capacity-8 ring under 4 fast producers must stall";
  }
}

// Stop() unparks blocked producers rather than deadlocking them; events
// that were already accepted stay poppable afterwards.
TEST(IngestQueueTest, StopUnparksBlockedProducers) {
  IngestQueue q(/*capacity=*/4, BackpressurePolicy::kBlock);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.Push(Event(i, i)).ok());

  std::thread blocked([&] {
    const Status s = q.Push(Event(99, 99.0));  // parks: ring is full
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);  // woken by Stop
  });
  q.Stop();
  blocked.join();

  std::vector<QueuedEvent> out;
  while (q.PopBatch(&out, 64) > 0) {
  }
  EXPECT_EQ(out.size(), 4u);  // the accepted events survive shutdown
}

}  // namespace
}  // namespace horizon::serving
