#include "baselines/hip.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace horizon::baselines {
namespace {

// A simple self-exciting world with exponential-ish decay: seed pulse plus
// branching, used only for qualitative checks.
std::vector<double> MakeBurstyCascade(Rng& rng, double scale, double horizon) {
  std::vector<double> times;
  const int seeds = static_cast<int>(rng.Poisson(scale));
  for (int i = 0; i < seeds; ++i) times.push_back(rng.Exponential(1.0 / (4 * kHour)));
  for (size_t i = 0; i < times.size() && times.size() < 20000; ++i) {
    const uint64_t children = rng.Poisson(0.6);
    for (uint64_t c = 0; c < children; ++c) {
      const double t = times[i] + rng.Exponential(1.0 / (6 * kHour));
      if (t < horizon) times.push_back(t);
    }
  }
  std::sort(times.begin(), times.end());
  return times;
}

TEST(HipModelTest, TooFewBinsNotOk) {
  HipModel model;
  EXPECT_FALSE(model.Fit({1.0, 2.0}, 3 * kHour).ok);  // < 4 bins at 2h width
}

TEST(HipModelTest, FitReportsIterations) {
  Rng rng(1);
  HipModel model;
  const auto times = MakeBurstyCascade(rng, 50.0, 2 * kDay);
  const auto fit = model.Fit(times, 2 * kDay);
  ASSERT_TRUE(fit.ok);
  EXPECT_EQ(fit.iterations, 4);  // one LSQ solve per theta candidate
  EXPECT_GE(fit.gamma, 0.0);
  EXPECT_GE(fit.p, 0.0);
}

TEST(HipModelTest, PredictionMonotoneInHorizon) {
  Rng rng(2);
  HipModel model;
  const auto times = MakeBurstyCascade(rng, 80.0, 2 * kDay);
  const auto fit = model.Fit(times, 2 * kDay);
  ASSERT_TRUE(fit.ok);
  double prev = 0.0;
  for (double delta : {6 * kHour, 1 * kDay, 4 * kDay}) {
    const double inc = model.PredictIncrement(fit, times, 2 * kDay, delta);
    EXPECT_GE(inc, prev - 1e-9);
    prev = inc;
  }
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_GE(model.PredictIncrement(fit, times, 2 * kDay, inf), prev - 1e-9);
}

TEST(HipModelTest, ActiveCascadePredictsMoreThanDeadOne) {
  HipModel model;
  // Active: steady recent arrivals.  Dead: all mass long ago.
  std::vector<double> active, dead;
  for (int i = 0; i < 300; ++i) {
    active.push_back(2 * kDay * (0.5 + 0.5 * i / 300.0));
    dead.push_back(2 * kHour * i / 300.0);
  }
  const double s = 2 * kDay;
  const auto fit_active = model.Fit(active, s);
  const auto fit_dead = model.Fit(dead, s);
  ASSERT_TRUE(fit_active.ok);
  ASSERT_TRUE(fit_dead.ok);
  EXPECT_GT(model.PredictIncrement(fit_active, active, s, 1 * kDay),
            model.PredictIncrement(fit_dead, dead, s, 1 * kDay));
}

TEST(HipModelTest, UnfitPredictsZero) {
  HipModel model;
  HipModel::FitResult bad;
  EXPECT_EQ(model.PredictIncrement(bad, {1.0}, 10.0, 100.0), 0.0);
}

TEST(HipModelTest, ForwardIterationStaysFinite) {
  // Even a very dense history (apparently supercritical) must produce a
  // finite prediction thanks to the branching cap.
  HipModel model;
  std::vector<double> times;
  for (int i = 0; i < 5000; ++i) times.push_back(8 * kHour + i * 2.0);
  const double s = 12 * kHour;
  const auto fit = model.Fit(times, s);
  ASSERT_TRUE(fit.ok);
  const double pred =
      model.PredictIncrement(fit, times, s, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isfinite(pred));
}

}  // namespace
}  // namespace horizon::baselines
