// Golden regression test: trains the full pipeline on a fixed-seed
// synthetic dataset and asserts that predictions at three horizons match
// checked-in golden values to 1e-9 relative tolerance.  Any unintended
// change to the generator, feature extractor, GBDT learner, or transfer
// formula shows up here as a hard diff.
//
// The library is engineered for bit-stable results (own RNG + samplers, no
// fast-math, deterministic thread-pool reductions), so the goldens hold
// across thread counts and standard-library versions; 1e-9 leaves room
// only for libm ulp differences across platforms.
//
// To regenerate after an INTENTIONAL behavior change:
//   HORIZON_PRINT_GOLDEN=1 ./golden_regression_test
// and paste the printed table over kGolden below.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/units.h"
#include "core/hawkes_predictor.h"
#include "core/trainer.h"

namespace horizon {
namespace {

constexpr double kHorizons[] = {6 * kHour, 1 * kDay, 4 * kDay};
constexpr size_t kGoldenRows = 8;

/// Golden predicted increments: kGoldenRows rows x 3 horizons, plus the
/// predicted alpha per row in column 3.
/// Generated with HORIZON_PRINT_GOLDEN=1 (see file comment).
constexpr double kGolden[kGoldenRows][4] = {
    {23.457618506344915, 73.829626433140675, 138.91019384216429, 7.9680966033624967e-06},
    {14.974715175877767, 47.130163872669669, 88.672261940194716, 7.9686246075053952e-06},
    {0.44669975605975781, 0.66831129476526996, 0.67742739965856169, 4.9864089882837327e-05},
    {8.1460043928231585, 13.100013098669438, 13.420146201015262, 4.3237988419026747e-05},
    {0.25983220427580161, 0.64613220386786407, 0.83050683855680218, 1.7318153484531101e-05},
    {5.0495289320286521, 14.079250231989262, 21.002951192202325, 1.2539124613872487e-05},
    {34.619211800175449, 114.46206326344675, 243.12113378656113, 6.2264094245023995e-06},
    {35.948031073926913, 113.70019371559501, 216.37362787094543, 7.7911682723826888e-06},
};

TEST(GoldenRegressionTest, PredictionsMatchGoldenValues) {
  datagen::GeneratorConfig config;
  config.num_pages = 12;
  config.num_posts = 100;
  config.base_mean_size = 50.0;
  config.seed = 20260806;
  const datagen::SyntheticDataset dataset = datagen::Generator(config).Generate();
  const features::FeatureExtractor extractor{stream::TrackerConfig{}};

  std::vector<size_t> indices;
  for (size_t i = 0; i < dataset.cascades.size(); ++i) indices.push_back(i);
  core::ExampleSetOptions options;
  options.reference_horizons = {1 * kDay};
  const core::ExampleSet examples =
      core::BuildExampleSet(dataset, indices, extractor, options);

  core::HawkesPredictorParams params;
  params.reference_horizons = {1 * kDay};
  params.gbdt_count.num_trees = 30;
  params.gbdt_alpha.num_trees = 30;
  core::HawkesPredictor model(params);
  model.Fit(examples.x, examples.log1p_increments, examples.alpha_targets);

  ASSERT_GE(examples.x.num_rows(), kGoldenRows);
  const bool print = std::getenv("HORIZON_PRINT_GOLDEN") != nullptr;
  for (size_t r = 0; r < kGoldenRows; ++r) {
    const float* row = examples.x.Row(r);
    double actual[4];
    for (int h = 0; h < 3; ++h) {
      actual[h] = model.PredictIncrement(row, kHorizons[h]);
    }
    actual[3] = model.PredictAlpha(row);
    if (print) {
      std::printf("    {%.17g, %.17g, %.17g, %.17g},\n", actual[0], actual[1],
                  actual[2], actual[3]);
      continue;
    }
    for (int c = 0; c < 4; ++c) {
      const double golden = kGolden[r][c];
      EXPECT_NEAR(actual[c], golden, 1e-9 * std::max(std::abs(golden), 1.0))
          << "row " << r << " column " << c
          << " (rerun with HORIZON_PRINT_GOLDEN=1 to regenerate)";
    }
  }
}

}  // namespace
}  // namespace horizon
