// Tests for common/file_io.h: CRC32 known answers, frame round trips and
// corruption rejection, atomic file replacement, and the deterministic
// crash-fault injector (a write torn at any point must leave the previous
// file contents intact).
#include "common/file_io.h"

#include <gtest/gtest.h>

#include <string>

#include "env_guard.h"

namespace horizon::io {
namespace {

// Keep the injector's state hermetic: a HORIZON_FAULT_CRASH_AT from the
// invoking shell arms it at Global() construction and would tear every
// write this suite performs.
const ::testing::Environment* const kFaultEnvGuard =
    ::testing::AddGlobalTestEnvironment(
        new horizon::test::EnvVarGuard("HORIZON_FAULT_CRASH_AT",
                                       /*disarm_fault_injector=*/true));

std::string TestDir(const std::string& leaf) {
  const std::string dir = ::testing::TempDir() + "horizon_file_io_" + leaf;
  RemoveTree(dir);
  EXPECT_TRUE(EnsureDir(dir));
  return dir;
}

// -- CRC32 ---------------------------------------------------------------

TEST(Crc32Test, KnownAnswers) {
  // The IEEE 802.3 check value for the standard 9-byte test vector.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("abc"), 0x352441C2u);
}

TEST(Crc32Test, SensitiveToEveryBit) {
  const std::string base = "the quick brown fox";
  const uint32_t crc = Crc32(base);
  for (size_t i = 0; i < base.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = base;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_NE(Crc32(flipped), crc) << "byte " << i << " bit " << bit;
    }
  }
}

// -- CRC frame -----------------------------------------------------------

TEST(CrcFrameTest, RoundTrip) {
  const std::string payloads[] = {
      std::string(), std::string("x"), std::string("hello world"),
      std::string(100000, 'z'), std::string("embedded\0null", 13),
      std::string("trailing newline\n")};
  for (const std::string& payload : payloads) {
    const std::string frame = WrapCrcFrame(payload);
    const auto back = UnwrapCrcFrame(frame);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, payload);
  }
}

TEST(CrcFrameTest, RejectsTruncation) {
  const std::string frame = WrapCrcFrame("some checkpoint payload bytes");
  // Every proper prefix must be rejected -- a torn write is a prefix.
  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(UnwrapCrcFrame(frame.substr(0, len)).has_value())
        << "prefix of length " << len << " accepted";
  }
}

TEST(CrcFrameTest, RejectsBitFlips) {
  const std::string frame = WrapCrcFrame("some checkpoint payload bytes");
  const size_t payload_start = frame.find('\n') + 1;
  ASSERT_NE(payload_start, 0u);
  // Any bit flip in the payload must be caught by the CRC.  (Header flips
  // are either caught too or -- e.g. hex-case changes -- decode to the same
  // frame; the garbage-header test below covers malformed headers.)
  for (size_t i = payload_start; i < frame.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = frame;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_FALSE(UnwrapCrcFrame(flipped).has_value())
          << "byte " << i << " bit " << bit;
    }
  }
  // Magic-string damage is rejected.
  std::string bad_magic = frame;
  bad_magic[0] = 'H';
  EXPECT_FALSE(UnwrapCrcFrame(bad_magic).has_value());
}

TEST(CrcFrameTest, RejectsTrailingGarbage) {
  const std::string frame = WrapCrcFrame("payload");
  EXPECT_FALSE(UnwrapCrcFrame(frame + "x").has_value());
  EXPECT_FALSE(UnwrapCrcFrame(frame + frame).has_value());
}

TEST(CrcFrameTest, RejectsGarbageHeaders) {
  EXPECT_FALSE(UnwrapCrcFrame("").has_value());
  EXPECT_FALSE(UnwrapCrcFrame("not a frame").has_value());
  EXPECT_FALSE(UnwrapCrcFrame("hzf1").has_value());
  EXPECT_FALSE(UnwrapCrcFrame("hzf1 abc def\n").has_value());
  EXPECT_FALSE(UnwrapCrcFrame("hzf2 7 00000000\npayload").has_value());
  // Absurd declared size must not allocate or crash.
  EXPECT_FALSE(
      UnwrapCrcFrame("hzf1 99999999999999999999 00000000\nx").has_value());
}

// -- Atomic writes -------------------------------------------------------

TEST(WriteFileAtomicTest, WritesAndReplaces) {
  const std::string dir = TestDir("atomic");
  const std::string path = dir + "/file";
  ASSERT_TRUE(WriteFileAtomic(path, "first"));
  EXPECT_EQ(ReadFile(path).value_or("<missing>"), "first");
  ASSERT_TRUE(WriteFileAtomic(path, "second, longer contents"));
  EXPECT_EQ(ReadFile(path).value_or("<missing>"), "second, longer contents");
  RemoveTree(dir);
}

TEST(ReadFileTest, MissingFileIsNullopt) {
  EXPECT_FALSE(ReadFile("/nonexistent/horizon/path").has_value());
}

TEST(DirHelpersTest, EnsureListRemove) {
  const std::string dir = TestDir("dirs");
  EXPECT_TRUE(EnsureDir(dir));  // idempotent
  EXPECT_TRUE(EnsureDir(dir + "/a/b/c"));
  ASSERT_TRUE(WriteFileAtomic(dir + "/a/file1", "1"));
  ASSERT_TRUE(WriteFileAtomic(dir + "/a/file2", "2"));
  const auto entries = ListDir(dir + "/a");
  ASSERT_EQ(entries.size(), 3u);  // sorted
  EXPECT_EQ(entries[0], "b");
  EXPECT_EQ(entries[1], "file1");
  EXPECT_EQ(entries[2], "file2");
  EXPECT_TRUE(ListDir(dir + "/missing").empty());
  EXPECT_TRUE(RemoveTree(dir));
  EXPECT_TRUE(ListDir(dir).empty());
  EXPECT_TRUE(RemoveTree(dir));  // already gone
}

// -- Fault injection -----------------------------------------------------

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

TEST_F(FaultInjectionTest, CrashAtEveryPointPreservesOldFile) {
  const std::string dir = TestDir("faults");
  const std::string path = dir + "/file";
  ASSERT_TRUE(WriteFileAtomic(path, "valid old contents"));

  auto& injector = FaultInjector::Global();
  bool succeeded = false;
  for (int n = 0; n < 100 && !succeeded; ++n) {
    injector.ArmCrashAt(n);
    const bool ok = WriteFileAtomic(path, "new contents after crash").ok();
    const int ops = injector.ops_seen();
    const bool crashed = injector.crashed();
    injector.Disarm();
    if (ok) {
      // The armed point lies beyond the operations this write performs:
      // the write committed.
      EXPECT_FALSE(crashed);
      EXPECT_GT(ops, 0);
      EXPECT_EQ(ReadFile(path).value_or("<missing>"),
                "new contents after crash");
      succeeded = true;
    } else {
      // Crashed mid-write: the visible file must be either the intact old
      // contents or the complete new contents (the rename may have been
      // published before the final directory fsync died) -- never a torn
      // mixture.  The only other debris allowed is the invisible temp file.
      EXPECT_TRUE(crashed) << "failed without a fault at n=" << n;
      const std::string contents = ReadFile(path).value_or("<missing>");
      EXPECT_TRUE(contents == "valid old contents" ||
                  contents == "new contents after crash")
          << "torn file after crash at op " << n << ": \"" << contents << "\"";
    }
  }
  EXPECT_TRUE(succeeded) << "write never committed within 100 fault points";
  RemoveTree(dir);
}

TEST_F(FaultInjectionTest, TornWriteLeavesPrefixInTempOnly) {
  const std::string dir = TestDir("torn");
  const std::string path = dir + "/file";
  ASSERT_TRUE(WriteFileAtomic(path, "old"));

  auto& injector = FaultInjector::Global();
  injector.ArmCrashAt(0);  // the very first write op fails (torn)
  const std::string framed = WrapCrcFrame("this write is torn in half");
  EXPECT_FALSE(WriteFileAtomic(path, framed));
  injector.Disarm();

  EXPECT_EQ(ReadFile(path).value_or("<missing>"), "old");
  // A torn CRC-framed temp file must never unwrap.
  const auto torn = ReadFile(path + ".tmp");
  if (torn.has_value()) {
    EXPECT_FALSE(UnwrapCrcFrame(*torn).has_value());
  }
  RemoveTree(dir);
}

TEST_F(FaultInjectionTest, AllOpsFailAfterCrash) {
  const std::string dir = TestDir("dead");
  auto& injector = FaultInjector::Global();
  injector.ArmCrashAt(0);
  EXPECT_FALSE(WriteFileAtomic(dir + "/a", "x"));
  // The process "died": every later durable operation fails too.
  EXPECT_FALSE(WriteFileAtomic(dir + "/b", "y"));
  EXPECT_TRUE(injector.crashed());
  injector.Disarm();
  EXPECT_FALSE(injector.crashed());
  EXPECT_TRUE(WriteFileAtomic(dir + "/b", "y"));
  EXPECT_EQ(ReadFile(dir + "/b").value_or("<missing>"), "y");
  RemoveTree(dir);
}

TEST_F(FaultInjectionTest, OpsSeenCounts) {
  const std::string dir = TestDir("ops");
  auto& injector = FaultInjector::Global();
  injector.ArmCrashAt(1000);  // effectively never fires
  ASSERT_TRUE(WriteFileAtomic(dir + "/f", "x"));
  const int per_write = injector.ops_seen();
  EXPECT_GE(per_write, 3);  // at least write + fsync + rename
  ASSERT_TRUE(WriteFileAtomic(dir + "/f", "y"));
  EXPECT_EQ(injector.ops_seen(), 2 * per_write);
  injector.Disarm();
  EXPECT_EQ(injector.ops_seen(), 0);
  RemoveTree(dir);
}

TEST_F(FaultInjectionTest, FailOnceIsTransient) {
  // Unlike ArmCrashAt, a fail-once fault models a transient IO error: the
  // faulted operation fails, the injector self-disarms, and the very next
  // attempt succeeds without anyone calling Disarm.
  const std::string dir = TestDir("failonce");
  const std::string path = dir + "/file";
  ASSERT_TRUE(WriteFileAtomic(path, "old"));

  auto& injector = FaultInjector::Global();
  injector.ArmFailOnce(0);
  EXPECT_FALSE(WriteFileAtomic(path, "first attempt"));
  EXPECT_FALSE(injector.crashed());  // transient, not a crash
  EXPECT_EQ(ReadFile(path).value_or("<missing>"), "old");

  // Self-disarmed: the retry commits with no intervention.
  EXPECT_TRUE(WriteFileAtomic(path, "second attempt"));
  EXPECT_EQ(ReadFile(path).value_or("<missing>"), "second attempt");
  RemoveTree(dir);
}

TEST_F(FaultInjectionTest, FailOnceBeyondWriteNeverFires) {
  const std::string dir = TestDir("failonce_never");
  auto& injector = FaultInjector::Global();
  injector.ArmFailOnce(1000);  // past every op this write performs
  EXPECT_TRUE(WriteFileAtomic(dir + "/f", "x"));
  EXPECT_EQ(ReadFile(dir + "/f").value_or("<missing>"), "x");
  injector.Disarm();
  RemoveTree(dir);
}

}  // namespace
}  // namespace horizon::io
