// Durability tests for PredictionService::Checkpoint / Restore.
//
// The load-bearing test is CrashAtEveryFaultPointNeverCorrupts: it arms
// the deterministic crash injector at every successive write/fsync/rename
// point of a checkpoint and proves that (a) the torn checkpoint is never
// loaded and (b) the previous valid checkpoint still restores to
// bit-identical predictions.  The suite is also registered with
// HORIZON_THREADS=1 and =8 (see tests/CMakeLists.txt) so the round-trip
// guarantees hold at any pool width.
#include "serving/prediction_service.h"

#include <unistd.h>

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/file_io.h"
#include "core/trainer.h"
#include "env_guard.h"

namespace horizon::serving {
namespace {

// This suite arms the fault injector itself; a HORIZON_FAULT_CRASH_AT
// leaking in from the shell would crash unrelated checkpoint writes.
// (HORIZON_THREADS is deliberately NOT guarded: the _threadsN ctest
// variants pin it on purpose.)
const ::testing::Environment* const kFaultEnvGuard =
    ::testing::AddGlobalTestEnvironment(
        new horizon::test::EnvVarGuard("HORIZON_FAULT_CRASH_AT",
                                       /*disarm_fault_injector=*/true));

// Shared fixture: a small trained model plus its extractor and dataset.
class CheckpointTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GeneratorConfig config;
    config.num_pages = 20;
    config.num_posts = 120;
    config.base_mean_size = 60.0;
    config.seed = 77;
    dataset_ = new datagen::SyntheticDataset(datagen::Generator(config).Generate());
    extractor_ = new features::FeatureExtractor(stream::TrackerConfig{});

    std::vector<size_t> indices;
    for (size_t i = 0; i < dataset_->cascades.size(); ++i) indices.push_back(i);
    core::ExampleSetOptions options;
    options.reference_horizons = {1 * kDay};
    const auto examples =
        core::BuildExampleSet(*dataset_, indices, *extractor_, options);

    core::HawkesPredictorParams params;
    params.reference_horizons = options.reference_horizons;
    params.gbdt_count.num_trees = 25;
    params.gbdt_alpha.num_trees = 25;
    model_ = new core::HawkesPredictor(params);
    model_->Fit(examples.x, examples.log1p_increments, examples.alpha_targets);
  }

  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete extractor_;
    extractor_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  void TearDown() override {
    io::FaultInjector::Global().Disarm();
    if (!dir_.empty()) io::RemoveTree(dir_);
  }

  /// Fresh scratch checkpoint directory for this test.  Keyed by pid as
  /// well as test name: ctest runs this binary concurrently under several
  /// HORIZON_THREADS settings, and those processes must not share paths.
  const std::string& Dir() {
    if (dir_.empty()) {
      dir_ = ::testing::TempDir() + "horizon_ckpt_" +
             std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name();
      io::RemoveTree(dir_);
    }
    return dir_;
  }

  PredictionService MakeService(ServiceConfig config = {}) const {
    return PredictionService(model_, extractor_, config);
  }

  /// Registers `items` items and ingests all four engagement streams up to
  /// event time `age`.
  void Load(PredictionService* service, int64_t items, double age) const {
    for (int64_t id = 0; id < items; ++id) {
      const auto& cascade =
          dataset_->cascades[static_cast<size_t>(id) % dataset_->cascades.size()];
      ASSERT_TRUE(service->RegisterItem(id, 0.0, dataset_->PageOf(cascade.post),
                                        cascade.post));
      for (const auto& e : cascade.views) {
        if (e.time >= age) break;
        ASSERT_TRUE(service->Ingest(id, stream::EngagementType::kView, e.time).ok());
      }
      for (double t : cascade.share_times) {
        if (t >= age) break;
        ASSERT_TRUE(service->Ingest(id, stream::EngagementType::kShare, t).ok());
      }
      for (double t : cascade.comment_times) {
        if (t >= age) break;
        ASSERT_TRUE(service->Ingest(id, stream::EngagementType::kComment, t).ok());
      }
      for (double t : cascade.reaction_times) {
        if (t >= age) break;
        ASSERT_TRUE(service->Ingest(id, stream::EngagementType::kReaction, t).ok());
      }
    }
    // Drain barrier so the loaded state is fully applied before the test
    // asserts on it (a no-op in synchronous mode).
    ASSERT_TRUE(service->Flush().ok());
  }

  /// Every item's full query answer at (s, delta), in id order.
  static std::vector<PredictionResult> Snapshot(const PredictionService& service,
                                                int64_t items, double s,
                                                double delta) {
    std::vector<PredictionResult> out;
    out.reserve(static_cast<size_t>(items));
    for (int64_t id = 0; id < items; ++id) {
      const auto q = service.Query(id, s, delta);
      EXPECT_TRUE(q.has_value()) << "item " << id;
      out.push_back(q.value_or(PredictionResult{}));
    }
    return out;
  }

  /// Bit-identical comparison of two snapshots.
  static void ExpectIdentical(const std::vector<PredictionResult>& a,
                              const std::vector<PredictionResult>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].observed_views, b[i].observed_views) << "item " << i;
      EXPECT_EQ(a[i].predicted_views, b[i].predicted_views) << "item " << i;
      EXPECT_EQ(a[i].alpha, b[i].alpha) << "item " << i;
    }
  }

  static datagen::SyntheticDataset* dataset_;
  static features::FeatureExtractor* extractor_;
  static core::HawkesPredictor* model_;
  std::string dir_;
};

datagen::SyntheticDataset* CheckpointTest::dataset_ = nullptr;
features::FeatureExtractor* CheckpointTest::extractor_ = nullptr;
core::HawkesPredictor* CheckpointTest::model_ = nullptr;

constexpr int64_t kItems = 48;
constexpr double kAge = 6 * kHour;

TEST_F(CheckpointTest, RoundTripBitIdenticalPredictions) {
  PredictionService source = MakeService();
  Load(&source, kItems, kAge);
  ASSERT_TRUE(source.Checkpoint(Dir()));

  PredictionService restored = MakeService();
  ASSERT_TRUE(restored.Restore(Dir()));
  EXPECT_EQ(restored.LiveItems(), source.LiveItems());
  EXPECT_EQ(restored.stats().events_ingested, source.stats().events_ingested);
  EXPECT_EQ(restored.stats().items_registered, source.stats().items_registered);

  for (const double delta : {1 * kHour, 1 * kDay, 7 * kDay}) {
    ExpectIdentical(Snapshot(source, kItems, kAge, delta),
                    Snapshot(restored, kItems, kAge, delta));
  }
  // The moderation-queue primitive agrees too (ids and scores).
  const auto top_a = source.TopK(kAge, 1 * kDay, 10);
  const auto top_b = restored.TopK(kAge, 1 * kDay, 10);
  ASSERT_EQ(top_a.size(), top_b.size());
  for (size_t i = 0; i < top_a.size(); ++i) {
    EXPECT_EQ(top_a[i].first, top_b[i].first) << "rank " << i;
    EXPECT_EQ(top_a[i].second, top_b[i].second) << "rank " << i;
  }
}

TEST_F(CheckpointTest, IngestionContinuesIdenticallyAfterRestore) {
  PredictionService source = MakeService();
  Load(&source, kItems, kAge);
  ASSERT_TRUE(source.Checkpoint(Dir()));
  PredictionService restored = MakeService();
  ASSERT_TRUE(restored.Restore(Dir()));

  // Feed the same post-checkpoint traffic to both services; the restored
  // tracker state must evolve bit-identically, not just answer queries.
  for (int64_t id = 0; id < kItems; ++id) {
    const auto& cascade =
        dataset_->cascades[static_cast<size_t>(id) % dataset_->cascades.size()];
    for (const auto& e : cascade.views) {
      if (e.time < kAge) continue;
      if (e.time >= 12 * kHour) break;
      EXPECT_TRUE(source.Ingest(id, stream::EngagementType::kView, e.time));
      EXPECT_TRUE(restored.Ingest(id, stream::EngagementType::kView, e.time));
    }
  }
  ASSERT_TRUE(source.Flush().ok());    // async drain barriers
  ASSERT_TRUE(restored.Flush().ok());  // (no-ops in sync mode)
  ExpectIdentical(Snapshot(source, kItems, 12 * kHour, 1 * kDay),
                  Snapshot(restored, kItems, 12 * kHour, 1 * kDay));
}

TEST_F(CheckpointTest, RestoreAcrossDifferentShardCounts) {
  ServiceConfig wide;
  wide.num_shards = 16;
  PredictionService source = MakeService(wide);
  Load(&source, kItems, kAge);
  ASSERT_TRUE(source.Checkpoint(Dir()));

  ServiceConfig narrow;
  narrow.num_shards = 3;
  PredictionService restored = MakeService(narrow);
  ASSERT_TRUE(restored.Restore(Dir()));
  EXPECT_EQ(restored.LiveItems(), source.LiveItems());
  ExpectIdentical(Snapshot(source, kItems, kAge, 1 * kDay),
                  Snapshot(restored, kItems, kAge, 1 * kDay));
}

TEST_F(CheckpointTest, SecondCheckpointSupersedesFirst) {
  PredictionService service = MakeService();
  Load(&service, kItems, kAge);
  ASSERT_TRUE(service.Checkpoint(Dir()));
  // More traffic, then a second checkpoint into the same directory.
  for (int64_t id = 0; id < kItems; ++id) {
    ASSERT_TRUE(service.Ingest(id, stream::EngagementType::kView, 7 * kHour).ok());
  }
  ASSERT_TRUE(service.Checkpoint(Dir()));

  PredictionService restored = MakeService();
  ASSERT_TRUE(restored.Restore(Dir()));
  ExpectIdentical(Snapshot(service, kItems, 7 * kHour, 1 * kDay),
                  Snapshot(restored, kItems, 7 * kHour, 1 * kDay));
}

TEST_F(CheckpointTest, CrashAtEveryFaultPointNeverCorrupts) {
  // Keep the service small: the fault loop re-checkpoints and re-restores
  // once per injected fault point.
  constexpr int64_t kSmallItems = 24;
  ServiceConfig config;
  config.num_shards = 4;
  PredictionService service = MakeService(config);
  Load(&service, kSmallItems, kAge);
  ASSERT_TRUE(service.Checkpoint(Dir()));
  const auto predictions_a = Snapshot(service, kSmallItems, kAge, 1 * kDay);
  const uint64_t events_a = service.stats().events_ingested;

  // Advance the service state so the next checkpoint differs.
  for (int64_t id = 0; id < kSmallItems; ++id) {
    ASSERT_TRUE(service.Ingest(id, stream::EngagementType::kView, 7 * kHour).ok());
    ASSERT_TRUE(service.Ingest(id, stream::EngagementType::kComment, 7 * kHour).ok());
  }
  ASSERT_TRUE(service.Flush().ok());  // async drain barrier (no-op in sync)
  const auto predictions_b = Snapshot(service, kSmallItems, 7 * kHour, 1 * kDay);
  const uint64_t events_b = service.stats().events_ingested;
  ASSERT_NE(events_a, events_b);

  auto& injector = io::FaultInjector::Global();
  bool committed = false;
  int points_exercised = 0;
  for (int n = 0; n < 500 && !committed; ++n, ++points_exercised) {
    injector.ArmCrashAt(n);
    const bool ok = service.Checkpoint(Dir()).ok();
    injector.Disarm();

    PredictionService restored = MakeService(config);
    ASSERT_TRUE(restored.Restore(Dir()))
        << "checkpoint unloadable after crash at fault point " << n;
    if (ok) {
      // The crash point lies beyond this checkpoint's operations: the new
      // checkpoint committed and must be the one restored.
      ExpectIdentical(Snapshot(restored, kSmallItems, 7 * kHour, 1 * kDay),
                      predictions_b);
      committed = true;
    } else {
      // Torn mid-write: what restores must be a complete checkpoint --
      // normally the previous one (state A), or, when the crash hit the
      // final directory fsync AFTER the CURRENT rename published the new
      // pointer, the fully written new one (state B).  Never a mixture,
      // never a torn file.  The checkpointed event counter identifies
      // which of the two legitimately restored.
      const uint64_t events = restored.stats().events_ingested;
      if (events == events_b) {
        ExpectIdentical(Snapshot(restored, kSmallItems, 7 * kHour, 1 * kDay),
                        predictions_b);
      } else {
        EXPECT_EQ(events, events_a)
            << "restored state matches neither checkpoint after crash at "
               "fault point " << n;
        ExpectIdentical(Snapshot(restored, kSmallItems, kAge, 1 * kDay),
                        predictions_a);
      }
    }
  }
  EXPECT_TRUE(committed) << "checkpoint never committed within 500 fault points";
  // Sanity: the loop actually walked through a multi-file protocol.
  EXPECT_GT(points_exercised, 10);
}

TEST_F(CheckpointTest, RestoreRejectsCorruptedShardFile) {
  PredictionService source = MakeService();
  Load(&source, kItems, kAge);
  ASSERT_TRUE(source.Checkpoint(Dir()));

  // Locate the committed checkpoint directory and flip one payload byte in
  // a shard file.
  const auto current = io::ReadFile(Dir() + "/CURRENT");
  ASSERT_TRUE(current.has_value());
  std::string pointer = *current;
  while (!pointer.empty() && (pointer.back() == '\n' || pointer.back() == ' ')) {
    pointer.pop_back();
  }
  const std::string ckpt_dir = Dir() + "/" + pointer;
  std::string shard_file;
  for (const auto& name : io::ListDir(ckpt_dir)) {
    if (name.rfind("shard-", 0) == 0) shard_file = ckpt_dir + "/" + name;
  }
  ASSERT_FALSE(shard_file.empty());
  auto bytes = io::ReadFile(shard_file);
  ASSERT_TRUE(bytes.has_value());
  (*bytes)[bytes->size() / 2] = static_cast<char>((*bytes)[bytes->size() / 2] ^ 0x01);
  {
    std::ofstream out(shard_file, std::ios::binary | std::ios::trunc);
    out.write(bytes->data(), static_cast<std::streamsize>(bytes->size()));
  }

  PredictionService restored = MakeService();
  Load(&restored, 3, kAge);  // pre-existing state must survive the failure
  const auto before = Snapshot(restored, 3, kAge, 1 * kDay);
  EXPECT_FALSE(restored.Restore(Dir()));
  EXPECT_EQ(restored.LiveItems(), 3u);
  ExpectIdentical(Snapshot(restored, 3, kAge, 1 * kDay), before);
}

TEST_F(CheckpointTest, RestoreRejectsCorruptedQuantizedForestFile) {
  PredictionService source = MakeService();
  Load(&source, kItems, kAge);
  ASSERT_TRUE(source.Checkpoint(Dir()));

  const auto current = io::ReadFile(Dir() + "/CURRENT");
  ASSERT_TRUE(current.has_value());
  std::string pointer = *current;
  while (!pointer.empty() && (pointer.back() == '\n' || pointer.back() == ' ')) {
    pointer.pop_back();
  }
  const std::string qforest_file = Dir() + "/" + pointer + "/model.qforest";
  auto bytes = io::ReadFile(qforest_file);
  ASSERT_TRUE(bytes.has_value());
  ASSERT_GT(bytes->size(), 0u);
  (*bytes)[bytes->size() / 2] =
      static_cast<char>((*bytes)[bytes->size() / 2] ^ 0x01);
  {
    std::ofstream out(qforest_file, std::ios::binary | std::ios::trunc);
    out.write(bytes->data(), static_cast<std::streamsize>(bytes->size()));
  }

  PredictionService restored = MakeService();
  EXPECT_FALSE(restored.Restore(Dir()));
  EXPECT_EQ(restored.LiveItems(), 0u);
}

TEST_F(CheckpointTest, RestoreRejectsMismatchedModel) {
  PredictionService source = MakeService();
  Load(&source, 8, kAge);
  ASSERT_TRUE(source.Checkpoint(Dir()));

  // A service bound to a differently trained model must refuse the
  // checkpoint outright (predictions would not be bit-identical).
  core::HawkesPredictorParams params;
  params.reference_horizons = {1 * kDay};
  params.gbdt_count.num_trees = 5;
  params.gbdt_alpha.num_trees = 5;
  core::HawkesPredictor other(params);
  {
    std::vector<size_t> indices;
    for (size_t i = 0; i < 30; ++i) indices.push_back(i);
    core::ExampleSetOptions options;
    options.reference_horizons = {1 * kDay};
    const auto examples =
        core::BuildExampleSet(*dataset_, indices, *extractor_, options);
    other.Fit(examples.x, examples.log1p_increments, examples.alpha_targets);
  }
  PredictionService restored(&other, extractor_, ServiceConfig{});
  EXPECT_FALSE(restored.Restore(Dir()));
  EXPECT_EQ(restored.LiveItems(), 0u);
}

TEST_F(CheckpointTest, RestoreRejectsMismatchedTrackerConfig) {
  PredictionService source = MakeService();
  Load(&source, 8, kAge);
  ASSERT_TRUE(source.Checkpoint(Dir()));

  ServiceConfig other;
  other.tracker.window_lengths = {1 * kHour};  // different window layout
  features::FeatureExtractor other_extractor(other.tracker);
  PredictionService restored(model_, &other_extractor, other);
  EXPECT_FALSE(restored.Restore(Dir()));
  EXPECT_EQ(restored.LiveItems(), 0u);
}

TEST_F(CheckpointTest, RestoreFromMissingOrEmptyDirFails) {
  PredictionService service = MakeService();
  EXPECT_FALSE(service.Restore(Dir() + "/does-not-exist"));
  ASSERT_TRUE(io::EnsureDir(Dir()));
  EXPECT_FALSE(service.Restore(Dir()));  // no CURRENT yet
  EXPECT_EQ(service.LiveItems(), 0u);
}

TEST_F(CheckpointTest, CheckpointWhileServingKeepsWorking) {
  // Not a stress test (serving_concurrency_test covers races under TSan);
  // this just proves the API contract that ingest continues during and
  // after a checkpoint and the checkpoint stays loadable.
  PredictionService service = MakeService();
  Load(&service, kItems, kAge);
  ASSERT_TRUE(service.Checkpoint(Dir()));
  for (int64_t id = 0; id < kItems; ++id) {
    EXPECT_TRUE(service.Ingest(id, stream::EngagementType::kView, 7 * kHour));
  }
  ASSERT_TRUE(service.Checkpoint(Dir()));
  PredictionService restored = MakeService();
  EXPECT_TRUE(restored.Restore(Dir()));
  EXPECT_EQ(restored.LiveItems(), static_cast<size_t>(kItems));
}

}  // namespace
}  // namespace horizon::serving
