#include "pointprocess/ogata.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "pointprocess/exp_hawkes.h"
#include "pointprocess/kernels.h"

namespace horizon::pp {
namespace {

TEST(OgataTest, EventsSortedAndWithinHorizon) {
  Rng rng(3);
  ExponentialKernel kernel(1.0);
  ExponentialMark marks(0.5);  // y multipliers
  const Realization events = SimulateOgataHawkes(kernel, 10.0, marks, 20.0, rng);
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(events[i].time, events[i - 1].time);
    }
    EXPECT_LT(events[i].time, 20.0);
  }
}

TEST(OgataTest, ExponentialKernelMatchesBranchingSimulator) {
  // The thinning simulator and the branching simulator target the same
  // process; their mean final sizes must agree.
  //
  // Branching parameterization: lambda0 = 6, beta = 2, marks Z with E[Z] =
  // rho1 = 0.5.  Ogata parameterization uses kernel multipliers y = beta Z,
  // so E[y] = 1.0 and mu = E[y] Phi(inf) = 1.0 / beta = 0.5.
  const double lambda0 = 6.0, beta = 2.0, rho1 = 0.5;
  const double horizon_t = 40.0;

  Rng rng_a(41), rng_b(42);
  ExponentialKernel kernel(beta);
  ExponentialMark y_marks(beta * rho1);
  RunningStats ogata_sizes, branching_sizes;
  const int reps = 800;
  for (int rep = 0; rep < reps; ++rep) {
    ogata_sizes.Add(static_cast<double>(
        SimulateOgataHawkes(kernel, lambda0, y_marks, horizon_t, rng_a).size()));
  }
  ExpHawkesParams params;
  params.lambda0 = lambda0;
  params.beta = beta;
  params.marks = std::make_shared<ExponentialMark>(rho1);
  SimulateOptions options;
  options.horizon = horizon_t;
  for (int rep = 0; rep < reps; ++rep) {
    branching_sizes.Add(
        static_cast<double>(SimulateExpHawkes(params, options, rng_b).size()));
  }
  const double expected = lambda0 / (beta * (1.0 - rho1));
  const double se_a = ogata_sizes.stddev() / std::sqrt(static_cast<double>(reps));
  const double se_b = branching_sizes.stddev() / std::sqrt(static_cast<double>(reps));
  EXPECT_NEAR(ogata_sizes.mean(), expected, 4.0 * se_a + 0.1);
  EXPECT_NEAR(branching_sizes.mean(), expected, 4.0 * se_b + 0.1);
}

TEST(OgataTest, PowerLawKernelMeanSizeMatchesBranchingTheory) {
  // For baseline lambda0 * phi(t) and i.i.d. multipliers y:
  // E[N(inf)] = lambda0 Phi(inf) / (1 - E[y] Phi(inf)).
  Rng rng(5);
  PowerLawKernel kernel(1.0, 0.5, 1.0);  // Phi(inf) = 1.0 * 0.5 * 2 = 1
  const double mean_y = 0.4;             // mu = 0.4
  ConstantMark y_marks(mean_y);
  const double lambda0 = 5.0;
  RunningStats sizes;
  const int reps = 600;
  for (int rep = 0; rep < reps; ++rep) {
    sizes.Add(static_cast<double>(
        SimulateOgataHawkes(kernel, lambda0, y_marks, 2000.0, rng).size()));
  }
  const double phi_inf = kernel.TotalMass();
  const double expected = lambda0 * phi_inf / (1.0 - mean_y * phi_inf);
  const double se = sizes.stddev() / std::sqrt(static_cast<double>(reps));
  // Allow extra tolerance for horizon truncation of the power-law tail.
  EXPECT_NEAR(sizes.mean(), expected, 4.0 * se + 0.15 * expected);
}

TEST(OgataTest, HigherBaselineYieldsMoreEvents) {
  Rng rng(9);
  ExponentialKernel kernel(1.0);
  ConstantMark marks(0.3);
  RunningStats small, large;
  for (int rep = 0; rep < 200; ++rep) {
    small.Add(static_cast<double>(
        SimulateOgataHawkes(kernel, 2.0, marks, 30.0, rng).size()));
    large.Add(static_cast<double>(
        SimulateOgataHawkes(kernel, 20.0, marks, 30.0, rng).size()));
  }
  EXPECT_GT(large.mean(), 5.0 * small.mean());
}

}  // namespace
}  // namespace horizon::pp
