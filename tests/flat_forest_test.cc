#include "gbdt/flat_forest.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gbdt/gbdt.h"

namespace horizon::gbdt {
namespace {

DataMatrix RandomMatrix(size_t rows, size_t features, uint64_t seed,
                        double lo = -2.0, double hi = 2.0) {
  Rng rng(seed);
  DataMatrix x(rows, features);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t f = 0; f < features; ++f) {
      x.Set(i, f, static_cast<float>(rng.Uniform(lo, hi)));
    }
  }
  return x;
}

GbdtRegressor TrainRandomModel(uint64_t seed, int num_trees = 60, int depth = 6) {
  const size_t rows = 3000, features = 25;
  Rng rng(seed);
  DataMatrix x(rows, features);
  std::vector<double> y(rows);
  for (size_t i = 0; i < rows; ++i) {
    double target = 0.0;
    for (size_t f = 0; f < features; ++f) {
      const double v = rng.Uniform(-1.0, 1.0);
      x.Set(i, f, static_cast<float>(v));
      if (f < 6) target += (f % 2 == 0 ? v : v * v);
    }
    y[i] = target + rng.Normal(0.0, 0.05);
  }
  GbdtParams params;
  params.num_trees = num_trees;
  params.tree.max_depth = depth;
  params.seed = seed;
  GbdtRegressor model(params);
  model.Fit(x, y);
  return model;
}

/// The pre-FlatForest reference path: walk the stored per-tree node
/// vectors row by row, accumulating in boosting order.
double ReferencePredict(const GbdtRegressor& model, const float* row) {
  double out = model.base_score();
  for (const RegressionTree& tree : model.trees()) {
    out += model.params().learning_rate * tree.Predict(row);
  }
  return out;
}

TEST(FlatForestTest, CompileCountsNodesAndTrees) {
  const GbdtRegressor model = TrainRandomModel(3);
  const FlatForest& flat = model.flat_forest();
  ASSERT_TRUE(flat.compiled());
  EXPECT_EQ(flat.num_trees(), model.trees().size());
  size_t total_nodes = 0;
  for (const auto& tree : model.trees()) total_nodes += tree.num_nodes();
  EXPECT_EQ(flat.num_nodes(), total_nodes);
}

TEST(FlatForestTest, BitExactParityOn10kRandomRows) {
  const GbdtRegressor model = TrainRandomModel(7);
  // Rows beyond the training range exercise every threshold direction.
  const DataMatrix x = RandomMatrix(10000, model.num_features(), 99);
  const std::vector<double> batch = model.PredictBatch(x);
  ASSERT_EQ(batch.size(), x.num_rows());
  for (size_t i = 0; i < x.num_rows(); ++i) {
    const double expected = ReferencePredict(model, x.Row(i));
    // Bit-exact: same accumulation order, no tolerance.
    ASSERT_EQ(batch[i], expected) << "row " << i;
    ASSERT_EQ(model.Predict(x.Row(i)), expected) << "row " << i;
  }
}

TEST(FlatForestTest, ParityAfterSerializeDeserializeRoundTrip) {
  const GbdtRegressor model = TrainRandomModel(11);
  GbdtRegressor restored;
  ASSERT_TRUE(restored.Deserialize(model.Serialize()));
  const DataMatrix x = RandomMatrix(10000, model.num_features(), 123);
  const std::vector<double> a = model.PredictBatch(x);
  const std::vector<double> b = restored.PredictBatch(x);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "row " << i;
    ASSERT_EQ(b[i], ReferencePredict(model, x.Row(i))) << "row " << i;
  }
}

TEST(FlatForestTest, EmptyEnsembleIsTheConstantModel) {
  const FlatForest flat = FlatForest::Compile({}, 3.25, 0.1);
  ASSERT_TRUE(flat.compiled());
  EXPECT_EQ(flat.num_trees(), 0u);
  const float row[1] = {0.0f};
  EXPECT_EQ(flat.Predict(row), 3.25);
}

TEST(FlatForestTest, PredictRowsMatchesPerRowOnOddBlockSizes) {
  // Row counts that straddle the internal block size (64).
  const GbdtRegressor model = TrainRandomModel(13, /*num_trees=*/20, /*depth=*/4);
  const FlatForest& flat = model.flat_forest();
  for (const size_t n : {1u, 63u, 64u, 65u, 130u}) {
    const DataMatrix x = RandomMatrix(n, model.num_features(), 1000 + n);
    std::vector<double> out(n);
    flat.PredictRows(x.Row(0), n, x.num_features(), out.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], flat.Predict(x.Row(i))) << "n=" << n << " row " << i;
    }
  }
}

TEST(FlatForestTest, SingleLeafTreesCompile) {
  // Trees that never split (max_depth reached immediately via tiny data).
  std::vector<TreeNode> leaf(1);
  leaf[0].feature = -1;
  leaf[0].value = 2.5;
  std::vector<RegressionTree> trees;
  trees.emplace_back(leaf);
  trees.emplace_back(leaf);
  const FlatForest flat = FlatForest::Compile(trees, 1.0, 0.5);
  const float row[1] = {0.0f};
  EXPECT_DOUBLE_EQ(flat.Predict(row), 1.0 + 0.5 * 2.5 + 0.5 * 2.5);
}

}  // namespace
}  // namespace horizon::gbdt
