#include "core/hawkes_predictor.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"

namespace horizon::core {
namespace {

// Builds a synthetic supervised problem where feature 0 encodes the log1p
// increment at each reference horizon through the ground-truth Hawkes
// transfer formula and feature 1 encodes log(alpha).  The GBDTs can learn
// this mapping almost perfectly, which lets us test the transfer logic.
struct ToyProblem {
  gbdt::DataMatrix x;
  std::vector<std::vector<double>> log1p_increments;
  std::vector<double> alpha_targets;
  std::vector<double> true_final;  // lambda/alpha per example
};

ToyProblem MakeToyProblem(const std::vector<double>& reference_horizons,
                          size_t n = 3000, uint64_t seed = 5) {
  ToyProblem problem;
  problem.x = gbdt::DataMatrix(n, 3);
  problem.log1p_increments.resize(reference_horizons.size());
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double alpha = std::exp(rng.Uniform(std::log(0.3 / kDay), std::log(8.0 / kDay)));
    const double final_inc = std::exp(rng.Uniform(std::log(20.0), std::log(5000.0)));
    problem.x.Set(i, 0, static_cast<float>(std::log(final_inc)));
    problem.x.Set(i, 1, static_cast<float>(std::log(alpha * kDay)));
    problem.x.Set(i, 2, static_cast<float>(rng.Uniform()));  // noise
    for (size_t h = 0; h < reference_horizons.size(); ++h) {
      const double inc = final_inc * -std::expm1(-alpha * reference_horizons[h]);
      problem.log1p_increments[h].push_back(std::log1p(inc));
    }
    problem.alpha_targets.push_back(alpha);
    problem.true_final.push_back(final_inc);
  }
  return problem;
}

HawkesPredictorParams ToyParams(std::vector<double> refs,
                                Aggregation agg = Aggregation::kGeometricMean) {
  HawkesPredictorParams params;
  params.reference_horizons = std::move(refs);
  params.aggregation = agg;
  params.gbdt_count.num_trees = 60;
  params.gbdt_count.tree.max_depth = 5;
  params.gbdt_alpha = params.gbdt_count;
  return params;
}

TEST(HawkesPredictorTest, ExactConsistencyAtReferenceHorizon) {
  // With one reference horizon, the prediction at delta = delta* must equal
  // the raw point predictor output exactly (Sec. 3.2.2).
  const double ref = 1 * kDay;
  const auto problem = MakeToyProblem({ref}, 1500);
  HawkesPredictor model(ToyParams({ref}));
  model.Fit(problem.x, problem.log1p_increments, problem.alpha_targets);

  for (size_t i = 0; i < 20; ++i) {
    const float* row = problem.x.Row(i);
    const double direct = std::max(std::expm1(model.count_model(0).Predict(row)), 0.0);
    EXPECT_DOUBLE_EQ(model.PredictIncrement(row, ref), direct);
  }
}

TEST(HawkesPredictorTest, IncrementMonotoneInHorizon) {
  const auto problem = MakeToyProblem({6 * kHour, 2 * kDay});
  HawkesPredictor model(ToyParams({6 * kHour, 2 * kDay}));
  model.Fit(problem.x, problem.log1p_increments, problem.alpha_targets);
  const float* row = problem.x.Row(0);
  double prev = 0.0;
  for (double delta : {1 * kHour, 3 * kHour, 12 * kHour, 1 * kDay, 4 * kDay, 7 * kDay}) {
    const double inc = model.PredictIncrement(row, delta);
    EXPECT_GE(inc, prev);
    prev = inc;
  }
  EXPECT_GE(model.PredictFinalIncrement(row), prev);
}

TEST(HawkesPredictorTest, TransfersAccuratelyAcrossHorizons) {
  // Train with reference 1d; query at 3h and 4d; compare against the
  // ground-truth transfer values.
  const double ref = 1 * kDay;
  const auto problem = MakeToyProblem({ref}, 4000);
  HawkesPredictor model(ToyParams({ref}));
  model.Fit(problem.x, problem.log1p_increments, problem.alpha_targets);

  int good = 0, total = 0;
  for (size_t i = 0; i < 300; ++i) {
    const float* row = problem.x.Row(i);
    const double alpha = problem.alpha_targets[i];
    for (double delta : {3 * kHour, 4 * kDay}) {
      const double truth = problem.true_final[i] * -std::expm1(-alpha * delta);
      const double pred = model.PredictIncrement(row, delta);
      if (std::fabs(pred - truth) / truth < 0.35) ++good;
      ++total;
    }
  }
  // The GBDTs fit a smooth 2-d function; most queries must transfer well.
  EXPECT_GT(static_cast<double>(good) / total, 0.8);
}

TEST(HawkesPredictorTest, AggregationsAgreeForSingleReference) {
  const double ref = 12 * kHour;
  const auto problem = MakeToyProblem({ref}, 800);
  HawkesPredictor geo(ToyParams({ref}, Aggregation::kGeometricMean));
  HawkesPredictor ari(ToyParams({ref}, Aggregation::kArithmeticMean));
  geo.Fit(problem.x, problem.log1p_increments, problem.alpha_targets);
  ari.Fit(problem.x, problem.log1p_increments, problem.alpha_targets);
  for (size_t i = 0; i < 10; ++i) {
    const float* row = problem.x.Row(i);
    for (double delta : {1 * kHour, 1 * kDay, 5 * kDay}) {
      EXPECT_NEAR(geo.PredictIncrement(row, delta), ari.PredictIncrement(row, delta),
                  1e-6 * (1.0 + ari.PredictIncrement(row, delta)));
    }
  }
}

TEST(HawkesPredictorTest, MultiReferenceFormulasMatchHandComputation) {
  const std::vector<double> refs = {6 * kHour, 1 * kDay, 4 * kDay};
  const auto problem = MakeToyProblem(refs, 1200);

  for (Aggregation agg :
       {Aggregation::kArithmeticMean, Aggregation::kGeometricMean}) {
    HawkesPredictor model(ToyParams(refs, agg));
    model.Fit(problem.x, problem.log1p_increments, problem.alpha_targets);
    const float* row = problem.x.Row(3);
    const double alpha = model.PredictAlpha(row);
    const double delta = 2 * kDay;

    std::vector<double> inc(refs.size());
    for (size_t i = 0; i < refs.size(); ++i) {
      inc[i] = std::max(std::expm1(model.count_model(i).Predict(row)), 0.0);
    }
    double expected;
    if (agg == Aggregation::kArithmeticMean) {
      double sum = 0.0;
      for (size_t i = 0; i < refs.size(); ++i) {
        sum += inc[i] / -std::expm1(-alpha * refs[i]);
      }
      expected = sum / refs.size() * -std::expm1(-alpha * delta);
    } else {
      double log_sum = 0.0;
      for (size_t i = 0; i < refs.size(); ++i) {
        log_sum += std::log(std::max(inc[i], 1e-9)) -
                   std::log(-std::expm1(-alpha * refs[i]));
      }
      expected = std::exp(log_sum / refs.size() + std::log(-std::expm1(-alpha * delta)));
    }
    EXPECT_NEAR(model.PredictIncrement(row, delta), expected,
                1e-9 * (1.0 + expected))
        << AggregationName(agg);
  }
}

TEST(HawkesPredictorTest, AlphaPredictionClamped) {
  const double ref = 1 * kDay;
  auto params = ToyParams({ref});
  params.alpha_min = 1.0 / kDay;
  params.alpha_max = 2.0 / kDay;
  const auto problem = MakeToyProblem({ref}, 500);
  HawkesPredictor model(params);
  model.Fit(problem.x, problem.log1p_increments, problem.alpha_targets);
  for (size_t i = 0; i < 50; ++i) {
    const double alpha = model.PredictAlpha(problem.x.Row(i));
    EXPECT_GE(alpha, params.alpha_min);
    EXPECT_LE(alpha, params.alpha_max);
  }
}

TEST(HawkesPredictorTest, ZeroHorizonGivesZero) {
  const double ref = 1 * kDay;
  const auto problem = MakeToyProblem({ref}, 300);
  HawkesPredictor model(ToyParams({ref}));
  model.Fit(problem.x, problem.log1p_increments, problem.alpha_targets);
  EXPECT_EQ(model.PredictIncrement(problem.x.Row(0), 0.0), 0.0);
}

TEST(HawkesPredictorTest, PredictCountAddsObservedCount) {
  const double ref = 1 * kDay;
  const auto problem = MakeToyProblem({ref}, 300);
  HawkesPredictor model(ToyParams({ref}));
  model.Fit(problem.x, problem.log1p_increments, problem.alpha_targets);
  const float* row = problem.x.Row(0);
  EXPECT_DOUBLE_EQ(model.PredictCount(row, 100.0, ref),
                   100.0 + model.PredictIncrement(row, ref));
}

TEST(HawkesPredictorTest, AggregationNames) {
  EXPECT_STREQ(AggregationName(Aggregation::kArithmeticMean), "arithmetic");
  EXPECT_STREQ(AggregationName(Aggregation::kGeometricMean), "geometric");
}

}  // namespace
}  // namespace horizon::core
