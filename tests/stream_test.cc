#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stream/exponential_histogram.h"
#include "stream/sliding_window.h"

namespace horizon::stream {
namespace {

TEST(ExactSlidingWindowTest, CountsInWindowOnly) {
  ExactSlidingWindow w(10.0);
  w.Add(1.0);
  w.Add(5.0);
  w.Add(9.0);
  EXPECT_EQ(w.Count(9.0), 3u);
  EXPECT_EQ(w.Count(11.5), 2u);   // 1.0 expired (11.5 - 10 = 1.5 > 1.0)
  EXPECT_EQ(w.Count(20.0), 0u);
  EXPECT_EQ(w.TotalCount(), 3u);
}

TEST(ExponentialHistogramTest, ExactForSmallCounts) {
  ExponentialHistogram h(100.0, 0.1);
  for (int i = 0; i < 5; ++i) h.Add(static_cast<double>(i));
  EXPECT_EQ(h.Count(4.0), 5u);
}

TEST(ExponentialHistogramTest, TotalCountIsExact) {
  ExponentialHistogram h(10.0, 0.2);
  for (int i = 0; i < 1000; ++i) h.Add(i * 0.01);
  EXPECT_EQ(h.TotalCount(), 1000u);
}

TEST(ExponentialHistogramTest, SpaceIsLogarithmic) {
  ExponentialHistogram h(1e9, 0.1);
  for (int i = 0; i < 100000; ++i) h.Add(static_cast<double>(i));
  // With k ~ 11 buckets per size and ~log2(1e5) sizes, bucket count must be
  // far below the event count.
  EXPECT_LT(h.NumBuckets(), 250u);
}

struct EhCase {
  double epsilon;
  double window;
  int num_events;
  uint64_t seed;
};

class ExponentialHistogramErrorTest : public ::testing::TestWithParam<EhCase> {};

TEST_P(ExponentialHistogramErrorTest, RelativeErrorBounded) {
  const EhCase c = GetParam();
  ExponentialHistogram approx(c.window, c.epsilon);
  ExactSlidingWindow exact(c.window);
  Rng rng(c.seed);
  double t = 0.0;
  for (int i = 0; i < c.num_events; ++i) {
    // Bursty arrivals: mixture of dense and sparse gaps.
    t += rng.Bernoulli(0.7) ? rng.Exponential(2.0) : rng.Exponential(0.05);
    approx.Add(t);
    exact.Add(t);
    if (i % 7 == 0) {
      const double now = t + rng.Uniform() * 0.1;
      const double truth = static_cast<double>(exact.Count(now));
      const double est = static_cast<double>(approx.Count(now));
      if (truth > 0) {
        EXPECT_LE(std::fabs(est - truth) / truth, c.epsilon + 1e-9)
            << "at t=" << now << " truth=" << truth << " est=" << est;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExponentialHistogramErrorTest,
    ::testing::Values(EhCase{0.5, 50.0, 5000, 1}, EhCase{0.2, 50.0, 5000, 2},
                      EhCase{0.1, 20.0, 8000, 3}, EhCase{0.05, 100.0, 8000, 4},
                      EhCase{0.01, 10.0, 4000, 5}));

TEST(WindowBankTest, MultipleWindows) {
  WindowBank bank({10.0, 100.0}, 0.01);
  for (int i = 0; i < 100; ++i) bank.Add(static_cast<double>(i));
  // At t=99.5: window 10 holds ~10 events, window 100 holds ~100.
  EXPECT_NEAR(static_cast<double>(bank.Count(0, 99.5)), 10.0, 2.0);
  EXPECT_NEAR(static_cast<double>(bank.Count(1, 99.5)), 100.0, 3.0);
  EXPECT_NEAR(bank.Velocity(0, 99.5), 1.0, 0.2);
  EXPECT_NEAR(bank.Velocity(1, 99.5), 1.0, 0.05);
  EXPECT_EQ(bank.num_windows(), 2u);
  EXPECT_EQ(bank.TotalCount(), 100u);
  EXPECT_EQ(bank.window_length(0), 10.0);
}

TEST(ExponentialHistogramTest, QueryAfterLongSilenceIsZero) {
  ExponentialHistogram h(5.0, 0.1);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i) * 0.01);
  EXPECT_EQ(h.Count(100.0), 0u);
}

}  // namespace
}  // namespace horizon::stream
