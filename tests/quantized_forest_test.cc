#include "gbdt/quantized_forest.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gbdt/gbdt.h"

// Like block_forest_test, this suite does not guard HORIZON_SIMD: the
// quantized path is decision-exact in every kernel flavor, and the ctest
// variants pin the flavor per process.

namespace horizon::gbdt {
namespace {

DataMatrix RandomMatrix(size_t rows, size_t features, uint64_t seed,
                        double lo = -2.0, double hi = 2.0) {
  Rng rng(seed);
  DataMatrix x(rows, features);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t f = 0; f < features; ++f) {
      x.Set(i, f, static_cast<float>(rng.Uniform(lo, hi)));
    }
  }
  return x;
}

GbdtRegressor TrainRandomModel(uint64_t seed, int num_trees = 60,
                               int depth = 6) {
  const size_t rows = 3000, features = 25;
  Rng rng(seed);
  DataMatrix x(rows, features);
  std::vector<double> y(rows);
  for (size_t i = 0; i < rows; ++i) {
    double target = 0.0;
    for (size_t f = 0; f < features; ++f) {
      const double v = rng.Uniform(-1.0, 1.0);
      x.Set(i, f, static_cast<float>(v));
      if (f < 6) target += (f % 2 == 0 ? v : v * v);
    }
    y[i] = target + rng.Normal(0.0, 0.05);
  }
  GbdtParams params;
  params.num_trees = num_trees;
  params.tree.max_depth = depth;
  params.seed = seed;
  GbdtRegressor model(params);
  model.Fit(x, y);
  return model;
}

TEST(QuantizedForestTest, CompilesTrainedModel) {
  const GbdtRegressor model = TrainRandomModel(3);
  const QuantizedForest& quant = model.quantized_forest();
  ASSERT_TRUE(quant.compiled());
  EXPECT_EQ(quant.num_trees(), model.trees().size());
  EXPECT_EQ(quant.num_features(), model.num_features());
  EXPECT_EQ(quant.depth(), model.block_forest().depth());
  // max_bins = 255 at training caps the distinct thresholds per feature
  // far below the uint16 ceiling.
  for (size_t f = 0; f < quant.num_features(); ++f) {
    EXPECT_LE(quant.cuts(f).size(), QuantizedForest::kMaxCutsPerFeature);
  }
}

TEST(QuantizedForestTest, QuantizeValueBoundarySemantics) {
  const GbdtRegressor model = TrainRandomModel(5, /*num_trees=*/20);
  const QuantizedForest& quant = model.quantized_forest();
  ASSERT_TRUE(quant.compiled());
  // Find a feature with at least one cut and probe around each boundary:
  // v <= cuts[j] must hold exactly when code(v) <= j.
  bool probed = false;
  for (size_t f = 0; f < quant.num_features(); ++f) {
    const std::vector<float>& cuts = quant.cuts(f);
    if (cuts.empty()) continue;
    probed = true;
    for (size_t j = 0; j < cuts.size(); ++j) {
      EXPECT_EQ(quant.QuantizeValue(f, cuts[j]), j) << "at cut " << j;
      EXPECT_GT(quant.QuantizeValue(
                    f, std::nextafter(cuts[j],
                                      std::numeric_limits<float>::infinity())),
                j)
          << "above cut " << j;
    }
    EXPECT_EQ(quant.QuantizeValue(
                  f, -std::numeric_limits<float>::infinity()),
              0u);
    EXPECT_EQ(quant.QuantizeValue(f, std::numeric_limits<float>::infinity()),
              cuts.size());
    // NaN maps past every cut: always right, like the float predicate.
    EXPECT_EQ(quant.QuantizeValue(f, std::numeric_limits<float>::quiet_NaN()),
              cuts.size());
  }
  ASSERT_TRUE(probed);
}

// Acceptance gate: the quantized path on 100k random examples stays
// within the documented bin-boundary error bound.  For the built-in
// rank-space quantizer that bound is ZERO (v <= cuts[j] <=> code(v) <= j,
// so every traversal decision matches), which the assertion states in its
// strongest form: bitwise equality with the float reference.
TEST(QuantizedForestTest, BoundedErrorOn100kRandomExamples) {
  const GbdtRegressor model = TrainRandomModel(7);
  const QuantizedForest& quant = model.quantized_forest();
  ASSERT_TRUE(quant.compiled());
  // Values beyond the training range exercise codes at both extremes.
  const DataMatrix x = RandomMatrix(100000, model.num_features(), 99, -4.0, 4.0);
  const std::vector<double> reference = model.flat_forest().PredictBatch(x);
  const std::vector<double> quantized = quant.PredictBatch(x);
  ASSERT_EQ(quantized.size(), reference.size());
  constexpr double kDocumentedBound = 0.0;  // see quantized_forest.h
  for (size_t i = 0; i < quantized.size(); ++i) {
    ASSERT_LE(std::fabs(quantized[i] - reference[i]), kDocumentedBound)
        << "row " << i;
  }
}

TEST(QuantizedForestTest, ColumnMajorBatchMatchesFloatPath) {
  const GbdtRegressor model = TrainRandomModel(11, /*num_trees=*/30);
  const DataMatrix x = RandomMatrix(1537, model.num_features(), 4);
  ExampleBatch soa(x.num_rows(), x.num_features());
  for (size_t r = 0; r < x.num_rows(); ++r) {
    for (size_t f = 0; f < x.num_features(); ++f) soa.Set(r, f, x.Get(r, f));
  }
  const std::vector<double> via_float = model.PredictBatch(soa);
  const std::vector<double> via_quant = model.PredictBatchQuantized(soa);
  ASSERT_EQ(via_quant.size(), via_float.size());
  for (size_t i = 0; i < via_quant.size(); ++i) {
    ASSERT_EQ(via_quant[i], via_float[i]) << "row " << i;
  }
}

TEST(QuantizedForestTest, SerializeRoundTripsBitExact) {
  const GbdtRegressor model = TrainRandomModel(13, /*num_trees=*/25);
  const QuantizedForest& quant = model.quantized_forest();
  const std::string blob = quant.Serialize();
  QuantizedForest restored;
  ASSERT_TRUE(restored.Deserialize(blob));
  ASSERT_TRUE(restored.compiled());
  // Byte-stable: re-serializing reproduces the blob exactly (checkpoint
  // digests rely on this).
  EXPECT_EQ(restored.Serialize(), blob);
  const DataMatrix x = RandomMatrix(999, model.num_features(), 31);
  const std::vector<double> before = quant.PredictBatch(x);
  const std::vector<double> after = restored.PredictBatch(x);
  for (size_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(after[i], before[i]) << "row " << i;
  }
}

TEST(QuantizedForestTest, DeserializeRejectsMalformedBlobs) {
  const GbdtRegressor model = TrainRandomModel(17, /*num_trees=*/5);
  const std::string good = model.quantized_forest().Serialize();
  QuantizedForest q;
  EXPECT_FALSE(q.Deserialize(""));
  EXPECT_FALSE(q.Deserialize("qforest v2\n"));
  EXPECT_FALSE(q.Deserialize("gbdt v1\n"));
  EXPECT_FALSE(q.Deserialize(good.substr(0, good.size() / 2)));  // truncated
  // Oversized counts must be rejected before allocation.
  EXPECT_FALSE(q.Deserialize("qforest v1\n999999999 1 5 0.0 0.1\n"));
  EXPECT_FALSE(q.Deserialize("qforest v1\n1 999999999 5 0.0 0.1\n"));
  EXPECT_FALSE(q.Deserialize("qforest v1\n1 1 40 0.0 0.1\n"));   // depth
  EXPECT_FALSE(q.Deserialize("qforest v1\n1 1 5 nan 0.1\n"));
  EXPECT_FALSE(q.Deserialize("qforest v1\n1 1 5 0.0 -0.1\n"));
  // A rank past the feature's cut list must be rejected.
  EXPECT_FALSE(q.Deserialize("qforest v1\n1 1 1 0.0 0.1\n1 0.5\n0 7\n1 2\n"));
  // Cuts must be strictly increasing and finite.
  EXPECT_FALSE(
      q.Deserialize("qforest v1\n1 1 1 0.0 0.1\n2 0.5 0.5\n0 0\n1 2\n"));
  EXPECT_FALSE(
      q.Deserialize("qforest v1\n1 1 1 0.0 0.1\n1 inf\n0 0\n1 2\n"));
  EXPECT_FALSE(q.compiled());
  // And the unmodified blob still parses.
  EXPECT_TRUE(q.Deserialize(good));
  EXPECT_TRUE(q.compiled());
}

TEST(QuantizedForestTest, MinimalHandAuthoredBlobPredicts) {
  // One feature, one tree, depth 1: split at 0.5, left leaf 1, right 2.
  QuantizedForest q;
  ASSERT_TRUE(q.Deserialize("qforest v1\n1 1 1 0.0 1.0\n1 0.5\n0 0\n1 2\n"));
  DataMatrix x(2, 1);
  x.Set(0, 0, 0.25f);  // <= 0.5 -> left
  x.Set(1, 0, 0.75f);  // > 0.5 -> right
  const std::vector<double> out = q.PredictBatch(x);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], 2.0);
}

}  // namespace
}  // namespace horizon::gbdt
