#include "pointprocess/exp_hawkes_mle.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "pointprocess/exp_hawkes.h"

namespace horizon::pp {
namespace {

std::vector<double> Times(const Realization& events) {
  std::vector<double> out;
  for (const auto& e : events) out.push_back(e.time);
  return out;
}

TEST(ExpHawkesLogLikelihoodTest, FiniteForValidInputs) {
  const std::vector<double> times = {1.0, 2.0, 5.0};
  const double ll = ExpHawkesLogLikelihood(times, 10.0, 2.0, 1.0, 0.5);
  EXPECT_TRUE(std::isfinite(ll));
}

TEST(ExpHawkesLogLikelihoodTest, EmptyHistoryIsMinusCompensator) {
  // No events: LL = -int lambda = -lambda0 (1 - e^{-beta T}) / beta.
  const double ll = ExpHawkesLogLikelihood({}, 4.0, 3.0, 2.0, 0.5);
  EXPECT_NEAR(ll, -3.0 / 2.0 * (1.0 - std::exp(-8.0)), 1e-12);
}

TEST(ExpHawkesLogLikelihoodTest, TrueParametersScoreWell) {
  // The LL at the generating parameters should on average beat clearly
  // wrong parameters.
  ExpHawkesParams params;
  params.lambda0 = 50.0;
  params.beta = 2.0;
  params.marks = std::make_shared<ConstantMark>(0.5);
  SimulateOptions options;
  options.horizon = 20.0;
  Rng rng(5);
  int true_wins = 0;
  const int reps = 30;
  for (int rep = 0; rep < reps; ++rep) {
    const auto times = Times(SimulateExpHawkes(params, options, rng));
    if (times.size() < 10) continue;
    const double ll_true = ExpHawkesLogLikelihood(times, 20.0, 50.0, 2.0, 0.5);
    const double ll_wrong = ExpHawkesLogLikelihood(times, 20.0, 50.0, 0.2, 0.1);
    if (ll_true > ll_wrong) ++true_wins;
  }
  EXPECT_GT(true_wins, reps * 2 / 3);
}

TEST(FitExpHawkesMleTest, TooFewEventsNotOk) {
  EXPECT_FALSE(FitExpHawkesMle({1.0, 2.0}, 10.0).ok);
}

TEST(FitExpHawkesMleTest, CountsLikelihoodEvaluations) {
  const std::vector<double> times = {10.0, 20.0, 40.0, 80.0, 200.0, 300.0};
  const auto fit = FitExpHawkesMle(times, 1000.0);
  ASSERT_TRUE(fit.ok);
  // Coarse grid alone is 8 * 8 * 5 = 320 evaluations.
  EXPECT_GT(fit.likelihood_evaluations, 320);
}

TEST(FitExpHawkesMleTest, RecoversAlphaOnSimulatedData) {
  ExpHawkesParams params;
  params.lambda0 = 3.0;     // expected ~300 events
  params.beta = 2e-4;       // ~2.3 h kernel half-life
  params.marks = std::make_shared<ConstantMark>(0.5);
  const double true_alpha = params.alpha();
  SimulateOptions options;
  options.horizon = 40.0 / true_alpha;

  Rng rng(11);
  std::vector<double> alpha_ratios, beta_ratios;
  for (int rep = 0; rep < 12; ++rep) {
    const auto times = Times(SimulateExpHawkes(params, options, rng));
    if (times.size() < 50) continue;
    const auto fit = FitExpHawkesMle(times, options.horizon);
    ASSERT_TRUE(fit.ok);
    alpha_ratios.push_back(fit.alpha() / true_alpha);
    beta_ratios.push_back(fit.beta / params.beta);
  }
  ASSERT_GT(alpha_ratios.size(), 6u);
  const double med_alpha = Median(alpha_ratios);
  const double med_beta = Median(beta_ratios);
  EXPECT_GT(med_alpha, 0.5);
  EXPECT_LT(med_alpha, 2.0);
  EXPECT_GT(med_beta, 0.4);
  EXPECT_LT(med_beta, 2.5);
}

TEST(FitExpHawkesMleTest, MleBeatsGridCornersInLikelihood) {
  ExpHawkesParams params;
  params.lambda0 = 5.0;
  params.beta = 1e-3;
  params.marks = std::make_shared<ConstantMark>(0.4);
  SimulateOptions options;
  options.horizon = 50000.0;
  Rng rng(13);
  const auto times = Times(SimulateExpHawkes(params, options, rng));
  ASSERT_GT(times.size(), 20u);
  const auto fit = FitExpHawkesMle(times, options.horizon);
  ASSERT_TRUE(fit.ok);
  EXPECT_GE(fit.log_likelihood,
            ExpHawkesLogLikelihood(times, options.horizon, fit.lambda0, 1e-7, 0.01));
  EXPECT_GE(fit.log_likelihood,
            ExpHawkesLogLikelihood(times, options.horizon, fit.lambda0, 1e-2, 0.95));
}

}  // namespace
}  // namespace horizon::pp
