// Deterministic simulation harness tests.
//
// The heavy lifting (building a dataset, training a model, and running a
// seeded schedule against service + reference) lives in src/sim; this
// file asserts the harness's own contracts:
//   * many seeds across every fault schedule pass with zero divergences,
//   * the same seed reproduces the identical trace and report,
//   * each fault schedule actually exercises its fault paths (via the
//     report's fault accounting -- a schedule that silently stops
//     injecting faults must fail here, not quietly pass),
//   * the trace minimizer shrinks a hand-built failing schedule to a
//     still-failing suffix.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "env_guard.h"
#include "sim/op_schedule.h"
#include "sim/simulator.h"

namespace horizon::sim {
namespace {

// The simulator arms the global FaultInjector itself; a stray
// HORIZON_FAULT_CRASH_AT from the invoking shell must not pre-arm it.
const ::testing::Environment* const kFaultEnvGuard =
    ::testing::AddGlobalTestEnvironment(
        new horizon::test::EnvVarGuard("HORIZON_FAULT_CRASH_AT",
                                       /*disarm_fault_injector=*/true));

class SimTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    if (context_ == nullptr) context_ = new SimContext(BuildSimContext());
  }

  /// Kept deliberately small: every seed sweep below runs dozens of full
  /// service lifecycles, also under TSan/ASan in CI.
  static SimConfig TestConfig(const std::string& faults, int rounds = 12,
                              bool async_ingest = false) {
    SimConfig config;
    config.schedule.num_items = 8;
    config.schedule.rounds = rounds;
    config.schedule.faults = faults;
    config.async_ingest = async_ingest;
    return config;
  }

  /// Runs `num_seeds` consecutive seeds and returns the reports, failing
  /// the test on any divergence (with the minimized repro in the message).
  /// With `async_ingest` the identical seeds certify the MPSC-queue /
  /// epoch-snapshot pipeline against the same reference.
  static std::vector<SimReport> Sweep(const std::string& faults,
                                      uint64_t first_seed, int num_seeds,
                                      bool async_ingest = false) {
    Simulator simulator(context_, TestConfig(faults, 12, async_ingest));
    std::vector<SimReport> reports;
    for (int i = 0; i < num_seeds; ++i) {
      reports.push_back(simulator.Run(first_seed + static_cast<uint64_t>(i)));
      const SimReport& r = reports.back();
      EXPECT_TRUE(r.ok) << r.Summary() << "\nminimized repro:\n"
                        << r.minimized_trace;
    }
    return reports;
  }

  static SimContext* context_;
};

SimContext* SimTest::context_ = nullptr;

// --- Seed sweeps: >= 32 seeds for each of the fault schedules. ---------

TEST_F(SimTest, CrashFaultScheduleSweep) {
  const auto reports = Sweep("crash", 1000, 32);
  int failures = 0, attempts = 0;
  for (const auto& r : reports) {
    attempts += r.checkpoints_attempted;
    failures += r.checkpoint_failures;
  }
  // The schedule must actually exercise both the fault and the
  // armed-but-never-fired paths across the sweep.
  EXPECT_GT(attempts, 0);
  EXPECT_GT(failures, 0) << "crash schedule never made a checkpoint fail";
  EXPECT_LT(failures, attempts) << "crash schedule never let one succeed";
}

TEST_F(SimTest, TransientFaultScheduleSweep) {
  const auto reports = Sweep("transient", 2000, 32);
  int retries = 0;
  for (const auto& r : reports) retries += r.transient_retries;
  EXPECT_GT(retries, 0) << "transient schedule never recovered via retry";
}

TEST_F(SimTest, CorruptFaultScheduleSweep) {
  const auto reports = Sweep("corrupt", 3000, 32);
  int restores = 0, rejected = 0;
  for (const auto& r : reports) {
    restores += r.restores_attempted;
    rejected += r.restores_failed;
  }
  EXPECT_GT(restores, 0);
  EXPECT_GT(rejected, 0) << "corruption was never detected by Restore";
}

TEST_F(SimTest, NoFaultScheduleSweep) {
  const auto reports = Sweep("none", 4000, 8);
  for (const auto& r : reports) {
    EXPECT_EQ(r.checkpoint_failures, 0) << r.Summary();
    EXPECT_EQ(r.restores_failed, 0) << r.Summary();
    // Typed per-item errors (kNotFound / kNotYetLive / kAlreadyExists /
    // kInvalidArgument) still flow on the clean schedule.
    EXPECT_GT(r.errors_observed, 0u) << r.Summary();
  }
}

TEST_F(SimTest, MixedFaultScheduleSweep) { Sweep("mixed", 5000, 8); }

// --- Async-ingest equivalence: the SAME seeds as the sync matrix above,
// executed against the MPSC-queue + epoch-snapshot pipeline.  Every
// linearization point (implicit pre-read flush, explicit kFlush,
// checkpoint/retire/restore drain) must be bit-identical to the
// single-threaded reference, including the metrics conservation laws
// (enqueued == ingested, dropped == 0, depth == 0 when drained). --------

TEST_F(SimTest, AsyncCrashFaultScheduleSweep) {
  const auto reports = Sweep("crash", 1000, 32, /*async_ingest=*/true);
  int failures = 0, attempts = 0;
  for (const auto& r : reports) {
    attempts += r.checkpoints_attempted;
    failures += r.checkpoint_failures;
  }
  EXPECT_GT(attempts, 0);
  // A crash during checkpoint must find the queues already drained (the
  // drain precedes checkpoint IO): accepted events are either applied
  // before the fault or were never accepted -- never half-applied.
  EXPECT_GT(failures, 0) << "crash schedule never made a checkpoint fail";
  EXPECT_LT(failures, attempts) << "crash schedule never let one succeed";
}

TEST_F(SimTest, AsyncTransientFaultScheduleSweep) {
  const auto reports = Sweep("transient", 2000, 32, /*async_ingest=*/true);
  int retries = 0;
  for (const auto& r : reports) retries += r.transient_retries;
  EXPECT_GT(retries, 0) << "transient schedule never recovered via retry";
}

TEST_F(SimTest, AsyncCorruptFaultScheduleSweep) {
  const auto reports = Sweep("corrupt", 3000, 32, /*async_ingest=*/true);
  int restores = 0, rejected = 0;
  for (const auto& r : reports) {
    restores += r.restores_attempted;
    rejected += r.restores_failed;
  }
  EXPECT_GT(restores, 0);
  EXPECT_GT(rejected, 0) << "corruption was never detected by Restore";
}

TEST_F(SimTest, AsyncNoFaultScheduleSweep) {
  const auto reports = Sweep("none", 4000, 8, /*async_ingest=*/true);
  for (const auto& r : reports) {
    EXPECT_EQ(r.checkpoint_failures, 0) << r.Summary();
    EXPECT_EQ(r.restores_failed, 0) << r.Summary();
    EXPECT_GT(r.errors_observed, 0u) << r.Summary();
  }
}

TEST_F(SimTest, AsyncMixedFaultScheduleSweep) {
  Sweep("mixed", 5000, 8, /*async_ingest=*/true);
}

// The two pipelines, run over the same seed, must agree not just with
// the reference but with each other: identical traces (the schedule does
// not depend on the pipeline), identical final counters, and identical
// fault accounting.
TEST_F(SimTest, AsyncAndSyncAgreeOnSameSeed) {
  for (const uint64_t seed : {77u, 1013u, 5005u}) {
    Simulator sync_sim(context_, TestConfig("mixed"));
    Simulator async_sim(context_, TestConfig("mixed", 12, /*async=*/true));
    const SimReport rs = sync_sim.Run(seed);
    const SimReport ra = async_sim.Run(seed);
    ASSERT_TRUE(rs.ok) << rs.Summary();
    ASSERT_TRUE(ra.ok) << ra.Summary() << "\nminimized repro:\n"
                       << ra.minimized_trace;
    EXPECT_EQ(rs.trace, ra.trace);
    EXPECT_EQ(rs.ops_executed, ra.ops_executed);
    EXPECT_EQ(rs.final_stats.items_registered, ra.final_stats.items_registered);
    EXPECT_EQ(rs.final_stats.events_ingested, ra.final_stats.events_ingested);
    EXPECT_EQ(rs.final_stats.queries_answered, ra.final_stats.queries_answered);
    EXPECT_EQ(rs.final_stats.items_retired, ra.final_stats.items_retired);
    EXPECT_EQ(rs.errors_observed, ra.errors_observed);
    EXPECT_EQ(rs.checkpoints_attempted, ra.checkpoints_attempted);
    EXPECT_EQ(rs.checkpoint_failures, ra.checkpoint_failures);
    EXPECT_EQ(rs.restores_attempted, ra.restores_attempted);
    EXPECT_EQ(rs.restores_failed, ra.restores_failed);
  }
}

// --- Determinism. ------------------------------------------------------

TEST_F(SimTest, SameSeedYieldsIdenticalScheduleAndReport) {
  const ScheduleConfig config = TestConfig("mixed").schedule;
  const OpSchedule a = GenerateOpSchedule(context_->dataset, config, 77);
  const OpSchedule b = GenerateOpSchedule(context_->dataset, config, 77);
  EXPECT_EQ(FormatTrace(a), FormatTrace(b));

  // Two independent simulators: no state may leak between runs.
  Simulator sim_a(context_, TestConfig("mixed"));
  Simulator sim_b(context_, TestConfig("mixed"));
  const SimReport ra = sim_a.Run(77);
  const SimReport rb = sim_b.Run(77);
  EXPECT_EQ(ra.ok, rb.ok);
  EXPECT_EQ(ra.trace, rb.trace);
  EXPECT_EQ(ra.message, rb.message);
  EXPECT_EQ(ra.ops_executed, rb.ops_executed);
  EXPECT_EQ(ra.Summary(), rb.Summary());
}

TEST_F(SimTest, DifferentSeedsYieldDifferentSchedules) {
  const ScheduleConfig config = TestConfig("mixed").schedule;
  const OpSchedule a = GenerateOpSchedule(context_->dataset, config, 1);
  const OpSchedule b = GenerateOpSchedule(context_->dataset, config, 2);
  EXPECT_NE(FormatTrace(a), FormatTrace(b));
}

TEST_F(SimTest, ScheduleTimesAreMonotone) {
  for (const char* faults : {"none", "crash", "transient", "corrupt", "mixed"}) {
    const OpSchedule schedule =
        GenerateOpSchedule(context_->dataset, TestConfig(faults).schedule, 9);
    double prev = 0.0;
    for (const Op& op : schedule.ops) {
      EXPECT_GE(op.time, prev) << FormatOp(op) << " (faults=" << faults << ")";
      prev = op.time;
    }
  }
}

// --- The minimizer. ----------------------------------------------------

TEST_F(SimTest, MinimizerShrinksFailingTrace) {
  // Hand-build a schedule whose LAST op is malformed in a way the
  // executor treats as a failure (a scan with top_k = 0 is an invalid
  // request, so the service rejects what the executor expects to
  // succeed), padded with many irrelevant passing ops in front.
  OpSchedule schedule;
  schedule.seed = 424242;
  schedule.config = TestConfig("none").schedule;
  double t = 0.0;
  for (int64_t item = 0; item < 6; ++item) {
    Op reg;
    reg.kind = OpKind::kRegister;
    reg.time = t;
    reg.item = item;
    reg.creation_time = t;
    schedule.ops.push_back(reg);
    Op query;
    query.kind = OpKind::kQuery;
    query.time = t += 60.0;
    query.ids = {item};
    query.s = query.time;
    query.delta = kHour;
    schedule.ops.push_back(query);
    Op check;
    check.kind = OpKind::kCheck;
    check.time = t += 60.0;
    schedule.ops.push_back(check);
  }
  Op poison;
  poison.kind = OpKind::kScan;
  poison.time = t += 60.0;
  poison.s = poison.time;
  poison.delta = kHour;
  poison.top_k = 0;
  schedule.ops.push_back(poison);

  Simulator simulator(context_, TestConfig("none"));
  const SimReport report = simulator.Execute(schedule);
  ASSERT_FALSE(report.ok);
  ASSERT_EQ(report.failed_op, static_cast<int>(schedule.ops.size()) - 1);

  const OpSchedule minimized =
      simulator.MinimizedSchedule(schedule, report.failed_op);
  EXPECT_LT(minimized.ops.size(), schedule.ops.size());
  ASSERT_FALSE(minimized.ops.empty());
  EXPECT_EQ(minimized.ops.back().kind, OpKind::kScan);
  // The minimized trace must still reproduce the failure at its last op.
  const SimReport again = simulator.Execute(minimized);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.failed_op, static_cast<int>(minimized.ops.size()) - 1);
  // Nothing before the poison op matters here, so a correct greedy
  // minimizer strips every padding op.
  EXPECT_EQ(minimized.ops.size(), 1u);
}

// --- Schedule validity helpers. ----------------------------------------

TEST_F(SimTest, FaultScheduleNames) {
  EXPECT_TRUE(IsValidFaultSchedule("none"));
  EXPECT_TRUE(IsValidFaultSchedule("crash"));
  EXPECT_TRUE(IsValidFaultSchedule("transient"));
  EXPECT_TRUE(IsValidFaultSchedule("corrupt"));
  EXPECT_TRUE(IsValidFaultSchedule("mixed"));
  EXPECT_FALSE(IsValidFaultSchedule(""));
  EXPECT_FALSE(IsValidFaultSchedule("chaos"));
}

TEST_F(SimTest, TracesNameEveryOpKind) {
  // A long mixed schedule should exercise the whole op vocabulary; the
  // trace is the repro artifact, so every kind must render by name.
  const OpSchedule schedule = GenerateOpSchedule(
      context_->dataset, TestConfig("mixed", /*rounds=*/24).schedule, 31);
  const std::string trace = FormatTrace(schedule);
  for (const char* name :
       {"register", "ingest", "query", "scan", "check", "restore", "flush"}) {
    EXPECT_NE(trace.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace horizon::sim
