#include "baselines/feature_models.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"

namespace horizon::baselines {
namespace {

// Toy world: increment over horizon delta is final * (1 - e^{-alpha delta})
// with (final, alpha) encoded in the two features.
struct ToyData {
  gbdt::DataMatrix x;
  std::vector<double> finals;
  std::vector<double> alphas;

  std::vector<std::vector<double>> TargetsFor(const std::vector<double>& horizons) const {
    std::vector<std::vector<double>> out(horizons.size());
    for (size_t h = 0; h < horizons.size(); ++h) {
      for (size_t i = 0; i < finals.size(); ++i) {
        out[h].push_back(
            std::log1p(finals[i] * -std::expm1(-alphas[i] * horizons[h])));
      }
    }
    return out;
  }
};

ToyData MakeToyData(size_t n = 2500, uint64_t seed = 3) {
  ToyData data;
  data.x = gbdt::DataMatrix(n, 2);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double final_inc = std::exp(rng.Uniform(std::log(30.0), std::log(3000.0)));
    const double alpha = std::exp(rng.Uniform(std::log(0.5 / kDay), std::log(6.0 / kDay)));
    data.x.Set(i, 0, static_cast<float>(std::log(final_inc)));
    data.x.Set(i, 1, static_cast<float>(std::log(alpha * kDay)));
    data.finals.push_back(final_inc);
    data.alphas.push_back(alpha);
  }
  return data;
}

gbdt::GbdtParams SmallGbdt() {
  gbdt::GbdtParams params;
  params.num_trees = 60;
  params.tree.max_depth = 5;
  return params;
}

TEST(PointBasedModelsTest, SupportsOnlyTrainedHorizons) {
  const auto data = MakeToyData(500);
  const std::vector<double> horizons = {6 * kHour, 1 * kDay};
  PointBasedModels pb(SmallGbdt());
  pb.Fit(data.x, horizons, data.TargetsFor(horizons));
  EXPECT_TRUE(pb.SupportsHorizon(6 * kHour));
  EXPECT_TRUE(pb.SupportsHorizon(1 * kDay));
  EXPECT_FALSE(pb.SupportsHorizon(2 * kDay));
  EXPECT_EQ(pb.horizons().size(), 2u);
}

TEST(PointBasedModelsTest, AccurateAtTrainedHorizons) {
  const auto data = MakeToyData();
  const std::vector<double> horizons = {6 * kHour, 1 * kDay, 4 * kDay};
  PointBasedModels pb(SmallGbdt());
  pb.Fit(data.x, horizons, data.TargetsFor(horizons));

  for (double h : horizons) {
    double err_sum = 0.0;
    int n = 0;
    for (size_t i = 0; i < 200; ++i) {
      const double truth = data.finals[i] * -std::expm1(-data.alphas[i] * h);
      const double pred = pb.PredictIncrement(data.x.Row(i), h);
      err_sum += std::fabs(pred - truth) / truth;
      ++n;
    }
    EXPECT_LT(err_sum / n, 0.25) << "horizon " << h;
  }
}

TEST(HorizonFeatureModelTest, InterpolatesBetweenTrainingHorizons) {
  const auto data = MakeToyData();
  const std::vector<double> train_horizons = {1 * kHour, 6 * kHour, 1 * kDay, 4 * kDay};
  HorizonFeatureModel hf(SmallGbdt());
  hf.Fit(data.x, train_horizons, data.TargetsFor(train_horizons));

  // Query at 12h (unseen): must be between the 6h and 1d predictions.
  int ordered = 0, total = 0;
  for (size_t i = 0; i < 100; ++i) {
    const double p6 = hf.PredictIncrement(data.x.Row(i), 6 * kHour);
    const double p12 = hf.PredictIncrement(data.x.Row(i), 12 * kHour);
    const double p24 = hf.PredictIncrement(data.x.Row(i), 1 * kDay);
    if (p6 <= p12 + 1e-9 && p12 <= p24 + 1e-9) ++ordered;
    ++total;
  }
  EXPECT_GT(static_cast<double>(ordered) / total, 0.7);
}

TEST(HorizonFeatureModelTest, ReasonableAccuracyAtTrainedHorizons) {
  const auto data = MakeToyData();
  const std::vector<double> train_horizons = {6 * kHour, 1 * kDay, 4 * kDay};
  HorizonFeatureModel hf(SmallGbdt());
  hf.Fit(data.x, train_horizons, data.TargetsFor(train_horizons));
  double err_sum = 0.0;
  int n = 0;
  for (size_t i = 0; i < 200; ++i) {
    const double truth = data.finals[i] * -std::expm1(-data.alphas[i] * kDay);
    const double pred = hf.PredictIncrement(data.x.Row(i), 1 * kDay);
    err_sum += std::fabs(pred - truth) / truth;
    ++n;
  }
  EXPECT_LT(err_sum / n, 0.35);
}

TEST(HorizonFeatureModelTest, TrainingHorizonsRecorded) {
  const auto data = MakeToyData(300);
  const std::vector<double> train_horizons = {1 * kHour, 1 * kDay};
  HorizonFeatureModel hf(SmallGbdt());
  hf.Fit(data.x, train_horizons, data.TargetsFor(train_horizons));
  EXPECT_EQ(hf.training_horizons(), train_horizons);
}

TEST(PointBasedModelsTest, PredictionsNonNegative) {
  const auto data = MakeToyData(400);
  const std::vector<double> horizons = {1 * kHour};
  PointBasedModels pb(SmallGbdt());
  pb.Fit(data.x, horizons, data.TargetsFor(horizons));
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_GE(pb.PredictIncrement(data.x.Row(i), 1 * kHour), 0.0);
  }
}

}  // namespace
}  // namespace horizon::baselines
