#include "common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "env_guard.h"

namespace horizon {
namespace {

// The global pool reads HORIZON_THREADS once at construction; unset it so
// a value from the invoking shell cannot change what these tests exercise
// (the checkpoint_test_threadsN ctest variants set it deliberately -- for
// their own process, not this one).
const ::testing::Environment* const kThreadsEnvGuard =
    ::testing::AddGlobalTestEnvironment(
        new horizon::test::EnvVarGuard("HORIZON_THREADS"));

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Run([&count] { count.fetch_add(1); });
  }
  // Destruction drains the queue; joining here proves no task is lost.
  while (count.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const size_t n = 10007;  // prime: exercises a ragged final chunk
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, MatchesSerialSum) {
  const size_t n = 5000;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = static_cast<double>(i) * 0.5;
  std::vector<double> out(n);
  ParallelFor(n, 17, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out[i] = values[i] * 2.0;
  });
  double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(n) * (n - 1) / 2.0 * 0.5 * 2.0 / 1.0);
}

TEST(ParallelForTest, ZeroIterationsNeverInvokes) {
  bool called = false;
  ParallelFor(0, 16, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsInline) {
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  ParallelFor(10, 100, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ParallelForTest, ZeroGrainIsTreatedAsOne) {
  std::atomic<size_t> sum{0};
  ParallelFor(100, 0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ParallelForTest, PropagatesFirstException) {
  EXPECT_THROW(
      ParallelFor(1000, 10,
                  [](size_t begin, size_t) {
                    if (begin >= 500) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, PoolSurvivesException) {
  ThreadPool pool(2);
  EXPECT_THROW(ParallelFor(pool, 100, 1,
                           [](size_t, size_t) { throw std::logic_error("x"); }),
               std::logic_error);
  // The pool must still execute follow-up work correctly.
  std::atomic<int> count{0};
  ParallelFor(pool, 100, 1, [&](size_t begin, size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelForTest, NestedInvocationCompletes) {
  // An inner ParallelFor issued from worker context must not deadlock even
  // when every pool thread is busy with the outer loop.
  ThreadPool pool(2);
  std::atomic<uint64_t> total{0};
  ParallelFor(pool, 8, 1, [&](size_t obegin, size_t oend) {
    for (size_t o = obegin; o < oend; ++o) {
      ParallelFor(pool, 1000, 50, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) total.fetch_add(i);
      });
    }
  });
  EXPECT_EQ(total.load(), 8u * (999u * 1000u / 2));
}

TEST(ParallelForTest, ExceptionInsideNestedLoopPropagatesToOuterCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(ParallelFor(pool, 4, 1,
                           [&](size_t, size_t) {
                             ParallelFor(pool, 100, 10, [](size_t begin, size_t) {
                               if (begin == 50) throw std::runtime_error("inner");
                             });
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, ManyConcurrentLoopsFromManyThreads) {
  // Hammer the global pool from several independent caller threads.
  std::vector<std::thread> callers;
  std::atomic<uint64_t> total{0};
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&total] {
      for (int rep = 0; rep < 20; ++rep) {
        ParallelFor(500, 13, [&](size_t begin, size_t end) {
          total.fetch_add(static_cast<uint64_t>(end - begin));
        });
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(total.load(), 4u * 20u * 500u);
}

}  // namespace
}  // namespace horizon
