#include "pointprocess/exp_hawkes.h"

#include <cmath>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"

namespace horizon::pp {
namespace {

ExpHawkesParams MakeParams(double lambda0, double beta, double rho1,
                           double sigma_log = 0.8) {
  ExpHawkesParams params;
  params.lambda0 = lambda0;
  params.beta = beta;
  params.marks = std::make_shared<LogNormalMark>(rho1, sigma_log);
  return params;
}

TEST(CountBeforeTest, Basic) {
  Realization events;
  for (double t : {1.0, 2.0, 3.0, 5.0}) {
    Event e;
    e.time = t;
    events.push_back(e);
  }
  EXPECT_EQ(CountBefore(events, 0.5), 0u);
  EXPECT_EQ(CountBefore(events, 3.0), 2u);  // strictly less than
  EXPECT_EQ(CountBefore(events, 3.1), 3u);
  EXPECT_EQ(CountBefore(events, 100.0), 4u);
}

TEST(ExpHawkesParamsTest, DerivedQuantities) {
  const auto params = MakeParams(10.0, 2.0, 0.5);
  EXPECT_NEAR(params.rho1(), 0.5, 1e-12);
  EXPECT_NEAR(params.alpha(), 1.0, 1e-12);
  EXPECT_NEAR(params.ExpectedFinalSize(), 10.0, 1e-12);
}

TEST(SimulateExpHawkesTest, EventsSortedWithValidGenealogy) {
  Rng rng(7);
  const auto params = MakeParams(20.0, 1.0, 0.6);
  SimulateOptions options;
  options.horizon = 50.0;
  const Realization events = SimulateExpHawkes(params, options, rng);
  ASSERT_GT(events.size(), 0u);
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(events[i].time, events[i - 1].time);
    }
    EXPECT_LT(events[i].time, options.horizon);
    EXPECT_GT(events[i].mark, 0.0);
    if (events[i].parent >= 0) {
      const auto p = static_cast<size_t>(events[i].parent);
      ASSERT_LT(p, i);  // parents precede children
      EXPECT_LE(events[p].time, events[i].time);
      EXPECT_EQ(events[i].generation, events[p].generation + 1);
    } else {
      EXPECT_EQ(events[i].generation, 0);
    }
  }
}

TEST(SimulateExpHawkesTest, MeanFinalSizeMatchesTheory) {
  // E[N(inf)] = lambda0 / alpha.
  Rng rng(11);
  const auto params = MakeParams(8.0, 2.0, 0.5);  // expected size 8
  SimulateOptions options;
  options.horizon = 60.0;  // >> 1/alpha = 1
  RunningStats sizes;
  for (int rep = 0; rep < 3000; ++rep) {
    sizes.Add(static_cast<double>(SimulateExpHawkes(params, options, rng).size()));
  }
  // Standard error ~ sqrt(var/n); allow 4 sigma.
  const double se = sizes.stddev() / std::sqrt(3000.0);
  EXPECT_NEAR(sizes.mean(), params.ExpectedFinalSize(), 4.0 * se + 0.05);
}

struct MeanCurveCase {
  double beta;
  double rho1;
  double t;
};

class ExpHawkesMeanCurveTest : public ::testing::TestWithParam<MeanCurveCase> {};

TEST_P(ExpHawkesMeanCurveTest, CountAtTimeMatchesProposition32) {
  // With s = 0 and F_0 empty, Prop. 3.2 gives
  // E[N(t)] = lambda(0)/alpha (1 - e^{-alpha t}).
  const MeanCurveCase c = GetParam();
  Rng rng(101 + static_cast<uint64_t>(c.beta * 10 + c.t * 100));
  const auto params = MakeParams(10.0, c.beta, c.rho1);
  SimulateOptions options;
  options.horizon = c.t;
  RunningStats counts;
  const int reps = 2500;
  for (int rep = 0; rep < reps; ++rep) {
    counts.Add(static_cast<double>(SimulateExpHawkes(params, options, rng).size()));
  }
  const double expected =
      ConditionalMeanIncrement(params.lambda0, params.alpha(), c.t);
  const double se = counts.stddev() / std::sqrt(static_cast<double>(reps));
  EXPECT_NEAR(counts.mean(), expected, 4.0 * se + 0.05)
      << "beta=" << c.beta << " rho1=" << c.rho1 << " t=" << c.t;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExpHawkesMeanCurveTest,
    ::testing::Values(MeanCurveCase{1.0, 0.5, 0.5}, MeanCurveCase{1.0, 0.5, 2.0},
                      MeanCurveCase{2.0, 0.3, 1.0}, MeanCurveCase{0.5, 0.8, 4.0},
                      MeanCurveCase{4.0, 0.6, 0.25}));

TEST(SimulateExpHawkesTest, VarianceMatchesPropositionA2) {
  Rng rng(13);
  const double beta = 2.0, rho1 = 0.4, sigma_log = 0.6, t = 1.5;
  const auto params = MakeParams(12.0, beta, rho1, sigma_log);
  SimulateOptions options;
  options.horizon = t;
  RunningStats counts;
  const int reps = 6000;
  for (int rep = 0; rep < reps; ++rep) {
    counts.Add(static_cast<double>(SimulateExpHawkes(params, options, rng).size()));
  }
  const double rho2 = params.rho2();
  const double expected_var =
      ConditionalVarianceIncrement(params.lambda0, beta, rho1, rho2, t);
  // Sample variance of variance estimate: allow 15% relative error.
  EXPECT_NEAR(counts.variance(), expected_var, 0.15 * expected_var);
}

// Property sweep: the corrected conditional-variance formula must match
// Monte-Carlo across mark distributions (the paper's printed Prop. A.2
// fails this suite; see exp_hawkes.h).
struct VarianceCase {
  const char* name;
  std::shared_ptr<const MarkDistribution> marks;
  double beta;
  double t;
};

class VarianceAcrossMarksTest : public ::testing::TestWithParam<VarianceCase> {};

TEST_P(VarianceAcrossMarksTest, MatchesMonteCarlo) {
  const VarianceCase& c = GetParam();
  ExpHawkesParams params;
  params.lambda0 = 10.0;
  params.beta = c.beta;
  params.marks = c.marks;
  SimulateOptions options;
  options.horizon = c.t;
  Rng rng(4242);
  RunningStats counts;
  const int reps = 8000;
  for (int rep = 0; rep < reps; ++rep) {
    counts.Add(static_cast<double>(SimulateExpHawkes(params, options, rng).size()));
  }
  const double expected = ConditionalVarianceIncrement(
      params.lambda0, c.beta, params.rho1(), params.rho2(), c.t);
  EXPECT_NEAR(counts.variance(), expected, 0.12 * expected) << c.name;
  // And the mean stays on Prop. 3.2.
  const double expected_mean =
      ConditionalMeanIncrement(params.lambda0, params.alpha(), c.t);
  EXPECT_NEAR(counts.mean(), expected_mean, 0.05 * expected_mean) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Marks, VarianceAcrossMarksTest,
    ::testing::Values(
        VarianceCase{"constant", std::make_shared<ConstantMark>(0.5), 2.0, 1.5},
        VarianceCase{"exponential", std::make_shared<ExponentialMark>(0.4), 1.0,
                     2.0},
        VarianceCase{"lognormal", std::make_shared<LogNormalMark>(0.5, 1.0), 2.0,
                     1.0},
        VarianceCase{"pareto", std::make_shared<ParetoMark>(0.4, 3.0), 3.0, 0.8},
        VarianceCase{"slow_decay", std::make_shared<ConstantMark>(0.7), 0.5, 4.0}),
    [](const ::testing::TestParamInfo<VarianceCase>& info) {
      return info.param.name;
    });

TEST(SimulateExpHawkesTest, MaxEventsCensorsRealization) {
  Rng rng(17);
  auto params = MakeParams(500.0, 1.0, 0.8);
  SimulateOptions options;
  options.horizon = 100.0;
  options.max_events = 200;
  const Realization events = SimulateExpHawkes(params, options, rng);
  EXPECT_LE(events.size(), 400u);  // cap + at most one batch of children
}

TEST(ExpHawkesIntensityTest, MatchesBruteForce) {
  Rng rng(19);
  const auto params = MakeParams(5.0, 1.5, 0.5);
  SimulateOptions options;
  options.horizon = 10.0;
  const Realization events = SimulateExpHawkes(params, options, rng);
  ASSERT_GT(events.size(), 3u);
  const double t_end = 8.0;
  double brute = params.lambda0 * std::exp(-params.beta * t_end);
  for (const Event& e : events) {
    if (e.time < t_end) {
      brute += params.beta * e.mark * std::exp(-params.beta * (t_end - e.time));
    }
  }
  EXPECT_NEAR(ExpHawkesIntensity(events, params, t_end), brute,
              1e-9 * (1.0 + brute));
}

TEST(ConditionalMeanIncrementTest, LimitsAndMonotonicity) {
  const double lambda_s = 6.0, alpha = 2.0;
  EXPECT_DOUBLE_EQ(ConditionalMeanIncrement(lambda_s, alpha, 0.0), 0.0);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(ConditionalMeanIncrement(lambda_s, alpha, inf), 3.0);
  double prev = 0.0;
  for (double dt = 0.1; dt < 10.0; dt *= 2.0) {
    const double v = ConditionalMeanIncrement(lambda_s, alpha, dt);
    EXPECT_GT(v, prev);
    EXPECT_LE(v, 3.0 + 1e-12);
    prev = v;
  }
}

TEST(ConditionalVarianceIncrementTest, LimitMatchesSigmaSquared) {
  const double lambda_s = 4.0, beta = 2.0, rho1 = 0.4, rho2 = 0.5;
  const double alpha = beta * (1.0 - rho1);
  const double inf = std::numeric_limits<double>::infinity();
  const double limit = ConditionalVarianceIncrement(lambda_s, beta, rho1, rho2, inf);
  // Eq. (20): limit variance = Sigma^2 lambda(s) / alpha.
  EXPECT_NEAR(limit, SigmaSquared(beta, rho1, rho2) * lambda_s / alpha, 1e-9);
  // Large dt approaches the limit.
  EXPECT_NEAR(ConditionalVarianceIncrement(lambda_s, beta, rho1, rho2, 100.0), limit,
              1e-6);
}

TEST(SigmaSquaredTest, MatchesGaltonWatsonForConstantMarks) {
  // For constant marks Z = rho1, the infinite-horizon variance of N from a
  // fresh start with E[N(inf)] = lambda0/alpha immigrant mass must equal
  // the branching (Galton-Watson) value:
  //   Var[N(inf)] = (lambda0/beta) (rho1 + Var_off) / (1-rho1)^3 ...
  // which reduces to Sigma^2 = (1 + rho2 - rho1^2) / (1 - rho1)^2 in units
  // of lambda0/alpha.  (The paper's printed Eq. 21 is dimensionally
  // inconsistent; see exp_hawkes.h.)
  const double beta = 3.0, rho1 = 0.4, rho2 = rho1 * rho1;  // constant marks
  const double expected = (1.0 + rho2 - rho1 * rho1) / ((1.0 - rho1) * (1.0 - rho1));
  EXPECT_NEAR(SigmaSquared(beta, rho1, rho2), expected, 1e-12);
}

TEST(SigmaSquaredTest, GeneralMarksMatchBranchingFormula) {
  // General marks: Sigma^2 = (1 + rho2 - rho1^2) / (1 - rho1)^2 (beta
  // cancels -- the total count distribution is time-scale invariant).
  const double rho1 = 0.3, rho2 = 0.5;
  for (double beta : {0.5, 1.0, 4.0}) {
    EXPECT_NEAR(SigmaSquared(beta, rho1, rho2),
                (1.0 + rho2 - rho1 * rho1) / ((1.0 - rho1) * (1.0 - rho1)), 1e-12)
        << "beta=" << beta;
  }
}

TEST(ConditionalVarianceIncrementTest, ZeroHorizonIsZero) {
  EXPECT_DOUBLE_EQ(ConditionalVarianceIncrement(5.0, 2.0, 0.3, 0.2, 0.0), 0.0);
}

}  // namespace
}  // namespace horizon::pp
