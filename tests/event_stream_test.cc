#include "datagen/event_stream.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace horizon::datagen {
namespace {

SyntheticDataset SmallDataset() {
  GeneratorConfig config;
  config.num_pages = 10;
  config.num_posts = 40;
  config.base_mean_size = 60.0;
  config.seed = 13;
  return Generator(config).Generate();
}

TEST(EventStreamTest, SortedByAbsoluteTime) {
  const auto data = SmallDataset();
  const auto events = BuildEventStream(data);
  ASSERT_GT(events.size(), 0u);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, events[i - 1].time);
  }
}

TEST(EventStreamTest, CountsMatchDataset) {
  const auto data = SmallDataset();
  const auto events = BuildEventStream(data);
  size_t views = 0, shares = 0, comments = 0, reactions = 0;
  for (const auto& e : events) {
    switch (e.type) {
      case stream::EngagementType::kView: ++views; break;
      case stream::EngagementType::kShare: ++shares; break;
      case stream::EngagementType::kComment: ++comments; break;
      case stream::EngagementType::kReaction: ++reactions; break;
    }
  }
  size_t expected_views = 0, expected_shares = 0, expected_comments = 0,
         expected_reactions = 0;
  for (const auto& c : data.cascades) {
    expected_views += c.views.size();
    expected_shares += c.share_times.size();
    expected_comments += c.comment_times.size();
    expected_reactions += c.reaction_times.size();
  }
  EXPECT_EQ(views, expected_views);
  EXPECT_EQ(shares, expected_shares);
  EXPECT_EQ(comments, expected_comments);
  EXPECT_EQ(reactions, expected_reactions);
}

TEST(EventStreamTest, MaxAgeFilters) {
  const auto data = SmallDataset();
  EventStreamOptions options;
  options.max_age = 6 * kHour;
  const auto events = BuildEventStream(data, options);
  size_t views = 0;
  for (const auto& e : events) {
    if (e.type == stream::EngagementType::kView) ++views;
  }
  size_t expected = 0;
  for (const auto& c : data.cascades) expected += c.ViewsBefore(6 * kHour);
  EXPECT_EQ(views, expected);
}

TEST(EventStreamTest, TypeFiltersWork) {
  const auto data = SmallDataset();
  EventStreamOptions options;
  options.include_shares = false;
  options.include_comments = false;
  options.include_reactions = false;
  const auto events = BuildEventStream(data, options);
  for (const auto& e : events) {
    EXPECT_EQ(e.type, stream::EngagementType::kView);
  }
}

TEST(EventStreamTest, EventTimesAreCreationPlusAge) {
  const auto data = SmallDataset();
  EventStreamOptions options;
  options.include_shares = false;
  options.include_comments = false;
  options.include_reactions = false;
  const auto events = BuildEventStream(data, options);
  // The earliest event of each post must not precede its creation time.
  for (const auto& e : events) {
    const auto& cascade = data.cascades[static_cast<size_t>(e.post_id)];
    EXPECT_GE(e.time, cascade.post.creation_time);
  }
}

}  // namespace
}  // namespace horizon::datagen
