#include "datagen/generator.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace horizon::datagen {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.num_pages = 40;
  config.num_posts = 150;
  config.base_mean_size = 80.0;
  config.max_views_per_cascade = 30000;
  config.seed = 5;
  return config;
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  Generator gen(SmallConfig());
  const SyntheticDataset a = gen.Generate();
  const SyntheticDataset b = Generator(SmallConfig()).Generate();
  ASSERT_EQ(a.cascades.size(), b.cascades.size());
  for (size_t i = 0; i < a.cascades.size(); ++i) {
    ASSERT_EQ(a.cascades[i].views.size(), b.cascades[i].views.size());
    if (!a.cascades[i].views.empty()) {
      EXPECT_DOUBLE_EQ(a.cascades[i].views[0].time, b.cascades[i].views[0].time);
    }
  }
  EXPECT_DOUBLE_EQ(a.pages[0].followers, b.pages[0].followers);
}

TEST(GeneratorTest, PageProfilesAreValid) {
  const SyntheticDataset data = Generator(SmallConfig()).Generate();
  ASSERT_EQ(data.pages.size(), 40u);
  for (const auto& page : data.pages) {
    EXPECT_GT(page.followers, 0.0);
    EXPECT_GT(page.fans, 0.0);
    EXPECT_LE(page.fans, page.followers);
    EXPECT_GT(page.quality, 0.0);
    EXPECT_LT(page.quality, 1.0);
    EXPECT_GT(page.alpha_page, 0.0);
    EXPECT_GT(page.hist_mean_views, 0.0);
    EXPECT_GT(page.hist_mean_halflife, 0.0);
  }
}

TEST(GeneratorTest, PostParametersAreStable) {
  const SyntheticDataset data = Generator(SmallConfig()).Generate();
  for (const auto& cascade : data.cascades) {
    const auto& post = cascade.post;
    EXPECT_GT(post.lambda0, 0.0);
    EXPECT_GT(post.beta, 0.0);
    EXPECT_GT(post.rho1, 0.0);
    EXPECT_LT(post.rho1, 1.0);  // stability
    EXPECT_GT(post.TrueAlpha(), 0.0);
    EXPECT_GE(post.creation_tod, 0.0);
    EXPECT_LT(post.creation_tod, 24.0);
    EXPECT_GE(post.day_of_week, 0);
    EXPECT_LT(post.day_of_week, 7);
    EXPECT_GE(static_cast<size_t>(post.page_id), 0u);
    EXPECT_LT(static_cast<size_t>(post.page_id), data.pages.size());
  }
}

TEST(GeneratorTest, CascadesSortedWithValidGenealogy) {
  const SyntheticDataset data = Generator(SmallConfig()).Generate();
  for (const auto& cascade : data.cascades) {
    for (size_t i = 0; i < cascade.views.size(); ++i) {
      if (i > 0) {
        EXPECT_GE(cascade.views[i].time, cascade.views[i - 1].time);
      }
      EXPECT_GE(cascade.views[i].time, 0.0);
      EXPECT_LT(cascade.views[i].time, data.config.tracking_window);
      const auto parent = cascade.views[i].parent;
      if (parent >= 0) {
        EXPECT_LT(static_cast<size_t>(parent), i);
      }
    }
  }
}

TEST(GeneratorTest, ReshareDepthsConsistent) {
  const SyntheticDataset data = Generator(SmallConfig()).Generate();
  for (const auto& cascade : data.cascades) {
    ASSERT_EQ(cascade.reshare_depth.size(), cascade.views.size());
    ASSERT_EQ(cascade.is_share.size(), cascade.views.size());
    for (size_t i = 0; i < cascade.views.size(); ++i) {
      EXPECT_GE(cascade.reshare_depth[i], 0);
      const auto parent = cascade.views[i].parent;
      if (parent < 0) {
        EXPECT_EQ(cascade.reshare_depth[i], 0);
      } else {
        const int expected =
            cascade.reshare_depth[static_cast<size_t>(parent)] +
            (cascade.is_share[static_cast<size_t>(parent)] ? 1 : 0);
        EXPECT_EQ(cascade.reshare_depth[i], expected);
      }
    }
  }
}

TEST(GeneratorTest, DerivedStreamsSortedAndBounded) {
  const SyntheticDataset data = Generator(SmallConfig()).Generate();
  size_t total_shares = 0;
  for (const auto& cascade : data.cascades) {
    EXPECT_TRUE(std::is_sorted(cascade.share_times.begin(), cascade.share_times.end()));
    EXPECT_TRUE(
        std::is_sorted(cascade.comment_times.begin(), cascade.comment_times.end()));
    EXPECT_TRUE(
        std::is_sorted(cascade.reaction_times.begin(), cascade.reaction_times.end()));
    EXPECT_LE(cascade.share_times.size(), cascade.views.size());
    total_shares += cascade.share_times.size();
  }
  EXPECT_GT(total_shares, 0u);
}

TEST(GeneratorTest, SizesAreLongTailed) {
  GeneratorConfig config = SmallConfig();
  config.num_posts = 400;
  const SyntheticDataset data = Generator(config).Generate();
  std::vector<double> sizes;
  for (const auto& cascade : data.cascades) {
    sizes.push_back(static_cast<double>(cascade.TotalViews()));
  }
  const double median = Median(sizes);
  const double max = *std::max_element(sizes.begin(), sizes.end());
  EXPECT_GT(max, 20.0 * std::max(median, 1.0));
}

TEST(CascadeTest, DurationAtFraction) {
  Cascade cascade;
  for (double t : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0}) {
    pp::Event e;
    e.time = t;
    cascade.views.push_back(e);
  }
  EXPECT_DOUBLE_EQ(cascade.DurationAtFraction(0.5), 5.0);
  EXPECT_DOUBLE_EQ(cascade.DurationAtFraction(0.95), 10.0);
  EXPECT_DOUBLE_EQ(cascade.DurationAtFraction(1.0), 10.0);
  Cascade empty;
  EXPECT_DOUBLE_EQ(empty.DurationAtFraction(0.95), 0.0);
}

TEST(CascadeTest, ViewsBefore) {
  Cascade cascade;
  for (double t : {1.0, 5.0, 9.0}) {
    pp::Event e;
    e.time = t;
    cascade.views.push_back(e);
  }
  EXPECT_EQ(cascade.ViewsBefore(0.5), 0u);
  EXPECT_EQ(cascade.ViewsBefore(5.0), 1u);
  EXPECT_EQ(cascade.ViewsBefore(100.0), 3u);
}

TEST(GeneratorTest, SeasonalityThinsAndKeepsValidity) {
  GeneratorConfig config = SmallConfig();
  config.num_posts = 60;
  const SyntheticDataset plain = Generator(config).Generate();
  config.seasonality_amplitude = 0.8;
  const SyntheticDataset seasonal = Generator(config).Generate();
  size_t plain_total = 0, seasonal_total = 0;
  for (const auto& c : plain.cascades) plain_total += c.TotalViews();
  for (const auto& c : seasonal.cascades) seasonal_total += c.TotalViews();
  EXPECT_LT(seasonal_total, plain_total);
  for (const auto& cascade : seasonal.cascades) {
    for (size_t i = 1; i < cascade.views.size(); ++i) {
      EXPECT_GE(cascade.views[i].time, cascade.views[i - 1].time);
      const auto parent = cascade.views[i].parent;
      if (parent >= 0) {
        EXPECT_LT(static_cast<size_t>(parent), i);
      }
    }
  }
}

TEST(GeneratorTest, StaticFeaturesCarrySignalAboutSize) {
  // Follower count must correlate positively with realized cascade size
  // (this is what gives the GBDT static-feature signal).
  GeneratorConfig config = SmallConfig();
  config.num_posts = 400;
  const SyntheticDataset data = Generator(config).Generate();
  std::vector<double> log_followers, log_sizes;
  for (const auto& cascade : data.cascades) {
    log_followers.push_back(std::log(data.PageOf(cascade.post).followers));
    log_sizes.push_back(std::log1p(static_cast<double>(cascade.TotalViews())));
  }
  EXPECT_GT(PearsonCorrelation(log_followers, log_sizes), 0.3);
}

TEST(MediaTypeTest, Names) {
  EXPECT_STREQ(MediaTypeName(MediaType::kVideo), "video");
  EXPECT_STREQ(PageCategoryName(PageCategory::kNews), "news");
}

}  // namespace
}  // namespace horizon::datagen
