#include "gbdt/simd_dispatch.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "env_guard.h"
#include "gbdt/gbdt.h"

namespace horizon::gbdt {
namespace {

using horizon::test::ScopedEnvVar;

/// Restores the auto-detected kernel after each test: the dispatch cache
/// is process-global, so a forced choice must not leak into other tests.
class SimdDispatchTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ScopedEnvVar cleared("HORIZON_SIMD");
    RefreshKernelFromEnv();
  }
};

DataMatrix RandomMatrix(size_t rows, size_t features, uint64_t seed) {
  Rng rng(seed);
  DataMatrix x(rows, features);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t f = 0; f < features; ++f) {
      x.Set(i, f, static_cast<float>(rng.Uniform(-2.0, 2.0)));
    }
  }
  return x;
}

GbdtRegressor TrainSmallModel(uint64_t seed) {
  const size_t rows = 1500, features = 12;
  Rng rng(seed);
  DataMatrix x(rows, features);
  std::vector<double> y(rows);
  for (size_t i = 0; i < rows; ++i) {
    double target = 0.0;
    for (size_t f = 0; f < features; ++f) {
      const double v = rng.Uniform(-1.0, 1.0);
      x.Set(i, f, static_cast<float>(v));
      if (f < 4) target += (f % 2 == 0 ? v : v * v);
    }
    y[i] = target + rng.Normal(0.0, 0.05);
  }
  GbdtParams params;
  params.num_trees = 40;
  params.seed = seed;
  GbdtRegressor model(params);
  model.Fit(x, y);
  return model;
}

TEST_F(SimdDispatchTest, NamesRoundTrip) {
  EXPECT_STREQ(SimdKernelName(SimdKernel::kScalar), "scalar");
  EXPECT_STREQ(SimdKernelName(SimdKernel::kSse), "sse");
  EXPECT_STREQ(SimdKernelName(SimdKernel::kAvx2), "avx2");
}

TEST_F(SimdDispatchTest, SupportedKernelsStartAtScalar) {
  const std::vector<SimdKernel> kernels = SupportedKernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front(), SimdKernel::kScalar);
  // Narrowest-first, contiguous up to the best.
  for (size_t i = 0; i < kernels.size(); ++i) {
    EXPECT_EQ(static_cast<int>(kernels[i]), static_cast<int>(i));
  }
  EXPECT_EQ(kernels.back(), DetectBestKernel());
}

TEST_F(SimdDispatchTest, EnvOverrideForcesEachSupportedKernel) {
  for (const SimdKernel k : SupportedKernels()) {
    ScopedEnvVar forced("HORIZON_SIMD", SimdKernelName(k));
    EXPECT_EQ(RefreshKernelFromEnv(), k) << SimdKernelName(k);
    EXPECT_EQ(ActiveKernel(), k) << SimdKernelName(k);
  }
}

TEST_F(SimdDispatchTest, UnknownValueFallsBackToAutoDetection) {
  ScopedEnvVar forced("HORIZON_SIMD", "avx512-ultra");
  EXPECT_EQ(RefreshKernelFromEnv(), DetectBestKernel());
}

TEST_F(SimdDispatchTest, UnsetFallsBackToAutoDetection) {
  ScopedEnvVar cleared("HORIZON_SIMD");
  EXPECT_EQ(RefreshKernelFromEnv(), DetectBestKernel());
}

TEST_F(SimdDispatchTest, RequestsAboveBestClampDown) {
  // Requesting the widest flavor never yields something the CPU can't
  // run; on an AVX2 machine this degenerates to "avx2 selects avx2".
  ScopedEnvVar forced("HORIZON_SIMD", "avx2");
  EXPECT_LE(static_cast<int>(RefreshKernelFromEnv()),
            static_cast<int>(DetectBestKernel()));
}

// The dispatch shim's core guarantee: every selectable kernel produces
// IDENTICAL float-path outputs.  Forces each flavor in turn via the env
// override and compares bitwise against the scalar baseline.
TEST_F(SimdDispatchTest, AllKernelFlavorsProduceIdenticalFloatOutputs) {
  const GbdtRegressor model = TrainSmallModel(23);
  // 2001 rows: exercises the 16/8/4-row SIMD bodies and scalar tails.
  const DataMatrix x = RandomMatrix(2001, model.num_features(), 77);
  ExampleBatch soa(x.num_rows(), x.num_features());
  for (size_t r = 0; r < x.num_rows(); ++r) {
    for (size_t f = 0; f < x.num_features(); ++f) soa.Set(r, f, x.Get(r, f));
  }

  std::vector<double> baseline_rows, baseline_soa, baseline_quant;
  {
    ScopedEnvVar forced("HORIZON_SIMD", "scalar");
    RefreshKernelFromEnv();
    baseline_rows = model.PredictBatch(x);
    baseline_soa = model.PredictBatch(soa);
    baseline_quant = model.PredictBatchQuantized(soa);
  }
  for (const SimdKernel k : SupportedKernels()) {
    ScopedEnvVar forced("HORIZON_SIMD", SimdKernelName(k));
    ASSERT_EQ(RefreshKernelFromEnv(), k);
    const std::vector<double> rows = model.PredictBatch(x);
    const std::vector<double> cols = model.PredictBatch(soa);
    const std::vector<double> quant = model.PredictBatchQuantized(soa);
    ASSERT_EQ(rows.size(), baseline_rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(rows[i], baseline_rows[i])
          << SimdKernelName(k) << " row-major row " << i;
      ASSERT_EQ(cols[i], baseline_soa[i])
          << SimdKernelName(k) << " col-major row " << i;
      ASSERT_EQ(quant[i], baseline_quant[i])
          << SimdKernelName(k) << " quantized row " << i;
    }
  }
}

}  // namespace
}  // namespace horizon::gbdt
