#include "common/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace horizon {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsProduceDifferentStreams) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 60);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntBoundsAndCoverage) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<size_t>(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, 5000, 400);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalShifted) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(RngTest, LogNormalMean) {
  Rng rng(19);
  // E[exp(N(mu, sigma))] = exp(mu + sigma^2 / 2).
  const double mu = 0.3, sigma = 0.5;
  double sum = 0.0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) sum += rng.LogNormal(mu, sigma);
  EXPECT_NEAR(sum / n, std::exp(mu + 0.5 * sigma * sigma), 0.02);
}

struct PoissonCase {
  double mean;
};

class RngPoissonTest : public ::testing::TestWithParam<PoissonCase> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatch) {
  Rng rng(23);
  const double mean = GetParam().mean;
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.Poisson(mean));
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / n;
  const double var = sum_sq / n - m * m;
  EXPECT_NEAR(m, mean, 0.05 * mean + 0.02);
  EXPECT_NEAR(var, mean, 0.1 * mean + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoissonTest,
                         ::testing::Values(PoissonCase{0.1}, PoissonCase{1.0},
                                           PoissonCase{5.0}, PoissonCase{25.0},
                                           PoissonCase{100.0}, PoissonCase{400.0}));

TEST(RngTest, PoissonZeroMean) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(RngTest, GammaMoments) {
  Rng rng(29);
  const double shape = 3.0, scale = 2.0;
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gamma(shape, scale);
    ASSERT_GT(x, 0.0);
    sum += x;
    sum_sq += x * x;
  }
  const double m = sum / n;
  EXPECT_NEAR(m, shape * scale, 0.05);
  EXPECT_NEAR(sum_sq / n - m * m, shape * scale * scale, 0.3);
}

TEST(RngTest, GammaSmallShape) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Gamma(0.3, 1.0);
  EXPECT_NEAR(sum / n, 0.3, 0.01);
}

TEST(RngTest, BetaMomentsAndRange) {
  Rng rng(31);
  const double a = 2.0, b = 5.0;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Beta(a, b);
    ASSERT_GT(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, a / (a + b), 0.005);
}

TEST(RngTest, ParetoMinimumAndMean) {
  Rng rng(37);
  const double xm = 2.0, alpha = 3.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Pareto(xm, alpha);
    ASSERT_GE(x, xm);
    sum += x;
  }
  EXPECT_NEAR(sum / n, xm * alpha / (alpha - 1.0), 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(41);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalFrequencies) {
  Rng rng(43);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalWithZeroWeights) {
  Rng rng(47);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Categorical(weights), 1u);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(5);
  Rng b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

}  // namespace
}  // namespace horizon
