#!/usr/bin/env python3
"""Byte-for-byte regression tests for tools/analyzer/horizon_analyzer.py.

The self-test (`--self-test`) proves each rule *fires*; this suite pins
the exact findings -- (rule, file, line) and message -- on a composed
known-bad tree, proves the known-good tree is byte-for-byte empty,
checks determinism (two runs produce identical stdout), and round-trips
the lock-order emit/verify pair.  Run via ctest (label `lint`) or
directly: python3 tests/analyzer_test.py
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ANALYZER = os.path.join(REPO, "tools", "analyzer", "horizon_analyzer.py")
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures", "analyzer")

BAD_PLACEMENTS = [
    ("bad_lock_cycle_a.cc", "src/serving/bad_lock_cycle_a.cc"),
    ("bad_lock_cycle_b.cc", "src/serving/bad_lock_cycle_b.cc"),
    ("bad_epoch_escape.cc", "src/serving/bad_epoch_escape.cc"),
    ("bad_atomics.cc", "src/common/bad_atomics.cc"),
    ("bad_atomics_hot.cc", "src/serving/epoch.cc"),
    ("bad_status_switch.cc", "src/obs/bad_status_switch.cc"),
    ("bad_allow.cc", "src/common/bad_allow.cc"),
    ("status_enum.h", "src/common/status.h"),
]

GOOD_PLACEMENTS = [
    ("good_analyzer.cc", "src/serving/good_analyzer.cc"),
    ("good_analyzer.h", "src/serving/good_analyzer.h"),
    ("status_enum.h", "src/common/status.h"),
]

# The full expected finding list for the composed bad tree, sorted the
# way the analyzer sorts (file, line, rule, message).  Any analyzer
# change that moves, adds, or drops a finding must update this table --
# that is the point.
EXPECTED_BAD = [
    ("bad-allow", "src/common/bad_allow.cc", 13),
    ("bad-allow", "src/common/bad_allow.cc", 18),
    ("atomic-order", "src/common/bad_allow.cc", 19),
    ("atomic-order", "src/common/bad_atomics.cc", 13),
    ("atomic-order", "src/common/bad_atomics.cc", 17),
    ("atomic-order", "src/common/bad_atomics.cc", 21),
    ("atomic-order", "src/common/bad_atomics.cc", 24),
    ("status-exhaustive", "src/obs/bad_status_switch.cc", 10),
    ("status-exhaustive", "src/obs/bad_status_switch.cc", 10),
    ("atomic-order", "src/serving/bad_epoch_escape.cc", 24),
    ("epoch-escape", "src/serving/bad_epoch_escape.cc", 25),
    ("epoch-escape", "src/serving/bad_epoch_escape.cc", 26),
    ("epoch-escape", "src/serving/bad_epoch_escape.cc", 27),
    ("lock-order", "src/serving/bad_lock_cycle_a.cc", 19),
    ("lock-order", "src/serving/bad_lock_cycle_a.cc", 19),
    ("lock-order", "src/serving/bad_lock_cycle_b.cc", 20),
    ("lock-order", "src/serving/bad_lock_cycle_b.cc", 20),
    ("atomic-order", "src/serving/epoch.cc", 15),
    ("atomic-order", "src/serving/epoch.cc", 19),
]

EXPECTED_BAD_MESSAGES = {
    ("src/serving/bad_epoch_escape.cc", 25):
        "epoch-guarded snapshot pointer `view` stored to `last_`, which "
        "outlives the guard (field-store); the pointer is invalid once "
        "the EpochGuard exits and the view is retired",
    ("src/serving/bad_epoch_escape.cc", 27):
        "epoch-guarded snapshot pointer `view` returned past the "
        "EpochGuard (return); the pointer is invalid once the EpochGuard "
        "exits and the view is retired",
    ("src/obs/bad_status_switch.cc", 10):
        "switch over StatusCode does not handle: kNotFound, kNotYetLive, "
        "kInvalidArgument, kIoError, kCorruption, kConfigMismatch, "
        "kAlreadyExists, kInternal",
    ("src/serving/epoch.cc", 15):
        "defaulted (seq_cst) atomic `load` on a hot-path file without an "
        "adjacent `// order:` justification; spell the order and name "
        "the pairing site",
}


def make_tree(placements):
    tmp = tempfile.mkdtemp(prefix="horizon_analyzer_test_")
    for fixture, dest in placements:
        dst = os.path.join(tmp, dest)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        shutil.copyfile(os.path.join(FIXTURES, fixture), dst)
    return tmp


def run_analyzer(root, *extra):
    return subprocess.run(
        [sys.executable, ANALYZER, "--root", root, "--backend", "tokenizer",
         *extra],
        capture_output=True, text=True)


class BadTreeTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.tree = make_tree(BAD_PLACEMENTS)
        cls.result = run_analyzer(cls.tree, "--json")
        cls.findings = json.loads(cls.result.stdout)

    @classmethod
    def tearDownClass(cls):
        shutil.rmtree(cls.tree, ignore_errors=True)

    def test_exit_code_signals_findings(self):
        self.assertEqual(self.result.returncode, 1)

    def test_findings_byte_for_byte(self):
        got = [(f["rule"], f["file"], f["line"]) for f in self.findings]
        self.assertEqual(got, EXPECTED_BAD)

    def test_selected_messages_exact(self):
        by_loc = {}
        for f in self.findings:
            by_loc.setdefault((f["file"], f["line"]), []).append(f["message"])
        for loc, expected in EXPECTED_BAD_MESSAGES.items():
            self.assertIn(expected, by_loc.get(loc, []),
                          f"missing expected message at {loc}")

    def test_every_rule_fires(self):
        fired = {f["rule"] for f in self.findings}
        self.assertEqual(fired, {"lock-order", "epoch-escape",
                                 "atomic-order", "status-exhaustive",
                                 "bad-allow"})

    def test_determinism_two_runs_identical(self):
        again = run_analyzer(self.tree, "--json")
        self.assertEqual(self.result.stdout, again.stdout)
        self.assertEqual(self.result.returncode, again.returncode)


class GoodTreeTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.tree = make_tree(GOOD_PLACEMENTS)

    @classmethod
    def tearDownClass(cls):
        shutil.rmtree(cls.tree, ignore_errors=True)

    def test_zero_findings_and_clean_exit(self):
        result = run_analyzer(self.tree, "--json")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertEqual(json.loads(result.stdout), [])

    def test_lock_order_emit_verify_roundtrip(self):
        path = os.path.join(self.tree, "lock_order.txt")
        emit = run_analyzer(self.tree, "--emit-lock-order", path)
        self.assertEqual(emit.returncode, 0, emit.stderr)
        with open(path, "r", encoding="utf-8") as f:
            content = f.read()
        # The good fixture nests GoodJournal::mu_ under service_mu_.
        self.assertIn("GoodService::service_mu_ -> GoodJournal::mu_",
                      content)
        verify = run_analyzer(self.tree, "--verify-lock-order", path)
        self.assertEqual(verify.returncode, 0, verify.stderr)
        # Drift must be detected: perturb the committed file.
        with open(path, "a", encoding="utf-8") as f:
            f.write("Bogus::mu -> Other::mu  # hand-edited\n")
        drifted = run_analyzer(self.tree, "--verify-lock-order", path)
        self.assertEqual(drifted.returncode, 1)
        self.assertIn("drifted", drifted.stderr)


class RepoTreeTest(unittest.TestCase):
    """The real tree must stay clean and its committed lock order fresh."""

    def test_repo_is_clean(self):
        result = run_analyzer(REPO, "--json")
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)
        self.assertEqual(json.loads(result.stdout), [])

    def test_committed_lock_order_is_fresh(self):
        committed = os.path.join(REPO, "ci", "lock_order.txt")
        result = run_analyzer(REPO, "--verify-lock-order", committed)
        self.assertEqual(result.returncode, 0, result.stderr)

    def test_self_test_passes(self):
        result = subprocess.run(
            [sys.executable, ANALYZER, "--self-test"],
            capture_output=True, text=True, cwd=REPO)
        self.assertEqual(result.returncode, 0,
                         result.stdout + result.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
