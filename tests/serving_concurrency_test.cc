// Hammers one PredictionService from many threads and checks the counter
// and retirement invariants.  This binary is also the ThreadSanitizer
// target of the CI concurrency job.
#include "serving/prediction_service.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"

namespace horizon::serving {
namespace {

constexpr int kNumThreads = 8;

// Shared fixture: a small trained model plus its extractor and dataset
// (kept small so the TSan run stays fast).
class ServingConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GeneratorConfig config;
    config.num_pages = 20;
    config.num_posts = 120;
    config.base_mean_size = 60.0;
    config.seed = 77;
    dataset_ = new datagen::SyntheticDataset(datagen::Generator(config).Generate());
    extractor_ = new features::FeatureExtractor(stream::TrackerConfig{});

    std::vector<size_t> indices;
    for (size_t i = 0; i < dataset_->cascades.size(); ++i) indices.push_back(i);
    core::ExampleSetOptions options;
    options.reference_horizons = {1 * kDay};
    const auto examples =
        core::BuildExampleSet(*dataset_, indices, *extractor_, options);

    core::HawkesPredictorParams params;
    params.reference_horizons = options.reference_horizons;
    params.gbdt_count.num_trees = 15;
    params.gbdt_alpha.num_trees = 15;
    model_ = new core::HawkesPredictor(params);
    model_->Fit(examples.x, examples.log1p_increments, examples.alpha_targets);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete extractor_;
    delete dataset_;
  }

  PredictionService MakeService(ServiceConfig config = {}) const {
    return PredictionService(model_, extractor_, config);
  }

  const datagen::Cascade& CascadeFor(int64_t item) const {
    return dataset_->cascades[static_cast<size_t>(item) %
                              dataset_->cascades.size()];
  }

  static datagen::SyntheticDataset* dataset_;
  static features::FeatureExtractor* extractor_;
  static core::HawkesPredictor* model_;
};

datagen::SyntheticDataset* ServingConcurrencyTest::dataset_ = nullptr;
features::FeatureExtractor* ServingConcurrencyTest::extractor_ = nullptr;
core::HawkesPredictor* ServingConcurrencyTest::model_ = nullptr;

TEST_F(ServingConcurrencyTest, EightThreadIngestQueryHammer) {
  PredictionService service = MakeService();
  constexpr int64_t kItems = 160;
  for (int64_t id = 0; id < kItems; ++id) {
    const auto& cascade = CascadeFor(id);
    ASSERT_TRUE(service.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post),
                                     cascade.post));
  }

  // Each item is written by exactly one thread (the tracker requires
  // non-decreasing per-item event times); reads go anywhere.
  std::atomic<uint64_t> ingests{0};
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kNumThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t my_ingests = 0, my_queries = 0;
      for (int64_t id = t; id < kItems; id += kNumThreads) {
        const auto& cascade = CascadeFor(id);
        size_t fed = 0;
        for (const auto& e : cascade.views) {
          if (e.time >= 6 * kHour || fed >= 50) break;
          if (service.Ingest(id, stream::EngagementType::kView, e.time)) {
            ++my_ingests;
          }
          ++fed;
        }
        // Interleave reads on items owned by other threads.
        const int64_t other = (id * 7 + 3) % kItems;
        if (service.Query(other, 6 * kHour, 1 * kDay).has_value()) ++my_queries;
        if (id % 20 == static_cast<int64_t>(t % 20)) {
          const auto top = service.TopK(6 * kHour, 1 * kDay, 5);
          EXPECT_LE(top.size(), 5u);
        }
      }
      ingests.fetch_add(my_ingests);
      queries.fetch_add(my_queries);
    });
  }
  for (auto& th : threads) th.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.items_registered, static_cast<uint64_t>(kItems));
  EXPECT_EQ(stats.events_ingested, ingests.load());
  // TopK answers don't count as queries; every per-item Query that
  // returned a value must have been counted exactly once.
  EXPECT_EQ(stats.queries_answered, queries.load());
  EXPECT_EQ(service.LiveItems(), static_cast<size_t>(kItems));

  // Retirement invariant: far in the future everything is idle-dead.
  const size_t retired = service.RetireDeadItems(1000 * kDay);
  EXPECT_EQ(retired, static_cast<size_t>(kItems));
  EXPECT_EQ(service.LiveItems(), 0u);
  EXPECT_EQ(service.stats().items_retired, static_cast<uint64_t>(kItems));
}

TEST_F(ServingConcurrencyTest, ConcurrentRegisterQueryRetire) {
  ServiceConfig config;
  config.idle_retirement_age = 1 * kDay;
  config.num_shards = 4;
  PredictionService service = MakeService(config);

  std::atomic<uint64_t> registered{0};
  std::atomic<uint64_t> retired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kNumThreads - 1; ++t) {
    threads.emplace_back([&, t] {
      for (int64_t i = 0; i < 40; ++i) {
        const int64_t id = t * 1000 + i;
        const auto& cascade = CascadeFor(id);
        if (service.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post),
                                 cascade.post)) {
          registered.fetch_add(1);
        }
        // Hammer test: outcomes race with other threads on purpose; the
        // counter conservation checks below are the assertions.
        (void)service.Ingest(id, stream::EngagementType::kView, 1.0);
        (void)service.Query(id, 2.0, 1 * kDay);
        service.HasItem(id);
      }
    });
  }
  // One thread retires concurrently (at a time past every event, per the
  // tracker's snapshot contract).  Whether or not the eager death test
  // fires for any item, the counters must stay coherent.
  threads.emplace_back([&] {
    for (int rep = 0; rep < 10; ++rep) {
      retired.fetch_add(service.RetireDeadItems(2.0));
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.items_registered, registered.load());
  EXPECT_EQ(stats.items_retired, retired.load());
  EXPECT_EQ(service.LiveItems(),
            static_cast<size_t>(registered.load() - retired.load()));
}

TEST_F(ServingConcurrencyTest, IngestBatchMatchesSerialIngest) {
  PredictionService serial = MakeService();
  PredictionService batched = MakeService();
  constexpr int64_t kItems = 24;
  std::vector<IngestEvent> events;
  for (int64_t id = 0; id < kItems; ++id) {
    const auto& cascade = CascadeFor(id);
    ASSERT_TRUE(
        serial.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post), cascade.post)
            .ok());
    ASSERT_TRUE(
        batched.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post), cascade.post)
            .ok());
    size_t fed = 0;
    for (const auto& e : cascade.views) {
      if (e.time >= 6 * kHour || fed >= 80) break;
      events.push_back({id, stream::EngagementType::kView, e.time});
      ++fed;
    }
  }
  // Unknown items are dropped, not counted.
  events.push_back({9999, stream::EngagementType::kView, 1.0});

  size_t serial_ok = 0;
  for (const auto& e : events) {
    if (serial.Ingest(e.item_id, e.type, e.time)) ++serial_ok;
  }
  const size_t batch_ok = batched.IngestBatch(events);
  EXPECT_EQ(batch_ok, serial_ok);
  EXPECT_EQ(batched.stats().events_ingested, serial.stats().events_ingested);

  for (int64_t id = 0; id < kItems; ++id) {
    const auto a = serial.Query(id, 6 * kHour, 1 * kDay);
    const auto b = batched.Query(id, 6 * kHour, 1 * kDay);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_DOUBLE_EQ(a->observed_views, b->observed_views);
    EXPECT_DOUBLE_EQ(a->predicted_views, b->predicted_views);
    EXPECT_DOUBLE_EQ(a->alpha, b->alpha);
  }
}

TEST_F(ServingConcurrencyTest, ParallelTopKMatchesSingleShardService) {
  ServiceConfig many;
  many.num_shards = 16;
  ServiceConfig one;
  one.num_shards = 1;
  PredictionService sharded = MakeService(many);
  PredictionService flat = MakeService(one);
  for (int64_t id = 0; id < 40; ++id) {
    const auto& cascade = CascadeFor(id);
    ASSERT_TRUE(
        sharded.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post), cascade.post)
            .ok());
    ASSERT_TRUE(
        flat.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post), cascade.post)
            .ok());
    for (const auto& e : cascade.views) {
      if (e.time >= 3 * kHour) break;
      ASSERT_TRUE(sharded.Ingest(id, stream::EngagementType::kView, e.time).ok());
      ASSERT_TRUE(flat.Ingest(id, stream::EngagementType::kView, e.time).ok());
    }
  }
  const auto a = sharded.TopK(3 * kHour, 1 * kDay, 7);
  const auto b = flat.TopK(3 * kHour, 1 * kDay, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << "rank " << i;
    EXPECT_DOUBLE_EQ(a[i].second, b[i].second) << "rank " << i;
  }
}

}  // namespace
}  // namespace horizon::serving
