// Hammers one PredictionService from many threads and checks the counter
// and retirement invariants.  This binary is also the ThreadSanitizer
// target of the CI concurrency job.
#include "serving/prediction_service.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"

// Wall-clock latency bounds are meaningless under the 10-20x slowdown
// plus scheduler distortion of TSan/ASan; those builds still run the
// functional parts of timing-sensitive tests but skip the bound itself.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define HORIZON_TEST_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define HORIZON_TEST_UNDER_SANITIZER 1
#endif
#endif
#ifndef HORIZON_TEST_UNDER_SANITIZER
#define HORIZON_TEST_UNDER_SANITIZER 0
#endif

namespace horizon::serving {
namespace {

constexpr int kNumThreads = 8;

// Shared fixture: a small trained model plus its extractor and dataset
// (kept small so the TSan run stays fast).
class ServingConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GeneratorConfig config;
    config.num_pages = 20;
    config.num_posts = 120;
    config.base_mean_size = 60.0;
    config.seed = 77;
    dataset_ = new datagen::SyntheticDataset(datagen::Generator(config).Generate());
    extractor_ = new features::FeatureExtractor(stream::TrackerConfig{});

    std::vector<size_t> indices;
    for (size_t i = 0; i < dataset_->cascades.size(); ++i) indices.push_back(i);
    core::ExampleSetOptions options;
    options.reference_horizons = {1 * kDay};
    const auto examples =
        core::BuildExampleSet(*dataset_, indices, *extractor_, options);

    core::HawkesPredictorParams params;
    params.reference_horizons = options.reference_horizons;
    params.gbdt_count.num_trees = 15;
    params.gbdt_alpha.num_trees = 15;
    model_ = new core::HawkesPredictor(params);
    model_->Fit(examples.x, examples.log1p_increments, examples.alpha_targets);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete extractor_;
    delete dataset_;
  }

  PredictionService MakeService(ServiceConfig config = {}) const {
    return PredictionService(model_, extractor_, config);
  }

  const datagen::Cascade& CascadeFor(int64_t item) const {
    return dataset_->cascades[static_cast<size_t>(item) %
                              dataset_->cascades.size()];
  }

  static datagen::SyntheticDataset* dataset_;
  static features::FeatureExtractor* extractor_;
  static core::HawkesPredictor* model_;
};

datagen::SyntheticDataset* ServingConcurrencyTest::dataset_ = nullptr;
features::FeatureExtractor* ServingConcurrencyTest::extractor_ = nullptr;
core::HawkesPredictor* ServingConcurrencyTest::model_ = nullptr;

TEST_F(ServingConcurrencyTest, EightThreadIngestQueryHammer) {
  PredictionService service = MakeService();
  constexpr int64_t kItems = 160;
  for (int64_t id = 0; id < kItems; ++id) {
    const auto& cascade = CascadeFor(id);
    ASSERT_TRUE(service.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post),
                                     cascade.post));
  }

  // Each item is written by exactly one thread (the tracker requires
  // non-decreasing per-item event times); reads go anywhere.
  std::atomic<uint64_t> ingests{0};
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kNumThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t my_ingests = 0, my_queries = 0;
      for (int64_t id = t; id < kItems; id += kNumThreads) {
        const auto& cascade = CascadeFor(id);
        size_t fed = 0;
        for (const auto& e : cascade.views) {
          if (e.time >= 6 * kHour || fed >= 50) break;
          if (service.Ingest(id, stream::EngagementType::kView, e.time)) {
            ++my_ingests;
          }
          ++fed;
        }
        // Interleave reads on items owned by other threads.
        const int64_t other = (id * 7 + 3) % kItems;
        if (service.Query(other, 6 * kHour, 1 * kDay).has_value()) ++my_queries;
        if (id % 20 == static_cast<int64_t>(t % 20)) {
          const auto top = service.TopK(6 * kHour, 1 * kDay, 5);
          EXPECT_LE(top.size(), 5u);
        }
      }
      ingests.fetch_add(my_ingests);
      queries.fetch_add(my_queries);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(service.Flush().ok());  // async drain barrier (no-op in sync)

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.items_registered, static_cast<uint64_t>(kItems));
  EXPECT_EQ(stats.events_ingested, ingests.load());
  // TopK answers don't count as queries; every per-item Query that
  // returned a value must have been counted exactly once.
  EXPECT_EQ(stats.queries_answered, queries.load());
  EXPECT_EQ(service.LiveItems(), static_cast<size_t>(kItems));

  // Retirement invariant: far in the future everything is idle-dead.
  const size_t retired = service.RetireDeadItems(1000 * kDay);
  EXPECT_EQ(retired, static_cast<size_t>(kItems));
  EXPECT_EQ(service.LiveItems(), 0u);
  EXPECT_EQ(service.stats().items_retired, static_cast<uint64_t>(kItems));
}

TEST_F(ServingConcurrencyTest, ConcurrentRegisterQueryRetire) {
  ServiceConfig config;
  config.idle_retirement_age = 1 * kDay;
  config.num_shards = 4;
  PredictionService service = MakeService(config);

  std::atomic<uint64_t> registered{0};
  std::atomic<uint64_t> retired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kNumThreads - 1; ++t) {
    threads.emplace_back([&, t] {
      for (int64_t i = 0; i < 40; ++i) {
        const int64_t id = t * 1000 + i;
        const auto& cascade = CascadeFor(id);
        if (service.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post),
                                 cascade.post)) {
          registered.fetch_add(1);
        }
        // Hammer test: outcomes race with other threads on purpose; the
        // counter conservation checks below are the assertions.
        (void)service.Ingest(id, stream::EngagementType::kView, 1.0);
        (void)service.Query(id, 2.0, 1 * kDay);
        service.HasItem(id);
      }
    });
  }
  // One thread retires concurrently (at a time past every event, per the
  // tracker's snapshot contract).  Whether or not the eager death test
  // fires for any item, the counters must stay coherent.
  threads.emplace_back([&] {
    for (int rep = 0; rep < 10; ++rep) {
      retired.fetch_add(service.RetireDeadItems(2.0));
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.items_registered, registered.load());
  EXPECT_EQ(stats.items_retired, retired.load());
  EXPECT_EQ(service.LiveItems(),
            static_cast<size_t>(registered.load() - retired.load()));
}

TEST_F(ServingConcurrencyTest, IngestBatchMatchesSerialIngest) {
  PredictionService serial = MakeService();
  PredictionService batched = MakeService();
  constexpr int64_t kItems = 24;
  std::vector<IngestEvent> events;
  for (int64_t id = 0; id < kItems; ++id) {
    const auto& cascade = CascadeFor(id);
    ASSERT_TRUE(
        serial.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post), cascade.post)
            .ok());
    ASSERT_TRUE(
        batched.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post), cascade.post)
            .ok());
    size_t fed = 0;
    for (const auto& e : cascade.views) {
      if (e.time >= 6 * kHour || fed >= 80) break;
      events.push_back({id, stream::EngagementType::kView, e.time});
      ++fed;
    }
  }
  // Unknown items are dropped, not counted.
  events.push_back({9999, stream::EngagementType::kView, 1.0});

  size_t serial_ok = 0;
  for (const auto& e : events) {
    if (serial.Ingest(e.item_id, e.type, e.time)) ++serial_ok;
  }
  const size_t batch_ok = batched.IngestBatch(events);
  EXPECT_EQ(batch_ok, serial_ok);
  ASSERT_TRUE(serial.Flush().ok());   // async drain barriers
  ASSERT_TRUE(batched.Flush().ok());  // (no-ops in sync mode)
  EXPECT_EQ(batched.stats().events_ingested, serial.stats().events_ingested);

  for (int64_t id = 0; id < kItems; ++id) {
    const auto a = serial.Query(id, 6 * kHour, 1 * kDay);
    const auto b = batched.Query(id, 6 * kHour, 1 * kDay);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_DOUBLE_EQ(a->observed_views, b->observed_views);
    EXPECT_DOUBLE_EQ(a->predicted_views, b->predicted_views);
    EXPECT_DOUBLE_EQ(a->alpha, b->alpha);
  }
}

TEST_F(ServingConcurrencyTest, ParallelTopKMatchesSingleShardService) {
  ServiceConfig many;
  many.num_shards = 16;
  ServiceConfig one;
  one.num_shards = 1;
  PredictionService sharded = MakeService(many);
  PredictionService flat = MakeService(one);
  for (int64_t id = 0; id < 40; ++id) {
    const auto& cascade = CascadeFor(id);
    ASSERT_TRUE(
        sharded.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post), cascade.post)
            .ok());
    ASSERT_TRUE(
        flat.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post), cascade.post)
            .ok());
    for (const auto& e : cascade.views) {
      if (e.time >= 3 * kHour) break;
      ASSERT_TRUE(sharded.Ingest(id, stream::EngagementType::kView, e.time).ok());
      ASSERT_TRUE(flat.Ingest(id, stream::EngagementType::kView, e.time).ok());
    }
  }
  ASSERT_TRUE(sharded.Flush().ok());  // async drain barriers
  ASSERT_TRUE(flat.Flush().ok());     // (no-ops in sync mode)
  const auto a = sharded.TopK(3 * kHour, 1 * kDay, 7);
  const auto b = flat.TopK(3 * kHour, 1 * kDay, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << "rank " << i;
    EXPECT_DOUBLE_EQ(a[i].second, b[i].second) << "rank " << i;
  }
}

// Satellite of the async-ingest PR: group commit must coalesce a whole
// batch into O(shard groups) lock acquisitions, not one per event.  The
// commits counter increments once per shard-lock acquisition, so with a
// single shard a 300-event batch that costs more than one commit IS the
// old lock-per-group regression.
TEST_F(ServingConcurrencyTest, IngestBatchGroupCommitCoalescesLockAcquisitions) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.num_shards = 1;
  config.ingest_mode = IngestMode::kSync;
  config.metrics = &registry;
  PredictionService service = MakeService(config);

  constexpr int64_t kItems = 12;
  std::vector<IngestEvent> events;
  for (int64_t id = 0; id < kItems; ++id) {
    const auto& cascade = CascadeFor(id);
    ASSERT_TRUE(service.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post),
                                     cascade.post)
                    .ok());
    size_t fed = 0;
    for (const auto& e : cascade.views) {
      if (e.time >= 6 * kHour || fed >= 25) break;
      events.push_back({id, stream::EngagementType::kView, e.time});
      ++fed;
    }
  }
  ASSERT_GE(events.size(), 100u);

  const auto* commits =
      registry.GetCounter("horizon_serving_ingest_commits_total");
  const uint64_t commits_before = commits->Value();
  const size_t ok = service.IngestBatch(events);
  EXPECT_EQ(ok, events.size());
  // One shard, one group, ONE lock acquisition for the whole batch.
  EXPECT_EQ(commits->Value() - commits_before, 1u)
      << "IngestBatch took " << (commits->Value() - commits_before)
      << " commits for " << events.size() << " events on one shard";

  // Across shards the bound is one commit per NON-EMPTY shard group, not
  // per event: a second service with 4 shards may spend at most 4.
  obs::MetricsRegistry sharded_registry;
  ServiceConfig sharded_config;
  sharded_config.num_shards = 4;
  sharded_config.ingest_mode = IngestMode::kSync;
  sharded_config.metrics = &sharded_registry;
  PredictionService sharded = MakeService(sharded_config);
  for (int64_t id = 0; id < kItems; ++id) {
    const auto& cascade = CascadeFor(id);
    ASSERT_TRUE(sharded.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post),
                                     cascade.post)
                    .ok());
  }
  const auto* sharded_commits =
      sharded_registry.GetCounter("horizon_serving_ingest_commits_total");
  EXPECT_EQ(sharded.IngestBatch(events), events.size());
  EXPECT_GE(sharded_commits->Value(), 1u);
  EXPECT_LE(sharded_commits->Value(), 4u)
      << sharded_commits->Value() << " commits for " << events.size()
      << " events over 4 shards";
}

// The async applier's side of the same contract: one wakeup drains many
// events, so wakeups <= commits <= events, with real coalescing (a
// 2000-event burst must not cost anywhere near one commit per event --
// every commit republishes the shard view, which is what makes
// per-event commits the regression this guards against).
TEST_F(ServingConcurrencyTest, AsyncApplierGroupCommitsBatches) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.num_shards = 1;
  config.ingest_mode = IngestMode::kAsync;
  config.ingest_queue_capacity = 1 << 12;
  config.metrics = &registry;
  PredictionService service = MakeService(config);
  ASSERT_TRUE(service.async_ingest());

  constexpr int64_t kItems = 8;
  for (int64_t id = 0; id < kItems; ++id) {
    const auto& cascade = CascadeFor(id);
    ASSERT_TRUE(service.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post),
                                     cascade.post)
                    .ok());
  }
  constexpr size_t kRepeats = 250;  // 8 * 250 = 2000 events
  std::vector<IngestEvent> burst;
  for (size_t rep = 0; rep < kRepeats; ++rep) {
    for (int64_t id = 0; id < kItems; ++id) {
      burst.push_back({id, stream::EngagementType::kView,
                       static_cast<double>(rep) * 0.5});
    }
  }
  const size_t accepted = service.IngestBatch(burst);
  EXPECT_EQ(accepted, burst.size());
  ASSERT_TRUE(service.Flush().ok());

  const uint64_t wakeups =
      registry.GetCounter("horizon_serving_apply_wakeups_total")->Value();
  const uint64_t commits =
      registry.GetCounter("horizon_serving_ingest_commits_total")->Value();
  const obs::Histogram* batches = registry.GetHistogram(
      "horizon_serving_apply_batch_events", obs::CountBuckets());
  EXPECT_GE(wakeups, 1u);
  EXPECT_LE(wakeups, commits);  // a wakeup drains >= 1 commit
  EXPECT_LE(commits, burst.size());
  // Group-commit coalescing: the mean apply batch must be well above one
  // event per lock acquisition.  (Enqueue is orders of magnitude cheaper
  // than a commit's view republish, so the applier always finds a backlog;
  // the bound is loose enough for TSan scheduling.)
  EXPECT_LE(commits, burst.size() / 2)
      << commits << " commits for " << burst.size() << " events";
  EXPECT_EQ(batches->Count(), commits);
  EXPECT_DOUBLE_EQ(batches->Sum(), static_cast<double>(burst.size()));
  EXPECT_EQ(registry.GetCounter("horizon_serving_events_ingested_total")->Value(),
            burst.size());
}

// Satellite of the async-ingest PR: queries never take the ingest lock,
// so saturating every queue to capacity may not wreck query tail
// latency.  p99 is scraped from the obs histogram, exactly like the
// production dashboards would.
TEST_F(ServingConcurrencyTest, QueryP99BoundedUnderIngestSaturation) {
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.ingest_mode = IngestMode::kAsync;
  config.num_shards = 4;
  config.ingest_queue_capacity = 256;  // small: saturates under 7 producers
  config.ingest_backpressure = BackpressurePolicy::kBlock;
  config.metrics = &registry;
  PredictionService service = MakeService(config);

  constexpr int64_t kItems = 64;
  std::vector<int64_t> query_ids;
  for (int64_t id = 0; id < kItems; ++id) {
    const auto& cascade = CascadeFor(id);
    ASSERT_TRUE(service.RegisterItem(id, 0.0, dataset_->PageOf(cascade.post),
                                     cascade.post)
                    .ok());
    if (id % 8 == 0) query_ids.push_back(id);
  }
  ASSERT_TRUE(service.Flush().ok());

  obs::Histogram* latency =
      registry.GetHistogram("horizon_serving_batch_query_latency_seconds");
  const auto run_queries = [&](int n) {
    for (int i = 0; i < n; ++i) {
      QueryRequest request;
      request.ids = query_ids;
      request.s = 6 * kHour;
      request.delta = 1 * kDay;
      const auto response = service.BatchQuery(request);
      ASSERT_TRUE(response.ok());
    }
  };

  // Baseline: idle service.
  constexpr int kQueries = 300;
  latency->Reset();
  run_queries(kQueries);
  const double p99_idle = latency->Quantile(0.99);

  // Saturation: kNumThreads - 1 producers hammer the queues (kBlock --
  // they park on full rings), queries run concurrently.
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int t = 0; t < kNumThreads - 1; ++t) {
    producers.emplace_back([&, t] {
      // Each producer owns items == t mod (threads-1): per-item times
      // stay non-decreasing without cross-thread coordination.
      double now = 12 * kHour;
      while (!stop.load(std::memory_order_relaxed)) {
        for (int64_t id = t; id < kItems; id += kNumThreads - 1) {
          (void)service.Ingest(id, stream::EngagementType::kView, now);
        }
        now += 1.0;
      }
    });
  }
  latency->Reset();
  run_queries(kQueries);
  const double p99_saturated = latency->Quantile(0.99);
  stop.store(true);
  for (auto& t : producers) t.join();
  ASSERT_TRUE(service.Flush().ok());

  // The queues really were saturated: producers stalled on full rings.
  EXPECT_GT(registry.GetCounter("horizon_serving_ingest_backpressure_total")
                ->Value(),
            0u);
  // Lock-free epoch reads: <= 2x p99 regression at queue capacity, plus
  // an absolute slack floor so scheduler noise on tiny baselines (tens
  // of microseconds) cannot flake the bound.  Sanitizer builds still
  // exercised the saturated path above but the wall-clock bound only
  // holds at native speed.
  if (!HORIZON_TEST_UNDER_SANITIZER) {
    EXPECT_LE(p99_saturated, 2.0 * p99_idle + 0.005)
        << "idle p99 " << p99_idle << "s, saturated p99 " << p99_saturated
        << "s";
  }
}

}  // namespace
}  // namespace horizon::serving
