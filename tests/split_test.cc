#include "eval/split.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace horizon::eval {
namespace {

TEST(SplitIndicesTest, PartitionIsCompleteAndDisjoint) {
  const Split split = SplitIndices(100, 0.3, 1);
  EXPECT_EQ(split.test.size(), 30u);
  EXPECT_EQ(split.train.size(), 70u);
  std::set<size_t> all;
  for (size_t i : split.train) all.insert(i);
  for (size_t i : split.test) {
    EXPECT_EQ(all.count(i), 0u);  // disjoint
    all.insert(i);
  }
  EXPECT_EQ(all.size(), 100u);
  EXPECT_EQ(*all.begin(), 0u);
  EXPECT_EQ(*all.rbegin(), 99u);
}

TEST(SplitIndicesTest, DeterministicForSeed) {
  const Split a = SplitIndices(50, 0.2, 7);
  const Split b = SplitIndices(50, 0.2, 7);
  EXPECT_EQ(a.test, b.test);
  EXPECT_EQ(a.train, b.train);
}

TEST(SplitIndicesTest, DifferentSeedsDiffer) {
  const Split a = SplitIndices(200, 0.5, 1);
  const Split b = SplitIndices(200, 0.5, 2);
  EXPECT_NE(a.test, b.test);
}

TEST(SplitIndicesTest, AtLeastOneTestItem) {
  const Split split = SplitIndices(10, 0.01, 3);
  EXPECT_GE(split.test.size(), 1u);
}

TEST(SplitIndicesTest, OutputSorted) {
  const Split split = SplitIndices(64, 0.25, 11);
  EXPECT_TRUE(std::is_sorted(split.test.begin(), split.test.end()));
  EXPECT_TRUE(std::is_sorted(split.train.begin(), split.train.end()));
}

}  // namespace
}  // namespace horizon::eval
