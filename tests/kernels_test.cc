#include "pointprocess/kernels.h"

#include <cmath>

#include <gtest/gtest.h>

namespace horizon::pp {
namespace {

// Numeric integral of a kernel's Value on [0, x] by Simpson's rule.
template <typename Kernel>
double NumericIntegral(const Kernel& kernel, double x, int steps = 20000) {
  double sum = 0.0;
  const double h = x / steps;
  for (int i = 0; i < steps; ++i) {
    const double a = i * h, b = (i + 1) * h;
    sum += (kernel.Value(a) + 4.0 * kernel.Value(0.5 * (a + b)) + kernel.Value(b)) *
           h / 6.0;
  }
  return sum;
}

TEST(ExponentialKernelTest, ValueAndDecay) {
  ExponentialKernel k(2.0);
  EXPECT_DOUBLE_EQ(k.Value(0.0), 1.0);
  EXPECT_NEAR(k.Value(1.0), std::exp(-2.0), 1e-12);
  EXPECT_GT(k.Value(0.5), k.Value(1.0));
}

TEST(ExponentialKernelTest, IntegralMatchesNumeric) {
  ExponentialKernel k(0.7);
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(k.Integral(x), NumericIntegral(k, x), 1e-6) << "x=" << x;
  }
}

TEST(ExponentialKernelTest, TotalMass) {
  ExponentialKernel k(4.0);
  EXPECT_DOUBLE_EQ(k.TotalMass(), 0.25);
  EXPECT_NEAR(k.Integral(100.0), k.TotalMass(), 1e-12);
}

TEST(PowerLawKernelTest, FlatThenPowerLaw) {
  PowerLawKernel k(2.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(k.Value(0.0), 2.0);
  EXPECT_DOUBLE_EQ(k.Value(1.0), 2.0);
  // Continuity at tau.
  EXPECT_NEAR(k.Value(1.0 + 1e-9), 2.0, 1e-6);
  // Power-law tail: value(2 tau) = phi0 (1/2)^{1.5}.
  EXPECT_NEAR(k.Value(2.0), 2.0 * std::pow(0.5, 1.5), 1e-12);
}

TEST(PowerLawKernelTest, IntegralMatchesNumeric) {
  PowerLawKernel k(1.3, 0.5, 0.8);
  for (double x : {0.2, 0.5, 1.0, 4.0, 50.0}) {
    EXPECT_NEAR(k.Integral(x), NumericIntegral(k, x), 1e-4) << "x=" << x;
  }
}

TEST(PowerLawKernelTest, TotalMassFormula) {
  PowerLawKernel k(1.3, 0.5, 0.8);
  // Phi(inf) = phi0 tau (1 + 1/theta).
  EXPECT_DOUBLE_EQ(k.TotalMass(), 1.3 * 0.5 * (1.0 + 1.0 / 0.8));
  // The integral approaches total mass for large x.
  EXPECT_NEAR(k.Integral(1e9), k.TotalMass(), 1e-3);
}

TEST(PowerLawKernelTest, IntegralMonotone) {
  PowerLawKernel k(1.0, 1.0, 0.3);
  double prev = 0.0;
  for (double x = 0.1; x < 100.0; x *= 1.7) {
    const double v = k.Integral(x);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace horizon::pp
