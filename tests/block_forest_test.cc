#include "gbdt/block_forest.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gbdt/gbdt.h"
#include "gbdt/tree.h"

// This suite deliberately does NOT guard HORIZON_SIMD: the ctest variants
// (block_forest_test_simd_*) pin it per process to sweep every kernel
// flavor, and every flavor is bit-exact, so the assertions below hold no
// matter which one is active.

namespace horizon::gbdt {
namespace {

DataMatrix RandomMatrix(size_t rows, size_t features, uint64_t seed,
                        double lo = -2.0, double hi = 2.0) {
  Rng rng(seed);
  DataMatrix x(rows, features);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t f = 0; f < features; ++f) {
      x.Set(i, f, static_cast<float>(rng.Uniform(lo, hi)));
    }
  }
  return x;
}

GbdtRegressor TrainRandomModel(uint64_t seed, int num_trees = 60,
                               int depth = 6) {
  const size_t rows = 3000, features = 25;
  Rng rng(seed);
  DataMatrix x(rows, features);
  std::vector<double> y(rows);
  for (size_t i = 0; i < rows; ++i) {
    double target = 0.0;
    for (size_t f = 0; f < features; ++f) {
      const double v = rng.Uniform(-1.0, 1.0);
      x.Set(i, f, static_cast<float>(v));
      if (f < 6) target += (f % 2 == 0 ? v : v * v);
    }
    y[i] = target + rng.Normal(0.0, 0.05);
  }
  GbdtParams params;
  params.num_trees = num_trees;
  params.tree.max_depth = depth;
  params.seed = seed;
  GbdtRegressor model(params);
  model.Fit(x, y);
  return model;
}

TEST(BlockForestTest, CompilesTrainedModel) {
  const GbdtRegressor model = TrainRandomModel(3);
  const BlockForest& blocked = model.block_forest();
  ASSERT_TRUE(blocked.compiled());
  EXPECT_EQ(blocked.num_trees(), model.trees().size());
  EXPECT_GT(blocked.depth(), 0);
  EXPECT_LE(blocked.depth(), BlockForest::kMaxBlockedDepth);
  EXPECT_EQ(blocked.base_score(), model.base_score());
  EXPECT_EQ(blocked.nodes_per_tree() + 1, blocked.leaves_per_tree());
}

TEST(BlockForestTest, BitExactVsFlatForestOn10kRandomRows) {
  const GbdtRegressor model = TrainRandomModel(7);
  const DataMatrix x = RandomMatrix(10000, model.num_features(), 99);
  const std::vector<double> reference = model.flat_forest().PredictBatch(x);
  const std::vector<double> blocked = model.block_forest().PredictBatch(x);
  ASSERT_EQ(blocked.size(), reference.size());
  for (size_t i = 0; i < blocked.size(); ++i) {
    // Bit-exact: same predicate, same accumulation order, no tolerance.
    ASSERT_EQ(blocked[i], reference[i]) << "row " << i;
  }
}

TEST(BlockForestTest, ColumnMajorBatchMatchesRowMajorBitExact) {
  const GbdtRegressor model = TrainRandomModel(11);
  const DataMatrix x = RandomMatrix(4097, model.num_features(), 5);
  ExampleBatch soa(x.num_rows(), x.num_features());
  for (size_t r = 0; r < x.num_rows(); ++r) {
    for (size_t f = 0; f < x.num_features(); ++f) soa.Set(r, f, x.Get(r, f));
  }
  const std::vector<double> row_major = model.block_forest().PredictBatch(x);
  const std::vector<double> col_major = model.block_forest().PredictBatch(soa);
  ASSERT_EQ(col_major.size(), row_major.size());
  for (size_t i = 0; i < col_major.size(); ++i) {
    ASSERT_EQ(col_major[i], row_major[i]) << "row " << i;
  }
}

TEST(BlockForestTest, RegressorBatchPathsAreBitExactVsPerRowPredict) {
  const GbdtRegressor model = TrainRandomModel(13);
  const DataMatrix x = RandomMatrix(777, model.num_features(), 21);
  ExampleBatch soa(x.num_rows(), x.num_features());
  for (size_t r = 0; r < x.num_rows(); ++r) {
    for (size_t f = 0; f < x.num_features(); ++f) soa.Set(r, f, x.Get(r, f));
  }
  const std::vector<double> via_matrix = model.PredictBatch(x);
  const std::vector<double> via_batch = model.PredictBatch(soa);
  for (size_t r = 0; r < x.num_rows(); ++r) {
    const double expected = model.Predict(x.Row(r));
    ASSERT_EQ(via_matrix[r], expected) << "row " << r;
    ASSERT_EQ(via_batch[r], expected) << "row " << r;
  }
}

TEST(BlockForestTest, OddSizesCoverSimdTails) {
  const GbdtRegressor model = TrainRandomModel(17, /*num_trees=*/20);
  // 1..35 spans every remainder mod 16/8/4 plus the empty batch.
  for (size_t n : {0u, 1u, 2u, 3u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 35u}) {
    const DataMatrix x = RandomMatrix(n, model.num_features(), 1000 + n);
    const std::vector<double> got = model.block_forest().PredictBatch(x);
    ASSERT_EQ(got.size(), n);
    for (size_t r = 0; r < n; ++r) {
      ASSERT_EQ(got[r], model.Predict(x.Row(r))) << "n=" << n << " row " << r;
    }
  }
}

TEST(BlockForestTest, NonFiniteFeaturesMatchScalarSemantics) {
  const GbdtRegressor model = TrainRandomModel(19, /*num_trees=*/10);
  DataMatrix x = RandomMatrix(64, model.num_features(), 4);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  for (size_t r = 0; r < x.num_rows(); ++r) {
    // Sprinkle NaN/inf over a rotating subset of features: NaN must go
    // right at every real split in every kernel flavor.
    x.Set(r, r % x.num_features(), r % 2 == 0 ? nan : inf);
    x.Set(r, (r + 3) % x.num_features(), -inf);
  }
  const std::vector<double> got = model.block_forest().PredictBatch(x);
  for (size_t r = 0; r < x.num_rows(); ++r) {
    ASSERT_EQ(got[r], model.Predict(x.Row(r))) << "row " << r;
  }
}

/// Builds a degenerate left-spine tree of the given internal depth.
RegressionTree MakeChainTree(int depth) {
  std::vector<TreeNode> nodes;
  const int32_t num_internal = depth;
  for (int32_t i = 0; i < num_internal; ++i) {
    TreeNode n;
    n.feature = 0;
    n.threshold = -static_cast<float>(i);  // descending: left goes deeper
    n.left = (i + 1 < num_internal) ? (i + 1) : num_internal;
    n.right = num_internal + 1 + i;
    nodes.push_back(n);
  }
  // Leaf reached by the full left spine, then one right leaf per level.
  for (int32_t i = 0; i <= num_internal; ++i) {
    TreeNode leaf;
    leaf.feature = -1;
    leaf.left = -1;
    leaf.right = -1;
    leaf.value = static_cast<double>(i);
    nodes.push_back(leaf);
  }
  return RegressionTree(std::move(nodes));
}

TEST(BlockForestTest, OverDeepEnsembleStaysUncompiledAndRegressorFallsBack) {
  std::vector<RegressionTree> trees;
  trees.push_back(MakeChainTree(BlockForest::kMaxBlockedDepth + 1));
  const FlatForest flat = FlatForest::Compile(trees, 0.5, 0.1);
  const BlockForest blocked = BlockForest::Compile(flat);
  EXPECT_FALSE(blocked.compiled());
}

TEST(BlockForestTest, MaxDepthEnsembleCompilesAndMatches) {
  std::vector<RegressionTree> trees;
  trees.push_back(MakeChainTree(BlockForest::kMaxBlockedDepth));
  const FlatForest flat = FlatForest::Compile(trees, 0.5, 0.1);
  const BlockForest blocked = BlockForest::Compile(flat);
  ASSERT_TRUE(blocked.compiled());
  EXPECT_EQ(blocked.depth(), BlockForest::kMaxBlockedDepth);
  DataMatrix x(40, 1);
  Rng rng(77);
  for (size_t r = 0; r < x.num_rows(); ++r) {
    x.Set(r, 0, static_cast<float>(rng.Uniform(-20.0, 5.0)));
  }
  const std::vector<double> got = blocked.PredictBatch(x);
  for (size_t r = 0; r < x.num_rows(); ++r) {
    ASSERT_EQ(got[r], flat.Predict(x.Row(r))) << "row " << r;
  }
}

TEST(BlockForestTest, ConstantModelRootLeafTrees) {
  // A single-node (root leaf) tree exercises depth 0: no internal nodes,
  // one leaf slot per tree.
  std::vector<TreeNode> leaf_only(1);
  leaf_only[0].feature = -1;
  leaf_only[0].left = -1;
  leaf_only[0].right = -1;
  leaf_only[0].value = 2.5;
  std::vector<RegressionTree> trees;
  trees.emplace_back(std::move(leaf_only));
  const FlatForest flat = FlatForest::Compile(trees, 1.0, 0.5);
  const BlockForest blocked = BlockForest::Compile(flat);
  ASSERT_TRUE(blocked.compiled());
  EXPECT_EQ(blocked.depth(), 0);
  const DataMatrix x = RandomMatrix(10, 3, 8);
  const std::vector<double> got = blocked.PredictBatch(x);
  for (const double v : got) ASSERT_EQ(v, 1.0 + 0.5 * 2.5);
}

}  // namespace
}  // namespace horizon::gbdt
