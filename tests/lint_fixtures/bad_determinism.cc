// Known-bad fixture for horizon_lint rule `determinism`: every line
// below must fire when this file is placed under src/sim or src/datagen.
// NOT compiled; consumed by `horizon_lint.py --self-test` only.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int BadSeed() {
  std::random_device rd;  // bad: nondeterministic entropy source
  std::srand(rd());       // bad: srand
  return std::rand();     // bad: rand
}

long BadNow() {
  const long wall = time(nullptr);  // bad: wall clock
  const auto tick = std::chrono::steady_clock::now();  // bad: chrono clock
  (void)tick;
  return wall;
}
