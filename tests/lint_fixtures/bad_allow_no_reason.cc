// Known-bad fixture for horizon_lint rule `bad-allow`: an allow-comment
// with no justification is itself a finding.  NOT compiled; consumed by
// `horizon_lint.py --self-test` only.
struct Thing {
  int x = 0;
};

Thing* Make() {
  // horizon-lint: allow(naked-new)
  return new Thing();  // the allow above lacks a justification
}
