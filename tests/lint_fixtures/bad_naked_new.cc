// Known-bad fixture for horizon_lint rule `naked-new`.  NOT compiled;
// consumed by `horizon_lint.py --self-test` only.
struct Widget {
  int x = 0;
};

Widget* Make() {
  return new Widget();  // bad: naked new
}

void Destroy(Widget* w) {
  delete w;  // bad: naked delete
}

int* MakeArray() {
  int* a = new int[16];  // bad: naked array new
  delete[] a;            // bad: naked array delete
  return nullptr;
}
