// Known-bad fixture for horizon_lint rule `raw-mutex`: raw standard
// primitives bypassing the annotated horizon::Mutex wrapper.  NOT
// compiled; consumed by `horizon_lint.py --self-test` only.
#include <condition_variable>
#include <mutex>

struct Racy {
  std::mutex mu;                // bad: raw std::mutex
  std::condition_variable cv;   // bad: raw condition_variable
  int value = 0;

  void Bump() {
    std::lock_guard<std::mutex> lock(mu);  // bad: raw lock_guard
    ++value;
  }

  void WaitPositive() {
    std::unique_lock<std::mutex> lock(mu);  // bad: raw unique_lock
    cv.wait(lock, [this] { return value > 0; });
  }
};
