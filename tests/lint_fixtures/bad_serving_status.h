// Known-bad fixture for horizon_lint rule `serving-status`: public
// mutating entry points of a serving class that report failure out of
// band (bool / void) instead of returning Status/StatusOr.  NOT
// compiled; consumed by `horizon_lint.py --self-test` only.
#ifndef HORIZON_TESTS_LINT_FIXTURES_BAD_SERVING_STATUS_H_
#define HORIZON_TESTS_LINT_FIXTURES_BAD_SERVING_STATUS_H_

#include <cstdint>

namespace horizon::serving {

class LeakyService {
 public:
  bool RegisterThing(int64_t id);    // bad: fallible, returns bool
  void IngestThing(int64_t id);      // bad: fallible, returns void
  int RemoveThing(int64_t id);       // bad: fallible, returns int

  bool has_thing(int64_t id) const;  // ok: const accessor

 private:
  int64_t count_ = 0;
};

}  // namespace horizon::serving

#endif  // HORIZON_TESTS_LINT_FIXTURES_BAD_SERVING_STATUS_H_
