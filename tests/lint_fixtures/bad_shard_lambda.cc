// Known-bad fixture for the `shard-mutation` escaping-lambda pattern:
// this file is copied to src/serving/shard_apply.cc by the self-test,
// where direct mutation is legal but returning a closure that carries
// the mutation capability out of the file is not.  Not compiled.
#include "serving/shard.h"

namespace horizon::serving {

void ApplyHere(Shard& shard, int64_t id) {
  shard.items.erase(id);  // OK inside shard_apply.cc: the surface itself
}

std::function<void()> DeferredApply(Shard& shard, int64_t id) {
  return [&shard, id] {  // BAD: mutation capability escapes the surface
    shard.items.erase(id);
  };
}

std::function<void()> AllowedDeferredApply(Shard& shard, int64_t id) {
  // horizon-lint: allow(shard-mutation) -- fixture: justified escape
  return [&shard, id] { shard.items.erase(id); };
}

}  // namespace horizon::serving
