// Known-bad fixture for the `shard-mutation` alias pattern: binding a
// mutable reference to the Shard items map and mutating through it,
// which the direct-call patterns cannot see.  Not compiled; consumed by
// horizon_lint --self-test.
#include "serving/shard.h"

namespace horizon::serving {

void AliasViaAuto(Shard& shard, int64_t id) {
  auto& live = shard.items;  // BAD: mutable alias to the items map
  live.erase(id);
}

void AliasViaTypedRef(Shard& shard, int64_t id) {
  ItemMap& m = shard.items;  // BAD: same hole, spelled with the typedef
  m[id] = nullptr;
}

void ReadOnlyAliasIsFine(const Shard& shard, int64_t id, bool* hit) {
  const auto& live = shard.items;  // OK: const view, no mutation
  *hit = live.count(id) > 0;
}

void LookupBindingIsFine(Shard& shard, int64_t id, bool* hit) {
  auto& probe = shard.items.find(id)->second;  // OK: binds an element,
  *hit = probe != nullptr;                     // not the map itself
}

void AllowedAlias(Shard& shard) {
  // horizon-lint: allow(shard-mutation) -- fixture: justified escape
  auto& live = shard.items;
  live.clear();
}

}  // namespace horizon::serving
