// Known-bad fixture for the `shard-mutation` rule: direct writes to
// Shard state outside shard_apply.cc.  Every mutation idiom the rule
// watches appears once.  Not compiled; consumed by horizon_lint
// --self-test, which copies it under src/serving/ and asserts the rule
// fires (and that the same file named shard_apply.cc stays silent).
#include "serving/shard.h"

namespace horizon::serving {

void SneakyInsert(Shard& shard, int64_t id, Item item) {
  shard.items.emplace(id, std::make_shared<Item>(std::move(item)));  // BAD
}

void SneakyAssign(Shard& shard, int64_t id) {
  shard.items[id] = nullptr;  // BAD: operator[] default-inserts
}

void SneakyErase(Shard& shard, int64_t id) {
  shard.items.erase(id);  // BAD
}

void SneakyClear(Shard& shard) {
  shard.items.clear();  // BAD
}

void SneakyObserve(Item& item, double t) {
  item.tracker.Observe(stream::EngagementType::kView, t);  // BAD
}

void AllowedObserve(Item& item, double t) {
  // horizon-lint: allow(shard-mutation) -- fixture: justified escape
  item.tracker.Observe(stream::EngagementType::kView, t);
}

}  // namespace horizon::serving
