// Analyzer self-test fixture (known-bad): TU "A" of a cross-TU
// lock-order cycle.  RegistryA::Update acquires RegistryA::mu_ and,
// while holding it, calls AppendToJournal -- whose definition lives in
// bad_lock_cycle_b.cc and transitively acquires JournalB::mu_.
// Neither TU alone contains a cycle; only the cross-TU may-acquire
// graph does.
#include <cstdint>

namespace horizon {

class JournalB;
void AppendToJournal(JournalB& journal, uint64_t value);

class RegistryA {
 public:
  void Update(JournalB& journal, uint64_t value) {
    MutexLock lock(mu_);
    total_ += value;
    AppendToJournal(journal, value);
  }

 private:
  Mutex mu_;
  uint64_t total_ = 0;
};

void TouchRegistry(RegistryA& registry, JournalB& journal, uint64_t value) {
  registry.Update(journal, value);
}

}  // namespace horizon
