// Analyzer self-test fixture (known-bad): all three epoch-guard escape
// shapes.  A ShardView* loaded under an EpochGuard is only valid until
// the guard exits (the epoch domain may then retire and delete the
// view); storing it to a field, capturing it in an outliving lambda, or
// returning it is a use-after-free waiting for an Advance().
#include <atomic>
#include <cstddef>
#include <functional>

namespace horizon {

struct ShardView {
  std::size_t size = 0;
};

struct Shard {
  std::atomic<const ShardView*> view{nullptr};
};

class SnapshotCache {
 public:
  const ShardView* Snapshot(Shard& shard, EpochDomain& epochs) {
    EpochGuard guard(epochs);
    const ShardView* view = shard.view.load(std::memory_order_acquire);
    last_ = view;
    deferred_ = [view] { Consume(view); };
    return view;
  }

  static void Consume(const ShardView* view);

 private:
  const ShardView* last_ = nullptr;
  std::function<void()> deferred_;
};

}  // namespace horizon
