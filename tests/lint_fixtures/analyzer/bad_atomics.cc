// Analyzer self-test fixture (known-bad): explicit memory_order sites
// with no adjacent `// order:` justification naming the pairing site.
#include <atomic>
#include <cstdint>

namespace horizon {

struct HitCounter {
  std::atomic<uint64_t> hits{0};
  std::atomic<bool> sealed{false};

  void Bump() {
    hits.fetch_add(1, std::memory_order_relaxed);
  }

  void Seal() {
    sealed.store(true, std::memory_order_release);
  }

  uint64_t Read() const {
    if (!sealed.load(std::memory_order_acquire)) {
      return 0;
    }
    return hits.load(std::memory_order_relaxed);
  }
};

}  // namespace horizon
