// Analyzer self-test fixture (known-bad): TU "B" of the cross-TU
// lock-order cycle started in bad_lock_cycle_a.cc.  JournalB::Append
// acquires JournalB::mu_ and, while holding it, calls TouchRegistry --
// which re-enters RegistryA::Update and acquires RegistryA::mu_.
// Thread 1: Update (holds RegistryA::mu_) -> Append (wants JournalB::mu_)
// Thread 2: Append (holds JournalB::mu_) -> Update (wants RegistryA::mu_)
#include <cstdint>

namespace horizon {

class RegistryA;
class JournalB;
void TouchRegistry(RegistryA& registry, JournalB& journal, uint64_t value);

class JournalB {
 public:
  void Append(RegistryA& registry, uint64_t value) {
    MutexLock lock(mu_);
    entries_ += value;
    TouchRegistry(registry, *this, value);
  }

 private:
  Mutex mu_;
  uint64_t entries_ = 0;
};

void AppendToJournal(JournalB& journal, uint64_t value) {
  RegistryA* registry = nullptr;
  journal.Append(*registry, value);
}

}  // namespace horizon
