// Analyzer self-test fixture (known-good), header half.  Every atomic
// carries an `// order:` justification and the lock structure is
// acyclic; the whole synthetic tree must produce zero findings.
#pragma once

#include <atomic>
#include <cstdint>

namespace horizon {

class GoodJournal {
 public:
  void Log(uint64_t value);

  uint64_t approx() const {
    // order: acquire pairs with the release fetch_add in
    // GoodJournal::Log; readers get a published lower bound.
    return logged_.load(std::memory_order_acquire);
  }

 private:
  Mutex mu_;
  std::atomic<uint64_t> logged_{0};
  uint64_t entries_ = 0;
};

}  // namespace horizon
