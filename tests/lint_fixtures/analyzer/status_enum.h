// Analyzer self-test fixture: stands in for src/common/status.h inside
// the synthetic tree so the status-exhaustive rule has an enum to check
// against.  Enumerators mirror the real StatusCode.
#pragma once

namespace horizon {

enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kNotYetLive = 2,
  kInvalidArgument = 3,
  kIoError = 4,
  kCorruption = 5,
  kConfigMismatch = 6,
  kAlreadyExists = 7,
  kInternal = 8,
  kResourceExhausted = 9,
};

}  // namespace horizon
