// Analyzer self-test fixture (known-bad): a switch over StatusCode that
// both omits codes and hides the omission behind `default:` -- the
// exact shape that silently swallowed kResourceExhausted before PR 7
// retrofitted the serving counters.
#include "common/status.h"

namespace horizon {

const char* ClassifyForRetry(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "no-retry";
    case StatusCode::kResourceExhausted:
      return "retry-with-backoff";
    default:
      return "fail";
  }
}

}  // namespace horizon
