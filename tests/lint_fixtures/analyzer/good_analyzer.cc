// Analyzer self-test fixture (known-good): justified atomics, an
// acyclic cross-class lock order, a guarded snapshot that never
// escapes (plus one justified suppression), and an exhaustive
// StatusCode switch.  Expected findings: none.
#include <atomic>
#include <cstdint>

#include "common/status.h"
#include "serving/good_analyzer.h"

namespace horizon {

struct ShardView {
  uint64_t size = 0;
};

struct Shard {
  std::atomic<const ShardView*> view{nullptr};
};

void GoodJournal::Log(uint64_t value) {
  MutexLock lock(mu_);
  entries_ += value;
  // order: release pairs with the acquire load in GoodJournal::approx;
  // the entry is fully written before the count publishes it.
  logged_.fetch_add(value, std::memory_order_release);
}

class GoodService {
 public:
  uint64_t Sample(Shard& shard, EpochDomain& epochs, GoodJournal& journal) {
    uint64_t size = 0;
    {
      const EpochGuard guard(epochs);
      // order: seq_cst view load participates in the publisher's
      // exchange total order; see the epoch reclamation proof.
      const ShardView* view = shard.view.load(std::memory_order_seq_cst);
      if (view != nullptr) {
        size = view->size;
      }
      // horizon-analyzer: allow(epoch-escape): address is only compared
      // against the next sample to detect republication; it is never
      // dereferenced after the guard exits.
      last_seen_ = view;
    }
    MutexLock lock(service_mu_);
    journal.Log(size);
    return size;
  }

  static const char* Describe(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "ok";
      case StatusCode::kNotFound: return "not-found";
      case StatusCode::kNotYetLive: return "not-yet-live";
      case StatusCode::kInvalidArgument: return "invalid-argument";
      case StatusCode::kIoError: return "io-error";
      case StatusCode::kCorruption: return "corruption";
      case StatusCode::kConfigMismatch: return "config-mismatch";
      case StatusCode::kAlreadyExists: return "already-exists";
      case StatusCode::kInternal: return "internal";
      case StatusCode::kResourceExhausted: return "resource-exhausted";
    }
    return "unknown";
  }

 private:
  Mutex service_mu_;
  const void* last_seen_ = nullptr;
};

}  // namespace horizon
