// Analyzer self-test fixture (known-bad): defaulted (seq_cst) atomic
// operations in a hot-path file.  The self-test copies this fixture to
// src/serving/epoch.cc inside the synthetic tree, where every atomic op
// must spell its order and justify it -- an implicit seq_cst there is
// either an unjustified fence cost or an unexamined protocol.
#include <atomic>
#include <cstdint>

namespace horizon {

struct EpochCell {
  std::atomic<uint64_t> value{0};

  uint64_t Get() const {
    return value.load();
  }

  void Set(uint64_t next) {
    value.store(next);
  }
};

}  // namespace horizon
