// Analyzer self-test fixture (known-bad): suppressions that baseline a
// finding without saying why, and suppressions naming a rule that does
// not exist.  Both defeat the audit trail and are findings themselves.
#include <atomic>
#include <cstdint>

namespace horizon {

struct Sloppy {
  std::atomic<uint64_t> n{0};

  void Bump() {
    // horizon-analyzer: allow(atomic-order)
    n.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t Read() const {
    // horizon-analyzer: allow(atomics-are-fine): counters never race
    return n.load(std::memory_order_relaxed);
  }
};

}  // namespace horizon
