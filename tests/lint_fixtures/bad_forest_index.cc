// Known-bad fixture for horizon_lint rule `forest-traversal`.  NOT
// compiled; consumed by `horizon_lint.py --self-test` only.
//
// Direct node-array indexing outside src/gbdt/ hard-codes one forest
// layout; the traversal API is the only stable surface.
struct FakeForest {
  const int* raw_features() const { return nullptr; }
  const float* raw_thresholds() const { return nullptr; }
  const int* raw_left() const { return nullptr; }
  const double* raw_values() const { return nullptr; }
  const int* raw_roots() const { return nullptr; }
  const unsigned short* raw_qthresholds() const { return nullptr; }
  const double* raw_leaves() const { return nullptr; }
};

double WalkByHand(const FakeForest& forest) {
  int idx = forest.raw_roots()[0];                  // bad: layout assumption
  while (forest.raw_features()[idx] >= 0) {         // bad
    const float t = forest.raw_thresholds()[idx];   // bad
    idx = forest.raw_left()[idx] + (0.5f <= t ? 0 : 1);  // bad
  }
  return forest.raw_values()[idx];                  // bad
}

double PeekBlocked(const FakeForest& forest) {
  return forest.raw_leaves()[0] +                   // bad
         forest.raw_qthresholds()[0];               // bad
}
