// Fuzz-style robustness tests (seeded, deterministic, no third-party
// fuzzing dependency) for the two untrusted deserialization entry points:
// GbdtRegressor::Deserialize and HawkesPredictor::Deserialize.  Truncated,
// bit-flipped, and garbage inputs must return false -- never crash, hang,
// overflow, or make later Predict calls unsafe.  The CI runs this binary
// under both TSan and ASan+UBSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/hawkes_predictor.h"
#include "gbdt/gbdt.h"

namespace horizon {
namespace {

/// A tiny but genuinely trained GBDT whose blob exercises every section of
/// the format.
gbdt::GbdtRegressor TrainSmallGbdt() {
  constexpr size_t kRows = 200;
  constexpr size_t kFeatures = 5;
  gbdt::DataMatrix x(kRows, kFeatures);
  std::vector<double> y(kRows);
  Rng rng(42);
  for (size_t r = 0; r < kRows; ++r) {
    float* row = x.MutableRow(r);
    for (size_t f = 0; f < kFeatures; ++f) {
      row[f] = static_cast<float>(rng.Uniform(-1.0, 1.0));
    }
    y[r] = 2.0 * row[0] - row[3] + 0.1 * rng.Normal();
  }
  gbdt::GbdtParams params;
  params.num_trees = 10;
  gbdt::GbdtRegressor model(params);
  model.Fit(x, y);
  return model;
}

/// A tiny trained HawkesPredictor (2 reference horizons so the aggregation
/// section of the blob is populated).
core::HawkesPredictor TrainSmallPredictor() {
  constexpr size_t kRows = 150;
  constexpr size_t kFeatures = 4;
  gbdt::DataMatrix x(kRows, kFeatures);
  // Outer index: reference horizon; inner: example row (Fit's layout).
  std::vector<std::vector<double>> log1p_increments(2, std::vector<double>(kRows));
  std::vector<double> alpha_targets(kRows);
  Rng rng(7);
  for (size_t r = 0; r < kRows; ++r) {
    float* row = x.MutableRow(r);
    for (size_t f = 0; f < kFeatures; ++f) {
      row[f] = static_cast<float>(rng.Uniform(0.0, 2.0));
    }
    log1p_increments[0][r] = std::log1p(row[0] * 5.0);
    log1p_increments[1][r] = std::log1p(row[0] * 9.0);
    alpha_targets[r] = 1.0 / (rng.Uniform(1.0, 48.0) * kHour);
  }
  core::HawkesPredictorParams params;
  params.reference_horizons = {6 * kHour, 1 * kDay};
  params.gbdt_count.num_trees = 6;
  params.gbdt_alpha.num_trees = 6;
  core::HawkesPredictor model(params);
  model.Fit(x, log1p_increments, alpha_targets);
  return model;
}

/// Row large enough for whatever feature count a (possibly corrupted but
/// accepted) model declares.
std::vector<float> ZeroRowFor(const gbdt::GbdtRegressor& model) {
  return std::vector<float>(std::max<size_t>(model.num_features(), 1), 0.0f);
}

size_t MaxFeatures(const core::HawkesPredictor& model) {
  size_t n = model.alpha_model().num_features();
  for (size_t i = 0; i < model.num_reference_horizons(); ++i) {
    n = std::max(n, model.count_model(i).num_features());
  }
  return std::max<size_t>(n, 1);
}

// -- GbdtRegressor::Deserialize ------------------------------------------

TEST(FuzzGbdtDeserialize, RoundTripBaseline) {
  const gbdt::GbdtRegressor model = TrainSmallGbdt();
  const std::string blob = model.Serialize();
  gbdt::GbdtRegressor restored;
  ASSERT_TRUE(restored.Deserialize(blob));
  const auto row = ZeroRowFor(restored);
  EXPECT_EQ(restored.Predict(row.data()), model.Predict(row.data()));
}

TEST(FuzzGbdtDeserialize, TruncationsNeverCrash) {
  const std::string blob = TrainSmallGbdt().Serialize();
  // Every prefix length (dense near the tail, strided through the body so
  // the loop stays fast even for large blobs).
  for (size_t len = 0; len <= blob.size(); len = (len < 64 || len + 64 >= blob.size()) ? len + 1 : len + 7) {
    gbdt::GbdtRegressor model;
    const bool ok = model.Deserialize(blob.substr(0, len));
    if (ok) {
      // Acceptable only if the parsed model is fully usable.
      const auto row = ZeroRowFor(model);
      const double p = model.Predict(row.data());
      EXPECT_TRUE(std::isfinite(p)) << "truncation at " << len;
    }
  }
}

TEST(FuzzGbdtDeserialize, BitFlipsNeverCrash) {
  const std::string blob = TrainSmallGbdt().Serialize();
  Rng rng(0xF1125001);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = blob;
    // 1-3 independent bit flips.
    const int flips = 1 + static_cast<int>(rng.UniformInt(3));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.UniformInt(mutated.size());
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << rng.UniformInt(8)));
    }
    gbdt::GbdtRegressor model;
    if (model.Deserialize(mutated)) {
      ++accepted;
      const auto row = ZeroRowFor(model);
      const double p = model.Predict(row.data());
      (void)p;  // finiteness not required (a value byte may have mutated)
    }
  }
  // Sanity: the harness is actually exercising the parser, not rejecting
  // everything at some outer guard.
  SUCCEED() << accepted << "/2000 mutated blobs parsed";
}

TEST(FuzzGbdtDeserialize, GarbageRejected) {
  Rng rng(0xF1125002);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(rng.UniformInt(4096), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.UniformInt(256));
    gbdt::GbdtRegressor model;
    EXPECT_FALSE(model.Deserialize(garbage));
    EXPECT_FALSE(model.trained());
  }
}

TEST(FuzzGbdtDeserialize, AbsurdSizesRejectedWithoutAllocating) {
  gbdt::GbdtRegressor model;
  // Headers declaring astronomically many features/trees/nodes must be
  // rejected by the caps, not die in std::vector::resize.
  // (Format: "gbdt v1\n<features> <base> <lr> <trees>\n" then per tree
  // "<nodes>\n" + node lines "<feature> <threshold> <left> <right> <value>".)
  EXPECT_FALSE(model.Deserialize("gbdt v1\n999999999999 0.0 0.1 1\n"));
  EXPECT_FALSE(model.Deserialize("gbdt v1\n5 0.0 0.1 888888888888\n"));
  EXPECT_FALSE(model.Deserialize("gbdt v1\n5 0.0 0.1 1\n777777777777\n"));
  EXPECT_FALSE(model.Deserialize("gbdt v1\n-3 0.0 0.1 1\n"));
  EXPECT_FALSE(model.Deserialize("gbdt v1\n5 inf 0.1 0\n"));
  EXPECT_FALSE(model.trained());
}

TEST(FuzzGbdtDeserialize, CyclicNodeIndicesRejected) {
  // A node whose child points at itself or backwards would make the
  // compiled forest loop; the parser must reject it.
  const std::string self_loop =
      "gbdt v1\n"
      "1 0.0 0.1 1\n"
      "1\n"
      "0 0.5 0 0 0.0\n";  // internal node whose children are itself
  gbdt::GbdtRegressor model;
  EXPECT_FALSE(model.Deserialize(self_loop));
  const std::string backward_edge =
      "gbdt v1\n"
      "1 0.0 0.1 1\n"
      "3\n"
      "0 0.5 1 2 0.0\n"
      "-1 0.0 -1 -1 1.0\n"
      "0 0.25 1 0 2.0\n";  // node 2 points back at nodes 1 and 0
  gbdt::GbdtRegressor model2;
  EXPECT_FALSE(model2.Deserialize(backward_edge));
}

// -- HawkesPredictor::Deserialize ----------------------------------------

TEST(FuzzHawkesDeserialize, RoundTripBaseline) {
  const core::HawkesPredictor model = TrainSmallPredictor();
  const std::string blob = model.Serialize();
  core::HawkesPredictor restored;
  ASSERT_TRUE(restored.Deserialize(blob));
  const std::vector<float> row(MaxFeatures(restored), 0.5f);
  EXPECT_EQ(restored.PredictIncrement(row.data(), 1 * kDay),
            model.PredictIncrement(row.data(), 1 * kDay));
  EXPECT_EQ(restored.PredictAlpha(row.data()), model.PredictAlpha(row.data()));
}

TEST(FuzzHawkesDeserialize, TruncationsNeverCrash) {
  const std::string blob = TrainSmallPredictor().Serialize();
  for (size_t len = 0; len <= blob.size(); len = (len < 64 || len + 64 >= blob.size()) ? len + 1 : len + 7) {
    core::HawkesPredictor model;
    if (model.Deserialize(blob.substr(0, len))) {
      const std::vector<float> row(MaxFeatures(model), 0.0f);
      const double p = model.PredictIncrement(row.data(), 1 * kDay);
      EXPECT_TRUE(std::isfinite(p)) << "truncation at " << len;
    }
  }
}

TEST(FuzzHawkesDeserialize, BitFlipsNeverCrash) {
  const std::string blob = TrainSmallPredictor().Serialize();
  Rng rng(0xF1125003);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = blob;
    const int flips = 1 + static_cast<int>(rng.UniformInt(3));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.UniformInt(mutated.size());
      mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << rng.UniformInt(8)));
    }
    core::HawkesPredictor model;
    if (model.Deserialize(mutated)) {
      ++accepted;
      const std::vector<float> row(MaxFeatures(model), 0.0f);
      (void)model.PredictAlpha(row.data());
      (void)model.PredictIncrement(row.data(), 6 * kHour);
    }
  }
  SUCCEED() << accepted << "/2000 mutated blobs parsed";
}

TEST(FuzzHawkesDeserialize, GarbageRejected) {
  Rng rng(0xF1125004);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(rng.UniformInt(4096), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.UniformInt(256));
    core::HawkesPredictor model;
    EXPECT_FALSE(model.Deserialize(garbage));
    EXPECT_FALSE(model.trained());
  }
}

TEST(FuzzHawkesDeserialize, AbsurdHeadersRejected) {
  core::HawkesPredictor model;
  EXPECT_FALSE(model.Deserialize(""));
  EXPECT_FALSE(model.Deserialize("hwk v1\n"));
  // Far more reference horizons than the cap allows.
  EXPECT_FALSE(model.Deserialize("hwk v1\n1000000 geo 1e-8 1e-2\n"));
  // Non-increasing reference horizons.
  EXPECT_FALSE(model.Deserialize("hwk v1\n2 geo 1e-8 1e-2\n86400 86400\n"));
  // Inverted alpha clamp range.
  EXPECT_FALSE(model.Deserialize("hwk v1\n1 geo 1e-2 1e-8\n86400\n"));
  EXPECT_FALSE(model.trained());
}

}  // namespace
}  // namespace horizon
