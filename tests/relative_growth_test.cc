#include "core/relative_growth.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pointprocess/exp_hawkes.h"

namespace horizon::core {
namespace {

TEST(PredictRelativeGrowthTest, ThresholdRule) {
  // lambda >= (c-1) alpha N(s)?
  EXPECT_TRUE(PredictRelativeGrowth(/*lambda_s=*/10.0, /*alpha=*/1.0,
                                    /*n_s=*/5.0, /*c=*/2.0));  // 10 >= 5
  EXPECT_FALSE(PredictRelativeGrowth(4.0, 1.0, 5.0, 2.0));     // 4 < 5
  EXPECT_TRUE(PredictRelativeGrowth(0.0, 1.0, 0.0, 2.0));      // empty cascade
}

TEST(ChiCorrectionTest, PositiveAndDecreasingInN) {
  const double c = 2.0, sigma_sq = 2.0, delta = 0.1;
  double prev = 1e300;
  for (double n : {1.0, 10.0, 100.0, 1000.0}) {
    const double chi = ChiCorrection(n, c, sigma_sq, delta);
    EXPECT_GT(chi, 0.0);
    EXPECT_LT(chi, prev);
    prev = chi;
  }
}

TEST(ChiCorrectionTest, VanishesForLargeCascades) {
  EXPECT_LT(ChiCorrection(1e9, 2.0, 2.0, 0.1), 1e-3);
}

TEST(ChiCorrectionTest, MatchesClosedForm) {
  const double n = 50.0, c = 3.0, sigma_sq = 1.5, delta = 0.2;
  const double a = sigma_sq / (2.0 * delta * n);
  EXPECT_NEAR(ChiCorrection(n, c, sigma_sq, delta),
              a + std::sqrt(2.0 * (c - 1.0) * a + a * a), 1e-12);
}

TEST(PredictWithConfidenceTest, StricterThanSimpleRule) {
  const double alpha = 1.0, n_s = 20.0, c = 2.0, sigma_sq = 2.0, delta = 0.1;
  // Between the two thresholds: simple rule fires, corrected rule does not.
  const double simple_threshold = (c - 1.0) * alpha * n_s;
  const double chi = ChiCorrection(n_s, c, sigma_sq, delta);
  const double lambda_mid = simple_threshold + 0.5 * chi * alpha * n_s;
  EXPECT_TRUE(PredictRelativeGrowth(lambda_mid, alpha, n_s, c));
  EXPECT_FALSE(
      PredictRelativeGrowthWithConfidence(lambda_mid, alpha, n_s, c, sigma_sq, delta));
  // Far above both: both fire.
  const double lambda_hi = simple_threshold * 10.0;
  EXPECT_TRUE(
      PredictRelativeGrowthWithConfidence(lambda_hi, alpha, n_s, c, sigma_sq, delta));
}

TEST(PredictWithConfidenceTest, EmpiricallyCalibrated) {
  // For cascades satisfying the corrected rule at time s, the fraction that
  // actually double must be high (>= 1 - delta up to MC noise).
  Rng rng(71);
  pp::ExpHawkesParams params;
  params.beta = 2.0;
  params.lambda0 = 60.0;
  params.marks = std::make_shared<pp::ConstantMark>(0.5);
  const double alpha = params.alpha();
  const double sigma_sq = pp::SigmaSquared(params.beta, params.rho1(), params.rho2());
  // Predict early (s small): the intensity is still high relative to
  // alpha N(s), so the corrected rule fires on a meaningful fraction.
  const double s = 0.2, c = 2.0, delta = 0.2;

  int fired = 0, fired_and_grew = 0;
  pp::SimulateOptions options;
  options.horizon = 60.0;
  for (int rep = 0; rep < 800; ++rep) {
    const auto events = pp::SimulateExpHawkes(params, options, rng);
    const size_t n_s = pp::CountBefore(events, s);
    if (n_s < 3) continue;
    const double lambda_s = pp::ExpHawkesIntensity(events, params, s);
    if (PredictRelativeGrowthWithConfidence(lambda_s, alpha,
                                            static_cast<double>(n_s), c, sigma_sq,
                                            delta)) {
      ++fired;
      if (static_cast<double>(events.size()) >
          c * static_cast<double>(n_s)) {
        ++fired_and_grew;
      }
    }
  }
  ASSERT_GT(fired, 30);
  EXPECT_GT(static_cast<double>(fired_and_grew) / fired, 1.0 - delta - 0.05);
}

}  // namespace
}  // namespace horizon::core
