#include "baselines/rpp.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "pointprocess/rpp_process.h"

namespace horizon::baselines {
namespace {

std::vector<double> Times(const pp::Realization& events) {
  std::vector<double> out;
  for (const auto& e : events) out.push_back(e.time);
  return out;
}

TEST(RppModelTest, TooFewEventsNotOk) {
  RppModel model;
  EXPECT_FALSE(model.Fit({}, 10.0).ok);
  EXPECT_FALSE(model.Fit({1.0, 2.0}, 10.0).ok);
}

TEST(RppModelTest, FitIsIterative) {
  RppModel model;
  std::vector<double> times = {100.0, 200.0, 300.0, 500.0, 800.0};
  const auto fit = model.Fit(times, 1000.0);
  ASSERT_TRUE(fit.ok);
  // Coarse grid of 12 x 8 = 96 plus refinement rounds.
  EXPECT_GT(fit.likelihood_evaluations, 96);
}

TEST(RppModelTest, RecoversParametersOnSimulatedData) {
  pp::RppParams truth;
  truth.p = 3.0;
  truth.mu_log = std::log(500.0);
  truth.sigma_log = 0.8;
  truth.n0 = 1.0;

  Rng rng(5);
  RppModel model;
  double p_ratio_sum = 0.0, mu_err_sum = 0.0;
  int n = 0;
  for (int rep = 0; rep < 25; ++rep) {
    const auto events = pp::SimulateRpp(truth, 5000.0, rng);
    if (events.size() < 10) continue;
    const auto fit = model.Fit(Times(events), 5000.0);
    if (!fit.ok) continue;
    p_ratio_sum += fit.params.p / truth.p;
    mu_err_sum += std::fabs(fit.params.mu_log - truth.mu_log);
    ++n;
  }
  ASSERT_GT(n, 15);
  EXPECT_NEAR(p_ratio_sum / n, 1.0, 0.35);
  EXPECT_LT(mu_err_sum / n, 1.0);  // within a factor e on the time scale
}

TEST(RppModelTest, PredictionTracksFutureGrowthOnAverage) {
  pp::RppParams truth;
  truth.p = 3.5;
  truth.mu_log = std::log(500.0);
  truth.sigma_log = 0.7;

  Rng rng(9);
  RppModel model;
  const double s = 1000.0, horizon = 30000.0;
  double pred_sum = 0.0, truth_sum = 0.0;
  int n = 0;
  for (int rep = 0; rep < 60; ++rep) {
    const auto events = pp::SimulateRpp(truth, horizon, rng);
    const auto times = Times(events);
    size_t n_s = 0;
    while (n_s < times.size() && times[n_s] < s) ++n_s;
    if (n_s < 5) continue;
    std::vector<double> observed(times.begin(), times.begin() + n_s);
    const auto fit = model.Fit(observed, s);
    if (!fit.ok) continue;
    pred_sum += model.PredictIncrement(fit, static_cast<double>(n_s), s,
                                       horizon - s);
    truth_sum += static_cast<double>(times.size() - n_s);
    ++n;
  }
  ASSERT_GT(n, 20);
  // Aggregate prediction in the right regime on the model's own data.  The
  // band is asymmetric: near-supercritical fits systematically overpredict
  // (the exponential blow-up the paper's Sec. 5.2 observes as RPP's MAPE of
  // 4.1), so the upper side is looser.
  EXPECT_GT(pred_sum, truth_sum / 2.5);
  EXPECT_LT(pred_sum, truth_sum * 5.0);
}

TEST(RppModelTest, PredictIncrementHandlesInfiniteHorizon) {
  RppModel model;
  std::vector<double> times = {10.0, 20.0, 30.0, 40.0, 80.0, 100.0};
  const auto fit = model.Fit(times, 200.0);
  ASSERT_TRUE(fit.ok);
  const double inf = std::numeric_limits<double>::infinity();
  const double pred = model.PredictIncrement(fit, 6.0, 200.0, inf);
  EXPECT_TRUE(std::isfinite(pred));
  EXPECT_GE(pred, 0.0);
  EXPECT_GE(pred, model.PredictIncrement(fit, 6.0, 200.0, 100.0));
}

TEST(RppModelTest, UnfittedPredictsZero) {
  RppModel model;
  RppModel::FitResult bad;
  EXPECT_EQ(model.PredictIncrement(bad, 10.0, 5.0, 100.0), 0.0);
}

}  // namespace
}  // namespace horizon::baselines
