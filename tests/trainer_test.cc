#include "core/trainer.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "features/extractor.h"

namespace horizon::core {
namespace {

datagen::SyntheticDataset SmallDataset() {
  datagen::GeneratorConfig config;
  config.num_pages = 20;
  config.num_posts = 60;
  config.base_mean_size = 70.0;
  config.seed = 31;
  return datagen::Generator(config).Generate();
}

ExampleSetOptions SmallOptions() {
  ExampleSetOptions options;
  options.reference_horizons = {6 * kHour, 1 * kDay};
  options.samples_per_cascade = 2;
  options.seed = 17;
  return options;
}

TEST(TrueIncrementTest, CountsViewsInInterval) {
  const auto data = SmallDataset();
  const auto& cascade = data.cascades[0];
  const double s = 6 * kHour;
  const double inc = TrueIncrement(cascade, s, kDay);
  EXPECT_DOUBLE_EQ(inc, static_cast<double>(cascade.ViewsBefore(s + kDay) -
                                            cascade.ViewsBefore(s)));
  EXPECT_GE(inc, 0.0);
}

TEST(TrueIncrementTest, InfiniteHorizonUsesFullWindow) {
  const auto data = SmallDataset();
  const auto& cascade = data.cascades[1];
  const double s = kDay;
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(
      TrueIncrement(cascade, s, inf),
      static_cast<double>(cascade.TotalViews() - cascade.ViewsBefore(s)));
}

TEST(BuildExampleSetTest, SizesAndAlignment) {
  const auto data = SmallDataset();
  features::FeatureExtractor extractor(stream::TrackerConfig{});
  std::vector<size_t> indices;
  for (size_t i = 0; i < 30; ++i) indices.push_back(i);
  const auto options = SmallOptions();
  const ExampleSet set = BuildExampleSet(data, indices, extractor, options);

  EXPECT_EQ(set.size(), 60u);  // 30 cascades x 2 samples
  EXPECT_EQ(set.x.num_rows(), 60u);
  EXPECT_EQ(set.x.num_features(), extractor.schema().size());
  ASSERT_EQ(set.log1p_increments.size(), 2u);
  EXPECT_EQ(set.log1p_increments[0].size(), 60u);
  EXPECT_EQ(set.alpha_targets.size(), 60u);
  EXPECT_EQ(set.refs.size(), 60u);
}

TEST(BuildExampleSetTest, RefsConsistentWithCascades) {
  const auto data = SmallDataset();
  features::FeatureExtractor extractor(stream::TrackerConfig{});
  std::vector<size_t> indices = {0, 5, 10};
  const ExampleSet set = BuildExampleSet(data, indices, extractor, SmallOptions());
  for (const auto& ref : set.refs) {
    EXPECT_TRUE(ref.cascade_index == 0 || ref.cascade_index == 5 ||
                ref.cascade_index == 10);
    const auto& cascade = data.cascades[ref.cascade_index];
    EXPECT_DOUBLE_EQ(ref.n_s,
                     static_cast<double>(cascade.ViewsBefore(ref.prediction_age)));
    EXPECT_GE(ref.prediction_age, SmallOptions().min_prediction_age);
    EXPECT_LE(ref.prediction_age, SmallOptions().max_prediction_age);
  }
}

TEST(BuildExampleSetTest, IncrementsAreLog1pOfTrueIncrements) {
  const auto data = SmallDataset();
  features::FeatureExtractor extractor(stream::TrackerConfig{});
  std::vector<size_t> indices = {2, 3};
  const auto options = SmallOptions();
  const ExampleSet set = BuildExampleSet(data, indices, extractor, options);
  for (size_t e = 0; e < set.size(); ++e) {
    const auto& ref = set.refs[e];
    for (size_t h = 0; h < options.reference_horizons.size(); ++h) {
      const double inc = TrueIncrement(data.cascades[ref.cascade_index],
                                       ref.prediction_age,
                                       options.reference_horizons[h]);
      EXPECT_DOUBLE_EQ(set.log1p_increments[h][e], std::log1p(inc));
    }
  }
}

TEST(BuildExampleSetTest, MostAlphaTargetsPositive) {
  const auto data = SmallDataset();
  features::FeatureExtractor extractor(stream::TrackerConfig{});
  std::vector<size_t> indices;
  for (size_t i = 0; i < data.cascades.size(); ++i) indices.push_back(i);
  const ExampleSet set = BuildExampleSet(data, indices, extractor, SmallOptions());
  size_t positive = 0;
  for (double a : set.alpha_targets) positive += a > 0.0 ? 1 : 0;
  EXPECT_GT(static_cast<double>(positive) / set.size(), 0.8);
}

TEST(BuildExampleSetTest, DeterministicForSeed) {
  const auto data = SmallDataset();
  features::FeatureExtractor extractor(stream::TrackerConfig{});
  std::vector<size_t> indices = {1, 2, 3};
  const ExampleSet a = BuildExampleSet(data, indices, extractor, SmallOptions());
  const ExampleSet b = BuildExampleSet(data, indices, extractor, SmallOptions());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.refs[i].prediction_age, b.refs[i].prediction_age);
  }
}

TEST(BuildExampleSetTest, QuantileAlphaKindProducesDifferentTargets) {
  const auto data = SmallDataset();
  features::FeatureExtractor extractor(stream::TrackerConfig{});
  std::vector<size_t> indices;
  for (size_t i = 0; i < 20; ++i) indices.push_back(i);
  auto options = SmallOptions();
  const ExampleSet mean_set = BuildExampleSet(data, indices, extractor, options);
  options.alpha_kind = AlphaEstimatorKind::kQuantileValue;
  const ExampleSet quant_set = BuildExampleSet(data, indices, extractor, options);
  size_t different = 0;
  for (size_t i = 0; i < mean_set.size(); ++i) {
    if (mean_set.alpha_targets[i] != quant_set.alpha_targets[i]) ++different;
  }
  EXPECT_GT(different, mean_set.size() / 2);
}

}  // namespace
}  // namespace horizon::core
