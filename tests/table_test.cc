#include "common/table.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/units.h"

namespace horizon {
namespace {

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(0.565, 3), "0.565");
  EXPECT_EQ(Table::Num(1234.5678, 6), "1234.57");
  EXPECT_EQ(Table::Num(std::nan(""), 3), "nan");
}

TEST(TableTest, SciFormatting) {
  EXPECT_EQ(Table::Sci(2.0e6, 2), "2.0e+06");
  EXPECT_EQ(Table::Sci(std::nan("")), "nan");
}

TEST(TableTest, AddRowAndPrint) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  EXPECT_EQ(t.num_rows(), 2u);
  t.Print("test table");  // should not crash
}

TEST(TableTest, WriteCsvRoundTrip) {
  Table t({"name", "value"});
  t.AddRow({"plain", "1"});
  t.AddRow({"with,comma", "2"});
  t.AddRow({"with\"quote", "3"});
  const std::string path = ::testing::TempDir() + "/table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path));

  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("name,value"), std::string::npos);
  EXPECT_NE(content.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TableTest, WriteCsvFailsOnBadPath) {
  Table t({"a"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent_dir_zzz/foo.csv"));
}

TEST(FormatDurationTest, CompactLabels) {
  EXPECT_EQ(FormatDuration(kHour), "1h");
  EXPECT_EQ(FormatDuration(6 * kHour), "6h");
  EXPECT_EQ(FormatDuration(kDay), "1d");
  EXPECT_EQ(FormatDuration(4 * kDay), "4d");
  EXPECT_EQ(FormatDuration(30 * kMinute), "30m");
  EXPECT_EQ(FormatDuration(45.0), "45s");
}

}  // namespace
}  // namespace horizon
