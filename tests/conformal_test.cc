#include "core/conformal.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace horizon::core {
namespace {

// Synthetic world: true = pred * multiplicative lognormal noise.
struct ToyCalibration {
  std::vector<double> pred, truth, horizon;
};

ToyCalibration MakeToy(size_t n, double sigma, uint64_t seed) {
  ToyCalibration data;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double p = std::exp(rng.Uniform(2.0, 7.0));
    const double h = std::exp(rng.Uniform(std::log(kHour), std::log(7 * kDay)));
    data.pred.push_back(p);
    data.truth.push_back(p * rng.LogNormal(0.0, sigma));
    data.horizon.push_back(h);
  }
  return data;
}

TEST(ConformalCalibratorTest, NotCalibratedInitially) {
  ConformalCalibrator calibrator;
  EXPECT_FALSE(calibrator.calibrated());
}

TEST(ConformalCalibratorTest, IntervalContainsPointForCenteredNoise) {
  const auto data = MakeToy(3000, 0.5, 1);
  ConformalCalibrator calibrator;
  calibrator.Calibrate(data.pred, data.truth, data.horizon);
  ASSERT_TRUE(calibrator.calibrated());
  const auto interval = calibrator.IntervalFor(500.0, kDay, 0.1);
  EXPECT_LT(interval.lo, 500.0);
  EXPECT_GT(interval.hi, 500.0);
  EXPECT_GE(interval.lo, 0.0);
}

TEST(ConformalCalibratorTest, EmpiricalCoverageMeetsTarget) {
  const auto calibration = MakeToy(4000, 0.6, 2);
  ConformalCalibrator calibrator;
  calibrator.Calibrate(calibration.pred, calibration.truth, calibration.horizon);

  const auto test = MakeToy(4000, 0.6, 3);
  for (double miscoverage : {0.1, 0.2, 0.4}) {
    int covered = 0;
    for (size_t i = 0; i < test.pred.size(); ++i) {
      const auto iv = calibrator.IntervalFor(test.pred[i], test.horizon[i],
                                             miscoverage);
      if (test.truth[i] >= iv.lo && test.truth[i] <= iv.hi) ++covered;
    }
    const double coverage = static_cast<double>(covered) / test.pred.size();
    EXPECT_GE(coverage, 1.0 - miscoverage - 0.02) << "target " << 1.0 - miscoverage;
    // Not absurdly conservative either.
    EXPECT_LE(coverage, 1.0 - miscoverage + 0.08) << "target " << 1.0 - miscoverage;
  }
}

TEST(ConformalCalibratorTest, WidthIncreasesWithCoverage) {
  const auto data = MakeToy(2000, 0.5, 4);
  ConformalCalibrator calibrator;
  calibrator.Calibrate(data.pred, data.truth, data.horizon);
  const auto narrow = calibrator.IntervalFor(300.0, kDay, 0.5);
  const auto wide = calibrator.IntervalFor(300.0, kDay, 0.05);
  EXPECT_GT(wide.hi - wide.lo, narrow.hi - narrow.lo);
}

TEST(ConformalCalibratorTest, WidthTracksNoiseScale) {
  ConformalCalibrator low_noise, high_noise;
  const auto a = MakeToy(2000, 0.2, 5);
  const auto b = MakeToy(2000, 1.0, 6);
  low_noise.Calibrate(a.pred, a.truth, a.horizon);
  high_noise.Calibrate(b.pred, b.truth, b.horizon);
  const auto iv_low = low_noise.IntervalFor(300.0, kDay, 0.1);
  const auto iv_high = high_noise.IntervalFor(300.0, kDay, 0.1);
  EXPECT_GT(iv_high.hi - iv_high.lo, iv_low.hi - iv_low.lo);
}

TEST(ConformalCalibratorTest, HorizonBucketsAreSeparate) {
  // Short horizons get small noise, long horizons large noise; interval
  // widths must reflect the bucket, not the pool.
  ConformalCalibrator calibrator;
  std::vector<double> pred, truth, horizon;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    pred.push_back(100.0);
    truth.push_back(100.0 * rng.LogNormal(0.0, 0.1));
    horizon.push_back(1 * kHour);
    pred.push_back(100.0);
    truth.push_back(100.0 * rng.LogNormal(0.0, 1.0));
    horizon.push_back(5 * kDay);
  }
  calibrator.Calibrate(pred, truth, horizon);
  const auto short_iv = calibrator.IntervalFor(100.0, 1 * kHour, 0.1);
  const auto long_iv = calibrator.IntervalFor(100.0, 5 * kDay, 0.1);
  EXPECT_GT(long_iv.hi - long_iv.lo, 3.0 * (short_iv.hi - short_iv.lo));
}

TEST(ConformalCalibratorTest, SmallBucketFallsBackToPool) {
  ConformalCalibrator::Options options;
  options.min_bucket_size = 100;
  ConformalCalibrator calibrator(options);
  // All mass in the long-horizon bucket; the 1h bucket stays tiny.
  std::vector<double> pred(500, 50.0), truth(500, 60.0), horizon(500, 5 * kDay);
  pred.push_back(50.0);
  truth.push_back(55.0);
  horizon.push_back(1 * kHour);
  calibrator.Calibrate(pred, truth, horizon);
  EXPECT_EQ(calibrator.BucketSize(1 * kHour), 501u);  // pooled fallback
  EXPECT_EQ(calibrator.BucketSize(5 * kDay), 500u);
}

TEST(ConformalCalibratorTest, LowerBoundClampedAtZero) {
  const auto data = MakeToy(500, 2.0, 8);
  ConformalCalibrator calibrator;
  calibrator.Calibrate(data.pred, data.truth, data.horizon);
  const auto iv = calibrator.IntervalFor(0.5, kDay, 0.02);
  EXPECT_GE(iv.lo, 0.0);
}

}  // namespace
}  // namespace horizon::core
