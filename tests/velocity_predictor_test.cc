#include "core/velocity_predictor.h"

#include <cmath>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "pointprocess/exp_hawkes.h"

namespace horizon::core {
namespace {

stream::TrackerConfig FastConfig() {
  stream::TrackerConfig config;
  config.window_lengths = {kHour};
  config.landmark_ages = {kHour};
  config.ewma_tau = 2 * kHour;
  return config;
}

TEST(VelocityPredictorTest, EmptySnapshotPredictsZero) {
  stream::CascadeTracker tracker(0.0, FastConfig());
  VelocityHawkesPredictor predictor;
  const auto snapshot = tracker.Snapshot(kDay);
  EXPECT_EQ(predictor.PredictIncrement(snapshot, kDay), 0.0);
}

TEST(VelocityPredictorTest, ZeroHorizonIsZero) {
  stream::CascadeTracker tracker(0.0, FastConfig());
  tracker.Observe(stream::EngagementType::kView, kHour);
  VelocityHawkesPredictor predictor;
  EXPECT_EQ(predictor.PredictIncrement(tracker.Snapshot(2 * kHour), 0.0), 0.0);
}

TEST(VelocityPredictorTest, MonotoneInHorizonAndBoundedByFinal) {
  stream::CascadeTracker tracker(0.0, FastConfig());
  Rng rng(3);
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    t += rng.Exponential(1.0 / (5 * kMinute));
    tracker.Observe(stream::EngagementType::kView, t);
  }
  VelocityHawkesPredictor predictor;
  const auto snapshot = tracker.Snapshot(t);
  double prev = 0.0;
  for (double delta : {kHour, 6 * kHour, kDay, 7 * kDay}) {
    const double inc = predictor.PredictIncrement(snapshot, delta);
    EXPECT_GE(inc, prev);
    prev = inc;
  }
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_GE(predictor.PredictIncrement(snapshot, inf), prev);
}

TEST(VelocityPredictorTest, AlphaFromMeanEventAge) {
  stream::CascadeTracker tracker(0.0, FastConfig());
  // Events at ages 1h, 2h, 3h: mean age 2h -> alpha = 1/2h.
  tracker.Observe(stream::EngagementType::kView, 1 * kHour);
  tracker.Observe(stream::EngagementType::kView, 2 * kHour);
  tracker.Observe(stream::EngagementType::kView, 3 * kHour);
  VelocityHawkesPredictor predictor;
  EXPECT_NEAR(predictor.EstimateAlpha(tracker.Snapshot(4 * kHour)),
              1.0 / (2 * kHour), 1e-12);
}

TEST(VelocityPredictorTest, WindowVelocityVariant) {
  stream::CascadeTracker tracker(0.0, FastConfig());
  for (int i = 0; i < 60; ++i) {
    tracker.Observe(stream::EngagementType::kView, i * kMinute);
  }
  VelocityHawkesPredictor::Options options;
  options.use_ewma = false;
  options.window_index = 0;
  VelocityHawkesPredictor predictor(options);
  const auto snapshot = tracker.Snapshot(60 * kMinute);
  // ~60 events in the 1h window -> rate ~1/min.
  EXPECT_NEAR(predictor.EstimateIntensity(snapshot) * kMinute, 1.0, 0.15);
}

TEST(VelocityPredictorTest, TracksTrueRemainingGrowthOnSimulatedCascades) {
  // On exp-Hawkes cascades the training-free predictor must land within a
  // small factor of the true remaining count, in aggregate.
  pp::ExpHawkesParams params;
  params.lambda0 = 400.0 / kDay;
  params.beta = 4.0 / kDay;
  params.marks = std::make_shared<pp::LogNormalMark>(0.5, 0.7);
  pp::SimulateOptions sim;
  sim.horizon = 30 * kDay;
  Rng rng(9);
  VelocityHawkesPredictor predictor;
  const double s = 12 * kHour;

  double pred_sum = 0.0, truth_sum = 0.0;
  int n = 0;
  for (int rep = 0; rep < 150; ++rep) {
    const auto events = pp::SimulateExpHawkes(params, sim, rng);
    if (pp::CountBefore(events, s) < 10) continue;
    stream::CascadeTracker tracker(0.0, FastConfig());
    for (const auto& e : events) {
      if (e.time >= s) break;
      tracker.Observe(stream::EngagementType::kView, e.time);
    }
    const double pred = predictor.PredictIncrement(
        tracker.Snapshot(s), std::numeric_limits<double>::infinity());
    pred_sum += pred;
    truth_sum += static_cast<double>(events.size() - pp::CountBefore(events, s));
    ++n;
  }
  ASSERT_GT(n, 80);
  EXPECT_GT(pred_sum, truth_sum / 3.0);
  EXPECT_LT(pred_sum, truth_sum * 3.0);
}

}  // namespace
}  // namespace horizon::core
