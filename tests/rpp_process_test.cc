#include "pointprocess/rpp_process.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"

namespace horizon::pp {
namespace {

TEST(LogNormalPdfTest, NonNegativeAndZeroForNonPositive) {
  EXPECT_EQ(LogNormalPdf(0.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(LogNormalPdf(-1.0, 0.0, 1.0), 0.0);
  EXPECT_GT(LogNormalPdf(1.0, 0.0, 1.0), 0.0);
}

TEST(LogNormalPdfTest, KnownValueAtMedian) {
  // At t = e^mu, z = 0: pdf = 1/(sigma t sqrt(2 pi)).
  const double mu = 0.7, sigma = 0.9;
  const double t = std::exp(mu);
  EXPECT_NEAR(LogNormalPdf(t, mu, sigma),
              1.0 / (sigma * t * std::sqrt(2.0 * M_PI)), 1e-12);
}

TEST(LogNormalPdfTest, IntegratesToOne) {
  const double mu = 0.5, sigma = 0.8;
  double integral = 0.0;
  const double dt = 0.01;
  for (double t = dt / 2; t < 200.0; t += dt) {
    integral += LogNormalPdf(t, mu, sigma) * dt;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(LogNormalCdfTest, MonotoneWithCorrectLimits) {
  const double mu = 0.0, sigma = 1.0;
  EXPECT_EQ(LogNormalCdf(0.0, mu, sigma), 0.0);
  EXPECT_NEAR(LogNormalCdf(1.0, mu, sigma), 0.5, 1e-12);  // median at e^mu
  EXPECT_NEAR(LogNormalCdf(1e9, mu, sigma), 1.0, 1e-6);
  double prev = 0.0;
  for (double t = 0.1; t < 100.0; t *= 2.0) {
    const double v = LogNormalCdf(t, mu, sigma);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(LogNormalCdfTest, MatchesPdfDerivative) {
  const double mu = 0.3, sigma = 0.7, t = 2.0, h = 1e-5;
  const double numeric =
      (LogNormalCdf(t + h, mu, sigma) - LogNormalCdf(t - h, mu, sigma)) / (2 * h);
  EXPECT_NEAR(numeric, LogNormalPdf(t, mu, sigma), 1e-6);
}

TEST(SimulateRppTest, MeanCountMatchesTheory) {
  // E[N(t) + n0] = n0 e^{p F(t)}  (each increment multiplies the expected
  // intensity integral), so E[N(t)] = n0 (e^{p F(t)} - 1).
  RppParams params;
  params.p = 1.5;
  params.mu_log = std::log(5.0);
  params.sigma_log = 0.8;
  params.n0 = 1.0;
  Rng rng(21);
  const double t = 50.0;
  RunningStats counts;
  const int reps = 4000;
  for (int rep = 0; rep < reps; ++rep) {
    counts.Add(static_cast<double>(SimulateRpp(params, t, rng).size()));
  }
  const double f_t = LogNormalCdf(t, params.mu_log, params.sigma_log);
  const double expected = params.n0 * std::expm1(params.p * f_t);
  const double se = counts.stddev() / std::sqrt(static_cast<double>(reps));
  EXPECT_NEAR(counts.mean(), expected, 4.0 * se + 0.05);
}

TEST(SimulateRppTest, EventsSortedWithinHorizon) {
  RppParams params;
  params.p = 2.0;
  params.mu_log = std::log(2.0);
  params.sigma_log = 1.0;
  Rng rng(23);
  const Realization events = SimulateRpp(params, 30.0, rng);
  for (size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(events[i].time, events[i - 1].time);
    }
    EXPECT_LT(events[i].time, 30.0);
  }
}

TEST(RppConditionalMeanIncrementTest, ZeroAndInfiniteHorizons) {
  RppParams params;
  params.p = 1.0;
  params.mu_log = 0.0;
  params.sigma_log = 1.0;
  params.n0 = 1.0;
  EXPECT_DOUBLE_EQ(RppConditionalMeanIncrement(params, 10.0, 5.0, 0.0), 0.0);
  const double inf = std::numeric_limits<double>::infinity();
  const double f_s = LogNormalCdf(5.0, 0.0, 1.0);
  EXPECT_NEAR(RppConditionalMeanIncrement(params, 10.0, 5.0, inf),
              11.0 * std::expm1(1.0 - f_s), 1e-9);
}

TEST(RppConditionalMeanIncrementTest, MonotoneInHorizon) {
  RppParams params;
  params.p = 2.0;
  params.mu_log = std::log(3.0);
  params.sigma_log = 0.5;
  double prev = 0.0;
  for (double dt = 0.5; dt < 100.0; dt *= 2.0) {
    const double v = RppConditionalMeanIncrement(params, 5.0, 1.0, dt);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace horizon::pp
