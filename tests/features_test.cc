#include "features/extractor.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/units.h"
#include "datagen/generator.h"
#include "features/schema.h"

namespace horizon::features {
namespace {

datagen::SyntheticDataset SmallDataset() {
  datagen::GeneratorConfig config;
  config.num_pages = 20;
  config.num_posts = 50;
  config.base_mean_size = 60.0;
  config.seed = 77;
  return datagen::Generator(config).Generate();
}

TEST(FeatureSchemaTest, AddAndQuery) {
  FeatureSchema schema;
  EXPECT_EQ(schema.Add("a", FeatureCategory::kContent), 0u);
  EXPECT_EQ(schema.Add("b", FeatureCategory::kPage), 1u);
  EXPECT_EQ(schema.Add("c", FeatureCategory::kContent), 2u);
  EXPECT_EQ(schema.size(), 3u);
  EXPECT_EQ(schema.CountOf(FeatureCategory::kContent), 2u);
  EXPECT_EQ(schema.IndicesOf(FeatureCategory::kPage), std::vector<size_t>{1});
  EXPECT_EQ(schema.def(0).name, "a");
}

TEST(FeatureCategoryTest, AllNamesDistinct) {
  std::set<std::string> names;
  for (int c = 0; c < kNumFeatureCategories; ++c) {
    names.insert(FeatureCategoryName(static_cast<FeatureCategory>(c)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumFeatureCategories));
}

TEST(FeatureExtractorTest, SchemaCoversAllCategories) {
  FeatureExtractor extractor(stream::TrackerConfig{});
  const FeatureSchema& schema = extractor.schema();
  EXPECT_GT(schema.size(), 60u);
  for (int c = 0; c < kNumFeatureCategories; ++c) {
    EXPECT_GT(schema.CountOf(static_cast<FeatureCategory>(c)), 0u)
        << FeatureCategoryName(static_cast<FeatureCategory>(c));
  }
}

TEST(FeatureExtractorTest, UniqueFeatureNames) {
  FeatureExtractor extractor(stream::TrackerConfig{});
  std::set<std::string> names;
  for (size_t i = 0; i < extractor.schema().size(); ++i) {
    names.insert(extractor.schema().def(i).name);
  }
  EXPECT_EQ(names.size(), extractor.schema().size());
}

TEST(FeatureExtractorTest, ExtractMatchesSchemaSizeAndIsFinite) {
  const auto data = SmallDataset();
  FeatureExtractor extractor(stream::TrackerConfig{});
  const auto& cascade = data.cascades[0];
  const auto snap = extractor.ReplaySnapshot(cascade, 6 * kHour);
  const auto row = extractor.Extract(data.PageOf(cascade.post), cascade.post, snap);
  ASSERT_EQ(row.size(), extractor.schema().size());
  for (float v : row) EXPECT_TRUE(std::isfinite(v));
}

TEST(FeatureExtractorTest, ReplaySnapshotCountsMatchCascade) {
  const auto data = SmallDataset();
  FeatureExtractor extractor(stream::TrackerConfig{});
  for (size_t i = 0; i < 10; ++i) {
    const auto& cascade = data.cascades[i];
    const double s = 12 * kHour;
    const auto snap = extractor.ReplaySnapshot(cascade, s);
    EXPECT_EQ(snap.views().total, cascade.ViewsBefore(s));
    size_t shares = 0;
    for (double t : cascade.share_times) shares += t < s ? 1 : 0;
    EXPECT_EQ(snap.shares().total, shares);
  }
}

TEST(FeatureExtractorTest, TotalsMonotoneInObservationAge) {
  const auto data = SmallDataset();
  FeatureExtractor extractor(stream::TrackerConfig{});
  const auto& cascade = data.cascades[1];
  uint64_t prev = 0;
  for (double age : {1 * kHour, 6 * kHour, 1 * kDay, 4 * kDay}) {
    const auto snap = extractor.ReplaySnapshot(cascade, age);
    EXPECT_GE(snap.views().total, prev);
    prev = snap.views().total;
  }
}

TEST(FeatureExtractorTest, DeterministicExtraction) {
  const auto data = SmallDataset();
  FeatureExtractor extractor(stream::TrackerConfig{});
  const auto& cascade = data.cascades[2];
  const auto snap_a = extractor.ReplaySnapshot(cascade, kDay);
  const auto snap_b = extractor.ReplaySnapshot(cascade, kDay);
  const auto row_a = extractor.Extract(data.PageOf(cascade.post), cascade.post, snap_a);
  const auto row_b = extractor.Extract(data.PageOf(cascade.post), cascade.post, snap_b);
  EXPECT_EQ(row_a, row_b);
}

TEST(FeatureExtractorTest, MediaOneHotMatchesPost) {
  const auto data = SmallDataset();
  FeatureExtractor extractor(stream::TrackerConfig{});
  const auto& schema = extractor.schema();
  const auto& cascade = data.cascades[3];
  const auto snap = extractor.ReplaySnapshot(cascade, kHour);
  const auto row = extractor.Extract(data.PageOf(cascade.post), cascade.post, snap);
  int hot = 0;
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema.def(i).name.rfind("content/media_", 0) == 0) {
      hot += row[i] > 0.5f ? 1 : 0;
    }
  }
  EXPECT_EQ(hot, 1);
}

TEST(FeatureExtractorTest, EngagementFeaturesReflectActivity) {
  // A later snapshot of an active cascade has a larger views total feature.
  const auto data = SmallDataset();
  FeatureExtractor extractor(stream::TrackerConfig{});
  const auto& schema = extractor.schema();
  size_t total_idx = schema.size();
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema.def(i).name == "views/log1p_total") total_idx = i;
  }
  ASSERT_LT(total_idx, schema.size());

  // Find a cascade with meaningful growth.
  for (const auto& cascade : data.cascades) {
    if (cascade.ViewsBefore(kDay) > cascade.ViewsBefore(kHour) + 10) {
      const auto early = extractor.Extract(
          data.PageOf(cascade.post), cascade.post, extractor.ReplaySnapshot(cascade, kHour));
      const auto late = extractor.Extract(
          data.PageOf(cascade.post), cascade.post, extractor.ReplaySnapshot(cascade, kDay));
      EXPECT_GT(late[total_idx], early[total_idx]);
      return;
    }
  }
  FAIL() << "no growing cascade found";
}

}  // namespace
}  // namespace horizon::features
