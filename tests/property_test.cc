// Property-based tests (seeded generator loops, no third-party fuzzing
// dependency) for the model-layer invariants the paper's transfer formula
// guarantees:
//
//   * Prop. 3.2: the conditional mean increment is nonnegative, bounded by
//     lambda(s)/alpha, and monotone nondecreasing in the horizon.
//   * Horizon-conversion identity: at delta = delta* the transfer formula
//     reproduces the reference predictor's output exactly.
//   * PredictIncrement is monotone nondecreasing in delta and bounded by
//     PredictFinalIncrement for every feature row.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "core/hawkes_predictor.h"
#include "core/trainer.h"
#include "pointprocess/exp_hawkes.h"

namespace horizon {
namespace {

constexpr int kTrials = 2000;

// -- Prop. 3.2 invariants of the analytic conditional mean ----------------

TEST(ConditionalMeanProperty, NonnegativeAndBoundedByFinalMass) {
  Rng rng(0xC0FFEE01);
  for (int trial = 0; trial < kTrials; ++trial) {
    // Log-uniform sweeps over many decades of intensity, growth exponent,
    // and horizon.
    const double lambda_s = std::exp(rng.Uniform(std::log(1e-8), std::log(1e4)));
    const double alpha = std::exp(rng.Uniform(std::log(1e-9), std::log(1e-2)));
    const double dt = std::exp(rng.Uniform(std::log(1.0), std::log(10.0 * 365 * kDay)));
    const double mean = pp::ConditionalMeanIncrement(lambda_s, alpha, dt);
    ASSERT_TRUE(std::isfinite(mean))
        << "lambda=" << lambda_s << " alpha=" << alpha << " dt=" << dt;
    EXPECT_GE(mean, 0.0);
    // The expected eventual mass of the subcritical cluster.
    const double bound = lambda_s / alpha;
    EXPECT_LE(mean, bound * (1.0 + 1e-12))
        << "lambda=" << lambda_s << " alpha=" << alpha << " dt=" << dt;
  }
}

TEST(ConditionalMeanProperty, MonotoneNondecreasingInHorizon) {
  Rng rng(0xC0FFEE02);
  for (int trial = 0; trial < kTrials; ++trial) {
    const double lambda_s = std::exp(rng.Uniform(std::log(1e-8), std::log(1e4)));
    const double alpha = std::exp(rng.Uniform(std::log(1e-9), std::log(1e-2)));
    const double dt1 = std::exp(rng.Uniform(std::log(1.0), std::log(365 * kDay)));
    const double dt2 = dt1 * rng.Uniform(1.0, 10.0);
    EXPECT_LE(pp::ConditionalMeanIncrement(lambda_s, alpha, dt1),
              pp::ConditionalMeanIncrement(lambda_s, alpha, dt2) * (1.0 + 1e-12))
        << "lambda=" << lambda_s << " alpha=" << alpha << " dt1=" << dt1
        << " dt2=" << dt2;
  }
}

TEST(ConditionalMeanProperty, ZeroHorizonAndZeroIntensity) {
  Rng rng(0xC0FFEE03);
  for (int trial = 0; trial < 200; ++trial) {
    const double alpha = std::exp(rng.Uniform(std::log(1e-9), std::log(1e-2)));
    EXPECT_EQ(pp::ConditionalMeanIncrement(0.0, alpha, rng.Uniform(0.0, kDay)), 0.0);
    EXPECT_EQ(pp::ConditionalMeanIncrement(rng.Uniform(0.0, 10.0), alpha, 0.0), 0.0);
  }
}

// -- Transfer-formula invariants of the trained predictor -----------------

/// Small single-reference-horizon model over a fixed-seed synthetic
/// dataset; shared by all transfer-formula property tests.
class TransferFormulaProperty : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GeneratorConfig config;
    config.num_pages = 10;
    config.num_posts = 80;
    config.base_mean_size = 40.0;
    config.seed = 1234;
    dataset_ = new datagen::SyntheticDataset(datagen::Generator(config).Generate());
    extractor_ = new features::FeatureExtractor(stream::TrackerConfig{});

    core::HawkesPredictorParams params;
    params.reference_horizons = {kDeltaStar};
    params.gbdt_count.num_trees = 20;
    params.gbdt_alpha.num_trees = 20;
    model_ = new core::HawkesPredictor(params);

    std::vector<size_t> indices;
    for (size_t i = 0; i < dataset_->cascades.size(); ++i) indices.push_back(i);
    core::ExampleSetOptions options;
    options.reference_horizons = {kDeltaStar};
    examples_ = new core::ExampleSet(
        core::BuildExampleSet(*dataset_, indices, *extractor_, options));
    model_->Fit(examples_->x, examples_->log1p_increments,
                examples_->alpha_targets);
  }

  static void TearDownTestSuite() {
    delete examples_;
    examples_ = nullptr;
    delete model_;
    model_ = nullptr;
    delete extractor_;
    extractor_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static constexpr double kDeltaStar = 1 * kDay;
  static datagen::SyntheticDataset* dataset_;
  static features::FeatureExtractor* extractor_;
  static core::HawkesPredictor* model_;
  static core::ExampleSet* examples_;
};

datagen::SyntheticDataset* TransferFormulaProperty::dataset_ = nullptr;
features::FeatureExtractor* TransferFormulaProperty::extractor_ = nullptr;
core::HawkesPredictor* TransferFormulaProperty::model_ = nullptr;
core::ExampleSet* TransferFormulaProperty::examples_ = nullptr;

TEST_F(TransferFormulaProperty, IdentityAtReferenceHorizon) {
  // At delta = delta* the transfer ratio is exactly 1, so the combined
  // prediction must reproduce the reference predictor's own output (up to
  // one divide and one multiply of rounding).
  for (size_t r = 0; r < examples_->x.num_rows(); ++r) {
    const float* row = examples_->x.Row(r);
    const double direct =
        std::max(std::expm1(model_->count_model(0).Predict(row)), 0.0);
    const double via_transfer = model_->PredictIncrement(row, kDeltaStar);
    EXPECT_NEAR(via_transfer, direct, 1e-12 * std::max(direct, 1.0))
        << "row " << r;
  }
}

TEST_F(TransferFormulaProperty, MonotoneNondecreasingInDelta) {
  Rng rng(0xFEED0001);
  const size_t rows = examples_->x.num_rows();
  ASSERT_GT(rows, 0u);
  for (int trial = 0; trial < kTrials; ++trial) {
    const float* row = examples_->x.Row(rng.UniformInt(rows));
    const double d1 = std::exp(rng.Uniform(std::log(kMinute), std::log(30 * kDay)));
    const double d2 = d1 * rng.Uniform(1.0, 8.0);
    const double inc1 = model_->PredictIncrement(row, d1);
    const double inc2 = model_->PredictIncrement(row, d2);
    EXPECT_LE(inc1, inc2 * (1.0 + 1e-12)) << "d1=" << d1 << " d2=" << d2;
  }
}

TEST_F(TransferFormulaProperty, BoundedByFinalIncrement) {
  Rng rng(0xFEED0002);
  const size_t rows = examples_->x.num_rows();
  for (int trial = 0; trial < kTrials; ++trial) {
    const float* row = examples_->x.Row(rng.UniformInt(rows));
    const double delta = std::exp(rng.Uniform(std::log(1.0), std::log(365 * kDay)));
    const double inc = model_->PredictIncrement(row, delta);
    const double final_inc = model_->PredictFinalIncrement(row);
    ASSERT_TRUE(std::isfinite(inc));
    EXPECT_GE(inc, 0.0);
    EXPECT_LE(inc, final_inc * (1.0 + 1e-12)) << "delta=" << delta;
  }
}

TEST_F(TransferFormulaProperty, ZeroHorizonPredictsZeroIncrement) {
  for (size_t r = 0; r < examples_->x.num_rows(); ++r) {
    EXPECT_EQ(model_->PredictIncrement(examples_->x.Row(r), 0.0), 0.0);
  }
}

}  // namespace
}  // namespace horizon
