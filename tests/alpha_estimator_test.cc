#include "core/alpha_estimator.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "pointprocess/exp_hawkes.h"

namespace horizon::core {
namespace {

TEST(MeanAlphaEstimateTest, ReciprocalOfMeanTime) {
  // Times {1, 2, 3}: mean 2 -> alpha 0.5.
  EXPECT_DOUBLE_EQ(MeanAlphaEstimate({1.0, 2.0, 3.0}), 0.5);
}

TEST(MeanAlphaEstimateTest, StartTimeShiftsOrigin) {
  AlphaEstimatorOptions options;
  options.start_time = 2.0;
  // Events after 2: {3, 6}; relative {1, 4}: mean 2.5.
  EXPECT_DOUBLE_EQ(MeanAlphaEstimate({1.0, 3.0, 6.0}, options), 1.0 / 2.5);
}

TEST(MeanAlphaEstimateTest, EmptyReturnsZero) {
  EXPECT_EQ(MeanAlphaEstimate({}), 0.0);
  AlphaEstimatorOptions options;
  options.start_time = 100.0;
  EXPECT_EQ(MeanAlphaEstimate({1.0, 2.0}, options), 0.0);
}

TEST(QuantileAlphaEstimateTest, MedianEstimator) {
  // 4 events; gamma = 0.5 -> k = 2 -> T_gamma = 4.0 -> alpha = 0.25.
  AlphaEstimatorOptions options;
  options.gamma = 0.5;
  EXPECT_DOUBLE_EQ(QuantileAlphaEstimate({2.0, 4.0, 8.0, 16.0}, options), 0.25);
}

TEST(QuantileAlphaEstimateTest, LogFactorRestoresEquation6) {
  AlphaEstimatorOptions plain;
  plain.gamma = 0.5;
  AlphaEstimatorOptions with_factor = plain;
  with_factor.include_log_factor = true;
  const std::vector<double> times = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(QuantileAlphaEstimate(times, with_factor),
              QuantileAlphaEstimate(times, plain) * std::log(2.0), 1e-12);
}

TEST(QuantileAlphaEstimateTest, HighGammaUsesLateEvent) {
  AlphaEstimatorOptions options;
  options.gamma = 0.99;
  // k = ceil(0.99 * 4) = 4 -> T = 16.
  EXPECT_DOUBLE_EQ(QuantileAlphaEstimate({2.0, 4.0, 8.0, 16.0}, options), 1.0 / 16.0);
}

TEST(QuantileAlphaEstimateTest, SingleEvent) {
  AlphaEstimatorOptions options;
  options.gamma = 0.5;
  EXPECT_DOUBLE_EQ(QuantileAlphaEstimate({5.0}, options), 0.2);
}

TEST(EstimateAlphaTest, DispatchesOnKind) {
  const std::vector<double> times = {1.0, 2.0, 3.0};
  EXPECT_EQ(EstimateAlpha(AlphaEstimatorKind::kMeanValue, times),
            MeanAlphaEstimate(times));
  EXPECT_EQ(EstimateAlpha(AlphaEstimatorKind::kQuantileValue, times),
            QuantileAlphaEstimate(times));
  EXPECT_STREQ(AlphaEstimatorKindName(AlphaEstimatorKind::kMeanValue), "mean");
}

// Property sweep: on simulated exponential-kernel Hawkes processes the
// mean-value estimator must track the true alpha across a decade of values.
class AlphaRecoveryTest : public ::testing::TestWithParam<double> {};

TEST_P(AlphaRecoveryTest, MeanEstimatorTracksTrueAlpha) {
  const double true_alpha = GetParam();
  const double rho1 = 0.5;
  const double beta = true_alpha / (1.0 - rho1);
  pp::ExpHawkesParams params;
  params.beta = beta;
  params.lambda0 = 200.0 * true_alpha;  // expected 200 events
  params.marks = std::make_shared<pp::LogNormalMark>(rho1, 0.8);
  pp::SimulateOptions options;
  options.horizon = 80.0 / true_alpha;

  Rng rng(1234 + static_cast<uint64_t>(1000 * true_alpha));
  std::vector<double> ratios;
  for (int rep = 0; rep < 60; ++rep) {
    const auto events = pp::SimulateExpHawkes(params, options, rng);
    if (events.size() < 20) continue;
    std::vector<double> times;
    for (const auto& e : events) times.push_back(e.time);
    const double est = MeanAlphaEstimate(times);
    ratios.push_back(est / true_alpha);
  }
  ASSERT_GT(ratios.size(), 30u);
  const double median_ratio = Median(ratios);
  // The estimator is biased upward a bit (early events weigh the mean);
  // require the right order of magnitude and scale-invariance.
  EXPECT_GT(median_ratio, 0.5);
  EXPECT_LT(median_ratio, 2.5);
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, AlphaRecoveryTest,
                         ::testing::Values(0.05, 0.2, 1.0, 4.0));

TEST(AlphaEstimatorComparisonTest, MedianEstimatorLargerOnSimulatedCascades) {
  // Fig. 6's observation: the median(quantile)-value estimator tends to be
  // larger than the mean-value estimator.
  pp::ExpHawkesParams params;
  params.beta = 2.0;
  params.lambda0 = 150.0;
  params.marks = std::make_shared<pp::LogNormalMark>(0.5, 0.8);
  pp::SimulateOptions options;
  options.horizon = 50.0;
  Rng rng(999);
  int median_larger = 0, total = 0;
  for (int rep = 0; rep < 100; ++rep) {
    const auto events = pp::SimulateExpHawkes(params, options, rng);
    if (events.size() < 10) continue;
    std::vector<double> times;
    for (const auto& e : events) times.push_back(e.time);
    AlphaEstimatorOptions opt;
    opt.gamma = 0.5;
    if (QuantileAlphaEstimate(times, opt) > MeanAlphaEstimate(times)) ++median_larger;
    ++total;
  }
  EXPECT_GT(median_larger, total / 2);
}

}  // namespace
}  // namespace horizon::core
