// Contract-enforcement tests: the library uses CHECK macros (no
// exceptions), so violated preconditions must abort loudly rather than
// corrupt state.  These death tests pin the most safety-critical
// contracts.
#include <memory>

#include <gtest/gtest.h>

#include "core/alpha_estimator.h"
#include "core/hawkes_predictor.h"
#include "core/relative_growth.h"
#include "eval/metrics.h"
#include "pointprocess/exp_hawkes.h"
#include "stream/cascade_tracker.h"
#include "stream/exponential_histogram.h"

namespace horizon {
namespace {

TEST(ContractsTest, ExponentialHistogramRejectsOutOfOrderEvents) {
  stream::ExponentialHistogram hist(10.0, 0.1);
  hist.Add(5.0);
  EXPECT_DEATH(hist.Add(4.0), "CHECK failed");
}

TEST(ContractsTest, ExponentialHistogramRejectsBadParams) {
  EXPECT_DEATH(stream::ExponentialHistogram(0.0, 0.1), "CHECK failed");
  EXPECT_DEATH(stream::ExponentialHistogram(10.0, 0.0), "CHECK failed");
}

TEST(ContractsTest, CascadeTrackerRejectsEventsBeforeCreation) {
  stream::CascadeTracker tracker(100.0, stream::TrackerConfig{});
  EXPECT_DEATH(tracker.Observe(stream::EngagementType::kView, 99.0),
               "CHECK failed");
}

TEST(ContractsTest, CascadeTrackerRejectsSnapshotBeforeCreation) {
  stream::CascadeTracker tracker(100.0, stream::TrackerConfig{});
  EXPECT_DEATH(tracker.Snapshot(50.0), "CHECK failed");
}

TEST(ContractsTest, HawkesPredictorRejectsUnorderedReferences) {
  core::HawkesPredictorParams params;
  params.reference_horizons = {kDay, 6 * kHour};  // not increasing
  EXPECT_DEATH(core::HawkesPredictor{params}, "CHECK failed");
}

TEST(ContractsTest, HawkesPredictorRejectsEmptyReferences) {
  core::HawkesPredictorParams params;
  params.reference_horizons = {};
  EXPECT_DEATH(core::HawkesPredictor{params}, "CHECK failed");
}

TEST(ContractsTest, HawkesPredictorFitRejectsMisalignedTargets) {
  core::HawkesPredictorParams params;
  params.reference_horizons = {kDay};
  core::HawkesPredictor model(params);
  gbdt::DataMatrix x(3, 2);
  // Two target vectors for one reference horizon.
  EXPECT_DEATH(model.Fit(x, {{1, 2, 3}, {1, 2, 3}}, {1, 2, 3}), "CHECK failed");
  // Alpha targets with the wrong arity.
  EXPECT_DEATH(model.Fit(x, {{1, 2, 3}}, {1, 2}), "CHECK failed");
}

TEST(ContractsTest, SimulatorRejectsSupercriticalMarks) {
  pp::ExpHawkesParams params;
  params.lambda0 = 1.0;
  params.beta = 1.0;
  params.marks = std::make_shared<pp::ConstantMark>(1.5);  // mu >= 1
  pp::SimulateOptions options;
  Rng rng(1);
  EXPECT_DEATH(pp::SimulateExpHawkes(params, options, rng), "CHECK failed");
}

TEST(ContractsTest, MetricsRejectMisalignedVectors) {
  EXPECT_DEATH(eval::MedianApe({1.0, 2.0}, {1.0}), "CHECK failed");
  EXPECT_DEATH(eval::KendallTau({1.0}, {1.0, 2.0}), "CHECK failed");
}

TEST(ContractsTest, RelativeGrowthRejectsBadFactor) {
  EXPECT_DEATH(core::PredictRelativeGrowth(1.0, 1.0, 1.0, /*c=*/1.0),
               "CHECK failed");
  EXPECT_DEATH(core::ChiCorrection(/*n_s=*/0.0, 2.0, 1.0, 0.1), "CHECK failed");
}

TEST(ContractsTest, QuantileEstimatorRejectsBadGamma) {
  core::AlphaEstimatorOptions options;
  options.gamma = 1.0;
  EXPECT_DEATH(core::QuantileAlphaEstimate({1.0, 2.0}, options), "CHECK failed");
}

}  // namespace
}  // namespace horizon
