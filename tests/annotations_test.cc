// Tests for src/common/annotations.h: the annotated Mutex / MutexLock /
// CondVar wrappers must behave like the std primitives they wrap, and the
// annotation macros must compile away to nothing on non-clang compilers.
// (This binary building at all under gcc IS half the test; the clang
// -Werror=thread-safety CI job and ci/check_tsa_negative.sh cover the
// other half -- that the annotations actually reject unlocked access.)
#include "common/annotations.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace horizon {
namespace {

// The macros must expand to valid (possibly empty) attribute positions on
// any compiler this repo supports.  A type exercising every macro:
class AnnotatedEverything {
 public:
  void Locked() HORIZON_REQUIRES(mu_) { ++guarded_; }
  void Lock() HORIZON_ACQUIRE(mu_) { mu_.Lock(); }
  void Unlock() HORIZON_RELEASE(mu_) { mu_.Unlock(); }
  bool TryLock() HORIZON_TRY_ACQUIRE(true, mu_) { return mu_.TryLock(); }
  void Outside() HORIZON_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++guarded_;
  }
  Mutex& mutex() HORIZON_RETURN_CAPABILITY(mu_) { return mu_; }
  int Unchecked() HORIZON_NO_THREAD_SAFETY_ANALYSIS { return guarded_; }

 private:
  Mutex mu_;
  int guarded_ HORIZON_GUARDED_BY(mu_) = 0;
  int* ptr_guarded_ HORIZON_PT_GUARDED_BY(mu_) = nullptr;
};

// Exercises every macro position with real lock traffic.  A free function
// rather than inline TEST body so the acquire/release pairing is visible
// to the analysis without gtest macro expansion in between.
int DriveAnnotatedEverything() {
  AnnotatedEverything a;
  a.Outside();
  a.Lock();
  a.Locked();
  a.Unlock();
  if (a.TryLock()) {
    a.mutex().Unlock();
  }
  return a.Unchecked();
}

TEST(AnnotationsTest, MacrosCompileAsNoOpOnThisCompiler) {
  EXPECT_EQ(DriveAnnotatedEverything(), 2);
#if !defined(__clang__)
  // On gcc the attribute macro must vanish entirely.
  static_assert(sizeof(Mutex) == sizeof(std::mutex),
                "annotated Mutex must add no state over std::mutex");
#endif
}

TEST(AnnotationsTest, MutexProvidesExclusion) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

// Deliberately juggles raw TryLock/Unlock across threads; the analysis
// cannot follow a try-lock result through std::thread, so opt this one
// helper out (the behavior itself is what the test checks).
int ProbeTryLockContention() HORIZON_NO_THREAD_SAFETY_ANALYSIS {
  Mutex mu;
  if (!mu.TryLock()) return -1;  // uncontended try-lock must succeed
  // Held by this thread: another thread must fail to acquire.
  std::atomic<int> observed{-1};
  std::thread probe([&]() HORIZON_NO_THREAD_SAFETY_ANALYSIS {
    if (mu.TryLock()) {
      mu.Unlock();
      observed = 1;
    } else {
      observed = 0;
    }
  });
  probe.join();
  mu.Unlock();
  return observed.load();
}

TEST(AnnotationsTest, TryLockReportsContention) {
  EXPECT_EQ(ProbeTryLockContention(), 0);
}

TEST(AnnotationsTest, CondVarWaitAndNotifyOne) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int seen = 0;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    seen = 1;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_EQ(seen, 1);
}

TEST(AnnotationsTest, CondVarNotifyAllReleasesAllWaiters) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woke = 0;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      ++woke;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (auto& th : waiters) th.join();
  EXPECT_EQ(woke, kWaiters);
}

// Wait must reacquire the mutex before returning: a waiter that resumes
// holds the lock, so its increment cannot race the notifier's.
TEST(AnnotationsTest, WaitReacquiresMutexBeforeReturning) {
  Mutex mu;
  CondVar cv;
  int stage = 0;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (stage != 1) cv.Wait(mu);
    stage = 2;
  });
  {
    MutexLock lock(mu);
    stage = 1;
  }
  cv.NotifyOne();
  waiter.join();
  MutexLock lock(mu);
  EXPECT_EQ(stage, 2);
}

}  // namespace
}  // namespace horizon
