#include "serving/prediction_service.h"

#include <algorithm>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "common/file_io.h"
#include "core/trainer.h"
#include "eval/split.h"

namespace horizon::serving {
namespace {

// Shared fixture: a small trained model plus its extractor and dataset.
class PredictionServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GeneratorConfig config;
    config.num_pages = 40;
    config.num_posts = 250;
    config.base_mean_size = 80.0;
    config.seed = 55;
    dataset_ = new datagen::SyntheticDataset(datagen::Generator(config).Generate());
    extractor_ = new features::FeatureExtractor(stream::TrackerConfig{});

    std::vector<size_t> indices;
    for (size_t i = 0; i < dataset_->cascades.size(); ++i) indices.push_back(i);
    core::ExampleSetOptions options;
    options.reference_horizons = {6 * kHour, 1 * kDay};
    const auto examples =
        core::BuildExampleSet(*dataset_, indices, *extractor_, options);

    core::HawkesPredictorParams params;
    params.reference_horizons = options.reference_horizons;
    params.gbdt_count.num_trees = 40;
    params.gbdt_alpha.num_trees = 40;
    model_ = new core::HawkesPredictor(params);
    model_->Fit(examples.x, examples.log1p_increments, examples.alpha_targets);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete extractor_;
    delete dataset_;
  }

  PredictionService MakeService(ServiceConfig config = {}) const {
    return PredictionService(model_, extractor_, config);
  }

  static datagen::SyntheticDataset* dataset_;
  static features::FeatureExtractor* extractor_;
  static core::HawkesPredictor* model_;
};

datagen::SyntheticDataset* PredictionServiceTest::dataset_ = nullptr;
features::FeatureExtractor* PredictionServiceTest::extractor_ = nullptr;
core::HawkesPredictor* PredictionServiceTest::model_ = nullptr;

TEST_F(PredictionServiceTest, RegisterAndQueryLifecycle) {
  PredictionService service = MakeService();
  const auto& cascade = dataset_->cascades[0];
  const auto& page = dataset_->PageOf(cascade.post);

  EXPECT_FALSE(service.HasItem(1));
  EXPECT_TRUE(service.RegisterItem(1, 0.0, page, cascade.post));
  EXPECT_FALSE(service.RegisterItem(1, 0.0, page, cascade.post));  // duplicate
  EXPECT_TRUE(service.HasItem(1));
  EXPECT_EQ(service.LiveItems(), 1u);

  size_t ingested = 0;
  for (const auto& e : cascade.views) {
    if (e.time >= 6 * kHour) break;
    EXPECT_TRUE(service.Ingest(1, stream::EngagementType::kView, e.time));
    ++ingested;
  }
  // Drain barrier: under HORIZON_ASYNC_INGEST=on the events are queued,
  // and the query/stats assertions below are linearization-point checks.
  ASSERT_TRUE(service.Flush().ok());
  const auto result = service.Query(1, 6 * kHour, 1 * kDay);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->observed_views, static_cast<double>(ingested));
  EXPECT_GE(result->predicted_views, result->observed_views);
  EXPECT_GT(result->alpha, 0.0);

  EXPECT_EQ(service.stats().items_registered, 1u);
  EXPECT_EQ(service.stats().events_ingested, ingested);
  EXPECT_EQ(service.stats().queries_answered, 1u);
}

TEST_F(PredictionServiceTest, IngestUnknownItemDropped) {
  PredictionService service = MakeService();
  EXPECT_FALSE(service.Ingest(42, stream::EngagementType::kView, 1.0));
  EXPECT_FALSE(service.Query(42, 1.0, kDay).has_value());
}

TEST_F(PredictionServiceTest, QueryMatchesOfflineReplay) {
  // The service's online answer must equal the offline replay-based
  // prediction used in the experiments.
  PredictionService service = MakeService();
  const auto& cascade = dataset_->cascades[3];
  const auto& page = dataset_->PageOf(cascade.post);
  ASSERT_TRUE(service.RegisterItem(7, 0.0, page, cascade.post).ok());
  const double s = 12 * kHour;
  for (const auto& e : cascade.views) {
    if (e.time >= s) break;
    ASSERT_TRUE(service.Ingest(7, stream::EngagementType::kView, e.time).ok());
  }
  for (double t : cascade.share_times) {
    if (t >= s) break;
    ASSERT_TRUE(service.Ingest(7, stream::EngagementType::kShare, t).ok());
  }
  for (double t : cascade.comment_times) {
    if (t >= s) break;
    ASSERT_TRUE(service.Ingest(7, stream::EngagementType::kComment, t).ok());
  }
  for (double t : cascade.reaction_times) {
    if (t >= s) break;
    ASSERT_TRUE(service.Ingest(7, stream::EngagementType::kReaction, t).ok());
  }
  ASSERT_TRUE(service.Flush().ok());  // async drain barrier (no-op in sync)
  const auto online = service.Query(7, s, 2 * kDay);
  ASSERT_TRUE(online.has_value());

  const auto snapshot = extractor_->ReplaySnapshot(cascade, s);
  const auto row = extractor_->Extract(page, cascade.post, snapshot);
  const double offline = model_->PredictCount(
      row.data(), static_cast<double>(snapshot.views().total), 2 * kDay);
  EXPECT_DOUBLE_EQ(online->predicted_views, offline);
}

TEST_F(PredictionServiceTest, TopKRanksByPredictedIncrement) {
  PredictionService service = MakeService();
  const double s = 6 * kHour;
  for (int64_t i = 0; i < 20; ++i) {
    const auto& cascade = dataset_->cascades[static_cast<size_t>(i)];
    ASSERT_TRUE(service.RegisterItem(i, 0.0, dataset_->PageOf(cascade.post), cascade.post).ok());
    for (const auto& e : cascade.views) {
      if (e.time >= s) break;
      ASSERT_TRUE(service.Ingest(i, stream::EngagementType::kView, e.time).ok());
    }
  }
  ASSERT_TRUE(service.Flush().ok());  // async drain barrier (no-op in sync)
  const auto top = service.TopK(s, 1 * kDay, 5);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
  // The leader must match the individually queried maximum.
  double best = -1.0;
  for (int64_t i = 0; i < 20; ++i) {
    const auto q = service.Query(i, s, 1 * kDay);
    best = std::max(best, q->predicted_views - q->observed_views);
  }
  EXPECT_DOUBLE_EQ(top[0].second, best);
}

TEST_F(PredictionServiceTest, RetiresIdleItems) {
  ServiceConfig config;
  config.idle_retirement_age = 2 * kDay;
  PredictionService service = MakeService(config);
  const auto& cascade = dataset_->cascades[0];
  const auto& page = dataset_->PageOf(cascade.post);
  ASSERT_TRUE(service.RegisterItem(1, 0.0, page, cascade.post).ok());   // will go idle
  ASSERT_TRUE(service.RegisterItem(2, 0.0, page, cascade.post).ok());   // stays active
  ASSERT_TRUE(service.Ingest(1, stream::EngagementType::kView, 1 * kHour).ok());
  ASSERT_TRUE(service.Ingest(2, stream::EngagementType::kView, 1 * kHour).ok());
  ASSERT_TRUE(service.Ingest(2, stream::EngagementType::kView, 5 * kDay - kHour).ok());

  const size_t retired = service.RetireDeadItems(5 * kDay);
  EXPECT_EQ(retired, 1u);
  EXPECT_FALSE(service.HasItem(1));
  EXPECT_TRUE(service.HasItem(2));
  EXPECT_EQ(service.stats().items_retired, 1u);
}

TEST_F(PredictionServiceTest, NotYetLiveItemsAreInvisible) {
  // Items created in the future must not be queryable, must be skipped by
  // TopK, and must not be retired before they go live.
  PredictionService service = MakeService();
  const auto& cascade = dataset_->cascades[0];
  const auto& page = dataset_->PageOf(cascade.post);
  ASSERT_TRUE(service.RegisterItem(1, /*creation_time=*/10 * kDay, page, cascade.post).ok());
  EXPECT_FALSE(service.Query(1, 5 * kDay, kDay).has_value());
  EXPECT_TRUE(service.TopK(5 * kDay, kDay, 3).empty());
  EXPECT_EQ(service.RetireDeadItems(5 * kDay), 0u);
  EXPECT_TRUE(service.HasItem(1));
  // Once live, it becomes queryable.
  EXPECT_TRUE(service.Query(1, 11 * kDay, kDay).has_value());
}

TEST_F(PredictionServiceTest, RetiresNeverViewedItems) {
  ServiceConfig config;
  config.idle_retirement_age = 1 * kDay;
  PredictionService service = MakeService(config);
  const auto& cascade = dataset_->cascades[0];
  ASSERT_TRUE(service.RegisterItem(9, 0.0, dataset_->PageOf(cascade.post), cascade.post).ok());
  EXPECT_EQ(service.RetireDeadItems(2 * kDay), 1u);
  EXPECT_EQ(service.LiveItems(), 0u);
}

// -- Typed Status surface ------------------------------------------------

TEST_F(PredictionServiceTest, RegisterDuplicateIsAlreadyExists) {
  PredictionService service = MakeService();
  const auto& cascade = dataset_->cascades[0];
  const auto& page = dataset_->PageOf(cascade.post);
  ASSERT_TRUE(service.RegisterItem(1, 0.0, page, cascade.post).ok());
  const Status dup = service.RegisterItem(1, 0.0, page, cascade.post);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST_F(PredictionServiceTest, IngestUnknownIsNotFound) {
  PredictionService service = MakeService();
  const Status s = service.Ingest(42, stream::EngagementType::kView, 1.0);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(PredictionServiceTest, QueryUnknownIsNotFound) {
  PredictionService service = MakeService();
  const auto result = service.Query(42, 1.0, kDay);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.code(), StatusCode::kNotFound);
}

TEST_F(PredictionServiceTest, QueryFutureItemIsNotYetLive) {
  PredictionService service = MakeService();
  const auto& cascade = dataset_->cascades[0];
  ASSERT_TRUE(service.RegisterItem(1, /*creation_time=*/10 * kDay,
                       dataset_->PageOf(cascade.post), cascade.post).ok());
  const auto result = service.Query(1, 5 * kDay, kDay);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.code(), StatusCode::kNotYetLive);
}

TEST_F(PredictionServiceTest, BatchQueryRejectsBadArguments) {
  PredictionService service = MakeService();
  QueryRequest negative_delta;
  negative_delta.ids = {1};
  negative_delta.s = kHour;
  negative_delta.delta = -1.0;
  EXPECT_EQ(service.BatchQuery(negative_delta).code(),
            StatusCode::kInvalidArgument);

  QueryRequest empty;  // no ids and no top_k: neither lookup nor scan
  empty.s = kHour;
  empty.delta = kDay;
  EXPECT_EQ(service.BatchQuery(empty).code(), StatusCode::kInvalidArgument);

  QueryRequest nan_s;
  nan_s.ids = {1};
  nan_s.s = std::nan("");
  nan_s.delta = kDay;
  EXPECT_EQ(service.BatchQuery(nan_s).code(), StatusCode::kInvalidArgument);
}

TEST_F(PredictionServiceTest, BatchQueryMixesResultsAndTypedErrors) {
  PredictionService service = MakeService();
  const double s = 6 * kHour;
  const auto& cascade = dataset_->cascades[0];
  const auto& page = dataset_->PageOf(cascade.post);
  ASSERT_TRUE(service.RegisterItem(1, 0.0, page, cascade.post).ok());
  ASSERT_TRUE(service.RegisterItem(2, /*creation_time=*/10 * kDay, page, cascade.post).ok());
  for (const auto& e : cascade.views) {
    if (e.time >= s) break;
    ASSERT_TRUE(service.Ingest(1, stream::EngagementType::kView, e.time).ok());
  }

  QueryRequest request;
  request.ids = {1, 2, 99};
  request.s = s;
  request.delta = kDay;
  const auto response = service.BatchQuery(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->results.size(), 1u);
  EXPECT_EQ(response->results[0].item_id, 1);
  EXPECT_GT(response->results[0].prediction.predicted_views, 0.0);

  ASSERT_EQ(response->errors.size(), 2u);
  StatusCode code_for_2 = StatusCode::kOk, code_for_99 = StatusCode::kOk;
  for (const auto& e : response->errors) {
    if (e.item_id == 2) code_for_2 = e.status.code();
    if (e.item_id == 99) code_for_99 = e.status.code();
  }
  EXPECT_EQ(code_for_2, StatusCode::kNotYetLive);
  EXPECT_EQ(code_for_99, StatusCode::kNotFound);
}

TEST_F(PredictionServiceTest, BatchQueryTopKOverIdsRanksAndTruncates) {
  PredictionService service = MakeService();
  const double s = 6 * kHour;
  for (int64_t i = 0; i < 12; ++i) {
    const auto& cascade = dataset_->cascades[static_cast<size_t>(i)];
    ASSERT_TRUE(service.RegisterItem(i, 0.0, dataset_->PageOf(cascade.post), cascade.post).ok());
    for (const auto& e : cascade.views) {
      if (e.time >= s) break;
      ASSERT_TRUE(service.Ingest(i, stream::EngagementType::kView, e.time).ok());
    }
  }
  QueryRequest request;
  for (int64_t i = 0; i < 12; ++i) request.ids.push_back(i);
  request.s = s;
  request.delta = kDay;
  request.top_k = 4;
  const auto response = service.BatchQuery(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->results.size(), 4u);
  for (size_t i = 1; i < response->results.size(); ++i) {
    const auto& prev = response->results[i - 1].prediction;
    const auto& cur = response->results[i].prediction;
    EXPECT_GE(prev.predicted_views - prev.observed_views,
              cur.predicted_views - cur.observed_views);
  }
}

TEST_F(PredictionServiceTest, BatchQueryScanMatchesTopKShim) {
  PredictionService service = MakeService();
  const double s = 6 * kHour;
  for (int64_t i = 0; i < 10; ++i) {
    const auto& cascade = dataset_->cascades[static_cast<size_t>(i)];
    ASSERT_TRUE(service.RegisterItem(i, 0.0, dataset_->PageOf(cascade.post), cascade.post).ok());
    for (const auto& e : cascade.views) {
      if (e.time >= s) break;
      ASSERT_TRUE(service.Ingest(i, stream::EngagementType::kView, e.time).ok());
    }
  }
  QueryRequest scan;
  scan.s = s;
  scan.delta = kDay;
  scan.top_k = 3;
  const auto response = service.BatchQuery(scan);
  ASSERT_TRUE(response.ok());
  const auto top = service.TopK(s, kDay, 3);
  ASSERT_EQ(response->results.size(), top.size());
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(response->results[i].item_id, top[i].first);
    EXPECT_DOUBLE_EQ(response->results[i].prediction.predicted_views -
                         response->results[i].prediction.observed_views,
                     top[i].second);
  }
}

TEST_F(PredictionServiceTest, ScanOnEmptyServiceReturnsNothing) {
  PredictionService service = MakeService();
  QueryRequest scan;
  scan.s = 6 * kHour;
  scan.delta = kDay;
  scan.top_k = 5;
  const auto response = service.BatchQuery(scan);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->results.empty());
  EXPECT_TRUE(response->errors.empty());
  EXPECT_EQ(service.stats().queries_answered, 0u);
}

TEST_F(PredictionServiceTest, ScanWithKBeyondLiveItemsReturnsAll) {
  PredictionService service = MakeService();
  const double s = 6 * kHour;
  for (int64_t i = 0; i < 4; ++i) {
    const auto& cascade = dataset_->cascades[static_cast<size_t>(i)];
    ASSERT_TRUE(service.RegisterItem(i, 0.0, dataset_->PageOf(cascade.post), cascade.post).ok());
    for (const auto& e : cascade.views) {
      if (e.time >= s) break;
      ASSERT_TRUE(service.Ingest(i, stream::EngagementType::kView, e.time).ok());
    }
  }
  QueryRequest scan;
  scan.s = s;
  scan.delta = kDay;
  scan.top_k = 1000;  // far beyond the 4 live items
  const auto response = service.BatchQuery(scan);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->results.size(), 4u);
  EXPECT_TRUE(response->errors.empty());
  // Still ranked: increments non-increasing over the full result set.
  for (size_t i = 1; i < response->results.size(); ++i) {
    const auto inc = [](const ItemPrediction& p) {
      return p.prediction.predicted_views - p.prediction.observed_views;
    };
    EXPECT_GE(inc(response->results[i - 1]), inc(response->results[i]));
  }
}

TEST_F(PredictionServiceTest, ScanSkipsItemsNotYetLive) {
  PredictionService service = MakeService();
  const double s = kHour;
  // Every registered item goes live AFTER the scan's prediction time; the
  // scan must skip them silently (no results, no errors) rather than
  // reporting kNotYetLive per item.
  for (int64_t i = 0; i < 3; ++i) {
    const auto& cascade = dataset_->cascades[static_cast<size_t>(i)];
    ASSERT_TRUE(service.RegisterItem(i, s + kHour, dataset_->PageOf(cascade.post),
                         cascade.post).ok());
  }
  QueryRequest scan;
  scan.s = s;
  scan.delta = kDay;
  scan.top_k = 10;
  const auto response = service.BatchQuery(scan);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->results.empty());
  EXPECT_TRUE(response->errors.empty());
  // The same ids through the by-ids path DO report the typed error.
  QueryRequest by_ids;
  by_ids.ids = {0, 1, 2};
  by_ids.s = s;
  by_ids.delta = kDay;
  const auto typed = service.BatchQuery(by_ids);
  ASSERT_TRUE(typed.ok());
  EXPECT_EQ(typed->errors.size(), 3u);
  for (const auto& e : typed->errors) {
    EXPECT_EQ(e.status.code(), StatusCode::kNotYetLive);
  }
}

TEST_F(PredictionServiceTest, ValidateRejectsBadConfigs) {
  ServiceConfig bad_shards;
  bad_shards.num_shards = 0;
  EXPECT_EQ(bad_shards.Validate().code(), StatusCode::kInvalidArgument);

  ServiceConfig bad_age;
  bad_age.idle_retirement_age = 0.0;
  EXPECT_EQ(bad_age.Validate().code(), StatusCode::kInvalidArgument);

  ServiceConfig bad_threshold;
  bad_threshold.death_probability_threshold = 1.5;
  EXPECT_EQ(bad_threshold.Validate().code(), StatusCode::kInvalidArgument);

  // NaN fails the positivity check, not a comparison-order accident.
  ServiceConfig nan_age;
  nan_age.idle_retirement_age = std::nan("");
  EXPECT_EQ(nan_age.Validate().code(), StatusCode::kInvalidArgument);

  ServiceConfig zero_threshold;
  zero_threshold.death_probability_threshold = 0.0;  // (0, 1] excludes 0
  EXPECT_EQ(zero_threshold.Validate().code(), StatusCode::kInvalidArgument);

  ServiceConfig no_windows;
  no_windows.tracker.window_lengths.clear();
  EXPECT_EQ(no_windows.Validate().code(), StatusCode::kInvalidArgument);

  ServiceConfig no_landmarks;
  no_landmarks.tracker.landmark_ages.clear();
  EXPECT_EQ(no_landmarks.Validate().code(), StatusCode::kInvalidArgument);

  // A tracker layout that disagrees with the extractor's is a config
  // mismatch: features would be computed against the wrong windows.
  ServiceConfig skewed;
  skewed.tracker.window_lengths.push_back(99 * kDay);
  EXPECT_EQ(skewed.Validate(extractor_).code(), StatusCode::kConfigMismatch);

  // So are EWMA constants that differ only in the decay parameters.
  ServiceConfig skewed_tau;
  skewed_tau.tracker.ewma_tau *= 2.0;
  EXPECT_EQ(skewed_tau.Validate(extractor_).code(), StatusCode::kConfigMismatch);

  EXPECT_TRUE(ServiceConfig{}.Validate(extractor_).ok());
  // Without an extractor only the intrinsic checks run.
  EXPECT_TRUE(skewed.Validate().ok());
}

TEST_F(PredictionServiceTest, RestoreReportsTypedFailures) {
  const std::string dir =
      ::testing::TempDir() + "horizon_serving_status_restore";
  io::RemoveTree(dir);

  // No checkpoint at all: kNotFound.
  PredictionService service = MakeService();
  EXPECT_EQ(service.Restore(dir).code(), StatusCode::kNotFound);

  // A CURRENT pointer naming a missing/invalid checkpoint: kCorruption.
  ASSERT_TRUE(io::EnsureDir(dir).ok());
  ASSERT_TRUE(io::WriteFileAtomic(dir + "/CURRENT", "not-a-checkpoint\n").ok());
  EXPECT_EQ(service.Restore(dir).code(), StatusCode::kCorruption);
  io::RemoveTree(dir);
}

TEST_F(PredictionServiceTest, RestoreUnderDifferentLayoutIsConfigMismatch) {
  const std::string dir =
      ::testing::TempDir() + "horizon_serving_status_mismatch";
  io::RemoveTree(dir);
  {
    PredictionService writer = MakeService();
    const auto& cascade = dataset_->cascades[0];
    ASSERT_TRUE(writer.RegisterItem(1, 0.0, dataset_->PageOf(cascade.post), cascade.post).ok());
    ASSERT_TRUE(writer.Ingest(1, stream::EngagementType::kView, kHour).ok());
    ASSERT_TRUE(writer.Checkpoint(dir).ok());
  }
  // A reader configured with an extra tracking window cannot adopt the
  // checkpointed tracker state.
  ServiceConfig skewed;
  skewed.tracker.window_lengths.push_back(99 * kDay);
  const features::FeatureExtractor skewed_extractor(skewed.tracker);
  PredictionService reader(model_, &skewed_extractor, skewed);
  EXPECT_EQ(reader.Restore(dir).code(), StatusCode::kConfigMismatch);
  io::RemoveTree(dir);
}

TEST_F(PredictionServiceTest, ErrorCountersTrackTypedFailures) {
  // A private registry isolates this service's instruments.
  obs::MetricsRegistry registry;
  ServiceConfig config;
  config.metrics = &registry;
  PredictionService service = MakeService(config);

  (void)service.Query(404, kHour, kDay);                       // not_found
  (void)service.Ingest(404, stream::EngagementType::kView, 1.0);
  QueryRequest bad;
  bad.ids = {404};
  bad.s = kHour;
  bad.delta = -1.0;
  (void)service.BatchQuery(bad);                               // invalid_argument

  EXPECT_EQ(
      registry.GetCounter("horizon_serving_errors_not_found_total")->Value(),
      2u);
  EXPECT_EQ(registry.GetCounter("horizon_serving_errors_invalid_argument_total")
                ->Value(),
            1u);

  const auto& cascade = dataset_->cascades[0];
  ASSERT_TRUE(service.RegisterItem(7, 0.0, dataset_->PageOf(cascade.post), cascade.post).ok());
  ASSERT_TRUE(service.Ingest(7, stream::EngagementType::kView, kHour).ok());
  ASSERT_TRUE(service.Flush().ok());  // async drain barrier (no-op in sync)
  (void)service.Query(7, 6 * kHour, kDay);
  EXPECT_EQ(registry.GetCounter("horizon_serving_items_registered_total")->Value(),
            1u);
  EXPECT_EQ(registry.GetCounter("horizon_serving_events_ingested_total")->Value(),
            1u);
  EXPECT_EQ(registry.GetCounter("horizon_serving_queries_total")->Value(), 1u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("horizon_serving_live_items")->Value(),
                   1.0);
  // The query latency histogram saw the answered query.
  EXPECT_GE(registry.GetHistogram("horizon_serving_query_latency_seconds")
                ->Count(),
            1u);
}

}  // namespace
}  // namespace horizon::serving
