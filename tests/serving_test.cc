#include "serving/prediction_service.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "eval/split.h"

namespace horizon::serving {
namespace {

// Shared fixture: a small trained model plus its extractor and dataset.
class PredictionServiceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::GeneratorConfig config;
    config.num_pages = 40;
    config.num_posts = 250;
    config.base_mean_size = 80.0;
    config.seed = 55;
    dataset_ = new datagen::SyntheticDataset(datagen::Generator(config).Generate());
    extractor_ = new features::FeatureExtractor(stream::TrackerConfig{});

    std::vector<size_t> indices;
    for (size_t i = 0; i < dataset_->cascades.size(); ++i) indices.push_back(i);
    core::ExampleSetOptions options;
    options.reference_horizons = {6 * kHour, 1 * kDay};
    const auto examples =
        core::BuildExampleSet(*dataset_, indices, *extractor_, options);

    core::HawkesPredictorParams params;
    params.reference_horizons = options.reference_horizons;
    params.gbdt_count.num_trees = 40;
    params.gbdt_alpha.num_trees = 40;
    model_ = new core::HawkesPredictor(params);
    model_->Fit(examples.x, examples.log1p_increments, examples.alpha_targets);
  }

  static void TearDownTestSuite() {
    delete model_;
    delete extractor_;
    delete dataset_;
  }

  PredictionService MakeService(ServiceConfig config = {}) const {
    return PredictionService(model_, extractor_, config);
  }

  static datagen::SyntheticDataset* dataset_;
  static features::FeatureExtractor* extractor_;
  static core::HawkesPredictor* model_;
};

datagen::SyntheticDataset* PredictionServiceTest::dataset_ = nullptr;
features::FeatureExtractor* PredictionServiceTest::extractor_ = nullptr;
core::HawkesPredictor* PredictionServiceTest::model_ = nullptr;

TEST_F(PredictionServiceTest, RegisterAndQueryLifecycle) {
  PredictionService service = MakeService();
  const auto& cascade = dataset_->cascades[0];
  const auto& page = dataset_->PageOf(cascade.post);

  EXPECT_FALSE(service.HasItem(1));
  EXPECT_TRUE(service.RegisterItem(1, 0.0, page, cascade.post));
  EXPECT_FALSE(service.RegisterItem(1, 0.0, page, cascade.post));  // duplicate
  EXPECT_TRUE(service.HasItem(1));
  EXPECT_EQ(service.LiveItems(), 1u);

  size_t ingested = 0;
  for (const auto& e : cascade.views) {
    if (e.time >= 6 * kHour) break;
    EXPECT_TRUE(service.Ingest(1, stream::EngagementType::kView, e.time));
    ++ingested;
  }
  const auto result = service.Query(1, 6 * kHour, 1 * kDay);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->observed_views, static_cast<double>(ingested));
  EXPECT_GE(result->predicted_views, result->observed_views);
  EXPECT_GT(result->alpha, 0.0);

  EXPECT_EQ(service.stats().items_registered, 1u);
  EXPECT_EQ(service.stats().events_ingested, ingested);
  EXPECT_EQ(service.stats().queries_answered, 1u);
}

TEST_F(PredictionServiceTest, IngestUnknownItemDropped) {
  PredictionService service = MakeService();
  EXPECT_FALSE(service.Ingest(42, stream::EngagementType::kView, 1.0));
  EXPECT_FALSE(service.Query(42, 1.0, kDay).has_value());
}

TEST_F(PredictionServiceTest, QueryMatchesOfflineReplay) {
  // The service's online answer must equal the offline replay-based
  // prediction used in the experiments.
  PredictionService service = MakeService();
  const auto& cascade = dataset_->cascades[3];
  const auto& page = dataset_->PageOf(cascade.post);
  service.RegisterItem(7, 0.0, page, cascade.post);
  const double s = 12 * kHour;
  for (const auto& e : cascade.views) {
    if (e.time >= s) break;
    service.Ingest(7, stream::EngagementType::kView, e.time);
  }
  for (double t : cascade.share_times) {
    if (t >= s) break;
    service.Ingest(7, stream::EngagementType::kShare, t);
  }
  for (double t : cascade.comment_times) {
    if (t >= s) break;
    service.Ingest(7, stream::EngagementType::kComment, t);
  }
  for (double t : cascade.reaction_times) {
    if (t >= s) break;
    service.Ingest(7, stream::EngagementType::kReaction, t);
  }
  const auto online = service.Query(7, s, 2 * kDay);
  ASSERT_TRUE(online.has_value());

  const auto snapshot = extractor_->ReplaySnapshot(cascade, s);
  const auto row = extractor_->Extract(page, cascade.post, snapshot);
  const double offline = model_->PredictCount(
      row.data(), static_cast<double>(snapshot.views().total), 2 * kDay);
  EXPECT_DOUBLE_EQ(online->predicted_views, offline);
}

TEST_F(PredictionServiceTest, TopKRanksByPredictedIncrement) {
  PredictionService service = MakeService();
  const double s = 6 * kHour;
  for (int64_t i = 0; i < 20; ++i) {
    const auto& cascade = dataset_->cascades[static_cast<size_t>(i)];
    service.RegisterItem(i, 0.0, dataset_->PageOf(cascade.post), cascade.post);
    for (const auto& e : cascade.views) {
      if (e.time >= s) break;
      service.Ingest(i, stream::EngagementType::kView, e.time);
    }
  }
  const auto top = service.TopK(s, 1 * kDay, 5);
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
  // The leader must match the individually queried maximum.
  double best = -1.0;
  for (int64_t i = 0; i < 20; ++i) {
    const auto q = service.Query(i, s, 1 * kDay);
    best = std::max(best, q->predicted_views - q->observed_views);
  }
  EXPECT_DOUBLE_EQ(top[0].second, best);
}

TEST_F(PredictionServiceTest, RetiresIdleItems) {
  ServiceConfig config;
  config.idle_retirement_age = 2 * kDay;
  PredictionService service = MakeService(config);
  const auto& cascade = dataset_->cascades[0];
  const auto& page = dataset_->PageOf(cascade.post);
  service.RegisterItem(1, 0.0, page, cascade.post);   // will go idle
  service.RegisterItem(2, 0.0, page, cascade.post);   // stays active
  service.Ingest(1, stream::EngagementType::kView, 1 * kHour);
  service.Ingest(2, stream::EngagementType::kView, 1 * kHour);
  service.Ingest(2, stream::EngagementType::kView, 5 * kDay - kHour);

  const size_t retired = service.RetireDeadItems(5 * kDay);
  EXPECT_EQ(retired, 1u);
  EXPECT_FALSE(service.HasItem(1));
  EXPECT_TRUE(service.HasItem(2));
  EXPECT_EQ(service.stats().items_retired, 1u);
}

TEST_F(PredictionServiceTest, NotYetLiveItemsAreInvisible) {
  // Items created in the future must not be queryable, must be skipped by
  // TopK, and must not be retired before they go live.
  PredictionService service = MakeService();
  const auto& cascade = dataset_->cascades[0];
  const auto& page = dataset_->PageOf(cascade.post);
  service.RegisterItem(1, /*creation_time=*/10 * kDay, page, cascade.post);
  EXPECT_FALSE(service.Query(1, 5 * kDay, kDay).has_value());
  EXPECT_TRUE(service.TopK(5 * kDay, kDay, 3).empty());
  EXPECT_EQ(service.RetireDeadItems(5 * kDay), 0u);
  EXPECT_TRUE(service.HasItem(1));
  // Once live, it becomes queryable.
  EXPECT_TRUE(service.Query(1, 11 * kDay, kDay).has_value());
}

TEST_F(PredictionServiceTest, RetiresNeverViewedItems) {
  ServiceConfig config;
  config.idle_retirement_age = 1 * kDay;
  PredictionService service = MakeService(config);
  const auto& cascade = dataset_->cascades[0];
  service.RegisterItem(9, 0.0, dataset_->PageOf(cascade.post), cascade.post);
  EXPECT_EQ(service.RetireDeadItems(2 * kDay), 1u);
  EXPECT_EQ(service.LiveItems(), 0u);
}

}  // namespace
}  // namespace horizon::serving
