#include "baselines/seismic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "pointprocess/kernels.h"
#include "pointprocess/marks.h"
#include "pointprocess/ogata.h"

namespace horizon::baselines {
namespace {

TEST(SeismicCfTest, NoEventsGivesZero) {
  SeismicCf model;
  EXPECT_EQ(model.EstimateInfectiousness({}, 10.0), 0.0);
  EXPECT_EQ(model.PredictIncrement({}, 10.0, 100.0), 0.0);
  EXPECT_EQ(model.PredictFinal({}, 10.0), 0.0);
}

// Samples a delay from the normalized power-law kernel density (the
// SEISMIC memory kernel) by inverse-CDF.
double SampleKernelDelay(const pp::PowerLawKernel& kernel, Rng& rng) {
  const double u = rng.Uniform() * kernel.TotalMass();
  const double flat_mass = kernel.phi0() * kernel.tau();
  if (u <= flat_mass) return u / kernel.phi0();
  // Solve phi0 tau + (phi0 tau / theta)(1 - (tau/x)^theta) = u.
  const double theta = kernel.theta();
  const double tail = 1.0 - theta * (u - flat_mass) / flat_mass;
  return kernel.tau() * std::pow(tail, -1.0 / theta);
}

TEST(SeismicCfTest, RecoversInfectiousnessOnSingleSeedCascades) {
  // SEISMIC's generative world: a single seed event infects d followers,
  // each event spawns Poisson(p d) children at kernel-density delays.  The
  // pooled closed-form estimator must then recover p (up to the +1 bias of
  // counting the seed in the numerator).
  SeismicCf::Params params;
  params.tau = 0.5;
  params.theta = 0.6;
  params.degree = 20.0;
  SeismicCf model(params);
  const double phi0 = 1.0 / (params.tau * (1.0 + 1.0 / params.theta));
  pp::PowerLawKernel kernel(phi0, params.tau, params.theta);

  const double p_true = 0.045;  // branching factor p d = 0.9
  const double s = 500.0;
  Rng rng(3);
  double pooled_num = 0.0, pooled_denom = 0.0;
  std::vector<double> ratios;
  for (int rep = 0; rep < 1500; ++rep) {
    // Branching construction of one cascade seeded at time 0.
    std::vector<double> times = {0.0};
    for (size_t i = 0; i < times.size() && times.size() < 10000; ++i) {
      const uint64_t children = rng.Poisson(p_true * params.degree);
      for (uint64_t c = 0; c < children; ++c) {
        const double t = times[i] + SampleKernelDelay(kernel, rng);
        if (t < s) times.push_back(t);
      }
    }
    std::sort(times.begin(), times.end());
    // Pool numerators/denominators to average out small-cascade noise:
    // EstimateInfectiousness = N / (d sum Phi); recover its pieces.
    const double p_hat = model.EstimateInfectiousness(times, s);
    ASSERT_GT(p_hat, 0.0);
    const double denom = static_cast<double>(times.size()) / p_hat;
    pooled_num += static_cast<double>(times.size()) - 1.0;  // exclude seed
    pooled_denom += denom;
    if (times.size() >= 30) ratios.push_back(p_hat / p_true);
  }
  const double pooled_p = pooled_num / pooled_denom;
  EXPECT_NEAR(pooled_p / p_true, 1.0, 0.1);
  // Per-cascade estimates on large cascades are individually sane.
  ASSERT_GT(ratios.size(), 20u);
  EXPECT_GT(Median(ratios), 0.8);
  EXPECT_LT(Median(ratios), 1.45);
}

TEST(SeismicCfTest, PredictionAccountsForRecentEvents) {
  // Two histories with the same count: one recent burst, one old burst.
  // The recent one must predict more future views (kernel mass remaining).
  SeismicCf model;
  std::vector<double> recent, old;
  for (int i = 0; i < 50; ++i) {
    recent.push_back(9000.0 + i);
    old.push_back(100.0 + i);
  }
  const double s = 10000.0;
  EXPECT_GT(model.PredictIncrement(recent, s, 1e9),
            model.PredictIncrement(old, s, 1e9));
}

TEST(SeismicCfTest, IncrementMonotoneInHorizon) {
  SeismicCf model;
  std::vector<double> times;
  for (int i = 0; i < 100; ++i) times.push_back(i * 10.0);
  const double s = 1000.0;
  double prev = 0.0;
  for (double delta : {60.0, 600.0, 3600.0, 86400.0}) {
    const double inc = model.PredictIncrement(times, s, delta);
    EXPECT_GE(inc, prev);
    prev = inc;
  }
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_GE(model.PredictIncrement(times, s, inf), prev);
}

TEST(SeismicCfTest, PredictFinalIncludesObservedCount) {
  SeismicCf model;
  std::vector<double> times = {1.0, 2.0, 3.0};
  const double final_size = model.PredictFinal(times, 10.0);
  EXPECT_GE(final_size, 3.0);
}

TEST(SeismicCfTest, BranchingCapPreventsExplosion) {
  // A history so dense that p d would exceed 1 must still produce a finite
  // prediction.
  SeismicCf::Params params;
  params.degree = 5000.0;
  SeismicCf model(params);
  std::vector<double> times;
  for (int i = 0; i < 1000; ++i) times.push_back(0.001 * i);
  const double pred =
      model.PredictIncrement(times, 1.0, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isfinite(pred));
  EXPECT_GT(pred, 0.0);
}

TEST(SeismicCfTest, DegreeVariantReducesToConstantForEqualDegrees) {
  SeismicCf model;
  std::vector<double> times, degrees;
  for (int i = 0; i < 40; ++i) {
    times.push_back(i * 30.0);
    degrees.push_back(model.params().degree);
  }
  const double s = 2000.0;
  EXPECT_NEAR(model.EstimateInfectiousnessWithDegrees(times, degrees, s),
              model.EstimateInfectiousness(times, s), 1e-12);
  EXPECT_NEAR(model.PredictFinalWithDegrees(times, degrees, s),
              model.PredictFinal(times, s), 1e-9);
}

TEST(SeismicCfTest, RecentHighDegreeEventsPredictMoreGrowth) {
  // A uniform degree scaling cancels out of the estimator (p_hat adjusts),
  // so the informative signal is WHERE the audience mass sits: recent
  // high-degree events have most of their kernel mass still ahead.
  SeismicCf model;
  std::vector<double> times;
  std::vector<double> recent_heavy(40, 10.0), early_heavy(40, 10.0);
  for (int i = 0; i < 40; ++i) {
    // Spread events over a long window so kernel masses differ.
    times.push_back(25.0 * i);
  }
  for (int i = 0; i < 10; ++i) {
    early_heavy[static_cast<size_t>(i)] = 300.0;
    recent_heavy[static_cast<size_t>(39 - i)] = 300.0;
  }
  const double s = 1000.0;
  EXPECT_GT(model.PredictIncrementWithDegrees(times, recent_heavy, s, 1e9),
            model.PredictIncrementWithDegrees(times, early_heavy, s, 1e9));
}

TEST(SeismicCfTest, DegreeVariantRecoversInfectiousnessWithVaryingDegrees) {
  // Single-seed branching world where event i infects Poisson(p * d_i)
  // children, d_i drawn from a lognormal degree distribution -- the
  // original SEISMIC setting.  The degree-aware pooled estimator must
  // recover p.
  SeismicCf::Params params;
  params.tau = 0.5;
  params.theta = 0.6;
  SeismicCf model(params);
  const double phi0 = 1.0 / (params.tau * (1.0 + 1.0 / params.theta));
  pp::PowerLawKernel kernel(phi0, params.tau, params.theta);

  const double p_true = 0.03;
  Rng rng(17);
  double pooled_num = 0.0, pooled_denom = 0.0;
  const double s = 500.0;
  for (int rep = 0; rep < 1500; ++rep) {
    std::vector<double> times = {0.0};
    std::vector<double> degrees = {rng.LogNormal(std::log(25.0), 0.8)};
    for (size_t i = 0; i < times.size() && times.size() < 10000; ++i) {
      const uint64_t children = rng.Poisson(p_true * degrees[i]);
      for (uint64_t c = 0; c < children; ++c) {
        const double t = times[i] + SampleKernelDelay(kernel, rng);
        if (t < s) {
          times.push_back(t);
          degrees.push_back(rng.LogNormal(std::log(25.0), 0.8));
        }
      }
    }
    // Branching construction appends children after parents but not in
    // global time order; sort jointly.
    std::vector<size_t> order(times.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return times[a] < times[b]; });
    std::vector<double> st(times.size()), sd(times.size());
    for (size_t i = 0; i < order.size(); ++i) {
      st[i] = times[order[i]];
      sd[i] = degrees[order[i]];
    }
    const double p_hat = model.EstimateInfectiousnessWithDegrees(st, sd, s);
    ASSERT_GT(p_hat, 0.0);
    pooled_num += static_cast<double>(st.size()) - 1.0;
    pooled_denom += static_cast<double>(st.size()) / p_hat;
  }
  EXPECT_NEAR(pooled_num / pooled_denom / p_true, 1.0, 0.1);
}

TEST(SeismicCfTest, OnlyEventsBeforePredictionTimeCount) {
  SeismicCf model;
  std::vector<double> times = {1.0, 2.0, 50.0, 60.0};
  const double p_early = model.EstimateInfectiousness(times, 10.0);
  std::vector<double> early_only = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(p_early, model.EstimateInfectiousness(early_only, 10.0));
}

}  // namespace
}  // namespace horizon::baselines
