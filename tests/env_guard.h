// Test hermeticity helpers for environment variables the library reads.
//
// The library consults HORIZON_THREADS (thread-pool width, read once at
// global-pool construction) and HORIZON_FAULT_CRASH_AT (arms the IO fault
// injector at FaultInjector::Global() construction).  A value leaking in
// from the invoking shell would silently change what a test exercises --
// or make every checkpoint write crash.  Tests that care register one of
// these guards so the variable is UNSET for the whole test program and
// restored afterwards, keeping runs hermetic no matter the caller's
// environment.  (Deliberate per-process settings still work: ctest's
// ENVIRONMENT property, as used by the checkpoint_test_threadsN variants,
// applies to the child process before main runs, and those tests do not
// register a guard for that variable.)
#ifndef HORIZON_TESTS_ENV_GUARD_H_
#define HORIZON_TESTS_ENV_GUARD_H_

#include <cstdlib>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "common/file_io.h"

namespace horizon::test {

/// RAII: captures a variable's value, unsets (or overrides) it, restores
/// the original at destruction.
class ScopedEnvVar {
 public:
  /// Unsets `name` for the guard's lifetime.
  explicit ScopedEnvVar(std::string name) : name_(std::move(name)) {
    Capture();
    ::unsetenv(name_.c_str());
  }

  /// Sets `name` to `value` for the guard's lifetime.
  ScopedEnvVar(std::string name, const std::string& value)
      : name_(std::move(name)) {
    Capture();
    ::setenv(name_.c_str(), value.c_str(), /*overwrite=*/1);
  }

  ~ScopedEnvVar() {
    if (saved_.has_value()) {
      ::setenv(name_.c_str(), saved_->c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

  ScopedEnvVar(const ScopedEnvVar&) = delete;
  ScopedEnvVar& operator=(const ScopedEnvVar&) = delete;

 private:
  void Capture() {
    const char* value = std::getenv(name_.c_str());
    if (value != nullptr) saved_ = std::string(value);
  }

  std::string name_;
  std::optional<std::string> saved_;
};

/// gtest Environment that unsets one variable for the whole test program
/// (SetUp) and restores it at exit (TearDown).  Optionally also disarms
/// the global FaultInjector, covering the case where the variable already
/// armed it before the guard ran.
class EnvVarGuard : public ::testing::Environment {
 public:
  explicit EnvVarGuard(std::string name, bool disarm_fault_injector = false)
      : name_(std::move(name)),
        disarm_fault_injector_(disarm_fault_injector) {}

  void SetUp() override {
    guard_.emplace(name_);
    if (disarm_fault_injector_) io::FaultInjector::Global().Disarm();
  }

  void TearDown() override {
    if (disarm_fault_injector_) io::FaultInjector::Global().Disarm();
    guard_.reset();
  }

 private:
  std::string name_;
  bool disarm_fault_injector_;
  std::optional<ScopedEnvVar> guard_;
};

}  // namespace horizon::test

#endif  // HORIZON_TESTS_ENV_GUARD_H_
