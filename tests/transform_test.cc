#include "pointprocess/transform.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"

namespace horizon::pp {
namespace {

TEST(MarkLaplaceTransformTest, BoundaryValues) {
  const ConstantMark constant(0.5);
  const ExponentialMark exponential(0.4);
  const LogNormalMark lognormal(0.5, 0.8);
  const ParetoMark pareto(0.5, 3.0);
  for (const MarkDistribution* dist :
       {static_cast<const MarkDistribution*>(&constant),
        static_cast<const MarkDistribution*>(&exponential),
        static_cast<const MarkDistribution*>(&lognormal),
        static_cast<const MarkDistribution*>(&pareto)}) {
    EXPECT_NEAR(dist->LaplaceTransform(0.0), 1.0, 1e-9);
    // Monotone decreasing in s, bounded in (0, 1].
    double prev = 1.0;
    for (double s : {0.1, 0.5, 2.0, 10.0}) {
      const double v = dist->LaplaceTransform(s);
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, prev + 1e-12);
      prev = v;
    }
  }
}

TEST(MarkLaplaceTransformTest, MatchesMonteCarlo) {
  const LogNormalMark lognormal(0.6, 0.9);
  const ParetoMark pareto(0.4, 2.8);
  Rng rng(3);
  for (const MarkDistribution* dist :
       {static_cast<const MarkDistribution*>(&lognormal),
        static_cast<const MarkDistribution*>(&pareto)}) {
    for (double s : {0.3, 1.5}) {
      double mc = 0.0;
      const int n = 200000;
      for (int i = 0; i < n; ++i) mc += std::exp(-s * dist->Sample(rng));
      mc /= n;
      EXPECT_NEAR(dist->LaplaceTransform(s), mc, 0.005) << "s=" << s;
    }
  }
}

TEST(MarkLaplaceTransformTest, DerivativeAtZeroIsMinusMean) {
  const ExponentialMark mark(0.7);
  const double h = 1e-6;
  const double numeric = (mark.LaplaceTransform(h) - 1.0) / h;
  EXPECT_NEAR(numeric, -mark.Mean(), 1e-4);
}

TEST(SolveTransformATest, InitialCondition) {
  const ConstantMark marks(0.5);
  EXPECT_DOUBLE_EQ(SolveTransformA(0.0, 0.5, 0.7, 2.0, marks), 0.7);
}

TEST(SolveTransformATest, UOneVZeroStaysZero) {
  // At u = 1, v = 0: dA/dtau = 1 - beta*0 - psi_F(0) = 0, so A == 0 and
  // psi == 1 (probabilities sum to one).
  const ConstantMark marks(0.5);
  EXPECT_NEAR(SolveTransformA(5.0, 1.0, 0.0, 2.0, marks), 0.0, 1e-12);
  EXPECT_NEAR(ConditionalTransform(3.0, 5.0, 1.0, 0.0, 2.0, marks), 1.0, 1e-12);
}

TEST(CountIncrementPgfTest, DerivativeMatchesProposition32) {
  // d/du E[u^N] at u = 1 equals E[N] = Prop. 3.2's conditional mean.
  const double beta = 2.0, rho1 = 0.4, lambda_s = 3.0, tau = 1.5;
  const ConstantMark marks(rho1);
  const double alpha = beta * (1.0 - rho1);
  const double h = 1e-5;
  const double g1 = CountIncrementPgf(lambda_s, tau, 1.0, beta, marks, 2000);
  const double g0 = CountIncrementPgf(lambda_s, tau, 1.0 - h, beta, marks, 2000);
  const double numeric_mean = (g1 - g0) / h;
  EXPECT_NEAR(numeric_mean, ConditionalMeanIncrement(lambda_s, alpha, tau),
              0.01 * ConditionalMeanIncrement(lambda_s, alpha, tau));
}

TEST(CountIncrementPgfTest, MatchesMonteCarlo) {
  ExpHawkesParams params;
  params.lambda0 = 4.0;
  params.beta = 2.0;
  params.marks = std::make_shared<ExponentialMark>(0.5);
  const double tau = 1.0, u = 0.6;
  Rng rng(7);
  SimulateOptions options;
  options.horizon = tau;
  double mc = 0.0;
  const int reps = 30000;
  for (int i = 0; i < reps; ++i) {
    const auto events = SimulateExpHawkes(params, options, rng);
    mc += std::pow(u, static_cast<double>(events.size()));
  }
  mc /= reps;
  const double analytic =
      CountIncrementPgf(params.lambda0, tau, u, params.beta, *params.marks);
  EXPECT_NEAR(analytic, mc, 0.01);
}

TEST(ProbabilityNoNewEventsTest, ClosedFormAndOdeAgree) {
  const double lambda_s = 3.0, beta = 2.0, tau = 1.2;
  const ConstantMark marks(0.5);
  // u = 0 through the ODE solver must match the closed form.
  const double via_ode = CountIncrementPgf(lambda_s, tau, 0.0, beta, marks, 2000);
  EXPECT_NEAR(ProbabilityNoNewEvents(lambda_s, tau, beta), via_ode, 1e-6);
}

TEST(ProbabilityNoNewEventsTest, MatchesMonteCarlo) {
  ExpHawkesParams params;
  params.lambda0 = 2.0;
  params.beta = 1.5;
  params.marks = std::make_shared<ConstantMark>(0.5);
  const double tau = 0.8;
  Rng rng(9);
  SimulateOptions options;
  options.horizon = tau;
  int empty = 0;
  const int reps = 50000;
  for (int i = 0; i < reps; ++i) {
    if (SimulateExpHawkes(params, options, rng).empty()) ++empty;
  }
  EXPECT_NEAR(ProbabilityNoNewEvents(params.lambda0, tau, params.beta),
              static_cast<double>(empty) / reps, 0.01);
}

TEST(ProbabilityNoNewEventsTest, LimitsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(ProbabilityNoNewEvents(3.0, 0.0, 2.0), 1.0);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_NEAR(ProbabilityNoNewEvents(3.0, inf, 2.0), std::exp(-1.5), 1e-12);
  double prev = 1.0;
  for (double tau : {0.1, 0.5, 2.0, 10.0}) {
    const double p = ProbabilityNoNewEvents(3.0, tau, 2.0);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(LimitCoefficientOfVariationTest, FreshProcessScalesAsInverseSqrtN) {
  // Appendix A.7: with E[N(inf)] = lambda0/alpha = n and N(s) = 0, the
  // limiting CV equals Sigma / sqrt(n).
  const double beta = 2.0, rho1 = 0.4, rho2 = 0.2;
  const double alpha = beta * (1.0 - rho1);
  const double sigma = std::sqrt(SigmaSquared(beta, rho1, rho2));
  for (double n : {10.0, 100.0, 1000.0}) {
    const double cv = LimitCoefficientOfVariation(n * alpha, 0.0, beta, rho1, rho2);
    EXPECT_NEAR(cv, sigma / std::sqrt(n), 1e-9) << "n=" << n;
  }
}

TEST(LimitCoefficientOfVariationTest, ObservedCountShrinksCv) {
  const double beta = 2.0, rho1 = 0.4, rho2 = 0.2;
  const double cv0 = LimitCoefficientOfVariation(10.0, 0.0, beta, rho1, rho2);
  const double cv100 = LimitCoefficientOfVariation(10.0, 100.0, beta, rho1, rho2);
  EXPECT_LT(cv100, cv0);
}

}  // namespace
}  // namespace horizon::pp
