#include "pointprocess/marks.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace horizon::pp {
namespace {

// Property sweep: every mark distribution's empirical first and second
// moments must match its declared Mean() / SecondMoment().
class MarkMomentsTest
    : public ::testing::TestWithParam<std::shared_ptr<const MarkDistribution>> {};

TEST_P(MarkMomentsTest, EmpiricalMomentsMatchDeclared) {
  const auto& dist = *GetParam();
  Rng rng(123);
  const int n = 400000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = dist.Sample(rng);
    ASSERT_GE(z, 0.0);
    sum += z;
    sum_sq += z * z;
  }
  const double mean = sum / n;
  const double m2 = sum_sq / n;
  EXPECT_NEAR(mean, dist.Mean(), 0.02 * dist.Mean() + 1e-3);
  EXPECT_NEAR(m2, dist.SecondMoment(), 0.1 * dist.SecondMoment() + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, MarkMomentsTest,
    ::testing::Values(std::make_shared<ConstantMark>(0.7),
                      std::make_shared<ExponentialMark>(0.5),
                      std::make_shared<LogNormalMark>(0.6, 0.8),
                      std::make_shared<LogNormalMark>(0.3, 1.2),
                      std::make_shared<ParetoMark>(0.5, 3.5)));

TEST(ConstantMarkTest, AlwaysSameValue) {
  ConstantMark mark(0.42);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(mark.Sample(rng), 0.42);
  EXPECT_DOUBLE_EQ(mark.Variance(), 0.0);
}

TEST(LogNormalMarkTest, MeanParameterization) {
  // Mean must equal the requested mean regardless of sigma.
  for (double sigma : {0.1, 0.5, 1.0, 2.0}) {
    LogNormalMark mark(0.8, sigma);
    EXPECT_NEAR(mark.Mean(), 0.8, 1e-12) << "sigma=" << sigma;
  }
}

TEST(LogNormalMarkTest, SecondMomentFormula) {
  LogNormalMark mark(0.5, 0.7);
  // E[Z^2] = mean^2 exp(sigma^2).
  EXPECT_NEAR(mark.SecondMoment(), 0.25 * std::exp(0.49), 1e-12);
}

TEST(ParetoMarkTest, MeanParameterizationAndTail) {
  ParetoMark mark(0.6, 2.5);
  EXPECT_NEAR(mark.Mean(), 0.6, 1e-12);
  EXPECT_GT(mark.SecondMoment(), mark.Mean() * mark.Mean());
}

TEST(MarkDistributionTest, VarianceConsistency) {
  ExponentialMark mark(0.4);
  // Exponential: var = mean^2.
  EXPECT_NEAR(mark.Variance(), 0.16, 1e-12);
}

}  // namespace
}  // namespace horizon::pp
