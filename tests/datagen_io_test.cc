#include "datagen/io.h"

#include <gtest/gtest.h>

#include "common/file_io.h"

namespace horizon::datagen {
namespace {

SyntheticDataset SmallDataset() {
  GeneratorConfig config;
  config.num_pages = 10;
  config.num_posts = 25;
  config.base_mean_size = 40.0;
  config.seed = 99;
  return Generator(config).Generate();
}

TEST(DatagenIoTest, SaveFailsOnBadDirectory) {
  EXPECT_FALSE(SaveDatasetCsv(SmallDataset(), "/nonexistent_dir_zzz"));
}

TEST(DatagenIoTest, LoadFailsOnMissingFiles) {
  EXPECT_FALSE(LoadDatasetCsv("/nonexistent_dir_zzz").has_value());
}

TEST(DatagenIoTest, RoundTripsExactly) {
  const SyntheticDataset original = SmallDataset();
  // A test-private directory: the suite's tests run as separate ctest
  // entries that may execute concurrently, so they must not share files.
  const std::string dir = ::testing::TempDir() + "datagen_io_round_trip";
  ASSERT_TRUE(io::EnsureDir(dir));
  ASSERT_TRUE(SaveDatasetCsv(original, dir));
  const auto loaded = LoadDatasetCsv(dir);
  ASSERT_TRUE(loaded.has_value());

  // Config.
  EXPECT_EQ(loaded->config.num_pages, original.config.num_pages);
  EXPECT_EQ(loaded->config.seed, original.config.seed);
  EXPECT_DOUBLE_EQ(loaded->config.tracking_window, original.config.tracking_window);

  // Pages.
  ASSERT_EQ(loaded->pages.size(), original.pages.size());
  for (size_t i = 0; i < original.pages.size(); ++i) {
    const PageProfile& a = original.pages[i];
    const PageProfile& b = loaded->pages[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_DOUBLE_EQ(a.followers, b.followers);
    EXPECT_DOUBLE_EQ(a.hist_mean_halflife, b.hist_mean_halflife);
    EXPECT_EQ(a.category, b.category);
    EXPECT_DOUBLE_EQ(a.quality, b.quality);
    EXPECT_DOUBLE_EQ(a.alpha_page, b.alpha_page);
  }

  // Posts + cascades.
  ASSERT_EQ(loaded->cascades.size(), original.cascades.size());
  for (size_t i = 0; i < original.cascades.size(); ++i) {
    const Cascade& a = original.cascades[i];
    const Cascade& b = loaded->cascades[i];
    EXPECT_EQ(a.post.id, b.post.id);
    EXPECT_EQ(a.post.page_id, b.post.page_id);
    EXPECT_EQ(a.post.media, b.post.media);
    EXPECT_DOUBLE_EQ(a.post.lambda0, b.post.lambda0);
    EXPECT_DOUBLE_EQ(a.post.beta, b.post.beta);
    EXPECT_DOUBLE_EQ(a.post.rho1, b.post.rho1);

    ASSERT_EQ(a.views.size(), b.views.size());
    for (size_t j = 0; j < a.views.size(); ++j) {
      EXPECT_DOUBLE_EQ(a.views[j].time, b.views[j].time);
      EXPECT_DOUBLE_EQ(a.views[j].mark, b.views[j].mark);
      EXPECT_EQ(a.views[j].parent, b.views[j].parent);
      EXPECT_EQ(a.views[j].generation, b.views[j].generation);
      EXPECT_EQ(a.is_share[j], b.is_share[j]);
      EXPECT_EQ(a.reshare_depth[j], b.reshare_depth[j]);
    }
    ASSERT_EQ(a.comment_times.size(), b.comment_times.size());
    for (size_t j = 0; j < a.comment_times.size(); ++j) {
      EXPECT_DOUBLE_EQ(a.comment_times[j], b.comment_times[j]);
    }
    ASSERT_EQ(a.reaction_times.size(), b.reaction_times.size());
  }
}

TEST(DatagenIoTest, LoadedDatasetBehavesLikeOriginal) {
  const SyntheticDataset original = SmallDataset();
  const std::string dir = ::testing::TempDir() + "datagen_io_behaves";
  ASSERT_TRUE(io::EnsureDir(dir));
  ASSERT_TRUE(SaveDatasetCsv(original, dir));
  const auto loaded = LoadDatasetCsv(dir);
  ASSERT_TRUE(loaded.has_value());
  for (size_t i = 0; i < original.cascades.size(); ++i) {
    EXPECT_EQ(loaded->cascades[i].ViewsBefore(6 * kHour),
              original.cascades[i].ViewsBefore(6 * kHour));
    EXPECT_DOUBLE_EQ(loaded->cascades[i].DurationAtFraction(0.95),
                     original.cascades[i].DurationAtFraction(0.95));
  }
}

}  // namespace
}  // namespace horizon::datagen
