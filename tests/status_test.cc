// Tests for common/status.h: code taxonomy, ToString formatting, the
// deprecated bool/optional compatibility shims, StatusOr value semantics,
// and HORIZON_RETURN_IF_ERROR propagation.
#include "common/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace horizon {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "ok");
  EXPECT_EQ(s, Status::Ok());
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string_view name;
  };
  const std::vector<Case> cases = {
      {Status::NotFound("a"), StatusCode::kNotFound, "not_found"},
      {Status::NotYetLive("b"), StatusCode::kNotYetLive, "not_yet_live"},
      {Status::InvalidArgument("c"), StatusCode::kInvalidArgument,
       "invalid_argument"},
      {Status::IoError("d"), StatusCode::kIoError, "io_error"},
      {Status::Corruption("e"), StatusCode::kCorruption, "corruption"},
      {Status::ConfigMismatch("f"), StatusCode::kConfigMismatch,
       "config_mismatch"},
      {Status::AlreadyExists("g"), StatusCode::kAlreadyExists,
       "already_exists"},
      {Status::Internal("h"), StatusCode::kInternal, "internal"},
      {Status::ResourceExhausted("i"), StatusCode::kResourceExhausted,
       "resource_exhausted"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(StatusCodeName(c.code), c.name);
    EXPECT_EQ(c.status.ToString(),
              std::string(c.name) + ": " + c.status.message());
  }
}

TEST(StatusTest, CodeValuesAreStable) {
  // The numeric values are exported as metric labels; renumbering them
  // silently breaks dashboards.
  EXPECT_EQ(static_cast<int>(StatusCode::kOk), 0);
  EXPECT_EQ(static_cast<int>(StatusCode::kNotFound), 1);
  EXPECT_EQ(static_cast<int>(StatusCode::kNotYetLive), 2);
  EXPECT_EQ(static_cast<int>(StatusCode::kInvalidArgument), 3);
  EXPECT_EQ(static_cast<int>(StatusCode::kIoError), 4);
  EXPECT_EQ(static_cast<int>(StatusCode::kCorruption), 5);
  EXPECT_EQ(static_cast<int>(StatusCode::kConfigMismatch), 6);
  EXPECT_EQ(static_cast<int>(StatusCode::kAlreadyExists), 7);
  EXPECT_EQ(static_cast<int>(StatusCode::kInternal), 8);
  EXPECT_EQ(static_cast<int>(StatusCode::kResourceExhausted), 9);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::IoError("x"));
}

TEST(StatusTest, BoolShimMatchesOk) {
  // `if (!service.Checkpoint(dir))` must keep the pre-Status meaning.
  EXPECT_TRUE(static_cast<bool>(Status::Ok()));
  EXPECT_FALSE(static_cast<bool>(Status::IoError("disk on fire")));
  if (Status::NotFound("nope")) {
    FAIL() << "non-OK Status must be contextually false";
  }
}

Status FailsAtStep(int failing_step, int step) {
  if (step == failing_step) return Status::Corruption("step failed");
  return Status::Ok();
}

Status RunThreeSteps(int failing_step) {
  HORIZON_RETURN_IF_ERROR(FailsAtStep(failing_step, 0));
  HORIZON_RETURN_IF_ERROR(FailsAtStep(failing_step, 1));
  HORIZON_RETURN_IF_ERROR(FailsAtStep(failing_step, 2));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagatesFirstFailure) {
  EXPECT_TRUE(RunThreeSteps(-1).ok());
  for (int step = 0; step < 3; ++step) {
    const Status s = RunThreeSteps(step);
    EXPECT_EQ(s.code(), StatusCode::kCorruption);
    EXPECT_EQ(s.message(), "step failed");
  }
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(StatusOrTest, CarriesValueOrStatus) {
  const StatusOr<int> good = ParsePositive(7);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  EXPECT_EQ(good.code(), StatusCode::kOk);

  const StatusOr<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.status().message(), "not positive");
}

TEST(StatusOrTest, OptionalShimsMatchOptionalSemantics) {
  const StatusOr<std::string> good = std::string("payload");
  EXPECT_TRUE(good.has_value());
  EXPECT_TRUE(static_cast<bool>(good));
  EXPECT_EQ(*good, "payload");
  EXPECT_EQ(good->size(), 7u);
  EXPECT_EQ(good.value_or("fallback"), "payload");

  const StatusOr<std::string> bad = Status::NotFound("missing");
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.value_or("fallback"), "fallback");
}

TEST(StatusOrTest, MoveOutOfValue) {
  StatusOr<std::vector<int>> big = std::vector<int>{1, 2, 3};
  const std::vector<int> moved = *std::move(big);
  EXPECT_EQ(moved.size(), 3u);
}

TEST(StatusOrTest, WorksWithMoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> p = std::make_unique<int>(5);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(**p, 5);
  const std::unique_ptr<int> owned = std::move(p).value();
  EXPECT_EQ(*owned, 5);
}

}  // namespace
}  // namespace horizon
