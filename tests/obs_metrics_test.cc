// Tests for obs/metrics.h: counter/gauge/histogram semantics, percentile
// known answers on custom bucket bounds, exposition format shape, the
// sampling hook, and -- under TSan in CI -- concurrent writer/scraper
// hammering that must be race-free and lose no increments.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace horizon::obs {
namespace {

// Each test uses its own registry (and metric names) so the process-wide
// Global() used by the serving stack is never polluted.

TEST(CounterTest, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentWritersLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
  g.Set(0.0);
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, BucketAssignment) {
  // Bounds are upper edges: value <= bound lands in that bucket.
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);   // bucket 0
  h.Observe(1.0);   // bucket 0 (inclusive upper edge)
  h.Observe(1.5);   // bucket 1
  h.Observe(4.0);   // bucket 2
  h.Observe(100.0); // +Inf bucket
  const auto buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(HistogramTest, QuantileKnownAnswers) {
  // 100 observations spread uniformly through (0, 10] with bounds every
  // 1.0: quantiles interpolate linearly, so p50 = 5.0 and p99 = 9.9
  // exactly (rank r maps to r/10 within its owning bucket).
  Histogram h({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  for (int i = 1; i <= 100; ++i) h.Observe(i / 10.0);
  EXPECT_NEAR(h.Quantile(0.50), 5.0, 1e-9);
  EXPECT_NEAR(h.Quantile(0.95), 9.5, 1e-9);
  EXPECT_NEAR(h.Quantile(0.99), 9.9, 1e-9);
  EXPECT_NEAR(h.Quantile(0.01), 0.1, 1e-9);
  // q=1 is the maximum's bucket edge; q=0 degenerates to the lowest rank.
  EXPECT_NEAR(h.Quantile(1.0), 10.0, 1e-9);
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);

  // All mass in the +Inf bucket: the quantile reports the last finite
  // bound (a floor, not an estimate).
  Histogram overflow({1.0, 2.0});
  overflow.Observe(50.0);
  overflow.Observe(60.0);
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.5), 2.0);

  // A single observation is every quantile.
  Histogram one({1.0, 2.0, 4.0});
  one.Observe(3.0);
  const double q = one.Quantile(0.5);
  EXPECT_GT(q, 2.0);
  EXPECT_LE(q, 4.0);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram h({1.0});
  h.Observe(0.5);
  h.Observe(9.0);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  for (uint64_t b : h.BucketCounts()) EXPECT_EQ(b, 0u);
}

TEST(HistogramTest, ConcurrentObserversLoseNothing) {
  Histogram h(LatencyBuckets());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(1e-6 * ((t * kPerThread + i) % 1000 + 1));
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : h.BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h.Count());
}

TEST(ScopedTimerTest, RecordsElapsedSeconds) {
  Histogram h(LatencyBuckets());
  {
    ScopedTimer timer(&h);
  }
  ASSERT_EQ(h.Count(), 1u);
  EXPECT_GE(h.Sum(), 0.0);
  EXPECT_LT(h.Sum(), 1.0);  // an empty scope takes nowhere near a second
}

TEST(ScopedTimerTest, NullHistogramIsNoOp) {
  ScopedTimer timer(nullptr);  // must not crash or observe anything
}

TEST(SampleEveryTest, FiresOncePerRatePerThread) {
  Histogram h(LatencyBuckets());
  constexpr uint32_t kRate = 8;
  // The tick is thread-local, so from a fresh thread exactly 1 in kRate
  // calls returns the histogram.
  int fired = 0;
  std::thread([&] {
    for (int i = 0; i < 64; ++i) {
      if (SampleEvery(kRate, &h) != nullptr) ++fired;
    }
  }).join();
  EXPECT_EQ(fired, 64 / kRate);
}

TEST(RegistryTest, GetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("test_counter_total");
  Counter* c2 = registry.GetCounter("test_counter_total");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = registry.GetGauge("test_gauge");
  EXPECT_EQ(g1, registry.GetGauge("test_gauge"));
  Histogram* h1 = registry.GetHistogram("test_latency_seconds");
  EXPECT_EQ(h1, registry.GetHistogram("test_latency_seconds"));
}

TEST(RegistryTest, PrometheusExpositionShape) {
  MetricsRegistry registry;
  registry.GetCounter("events_total")->Add(3);
  registry.GetGauge("live_items")->Set(7);
  Histogram* h = registry.GetHistogram("lat_seconds", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(5.0);
  const std::string dump = registry.DumpPrometheus();

  EXPECT_NE(dump.find("# TYPE events_total counter\n"), std::string::npos);
  EXPECT_NE(dump.find("events_total 3\n"), std::string::npos);
  EXPECT_NE(dump.find("# TYPE live_items gauge\n"), std::string::npos);
  EXPECT_NE(dump.find("live_items 7\n"), std::string::npos);
  EXPECT_NE(dump.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  // Cumulative buckets: 1 at 0.1, 2 at 1.0, 3 at +Inf.
  EXPECT_NE(dump.find("lat_seconds_bucket{le=\"0.1\"} 1\n"), std::string::npos);
  EXPECT_NE(dump.find("lat_seconds_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(dump.find("lat_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(dump.find("lat_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(dump.find("lat_seconds_sum"), std::string::npos);
}

TEST(RegistryTest, JsonExpositionShape) {
  MetricsRegistry registry;
  registry.GetCounter("events_total")->Add(2);
  registry.GetGauge("live_items")->Set(4.5);
  Histogram* h = registry.GetHistogram("lat_seconds", {1.0, 2.0});
  h->Observe(0.5);
  const std::string dump = registry.DumpJson();
  EXPECT_NE(dump.find("\"counters\""), std::string::npos);
  EXPECT_NE(dump.find("\"events_total\":2"), std::string::npos);
  EXPECT_NE(dump.find("\"gauges\""), std::string::npos);
  EXPECT_NE(dump.find("\"live_items\":4.5"), std::string::npos);
  EXPECT_NE(dump.find("\"histograms\""), std::string::npos);
  EXPECT_NE(dump.find("\"lat_seconds\""), std::string::npos);
  EXPECT_NE(dump.find("\"p99\""), std::string::npos);
  // Well-formed JSON object: balanced braces, starts/ends correctly.
  EXPECT_EQ(dump.front(), '{');
  int depth = 0;
  for (char ch : dump) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
  }
  EXPECT_EQ(depth, 0);
}

TEST(RegistryTest, ResetZeroesAllInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("c_total")->Add(9);
  registry.GetGauge("g")->Set(9);
  registry.GetHistogram("h_seconds")->Observe(0.1);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("c_total")->Value(), 0u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g")->Value(), 0.0);
  EXPECT_EQ(registry.GetHistogram("h_seconds")->Count(), 0u);
}

TEST(RegistryTest, ScrapeWhileWritingStaysCoherent) {
  // Writers hammer a counter and a histogram while a scraper repeatedly
  // dumps both formats.  TSan-clean by construction; the scraped counter
  // value must be monotone across scrapes, and the final dump must see
  // every increment.
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("hammer_total");
  Histogram* h = registry.GetHistogram("hammer_seconds");
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 50000;

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        c->Increment();
        h->Observe(1e-5);
      }
    });
  }
  std::thread scraper([&] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string prom = registry.DumpPrometheus();
      const std::string json = registry.DumpJson();
      EXPECT_FALSE(prom.empty());
      EXPECT_FALSE(json.empty());
      const uint64_t now = c->Value();
      EXPECT_GE(now, last);
      last = now;
    }
  });
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  EXPECT_EQ(c->Value(), kWriters * kPerWriter);
  EXPECT_EQ(h->Count(), kWriters * kPerWriter);
}

// --- Exposition well-formedness under churn ----------------------------

/// Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*.
bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

bool IsNumber(const std::string& text) {
  if (text.empty()) return false;
  if (text == "+Inf" || text == "-Inf" || text == "inf" || text == "-inf" ||
      text == "nan") {
    return true;
  }
  char* end = nullptr;
  (void)std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

/// Asserts every line of a Prometheus text-format dump parses as either a
/// "# TYPE <name> <kind>" comment or a "<series>[{le=\"..\"}] <value>"
/// sample -- a torn line (interleaved writes, truncated buffer) fails.
void ValidatePrometheusDump(const std::string& dump) {
  ASSERT_FALSE(dump.empty());
  ASSERT_EQ(dump.back(), '\n') << "dump must end in a newline";
  std::istringstream lines(dump);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream is(line.substr(7));
      std::string name, kind, extra;
      ASSERT_TRUE(static_cast<bool>(is >> name >> kind)) << line;
      EXPECT_TRUE(IsValidMetricName(name)) << line;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      EXPECT_FALSE(static_cast<bool>(is >> extra)) << "trailing text: " << line;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    EXPECT_TRUE(IsNumber(value)) << line;
    const size_t brace = series.find('{');
    if (brace != std::string::npos) {
      // Only histogram buckets carry labels, and only `le`.
      ASSERT_EQ(series.back(), '}') << line;
      const std::string labels = series.substr(brace + 1,
                                               series.size() - brace - 2);
      EXPECT_EQ(labels.rfind("le=\"", 0), 0u) << line;
      EXPECT_EQ(labels.back(), '"') << line;
      series = series.substr(0, brace);
    }
    EXPECT_TRUE(IsValidMetricName(series)) << line;
  }
}

TEST(RegistryTest, ScrapeUnderChurnNeverEmitsMalformedLines) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("churn_requests_total");
  Gauge* gauge = registry.GetGauge("churn_live");
  Histogram* hist = registry.GetHistogram("churn_latency_seconds");

  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Increment();
        gauge->Set(static_cast<double>(i % 1000));
        hist->Observe(1e-6 * static_cast<double>((i * 7 + w) % 100000));
        // Keep registering new series mid-scrape: the dump must stay
        // well-formed while the instrument maps themselves grow.
        if (i % 1024 == 0) {
          registry.GetCounter("churn_dynamic_" + std::to_string(w) + "_total");
        }
        ++i;
      }
    });
  }

  for (int scrape = 0; scrape < 200; ++scrape) {
    const std::string dump = registry.DumpPrometheus();
    ValidatePrometheusDump(dump);
    if (::testing::Test::HasFatalFailure()) break;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();

  // One final quiescent scrape: histogram count equals the last bucket's
  // cumulative value, so the series are consistent, not just well-formed.
  const std::string dump = registry.DumpPrometheus();
  ValidatePrometheusDump(dump);
  std::istringstream lines(dump);
  std::string line;
  uint64_t last_bucket = 0, count = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("churn_latency_seconds_bucket{le=\"+Inf\"}", 0) == 0) {
      last_bucket = std::stoull(line.substr(line.rfind(' ') + 1));
    }
    if (line.rfind("churn_latency_seconds_count ", 0) == 0) {
      count = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_EQ(last_bucket, count);
  EXPECT_EQ(count, hist->Count());
}

TEST(RegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

TEST(LatencyBucketsTest, StrictlyIncreasingAndCoversServingRange) {
  const auto bounds = LatencyBuckets();
  ASSERT_GE(bounds.size(), 20u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
  EXPECT_LE(bounds.front(), 1e-6);  // sub-microsecond ingest path
  EXPECT_GE(bounds.back(), 10.0);   // multi-second checkpoint path
}

}  // namespace
}  // namespace horizon::obs
