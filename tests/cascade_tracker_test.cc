#include "stream/cascade_tracker.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/units.h"

namespace horizon::stream {
namespace {

TrackerConfig SmallConfig() {
  TrackerConfig config;
  config.window_lengths = {10.0, 100.0};
  config.landmark_ages = {5.0, 50.0};
  config.ewma_tau = 10.0;
  config.epsilon = 0.01;
  return config;
}

TEST(CascadeTrackerTest, TotalsPerType) {
  CascadeTracker tracker(100.0, SmallConfig());
  tracker.Observe(EngagementType::kView, 101.0);
  tracker.Observe(EngagementType::kView, 102.0);
  tracker.Observe(EngagementType::kShare, 103.0);
  EXPECT_EQ(tracker.TotalCount(EngagementType::kView), 2u);
  EXPECT_EQ(tracker.TotalCount(EngagementType::kShare), 1u);
  EXPECT_EQ(tracker.TotalCount(EngagementType::kComment), 0u);
}

TEST(CascadeTrackerTest, LandmarkCountsAreExact) {
  CascadeTracker tracker(0.0, SmallConfig());
  // Events at ages 1, 2, 4.9, 5.1, 20, 60.
  for (double t : {1.0, 2.0, 4.9, 5.1, 20.0, 60.0}) {
    tracker.Observe(EngagementType::kView, t);
  }
  const auto snap = tracker.Snapshot(70.0);
  // Landmark 5.0: events with age <= 5 -> {1, 2, 4.9} = 3.
  EXPECT_EQ(snap.views().landmark_counts[0], 3u);
  // Landmark 50: {1, 2, 4.9, 5.1, 20} = 5.
  EXPECT_EQ(snap.views().landmark_counts[1], 5u);
  EXPECT_EQ(snap.views().total, 6u);
}

TEST(CascadeTrackerTest, LandmarkBeforeReachedReportsRunningTotal) {
  CascadeTracker tracker(0.0, SmallConfig());
  tracker.Observe(EngagementType::kView, 1.0);
  tracker.Observe(EngagementType::kView, 2.0);
  const auto snap = tracker.Snapshot(3.0);  // before both landmarks
  EXPECT_EQ(snap.views().landmark_counts[0], 2u);
  EXPECT_EQ(snap.views().landmark_counts[1], 2u);
}

TEST(CascadeTrackerTest, WindowCountsApproximatelyCorrect) {
  CascadeTracker tracker(0.0, SmallConfig());
  for (int i = 0; i < 200; ++i) {
    tracker.Observe(EngagementType::kView, static_cast<double>(i));
  }
  const auto snap = tracker.Snapshot(199.5);
  // ~10 events in the last 10 s, ~100 in the last 100 s.
  EXPECT_NEAR(static_cast<double>(snap.views().window_counts[0]), 10.0, 2.0);
  EXPECT_NEAR(static_cast<double>(snap.views().window_counts[1]), 100.0, 5.0);
  EXPECT_NEAR(snap.views().window_rates[1] * 100.0,
              static_cast<double>(snap.views().window_counts[1]), 1e-9);
}

TEST(CascadeTrackerTest, MeanEventAge) {
  CascadeTracker tracker(0.0, SmallConfig());
  tracker.Observe(EngagementType::kView, 2.0);
  tracker.Observe(EngagementType::kView, 4.0);
  tracker.Observe(EngagementType::kView, 6.0);
  const auto snap = tracker.Snapshot(10.0);
  EXPECT_DOUBLE_EQ(snap.views().mean_event_age, 4.0);
  EXPECT_DOUBLE_EQ(snap.views().first_event_age, 2.0);
  EXPECT_DOUBLE_EQ(snap.views().last_event_age, 6.0);
}

TEST(CascadeTrackerTest, EmptyStreamSnapshot) {
  CascadeTracker tracker(0.0, SmallConfig());
  const auto snap = tracker.Snapshot(10.0);
  EXPECT_EQ(snap.views().total, 0u);
  EXPECT_EQ(snap.views().first_event_age, -1.0);
  EXPECT_EQ(snap.views().last_event_age, -1.0);
  EXPECT_EQ(snap.views().ewma_rate, 0.0);
  EXPECT_EQ(snap.views().mean_event_age, 0.0);
}

TEST(CascadeTrackerTest, EwmaRateDecaysBetweenEvents) {
  CascadeTracker tracker(0.0, SmallConfig());
  tracker.Observe(EngagementType::kView, 1.0);
  const auto early = tracker.Snapshot(1.0);
  const auto late = tracker.Snapshot(31.0);
  EXPECT_GT(early.views().ewma_rate, 0.0);
  EXPECT_NEAR(late.views().ewma_rate,
              early.views().ewma_rate * std::exp(-30.0 / 10.0), 1e-12);
}

TEST(CascadeTrackerTest, EwmaRateTracksSteadyRate) {
  TrackerConfig config = SmallConfig();
  config.ewma_tau = 50.0;
  CascadeTracker tracker(0.0, config);
  // Steady rate of 2 events/s for 200 s.
  for (int i = 0; i < 400; ++i) {
    tracker.Observe(EngagementType::kView, i * 0.5);
  }
  const auto snap = tracker.Snapshot(199.5);
  EXPECT_NEAR(snap.views().ewma_rate, 2.0, 0.3);
}

TEST(CascadeTrackerTest, StreamsAreIndependent) {
  CascadeTracker tracker(0.0, SmallConfig());
  tracker.Observe(EngagementType::kView, 1.0);
  tracker.Observe(EngagementType::kComment, 2.0);
  const auto snap = tracker.Snapshot(3.0);
  EXPECT_EQ(snap.views().total, 1u);
  EXPECT_EQ(snap.comments().total, 1u);
  EXPECT_EQ(snap.shares().total, 0u);
  EXPECT_DOUBLE_EQ(snap.views().last_event_age, 1.0);
  EXPECT_DOUBLE_EQ(snap.comments().last_event_age, 2.0);
}

TEST(CascadeTrackerTest, SnapshotAgeIsRelativeToCreation) {
  CascadeTracker tracker(1000.0, SmallConfig());
  const auto snap = tracker.Snapshot(1010.0);
  EXPECT_DOUBLE_EQ(snap.age, 10.0);
}

TEST(EngagementTypeTest, Names) {
  EXPECT_STREQ(EngagementTypeName(EngagementType::kView), "view");
  EXPECT_STREQ(EngagementTypeName(EngagementType::kShare), "share");
  EXPECT_STREQ(EngagementTypeName(EngagementType::kComment), "comment");
  EXPECT_STREQ(EngagementTypeName(EngagementType::kReaction), "reaction");
}

}  // namespace
}  // namespace horizon::stream
