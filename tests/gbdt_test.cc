#include "gbdt/gbdt.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gbdt/dataset.h"
#include "gbdt/tree.h"

namespace horizon::gbdt {
namespace {

TEST(DataMatrixTest, SetGetRow) {
  DataMatrix m(2, 3);
  m.Set(0, 0, 1.0f);
  m.Set(1, 2, 5.0f);
  EXPECT_EQ(m.Get(0, 0), 1.0f);
  EXPECT_EQ(m.Get(1, 2), 5.0f);
  EXPECT_EQ(m.Row(1)[2], 5.0f);
}

TEST(DataMatrixTest, AppendRowInfersWidth) {
  DataMatrix m(0, 0);
  m.AppendRow({1.0f, 2.0f});
  m.AppendRow({3.0f, 4.0f});
  EXPECT_EQ(m.num_rows(), 2u);
  EXPECT_EQ(m.num_features(), 2u);
  EXPECT_EQ(m.Get(1, 1), 4.0f);
}

TEST(BinnedDatasetTest, FewDistinctValuesExactBins) {
  DataMatrix m(6, 1);
  const float vals[] = {3.0f, 1.0f, 2.0f, 1.0f, 3.0f, 2.0f};
  for (size_t i = 0; i < 6; ++i) m.Set(i, 0, vals[i]);
  const BinnedDataset binned = BinnedDataset::Create(m, 255);
  EXPECT_EQ(binned.NumBins(0), 3);
  // Codes ordered by value.
  EXPECT_LT(binned.Code(1, 0), binned.Code(2, 0));
  EXPECT_LT(binned.Code(2, 0), binned.Code(0, 0));
}

TEST(BinnedDatasetTest, ManyValuesRespectMaxBins) {
  DataMatrix m(5000, 1);
  Rng rng(1);
  for (size_t i = 0; i < 5000; ++i) {
    m.Set(i, 0, static_cast<float>(rng.Uniform()));
  }
  const BinnedDataset binned = BinnedDataset::Create(m, 64);
  EXPECT_LE(binned.NumBins(0), 64);
  EXPECT_GE(binned.NumBins(0), 32);
  // Every value lands in a bin whose upper edge covers it.
  for (size_t i = 0; i < 5000; ++i) {
    const int code = binned.Code(i, 0);
    EXPECT_LE(m.Get(i, 0), binned.BinUpperEdge(0, code));
    if (code > 0) {
      EXPECT_GT(m.Get(i, 0), binned.BinUpperEdge(0, code - 1));
    }
  }
}

TEST(BinnedDatasetTest, ConstantFeatureSingleBin) {
  DataMatrix m(10, 1);
  for (size_t i = 0; i < 10; ++i) m.Set(i, 0, 7.0f);
  const BinnedDataset binned = BinnedDataset::Create(m);
  EXPECT_EQ(binned.NumBins(0), 1);
}

TEST(TreeLearnerTest, FitsStepFunctionExactly) {
  // y = 10 if x > 0.5 else -10: one split suffices.
  DataMatrix m(200, 1);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    const float x = static_cast<float>(i) / 200.0f;
    m.Set(i, 0, x);
    y[i] = x > 0.5f ? 10.0 : -10.0;
  }
  const BinnedDataset binned = BinnedDataset::Create(m);
  TreeParams params;
  params.max_depth = 2;
  params.min_samples_leaf = 5;
  params.l2_reg = 0.0;
  TreeLearner learner(binned, params);
  std::vector<uint32_t> rows(200);
  for (uint32_t i = 0; i < 200; ++i) rows[i] = i;
  const RegressionTree tree = learner.Fit(rows, y);
  float lo[1] = {0.2f}, hi[1] = {0.8f};
  EXPECT_NEAR(tree.Predict(lo), -10.0, 1e-9);
  EXPECT_NEAR(tree.Predict(hi), 10.0, 1e-9);
}

TEST(TreeLearnerTest, RespectsMaxDepth) {
  DataMatrix m(512, 1);
  std::vector<double> y(512);
  Rng rng(3);
  for (size_t i = 0; i < 512; ++i) {
    m.Set(i, 0, static_cast<float>(rng.Uniform()));
    y[i] = rng.Normal();
  }
  const BinnedDataset binned = BinnedDataset::Create(m);
  TreeParams params;
  params.max_depth = 3;
  params.min_samples_leaf = 1;
  params.min_gain = 0.0;
  TreeLearner learner(binned, params);
  std::vector<uint32_t> rows(512);
  for (uint32_t i = 0; i < 512; ++i) rows[i] = i;
  const RegressionTree tree = learner.Fit(rows, y);
  EXPECT_LE(tree.MaxDepth(), 3);
}

TEST(TreeLearnerTest, PureTargetsMakeLeaf) {
  DataMatrix m(50, 1);
  std::vector<double> y(50, 0.0);
  for (size_t i = 0; i < 50; ++i) m.Set(i, 0, static_cast<float>(i));
  const BinnedDataset binned = BinnedDataset::Create(m);
  TreeLearner learner(binned, TreeParams{});
  std::vector<uint32_t> rows(50);
  for (uint32_t i = 0; i < 50; ++i) rows[i] = i;
  const RegressionTree tree = learner.Fit(rows, y);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

double TestFunction(double a, double b) {
  return 3.0 * a + std::sin(6.0 * b) + a * b;
}

GbdtParams SmallParams() {
  GbdtParams params;
  params.num_trees = 80;
  params.learning_rate = 0.15;
  params.subsample = 1.0;
  params.tree.max_depth = 4;
  params.tree.min_samples_leaf = 5;
  return params;
}

TEST(GbdtRegressorTest, LearnsSmoothFunction) {
  Rng rng(7);
  const size_t n = 3000;
  DataMatrix x(n, 3);  // third feature is noise
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    const double a = rng.Uniform(), b = rng.Uniform(), c = rng.Uniform();
    x.Set(i, 0, static_cast<float>(a));
    x.Set(i, 1, static_cast<float>(b));
    x.Set(i, 2, static_cast<float>(c));
    y[i] = TestFunction(a, b);
  }
  GbdtRegressor model(SmallParams());
  model.Fit(x, y);

  double mse = 0.0;
  Rng test_rng(8);
  const int n_test = 500;
  for (int i = 0; i < n_test; ++i) {
    const float a = static_cast<float>(test_rng.Uniform());
    const float b = static_cast<float>(test_rng.Uniform());
    const float row[3] = {a, b, 0.5f};
    const double d = model.Predict(row) - TestFunction(a, b);
    mse += d * d;
  }
  mse /= n_test;
  // Target variance is ~1.3; the model must explain most of it.
  EXPECT_LT(mse, 0.05);
}

TEST(GbdtRegressorTest, BaseScoreIsTargetMean) {
  DataMatrix x(4, 1);
  for (size_t i = 0; i < 4; ++i) x.Set(i, 0, static_cast<float>(i));
  GbdtParams params = SmallParams();
  params.num_trees = 1;
  GbdtRegressor model(params);
  model.Fit(x, {1.0, 2.0, 3.0, 6.0});
  EXPECT_DOUBLE_EQ(model.base_score(), 3.0);
}

TEST(GbdtRegressorTest, DeterministicWithSeed) {
  Rng rng(9);
  DataMatrix x(500, 2);
  std::vector<double> y(500);
  for (size_t i = 0; i < 500; ++i) {
    x.Set(i, 0, static_cast<float>(rng.Uniform()));
    x.Set(i, 1, static_cast<float>(rng.Uniform()));
    y[i] = x.Get(i, 0) * 2.0 + rng.Normal(0, 0.1);
  }
  GbdtParams params = SmallParams();
  params.subsample = 0.7;
  params.seed = 1234;
  GbdtRegressor a(params), b(params);
  a.Fit(x, y);
  b.Fit(x, y);
  const float row[2] = {0.3f, 0.6f};
  EXPECT_DOUBLE_EQ(a.Predict(row), b.Predict(row));
}

TEST(GbdtRegressorTest, GainImportanceConcentratesOnSignal) {
  Rng rng(11);
  const size_t n = 2000;
  DataMatrix x(n, 4);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t f = 0; f < 4; ++f) x.Set(i, f, static_cast<float>(rng.Uniform()));
    y[i] = 10.0 * x.Get(i, 2);  // only feature 2 matters
  }
  GbdtRegressor model(SmallParams());
  model.Fit(x, y);
  const auto importance = model.GainImportance();
  EXPECT_GT(importance[2], 0.9);
}

TEST(GbdtRegressorTest, SerializeDeserializeRoundTrip) {
  Rng rng(13);
  DataMatrix x(400, 2);
  std::vector<double> y(400);
  for (size_t i = 0; i < 400; ++i) {
    x.Set(i, 0, static_cast<float>(rng.Uniform()));
    x.Set(i, 1, static_cast<float>(rng.Uniform()));
    y[i] = std::sin(5.0 * x.Get(i, 0)) + x.Get(i, 1);
  }
  GbdtRegressor model(SmallParams());
  model.Fit(x, y);
  const std::string text = model.Serialize();

  GbdtRegressor restored;
  ASSERT_TRUE(restored.Deserialize(text));
  for (int i = 0; i < 20; ++i) {
    const float row[2] = {static_cast<float>(rng.Uniform()),
                          static_cast<float>(rng.Uniform())};
    EXPECT_DOUBLE_EQ(model.Predict(row), restored.Predict(row));
  }
}

TEST(GbdtRegressorTest, DeserializeRejectsGarbage) {
  GbdtRegressor model;
  EXPECT_FALSE(model.Deserialize("not a model"));
  EXPECT_FALSE(model.Deserialize("gbdt v2\n"));
  EXPECT_FALSE(model.trained());
}

TEST(GbdtRegressorTest, MoreTreesReduceTrainingError) {
  Rng rng(17);
  const size_t n = 1000;
  DataMatrix x(n, 2);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x.Set(i, 0, static_cast<float>(rng.Uniform()));
    x.Set(i, 1, static_cast<float>(rng.Uniform()));
    y[i] = TestFunction(x.Get(i, 0), x.Get(i, 1));
  }
  auto train_mse = [&](int trees) {
    GbdtParams params = SmallParams();
    params.num_trees = trees;
    GbdtRegressor model(params);
    model.Fit(x, y);
    double mse = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double d = model.Predict(x.Row(i)) - y[i];
      mse += d * d;
    }
    return mse / static_cast<double>(n);
  };
  EXPECT_LT(train_mse(60), train_mse(5));
}

TEST(GbdtRegressorTest, PredictBatchMatchesSinglePredictions) {
  Rng rng(19);
  DataMatrix x(100, 2);
  std::vector<double> y(100);
  for (size_t i = 0; i < 100; ++i) {
    x.Set(i, 0, static_cast<float>(rng.Uniform()));
    x.Set(i, 1, static_cast<float>(rng.Uniform()));
    y[i] = x.Get(i, 0);
  }
  GbdtRegressor model(SmallParams());
  model.Fit(x, y);
  const auto batch = model.PredictBatch(x);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(batch[i], model.Predict(x.Row(i)));
  }
}

TEST(GbdtRegressorTest, EarlyStoppingLimitsTrees) {
  // Tiny noisy dataset: more trees overfit; validation must stop growth.
  Rng rng(23);
  const size_t n = 300;
  DataMatrix x(n, 2), xv(100, 2);
  std::vector<double> y(n), yv(100);
  auto fill = [&](DataMatrix& m, std::vector<double>& t, size_t rows) {
    for (size_t i = 0; i < rows; ++i) {
      m.Set(i, 0, static_cast<float>(rng.Uniform()));
      m.Set(i, 1, static_cast<float>(rng.Uniform()));
      t[i] = m.Get(i, 0) + rng.Normal(0.0, 0.5);  // heavy noise
    }
  };
  fill(x, y, n);
  fill(xv, yv, 100);

  GbdtParams params = SmallParams();
  params.num_trees = 400;
  params.tree.min_samples_leaf = 2;
  GbdtRegressor model(params);
  const int kept = model.FitWithValidation(x, y, xv, yv, /*early_stopping_rounds=*/8);
  EXPECT_LT(kept, 400);
  EXPECT_EQ(model.trees().size(), static_cast<size_t>(kept));
  EXPECT_TRUE(model.trained());
}

TEST(GbdtRegressorTest, EarlyStoppingNoWorseThanFullFitOnValidation) {
  Rng rng(29);
  const size_t n = 600;
  DataMatrix x(n, 2), xv(200, 2);
  std::vector<double> y(n), yv(200);
  auto fill = [&](DataMatrix& m, std::vector<double>& t, size_t rows) {
    for (size_t i = 0; i < rows; ++i) {
      m.Set(i, 0, static_cast<float>(rng.Uniform()));
      m.Set(i, 1, static_cast<float>(rng.Uniform()));
      t[i] = std::sin(6.0 * m.Get(i, 0)) + rng.Normal(0.0, 0.4);
    }
  };
  fill(x, y, n);
  fill(xv, yv, 200);

  auto valid_mse = [&](const GbdtRegressor& model) {
    double mse = 0.0;
    for (size_t i = 0; i < 200; ++i) {
      const double d = model.Predict(xv.Row(i)) - yv[i];
      mse += d * d;
    }
    return mse / 200.0;
  };
  GbdtParams params = SmallParams();
  params.num_trees = 300;
  params.tree.min_samples_leaf = 2;
  GbdtRegressor stopped(params), full(params);
  stopped.FitWithValidation(x, y, xv, yv, 10);
  full.Fit(x, y);
  EXPECT_LE(valid_mse(stopped), valid_mse(full) + 1e-9);
}

TEST(GbdtRegressorTest, EarlyStoppedModelSerializes) {
  Rng rng(31);
  DataMatrix x(200, 1), xv(50, 1);
  std::vector<double> y(200), yv(50);
  for (size_t i = 0; i < 200; ++i) {
    x.Set(i, 0, static_cast<float>(rng.Uniform()));
    y[i] = x.Get(i, 0);
  }
  for (size_t i = 0; i < 50; ++i) {
    xv.Set(i, 0, static_cast<float>(rng.Uniform()));
    yv[i] = xv.Get(i, 0);
  }
  GbdtRegressor model(SmallParams());
  model.FitWithValidation(x, y, xv, yv, 5);
  GbdtRegressor restored;
  ASSERT_TRUE(restored.Deserialize(model.Serialize()));
  const float row[1] = {0.4f};
  EXPECT_DOUBLE_EQ(model.Predict(row), restored.Predict(row));
}

}  // namespace
}  // namespace horizon::gbdt

