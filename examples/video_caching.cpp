// Popularity-driven caching tiers -- the application of Tang et al. [44]
// (Facebook video popularity prediction for higher-quality streaming),
// which the paper cites as the scalable-prediction precedent.
//
// Each content item is assigned to a processing/caching tier by its
// predicted views over the next 6 hours:
//   hot  tier (re-encoded + edge-cached)   -- expensive, capacity-limited,
//   warm tier (cached at region)           -- moderate,
//   cold tier (origin only)                -- free.
// We measure the fraction of future views served from each tier under
// model-based assignment vs a follower-count heuristic vs an oracle.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/hawkes_predictor.h"
#include "core/trainer.h"
#include "datagen/generator.h"
#include "eval/split.h"
#include "features/extractor.h"

using namespace horizon;

int main() {
  std::printf("== popularity-driven caching tiers ==\n\n");

  datagen::GeneratorConfig gen_config;
  gen_config.num_pages = 120;
  gen_config.num_posts = 1500;
  gen_config.base_mean_size = 150.0;
  gen_config.seed = 21;
  const auto dataset = datagen::Generator(gen_config).Generate();

  const features::FeatureExtractor extractor(stream::TrackerConfig{});
  const eval::Split split = eval::SplitIndices(dataset.cascades.size(), 0.4, 5);

  core::ExampleSetOptions options;
  options.reference_horizons = {6 * kHour};
  const auto train = core::BuildExampleSet(dataset, split.train, extractor, options);
  core::HawkesPredictorParams params;
  params.reference_horizons = options.reference_horizons;
  core::HawkesPredictor model(params);
  model.Fit(train.x, train.log1p_increments, train.alpha_targets);

  // Assignment happens when each item is 1 hour old.
  const double s = 1 * kHour;
  const double horizon = 6 * kHour;

  struct Item {
    size_t cascade_index;
    double score_model;
    double score_followers;
    double future_views;  // oracle score and the evaluation ground truth
  };
  std::vector<Item> items;
  for (size_t idx : split.test) {
    const auto& cascade = dataset.cascades[idx];
    const auto snapshot = extractor.ReplaySnapshot(cascade, s);
    const auto row =
        extractor.Extract(dataset.PageOf(cascade.post), cascade.post, snapshot);
    const double n_s = static_cast<double>(cascade.ViewsBefore(s));
    Item item;
    item.cascade_index = idx;
    item.score_model = model.PredictCount(row.data(), n_s, horizon) - n_s;
    item.score_followers = dataset.PageOf(cascade.post).followers;
    item.future_views = core::TrueIncrement(cascade, s, horizon);
    items.push_back(item);
  }

  // Tier capacities: hot holds 5% of items, warm the next 15%.
  const size_t hot_cap = items.size() / 20;
  const size_t warm_cap = items.size() * 3 / 20;

  auto evaluate = [&](const char* name, auto&& score_of) {
    std::vector<size_t> order(items.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return score_of(items[a]) > score_of(items[b]);
    });
    double hot = 0.0, warm = 0.0, total = 0.0;
    for (size_t rank = 0; rank < order.size(); ++rank) {
      const double v = items[order[rank]].future_views;
      total += v;
      if (rank < hot_cap) hot += v;
      else if (rank < hot_cap + warm_cap) warm += v;
    }
    std::printf("  %-22s hot %5.1f%%   warm %5.1f%%   cold %5.1f%% of views\n",
                name, 100.0 * hot / total, 100.0 * warm / total,
                100.0 * (total - hot - warm) / total);
    return hot + warm;
  };

  std::printf("tiers: hot = top %zu items, warm = next %zu of %zu; views over "
              "the next %s\n\n",
              hot_cap, warm_cap, items.size(), FormatDuration(horizon).c_str());
  const double by_followers =
      evaluate("follower heuristic", [](const Item& i) { return i.score_followers; });
  const double by_model =
      evaluate("HWK prediction", [](const Item& i) { return i.score_model; });
  const double by_oracle =
      evaluate("oracle", [](const Item& i) { return i.future_views; });

  std::printf("\ncached-view lift over the follower heuristic: %.1f%% (oracle: "
              "%.1f%%)\n",
              100.0 * (by_model / by_followers - 1.0),
              100.0 * (by_oracle / by_followers - 1.0));
  return 0;
}
