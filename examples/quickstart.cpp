// Quickstart: the full life of one content item.
//
//   1. simulate a view cascade (marked exponential-kernel Hawkes),
//   2. track it in O(1) space with a CascadeTracker,
//   3. train a small HWK model on a synthetic workload,
//   4. query the popularity over several horizons at two prediction times.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/hawkes_predictor.h"
#include "core/trainer.h"
#include "datagen/generator.h"
#include "eval/split.h"
#include "features/extractor.h"

using namespace horizon;

int main() {
  std::printf("== horizon quickstart ==\n\n");

  // --- 1. A workload: pages, posts, cascades --------------------------
  datagen::GeneratorConfig gen_config;
  gen_config.num_pages = 80;
  gen_config.num_posts = 700;
  gen_config.base_mean_size = 120.0;
  gen_config.seed = 42;
  const datagen::SyntheticDataset dataset =
      datagen::Generator(gen_config).Generate();
  std::printf("generated %zu cascades from %zu pages\n", dataset.cascades.size(),
              dataset.pages.size());

  // --- 2. O(1)-state tracking and feature extraction ------------------
  const stream::TrackerConfig tracker_config;
  const features::FeatureExtractor extractor(tracker_config);
  std::printf("feature schema: %zu features\n\n", extractor.schema().size());

  // --- 3. Train an HWK (6h, 1d) model ---------------------------------
  const eval::Split split = eval::SplitIndices(dataset.cascades.size(), 0.25, 1);
  core::ExampleSetOptions options;
  options.reference_horizons = {6 * kHour, 1 * kDay};
  const core::ExampleSet train =
      core::BuildExampleSet(dataset, split.train, extractor, options);

  core::HawkesPredictorParams params;
  params.reference_horizons = options.reference_horizons;
  core::HawkesPredictor model(params);
  model.Fit(train.x, train.log1p_increments, train.alpha_targets);
  std::printf("trained HWK(6h,1d) on %zu examples\n\n", train.size());

  // --- 4. Predict one held-out item over arbitrary horizons -----------
  const size_t item = split.test[0];
  const datagen::Cascade& cascade = dataset.cascades[item];
  const datagen::PageProfile& page = dataset.PageOf(cascade.post);
  std::printf("held-out post %d (media=%s, page followers=%.0f): %zu total views\n",
              cascade.post.id, datagen::MediaTypeName(cascade.post.media),
              page.followers, cascade.TotalViews());

  for (double s : {2 * kHour, 1 * kDay}) {
    // In production the tracker runs incrementally; here we replay.
    const auto snapshot = extractor.ReplaySnapshot(cascade, s);
    const auto row = extractor.Extract(page, cascade.post, snapshot);
    const double n_s = static_cast<double>(cascade.ViewsBefore(s));
    std::printf("\nprediction time s = %s (N(s) = %.0f, alpha_hat = %.2f/day):\n",
                FormatDuration(s).c_str(), n_s, model.PredictAlpha(row.data()) * kDay);
    std::printf("  %-8s %12s %12s\n", "horizon", "predicted", "actual");
    for (double delta : {3 * kHour, 12 * kHour, 1 * kDay, 3 * kDay, 7 * kDay}) {
      const double predicted = model.PredictCount(row.data(), n_s, delta);
      const double actual = n_s + core::TrueIncrement(cascade, s, delta);
      std::printf("  %-8s %12.0f %12.0f\n", FormatDuration(delta).c_str(), predicted,
                  actual);
    }
  }
  std::printf("\ndone.\n");
  return 0;
}
