// Streaming deployment: a PredictionService ingesting the interleaved
// event stream of a whole platform -- the "operate at global scale" shape
// from Sec. 1.  Items register on creation, events arrive in global time
// order, periodic sweeps retire dead items, and a live "virality board"
// (top-k by predicted next-day views) is produced on the fly.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/timer.h"
#include "core/trainer.h"
#include "datagen/event_stream.h"
#include "eval/split.h"
#include "serving/prediction_service.h"

using namespace horizon;

int main() {
  std::printf("== streaming prediction service ==\n\n");

  // Train a model offline on historical data.
  datagen::GeneratorConfig gen_config;
  gen_config.num_pages = 100;
  gen_config.num_posts = 900;
  gen_config.base_mean_size = 120.0;
  gen_config.seed = 77;
  const auto history = datagen::Generator(gen_config).Generate();
  const features::FeatureExtractor extractor(stream::TrackerConfig{});
  std::vector<size_t> all(history.cascades.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  core::ExampleSetOptions options;
  options.reference_horizons = {6 * kHour, 1 * kDay};
  const auto examples = core::BuildExampleSet(history, all, extractor, options);
  core::HawkesPredictorParams params;
  params.reference_horizons = options.reference_horizons;
  core::HawkesPredictor model(params);
  model.Fit(examples.x, examples.log1p_increments, examples.alpha_targets);
  std::printf("offline: trained HWK(6h,1d) on %zu examples\n", examples.size());

  // Fresh traffic: a new day's worth of posts, interleaved into one stream.
  gen_config.num_posts = 400;
  gen_config.seed = 78;
  const auto live = datagen::Generator(gen_config).Generate();
  datagen::EventStreamOptions stream_options;
  stream_options.max_age = 2 * kDay;
  stream_options.include_comments = false;
  stream_options.include_reactions = false;
  const auto stream_events = datagen::BuildEventStream(live, stream_options);
  std::printf("live stream: %zu events across %zu items\n\n", stream_events.size(),
              live.cascades.size());

  serving::ServiceConfig service_config;
  service_config.idle_retirement_age = 5 * kDay;
  serving::PredictionService service(&model, &extractor, service_config);
  for (size_t i = 0; i < live.cascades.size(); ++i) {
    const auto& cascade = live.cascades[i];
    // Ids are unique by construction; registration cannot fail here.
    (void)service.RegisterItem(static_cast<int64_t>(i),
                               cascade.post.creation_time,
                               live.PageOf(cascade.post), cascade.post);
  }

  Timer timer;
  size_t processed = 0;
  double next_board = 12 * kHour;
  for (const datagen::PlatformEvent& event : stream_events) {
    if (event.time >= next_board) {
      const auto board = service.TopK(event.time, 1 * kDay, 3);
      std::printf("t=%5.1fh virality board:", event.time / kHour);
      for (const auto& [id, inc] : board) {
        std::printf("  item %3lld (+%.0f views/d)", static_cast<long long>(id), inc);
      }
      std::printf("\n");
      next_board += 12 * kHour;
    }
    // Events for already-retired items are dropped by design (late
    // stragglers); the demo keeps streaming.
    (void)service.Ingest(event.post_id, event.type, event.time);
    ++processed;
  }
  const double elapsed = timer.ElapsedSeconds();
  std::printf("\nprocessed %zu events in %.2f s (%.0fk events/s), %zu live items\n",
              processed, elapsed, processed / elapsed / 1e3, service.LiveItems());

  const size_t retired = service.RetireDeadItems(16 * kDay);
  std::printf("retirement sweep at day 16: retired %zu items, %zu remain\n",
              retired, service.LiveItems());
  std::printf("stats: %llu registered, %llu events, %llu queries\n",
              static_cast<unsigned long long>(service.stats().items_registered),
              static_cast<unsigned long long>(service.stats().events_ingested),
              static_cast<unsigned long long>(service.stats().queries_answered));
  return 0;
}
