// Content moderation review-queue prioritization -- the paper's motivating
// application (Sec. 1).  A stream of flagged posts waits for human review
// with limited reviewer throughput.  Ordering the queue by predicted
// views-over-the-next-day concentrates reviews on the items that would
// otherwise accumulate the most exposure.
//
// The example measures "harmful views averted": for the subset of flagged
// posts that are truly violating, the views that occur after their review
// deadline are prevented.  We compare FIFO, predicted-virality ordering
// (the HWK model), and an oracle that knows future view counts.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/hawkes_predictor.h"
#include "core/trainer.h"
#include "datagen/generator.h"
#include "eval/split.h"
#include "features/extractor.h"

using namespace horizon;

namespace {

struct Flagged {
  size_t cascade_index;
  double flag_age;       // content age when flagged
  bool violating;        // ground truth (known only after review)
  double priority;       // model score
  double future_views;   // oracle: views in (flag, flag + 1d)
};

// Views prevented if a violating item is reviewed (and removed) at
// `review_age` instead of never.
double ViewsAverted(const datagen::Cascade& cascade, double review_age) {
  return static_cast<double>(cascade.TotalViews() -
                             cascade.ViewsBefore(review_age));
}

}  // namespace

int main() {
  std::printf("== content moderation queue prioritization ==\n\n");

  datagen::GeneratorConfig gen_config;
  gen_config.num_pages = 120;
  gen_config.num_posts = 1200;
  gen_config.base_mean_size = 150.0;
  gen_config.seed = 7;
  const auto dataset = datagen::Generator(gen_config).Generate();

  const features::FeatureExtractor extractor(stream::TrackerConfig{});
  const eval::Split split = eval::SplitIndices(dataset.cascades.size(), 0.4, 3);

  // Train the predictor on the non-flagged population.
  core::ExampleSetOptions options;
  options.reference_horizons = {6 * kHour, 1 * kDay};
  const auto train = core::BuildExampleSet(dataset, split.train, extractor, options);
  core::HawkesPredictorParams params;
  params.reference_horizons = options.reference_horizons;
  core::HawkesPredictor model(params);
  model.Fit(train.x, train.log1p_increments, train.alpha_targets);

  // The flagged stream: test cascades get flagged at a random early age;
  // 30% are truly violating.
  Rng rng(99);
  std::vector<Flagged> queue;
  for (size_t idx : split.test) {
    const auto& cascade = dataset.cascades[idx];
    Flagged f;
    f.cascade_index = idx;
    f.flag_age = rng.Uniform(1 * kHour, 12 * kHour);
    f.violating = rng.Bernoulli(0.3);
    const auto snapshot = extractor.ReplaySnapshot(cascade, f.flag_age);
    const auto row = extractor.Extract(dataset.PageOf(cascade.post), cascade.post,
                                       snapshot);
    const double n_s = static_cast<double>(cascade.ViewsBefore(f.flag_age));
    // Priority: predicted views over the next day (the "urgency" horizon).
    f.priority = model.PredictCount(row.data(), n_s, 1 * kDay) - n_s;
    f.future_views = core::TrueIncrement(cascade, f.flag_age, 1 * kDay);
    queue.push_back(f);
  }
  std::printf("flagged queue: %zu items, %.0f%% violating\n", queue.size(),
              100.0 * 0.3);

  // Reviewer capacity: each review takes a fixed slot; the k-th reviewed
  // item is handled at flag_age + k * slot.
  const double slot = 10 * kMinute;

  auto evaluate_order = [&](const char* name, std::vector<size_t> order) {
    double averted = 0.0, total_harm = 0.0;
    for (size_t rank = 0; rank < order.size(); ++rank) {
      const Flagged& f = queue[order[rank]];
      const auto& cascade = dataset.cascades[f.cascade_index];
      if (!f.violating) continue;
      total_harm += ViewsAverted(cascade, f.flag_age);  // harm if never reviewed
      const double review_age = f.flag_age + static_cast<double>(rank + 1) * slot;
      averted += ViewsAverted(cascade, review_age);
    }
    std::printf("  %-22s averted %12.0f / %12.0f harmful views (%.1f%%)\n", name,
                averted, total_harm, 100.0 * averted / total_harm);
    return averted;
  };

  std::printf("\nreview throughput: one item per %s\n\n",
              FormatDuration(slot).c_str());

  std::vector<size_t> fifo(queue.size());
  std::iota(fifo.begin(), fifo.end(), size_t{0});
  std::sort(fifo.begin(), fifo.end(), [&](size_t a, size_t b) {
    return queue[a].flag_age < queue[b].flag_age;
  });

  std::vector<size_t> by_priority = fifo;
  std::sort(by_priority.begin(), by_priority.end(), [&](size_t a, size_t b) {
    return queue[a].priority > queue[b].priority;
  });

  std::vector<size_t> oracle = fifo;
  std::sort(oracle.begin(), oracle.end(), [&](size_t a, size_t b) {
    return queue[a].future_views > queue[b].future_views;
  });

  const double fifo_averted = evaluate_order("FIFO", fifo);
  const double model_averted = evaluate_order("HWK-predicted order", by_priority);
  const double oracle_averted = evaluate_order("oracle order", oracle);

  std::printf("\nmodel captures %.1f%% of the oracle's improvement over FIFO\n",
              100.0 * (model_averted - fifo_averted) /
                  std::max(oracle_averted - fifo_averted, 1.0));
  return 0;
}
