// Relative-growth alarms (Appendix A.11): "will this cascade at least
// double?"  Demonstrates the two decision rules on simulated cascades with
// known parameters:
//   Eq. 25:  lambda(s) >= (c-1) alpha N(s)                (point rule)
//   Eq. 26:  lambda(s) >= (c-1 + chi(N(s))) alpha N(s)    (1-delta confidence)
// and reports their empirical precision/recall.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/relative_growth.h"
#include "common/rng.h"
#include "common/units.h"
#include "pointprocess/exp_hawkes.h"

using namespace horizon;

int main() {
  std::printf("== relative growth (doubling) alarms ==\n\n");

  // A heterogeneous population: items differ in timescale (beta) and
  // audience (lambda0), so at alarm time some items still have most of
  // their growth ahead of them while others are nearly exhausted.
  const double s = 12 * kHour;  // alarm evaluation age
  const double c = 2.0;         // "will it double?"
  const double confidence_delta = 0.2;

  Rng rng(123);
  struct Tally {
    int fired = 0, fired_true = 0, missed_true = 0, total_true = 0, total = 0;
  };
  Tally simple, confident;

  pp::SimulateOptions options;
  options.horizon = 30 * kDay;
  for (int rep = 0; rep < 3000; ++rep) {
    pp::ExpHawkesParams item;
    item.beta = 3.0 / kDay * rng.LogNormal(0.0, 0.8);
    item.marks = std::make_shared<pp::LogNormalMark>(0.5, 0.7);
    const double alpha = item.alpha();
    const double sigma_sq = pp::SigmaSquared(item.beta, item.rho1(), item.rho2());
    item.lambda0 = rng.LogNormal(std::log(100.0 * alpha), 1.0);
    const auto events = pp::SimulateExpHawkes(item, options, rng);
    const size_t n_s = pp::CountBefore(events, s);
    if (n_s < 5) continue;
    const double lambda_s = pp::ExpHawkesIntensity(events, item, s);
    const bool doubled =
        static_cast<double>(events.size()) >= c * static_cast<double>(n_s);

    const bool fire_simple = core::PredictRelativeGrowth(
        lambda_s, alpha, static_cast<double>(n_s), c);
    const bool fire_confident = core::PredictRelativeGrowthWithConfidence(
        lambda_s, alpha, static_cast<double>(n_s), c, sigma_sq, confidence_delta);

    for (auto [tally, fired] :
         {std::pair{&simple, fire_simple}, std::pair{&confident, fire_confident}}) {
      ++tally->total;
      if (doubled) ++tally->total_true;
      if (fired) {
        ++tally->fired;
        if (doubled) ++tally->fired_true;
      } else if (doubled) {
        ++tally->missed_true;
      }
    }
  }

  auto report = [](const char* name, const Tally& t) {
    std::printf("%-28s fired %4d/%4d  precision %.2f  recall %.2f\n", name,
                t.fired, t.total,
                t.fired > 0 ? static_cast<double>(t.fired_true) / t.fired : 0.0,
                t.total_true > 0
                    ? static_cast<double>(t.fired_true) / t.total_true
                    : 0.0);
  };
  std::printf("alarm at age %s, growth factor c = %.1f, base rate of doubling "
              "= %.2f\n\n",
              FormatDuration(s).c_str(), c,
              static_cast<double>(simple.total_true) / simple.total);
  report("Eq. 25 (point rule)", simple);
  report("Eq. 26 (80% confidence)", confident);

  std::printf("\nThe confidence rule trades recall for precision: it fires less "
              "often but\nits alarms double with probability >= 1 - delta. "
              "(Uses the corrected\nSigma^2; see exp_hawkes.h.)\n");
  return 0;
}
