#!/usr/bin/env python3
"""horizon_lint: project-invariant linter for the horizon repository.

Enforces repo-specific rules that generic tools (clang-tidy, TSA) cannot
express.  Runs in CI and as a `ctest -L lint` test; zero findings is the
only passing state.

Rules
-----
determinism   src/sim and src/datagen must stay deterministic: a single
              seed must reproduce bit-identically on every machine (the
              DST harness and the nightly seed sweeps depend on it), so
              rand()/srand(), std::random_device, and every wall/steady
              clock source (time(), clock(), gettimeofday,
              std::chrono::*_clock) are banned there.  Simulation time is
              the virtual clock; randomness comes from horizon::Rng
              seeded by the schedule.
naked-new     No naked `new` / `delete` expressions anywhere in src/.
              Ownership goes through std::unique_ptr / containers.  The
              three intentionally leaked process-wide singletons carry an
              allow-comment with a justification.
raw-mutex     No std::mutex / std::lock_guard / std::unique_lock /
              std::scoped_lock / std::shared_mutex / std::condition_variable
              in src/ outside common/annotations.h: every lock must be a
              horizon::Mutex acquired via horizon::MutexLock so clang's
              Thread-Safety Analysis sees it.  (Tests and benches are
              exempt; they are not part of the annotated serving stack.)
serving-status  Public *mutating* member functions declared in
              src/serving/*.h must return Status or StatusOr<T>: every
              serving entry point that can fail must say how.  Const
              accessors are exempt (they cannot fail by contract);
              count-returning batch helpers carry an allow-comment
              justifying the exception.
shard-mutation  Inside src/serving/, all writes to Shard state -- the
              `items` map (emplace/erase/clear/insert/operator[]/...)
              and the per-item `tracker.Observe(...)` call -- must go
              through the Apply* surface in shard_apply.cc, the only
              file exempt from this rule.  The async-ingest DST
              equivalence argument depends on every state change being
              a group commit or a drained barrier op; a direct mutation
              anywhere else would bypass copy-on-write and corrupt
              published ShardView snapshots.
forest-traversal  Outside src/gbdt/, no direct indexing into a compiled
              forest's node arrays (the raw_features / raw_thresholds /
              raw_left / raw_values / raw_roots / raw_qthresholds /
              raw_leaves accessors): call sites must go through the
              traversal API (Predict / PredictBatch / PredictStrided /
              PredictCodes), which is what keeps the node layout --
              depth-first flat vs breadth-first blocked vs quantized --
              free to change without breaking callers.  The raw spans
              exist for the gbdt kernels, serialization, and tests.

Suppression
-----------
A finding is suppressed by an allow-comment on the same line or the line
directly above the offending one:

    // horizon-lint: allow(<rule>) -- <justification>

The justification is mandatory; an allow-comment without one is itself a
finding (rule `bad-allow`).

Self-test
---------
`horizon_lint.py --self-test` copies the known-bad fixture files from
tests/lint_fixtures/ into a synthetic tree and asserts that every rule
fires on its bad fixture and stays quiet on the clean one.
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import sys
import tempfile

# --------------------------------------------------------------------------
# Source preprocessing

ALLOW_RE = re.compile(
    r"//\s*horizon-lint:\s*allow\(([a-z-]+)\)(?:\s*(?:--|:)\s*(.*\S))?")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving newlines
    (and the horizon-lint allow markers, which live in comments but are
    parsed separately from the raw text)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                if text[j] == "\n":  # unterminated; bail at line end
                    break
                j += 1
            out.append(quote + " " * max(0, j - i - 2) + (quote if j <= n and j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class File:
    def __init__(self, path: str, rel: str):
        self.path = path
        self.rel = rel
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw = f.read()
        self.raw_lines = self.raw.splitlines()
        self.code_lines = strip_comments_and_strings(self.raw).splitlines()
        # An allow-comment covers its own line and the next line that
        # carries code, skipping blank lines and the rest of its own
        # (possibly multi-line) comment.  allows maps covered line ->
        # (rule, justification or None).
        self.allows = {}
        for lineno, line in enumerate(self.raw_lines, start=1):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            entry = (m.group(1), m.group(2))
            self.allows.setdefault(lineno, entry)
            target = lineno + 1
            while target <= len(self.code_lines) and \
                    not self.code_lines[target - 1].strip():
                target += 1
            if target <= len(self.code_lines):
                self.allows.setdefault(target, entry)

    def allowed(self, rule: str, lineno: int):
        """Returns the allow entry covering `lineno` for `rule`, if any."""
        entry = self.allows.get(lineno)
        if entry and entry[0] == rule:
            return lineno, entry
        return None


class Finding:
    def __init__(self, rule: str, rel: str, lineno: int, message: str):
        self.rule = rule
        self.rel = rel
        self.lineno = lineno
        self.message = message

    def __str__(self):
        return f"{self.rel}:{self.lineno}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Rules

DETERMINISM_PATTERNS = [
    (re.compile(r"(?<![\w])(?:std\s*::\s*)?s?rand\s*\(|(?<![\w:])s?rand\s*\("),
     "rand()/srand()"),
    (re.compile(r"std\s*::\s*random_device"), "std::random_device"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|\))"), "time()"),
    (re.compile(r"(?<![\w:])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"gettimeofday|clock_gettime"), "wall-clock syscall"),
    (re.compile(r"(?:system|steady|high_resolution)_clock"),
     "std::chrono clock"),
]

DETERMINISM_DIRS = ("src/sim/", "src/datagen/")


def check_determinism(f: File, findings):
    if not f.rel.startswith(DETERMINISM_DIRS):
        return
    for lineno, line in enumerate(f.code_lines, start=1):
        for pat, what in DETERMINISM_PATTERNS:
            if pat.search(line):
                emit(findings, f, "determinism", lineno,
                     f"{what} breaks seed-reproducibility; use the virtual "
                     "clock / horizon::Rng")


NEW_RE = re.compile(r"(?<![\w_])new\s+(?:\(|[\w:<])")
DELETE_RE = re.compile(r"(?<![\w_])delete(?:\s*\[\s*\])?\s+[\w(*]")


def check_naked_new(f: File, findings):
    for lineno, line in enumerate(f.code_lines, start=1):
        if NEW_RE.search(line):
            emit(findings, f, "naked-new", lineno,
                 "naked `new`; use std::make_unique or a container")
        if DELETE_RE.search(line):
            emit(findings, f, "naked-new", lineno,
                 "naked `delete`; ownership must be RAII-managed")


RAW_MUTEX_RE = re.compile(
    r"std\s*::\s*(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable)")


def check_raw_mutex(f: File, findings):
    if f.rel == "src/common/annotations.h":
        return  # the one place allowed to touch the raw primitives
    for lineno, line in enumerate(f.code_lines, start=1):
        m = RAW_MUTEX_RE.search(line)
        if m:
            emit(findings, f, "raw-mutex", lineno,
                 f"std::{m.group(1)} bypasses the annotated horizon::Mutex/"
                 "MutexLock wrapper (common/annotations.h)")


# Matches a member-function declaration line and captures the return type
# and name.  Heuristic by design: good enough for this codebase's style
# (one declaration per line, return type first, no trailing return types).
MEMBER_FN_RE = re.compile(
    r"^\s*(?:virtual\s+|static\s+|explicit\s+|inline\s+)*"
    r"(?P<ret>[A-Za-z_][\w:<>,*& ]*?)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*\(")
STATUS_RET_RE = re.compile(r"^(?:horizon\s*::\s*)?(?:Status|StatusOr\s*<)")


def check_serving_status(f: File, findings):
    if not (f.rel.startswith("src/serving/") and f.rel.endswith(".h")):
        return
    access = None  # None until inside a class; then 'public'/'protected'/...
    depth = 0
    class_depth = None
    # Join declarations that span lines so the "const" qualifier and the
    # closing ')' are visible on the matched line.
    joined = {}
    lines = f.code_lines
    for lineno, line in enumerate(lines, start=1):
        stmt = line
        k = lineno
        while (stmt.count("(") > stmt.count(")")) and k < len(lines):
            stmt += " " + lines[k].strip()
            k += 1
        joined[lineno] = stmt
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if class_depth is None and re.match(r"(class|struct)\s+\w+", stripped) \
                and ";" not in stripped:
            class_depth = depth
            # struct members are public by default; class members private.
            access = "public" if stripped.startswith("struct") else "private"
        if re.match(r"public\s*:", stripped):
            access = "public"
        elif re.match(r"(private|protected)\s*:", stripped):
            access = stripped.split(":")[0].strip()
        depth += line.count("{") - line.count("}")
        if class_depth is not None and depth <= class_depth:
            class_depth, access = None, None
        if access != "public":
            continue
        stmt = joined[lineno]
        m = MEMBER_FN_RE.match(stmt)
        if not m:
            continue
        ret, name = m.group("ret").strip(), m.group("name")
        if ret in ("return", "else", "new", "case", "using", "typedef"):
            continue
        if name in ("operator", "if", "for", "while", "switch"):
            continue
        if STATUS_RET_RE.match(ret):
            continue
        # Const accessors cannot fail by contract; constructors have no
        # return type (the regex then mis-captures, but their "name" equals
        # the class name which never matches a verb-like method -- filter
        # by requiring the captured return type to be a known non-type is
        # not tractable; instead skip decls whose statement ends in
        # "= delete;" / "= default;" and decls that are const).
        after_paren = stmt[stmt.index("("):]
        if re.search(r"\)\s*(const|=\s*(delete|default))", after_paren):
            continue
        if "HORIZON_" in ret:  # annotation macro line, not a declaration
            continue
        emit(findings, f, "serving-status", lineno,
             f"public mutating serving entry point `{name}` returns "
             f"`{ret}`; fallible serving APIs must return Status/StatusOr")


SHARD_MUTATION_PATTERNS = [
    (re.compile(r"(?<![\w])items\s*(?:\.|->)\s*"
                r"(emplace|try_emplace|insert|insert_or_assign|erase|clear|"
                r"extract|merge|swap|rehash|reserve)\s*\("),
     "mutating call on a Shard items map"),
    (re.compile(r"(?<![\w])items\s*\["),
     "operator[] on a Shard items map (default-inserts)"),
    (re.compile(r"(?<![\w])tracker\s*(?:\.|->)\s*Observe\s*\("),
     "tracker.Observe() outside the apply path"),
    # Binding a mutable reference to the map sidesteps every pattern
    # above: `auto& m = shard.items; m.erase(id);` mutates through the
    # alias.  `const auto&` stays legal (read-only view).
    (re.compile(r"(?<!const\s)(?:ItemMap\s*&|auto\s*&)\s*\w+\s*=\s*"
                r"[\w.>\-]*\bitems\b(?!\s*(?:\.|->)\s*(?:at|find|count|"
                r"size|empty|begin|end|cbegin|cend|contains)\b)"),
     "mutable reference bound to a Shard items map (alias mutation)"),
]

# Inside shard_apply.cc itself the mutation calls are the point, but a
# lambda returned from the file carries the mutation capability out to
# callers that run outside the group-commit protocol.
SHARD_ESCAPE_RE = re.compile(r"\breturn\s*\[")


def check_shard_mutation(f: File, findings):
    if not f.rel.startswith("src/serving/"):
        return
    if f.rel == "src/serving/shard_apply.cc":
        # The one mutation surface (see shard.h): direct mutation is
        # legal here, but handing the capability out via a returned
        # lambda re-opens every hole this rule closes elsewhere.
        for lineno, line in enumerate(f.code_lines, start=1):
            if SHARD_ESCAPE_RE.search(line):
                emit(findings, f, "shard-mutation", lineno,
                     "lambda returned from shard_apply.cc; a callable "
                     "that escapes the mutation surface can run Apply* "
                     "logic outside the group-commit protocol -- return "
                     "data, not closures")
        return
    for lineno, line in enumerate(f.code_lines, start=1):
        for pat, what in SHARD_MUTATION_PATTERNS:
            if pat.search(line):
                emit(findings, f, "shard-mutation", lineno,
                     f"{what}; Shard state changes must go through the "
                     "Apply* functions in shard_apply.cc so group-commit "
                     "copy-on-write keeps published views frozen")


FOREST_RAW_RE = re.compile(
    r"(?<![\w])raw_(features|thresholds|left|values|roots|qthresholds|"
    r"leaves)\s*\(")


def check_forest_traversal(f: File, findings):
    if f.rel.startswith("src/gbdt/"):
        return  # the kernels and compilers own the node layout
    for lineno, line in enumerate(f.code_lines, start=1):
        m = FOREST_RAW_RE.search(line)
        if m:
            emit(findings, f, "forest-traversal", lineno,
                 f"raw_{m.group(1)}() indexes forest node arrays directly; "
                 "use the traversal API (Predict*/PredictStrided/"
                 "PredictCodes) so the node layout stays private to "
                 "src/gbdt/")


def emit(findings, f: File, rule: str, lineno: int, message: str):
    hit = f.allowed(rule, lineno)
    if hit:
        _, (rule_name, justification) = hit
        if not justification:
            findings.append(Finding(
                "bad-allow", f.rel, lineno,
                f"allow({rule_name}) without a justification"))
        return
    findings.append(Finding(rule, f.rel, lineno, message))


CHECKS = [check_determinism, check_naked_new, check_raw_mutex,
          check_serving_status, check_shard_mutation,
          check_forest_traversal]


# --------------------------------------------------------------------------
# Driver

def lint_tree(root: str):
    findings = []
    files = []
    src = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if not name.endswith((".h", ".cc", ".cpp")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            files.append(File(path, rel))
    for f in files:
        for check in CHECKS:
            check(f, findings)
    return findings


def run_self_test(repo_root: str) -> int:
    """Copies each bad fixture into the src/ position its rule watches and
    asserts the rule fires (and that the allow-comment variant silences
    it); then asserts the clean fixture produces no findings."""
    fixtures = os.path.join(repo_root, "tests", "lint_fixtures")
    cases = [
        ("bad_determinism.cc", "src/sim/bad_determinism.cc", "determinism"),
        ("bad_determinism.cc", "src/datagen/bad_determinism.cc", "determinism"),
        ("bad_naked_new.cc", "src/core/bad_naked_new.cc", "naked-new"),
        ("bad_raw_mutex.cc", "src/stream/bad_raw_mutex.cc", "raw-mutex"),
        ("bad_serving_status.h", "src/serving/bad_serving_status.h",
         "serving-status"),
        ("bad_allow_no_reason.cc", "src/common/bad_allow_no_reason.cc",
         "bad-allow"),
        ("bad_forest_index.cc", "src/core/bad_forest_index.cc",
         "forest-traversal"),
        ("bad_forest_index.cc", "src/serving/bad_forest_index.cc",
         "forest-traversal"),
        ("bad_shard_mutation.cc", "src/serving/bad_shard_mutation.cc",
         "shard-mutation"),
        ("bad_shard_alias.cc", "src/serving/bad_shard_alias.cc",
         "shard-mutation"),
        ("bad_shard_lambda.cc", "src/serving/shard_apply.cc",
         "shard-mutation"),
    ]
    failures = []
    for fixture, dest_rel, rule in cases:
        with tempfile.TemporaryDirectory(prefix="horizon_lint_") as tree:
            dest = os.path.join(tree, dest_rel)
            os.makedirs(os.path.dirname(dest), exist_ok=True)
            shutil.copyfile(os.path.join(fixtures, fixture), dest)
            found = [fi for fi in lint_tree(tree) if fi.rule == rule]
            if not found:
                failures.append(f"rule `{rule}` did not fire on {fixture}")
            else:
                print(f"self-test ok: {rule:>14} fired on {fixture} "
                      f"({len(found)} finding(s))")
    # The forest-traversal rule is scoped: the identical raw-accessor
    # fixture under src/gbdt/ is the kernels' own territory and must stay
    # silent there.
    with tempfile.TemporaryDirectory(prefix="horizon_lint_") as tree:
        dest = os.path.join(tree, "src/gbdt/bad_forest_index.cc")
        os.makedirs(os.path.dirname(dest), exist_ok=True)
        shutil.copyfile(os.path.join(fixtures, "bad_forest_index.cc"), dest)
        noise = [fi for fi in lint_tree(tree)
                 if fi.rule == "forest-traversal"]
        if noise:
            failures.append("forest-traversal fired inside src/gbdt/: "
                            + "; ".join(str(n) for n in noise))
        else:
            print("self-test ok: forest-traversal is silent inside src/gbdt/")
    # The shard-mutation rule is likewise scoped: shard_apply.cc IS the
    # mutation surface and must stay silent even on mutating code.
    with tempfile.TemporaryDirectory(prefix="horizon_lint_") as tree:
        dest = os.path.join(tree, "src/serving/shard_apply.cc")
        os.makedirs(os.path.dirname(dest), exist_ok=True)
        shutil.copyfile(os.path.join(fixtures, "bad_shard_mutation.cc"), dest)
        noise = [fi for fi in lint_tree(tree) if fi.rule == "shard-mutation"]
        if noise:
            failures.append("shard-mutation fired inside shard_apply.cc: "
                            + "; ".join(str(n) for n in noise))
        else:
            print("self-test ok: shard-mutation is silent in shard_apply.cc")
    # The good fixture exercises every allow-comment escape and the
    # deterministic idioms; it must be silent under every rule.
    with tempfile.TemporaryDirectory(prefix="horizon_lint_") as tree:
        for dest_rel in ("src/sim/good.cc", "src/serving/good.h"):
            dest = os.path.join(tree, dest_rel)
            os.makedirs(os.path.dirname(dest), exist_ok=True)
            shutil.copyfile(os.path.join(fixtures, "good_fixture.cc.txt")
                            if dest_rel.endswith(".cc")
                            else os.path.join(fixtures, "good_fixture.h.txt"),
                            dest)
        noise = lint_tree(tree)
        if noise:
            failures.append("clean fixtures produced findings: "
                            + "; ".join(str(n) for n in noise))
        else:
            print("self-test ok: clean fixtures are silent")
    if failures:
        for msg in failures:
            print(f"self-test FAILED: {msg}", file=sys.stderr)
        return 1
    print("horizon_lint self-test: all rules fire on their bad fixtures")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: this script's repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on its bad fixture")
    args = parser.parse_args()
    repo_root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        return run_self_test(repo_root)
    findings = lint_tree(repo_root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"\nhorizon_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("horizon_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
