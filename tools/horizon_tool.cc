// horizon_tool -- command-line driver for the library.
//
//   horizon_tool generate --out DIR [--posts N] [--pages N] [--seed S]
//       Generate a synthetic workload and write it as CSV.
//
//   horizon_tool train --data DIR --model FILE [--refs 6h,1d,4d]
//       Train an HWK predictor on a CSV workload and serialize it.
//
//   horizon_tool predict --data DIR --model FILE --post ID --time AGE
//                        --horizon DELTA
//       Predict one post's views at AGE + DELTA.
//
//   horizon_tool evaluate --data DIR --model FILE [--horizon DELTA]
//       Median APE / Kendall tau / RMSE of the model on the workload.
//
//   horizon_tool checkpoint --data DIR --model FILE --out CKPTDIR
//                           [--time AGE]
//       Build a PredictionService over the workload (events up to AGE,
//       default 6h) and write a crash-safe checkpoint of its live state.
//       Set HORIZON_FAULT_CRASH_AT=<n> to test the atomicity protocol by
//       injecting a crash at the n-th write/fsync/rename.
//
//   horizon_tool restore --model FILE --ckpt CKPTDIR
//                        [--post ID --time AGE --horizon DELTA]
//       Reload a checkpointed service (CRC-verified) and answer a query
//       from the restored state; no dataset needed.
//
//   horizon_tool selftest
//       Run generate -> train -> predict -> evaluate -> checkpoint ->
//       restore in a temp directory.
//
//   horizon_tool stats [--format prometheus|json]
//       Exercise the serving stack on a small in-process synthetic
//       workload (register/ingest/query/top-k/error paths), then dump
//       the process-local metrics registry in Prometheus text
//       exposition format (default) or as JSON.
//
//   horizon_tool sim --seed N [--seeds K] [--steps M] [--faults F]
//                    [--items I] [--async 1] [--verbose 1]
//       Deterministic simulation: drive a sharded PredictionService and a
//       single-threaded reference model through the seeded op schedule
//       (--steps rounds, fault schedule F in
//       none|crash|transient|corrupt|mixed) and compare them after every
//       op.  --seeds K runs seeds N..N+K-1.  --async 1 pins the service
//       to the MPSC-queue ingest pipeline (drained at every comparison
//       point) instead of synchronous ingest.  On divergence prints the
//       failing seed, the divergence, and a minimized repro trace, and
//       exits 1.  Rerunning with the same flags reproduces the run
//       exactly.
//
// Durations accept the forms "90s", "30m", "6h", "2d".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/hawkes_predictor.h"
#include "core/trainer.h"
#include "datagen/io.h"
#include "eval/metrics.h"
#include "eval/split.h"
#include "features/extractor.h"
#include "serving/prediction_service.h"
#include "sim/simulator.h"

#include <fstream>
#include <sstream>

namespace {

using namespace horizon;

/// Parses "6h" / "30m" / "2d" / "90s" into seconds; nullopt on error.
std::optional<double> ParseDuration(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0.0) return std::nullopt;
  const std::string suffix = end;
  if (suffix == "s" || suffix.empty()) return value;
  if (suffix == "m") return value * kMinute;
  if (suffix == "h") return value * kHour;
  if (suffix == "d") return value * kDay;
  return std::nullopt;
}

/// Parses "6h,1d,4d" into seconds.
std::optional<std::vector<double>> ParseDurationList(const std::string& text) {
  std::vector<double> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto d = ParseDuration(item);
    if (!d.has_value()) return std::nullopt;
    out.push_back(*d);
  }
  if (out.empty()) return std::nullopt;
  return out;
}

/// Trivial --key value argument parser.
std::map<std::string, std::string> ParseFlags(int argc, char** argv, int from) {
  std::map<std::string, std::string> flags;
  for (int i = from; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    flags[key] = argv[i + 1];
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Fail(const char* message) {
  std::fprintf(stderr, "error: %s\n", message);
  return 1;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  const std::string out = FlagOr(flags, "out", "");
  if (out.empty()) return Fail("generate requires --out DIR");
  datagen::GeneratorConfig config;
  config.num_posts = std::atoi(FlagOr(flags, "posts", "1000").c_str());
  config.num_pages = std::atoi(FlagOr(flags, "pages", "150").c_str());
  config.seed = static_cast<uint64_t>(std::atoll(FlagOr(flags, "seed", "1").c_str()));
  if (config.num_posts <= 0 || config.num_pages <= 0) {
    return Fail("--posts/--pages must be positive");
  }
  const auto dataset = datagen::Generator(config).Generate();
  if (!datagen::SaveDatasetCsv(dataset, out)) {
    return Fail("failed to write CSVs (does the directory exist?)");
  }
  size_t events = 0;
  for (const auto& c : dataset.cascades) events += c.views.size();
  std::printf("wrote %zu cascades (%zu view events) to %s\n",
              dataset.cascades.size(), events, out.c_str());
  return 0;
}

int CmdTrain(const std::map<std::string, std::string>& flags) {
  const std::string data_dir = FlagOr(flags, "data", "");
  const std::string model_path = FlagOr(flags, "model", "");
  if (data_dir.empty() || model_path.empty()) {
    return Fail("train requires --data DIR and --model FILE");
  }
  const auto refs = ParseDurationList(FlagOr(flags, "refs", "6h,1d,4d"));
  if (!refs.has_value()) return Fail("bad --refs (expected e.g. 6h,1d,4d)");

  const auto dataset = datagen::LoadDatasetCsv(data_dir);
  if (!dataset.has_value()) return Fail("failed to load dataset CSVs");

  const features::FeatureExtractor extractor{stream::TrackerConfig{}};
  std::vector<size_t> all(dataset->cascades.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  core::ExampleSetOptions options;
  options.reference_horizons = *refs;
  const auto examples = core::BuildExampleSet(*dataset, all, extractor, options);

  core::HawkesPredictorParams params;
  params.reference_horizons = *refs;
  core::HawkesPredictor model(params);
  model.Fit(examples.x, examples.log1p_increments, examples.alpha_targets);

  std::ofstream out(model_path);
  if (!out) return Fail("cannot open --model path for writing");
  out << model.Serialize();
  if (!out) return Fail("failed to write model");
  std::printf("trained HWK on %zu examples from %zu cascades; model -> %s\n",
              examples.size(), dataset->cascades.size(), model_path.c_str());
  return 0;
}

std::optional<core::HawkesPredictor> LoadModel(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream ss;
  ss << in.rdbuf();
  core::HawkesPredictor model;
  if (!model.Deserialize(ss.str())) return std::nullopt;
  return model;
}

int CmdPredict(const std::map<std::string, std::string>& flags) {
  const std::string data_dir = FlagOr(flags, "data", "");
  const std::string model_path = FlagOr(flags, "model", "");
  const auto time = ParseDuration(FlagOr(flags, "time", "6h"));
  const auto horizon = ParseDuration(FlagOr(flags, "horizon", "1d"));
  const int post_id = std::atoi(FlagOr(flags, "post", "0").c_str());
  if (data_dir.empty() || model_path.empty()) {
    return Fail("predict requires --data DIR and --model FILE");
  }
  if (!time.has_value() || !horizon.has_value()) {
    return Fail("bad --time/--horizon duration");
  }
  const auto dataset = datagen::LoadDatasetCsv(data_dir);
  if (!dataset.has_value()) return Fail("failed to load dataset CSVs");
  auto model = LoadModel(model_path);
  if (!model.has_value()) return Fail("failed to load model");

  const datagen::Cascade* cascade = nullptr;
  for (const auto& c : dataset->cascades) {
    if (c.post.id == post_id) cascade = &c;
  }
  if (cascade == nullptr) return Fail("unknown --post id");

  const features::FeatureExtractor extractor{stream::TrackerConfig{}};
  const auto snapshot = extractor.ReplaySnapshot(*cascade, *time);
  const auto row =
      extractor.Extract(dataset->PageOf(cascade->post), cascade->post, snapshot);
  const double n_s = static_cast<double>(cascade->ViewsBefore(*time));
  const double predicted = model->PredictCount(row.data(), n_s, *horizon);
  const double actual = n_s + core::TrueIncrement(*cascade, *time, *horizon);
  std::printf("post %d at age %s: N(s) = %.0f\n", post_id,
              FormatDuration(*time).c_str(), n_s);
  std::printf("  predicted N(s + %s) = %.0f   (actual in dataset: %.0f)\n",
              FormatDuration(*horizon).c_str(), predicted, actual);
  std::printf("  predicted alpha = %.3f / day\n",
              model->PredictAlpha(row.data()) * kDay);
  return 0;
}

int CmdEvaluate(const std::map<std::string, std::string>& flags) {
  const std::string data_dir = FlagOr(flags, "data", "");
  const std::string model_path = FlagOr(flags, "model", "");
  const auto horizon = ParseDuration(FlagOr(flags, "horizon", "1d"));
  if (data_dir.empty() || model_path.empty()) {
    return Fail("evaluate requires --data DIR and --model FILE");
  }
  if (!horizon.has_value()) return Fail("bad --horizon");
  const auto dataset = datagen::LoadDatasetCsv(data_dir);
  if (!dataset.has_value()) return Fail("failed to load dataset CSVs");
  auto model = LoadModel(model_path);
  if (!model.has_value()) return Fail("failed to load model");

  const features::FeatureExtractor extractor{stream::TrackerConfig{}};
  std::vector<size_t> all(dataset->cascades.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  core::ExampleSetOptions options;
  options.reference_horizons = {*horizon};
  options.seed = 123;
  const auto examples = core::BuildExampleSet(*dataset, all, extractor, options);

  std::vector<double> pred, truth;
  for (size_t i = 0; i < examples.size(); ++i) {
    const auto& ref = examples.refs[i];
    pred.push_back(ref.n_s + model->PredictIncrement(examples.x.Row(i), *horizon));
    truth.push_back(ref.n_s + core::TrueIncrement(dataset->cascades[ref.cascade_index],
                                                  ref.prediction_age, *horizon));
  }
  const auto metrics = eval::ComputeMetrics(pred, truth);
  std::printf("horizon %s over %zu examples: Median APE %.3f, Kendall tau %.3f, "
              "RMSE %.3g\n",
              FormatDuration(*horizon).c_str(), metrics.n, metrics.median_ape,
              metrics.kendall_tau, metrics.rmse);
  return 0;
}

int CmdCheckpoint(const std::map<std::string, std::string>& flags) {
  const std::string data_dir = FlagOr(flags, "data", "");
  const std::string model_path = FlagOr(flags, "model", "");
  const std::string out = FlagOr(flags, "out", "");
  const auto time = ParseDuration(FlagOr(flags, "time", "6h"));
  if (data_dir.empty() || model_path.empty() || out.empty()) {
    return Fail("checkpoint requires --data DIR, --model FILE and --out CKPTDIR");
  }
  if (!time.has_value()) return Fail("bad --time duration");
  const auto dataset = datagen::LoadDatasetCsv(data_dir);
  if (!dataset.has_value()) return Fail("failed to load dataset CSVs");
  auto model = LoadModel(model_path);
  if (!model.has_value()) return Fail("failed to load model");

  const features::FeatureExtractor extractor{stream::TrackerConfig{}};
  serving::PredictionService service(&*model, &extractor, serving::ServiceConfig{});
  for (const auto& cascade : dataset->cascades) {
    const int64_t id = cascade.post.id;
    // Dataset post ids are unique; a duplicate would only skip the item.
    (void)service.RegisterItem(id, 0.0, dataset->PageOf(cascade.post),
                               cascade.post);
    for (const auto& e : cascade.views) {
      if (e.time >= *time) break;
      (void)service.Ingest(id, stream::EngagementType::kView, e.time);  // events of a just-registered item cannot miss
    }
    for (double t : cascade.share_times) {
      if (t >= *time) break;
      (void)service.Ingest(id, stream::EngagementType::kShare, t);  // events of a just-registered item cannot miss
    }
    for (double t : cascade.comment_times) {
      if (t >= *time) break;
      (void)service.Ingest(id, stream::EngagementType::kComment, t);  // events of a just-registered item cannot miss
    }
    for (double t : cascade.reaction_times) {
      if (t >= *time) break;
      (void)service.Ingest(id, stream::EngagementType::kReaction, t);  // events of a just-registered item cannot miss
    }
  }
  const Status ckpt_status = service.Checkpoint(out);
  if (!ckpt_status.ok()) {
    std::fprintf(stderr, "error: checkpoint failed: %s\n",
                 ckpt_status.ToString().c_str());
    return 1;
  }
  const auto stats = service.stats();
  std::printf("checkpointed %zu live items (%llu events) at age %s -> %s\n",
              service.LiveItems(),
              static_cast<unsigned long long>(stats.events_ingested),
              FormatDuration(*time).c_str(), out.c_str());
  return 0;
}

int CmdRestore(const std::map<std::string, std::string>& flags) {
  const std::string model_path = FlagOr(flags, "model", "");
  const std::string ckpt = FlagOr(flags, "ckpt", "");
  if (model_path.empty() || ckpt.empty()) {
    return Fail("restore requires --model FILE and --ckpt CKPTDIR");
  }
  auto model = LoadModel(model_path);
  if (!model.has_value()) return Fail("failed to load model");

  const features::FeatureExtractor extractor{stream::TrackerConfig{}};
  serving::PredictionService service(&*model, &extractor, serving::ServiceConfig{});
  const Status restore_status = service.Restore(ckpt);
  if (!restore_status.ok()) {
    std::fprintf(stderr, "error: restore failed: %s\n",
                 restore_status.ToString().c_str());
    return 1;
  }
  const auto stats = service.stats();
  std::printf("restored %zu live items (%llu events ingested before checkpoint)\n",
              service.LiveItems(),
              static_cast<unsigned long long>(stats.events_ingested));

  const std::string post = FlagOr(flags, "post", "");
  if (!post.empty()) {
    const auto time = ParseDuration(FlagOr(flags, "time", "6h"));
    const auto horizon = ParseDuration(FlagOr(flags, "horizon", "1d"));
    if (!time.has_value() || !horizon.has_value()) {
      return Fail("bad --time/--horizon duration");
    }
    const int64_t id = std::atoll(post.c_str());
    serving::QueryRequest request;
    request.ids = {id};
    request.s = *time;
    request.delta = *horizon;
    const auto response = service.BatchQuery(request);
    if (!response.ok()) return Fail(response.status().ToString().c_str());
    if (!response->errors.empty()) {
      std::fprintf(stderr, "error: query for post %lld failed: %s\n",
                   static_cast<long long>(id),
                   response->errors.front().status.ToString().c_str());
      return 1;
    }
    const auto& result = response->results.front().prediction;
    std::printf("post %lld at age %s: N(s) = %.0f, predicted N(s + %s) = %.0f "
                "(alpha %.3f / day)\n",
                static_cast<long long>(id), FormatDuration(*time).c_str(),
                result.observed_views, FormatDuration(*horizon).c_str(),
                result.predicted_views, result.alpha * kDay);
  }
  return 0;
}

int CmdStats(const std::map<std::string, std::string>& flags) {
  const std::string format = FlagOr(flags, "format", "prometheus");
  if (format != "prometheus" && format != "json") {
    return Fail("bad --format (expected prometheus or json)");
  }

  // The registry is process-local, so drive a small synthetic workload
  // through the serving stack first: every exposed series below reflects
  // real instrumented code paths, which makes this command usable as a
  // CI smoke check on the exposition formats.
  datagen::GeneratorConfig config;
  config.num_posts = 120;
  config.num_pages = 20;
  config.seed = 7;
  const auto dataset = datagen::Generator(config).Generate();

  const features::FeatureExtractor extractor{stream::TrackerConfig{}};
  std::vector<size_t> all(dataset.cascades.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  core::ExampleSetOptions options;
  options.reference_horizons = {6 * kHour, kDay};
  const auto examples = core::BuildExampleSet(dataset, all, extractor, options);
  core::HawkesPredictorParams params;
  params.reference_horizons = {6 * kHour, kDay};
  core::HawkesPredictor model(params);
  model.Fit(examples.x, examples.log1p_increments, examples.alpha_targets);

  serving::PredictionService service(&model, &extractor,
                                     serving::ServiceConfig{});
  std::vector<int64_t> ids;
  for (const auto& cascade : dataset.cascades) {
    const int64_t id = cascade.post.id;
    if (!service.RegisterItem(id, 0.0, dataset.PageOf(cascade.post),
                              cascade.post).ok()) {
      continue;
    }
    ids.push_back(id);
    for (const auto& e : cascade.views) {
      if (e.time >= 6 * kHour) break;
      (void)service.Ingest(id, stream::EngagementType::kView, e.time);  // events of a just-registered item cannot miss
    }
  }

  // Point queries, a scan (top-k), and deliberate error paths so the
  // error counters are non-zero in the dump.
  serving::QueryRequest point;
  point.ids = ids;
  point.s = 6 * kHour;
  point.delta = kDay;
  (void)service.BatchQuery(point);
  serving::QueryRequest scan;
  scan.s = 6 * kHour;
  scan.delta = kDay;
  scan.top_k = 10;
  (void)service.BatchQuery(scan);
  (void)service.Query(-1, 6 * kHour, kDay);               // not_found
  (void)service.Ingest(-1, stream::EngagementType::kView, 0.0);  // not_found
  serving::QueryRequest bad;
  bad.ids = ids;
  bad.s = 6 * kHour;
  bad.delta = -1.0;
  (void)service.BatchQuery(bad);                          // invalid_argument

  const std::string dump = format == "json"
                               ? service.metrics().DumpJson()
                               : service.metrics().DumpPrometheus();
  std::fputs(dump.c_str(), stdout);
  return 0;
}

int CmdSim(const std::map<std::string, std::string>& flags) {
  const uint64_t seed =
      static_cast<uint64_t>(std::atoll(FlagOr(flags, "seed", "1").c_str()));
  const int num_seeds = std::atoi(FlagOr(flags, "seeds", "1").c_str());
  const int steps = std::atoi(FlagOr(flags, "steps", "24").c_str());
  const int items = std::atoi(FlagOr(flags, "items", "10").c_str());
  const std::string faults = FlagOr(flags, "faults", "mixed");
  const bool async = FlagOr(flags, "async", "0") != "0";
  const bool verbose = FlagOr(flags, "verbose", "0") != "0";
  if (num_seeds <= 0) return Fail("--seeds must be positive");
  if (steps <= 0) return Fail("--steps must be positive");
  if (items <= 0) return Fail("--items must be positive");
  if (!sim::IsValidFaultSchedule(faults)) {
    return Fail("bad --faults (expected none|crash|transient|corrupt|mixed)");
  }

  std::printf("building sim context (dataset + model)...\n");
  const sim::SimContext context = sim::BuildSimContext();
  sim::SimConfig config;
  config.schedule.rounds = steps;
  config.schedule.num_items = items;
  config.schedule.faults = faults;
  config.async_ingest = async;
  const char* tmp = std::getenv("TMPDIR");
  config.scratch_dir = tmp != nullptr ? tmp : "/tmp";
  sim::Simulator simulator(&context, config);

  int failures = 0;
  for (int i = 0; i < num_seeds; ++i) {
    const sim::SimReport report = simulator.Run(seed + static_cast<uint64_t>(i));
    std::printf("%s\n", report.Summary().c_str());
    if (verbose && report.ok) std::fputs(report.trace.c_str(), stdout);
    if (!report.ok) {
      ++failures;
      std::printf("reproduce with: horizon_tool sim --seed %llu --steps %d "
                  "--items %d --faults %s%s\n",
                  static_cast<unsigned long long>(report.seed), steps, items,
                  faults.c_str(), async ? " --async 1" : "");
      std::printf("--- minimized repro trace ---\n%s",
                  report.minimized_trace.empty() ? report.trace.c_str()
                                                 : report.minimized_trace.c_str());
    }
  }
  if (failures > 0) {
    std::printf("%d of %d seed(s) FAILED\n", failures, num_seeds);
    return 1;
  }
  std::printf("all %d seed(s) passed\n", num_seeds);
  return 0;
}

int CmdSelfTest() {
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = std::string(tmp != nullptr ? tmp : "/tmp") +
                          "/horizon_tool_selftest";
  const std::string mkdir = "mkdir -p " + dir;
  if (std::system(mkdir.c_str()) != 0) return Fail("mkdir failed");
  const std::string model = dir + "/model.hwk";
  if (CmdGenerate({{"out", dir}, {"posts", "250"}, {"pages", "40"}}) != 0) return 1;
  if (CmdTrain({{"data", dir}, {"model", model}, {"refs", "6h,1d"}}) != 0) return 1;
  if (CmdPredict({{"data", dir}, {"model", model}, {"post", "3"},
                  {"time", "6h"}, {"horizon", "1d"}}) != 0) {
    return 1;
  }
  if (CmdEvaluate({{"data", dir}, {"model", model}, {"horizon", "1d"}}) != 0) {
    return 1;
  }
  const std::string ckpt = dir + "/ckpt";
  if (CmdCheckpoint({{"data", dir}, {"model", model}, {"out", ckpt},
                     {"time", "6h"}}) != 0) {
    return 1;
  }
  if (CmdRestore({{"model", model}, {"ckpt", ckpt}, {"post", "3"},
                  {"time", "6h"}, {"horizon", "1d"}}) != 0) {
    return 1;
  }
  std::printf("selftest OK\n");
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: horizon_tool <generate|train|predict|evaluate|"
               "checkpoint|restore|selftest|stats|sim> "
               "[--key value ...]\n(see the header of tools/horizon_tool.cc)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "predict") return CmdPredict(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "checkpoint") return CmdCheckpoint(flags);
  if (command == "restore") return CmdRestore(flags);
  if (command == "selftest") return CmdSelfTest();
  if (command == "stats") return CmdStats(flags);
  if (command == "sim") return CmdSim(flags);
  return Usage();
}
