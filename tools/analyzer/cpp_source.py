"""Lightweight C++ source model shared by the analyzer backends.

This is NOT a C++ parser.  It is the minimum structure the fallback
(tokenizer) backend needs to run the four horizon_analyzer rules without
libclang: comment/string stripping that preserves line numbers, brace
matching, and a nesting tracker that attributes every brace-delimited
region to a namespace / class / function.

The comment-side artifacts (``// order:`` justifications and
``horizon-analyzer: allow(...)`` suppressions) are parsed here too,
because BOTH backends consume them from raw text -- libclang does not
surface comments on the AST, and the suppression grammar is a project
convention, not C++.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


# --------------------------------------------------------------------------
# Comment / string stripping (line-structure preserving)

def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving newlines so
    line numbers in the stripped text match the raw text."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                if text[j] == "\n":  # unterminated; bail at line end
                    break
                j += 1
            body = text[i:j]
            out.append(quote + " " * max(0, len(body) - 2) +
                       (quote if len(body) >= 2 and body.endswith(quote) else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


# --------------------------------------------------------------------------
# Suppressions and justifications

ALLOW_RE = re.compile(
    r"//\s*horizon-analyzer:\s*allow\(([a-z-]+)\)(?:\s*(?:--|:)\s*(.*\S))?")

ORDER_COMMENT_RE = re.compile(r"//.*\border:\s*\S")


@dataclass
class SourceFile:
    """One parsed file: raw text, stripped code, line index, allow map."""

    path: str
    rel: str
    raw: str = ""
    raw_lines: list = field(default_factory=list)
    code: str = ""
    code_lines: list = field(default_factory=list)
    # line -> (rule, justification | None); an allow covers its own line
    # and the next line carrying code.
    allows: dict = field(default_factory=dict)
    # offset of the first character of each line (into `code`/`raw`)
    line_starts: list = field(default_factory=list)

    @classmethod
    def load(cls, path: str, rel: str) -> "SourceFile":
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw = f.read()
        return cls.from_text(raw, path, rel)

    @classmethod
    def from_text(cls, raw: str, path: str, rel: str) -> "SourceFile":
        sf = cls(path=path, rel=rel, raw=raw)
        sf.raw_lines = raw.splitlines()
        sf.code = strip_comments_and_strings(raw)
        sf.code_lines = sf.code.splitlines()
        offset = 0
        for line in sf.code.split("\n"):
            sf.line_starts.append(offset)
            offset += len(line) + 1
        for lineno, line in enumerate(sf.raw_lines, start=1):
            m = ALLOW_RE.search(line)
            if not m:
                continue
            entry = (m.group(1), m.group(2))
            sf.allows.setdefault(lineno, entry)
            target = lineno + 1
            while target <= len(sf.code_lines) and \
                    not sf.code_lines[target - 1].strip():
                target += 1
            if target <= len(sf.code_lines):
                sf.allows.setdefault(target, entry)
        return sf

    def line_of(self, offset: int) -> int:
        """1-based line number of a character offset."""
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def allowed(self, rule: str, lineno: int):
        entry = self.allows.get(lineno)
        if entry and entry[0] == rule:
            return entry
        return None

    # -- statement-span helpers (justified-atomics) ----------------------

    def statement_span(self, lineno: int) -> tuple:
        """[start, end] 1-based line range of the statement containing
        `lineno`: walk up while the previous code line neither terminates
        a statement (`;`, `{`, `}`, a label `:`) nor is blank, then walk
        down to the first line whose code ends a statement."""
        start = lineno
        while start > 1:
            prev = self.code_lines[start - 2].rstrip() \
                if start - 2 < len(self.code_lines) else ""
            if not prev.strip() or prev.endswith((";", "{", "}", ":", ">")):
                break
            start -= 1
        end = lineno
        while end < len(self.code_lines):
            cur = self.code_lines[end - 1].rstrip()
            if cur.endswith((";", "{", "}")):
                break
            end += 1
        return start, end

    def has_order_comment(self, lineno: int) -> bool:
        """True when the statement containing `lineno` carries an
        adjacent ``// order:`` justification: on any line of the
        statement, or in the contiguous //-comment block directly above
        the statement."""
        start, end = self.statement_span(lineno)
        for ln in range(start, min(end, len(self.raw_lines)) + 1):
            if ORDER_COMMENT_RE.search(self.raw_lines[ln - 1]):
                return True
        ln = start - 1
        while ln >= 1:
            raw = self.raw_lines[ln - 1].strip()
            if not raw.startswith("//"):
                break
            if ORDER_COMMENT_RE.search(raw):
                return True
            ln -= 1
        return False


# --------------------------------------------------------------------------
# Brace matching / scope tracking

def match_brace(code: str, open_pos: int) -> int:
    """Offset of the `}` matching the `{` at `open_pos` (or len(code))."""
    depth = 0
    for i in range(open_pos, len(code)):
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code)


_SCOPE_HEAD_RE = re.compile(
    r"(?:namespace\s+([\w:]+)\s*$)"
    r"|(?:namespace\s*$)"
    r"|(?:\b(?:class|struct)\s+(?:alignas\s*\([^)]*\)\s*)?"
    r"(?:HORIZON_\w+\s*(?:\([^)]*\)\s*)?)?(\w+)\b[^;{=]*$)")


@dataclass
class Scope:
    kind: str       # 'namespace' | 'class' | 'block'
    name: str       # '' for anonymous / plain blocks
    open_pos: int
    close_pos: int


def scopes_at(scopes: list, pos: int) -> list:
    """The scope stack (outermost first) containing `pos`."""
    return [s for s in scopes if s.open_pos < pos < s.close_pos]


def build_scopes(code: str) -> list:
    """All namespace/class/struct scopes in the stripped code, found by
    matching each `{` against the declaration text preceding it."""
    scopes = []
    for i, c in enumerate(code):
        if c != "{":
            continue
        head_start = max(code.rfind(";", 0, i), code.rfind("{", 0, i),
                         code.rfind("}", 0, i)) + 1
        head = code[head_start:i].strip()
        m = _SCOPE_HEAD_RE.search(head)
        if not m:
            continue
        if m.group(2):
            kind, name = "class", m.group(2)
        else:
            kind, name = "namespace", m.group(1) or ""
        scopes.append(Scope(kind, name, i, match_brace(code, i)))
    return scopes


def enclosing_class(scopes: list, pos: int) -> str:
    """Innermost class/struct name containing `pos` ('' when none)."""
    best = ""
    for s in scopes_at(scopes, pos):
        if s.kind == "class" and s.name:
            best = s.name
    return best
