"""Backend-neutral IR for horizon_analyzer.

Both backends (libclang and the fallback tokenizer) lower each
translation unit / header to this shape; the rule engine in
horizon_analyzer.py only ever sees the IR, so every rule runs
identically under either backend.

Conventions
-----------
Lock domains are canonical strings ``Owner::member`` (e.g. ``Shard::mu``,
``EpochDomain::retire_mu_``) for class members, or
``Function::local_name`` for function-local mutexes.  A domain names the
*set* of mutex instances declared by that field -- the granularity the
lock-order theorem needs: two instances of the same domain are never
nested in this codebase (per-shard locks are taken one at a time), so an
edge A -> A is reported as a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    rule: str
    rel: str
    lineno: int
    message: str

    def __str__(self) -> str:
        return f"{self.rel}:{self.lineno}: [{self.rule}] {self.message}"


@dataclass
class LockAcquire:
    """One MutexLock construction (or HORIZON_REQUIRES entry claim)."""
    domain: str
    lineno: int
    # Offsets (into the file's stripped code) of the region during which
    # the lock is held; used to nest acquisitions and attribute calls.
    begin: int = 0
    end: int = 0
    # True for HORIZON_REQUIRES: the caller holds it for the whole body.
    from_requires: bool = False


@dataclass
class CallSite:
    """A call made inside a function body."""
    callee: str          # simple (unqualified) name
    lineno: int
    offset: int = 0
    receiver_type: str = ""  # declared type of the receiver, '' if unknown
    has_receiver: bool = False


@dataclass
class AtomicSite:
    """One atomic operation with an explicit or defaulted memory order."""
    lineno: int
    order: str           # relaxed|acquire|release|acq_rel|seq_cst|consume
    explicit: bool       # False => defaulted (seq_cst) op
    op: str = ""         # load/store/fetch_add/... when known


@dataclass
class SwitchSite:
    """A switch statement over StatusCode."""
    lineno: int
    cases: list = field(default_factory=list)   # enumerator names (kFoo)
    has_default: bool = False


@dataclass
class EscapeEvent:
    """A snapshot pointer obtained under an EpochGuard leaving the
    guard's scope."""
    lineno: int
    kind: str            # 'field-store' | 'return' | 'lambda-capture'
    var: str
    detail: str = ""


@dataclass
class Function:
    """One function definition (free or member; lambdas fold into their
    enclosing function)."""
    name: str            # simple name
    qualname: str        # Class::name or Function-local qualified form
    rel: str
    lineno: int
    acquires: list = field(default_factory=list)   # [LockAcquire]
    requires: list = field(default_factory=list)   # [domain]
    calls: list = field(default_factory=list)      # [CallSite]
    # (held_domain, CallSite): calls made while a lock is held
    held_calls: list = field(default_factory=list)
    # (outer_domain, inner LockAcquire): direct nesting in this body
    nested: list = field(default_factory=list)


@dataclass
class FileIR:
    """Everything one file contributes to the analysis."""
    rel: str
    functions: list = field(default_factory=list)  # [Function]
    atomics: list = field(default_factory=list)    # [AtomicSite]
    switches: list = field(default_factory=list)   # [SwitchSite]
    escapes: list = field(default_factory=list)    # [EscapeEvent]


@dataclass
class ProgramIR:
    """The merged cross-TU view the rules consume."""
    files: dict = field(default_factory=dict)        # rel -> FileIR
    # simple function name -> [Function] across all files (the cross-TU
    # call-graph index; ambiguity is resolved per-call by receiver type,
    # else by the documented conservative policy in the lock-order rule)
    by_name: dict = field(default_factory=dict)
    status_codes: list = field(default_factory=list)  # [kFoo, ...] in order
    backend: str = ""

    def add_file(self, fir: FileIR) -> None:
        self.files[fir.rel] = fir
        for fn in fir.functions:
            self.by_name.setdefault(fn.name, []).append(fn)
