#!/usr/bin/env python3
"""horizon_analyzer -- cross-TU concurrency-protocol checks for horizon.

Four semantic rules, run over every file under src/ (the regex layer in
tools/horizon_lint.py handles single-line style; this layer checks the
*protocols* the style exists to serve):

  lock-order         Extracts the may-acquire-while-holding graph over
                     every horizon::Mutex domain across translation
                     units and fails on cycles (static deadlock
                     potential).  The blessed order is committed at
                     ci/lock_order.txt; --verify-lock-order fails CI
                     when the tree drifts from the committed order.
  epoch-escape       A ShardView*/snapshot pointer obtained under an
                     EpochGuard must not be stored to a field, captured
                     by a lambda that may outlive the scope, or
                     returned past the guard's lifetime.
  atomic-order       Every explicit memory_order site needs an adjacent
                     `// order:` comment naming the pairing site;
                     defaulted (seq_cst) operations on hot-path atomics
                     are findings unless justified the same way.
  status-exhaustive  Every switch over StatusCode must handle all codes
                     explicitly; a `default:` label is itself a finding
                     because it hides newly added codes (the PR-7
                     kResourceExhausted retrofit is the bug class).

Suppressions: `// horizon-analyzer: allow(<rule>): <reason>` on the
finding's line or the line above.  A suppression without a reason is a
`bad-allow` finding -- unexplained baselining is the failure mode this
tool exists to prevent.

Backends: `--backend clang` uses libclang (python3-clang) for precise
function/lock/call extraction; `--backend tokenizer` is the bundled
fallback that needs nothing beyond the standard library; `auto`
prefers clang when importable and silently falls back.  Both lower to
the same IR (tools/analyzer/ir.py) and share one rule engine, so a
finding means the same thing under either.  `--self-test` always runs
the tokenizer backend: it is the hermetic CI gate.

Exit codes: 0 clean, 1 findings (or lock-order drift), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import backend_tokenizer as tok          # noqa: E402
import cpp_source as src                 # noqa: E402
from ir import Finding, ProgramIR        # noqa: E402

KNOWN_RULES = ("lock-order", "epoch-escape", "atomic-order",
               "status-exhaustive", "bad-allow")

# The primitive layer: the one file allowed to touch std:: sync types,
# and whose Lock()/Unlock() bodies would otherwise look like protocol.
EXCLUDED_FILES = frozenset({"src/common/annotations.h"})

STATUS_ENUM_RE = re.compile(
    r"enum\s+class\s+StatusCode[^{]*\{([^}]*)\}", re.S)


# --------------------------------------------------------------------------
# Program loading

def discover_sources(root: str) -> list:
    rels = []
    src_dir = os.path.join(root, "src")
    for base, dirs, names in os.walk(src_dir):
        dirs.sort()
        for n in sorted(names):
            if not n.endswith((".h", ".cc")):
                continue
            rel = os.path.relpath(os.path.join(base, n), root) \
                .replace(os.sep, "/")
            if rel not in EXCLUDED_FILES:
                rels.append(rel)
    return sorted(rels)


def parse_status_codes(root: str) -> list:
    path = os.path.join(root, "src", "common", "status.h")
    if not os.path.exists(path):
        return []
    sf = src.SourceFile.load(path, "src/common/status.h")
    m = STATUS_ENUM_RE.search(sf.code)
    if not m:
        return []
    return re.findall(r"\bk\w+", m.group(1))


def load_program(root: str, compdb: str, backend: str):
    """Returns (ProgramIR, sources dict, notes list)."""
    notes = []
    sources = {}
    for rel in discover_sources(root):
        sources[rel] = src.SourceFile.load(os.path.join(root, rel), rel)
    program = ProgramIR(status_codes=parse_status_codes(root))

    chosen = backend
    if backend == "auto":
        try:
            import backend_clang
            chosen = "clang" if (backend_clang.available() and
                                 os.path.exists(compdb)) else "tokenizer"
        except Exception:
            chosen = "tokenizer"
        if chosen == "tokenizer":
            notes.append("note: libclang unavailable or no compile_commands"
                         ".json; using the bundled tokenizer backend")

    if chosen == "clang":
        import backend_clang
        if not backend_clang.available():
            raise SystemExit("horizon_analyzer: --backend clang requested "
                             "but clang.cindex is not importable (install "
                             "python3-clang)")
        firs = backend_clang.lower_program(root, compdb, sources)
        for rel in sorted(firs):
            program.add_file(firs[rel])
    else:
        chosen = "tokenizer"
        mutex_members = tok.collect_mutex_members(list(sources.values()))
        requires_map = tok.collect_requires(list(sources.values()))
        for rel in sorted(sources):
            program.add_file(tok.lower_file(
                sources[rel], mutex_members, requires_map,
                rel in tok.HOT_ATOMIC_FILES))
    program.backend = chosen
    return program, sources, notes


# --------------------------------------------------------------------------
# Cross-TU call resolution and the lock-order rule

def resolve_call(call, caller, by_name) -> list:
    """Candidates a call site may dispatch to.  Deliberately
    conservative on ambiguity: with an untyped receiver and candidates
    spread across multiple classes we skip the call rather than invent
    edges (the libclang backend resolves these precisely)."""
    cands = [f for f in by_name.get(call.callee, ()) if f is not caller]
    if not cands:
        return []
    if call.receiver_type:
        return [f for f in cands
                if f.qualname.startswith(call.receiver_type + "::")]
    if call.has_receiver:
        owners = {f.qualname.split("::")[0] for f in cands
                  if "::" in f.qualname}
        if len(cands) == 1 or len(owners) <= 1:
            return cands
        return []
    caller_cls = caller.qualname.split("::")[0] \
        if "::" in caller.qualname else ""
    return [f for f in cands
            if "::" not in f.qualname or
            (caller_cls and f.qualname.startswith(caller_cls + "::"))]


def compute_may_acquire(program: ProgramIR) -> dict:
    """Fixpoint: qualname-keyed transitive set of domains each function
    may acquire (HORIZON_REQUIRES entries are the caller's locks, not
    acquisitions, and are excluded)."""
    fns = [fn for fir in program.files.values() for fn in fir.functions]
    ma = {id(f): {a.domain for a in f.acquires if not a.from_requires}
          for f in fns}
    changed = True
    while changed:
        changed = False
        for f in fns:
            mine = ma[id(f)]
            for call in f.calls:
                for g in resolve_call(call, f, program.by_name):
                    extra = ma[id(g)] - mine
                    if extra:
                        mine |= extra
                        changed = True
    return ma


def lock_edges(program: ProgramIR) -> dict:
    """(holder_domain, acquired_domain) -> sorted provenance list of
    (rel, lineno, description)."""
    ma = compute_may_acquire(program)
    edges = {}

    def add(a, b, rel, lineno, desc):
        edges.setdefault((a, b), set()).add((rel, lineno, desc))

    for fir in program.files.values():
        for f in fir.functions:
            for (outer, inner) in f.nested:
                add(outer, inner.domain, f.rel, inner.lineno,
                    f"{f.qualname} acquires {inner.domain} while holding "
                    f"{outer}")
            for (dom, call) in f.held_calls:
                for g in resolve_call(call, f, program.by_name):
                    for d in sorted(ma[id(g)]):
                        add(dom, d, f.rel, call.lineno,
                            f"{f.qualname} -> {g.qualname} (may acquire {d}) "
                            f"while holding {dom}")
    return {k: sorted(v) for k, v in sorted(edges.items())}


def cyclic_edges(edges: dict) -> set:
    """Edges that sit inside a strongly connected component (including
    self-loops) -- i.e. edges witnessing deadlock potential."""
    graph = {}
    for (a, b) in edges:
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())
    index = {}
    low = {}
    on_stack = set()
    stack = []
    sccs = {}
    counter = [0]

    def strongconnect(v):
        work = [(v, iter(sorted(graph[v])))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.add(w)
                    if w == node:
                        break
                for w in comp:
                    sccs[w] = frozenset(comp)

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)

    bad = set()
    for (a, b) in edges:
        if a == b:
            bad.add((a, b))
        elif sccs.get(a) == sccs.get(b) and len(sccs.get(a, frozenset())) > 1:
            bad.add((a, b))
    return bad


def render_lock_order(edges: dict, backend: str) -> str:
    lines = [
        "# Lock acquisition order -- generated, do not edit by hand.",
        "# Regenerate: python3 tools/analyzer/horizon_analyzer.py "
        "--emit-lock-order ci/lock_order.txt",
        "# An edge `A -> B` means some execution path acquires B while "
        "holding A.",
        "# CI verifies this file matches the tree "
        "(--verify-lock-order); cycles fail the lock-order rule.",
        "",
    ]
    if not edges:
        lines.append("# (no nested lock acquisitions found)")
    for (a, b), provs in edges.items():
        rel, lineno, desc = provs[0]
        lines.append(f"{a} -> {b}  # {desc} at {rel}:{lineno}")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------
# Rule evaluation

def run_rules(program: ProgramIR, sources: dict):
    """Returns (findings, edges)."""
    findings = []

    def emit(rule, rel, lineno, message):
        sf = sources.get(rel)
        if sf is not None and sf.allowed(rule, lineno):
            return
        findings.append(Finding(rule=rule, rel=rel, lineno=lineno,
                                message=message))

    # -- lock-order --------------------------------------------------------
    edges = lock_edges(program)
    for (a, b) in sorted(cyclic_edges(edges)):
        for (rel, lineno, desc) in edges[(a, b)]:
            emit("lock-order", rel, lineno,
                 f"lock-order cycle: {desc}; acquiring {b} can wait on a "
                 f"thread holding {b} and acquiring {a}")

    # -- epoch-escape ------------------------------------------------------
    for rel in sorted(program.files):
        for ev in program.files[rel].escapes:
            emit("epoch-escape", rel, ev.lineno,
                 f"epoch-guarded snapshot pointer `{ev.var}` {ev.detail} "
                 f"({ev.kind}); the pointer is invalid once the EpochGuard "
                 f"exits and the view is retired")

    # -- atomic-order ------------------------------------------------------
    for rel in sorted(program.files):
        sf = sources.get(rel)
        for site in program.files[rel].atomics:
            if sf is not None and sf.has_order_comment(site.lineno):
                continue
            if site.explicit:
                msg = (f"memory_order_{site.order} without an adjacent "
                       f"`// order:` comment naming the pairing site")
            else:
                msg = (f"defaulted (seq_cst) atomic `{site.op}` on a "
                       f"hot-path file without an adjacent `// order:` "
                       f"justification; spell the order and name the "
                       f"pairing site")
            emit("atomic-order", rel, site.lineno, msg)

    # -- status-exhaustive -------------------------------------------------
    codes = program.status_codes
    for rel in sorted(program.files):
        for sw in program.files[rel].switches:
            if codes:
                missing = [c for c in codes if c not in sw.cases]
                if missing:
                    emit("status-exhaustive", rel, sw.lineno,
                         f"switch over StatusCode does not handle: "
                         f"{', '.join(missing)}")
            if sw.has_default:
                emit("status-exhaustive", rel, sw.lineno,
                     "switch over StatusCode has a `default:` label; handle "
                     "every code explicitly so newly added codes surface "
                     "here instead of being silently absorbed")

    # -- bad-allow ---------------------------------------------------------
    for rel in sorted(sources):
        sf = sources[rel]
        for lineno, raw in enumerate(sf.raw_lines, start=1):
            m = src.ALLOW_RE.search(raw)
            if not m:
                continue
            rule, reason = m.group(1), m.group(2)
            if rule not in KNOWN_RULES:
                findings.append(Finding(
                    rule="bad-allow", rel=rel, lineno=lineno,
                    message=f"allow() names unknown rule `{rule}` (known: "
                            f"{', '.join(KNOWN_RULES)})"))
            elif not reason:
                findings.append(Finding(
                    rule="bad-allow", rel=rel, lineno=lineno,
                    message="allow() without a justification; write "
                            "`horizon-analyzer: allow(<rule>): <why this "
                            "is safe>`"))

    findings.sort(key=lambda f: (f.rel, f.lineno, f.rule, f.message))
    return findings, edges


def analyze(root: str, compdb: str, backend: str):
    program, sources, notes = load_program(root, compdb, backend)
    findings, edges = run_rules(program, sources)
    return program, findings, edges, notes


# --------------------------------------------------------------------------
# Self-test

FIXTURES = "tests/lint_fixtures/analyzer"

# (description, [(fixture, dest-rel)], rule expected to fire | None)
SELF_TEST_CASES = [
    ("cross-TU lock-order cycle is detected",
     [("bad_lock_cycle_a.cc", "src/serving/bad_lock_cycle_a.cc"),
      ("bad_lock_cycle_b.cc", "src/serving/bad_lock_cycle_b.cc")],
     "lock-order"),
    ("epoch-guard escapes (store/capture/return) are detected",
     [("bad_epoch_escape.cc", "src/serving/bad_epoch_escape.cc")],
     "epoch-escape"),
    ("unjustified explicit memory orders are detected",
     [("bad_atomics.cc", "src/common/bad_atomics.cc")],
     "atomic-order"),
    ("defaulted seq_cst ops on hot-path files are detected",
     [("bad_atomics_hot.cc", "src/serving/epoch.cc")],
     "atomic-order"),
    ("non-exhaustive StatusCode switches are detected",
     [("bad_status_switch.cc", "src/obs/bad_status_switch.cc"),
      ("status_enum.h", "src/common/status.h")],
     "status-exhaustive"),
    ("justification-less suppressions are detected",
     [("bad_allow.cc", "src/common/bad_allow.cc")],
     "bad-allow"),
    ("clean code with justified suppressions produces zero findings",
     [("good_analyzer.cc", "src/serving/good_analyzer.cc"),
      ("good_analyzer.h", "src/serving/good_analyzer.h"),
      ("status_enum.h", "src/common/status.h")],
     None),
]


def self_test(repo_root: str) -> int:
    fixture_dir = os.path.join(repo_root, FIXTURES)
    failures = []
    for (desc, placements, rule) in SELF_TEST_CASES:
        tmp = tempfile.mkdtemp(prefix="horizon_analyzer_selftest_")
        try:
            for (fixture, dest) in placements:
                dst = os.path.join(tmp, dest)
                os.makedirs(os.path.dirname(dst), exist_ok=True)
                shutil.copyfile(os.path.join(fixture_dir, fixture), dst)
            _, findings, _, _ = analyze(tmp, os.path.join(tmp, "nope.json"),
                                        "tokenizer")
            fired = {f.rule for f in findings}
            if rule is None:
                ok = not findings
                detail = "; ".join(str(f) for f in findings)
            else:
                ok = rule in fired
                detail = f"fired: {sorted(fired)}"
            status = "PASS" if ok else "FAIL"
            print(f"[{status}] {desc}")
            if not ok:
                failures.append(desc)
                if detail:
                    print(f"       {detail}")
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    if failures:
        print(f"self-test: {len(failures)} case(s) FAILED")
        return 1
    print(f"self-test: all {len(SELF_TEST_CASES)} cases passed")
    return 0


# --------------------------------------------------------------------------
# CLI

def main(argv=None) -> int:
    default_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap = argparse.ArgumentParser(
        prog="horizon_analyzer",
        description="cross-TU concurrency-protocol analyzer for horizon")
    ap.add_argument("--root", default=default_root,
                    help="repository root (default: repo containing this "
                         "script)")
    ap.add_argument("--compdb", default=None,
                    help="compile_commands.json (default: "
                         "<root>/build/compile_commands.json)")
    ap.add_argument("--backend", choices=("auto", "clang", "tokenizer"),
                    default="auto")
    ap.add_argument("--emit-lock-order", metavar="PATH",
                    help="write the extracted lock order to PATH and exit "
                         "with the rule results")
    ap.add_argument("--verify-lock-order", metavar="PATH",
                    help="fail if the extracted lock order differs from the "
                         "committed PATH")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as JSON")
    ap.add_argument("--self-test", action="store_true",
                    help="run every rule against the bundled known-bad/"
                         "known-good fixtures (tokenizer backend)")
    args = ap.parse_args(argv)

    root = os.path.abspath(args.root)
    if args.self_test:
        return self_test(root)

    compdb = args.compdb or os.path.join(root, "build",
                                         "compile_commands.json")
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"horizon_analyzer: no src/ under {root}", file=sys.stderr)
        return 2

    program, findings, edges, notes = analyze(root, compdb, args.backend)
    for note in notes:
        print(note, file=sys.stderr)

    rc = 0
    rendered = render_lock_order(edges, program.backend)
    if args.emit_lock_order:
        with open(args.emit_lock_order, "w", encoding="utf-8") as f:
            f.write(rendered)
        print(f"wrote {len(edges)} lock-order edge(s) to "
              f"{args.emit_lock_order}", file=sys.stderr)
    if args.verify_lock_order:
        try:
            with open(args.verify_lock_order, "r", encoding="utf-8") as f:
                committed = f.read()
        except OSError as e:
            print(f"horizon_analyzer: cannot read committed lock order: {e}",
                  file=sys.stderr)
            return 2
        if committed != rendered:
            print(f"horizon_analyzer: lock order drifted from "
                  f"{args.verify_lock_order}; regenerate with\n"
                  f"  python3 tools/analyzer/horizon_analyzer.py "
                  f"--emit-lock-order {args.verify_lock_order}",
                  file=sys.stderr)
            rc = 1

    if args.json:
        print(json.dumps(
            [{"rule": f.rule, "file": f.rel, "line": f.lineno,
              "message": f.message} for f in findings],
            indent=2, sort_keys=True))
    else:
        for f in findings:
            print(f)
        if findings:
            print(f"horizon_analyzer: {len(findings)} finding(s) "
                  f"[backend={program.backend}]", file=sys.stderr)
    return 1 if findings else rc


if __name__ == "__main__":
    sys.exit(main())
