"""libclang analysis backend for horizon_analyzer.

Parses real ASTs via ``clang.cindex`` when the Python bindings and a
libclang shared library are installed (nightly CI installs
``python3-clang``; the dev container typically does not, in which case
``--backend auto`` falls back to the tokenizer backend).

Division of labour:

* **AST-derived** (where precision pays): function definitions,
  ``MutexLock`` acquisitions with exact owning-class resolution of the
  locked member, and call sites with resolved receiver types.
* **Text-derived, shared with the tokenizer backend**: atomics sites,
  StatusCode switches, epoch-guard escapes, ``HORIZON_REQUIRES``
  annotations.  These encode *project comment/markup conventions*
  (``// order:`` justifications, suppressions) that libclang does not
  model, and sharing one implementation keeps the two backends
  byte-identical on those rules.

``strip_comments_and_strings`` is length-preserving, so libclang byte
offsets are directly comparable with stripped-code offsets -- the
held-region bookkeeping is identical across backends.
"""

from __future__ import annotations

import json
import os
import shlex

import backend_tokenizer as tok
import cpp_source as src
from ir import CallSite, FileIR, Function, LockAcquire


def available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        clang.cindex.Index.create()
        return True
    except Exception:
        return False


def _compile_args(entry: dict) -> list:
    if "arguments" in entry:
        args = list(entry["arguments"])[1:]
    else:
        args = shlex.split(entry.get("command", ""))[1:]
    keep = []
    skip_next = False
    for a in args:
        if skip_next:
            skip_next = False
            continue
        if a in ("-o", "-c"):
            skip_next = a == "-o"
            continue
        if a.endswith((".cc", ".cpp", ".o")):
            continue
        keep.append(a)
    return keep


def _rel(root: str, path: str) -> str:
    try:
        return os.path.relpath(os.path.realpath(path),
                               os.path.realpath(root))
    except ValueError:
        return path


class _ClangLowerer:
    def __init__(self, root: str, sources: dict):
        import clang.cindex as ci
        self.ci = ci
        self.root = root
        self.sources = sources          # rel -> SourceFile
        self.firs = {}                  # rel -> FileIR
        self.seen_functions = set()     # (rel, lineno, qualname)
        self.requires_map = tok.collect_requires(list(sources.values()))

    def fir_for(self, rel: str) -> FileIR:
        if rel not in self.firs:
            fir = FileIR(rel=rel)
            sf = self.sources.get(rel)
            if sf is not None:
                hot = rel in tok.HOT_ATOMIC_FILES
                tok._extract_atomics(sf, fir, hot)
                tok._extract_switches(sf, fir)
                tok._extract_epoch_escapes(sf, fir)
            self.firs[rel] = fir
        return self.firs[rel]

    def lower_tu(self, tu) -> None:
        ci = self.ci
        fn_kinds = (ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                    ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR)

        def walk(cursor):
            for child in cursor.get_children():
                loc = child.location
                if loc.file is None:
                    walk(child)
                    continue
                rel = _rel(self.root, loc.file.name)
                if rel.startswith("..") or rel not in self.sources:
                    continue
                if child.kind in fn_kinds and child.is_definition():
                    self._lower_function(child, rel)
                else:
                    walk(child)

        walk(tu.cursor)

    def _lower_function(self, cursor, rel: str) -> None:
        ci = self.ci
        name = cursor.spelling
        parent = cursor.semantic_parent
        qual = name
        if parent is not None and parent.kind in (
                ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL):
            qual = f"{parent.spelling}::{name}"
        lineno = cursor.location.line
        key = (rel, lineno, qual)
        if key in self.seen_functions:
            return
        self.seen_functions.add(key)
        fn = Function(name=name, qualname=qual, rel=rel, lineno=lineno)
        fn.requires = sorted(self.requires_map.get(name, set()))
        body_begin = cursor.extent.start.offset
        body_end = cursor.extent.end.offset
        self._collect(cursor, rel, fn)
        for domain in fn.requires:
            fn.acquires.append(LockAcquire(domain=domain, lineno=lineno,
                                           begin=body_begin, end=body_end,
                                           from_requires=True))
        for outer in fn.acquires:
            for inner in fn.acquires:
                if inner is outer or inner.from_requires:
                    continue
                if outer.begin < inner.begin < outer.end:
                    fn.nested.append((outer.domain, inner))
            for call in fn.calls:
                if outer.begin < call.offset < outer.end:
                    fn.held_calls.append((outer.domain, call))
        self.fir_for(rel).functions.append(fn)

    def _collect(self, cursor, rel: str, fn: Function) -> None:
        ci = self.ci
        for child in cursor.walk_preorder():
            if child.kind == ci.CursorKind.VAR_DECL and \
                    "MutexLock" in child.type.spelling:
                domain = self._lock_domain(child, fn)
                end = self._enclosing_end(child, fn)
                fn.acquires.append(LockAcquire(
                    domain=domain, lineno=child.location.line,
                    begin=child.extent.start.offset, end=end))
            elif child.kind == ci.CursorKind.CALL_EXPR and child.spelling:
                receiver_type = ""
                has_receiver = False
                kids = list(child.get_children())
                if kids and kids[0].kind == ci.CursorKind.MEMBER_REF_EXPR:
                    inner = list(kids[0].get_children())
                    if inner:
                        has_receiver = True
                        t = inner[0].type.spelling
                        receiver_type = t.split("<")[0].split("::")[-1] \
                            .replace("*", "").replace("&", "").strip()
                fn.calls.append(CallSite(
                    callee=child.spelling, lineno=child.location.line,
                    offset=child.extent.start.offset,
                    receiver_type=receiver_type, has_receiver=has_receiver))

    def _lock_domain(self, var_decl, fn: Function) -> str:
        ci = self.ci
        for ref in var_decl.walk_preorder():
            if ref.kind == ci.CursorKind.MEMBER_REF_EXPR:
                referenced = ref.referenced
                if referenced is not None and \
                        referenced.semantic_parent is not None:
                    return (f"{referenced.semantic_parent.spelling}::"
                            f"{referenced.spelling}")
            if ref.kind == ci.CursorKind.DECL_REF_EXPR and \
                    "Mutex" in ref.type.spelling and \
                    "MutexLock" not in ref.type.spelling:
                return f"{fn.name}::{ref.spelling}"
        return "?::unresolved"

    def _enclosing_end(self, var_decl, fn: Function) -> int:
        # Nearest enclosing compound statement bounds the held region.
        node = var_decl
        while node is not None:
            node = node.semantic_parent if not hasattr(node, "lexical_parent") \
                else node.lexical_parent
            if node is None:
                break
            if node.kind == self.ci.CursorKind.COMPOUND_STMT:
                return node.extent.end.offset
        return var_decl.extent.end.offset


def lower_program(root: str, compdb_path: str, sources: dict):
    """rel->SourceFile -> {rel: FileIR}; raises on any clang failure so
    the driver can fall back."""
    import clang.cindex as ci
    with open(compdb_path, "r", encoding="utf-8") as f:
        compdb = json.load(f)
    index = ci.Index.create()
    lowerer = _ClangLowerer(root, sources)
    parsed = set()
    for entry in sorted(compdb, key=lambda e: e.get("file", "")):
        path = entry.get("file", "")
        if not path.endswith((".cc", ".cpp")):
            continue
        rel = _rel(root, os.path.join(entry.get("directory", root), path)
                   if not os.path.isabs(path) else path)
        if rel.startswith("..") or rel in parsed or rel not in sources:
            continue
        parsed.add(rel)
        tu = index.parse(os.path.join(root, rel),
                         args=_compile_args(entry))
        lowerer.lower_tu(tu)
    # Headers and any sources the compdb missed still contribute their
    # text-derived facts (atomics, switches, escapes) plus tokenizer
    # function lowering so the call graph stays complete.
    mutex_members = tok.collect_mutex_members(list(sources.values()))
    for rel, sf in sources.items():
        if rel in lowerer.firs:
            continue
        lowerer.firs[rel] = tok.lower_file(sf, mutex_members,
                                           lowerer.requires_map,
                                           rel in tok.HOT_ATOMIC_FILES)
    return lowerer.firs
