"""Fallback analysis backend: tokenizer + brace matching, no libclang.

Lowers each file to the backend-neutral IR in ir.py.  Heuristic by
design -- it cannot expand macros or resolve overloads -- but it is
tuned to this codebase's enforced style (horizon_lint guarantees every
lock is a `horizon::MutexLock`, one declaration per line, no raw
std::mutex), which is what makes a text-level protocol checker sound
enough to gate CI.  Where the heuristics must choose between noise and
blindness they choose noise: a false finding is suppressible with a
justified `horizon-analyzer: allow(...)`, a missed deadlock is not.

What it extracts per file:
  * function definitions (lambdas fold into their enclosing function),
    with HORIZON_REQUIRES(...) annotations merged in from declarations;
  * MutexLock acquisitions, canonicalized to `Owner::member` lock
    domains via declared parameter/local types and a global index of
    `Mutex` member declarations;
  * call sites with best-effort receiver typing (cross-TU resolution
    happens in the rule engine);
  * atomic operations with explicit memory orders, and defaulted
    (seq_cst) operations on the hot-path files;
  * switch statements over StatusCode;
  * EpochGuard scopes and snapshot-pointer escape events.
"""

from __future__ import annotations

import re

import cpp_source as src
from ir import (AtomicSite, CallSite, EscapeEvent, FileIR, Function,
                LockAcquire, SwitchSite)

KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else",
    "sizeof", "alignas", "alignof", "decltype", "new", "delete",
    "static_assert", "case", "default", "goto", "throw", "operator",
    "co_await", "co_return", "co_yield", "using", "typedef", "template",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "noexcept", "requires", "assert",
}

# Files whose atomics are hot-path enough that even a *defaulted*
# (seq_cst) operation needs a justification.  Both backends share this.
HOT_ATOMIC_FILES = frozenset({
    "src/common/mpsc_queue.h",
    "src/serving/epoch.h",
    "src/serving/epoch.cc",
    "src/obs/metrics.h",
    "src/obs/metrics.cc",
})

ATOMIC_OPS = (
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "test_and_set", "clear", "wait",
)

MEMORY_ORDER_RE = re.compile(
    r"\bmemory_order_(relaxed|consume|acquire|release|acq_rel|seq_cst)\b")

MUTEX_LOCK_RE = re.compile(r"\bMutexLock\s+\w+\s*\(")

MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:horizon\s*::\s*)?Mutex\s+(\w+)\s*;", re.M)

EPOCH_GUARD_RE = re.compile(r"\bEpochGuard\s+(\w+)\s*[({]")

# `Type[&*] name` declarations: the local/param type map feeding lock
# canonicalization and receiver typing.  Deliberately shallow -- a
# one-token type name after stripping const/refs.
DECL_RE = re.compile(
    r"\b(?:const\s+)?([A-Za-z_]\w*(?:\s*::\s*\w+)*)\s*[&*]?\s+"
    r"([a-z]\w*)\s*(?:=|;|,|\)|\()")

MAKE_SMART_RE = re.compile(
    r"\b(?:auto|[\w:]+)\s*[&*]?\s*(\w+)\s*=\s*"
    r"std\s*::\s*make_(?:shared|unique)\s*<\s*([\w:]+)\s*>")

# `unique_ptr<T>/shared_ptr<T> name` declarations: the pointee type is
# what `name->member` means for lock canonicalization.
SMART_DECL_RE = re.compile(
    r"\b(?:unique_ptr|shared_ptr)\s*<\s*([\w:]+)\s*>\s*[&*]?\s*(\w+)\b")

CALL_RE = re.compile(r"(?<![\w:<>~])([A-Za-z_]\w*)\s*\(")

SWITCH_RE = re.compile(r"\bswitch\s*\(")

CASE_RE = re.compile(r"\bcase\s+(?:horizon\s*::\s*)?StatusCode\s*::\s*(k\w+)")

DEFAULT_RE = re.compile(r"\bdefault\s*:")

RETURN_RE = re.compile(r"\breturn\b([^;]*);")

REQUIRES_RE = re.compile(r"\bHORIZON_REQUIRES\s*\(")

TYPE_STRIP_RE = re.compile(r"^(?:const\s+|volatile\s+)*|\s*[&*]+\s*$")


def _simple_type(text: str) -> str:
    """Last component of a (possibly qualified) type name."""
    text = text.strip()
    text = re.sub(r"[&*\s]+$", "", text)
    text = re.sub(r"^(?:const|volatile)\s+", "", text)
    return text.split("::")[-1].strip()


def _brace_pairs(code: str, begin: int, end: int) -> list:
    """All `{...}` pairs inside [begin, end), innermost discoverable by
    smallest span."""
    pairs = []
    stack = []
    for i in range(begin, end):
        if code[i] == "{":
            stack.append(i)
        elif code[i] == "}" and stack:
            pairs.append((stack.pop(), i))
    return pairs


def _enclosing_block(pairs: list, pos: int, default_end: int) -> int:
    """End offset of the innermost block containing `pos`."""
    best = None
    for (o, c) in pairs:
        if o < pos < c and (best is None or c - o < best[1] - best[0]):
            best = (o, c)
    return best[1] if best else default_end


def _match_paren(code: str, open_pos: int) -> int:
    depth = 0
    for i in range(open_pos, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(code)


class _Context:
    """Per-function naming context for lock canonicalization."""

    def __init__(self, func_name: str, cls: str, types: dict,
                 local_mutexes: set, mutex_members: dict):
        self.func_name = func_name
        self.cls = cls
        self.types = types               # var name -> simple type name
        self.local_mutexes = local_mutexes
        self.mutex_members = mutex_members

    def canon_lock(self, expr: str) -> str:
        expr = expr.strip()
        expr = re.sub(r"^this\s*->\s*", "", expr)
        m = re.match(r"^(.*?)(?:\.|->)\s*(\w+)$", expr)
        if m:
            obj, member = m.group(1), m.group(2)
            obj_name = re.findall(r"\w+", obj)[-1] if re.findall(r"\w+", obj) \
                else ""
            obj_type = self.types.get(obj_name, "")
            if obj_type:
                return f"{obj_type}::{member}"
            owners = self.mutex_members.get(member, [])
            if len(owners) == 1:
                return f"{owners[0]}::{member}"
            return f"?::{member}"
        if expr in self.local_mutexes:
            return f"{self.func_name}::{expr}"
        if self.cls:
            return f"{self.cls}::{expr}"
        owners = self.mutex_members.get(expr, [])
        if len(owners) == 1:
            return f"{owners[0]}::{expr}"
        return expr


def collect_mutex_members(files: list) -> dict:
    """Pass 1: class name -> Mutex member declarations, inverted to
    member -> [owning classes] (sorted for determinism)."""
    owners = {}
    for sf in files:
        scopes = src.build_scopes(sf.code)
        for m in MUTEX_MEMBER_RE.finditer(sf.code):
            cls = src.enclosing_class(scopes, m.start(1))
            if not cls:
                continue
            owners.setdefault(m.group(1), set()).add(cls)
    return {k: sorted(v) for k, v in owners.items()}


def collect_requires(files: list) -> dict:
    """Pass 1: HORIZON_REQUIRES annotations on declarations AND
    definitions, keyed by simple function name.  The canonical domain is
    resolved against the annotated declaration's own parameter list."""
    out = {}
    for sf in files:
        code = sf.code
        for m in REQUIRES_RE.finditer(code):
            args_end = _match_paren(code, m.end() - 1)
            args = code[m.end():args_end]
            # Walk back over ') const' etc. to the parameter list.
            i = m.start() - 1
            while i > 0 and (code[i].isspace() or
                             code[i - 4:i + 1].endswith("const")):
                i -= 5 if code[i - 4:i + 1].endswith("const") else 1
            if i <= 0 or code[i] != ")":
                continue
            depth = 0
            j = i
            while j >= 0:
                if code[j] == ")":
                    depth += 1
                elif code[j] == "(":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            params = code[j + 1:i]
            name_m = re.search(r"(\w+)\s*$", code[:j])
            if not name_m:
                continue
            types = {}
            for dm in DECL_RE.finditer(params):
                types[dm.group(2)] = _simple_type(dm.group(1))
            ctx = _Context(name_m.group(1), "", types, set(), {})
            domains = [ctx.canon_lock(a) for a in args.split(",") if a.strip()]
            out.setdefault(name_m.group(1), set()).update(domains)
    return out


def _function_defs(sf: src.SourceFile, scopes: list) -> list:
    """(name, qualname, head_start, head, body_begin, body_end) for every
    plausible function definition."""
    code = sf.code
    defs = []
    class_spans = [(s.open_pos, s.close_pos) for s in scopes]
    for i, c in enumerate(code):
        if c != "{":
            continue
        # Skip braces that open a namespace/class scope.
        if any(o == i for (o, _) in class_spans):
            continue
        head_start = max(code.rfind(";", 0, i), code.rfind("{", 0, i),
                         code.rfind("}", 0, i)) + 1
        head = code[head_start:i].strip()
        if not head or "(" not in head:
            continue
        if head.count("(") != head.count(")"):
            continue  # mid-expression brace (lambda argument, init list)
        # Constructor initializer lists: cut at the `:` that follows the
        # parameter list (but not `::`).
        first_paren = head.index("(")
        name_m = re.search(r"([\w~]+)\s*$", head[:first_paren])
        if not name_m:
            continue
        name = name_m.group(1).lstrip("~")
        if name in KEYWORDS or name.startswith("HORIZON"):
            continue
        before = head[:name_m.start(1)].rstrip()
        if before.endswith((".", "->", ",", "(", "=", "&", "|", "!")):
            continue  # a call or expression, not a definition
        if re.search(r"=\s*$", before):
            continue
        qual = name
        qm = re.search(r"(\w+)\s*::\s*$", before)
        if qm:
            qual = f"{qm.group(1)}::{name}"
        else:
            cls = src.enclosing_class(scopes, i)
            if cls:
                qual = f"{cls}::{name}"
        body_end = src.match_brace(code, i)
        defs.append((name, qual, head_start, head, i, body_end))
    # Keep only outermost definitions (a lambda body inside a function
    # matched above is dropped here so it folds into its parent).
    outer = []
    for d in defs:
        if not any(o[4] < d[4] and d[5] <= o[5] for o in defs if o is not d):
            outer.append(d)
    return outer


def _local_types(head: str, body: str) -> tuple:
    """(types, local_mutexes): declared types of params+locals, and the
    set of function-local Mutex variable names."""
    types = {}
    first = head.find("(")
    params = head[first:] if first >= 0 else ""
    for m in DECL_RE.finditer(params):
        types[m.group(2)] = _simple_type(m.group(1))
    for m in DECL_RE.finditer(body):
        types.setdefault(m.group(2), _simple_type(m.group(1)))
    for m in MAKE_SMART_RE.finditer(body):
        types[m.group(1)] = _simple_type(m.group(2))
    for m in SMART_DECL_RE.finditer(params + body):
        types[m.group(2)] = _simple_type(m.group(1))
    local_mutexes = set()
    for m in re.finditer(r"\bMutex\s+(\w+)\s*;", body):
        local_mutexes.add(m.group(1))
    return types, local_mutexes


def _extract_calls(sf: src.SourceFile, body_begin: int, body_end: int,
                   types: dict) -> list:
    code = sf.code
    calls = []
    for m in CALL_RE.finditer(code, body_begin, body_end):
        callee = m.group(1)
        if callee in KEYWORDS or callee.startswith("HORIZON"):
            continue
        j = m.start() - 1
        while j >= 0 and code[j].isspace():
            j -= 1
        has_receiver = False
        receiver_type = ""
        if j >= 0 and (code[j] == "." or code[j - 1:j + 1] == "->"):
            has_receiver = True
            k = j - (1 if code[j] == "." else 2)
            while k >= 0 and code[k].isspace():
                k -= 1
            rm = re.search(r"(\w+)$", code[:k + 1])
            if rm:
                receiver_type = types.get(rm.group(1), "")
        calls.append(CallSite(callee=callee, lineno=sf.line_of(m.start()),
                              offset=m.start(), receiver_type=receiver_type,
                              has_receiver=has_receiver))
    return calls


def _extract_locks(sf: src.SourceFile, fn: Function, body_begin: int,
                   body_end: int, ctx: _Context) -> None:
    code = sf.code
    pairs = _brace_pairs(code, body_begin, body_end + 1)
    for m in MUTEX_LOCK_RE.finditer(code, body_begin, body_end):
        open_paren = code.index("(", m.start())
        close_paren = _match_paren(code, open_paren)
        expr = code[open_paren + 1:close_paren]
        domain = ctx.canon_lock(expr)
        end = _enclosing_block(pairs, m.start(), body_end)
        fn.acquires.append(LockAcquire(domain=domain,
                                       lineno=sf.line_of(m.start()),
                                       begin=m.start(), end=end))
    for domain in fn.requires:
        fn.acquires.append(LockAcquire(domain=domain,
                                       lineno=fn.lineno,
                                       begin=body_begin, end=body_end,
                                       from_requires=True))
    # Nesting + held calls.
    for outer in fn.acquires:
        for inner in fn.acquires:
            if inner is outer or inner.from_requires:
                continue
            if outer.begin < inner.begin < outer.end:
                fn.nested.append((outer.domain, inner))
        for call in fn.calls:
            if outer.begin < call.offset < outer.end:
                fn.held_calls.append((outer.domain, call))


def _extract_atomics(sf: src.SourceFile, fir: FileIR, hot: bool) -> None:
    code_lines = sf.code_lines
    for lineno, line in enumerate(code_lines, start=1):
        for m in MEMORY_ORDER_RE.finditer(line):
            fir.atomics.append(AtomicSite(lineno=lineno, order=m.group(1),
                                          explicit=True))
    if not hot:
        return
    # Defaulted (seq_cst) operations on hot-path atomics: a known atomic
    # member op whose argument list names no memory_order.
    op_re = re.compile(r"(?:\.|->)\s*(" + "|".join(ATOMIC_OPS) + r")\s*\(")
    code = sf.code
    for m in op_re.finditer(code):
        close = _match_paren(code, m.end() - 1)
        args = code[m.end():close]
        if "memory_order" in args:
            continue
        op = m.group(1)
        # `clear()` / `wait()` on non-atomics are common; require the op
        # to be an unambiguous atomic operation when argument-free.
        if op in ("clear", "wait") and not args.strip():
            continue
        fir.atomics.append(AtomicSite(lineno=sf.line_of(m.start()),
                                      order="seq_cst", explicit=False, op=op))


def _extract_switches(sf: src.SourceFile, fir: FileIR) -> None:
    code = sf.code
    for m in SWITCH_RE.finditer(code):
        open_paren = code.index("(", m.start())
        close_paren = _match_paren(code, open_paren)
        brace = code.find("{", close_paren)
        if brace == -1:
            continue
        end = src.match_brace(code, brace)
        body = code[brace:end]
        cases = CASE_RE.findall(body)
        if not cases:
            continue
        fir.switches.append(SwitchSite(lineno=sf.line_of(m.start()),
                                       cases=cases,
                                       has_default=bool(
                                           DEFAULT_RE.search(body))))


_SNAPSHOT_DECL_RE = re.compile(
    r"(?:const\s+)?(?:auto|(?:[\w:]+\s*::\s*)?ShardView)\s*\*\s*"
    r"(?:const\s+)?(\w+)\s*=\s*([^;]*);")

_LAMBDA_RE = re.compile(r"\[([^\]\[]*)\]\s*(?:\([^)]*\))?\s*(?:->\s*[\w:<>]+\s*)?\{")


def _extract_epoch_escapes(sf: src.SourceFile, fir: FileIR) -> None:
    code = sf.code
    for gm in EPOCH_GUARD_RE.finditer(code):
        pairs = _brace_pairs(code, 0, len(code))
        scope_end = _enclosing_block(pairs, gm.start(), len(code))
        scope = code[gm.start():scope_end]
        base = gm.start()
        # Track snapshot pointers declared under the guard.
        tracked = {}
        locals_in_scope = set()
        for dm in _SNAPSHOT_DECL_RE.finditer(scope):
            init = dm.group(2)
            if "ShardView" in dm.group(0) or "view.load" in init.replace(" ", "") \
                    or re.search(r"(?:\.|->)\s*view\s*\.\s*load\s*\(", init):
                tracked[dm.group(1)] = base + dm.start()
        for dm in DECL_RE.finditer(scope):
            locals_in_scope.add(dm.group(2))
        if not tracked:
            continue
        bare = {v: re.compile(r"\b" + v + r"\b(?!\s*(?:->|\.|\[))")
                for v in tracked}
        # (1) returning the pointer past the guard's lifetime
        for rm in RETURN_RE.finditer(scope):
            expr = rm.group(1)
            for v, vre in bare.items():
                if vre.search(expr):
                    fir.escapes.append(EscapeEvent(
                        lineno=sf.line_of(base + rm.start()), kind="return",
                        var=v, detail="returned past the EpochGuard"))
        # (2) stores to anything that outlives the guard scope
        assign_re = re.compile(
            r"(?:^|[;{}]\s*)([\w>\-.\[\]]+?)\s*=\s*([^=;][^;]*);", re.S)
        for am in assign_re.finditer(scope):
            lhs, rhs = am.group(1).strip(), am.group(2)
            lhs_name = re.findall(r"\w+", lhs)
            if not lhs_name:
                continue
            lhs_base = lhs_name[-1]
            member_like = ("->" in lhs or "." in lhs or "[" in lhs or
                           lhs_base.endswith("_"))
            outlives = member_like or (lhs_base not in locals_in_scope and
                                       lhs_base not in tracked)
            if not outlives:
                continue
            for v, vre in bare.items():
                if vre.search(rhs):
                    fir.escapes.append(EscapeEvent(
                        lineno=sf.line_of(base + am.start(2)),
                        kind="field-store", var=v,
                        detail=f"stored to `{lhs}`, which outlives the guard"))
        # (3) captured by a lambda that may outlive the guard scope.
        # Conservative: any non-immediately-invoked lambda counts; an
        # in-scope-only lambda needs a justified allow().
        for lm in _LAMBDA_RE.finditer(scope):
            captures = lm.group(1)
            body_open = base + lm.end() - 1
            body_close = src.match_brace(code, body_open)
            after = code[body_close + 1:body_close + 3].lstrip()
            immediately_invoked = after.startswith("(")
            if immediately_invoked:
                continue
            lam_body = code[body_open:body_close]
            for v in tracked:
                explicit = re.search(r"(?:^|[,&\s])&?" + v + r"\b",
                                     captures or "")
                by_default = (re.search(r"(?:^|,)\s*[&=]\s*(?:,|$)",
                                        captures or "") and
                              re.search(r"\b" + v + r"\b", lam_body))
                if explicit or by_default:
                    fir.escapes.append(EscapeEvent(
                        lineno=sf.line_of(base + lm.start()),
                        kind="lambda-capture", var=v,
                        detail="captured by a lambda that may outlive the "
                               "EpochGuard scope"))


def lower_file(sf: src.SourceFile, mutex_members: dict, requires_map: dict,
               hot_atomics: bool) -> FileIR:
    fir = FileIR(rel=sf.rel)
    scopes = src.build_scopes(sf.code)
    for (name, qual, _head_start, head, body_begin, body_end) in \
            _function_defs(sf, scopes):
        fn = Function(name=name, qualname=qual, rel=sf.rel,
                      lineno=sf.line_of(body_begin))
        body = sf.code[body_begin:body_end]
        types, local_mutexes = _local_types(head, body)
        cls = qual.split("::")[0] if "::" in qual else \
            src.enclosing_class(scopes, body_begin)
        ctx = _Context(name, cls, types, local_mutexes, mutex_members)
        # REQUIRES from this head plus any annotated declaration.
        req = set()
        for rm in REQUIRES_RE.finditer(head):
            args_end = _match_paren(head, rm.end() - 1)
            for a in head[rm.end():args_end].split(","):
                if a.strip():
                    req.add(ctx.canon_lock(a))
        req.update(requires_map.get(name, set()))
        fn.requires = sorted(req)
        fn.calls = _extract_calls(sf, body_begin, body_end, types)
        _extract_locks(sf, fn, body_begin, body_end, ctx)
        fir.functions.append(fn)
    _extract_atomics(sf, fir, hot_atomics)
    _extract_switches(sf, fir)
    _extract_epoch_escapes(sf, fir)
    return fir
