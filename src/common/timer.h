// Monotonic wall-clock timer used by the computation-cost experiments.
#ifndef HORIZON_COMMON_TIMER_H_
#define HORIZON_COMMON_TIMER_H_

#include <chrono>

namespace horizon {

/// Wall-clock stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace horizon

#endif  // HORIZON_COMMON_TIMER_H_
