// Monotonic wall-clock timer used by the computation-cost experiments,
// plus the deterministic virtual clock the simulation harness substitutes
// for wall time.
#ifndef HORIZON_COMMON_TIMER_H_
#define HORIZON_COMMON_TIMER_H_

#include <chrono>

#include "common/check.h"

namespace horizon {

/// Wall-clock stopwatch with nanosecond resolution.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Deterministic logical clock for simulation harnesses.
///
/// The serving stack takes every event/prediction time as an explicit
/// double (absolute stream seconds), so a whole-service simulation never
/// needs to touch the wall clock: the driver owns a VirtualClock, stamps
/// operations with Now(), and advances it explicitly.  Monotonicity is
/// enforced, which turns a mis-ordered op schedule into a loud failure
/// instead of a silently time-travelling tracker.
class VirtualClock {
 public:
  explicit VirtualClock(double start = 0.0) : now_(start) {}

  /// Current logical time in seconds.
  double Now() const { return now_; }

  /// Jumps forward to absolute time `t` (>= Now()).
  void AdvanceTo(double t) {
    HORIZON_CHECK_GE(t, now_);
    now_ = t;
  }

  /// Advances by `dt` seconds (>= 0); returns the new Now().
  double Advance(double dt) {
    HORIZON_CHECK_GE(dt, 0.0);
    now_ += dt;
    return now_;
  }

 private:
  double now_;
};

}  // namespace horizon

#endif  // HORIZON_COMMON_TIMER_H_
