#include "common/table.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/check.h"

namespace horizon {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  HORIZON_CHECK(!header_.empty());
}

std::string Table::Num(double v, int digits) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

std::string Table::Sci(double v, int digits) {
  if (std::isnan(v)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", digits - 1, v);
  return buf;
}

void Table::AddRow(std::vector<std::string> row) {
  HORIZON_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void Table::Print(const std::string& title) const {
  if (!title.empty()) std::printf("== %s ==\n", title.c_str());
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(header_);
  size_t total = header_.size() - 1;
  for (size_t w : widths) total += w + 1;
  for (size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
  std::fflush(stdout);
}

namespace {

std::string CsvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << CsvEscape(row[c]);
      if (c + 1 != row.size()) out << ",";
    }
    out << "\n";
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return static_cast<bool>(out);
}

}  // namespace horizon
