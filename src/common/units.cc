#include "common/units.h"

#include <cmath>
#include <cstdio>

namespace horizon {

namespace {

bool IsMultiple(double seconds, double unit) {
  const double k = seconds / unit;
  return k >= 1.0 && std::fabs(k - std::round(k)) < 1e-9;
}

}  // namespace

std::string FormatDuration(double seconds) {
  char buf[32];
  if (IsMultiple(seconds, kDay)) {
    std::snprintf(buf, sizeof(buf), "%gd", seconds / kDay);
  } else if (IsMultiple(seconds, kHour)) {
    std::snprintf(buf, sizeof(buf), "%gh", seconds / kHour);
  } else if (IsMultiple(seconds, kMinute)) {
    std::snprintf(buf, sizeof(buf), "%gm", seconds / kMinute);
  } else {
    std::snprintf(buf, sizeof(buf), "%gs", seconds);
  }
  return buf;
}

}  // namespace horizon
