// Durable file IO for the checkpoint subsystem: CRC32-framed blobs,
// atomic write-temp -> fsync -> rename file replacement, small directory
// helpers, and a deterministic crash-fault injector the durability tests
// use to prove that a checkpoint torn at ANY write/fsync/rename point is
// never loaded and never damages the previous valid checkpoint.
//
// Error reporting: the fallible helpers return Status / StatusOr with
// typed codes -- kNotFound (no such file), kIoError (the OS or the fault
// injector refused an operation), kCorruption (bytes fail CRC/size
// validation).  Both types are contextually bool / optional compatible,
// so pre-Status call sites keep compiling (see common/status.h).
#ifndef HORIZON_COMMON_FILE_IO_H_
#define HORIZON_COMMON_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"

namespace horizon::io {

/// The faultable operation kinds of the durability protocol.
enum class FaultPoint : int {
  kWrite = 0,   ///< writing bytes into a (temp) file
  kFsync = 1,   ///< flushing a file or directory to stable storage
  kRename = 2,  ///< atomically publishing a temp file
};

/// Deterministic crash-fault injection for durability tests.
///
/// A test arms the injector with `ArmCrashAt(n)`: the n-th (0-based)
/// faultable operation performed by the helpers below fails, and every
/// subsequent operation fails too -- modeling a process that died at that
/// point and never ran again.  A failing kWrite additionally leaves a torn
/// file (a prefix of the intended bytes) behind, the worst case a real
/// crash can produce; CRC framing must catch it.
///
/// The injector can also be armed from the environment for tooling runs:
/// setting HORIZON_FAULT_CRASH_AT=<n> arms it at process start.  When not
/// armed, the hook is a single relaxed atomic load on each operation.
class FaultInjector {
 public:
  /// Process-wide injector consulted by the IO helpers.
  static FaultInjector& Global();

  /// Arms the injector: the n-th faultable operation from now on fails and
  /// the injector enters the "crashed" state.  n < 0 disarms.
  void ArmCrashAt(int n);

  /// Arms a transient fault: the n-th (0-based) faultable operation from
  /// now fails ONCE and the injector then disarms itself -- modeling a
  /// spurious IO error (EIO, full disk) rather than a dead process, so a
  /// retry of the failed protocol can succeed.  Used by the simulation
  /// harness's kIoError fault schedules.  n < 0 disarms.
  void ArmFailOnce(int n);

  /// Disarms and clears the crashed state and operation counter.
  void Disarm();

  /// Number of faultable operations observed since the last ArmCrashAt.
  /// Tests use this to size "crash at every point" loops.
  int ops_seen() const;

  /// True once the armed fault has fired.
  bool crashed() const;

  /// Consulted by the helpers before each faultable operation; returns
  /// true when the operation must fail.  No-op unless armed.
  bool ShouldFail(FaultPoint point);

 private:
  FaultInjector();

  mutable Mutex mu_;
  bool armed_ HORIZON_GUARDED_BY(mu_) = false;
  bool crashed_ HORIZON_GUARDED_BY(mu_) = false;
  bool transient_ HORIZON_GUARDED_BY(mu_) = false;
  int countdown_ HORIZON_GUARDED_BY(mu_) = -1;
  int ops_ HORIZON_GUARDED_BY(mu_) = 0;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `data`.
uint32_t Crc32(std::string_view data);

/// Wraps a payload in a CRC frame:
///   "hzf1 <payload size> <crc32 hex>\n" + payload
/// The frame detects truncation, bit flips, and concatenation damage.
std::string WrapCrcFrame(std::string_view payload);

/// Validates and strips a CRC frame.  Returns kCorruption when the header
/// is malformed, the size disagrees with the actual byte count, or the
/// CRC does not match -- i.e. for every torn or corrupted file.
StatusOr<std::string> UnwrapCrcFrame(std::string_view frame);

/// Atomically replaces `path` with `contents`: writes `path + ".tmp"`,
/// fsyncs it, renames it over `path`, and fsyncs the parent directory.
/// Either the old file or the complete new file survives a crash at any
/// step; a torn temp file is never visible under `path`.  Returns
/// kIoError on any IO error or injected fault.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Reads a whole file.  Returns kNotFound when it does not exist and
/// kIoError when it exists but cannot be opened or read.
StatusOr<std::string> ReadFile(const std::string& path);

/// Creates a directory (and missing parents).  OK when the directory
/// exists afterwards, kIoError otherwise.
Status EnsureDir(const std::string& path);

/// Names of the entries of a directory (excluding "." / ".."), sorted.
/// Empty when the directory cannot be read.
std::vector<std::string> ListDir(const std::string& path);

/// Recursively removes a file or directory tree.  Best effort; returns
/// true when the target no longer exists.
bool RemoveTree(const std::string& path);

}  // namespace horizon::io

#endif  // HORIZON_COMMON_FILE_IO_H_
