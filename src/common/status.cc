#include "common/status.h"

namespace horizon {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kNotYetLive: return "not_yet_live";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kCorruption: return "corruption";
    case StatusCode::kConfigMismatch: return "config_mismatch";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace horizon
