// Lightweight CHECK macros in the spirit of glog, used for contract
// enforcement throughout the library.  The project does not use C++
// exceptions; violated preconditions abort with a diagnostic.
#ifndef HORIZON_COMMON_CHECK_H_
#define HORIZON_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace horizon::internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace horizon::internal_check

/// Aborts the process with a diagnostic when `cond` is false.
#define HORIZON_CHECK(cond)                                               \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::horizon::internal_check::CheckFailed(__FILE__, __LINE__, #cond);  \
    }                                                                     \
  } while (false)

#define HORIZON_CHECK_EQ(a, b) HORIZON_CHECK((a) == (b))
#define HORIZON_CHECK_NE(a, b) HORIZON_CHECK((a) != (b))
#define HORIZON_CHECK_LT(a, b) HORIZON_CHECK((a) < (b))
#define HORIZON_CHECK_LE(a, b) HORIZON_CHECK((a) <= (b))
#define HORIZON_CHECK_GT(a, b) HORIZON_CHECK((a) > (b))
#define HORIZON_CHECK_GE(a, b) HORIZON_CHECK((a) >= (b))

/// Debug-only variant; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define HORIZON_DCHECK(cond) \
  do {                       \
  } while (false)
#else
#define HORIZON_DCHECK(cond) HORIZON_CHECK(cond)
#endif

#endif  // HORIZON_COMMON_CHECK_H_
