// Process-wide worker pool and data-parallel loops.
//
// The serving and training hot paths shard their work with ParallelFor,
// which splits an index range into grain-sized chunks executed by the
// global pool.  The calling thread always participates, so ParallelFor
// never deadlocks even when invoked from inside a pool worker (nested
// parallelism degrades to the caller draining the remaining chunks).
#ifndef HORIZON_COMMON_THREAD_POOL_H_
#define HORIZON_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace horizon {

/// Fixed-size worker pool.  Tasks are run in FIFO order; the pool does not
/// propagate task results or exceptions (ParallelFor layers that on top).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means one per hardware thread
  /// (respecting the HORIZON_THREADS environment override).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task.  Must not be called after destruction has begun.
  void Run(std::function<void()> fn) HORIZON_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// The process-wide pool used by the ParallelFor overloads below.
  /// Constructed on first use with the default thread count.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ HORIZON_GUARDED_BY(mu_);
  bool stop_ HORIZON_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(begin, end) over a partition of [0, n) into chunks of at most
/// `grain` indices, distributed across `pool` plus the calling thread.
///
/// Blocks until every chunk has finished.  The first exception thrown by
/// `fn` is rethrown on the calling thread (remaining chunks are skipped).
/// Safe to call recursively from inside pool workers.
void ParallelFor(ThreadPool& pool, size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// ParallelFor on the global pool.
void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

}  // namespace horizon

#endif  // HORIZON_COMMON_THREAD_POOL_H_
