#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace horizon {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the all-zero state (probability ~0 but cheap to rule out).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  HORIZON_DCHECK(lo <= hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  HORIZON_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = max() - max() % n;
  uint64_t v = Next();
  while (v >= limit) v = Next();
  return v % n;
}

double Rng::Normal() {
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

double Rng::Normal(double mean, double sigma) {
  HORIZON_DCHECK(sigma >= 0.0);
  return mean + sigma * Normal();
}

double Rng::Exponential(double rate) {
  HORIZON_DCHECK(rate > 0.0);
  // -log(1 - U) with U in [0,1) avoids log(0).
  return -std::log1p(-Uniform()) / rate;
}

double Rng::LogNormal(double mu_log, double sigma_log) {
  return std::exp(Normal(mu_log, sigma_log));
}

uint64_t Rng::Poisson(double mean) {
  HORIZON_DCHECK(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double l = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= Uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the large
  // means used in workload generation (error < 1e-2 relative).
  const double x = Normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<uint64_t>(x + 0.5);
}

double Rng::Gamma(double shape, double scale) {
  HORIZON_DCHECK(shape > 0.0);
  HORIZON_DCHECK(scale > 0.0);
  if (shape < 1.0) {
    // Boost to shape >= 1 (Marsaglia-Tsang trick).
    const double u = Uniform();
    return Gamma(shape + 1.0, scale) * std::pow(u <= 0.0 ? 1e-300 : u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double Rng::Beta(double a, double b) {
  const double x = Gamma(a, 1.0);
  const double y = Gamma(b, 1.0);
  return x / (x + y);
}

double Rng::Pareto(double xm, double alpha) {
  HORIZON_DCHECK(xm > 0.0);
  HORIZON_DCHECK(alpha > 0.0);
  double u = Uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm * std::pow(u, -1.0 / alpha);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    HORIZON_DCHECK(w >= 0.0);
    total += w;
  }
  HORIZON_CHECK_GT(total, 0.0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace horizon
