#include "common/file_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace horizon::io {

// ---------------------------------------------------------------------------
// FaultInjector

FaultInjector::FaultInjector() {
  const char* env = std::getenv("HORIZON_FAULT_CRASH_AT");
  if (env != nullptr && *env != '\0') {
    ArmCrashAt(std::atoi(env));
  }
}

FaultInjector& FaultInjector::Global() {
  // horizon-lint: allow(naked-new) -- intentionally leaked singleton: the
  // injector is consulted from IO helpers that may run during static
  // destruction.
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::ArmCrashAt(int n) {
  MutexLock lock(mu_);
  armed_ = n >= 0;
  crashed_ = false;
  transient_ = false;
  countdown_ = n;
  ops_ = 0;
}

void FaultInjector::ArmFailOnce(int n) {
  MutexLock lock(mu_);
  armed_ = n >= 0;
  crashed_ = false;
  transient_ = true;
  countdown_ = n;
  ops_ = 0;
}

void FaultInjector::Disarm() {
  MutexLock lock(mu_);
  armed_ = false;
  crashed_ = false;
  transient_ = false;
  countdown_ = -1;
  ops_ = 0;
}

int FaultInjector::ops_seen() const {
  MutexLock lock(mu_);
  return ops_;
}

bool FaultInjector::crashed() const {
  MutexLock lock(mu_);
  return crashed_;
}

bool FaultInjector::ShouldFail(FaultPoint /*point*/) {
  MutexLock lock(mu_);
  if (!armed_) return false;
  ++ops_;
  if (crashed_) return true;  // the process died; nothing after it runs
  if (--countdown_ < 0) {
    if (transient_) {
      // A transient fault fires once and recovers.
      armed_ = false;
      transient_ = false;
      countdown_ = -1;
    } else {
      crashed_ = true;
    }
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// CRC32 framing

uint32_t Crc32(std::string_view data) {
  // Table-driven reflected CRC-32 (polynomial 0xEDB88320).
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string WrapCrcFrame(std::string_view payload) {
  char header[64];
  std::snprintf(header, sizeof(header), "hzf1 %zu %08x\n", payload.size(),
                Crc32(payload));
  std::string out(header);
  out.append(payload.data(), payload.size());
  return out;
}

StatusOr<std::string> UnwrapCrcFrame(std::string_view frame) {
  const size_t eol = frame.find('\n');
  if (eol == std::string_view::npos) {
    return Status::Corruption("CRC frame: missing header line");
  }
  std::istringstream header{std::string(frame.substr(0, eol))};
  std::string magic;
  size_t size = 0;
  std::string crc_hex;
  if (!(header >> magic >> size >> crc_hex) || magic != "hzf1") {
    return Status::Corruption("CRC frame: malformed header");
  }
  char* end = nullptr;
  const unsigned long crc = std::strtoul(crc_hex.c_str(), &end, 16);
  if (end == crc_hex.c_str() || *end != '\0') {
    return Status::Corruption("CRC frame: bad checksum field");
  }
  const std::string_view payload = frame.substr(eol + 1);
  if (payload.size() != size) {  // torn or padded file
    return Status::Corruption("CRC frame: payload size mismatch");
  }
  if (Crc32(payload) != static_cast<uint32_t>(crc)) {
    return Status::Corruption("CRC frame: checksum mismatch");
  }
  return std::string(payload);
}

// ---------------------------------------------------------------------------
// Atomic file replacement

namespace {

/// Writes the whole buffer, retrying on short writes / EINTR.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

/// fsyncs the directory containing `path` so a completed rename is durable.
bool FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  FaultInjector& faults = FaultInjector::Global();
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError("open " + tmp + ": " + std::strerror(errno));
  if (faults.ShouldFail(FaultPoint::kWrite)) {
    // Simulated crash mid-write: leave a torn prefix behind.
    WriteAll(fd, contents.data(), contents.size() / 2);
    ::close(fd);
    return Status::IoError("injected crash writing " + tmp);
  }
  if (!WriteAll(fd, contents.data(), contents.size())) {
    ::close(fd);
    return Status::IoError("write " + tmp + ": " + std::strerror(errno));
  }
  if (faults.ShouldFail(FaultPoint::kFsync) || ::fsync(fd) != 0) {
    ::close(fd);
    return Status::IoError("fsync " + tmp);
  }
  if (::close(fd) != 0) {
    return Status::IoError("close " + tmp + ": " + std::strerror(errno));
  }
  if (faults.ShouldFail(FaultPoint::kRename)) {
    return Status::IoError("injected crash renaming " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + ": " + std::strerror(errno));
  }
  // The rename has reached the filesystem; a crash at the directory fsync
  // below corresponds to the "rename made it to disk" outcome, so the
  // injected failure only aborts the protocol, it cannot undo the rename.
  if (faults.ShouldFail(FaultPoint::kFsync)) {
    return Status::IoError("injected crash fsyncing parent of " + path);
  }
  if (!FsyncParentDir(path)) {
    return Status::IoError("fsync parent dir of " + path);
  }
  return Status::Ok();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound(path + ": no such file");
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError("read " + path + ": " + std::strerror(errno));
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status EnsureDir(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("EnsureDir: empty path");
  std::string prefix;
  size_t pos = 0;
  while (pos <= path.size()) {
    const size_t slash = path.find('/', pos);
    prefix = slash == std::string::npos ? path : path.substr(0, slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (prefix.empty()) continue;  // leading '/'
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("mkdir " + prefix + ": " + std::strerror(errno));
    }
  }
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IoError(path + " is not a directory");
  }
  return Status::Ok();
}

std::vector<std::string> ListDir(const std::string& path) {
  std::vector<std::string> out;
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return out;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") out.push_back(name);
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end());
  return out;
}

bool RemoveTree(const std::string& path) {
  struct stat st{};
  if (::lstat(path.c_str(), &st) != 0) return errno == ENOENT;
  if (S_ISDIR(st.st_mode)) {
    for (const std::string& name : ListDir(path)) {
      RemoveTree(path + "/" + name);
    }
    return ::rmdir(path.c_str()) == 0;
  }
  return ::unlink(path.c_str()) == 0;
}

}  // namespace horizon::io
