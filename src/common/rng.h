// Deterministic, fast random number generation for simulation and training.
//
// The library does not use std::mt19937 directly because experiment
// reproducibility across standard-library versions matters: distribution
// implementations (std::normal_distribution etc.) are not portable.  We ship
// xoshiro256++ plus hand-rolled samplers so every experiment is bit-stable.
#ifndef HORIZON_COMMON_RNG_H_
#define HORIZON_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace horizon {

/// xoshiro256++ pseudo-random generator (Blackman & Vigna).
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be plugged
/// into <random> utilities when convenient.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator with SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit output.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via the polar (Marsaglia) method.
  double Normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double Normal(double mean, double sigma);

  /// Exponential with the given rate (rate > 0).
  double Exponential(double rate);

  /// Lognormal: exp(Normal(mu_log, sigma_log)).
  double LogNormal(double mu_log, double sigma_log);

  /// Poisson with the given mean (>= 0); Knuth for small means,
  /// PTRS rejection for large ones.
  uint64_t Poisson(double mean);

  /// Gamma(shape, scale) via Marsaglia-Tsang squeeze.  shape > 0, scale > 0.
  double Gamma(double shape, double scale);

  /// Beta(a, b) via two Gamma draws.  a > 0, b > 0.
  double Beta(double a, double b);

  /// Pareto (Lomax-style, minimum xm > 0, tail index alpha > 0):
  /// xm * U^{-1/alpha}.
  double Pareto(double xm, double alpha);

  /// Bernoulli(p): true with probability p.
  bool Bernoulli(double p);

  /// Samples an index from unnormalized non-negative weights.
  /// Requires a strictly positive total weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Forks an independently-seeded generator; useful for giving each
  /// simulated entity its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace horizon

#endif  // HORIZON_COMMON_RNG_H_
