// Clang Thread-Safety-Analysis annotations and the annotated lock
// primitives every mutex in src/ must use.
//
// The serving stack's correctness claims (Prop 3.2's O(1)-state
// recurrence updated under the right shard lock, checkpoint snapshots
// taken under shard locks, the wait-free metrics registry's registration
// map) are enforced *statically*: building with clang emits
// -Wthread-safety diagnostics (the CI static-analysis job promotes them
// with -Werror=thread-safety), so dropping a lock on a guarded field is
// a compile error, not a TSan coin flip.  Under gcc (which has no
// thread-safety analysis) every macro expands to nothing and the
// wrappers degrade to plain std::mutex semantics at zero cost.
//
// Conventions (see DESIGN.md section 11 "Static analysis & lock
// discipline" for the full catalog):
//   * Every mutex-protected field carries HORIZON_GUARDED_BY(mu_).
//   * Locks are taken with horizon::MutexLock (RAII), never with
//     std::lock_guard / std::unique_lock on a raw std::mutex --
//     tools/horizon_lint.py rejects the raw forms in src/.
//   * Condition waits go through horizon::CondVar::Wait(mu), which
//     REQUIRES the mutex and preserves the "held" state across the wait
//     from the analysis' point of view.
//   * Functions that must be called with a lock held are annotated
//     HORIZON_REQUIRES(mu); functions that must NOT hold it,
//     HORIZON_EXCLUDES(mu).
#ifndef HORIZON_COMMON_ANNOTATIONS_H_
#define HORIZON_COMMON_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define HORIZON_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HORIZON_THREAD_ANNOTATION(x)  // no-op: gcc has no -Wthread-safety
#endif

/// Declares a type to be a lockable capability ("mutex").
#define HORIZON_CAPABILITY(x) HORIZON_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor.
#define HORIZON_SCOPED_CAPABILITY HORIZON_THREAD_ANNOTATION(scoped_lockable)

/// The annotated field may only be read or written while holding `x`.
#define HORIZON_GUARDED_BY(x) HORIZON_THREAD_ANNOTATION(guarded_by(x))

/// The pointee of the annotated pointer is guarded by `x`.
#define HORIZON_PT_GUARDED_BY(x) HORIZON_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities.
#define HORIZON_REQUIRES(...) \
  HORIZON_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities (held on return).
#define HORIZON_ACQUIRE(...) \
  HORIZON_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (must be held on entry).
#define HORIZON_RELEASE(...) \
  HORIZON_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability when it returns `value`.
#define HORIZON_TRY_ACQUIRE(...) \
  HORIZON_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called while holding the listed capabilities
/// (deadlock prevention: it acquires them itself).
#define HORIZON_EXCLUDES(...) \
  HORIZON_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the capability guarding its result.
#define HORIZON_RETURN_CAPABILITY(x) \
  HORIZON_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's lock discipline cannot be expressed in
/// the annotation language.  Use sparingly and justify in a comment.
#define HORIZON_NO_THREAD_SAFETY_ANALYSIS \
  HORIZON_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace horizon {

class CondVar;

/// std::mutex with capability annotations.  All mutexes in src/ use this
/// wrapper so clang can prove lock discipline at compile time.
class HORIZON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HORIZON_ACQUIRE() { mu_.lock(); }
  void Unlock() HORIZON_RELEASE() { mu_.unlock(); }
  bool TryLock() HORIZON_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // CondVar::Wait needs the raw handle

  std::mutex mu_;
};

/// RAII lock for Mutex -- the only sanctioned way to hold one.
class HORIZON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HORIZON_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() HORIZON_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex.  Wait() atomically releases and
/// reacquires the mutex, so from the caller's (and the analysis')
/// perspective the lock is held across the call -- hence REQUIRES.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible: wait in a loop
  /// that rechecks the guarded predicate).
  void Wait(Mutex& mu) HORIZON_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the mutex
  }

  /// Blocks until notified or `timeout` elapses.  Returns false on
  /// timeout.  The timed form exists for eventcount-style sleepers (the
  /// ingest appliers): a missed fast-path notify degrades to a bounded
  /// stall instead of a hang, so the wakeup protocol needs no Dekker
  /// proof to be *safe*, only to be fast.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      HORIZON_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const bool notified = cv_.wait_for(lock, timeout) == std::cv_status::no_timeout;
    lock.release();  // the caller's scope still owns the mutex
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace horizon

#endif  // HORIZON_COMMON_ANNOTATIONS_H_
