// Typed error propagation for the serving stack.
//
// `Status` carries a code plus a human-readable message; `StatusOr<T>`
// carries either a value or a non-OK Status.  Both are deliberately
// drop-in compatible with the bool / std::optional returns they replace:
// `Status` converts contextually to bool (true == ok) and `StatusOr`
// exposes the optional surface (has_value / operator* / operator-> /
// value_or), so pre-Status callers keep compiling for one release while
// they migrate to code-based checks.  New code should prefer `.ok()`,
// `.code()` and `HORIZON_RETURN_IF_ERROR`.
#ifndef HORIZON_COMMON_STATUS_H_
#define HORIZON_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/check.h"

namespace horizon {

/// Error taxonomy of the serving stack.  Keep the numeric values stable:
/// they are exported as metric labels (`horizon_errors_total{code=...}`).
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,        ///< the item/file/checkpoint does not exist
  kNotYetLive = 2,      ///< the item exists but its creation time is in the future
  kInvalidArgument = 3, ///< the caller broke a precondition
  kIoError = 4,         ///< the OS refused a read/write/fsync/rename
  kCorruption = 5,      ///< bytes exist but fail CRC / parse validation
  kConfigMismatch = 6,  ///< persisted state disagrees with this process' config
  kAlreadyExists = 7,   ///< uniqueness violated (e.g. duplicate item id)
  kInternal = 8,        ///< invariant violation; always a bug
  kResourceExhausted = 9, ///< a bounded resource (ingest queue) is full
};

/// Stable lower-case name of a code ("ok", "not_found", ...), used as the
/// Prometheus label value and in Status::ToString.
std::string_view StatusCodeName(StatusCode code);

/// A code plus an optional message.  OK statuses carry no message and are
/// cheap to copy.
///
/// [[nodiscard]]: silently dropping a Status hides failures; call sites
/// that are genuinely best-effort must say so with `(void)` and a comment
/// explaining why ignoring the failure is correct.
class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status NotYetLive(std::string m) { return {StatusCode::kNotYetLive, std::move(m)}; }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status IoError(std::string m) { return {StatusCode::kIoError, std::move(m)}; }
  static Status Corruption(std::string m) { return {StatusCode::kCorruption, std::move(m)}; }
  static Status ConfigMismatch(std::string m) { return {StatusCode::kConfigMismatch, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>".
  std::string ToString() const;

  /// Deprecated bool shim: `if (!service.Checkpoint(dir))` keeps working.
  explicit operator bool() const { return ok(); }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a T or a non-OK Status.  The accessor surface is a superset of
/// std::optional<T> so that callers of the pre-Status APIs keep compiling.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a value: `return result;`.
  StatusOr(T value) : value_(std::move(value)) {}
  /// Implicit from a non-OK status: `return Status::NotFound(...);`.
  StatusOr(Status status) : status_(std::move(status)) {
    HORIZON_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  StatusCode code() const { return status_.code(); }
  const Status& status() const { return status_; }

  /// The value; it is a fatal error to call on a non-OK StatusOr.
  const T& value() const& { HORIZON_CHECK(ok()); return *value_; }
  T& value() & { HORIZON_CHECK(ok()); return *value_; }
  T&& value() && { HORIZON_CHECK(ok()); return *std::move(value_); }

  // --- std::optional-compatible shims (deprecated; migrate to ok()) ----
  bool has_value() const { return ok(); }
  explicit operator bool() const { return ok(); }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }
  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace horizon

/// Propagates a non-OK Status out of the enclosing function.
#define HORIZON_RETURN_IF_ERROR(expr)                  \
  do {                                                 \
    ::horizon::Status horizon_status_ = (expr);        \
    if (!horizon_status_.ok()) return horizon_status_; \
  } while (0)

#endif  // HORIZON_COMMON_STATUS_H_
