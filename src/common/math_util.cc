#include "common/math_util.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace horizon {

double Log1mExp(double x) {
  HORIZON_DCHECK(x >= 0.0);
  if (x <= 0.0) return -std::numeric_limits<double>::infinity();
  // Maechler: for x <= log 2 use log(-expm1(-x)), else log1p(-exp(-x)).
  constexpr double kLog2 = 0.6931471805599453;
  if (x <= kLog2) return std::log(-std::expm1(-x));
  return std::log1p(-std::exp(-x));
}

double LogAddExp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

void RunningStats::Add(double v) {
  if (n_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  HORIZON_DCHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) { return Quantile(std::move(values), 0.5); }

LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  HORIZON_CHECK_EQ(x.size(), y.size());
  LinearFit fit;
  const size_t n = x.size();
  if (n < 2) return fit;
  KahanSum sx, sy;
  for (size_t i = 0; i < n; ++i) {
    sx.Add(x[i]);
    sy.Add(y[i]);
  }
  const double mx = sx.value() / static_cast<double>(n);
  const double my = sy.value() / static_cast<double>(n);
  KahanSum sxx, sxy, syy;
  for (size_t i = 0; i < n; ++i) {
    sxx.Add((x[i] - mx) * (x[i] - mx));
    sxy.Add((x[i] - mx) * (y[i] - my));
    syy.Add((y[i] - my) * (y[i] - my));
  }
  if (sxx.value() <= 0.0) return fit;
  fit.slope = sxy.value() / sxx.value();
  fit.intercept = my - fit.slope * mx;
  if (syy.value() > 0.0) {
    fit.r2 = (sxy.value() * sxy.value()) / (sxx.value() * syy.value());
  }
  return fit;
}

double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y) {
  HORIZON_CHECK_EQ(x.size(), y.size());
  const size_t n = x.size();
  if (n < 2) return std::numeric_limits<double>::quiet_NaN();
  RunningStats sx, sy;
  for (size_t i = 0; i < n; ++i) {
    sx.Add(x[i]);
    sy.Add(y[i]);
  }
  KahanSum cov;
  for (size_t i = 0; i < n; ++i) {
    cov.Add((x[i] - sx.mean()) * (y[i] - sy.mean()));
  }
  const double denom = sx.stddev() * sy.stddev() * static_cast<double>(n - 1);
  if (denom <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return cov.value() / denom;
}

}  // namespace horizon
