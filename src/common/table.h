// Tabular result reporting: aligned console output plus optional CSV dump.
// Every bench binary prints its table/series through this helper so the
// output format matches across experiments.
#ifndef HORIZON_COMMON_TABLE_H_
#define HORIZON_COMMON_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace horizon {

/// A simple table of string cells with a header row.
///
/// Usage:
///   Table t({"Horizon", "MAPE", "Tau"});
///   t.AddRow({"6h", Table::Num(0.42), Table::Num(0.81)});
///   t.Print();             // aligned console output
///   t.WriteCsv("fig1.csv") // optional machine-readable dump
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Formats a double with `digits` significant digits.
  static std::string Num(double v, int digits = 4);
  /// Formats a double in scientific notation with `digits` digits, as used
  /// for the RMSE column of Table 1 in the paper (e.g. "2.0e6").
  static std::string Sci(double v, int digits = 2);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  size_t num_rows() const { return rows_.size(); }

  /// Prints the table with aligned columns to stdout, with an optional title.
  void Print(const std::string& title = "") const;

  /// Writes the table as CSV.  Returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace horizon

#endif  // HORIZON_COMMON_TABLE_H_
