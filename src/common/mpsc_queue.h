// Bounded lock-free multi-producer / single-consumer queue.
//
// This is the Vyukov bounded-queue design specialized to one consumer:
// a power-of-two ring of cells, each carrying an atomic sequence number
// that encodes whether the cell is empty (seq == pos), full
// (seq == pos + 1) or still owned by a lapped producer.  Producers claim
// a cell with one CAS on `enqueue_pos_`; the single consumer dequeues
// with plain loads/stores on `dequeue_pos_` (kept atomic only so
// SizeApprox() is readable from any thread).  There are no locks and no
// allocation after construction, so a producer can never block a
// producer and the consumer can never block anyone.
//
// Memory ordering: a producer's release store of `seq = pos + 1`
// publishes the cell's value; the consumer's acquire load of `seq`
// synchronizes with it.  Symmetrically the consumer's release store of
// `seq = pos + capacity` hands the cell back to the producer that will
// claim it a lap later.  TSan sees both edges, so the concurrency suites
// verify this file on every CI run.
//
// Per-producer FIFO: a producer's pushes claim strictly increasing
// positions (the CAS loop retries on a fresh ticket), and the consumer
// drains positions in order, so two events pushed by the same thread are
// always dequeued in push order.  Cross-producer order is whatever the
// CAS race says -- callers that need a global order must not want this
// queue.
//
// Blocking, backpressure and counters live in the serving-layer wrapper
// (src/serving/ingest_queue.h); this header stays policy-free.
#ifndef HORIZON_COMMON_MPSC_QUEUE_H_
#define HORIZON_COMMON_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"

namespace horizon {

template <typename T>
class MpscQueue {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit MpscQueue(size_t capacity) : buffer_(RoundUpPow2(capacity)) {
    mask_ = buffer_.size() - 1;
    for (size_t i = 0; i < buffer_.size(); ++i) {
      // order: relaxed; construction-time init.  The queue is handed to
      // other threads via thread creation / mutex publication, which
      // already provides the happens-before edge.
      buffer_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  size_t capacity() const { return buffer_.size(); }

  /// Multi-producer enqueue.  Returns false when the queue is full.
  bool TryPush(T value) {
    // order: relaxed; the ticket is only a hint -- cell ownership is
    // decided by the acquire load of cell.seq below.
    uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = buffer_[pos & mask_];
      // order: acquire pairs with the consumer's release hand-back in
      // PopBatch (seq = pos + capacity) so the producer reads the cell
      // only after the consumer is done moving the previous value out.
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      const int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        // The cell is free at this lap: claim the ticket.
        // order: relaxed; the CAS only arbitrates ticket ownership
        // between producers.  Publication of the value is the release
        // store of cell.seq below, not the ticket.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell.value = std::move(value);
          // order: release publishes cell.value; pairs with the
          // consumer's acquire load of cell.seq in PopBatch.
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry with the fresh ticket.
      } else if (dif < 0) {
        // The cell still holds the value from one lap ago: full.
        return false;
      } else {
        // Another producer claimed this ticket; catch up.
        // order: relaxed; same hint-only role as the load on entry.
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer dequeue of up to `max` values, appended to `out`.
  /// Returns the number dequeued.  Must only be called from one thread.
  size_t PopBatch(std::vector<T>* out, size_t max) {
    size_t popped = 0;
    // order: relaxed; dequeue_pos_ is written by this (single consumer)
    // thread only -- it is atomic purely so SizeApprox() can read it.
    uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    while (popped < max) {
      Cell& cell = buffer_[pos & mask_];
      // order: acquire pairs with the producer's release store of
      // cell.seq in TryPush; after it we may read cell.value.
      const uint64_t seq = cell.seq.load(std::memory_order_acquire);
      if (static_cast<int64_t>(seq) - static_cast<int64_t>(pos + 1) < 0) {
        break;  // cell not yet published: queue drained
      }
      out->push_back(std::move(cell.value));
      // Hand the cell back for the producers' next lap.
      // order: release pairs with the acquire load of cell.seq in
      // TryPush one lap later; the producer must not overwrite
      // cell.value before our move-out completes.
      cell.seq.store(pos + buffer_.size(), std::memory_order_release);
      ++pos;
      ++popped;
    }
    // order: release publishes consumer progress to popped() /
    // SizeApprox() acquire readers on other threads.
    dequeue_pos_.store(pos, std::memory_order_release);
    return popped;
  }

  /// Total values ever accepted by TryPush.  Monotone; exact.
  // order: acquire pairs with producers' ticket CASes so a reader that
  // observed an effect of push N also observes a count >= N.
  uint64_t pushed() const { return enqueue_pos_.load(std::memory_order_acquire); }

  /// Total values ever returned by PopBatch.  Monotone; exact.
  // order: acquire pairs with the consumer's release store of
  // dequeue_pos_ at the end of PopBatch.
  uint64_t popped() const { return dequeue_pos_.load(std::memory_order_acquire); }

  /// Racy depth estimate; exact when producers and consumer are quiescent.
  size_t SizeApprox() const {
    // order: acquire pairs with the consumer's release store of
    // dequeue_pos_ in PopBatch; the estimate is racy by contract but
    // each ticket read individually is a published value.
    const uint64_t tail = dequeue_pos_.load(std::memory_order_acquire);
    // order: acquire pairs with the producers' ticket CASes in TryPush.
    const uint64_t head = enqueue_pos_.load(std::memory_order_acquire);
    return head >= tail ? static_cast<size_t>(head - tail) : 0;
  }

  bool Empty() const { return SizeApprox() == 0; }

 private:
  struct Cell {
    std::atomic<uint64_t> seq;
    T value;
  };

  static size_t RoundUpPow2(size_t n) {
    HORIZON_CHECK(n >= 1);
    size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  // Producers CAS enqueue_pos_; only the consumer writes dequeue_pos_.
  // Padded so producer and consumer tickets do not false-share.
  alignas(64) std::atomic<uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<uint64_t> dequeue_pos_{0};
  alignas(64) std::vector<Cell> buffer_;
  size_t mask_ = 0;
};

}  // namespace horizon

#endif  // HORIZON_COMMON_MPSC_QUEUE_H_
