// Time unit constants.  The library measures time in seconds.
#ifndef HORIZON_COMMON_UNITS_H_
#define HORIZON_COMMON_UNITS_H_

#include <string>

namespace horizon {

inline constexpr double kSecond = 1.0;
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 24.0 * kHour;
inline constexpr double kWeek = 7.0 * kDay;

/// Formats a duration as a compact label ("6h", "1d", "30m").
/// Exact multiples of days/hours/minutes get the matching suffix; other
/// values fall back to seconds.
std::string FormatDuration(double seconds);

}  // namespace horizon

#endif  // HORIZON_COMMON_UNITS_H_
