#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

#include "common/check.h"

namespace horizon {

namespace {

int DefaultThreadCount() {
  if (const char* env = std::getenv("HORIZON_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultThreadCount();
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Run(std::function<void()> fn) {
  HORIZON_DCHECK(fn != nullptr);
  {
    MutexLock lock(mu_);
    HORIZON_DCHECK(!stop_);
    queue_.push_back(std::move(fn));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  // horizon-lint: allow(naked-new) -- intentionally leaked singleton: the
  // pool must outlive static destructors of clients enqueued at exit.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

namespace {

/// Shared state of one ParallelFor invocation.  Heap-allocated because pool
/// tasks may outlive the call (they become no-ops once all chunks are
/// claimed; the callback itself is only touched while the caller waits).
struct LoopState {
  size_t n = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<void(size_t, size_t)>* fn = nullptr;
  std::atomic<size_t> next_chunk{0};
  std::atomic<bool> failed{false};
  Mutex drain_mu;
  CondVar cv;
  std::exception_ptr eptr HORIZON_GUARDED_BY(drain_mu);
  size_t done HORIZON_GUARDED_BY(drain_mu) = 0;

  /// Claims and runs chunks until none remain.
  void Drain() {
    size_t completed = 0;
    for (;;) {
      // order: relaxed; the ticket only partitions chunks between
      // workers -- completion is published via drain_mu below.
      const size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) break;
      // order: acquire pairs with the acq_rel exchange in the catch
      // handler so workers that skip remaining chunks see the failure.
      if (!failed.load(std::memory_order_acquire)) {
        const size_t begin = chunk * grain;
        const size_t end = std::min(begin + grain, n);
        try {
          (*fn)(begin, end);
        } catch (...) {
          // order: acq_rel; the winning exchange both claims the right
          // to record eptr and publishes the flag to the acquire load
          // above.
          if (!failed.exchange(true, std::memory_order_acq_rel)) {
            MutexLock lock(drain_mu);
            eptr = std::current_exception();
          }
        }
      }
      ++completed;
    }
    if (completed > 0) {
      MutexLock lock(drain_mu);
      done += completed;
      if (done == num_chunks) cv.NotifyAll();
    }
  }
};

}  // namespace

void ParallelFor(ThreadPool& pool, size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1 || pool.num_threads() == 0) {
    fn(0, n);
    return;
  }

  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->grain = grain;
  state->num_chunks = num_chunks;
  state->fn = &fn;

  const size_t helpers =
      std::min(static_cast<size_t>(pool.num_threads()), num_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    pool.Run([state] { state->Drain(); });
  }
  state->Drain();

  MutexLock lock(state->drain_mu);
  while (state->done != state->num_chunks) state->cv.Wait(state->drain_mu);
  if (state->eptr) std::rethrow_exception(state->eptr);
}

void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  ParallelFor(ThreadPool::Global(), n, grain, fn);
}

}  // namespace horizon
