// Small numeric helpers shared across the library.
#ifndef HORIZON_COMMON_MATH_UTIL_H_
#define HORIZON_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace horizon {

/// Numerically stable log(1 - exp(-x)) for x > 0.
/// Uses the Maechler (2012) switch point.
double Log1mExp(double x);

/// Numerically stable log(exp(a) + exp(b)).
double LogAddExp(double a, double b);

/// Clamps v into [lo, hi].
inline double Clamp(double v, double lo, double hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Kahan compensated summation accumulator.
class KahanSum {
 public:
  void Add(double v) {
    const double y = v - c_;
    const double t = sum_ + y;
    c_ = (t - sum_) - y;
    sum_ = t;
  }
  double value() const { return sum_; }

  /// The running compensation term; exposed (with Restore) so checkpoint
  /// serialization can reproduce the accumulator state bit-exactly.
  double compensation() const { return c_; }
  void Restore(double sum, double compensation) {
    sum_ = sum;
    c_ = compensation;
  }

 private:
  double sum_ = 0.0;
  double c_ = 0.0;
};

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void Add(double v);
  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than 2 samples).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear interpolation
/// between order statistics (type-7, the numpy default).  `values` is copied;
/// an empty input returns NaN.
double Quantile(std::vector<double> values, double q);

/// Median shortcut for Quantile(values, 0.5).
double Median(std::vector<double> values);

/// Ordinary least squares fit y = a + b x.  Returns {intercept, slope, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

/// Pearson correlation of two equally-sized vectors (NaN if degenerate).
double PearsonCorrelation(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace horizon

#endif  // HORIZON_COMMON_MATH_UTIL_H_
