// The deterministic simulation harness (DST) for the serving stack.
//
// One Simulator::Run(seed) materializes an op schedule from the seed,
// executes it against a fresh sharded PredictionService AND the
// single-threaded ReferenceService, arms the FaultInjector per the fault
// schedule, and compares the two after every operation -- exact equality
// on every count, prediction, alpha, typed Status code, service counter,
// and obs instrument.  On divergence the report carries the failing op
// index, a description, the full trace, and a greedily minimized trace
// that still reproduces the failure; everything reproduces from the seed
// alone (`horizon_tool sim --seed N`).
#ifndef HORIZON_SIM_SIMULATOR_H_
#define HORIZON_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/hawkes_predictor.h"
#include "datagen/generator.h"
#include "features/extractor.h"
#include "serving/prediction_service.h"
#include "sim/op_schedule.h"

namespace horizon::sim {

/// Knobs for the shared simulation inputs (dataset + trained model).
/// Deliberately small: the model's ACCURACY is irrelevant here -- the
/// harness checks that two implementations of the same math agree, so a
/// 20-tree model over 90 cascades gives full coverage at test speed.
struct SimContextConfig {
  int num_pages = 20;
  int num_posts = 90;
  double base_mean_size = 50.0;
  uint64_t dataset_seed = 991;
  std::vector<double> reference_horizons{6 * kHour, 1 * kDay};
  int num_trees = 20;
};

/// The expensive shared inputs, built ONCE and reused across every seed
/// and fault schedule; the per-run seed drives only the op schedule.
struct SimContext {
  datagen::SyntheticDataset dataset;
  std::unique_ptr<features::FeatureExtractor> extractor;
  std::unique_ptr<core::HawkesPredictor> model;
};

/// Generates the dataset and trains the model.  Deterministic.
SimContext BuildSimContext(const SimContextConfig& config = {});

/// Per-simulator knobs.  The service is deliberately configured unlike
/// production defaults (few shards, short retirement age) so shard
/// collisions and retirement fire within a short simulated horizon.
struct SimConfig {
  ScheduleConfig schedule;
  /// Pin the service's ingest pipeline (the env-var kAuto default is
  /// never used here: a leaked HORIZON_ASYNC_INGEST must not silently
  /// change what a seed certifies).  Async mode proves the MPSC-queue /
  /// epoch-snapshot pipeline equivalent to the single-threaded reference
  /// at every linearization point (flush / checkpoint / check).
  bool async_ingest = false;
  int num_shards = 5;
  double idle_retirement_age = 8 * kHour;
  double death_probability_threshold = 0.995;
  /// Parent directory for per-run checkpoint scratch space.
  std::string scratch_dir = "/tmp";
  /// Threads driving the kIngest concurrent-ingest phase.
  int ingest_threads = 4;
  bool minimize_on_failure = true;
  /// Re-execution budget of the trace minimizer.
  int max_minimize_runs = 64;
};

/// Outcome of one simulation run.  Deterministic: a seed always produces
/// the identical report, including the message and traces.
struct SimReport {
  bool ok = true;
  uint64_t seed = 0;
  std::string faults;
  int failed_op = -1;      ///< index into the schedule, -1 when ok
  std::string message;     ///< divergence description, empty when ok
  std::string trace;       ///< full op trace (FormatTrace)
  std::string minimized_trace;  ///< minimized repro, failures only
  size_t ops_executed = 0;
  serving::ServiceStats final_stats;

  // Fault-path accounting, so tests can assert the schedules actually
  // exercised what they claim to.
  int checkpoints_attempted = 0;
  int checkpoint_failures = 0;  ///< Checkpoint() calls that returned error
  int transient_retries = 0;    ///< fail-once faults recovered by retry
  int restores_attempted = 0;
  int restores_failed = 0;      ///< expected kNotFound/kCorruption restores
  uint64_t errors_observed = 0; ///< typed per-item/op errors across the run

  /// Compact human-readable outcome (seed, schedule, failure if any).
  std::string Summary() const;
};

/// Drives one (service, reference) pair per Execute call.  The context
/// must outlive the simulator.  Not thread-safe; use one Simulator per
/// thread (they may share one SimContext, which is immutable after
/// construction).
class Simulator {
 public:
  Simulator(const SimContext* context, SimConfig config);

  /// Generates the schedule for `seed`, executes it, and minimizes the
  /// trace on failure.
  SimReport Run(uint64_t seed);

  /// Executes one schedule (no minimization).  Exposed for the minimizer
  /// and for tests that replay hand-built traces.
  SimReport Execute(const OpSchedule& schedule);

  /// Greedy delta-debugging: given a schedule whose op `failed_op` fails,
  /// returns a shorter schedule that still fails (ending at its failing
  /// op).  Deterministic; bounded by SimConfig::max_minimize_runs
  /// re-executions.  Public so tests can exercise it on hand-built
  /// failing traces.
  OpSchedule MinimizedSchedule(const OpSchedule& schedule, int failed_op);

 private:
  const SimContext* context_;
  SimConfig config_;
  uint64_t runs_ = 0;  ///< scratch-dir uniquifier across Execute calls
};

}  // namespace horizon::sim

#endif  // HORIZON_SIM_SIMULATOR_H_
