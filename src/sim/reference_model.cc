#include "sim/reference_model.h"

#include <limits>

#include "pointprocess/transform.h"

namespace horizon::sim {

ReferenceService::ReferenceService(const core::HawkesPredictor* model,
                                   const features::FeatureExtractor* extractor,
                                   const serving::ServiceConfig& config)
    : model_(model),
      extractor_(extractor),
      idle_retirement_age_(config.idle_retirement_age),
      death_probability_threshold_(config.death_probability_threshold) {}

StatusCode ReferenceService::Register(int64_t id, double creation_time,
                                      const datagen::PageProfile& page,
                                      const datagen::PostProfile& post) {
  const bool inserted =
      items_
          .emplace(id, Item{stream::CascadeTracker(creation_time,
                                                   extractor_->tracker_config()),
                            page, post})
          .second;
  return inserted ? StatusCode::kOk : StatusCode::kAlreadyExists;
}

StatusCode ReferenceService::IngestCode(int64_t id, stream::EngagementType type,
                                        double t) {
  const auto it = items_.find(id);
  if (it == items_.end()) return StatusCode::kNotFound;
  it->second.tracker.Observe(type, t);
  return StatusCode::kOk;
}

StatusCode ReferenceService::Answer(int64_t id, double s, double delta,
                                    RefAnswer* out) const {
  const auto it = items_.find(id);
  if (it == items_.end()) return StatusCode::kNotFound;
  const Item& item = it->second;
  if (s < item.tracker.creation_time()) return StatusCode::kNotYetLive;
  const stream::TrackerSnapshot snapshot = item.tracker.Snapshot(s);
  out->row = extractor_->Extract(item.page, item.post, snapshot);
  out->observed = static_cast<double>(snapshot.views().total);
  // The same per-row entry points the batch paths are bit-identical to.
  out->predicted = model_->PredictCount(out->row.data(), out->observed, delta);
  out->alpha = model_->PredictAlpha(out->row.data());
  out->increment = model_->PredictIncrement(out->row.data(), delta);
  return StatusCode::kOk;
}

std::vector<std::pair<int64_t, RefAnswer>> ReferenceService::Scan(
    double s, double delta) const {
  std::vector<std::pair<int64_t, RefAnswer>> out;
  for (const auto& [id, item] : items_) {
    if (s < item.tracker.creation_time()) continue;  // not yet live
    RefAnswer answer;
    const StatusCode code = Answer(id, s, delta, &answer);
    if (code == StatusCode::kOk) out.emplace_back(id, std::move(answer));
  }
  return out;
}

size_t ReferenceService::Retire(double now) {
  size_t retired = 0;
  for (auto it = items_.begin(); it != items_.end();) {
    const Item& item = it->second;
    if (now < item.tracker.creation_time()) {
      ++it;
      continue;
    }
    const stream::TrackerSnapshot snapshot = item.tracker.Snapshot(now);
    const stream::StreamSnapshot& views = snapshot.views();
    bool dead = false;
    if (views.last_event_age >= 0.0) {
      if (snapshot.age - views.last_event_age >= idle_retirement_age_) {
        dead = true;
      }
    } else if (snapshot.age >= idle_retirement_age_) {
      dead = true;
    }
    if (!dead && views.ewma_rate > 0.0) {
      const std::vector<float> row =
          extractor_->Extract(item.page, item.post, snapshot);
      const double alpha = model_->PredictAlpha(row.data());
      const double p_dead = pp::ProbabilityNoNewEvents(
          views.ewma_rate, std::numeric_limits<double>::infinity(), alpha);
      if (p_dead >= death_probability_threshold_) dead = true;
    }
    if (dead) {
      it = items_.erase(it);
      ++retired;
    } else {
      ++it;
    }
  }
  return retired;
}

std::vector<int64_t> ReferenceService::ItemIds() const {
  std::vector<int64_t> ids;
  ids.reserve(items_.size());
  for (const auto& [id, item] : items_) ids.push_back(id);
  return ids;
}

}  // namespace horizon::sim
