#include "sim/simulator.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/file_io.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/trainer.h"
#include "sim/checkers.h"
#include "sim/reference_model.h"

namespace horizon::sim {

namespace {

/// Horizon of the end-of-round divergence query.  Arbitrary; the per-item
/// invariant checkers sweep the full grid anyway.
constexpr double kCheckDelta = 1 * kHour;

std::string TrimWs(const std::string& text) {
  size_t b = 0, e = text.size();
  while (b < e && (text[b] == ' ' || text[b] == '\n' || text[b] == '\t')) ++b;
  while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\n' || text[e - 1] == '\t')) --e;
  return text.substr(b, e - b);
}

/// Expected-state ledger the executor keeps alongside the reference.
struct Expected {
  serving::ServiceStats stats;  ///< what service.stats() must report
  // Obs counters are monotone across restores (unlike stats).
  uint64_t obs_registered = 0;
  uint64_t obs_ingested = 0;
  uint64_t obs_queries = 0;
  uint64_t obs_scan_results = 0;
  uint64_t obs_retired = 0;
  uint64_t errors[10] = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  // Histogram sample counts, per instrument (ingest latency is sampled
  // and deliberately unchecked).
  uint64_t ingest_batch_calls = 0;
  uint64_t batch_query_ok = 0;
  uint64_t scan_calls = 0;
  uint64_t retire_calls = 0;
  uint64_t checkpoint_calls = 0;
  uint64_t restore_calls = 0;
  uint64_t flush_calls = 0;  ///< explicit kFlush ops + implicit pre-read flushes
};

/// What the executor knows about the last committed checkpoint.
struct CommittedCheckpoint {
  bool exists = false;
  bool corrupt = false;
  ReferenceService::State state;
  serving::ServiceStats stats;
};

/// One schedule execution: fresh service + registry + reference + scratch
/// checkpoint directory, driven op by op.
class Execution {
 public:
  Execution(const SimContext& context, const SimConfig& config,
            std::string scratch_dir)
      : context_(context),
        config_(config),
        scratch_dir_(std::move(scratch_dir)),
        service_config_(MakeServiceConfig(context, config, &registry_)),
        service_(context.model.get(), context.extractor.get(), service_config_),
        reference_(context.model.get(), context.extractor.get(),
                   service_config_) {
    io::RemoveTree(scratch_dir_);
  }

  ~Execution() {
    io::FaultInjector::Global().Disarm();
    io::RemoveTree(scratch_dir_);
  }

  SimReport Run(const OpSchedule& schedule) {
    io::FaultInjector::Global().Disarm();
    SimReport report;
    report.ok = true;
    report.seed = schedule.seed;
    report.faults = schedule.config.faults;
    for (size_t i = 0; i < schedule.ops.size(); ++i) {
      const Op& op = schedule.ops[i];
      clock_.AdvanceTo(op.time);  // generator must emit a monotone schedule
      const std::string err = Apply(op);
      report.ops_executed = i + 1;
      if (!err.empty()) {
        report.ok = false;
        report.failed_op = static_cast<int>(i);
        std::ostringstream os;
        os << "op [" << i << "] " << FormatOp(op) << ": " << err;
        report.message = os.str();
        break;
      }
    }
    report.final_stats = service_.stats();
    report.checkpoints_attempted = checkpoints_attempted_;
    report.checkpoint_failures = checkpoint_failures_;
    report.transient_retries = transient_retries_;
    report.restores_attempted = restores_attempted_;
    report.restores_failed = restores_failed_;
    for (const uint64_t e : expected_.errors) report.errors_observed += e;
    return report;
  }

 private:
  static serving::ServiceConfig MakeServiceConfig(const SimContext& context,
                                                  const SimConfig& config,
                                                  obs::MetricsRegistry* registry) {
    serving::ServiceConfig out;
    out.tracker = context.extractor->tracker_config();
    out.idle_retirement_age = config.idle_retirement_age;
    out.death_probability_threshold = config.death_probability_threshold;
    out.num_shards = config.num_shards;
    // Pin the pipeline explicitly: kAuto would read HORIZON_ASYNC_INGEST,
    // and an environment leak must never change what a seed certifies.
    out.ingest_mode = config.async_ingest ? serving::IngestMode::kAsync
                                          : serving::IngestMode::kSync;
    // A PRIVATE registry per execution: the conservation checks demand
    // instrument values that match this run's ledger exactly, which the
    // process-global registry (shared across seeds) cannot provide.
    out.metrics = registry;
    return out;
  }

  /// The item -> profile mapping the generator used.
  const datagen::Cascade& CascadeOf(int64_t item) const {
    return context_.dataset
        .cascades[static_cast<size_t>(item) % context_.dataset.cascades.size()];
  }

  std::string CurrentPointer() const {
    const auto current = io::ReadFile(scratch_dir_ + "/CURRENT");
    return current.ok() ? *current : std::string();
  }

  // --- Per-op handlers: return "" on agreement, a description otherwise.

  std::string Apply(const Op& op) {
    // Async mode reads from the epoch-published view, which lags the
    // queue until a drain barrier; the reference has no such lag.  Every
    // read-compare op is therefore preceded by an implicit Flush -- the
    // linearization points at which async must be bit-identical to the
    // reference.  (Retire / Checkpoint / Restore drain internally.)
    if (config_.async_ingest &&
        (op.kind == OpKind::kQuery || op.kind == OpKind::kScan ||
         op.kind == OpKind::kCheck)) {
      const Status st = service_.Flush();
      ++expected_.flush_calls;
      if (!st.ok()) return "implicit pre-read flush failed: " + st.ToString();
    }
    switch (op.kind) {
      case OpKind::kRegister: return DoRegister(op);
      case OpKind::kIngest: return DoIngest(op);
      case OpKind::kIngestBatch: return DoIngestBatch(op);
      case OpKind::kQuery:
        return QueryCompare(op.ids, op.s, op.delta, op.top_k, nullptr);
      case OpKind::kScan: return DoScan(op);
      case OpKind::kBadQuery: return DoBadQuery(op);
      case OpKind::kRetire: return DoRetire(op);
      case OpKind::kCheckpoint:
      case OpKind::kCheckpointCrash:
      case OpKind::kCheckpointTransient: return DoCheckpoint(op);
      case OpKind::kCorruptCheckpoint: return DoCorrupt(op);
      case OpKind::kRestore: return DoRestore(op);
      case OpKind::kCheck: return DoCheck(op);
      case OpKind::kFlush: return DoFlush(op);
    }
    return "unknown op kind";
  }

  std::string DoRegister(const Op& op) {
    const datagen::Cascade& cascade = CascadeOf(op.item);
    const datagen::PageProfile& page = context_.dataset.PageOf(cascade.post);
    const StatusCode want =
        reference_.Register(op.item, op.creation_time, page, cascade.post);
    const Status got =
        service_.RegisterItem(op.item, op.creation_time, page, cascade.post);
    if (got.code() != want) {
      return Mismatch("register code", want, got.code());
    }
    if (want == StatusCode::kOk) {
      ++expected_.stats.items_registered;
      ++expected_.obs_registered;
    } else {
      ++expected_.errors[static_cast<int>(want)];
    }
    return "";
  }

  std::string DoIngest(const Op& op) {
    const size_t n = op.events.size();
    // Liveness is static during the phase (no register/retire/restore
    // interleaves), so per-event outcomes are deterministic even though
    // the service-side calls race across threads.
    std::vector<StatusCode> want(n, StatusCode::kOk);
    for (size_t i = 0; i < n; ++i) {
      const serving::IngestEvent& e = op.events[i];
      want[i] = reference_.IngestCode(e.item_id, e.type, e.time);
    }
    std::vector<StatusCode> got(n, StatusCode::kOk);
    const size_t threads =
        static_cast<size_t>(std::max(1, config_.ingest_threads));
    // Bucket by item id: per-item order is preserved because each item's
    // events run on exactly one bucket, in schedule order.
    ParallelFor(threads, 1, [&](size_t begin, size_t end) {
      for (size_t b = begin; b < end; ++b) {
        for (size_t i = 0; i < n; ++i) {
          const serving::IngestEvent& e = op.events[i];
          if (static_cast<uint64_t>(e.item_id) % threads != b) continue;
          got[i] = service_.Ingest(e.item_id, e.type, e.time).code();
        }
      }
    });
    for (size_t i = 0; i < n; ++i) {
      if (got[i] != want[i]) {
        std::ostringstream os;
        os << "ingest event " << i << " (item " << op.events[i].item_id
           << "): " << Mismatch("code", want[i], got[i]);
        return os.str();
      }
      if (want[i] == StatusCode::kOk) {
        ++expected_.stats.events_ingested;
        ++expected_.obs_ingested;
      } else {
        ++expected_.errors[static_cast<int>(want[i])];
      }
    }
    return "";
  }

  std::string DoIngestBatch(const Op& op) {
    size_t want = 0;
    for (const serving::IngestEvent& e : op.events) {
      if (reference_.IngestCode(e.item_id, e.type, e.time) == StatusCode::kOk) {
        ++want;
      }
      // Unknown items are dropped silently in batch mode: no error counter.
    }
    const size_t got = service_.IngestBatch(op.events);
    ++expected_.ingest_batch_calls;
    if (got != want) {
      std::ostringstream os;
      os << "IngestBatch ingested " << got << ", reference says " << want;
      return os.str();
    }
    expected_.stats.events_ingested += want;
    expected_.obs_ingested += want;
    return "";
  }

  /// Shared by kQuery and the end-of-round check: issues a by-ids
  /// BatchQuery and compares it, element by element and bit by bit,
  /// against the reference.  On success `resolved_out` (if non-null)
  /// receives the reference answers for further invariant checking.
  std::string QueryCompare(
      const std::vector<int64_t>& ids, double s, double delta, size_t top_k,
      std::vector<std::pair<int64_t, RefAnswer>>* resolved_out) {
    struct RefError {
      int64_t id;
      StatusCode code;
    };
    std::vector<std::pair<int64_t, RefAnswer>> resolved;
    std::vector<RefError> ref_errors;
    for (const int64_t id : ids) {
      RefAnswer answer;
      const StatusCode code = reference_.Answer(id, s, delta, &answer);
      if (code == StatusCode::kOk) {
        resolved.emplace_back(id, std::move(answer));
      } else {
        ref_errors.push_back({id, code});
        ++expected_.errors[static_cast<int>(code)];
      }
    }
    // Mirror the service's ranking exactly: same comparator, same
    // algorithm, same input order, hence the same permutation (ties
    // included -- both run in this process against the same STL).
    const auto by_increment = [](const std::pair<int64_t, RefAnswer>& a,
                                 const std::pair<int64_t, RefAnswer>& b) {
      return a.second.predicted - a.second.observed >
             b.second.predicted - b.second.observed;
    };
    if (top_k > 0 && resolved.size() > top_k) {
      std::partial_sort(resolved.begin(),
                        resolved.begin() + static_cast<ptrdiff_t>(top_k),
                        resolved.end(), by_increment);
      resolved.resize(top_k);
    } else if (top_k > 0) {
      std::sort(resolved.begin(), resolved.end(), by_increment);
    }

    serving::QueryRequest request;
    request.ids = ids;
    request.s = s;
    request.delta = delta;
    request.top_k = top_k;
    const StatusOr<serving::QueryResponse> response =
        service_.BatchQuery(request);
    if (!response.ok()) {
      return "BatchQuery failed: " + response.status().ToString();
    }
    ++expected_.batch_query_ok;
    if (response->errors.size() != ref_errors.size()) {
      std::ostringstream os;
      os << "error count " << response->errors.size() << ", reference "
         << ref_errors.size();
      return os.str();
    }
    for (size_t i = 0; i < ref_errors.size(); ++i) {
      const serving::ItemError& e = response->errors[i];
      if (e.item_id != ref_errors[i].id ||
          e.status.code() != ref_errors[i].code) {
        std::ostringstream os;
        os << "error " << i << ": got (item " << e.item_id << ", "
           << StatusCodeName(e.status.code()) << "), reference (item "
           << ref_errors[i].id << ", " << StatusCodeName(ref_errors[i].code)
           << ")";
        return os.str();
      }
    }
    if (response->results.size() != resolved.size()) {
      std::ostringstream os;
      os << "result count " << response->results.size() << ", reference "
         << resolved.size();
      return os.str();
    }
    for (size_t i = 0; i < resolved.size(); ++i) {
      const serving::ItemPrediction& p = response->results[i];
      const RefAnswer& want = resolved[i].second;
      if (p.item_id != resolved[i].first ||
          p.prediction.observed_views != want.observed ||
          p.prediction.predicted_views != want.predicted ||
          p.prediction.alpha != want.alpha) {
        std::ostringstream os;
        os.precision(17);
        os << "result " << i << " diverges: got (item " << p.item_id
           << ", observed " << p.prediction.observed_views << ", predicted "
           << p.prediction.predicted_views << ", alpha " << p.prediction.alpha
           << "), reference (item " << resolved[i].first << ", observed "
           << want.observed << ", predicted " << want.predicted << ", alpha "
           << want.alpha << ")";
        return os.str();
      }
    }
    expected_.stats.queries_answered += resolved.size();
    expected_.obs_queries += resolved.size();
    if (resolved_out != nullptr) *resolved_out = std::move(resolved);
    return "";
  }

  std::string DoScan(const Op& op) {
    std::vector<std::pair<int64_t, RefAnswer>> all =
        reference_.Scan(op.s, op.delta);
    std::vector<double> want_incs;
    want_incs.reserve(all.size());
    for (const auto& [id, answer] : all) want_incs.push_back(answer.increment);
    std::sort(want_incs.begin(), want_incs.end(), std::greater<double>());
    const size_t take = std::min(op.top_k, all.size());
    want_incs.resize(take);

    serving::QueryRequest request;
    request.s = op.s;
    request.delta = op.delta;
    request.top_k = op.top_k;
    const StatusOr<serving::QueryResponse> response =
        service_.BatchQuery(request);
    if (!response.ok()) {
      return "scan BatchQuery failed: " + response.status().ToString();
    }
    ++expected_.batch_query_ok;
    ++expected_.scan_calls;
    if (!response->errors.empty()) {
      return "scan populated errors (it must skip not-yet-live items)";
    }
    if (response->results.size() != take) {
      std::ostringstream os;
      os << "scan returned " << response->results.size() << " items, reference "
         << take << " (of " << all.size() << " live)";
      return os.str();
    }
    // Per returned id: must be a live item, unique, and bit-identical to
    // the reference's answer for that id.  The id SET may legitimately
    // differ from the reference's top-k on increment ties, so rank
    // agreement is checked on the increment values instead.
    std::set<int64_t> seen;
    std::vector<double> got_incs;
    got_incs.reserve(take);
    double prev_inc = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < response->results.size(); ++i) {
      const serving::ItemPrediction& p = response->results[i];
      if (!seen.insert(p.item_id).second) {
        std::ostringstream os;
        os << "scan returned item " << p.item_id << " twice";
        return os.str();
      }
      const auto it = std::find_if(
          all.begin(), all.end(),
          [&](const auto& entry) { return entry.first == p.item_id; });
      if (it == all.end()) {
        std::ostringstream os;
        os << "scan returned item " << p.item_id
           << " which is unknown or not yet live";
        return os.str();
      }
      const RefAnswer& want = it->second;
      if (p.prediction.observed_views != want.observed ||
          p.prediction.predicted_views != want.predicted ||
          p.prediction.alpha != want.alpha) {
        std::ostringstream os;
        os.precision(17);
        os << "scan item " << p.item_id << " diverges: got (observed "
           << p.prediction.observed_views << ", predicted "
           << p.prediction.predicted_views << ", alpha " << p.prediction.alpha
           << "), reference (observed " << want.observed << ", predicted "
           << want.predicted << ", alpha " << want.alpha << ")";
        return os.str();
      }
      if (want.increment > prev_inc) {
        std::ostringstream os;
        os.precision(17);
        os << "scan results not sorted: increment " << want.increment
           << " at rank " << i << " after " << prev_inc;
        return os.str();
      }
      prev_inc = want.increment;
      got_incs.push_back(want.increment);
    }
    std::sort(got_incs.begin(), got_incs.end(), std::greater<double>());
    for (size_t i = 0; i < take; ++i) {
      if (got_incs[i] != want_incs[i]) {
        std::ostringstream os;
        os.precision(17);
        os << "scan rank " << i << " increment " << got_incs[i]
           << ", reference top-k has " << want_incs[i];
        return os.str();
      }
    }
    expected_.obs_scan_results += take;
    return "";
  }

  std::string DoBadQuery(const Op& op) {
    serving::QueryRequest request;
    request.s = op.time;
    request.delta = 1 * kHour;
    request.ids.push_back(0);
    switch (op.bad_variant) {
      case 0: request.delta = -1.0; break;
      case 1: request.s = std::numeric_limits<double>::quiet_NaN(); break;
      case 2:
        request.ids.clear();  // scan mode with top_k == 0
        request.top_k = 0;
        break;
      default:
        request.delta = std::numeric_limits<double>::infinity();
        break;
    }
    const StatusOr<serving::QueryResponse> response =
        service_.BatchQuery(request);
    if (response.ok()) {
      return "malformed request was accepted";
    }
    if (response.code() != StatusCode::kInvalidArgument) {
      return Mismatch("bad-query code", StatusCode::kInvalidArgument,
                      response.code());
    }
    ++expected_.errors[static_cast<int>(StatusCode::kInvalidArgument)];
    return "";
  }

  std::string DoRetire(const Op& op) {
    const size_t want = reference_.Retire(op.time);
    const size_t got = service_.RetireDeadItems(op.time);
    ++expected_.retire_calls;
    if (got != want) {
      std::ostringstream os;
      os << "retired " << got << " items, reference retired " << want;
      return os.str();
    }
    expected_.stats.items_retired += want;
    expected_.obs_retired += want;
    return "";
  }

  std::string DoCheckpoint(const Op& op) {
    io::FaultInjector& injector = io::FaultInjector::Global();
    ++checkpoints_attempted_;
    const std::string before = CurrentPointer();
    // The service snapshots its counters at the START of Checkpoint; with
    // no ops interleaved, that snapshot is exactly the current ledger.
    const serving::ServiceStats stats_now = expected_.stats;
    if (op.kind == OpKind::kCheckpointCrash) injector.ArmCrashAt(op.fault_at);
    if (op.kind == OpKind::kCheckpointTransient) {
      injector.ArmFailOnce(op.fault_at);
    }
    Status st = service_.Checkpoint(scratch_dir_);
    injector.Disarm();
    ++expected_.checkpoint_calls;
    std::string after = CurrentPointer();
    // The commit point is the CURRENT pointer: a fault can strike AFTER
    // the rename reached the filesystem (the parent-dir fsync), in which
    // case Checkpoint reports kIoError yet IS durably committed.  Disk is
    // the truth; the returned Status only bounds it.
    bool committed_now = after != before && !after.empty();
    if (st.ok()) {
      if (!committed_now) {
        return "checkpoint reported ok but CURRENT did not advance";
      }
    } else {
      ++checkpoint_failures_;
      if (op.kind == OpKind::kCheckpoint) {
        return "unfaulted checkpoint failed: " + st.ToString();
      }
      if (st.code() != StatusCode::kIoError) {
        return Mismatch("faulted checkpoint code", StatusCode::kIoError,
                        st.code());
      }
    }
    if (committed_now) {
      committed_ = {true, false, reference_.SnapshotState(), stats_now};
    }
    if (!st.ok() && op.kind == OpKind::kCheckpointTransient) {
      // The fault was a one-shot IO error, not a crash: the service is
      // obligated to succeed on retry, with nothing lost.
      const Status retry = service_.Checkpoint(scratch_dir_);
      ++expected_.checkpoint_calls;
      if (!retry.ok()) {
        return "retry after transient fault failed: " + retry.ToString();
      }
      ++transient_retries_;
      after = CurrentPointer();
      if (after == before || after.empty()) {
        return "transient retry reported ok but CURRENT did not advance";
      }
      committed_ = {true, false, reference_.SnapshotState(), stats_now};
    }
    return "";
  }

  std::string DoCorrupt(const Op& op) {
    if (!committed_.exists) return "";  // nothing committed yet: no-op
    const std::string name = TrimWs(CurrentPointer());
    std::vector<std::string> files;
    files.push_back(scratch_dir_ + "/" + name + "/MANIFEST");
    for (int sh = 0; sh < config_.num_shards; ++sh) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "shard-%04d", sh);
      files.push_back(scratch_dir_ + "/" + name + "/" + buf);
    }
    const std::string& target =
        files[static_cast<size_t>(op.corrupt_pick % files.size())];
    auto raw = io::ReadFile(target);
    if (!raw.ok() || raw->empty()) {
      return "cannot corrupt " + target + ": missing or empty";
    }
    const size_t at =
        static_cast<size_t>((op.corrupt_pick / 7919) % raw->size());
    (*raw)[at] = static_cast<char>((*raw)[at] ^ 0xFF);
    std::ofstream out(target, std::ios::binary | std::ios::trunc);
    out.write(raw->data(), static_cast<std::streamsize>(raw->size()));
    out.close();
    if (!out) return "rewriting corrupted " + target + " failed";
    committed_.corrupt = true;
    return "";
  }

  std::string DoRestore(const Op&) {
    ++restores_attempted_;
    const Status st = service_.Restore(scratch_dir_);
    ++expected_.restore_calls;
    if (!committed_.exists) {
      if (st.code() != StatusCode::kNotFound) {
        return Mismatch("restore (nothing committed) code",
                        StatusCode::kNotFound, st.code());
      }
      ++expected_.errors[static_cast<int>(StatusCode::kNotFound)];
      ++restores_failed_;
      return "";
    }
    if (committed_.corrupt) {
      if (st.code() != StatusCode::kCorruption) {
        return Mismatch("restore (corrupted checkpoint) code",
                        StatusCode::kCorruption, st.code());
      }
      ++expected_.errors[static_cast<int>(StatusCode::kCorruption)];
      ++restores_failed_;
      // A failed restore must leave the service untouched; the next
      // kCheck verifies state equality against the UN-rolled-back
      // reference.
      return "";
    }
    if (!st.ok()) {
      return "restore of a clean committed checkpoint failed: " +
             st.ToString();
    }
    reference_.RestoreState(committed_.state);
    expected_.stats = committed_.stats;
    return "";
  }

  std::string DoFlush(const Op&) {
    const Status st = service_.Flush();
    ++expected_.flush_calls;
    if (!st.ok()) return "flush failed: " + st.ToString();
    // Post-barrier contract, both modes: no accepted event is pending.
    const double depth = service_.metrics()
                             .GetGauge("horizon_serving_ingest_queue_depth")
                             ->Value();
    if (depth != 0.0) {
      std::ostringstream os;
      os << "queue depth gauge " << depth << " after flush, expected 0";
      return os.str();
    }
    return "";
  }

  std::string DoCheck(const Op& op) {
    if (service_.LiveItems() != reference_.live_items()) {
      std::ostringstream os;
      os << "LiveItems " << service_.LiveItems() << ", reference "
         << reference_.live_items();
      return os.str();
    }
    {
      const serving::ServiceStats got = service_.stats();
      const serving::ServiceStats& want = expected_.stats;
      if (got.items_registered != want.items_registered ||
          got.events_ingested != want.events_ingested ||
          got.queries_answered != want.queries_answered ||
          got.items_retired != want.items_retired) {
        std::ostringstream os;
        os << "stats diverge: got (registered " << got.items_registered
           << ", ingested " << got.events_ingested << ", queries "
           << got.queries_answered << ", retired " << got.items_retired
           << "), expected (" << want.items_registered << ", "
           << want.events_ingested << ", " << want.queries_answered << ", "
           << want.items_retired << ")";
        return os.str();
      }
    }
    // Full-state comparison: every item the reference knows, answered by
    // both sides and compared exactly; then the paper's invariants on
    // each reference answer.
    const std::vector<int64_t> ids = reference_.ItemIds();
    if (!ids.empty()) {
      std::vector<std::pair<int64_t, RefAnswer>> resolved;
      const std::string err =
          QueryCompare(ids, op.time, kCheckDelta, /*top_k=*/0, &resolved);
      if (!err.empty()) return "state check: " + err;
      for (const auto& [id, answer] : resolved) {
        const std::string bad =
            CheckPredictionInvariants(*context_.model, answer, kCheckDelta);
        if (!bad.empty()) {
          std::ostringstream os;
          os << "invariant violated for item " << id << ": " << bad;
          return os.str();
        }
      }
    }
    return CheckMetrics();
  }

  /// Metrics conservation: every obs instrument equals the ledger.
  std::string CheckMetrics() {
    obs::MetricsRegistry& registry = service_.metrics();
    struct CounterCheck {
      const char* name;
      uint64_t want;
    };
    const CounterCheck counters[] = {
        {"horizon_serving_items_registered_total", expected_.obs_registered},
        {"horizon_serving_events_ingested_total", expected_.obs_ingested},
        {"horizon_serving_queries_total", expected_.obs_queries},
        {"horizon_serving_scan_results_total", expected_.obs_scan_results},
        {"horizon_serving_items_retired_total", expected_.obs_retired},
    };
    for (const CounterCheck& check : counters) {
      const uint64_t got = registry.GetCounter(check.name)->Value();
      if (got != check.want) {
        std::ostringstream os;
        os << "metric " << check.name << " = " << got << ", expected "
           << check.want;
        return os.str();
      }
    }
    for (int code = 1; code <= 9; ++code) {
      const std::string name =
          "horizon_serving_errors_" +
          std::string(StatusCodeName(static_cast<StatusCode>(code))) +
          "_total";
      const uint64_t got = registry.GetCounter(name)->Value();
      if (got != expected_.errors[code]) {
        std::ostringstream os;
        os << "metric " << name << " = " << got << ", expected "
           << expected_.errors[code];
        return os.str();
      }
    }
    const double live = registry.GetGauge("horizon_serving_live_items")->Value();
    if (live != static_cast<double>(reference_.live_items())) {
      std::ostringstream os;
      os << "live-items gauge " << live << ", expected "
         << reference_.live_items();
      return os.str();
    }
    struct HistogramCheck {
      const char* name;
      uint64_t want;
    };
    const HistogramCheck histograms[] = {
        {"horizon_serving_ingest_batch_latency_seconds",
         expected_.ingest_batch_calls},
        {"horizon_serving_batch_query_latency_seconds",
         expected_.batch_query_ok},
        {"horizon_serving_query_latency_seconds", 0},  // shim never used
        {"horizon_serving_topk_latency_seconds", expected_.scan_calls},
        {"horizon_serving_retire_latency_seconds", expected_.retire_calls},
        {"horizon_serving_checkpoint_latency_seconds",
         expected_.checkpoint_calls},
        {"horizon_serving_restore_latency_seconds", expected_.restore_calls},
        {"horizon_serving_flush_latency_seconds", expected_.flush_calls},
    };
    for (const HistogramCheck& check : histograms) {
      const uint64_t got = registry.GetHistogram(check.name)->Count();
      if (got != check.want) {
        std::ostringstream os;
        os << "histogram " << check.name << " count " << got << ", expected "
           << check.want;
        return os.str();
      }
    }
    return CheckIngestPipelineMetrics();
  }

  /// Conservation laws of the async ingest pipeline, scraped at a drained
  /// point (every kCheck is preceded by an implicit Flush).  In sync mode
  /// the queue-side instruments must stay identically zero.
  std::string CheckIngestPipelineMetrics() {
    obs::MetricsRegistry& registry = service_.metrics();
    const uint64_t enqueued =
        registry.GetCounter("horizon_serving_ingest_enqueued_total")->Value();
    const uint64_t dropped =
        registry.GetCounter("horizon_serving_ingest_dropped_total")->Value();
    const uint64_t backpressure =
        registry.GetCounter("horizon_serving_ingest_backpressure_total")->Value();
    const uint64_t wakeups =
        registry.GetCounter("horizon_serving_apply_wakeups_total")->Value();
    const obs::Histogram* batches = registry.GetHistogram(
        "horizon_serving_apply_batch_events", obs::CountBuckets());
    if (config_.async_ingest) {
      // Every accepted event has been applied: acceptance (enqueued) and
      // application (events_ingested) agree exactly, nothing was dropped
      // at apply time (retire/restore drain before changing liveness),
      // and the group commits have consumed precisely the accepted load.
      if (enqueued != expected_.obs_ingested) {
        std::ostringstream os;
        os << "ingest_enqueued_total " << enqueued << ", expected "
           << expected_.obs_ingested << " (accept/apply conservation)";
        return os.str();
      }
      if (dropped != 0) {
        std::ostringstream os;
        os << "ingest_dropped_total " << dropped
           << "; enqueue-time existence checks must make apply-time drops "
              "impossible when barriers precede liveness changes";
        return os.str();
      }
      const double applied_sum = batches->Sum();
      if (applied_sum != static_cast<double>(expected_.obs_ingested)) {
        std::ostringstream os;
        os << "apply_batch_events sum " << applied_sum << ", expected "
           << expected_.obs_ingested;
        return os.str();
      }
      if (backpressure != 0) {
        std::ostringstream os;
        os << "ingest_backpressure_total " << backpressure
           << "; the DST round volume must never saturate the queue";
        return os.str();
      }
    } else {
      if (enqueued != 0 || dropped != 0 || backpressure != 0 ||
          wakeups != 0 || batches->Count() != 0) {
        std::ostringstream os;
        os << "sync mode leaked queue metrics: enqueued=" << enqueued
           << " dropped=" << dropped << " backpressure=" << backpressure
           << " wakeups=" << wakeups << " batches=" << batches->Count();
        return os.str();
      }
    }
    const double depth =
        registry.GetGauge("horizon_serving_ingest_queue_depth")->Value();
    if (depth != 0.0) {
      std::ostringstream os;
      os << "queue depth gauge " << depth << " at a drained check point";
      return os.str();
    }
    return "";
  }

  static std::string Mismatch(const char* what, StatusCode want,
                              StatusCode got) {
    std::ostringstream os;
    os << what << ": got " << StatusCodeName(got) << ", want "
       << StatusCodeName(want);
    return os.str();
  }

  const SimContext& context_;
  const SimConfig& config_;
  std::string scratch_dir_;
  obs::MetricsRegistry registry_;
  serving::ServiceConfig service_config_;
  serving::PredictionService service_;
  ReferenceService reference_;
  VirtualClock clock_;
  Expected expected_;
  CommittedCheckpoint committed_;
  int checkpoints_attempted_ = 0;
  int checkpoint_failures_ = 0;
  int transient_retries_ = 0;
  int restores_attempted_ = 0;
  int restores_failed_ = 0;
};

}  // namespace

SimContext BuildSimContext(const SimContextConfig& config) {
  SimContext context;
  datagen::GeneratorConfig gen;
  gen.num_pages = config.num_pages;
  gen.num_posts = config.num_posts;
  gen.base_mean_size = config.base_mean_size;
  gen.seed = config.dataset_seed;
  context.dataset = datagen::Generator(gen).Generate();
  context.extractor =
      std::make_unique<features::FeatureExtractor>(stream::TrackerConfig{});

  std::vector<size_t> indices(context.dataset.cascades.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  core::ExampleSetOptions options;
  options.reference_horizons = config.reference_horizons;
  const auto examples = core::BuildExampleSet(context.dataset, indices,
                                              *context.extractor, options);
  core::HawkesPredictorParams params;
  params.reference_horizons = config.reference_horizons;
  params.gbdt_count.num_trees = config.num_trees;
  params.gbdt_alpha.num_trees = config.num_trees;
  context.model = std::make_unique<core::HawkesPredictor>(params);
  context.model->Fit(examples.x, examples.log1p_increments,
                     examples.alpha_targets);
  return context;
}

std::string SimReport::Summary() const {
  std::ostringstream os;
  os << "seed=" << seed << " faults=" << faults << " ops=" << ops_executed;
  if (ok) {
    os << " OK (registered=" << final_stats.items_registered
       << " ingested=" << final_stats.events_ingested
       << " queries=" << final_stats.queries_answered
       << " retired=" << final_stats.items_retired
       << " checkpoints=" << checkpoints_attempted
       << " ckpt_failures=" << checkpoint_failures
       << " restores=" << restores_attempted
       << " restore_failures=" << restores_failed
       << " errors=" << errors_observed << ")";
  } else {
    os << " FAILED at " << message;
  }
  return os.str();
}

Simulator::Simulator(const SimContext* context, SimConfig config)
    : context_(context), config_(std::move(config)) {
  HORIZON_CHECK(context_ != nullptr);
  HORIZON_CHECK(context_->model != nullptr && context_->model->trained());
  HORIZON_CHECK(context_->extractor != nullptr);
}

SimReport Simulator::Execute(const OpSchedule& schedule) {
  std::ostringstream dir;
  dir << config_.scratch_dir << "/horizon-sim-" << ::getpid() << "-"
      << schedule.seed << "-" << runs_++;
  Execution execution(*context_, config_, dir.str());
  SimReport report = execution.Run(schedule);
  report.trace = FormatTrace(schedule);
  return report;
}

SimReport Simulator::Run(uint64_t seed) {
  OpSchedule schedule =
      GenerateOpSchedule(context_->dataset, config_.schedule, seed);
  SimReport report = Execute(schedule);
  if (!report.ok && config_.minimize_on_failure && report.failed_op >= 0) {
    const OpSchedule minimized = MinimizedSchedule(schedule, report.failed_op);
    report.minimized_trace = FormatTrace(minimized);
  }
  return report;
}

OpSchedule Simulator::MinimizedSchedule(const OpSchedule& schedule,
                                        int failed_op) {
  // Greedy delta-debugging over the op list: keep only the prefix up to
  // the failing op, then repeatedly try dropping chunks (halving the
  // chunk size) as long as SOME failure still reproduces, re-truncating
  // to the new failing op after every successful removal.  Deterministic,
  // bounded by max_minimize_runs re-executions.
  OpSchedule current = schedule;
  current.ops.resize(static_cast<size_t>(failed_op) + 1);
  int budget = config_.max_minimize_runs;

  const auto still_fails = [&](const OpSchedule& trial, int* failed) {
    --budget;
    const SimReport report = Execute(trial);
    if (!report.ok && report.failed_op >= 0) {
      *failed = report.failed_op;
      return true;
    }
    return false;
  };

  size_t chunk = std::max<size_t>(1, current.ops.size() / 2);
  while (budget > 0) {
    bool removed_any = false;
    for (size_t begin = 0; begin + 1 < current.ops.size() && budget > 0;) {
      // Never drop the final (failing) op.
      const size_t end = std::min(begin + chunk, current.ops.size() - 1);
      if (begin >= end) break;
      OpSchedule trial = current;
      trial.ops.erase(trial.ops.begin() + static_cast<ptrdiff_t>(begin),
                      trial.ops.begin() + static_cast<ptrdiff_t>(end));
      int failed = -1;
      if (still_fails(trial, &failed)) {
        trial.ops.resize(static_cast<size_t>(failed) + 1);
        current = std::move(trial);
        removed_any = true;  // retry the same position at the new layout
      } else {
        begin = end;
      }
    }
    if (!removed_any) {
      if (chunk == 1) break;
      chunk = std::max<size_t>(1, chunk / 2);
    } else {
      chunk = std::min(chunk, std::max<size_t>(1, current.ops.size() / 2));
    }
  }
  return current;
}

}  // namespace horizon::sim
