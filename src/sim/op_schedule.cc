#include "sim/op_schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"

namespace horizon::sim {

namespace {

/// Horizon grid the queries draw from: delta = 0 (a degenerate but legal
/// horizon), sub-window, window-boundary, and beyond-landmark horizons.
constexpr double kDeltaGrid[] = {0.0,      15 * kMinute, 1 * kHour,
                                 6 * kHour, 1 * kDay,     4 * kDay};
constexpr size_t kDeltaGridSize = sizeof(kDeltaGrid) / sizeof(kDeltaGrid[0]);

/// Ids in this range are never registered; ingesting/querying them
/// exercises the kNotFound paths.
constexpr int64_t kUnknownIdBase = 100000;

/// One engagement event of an item's materialized stream (ages).
struct StreamEvent {
  double age = 0.0;
  stream::EngagementType type = stream::EngagementType::kView;
};

/// Merges a cascade's four engagement streams into one age-sorted list.
/// A stable sort keyed on age keeps each type's (already sorted) relative
/// order, which is all the tracker requires.
std::vector<StreamEvent> MergeStreams(const datagen::Cascade& cascade) {
  std::vector<StreamEvent> events;
  events.reserve(cascade.views.size() + cascade.share_times.size() +
                 cascade.comment_times.size() + cascade.reaction_times.size());
  for (const pp::Event& e : cascade.views) {
    events.push_back({e.time, stream::EngagementType::kView});
  }
  for (const double t : cascade.share_times) {
    events.push_back({t, stream::EngagementType::kShare});
  }
  for (const double t : cascade.comment_times) {
    events.push_back({t, stream::EngagementType::kComment});
  }
  for (const double t : cascade.reaction_times) {
    events.push_back({t, stream::EngagementType::kReaction});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const StreamEvent& a, const StreamEvent& b) {
                     return a.age < b.age;
                   });
  return events;
}

/// Per-item generation state.
struct ItemState {
  double creation_time = 0.0;
  bool registered = false;
  std::vector<StreamEvent> stream;
  size_t cursor = 0;  ///< next stream event to ingest
};

}  // namespace

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kRegister: return "register";
    case OpKind::kIngest: return "ingest";
    case OpKind::kIngestBatch: return "ingest_batch";
    case OpKind::kQuery: return "query";
    case OpKind::kScan: return "scan";
    case OpKind::kBadQuery: return "bad_query";
    case OpKind::kRetire: return "retire";
    case OpKind::kCheckpoint: return "checkpoint";
    case OpKind::kCheckpointCrash: return "checkpoint_crash";
    case OpKind::kCheckpointTransient: return "checkpoint_transient";
    case OpKind::kCorruptCheckpoint: return "corrupt_checkpoint";
    case OpKind::kRestore: return "restore";
    case OpKind::kCheck: return "check";
    case OpKind::kFlush: return "flush";
  }
  return "unknown";
}

bool IsValidFaultSchedule(const std::string& name) {
  return name == "none" || name == "crash" || name == "transient" ||
         name == "corrupt" || name == "mixed";
}

OpSchedule GenerateOpSchedule(const datagen::SyntheticDataset& dataset,
                              const ScheduleConfig& config, uint64_t seed) {
  HORIZON_CHECK_GT(config.num_items, 0);
  HORIZON_CHECK_GT(config.rounds, 0);
  HORIZON_CHECK_GT(config.round_duration, 0.0);
  HORIZON_CHECK(IsValidFaultSchedule(config.faults));
  HORIZON_CHECK(!dataset.cascades.empty());

  OpSchedule schedule;
  schedule.seed = seed;
  schedule.config = config;

  // Decouple the schedule stream from other consumers of the same seed.
  Rng rng(seed ^ 0x5157'0b5c'4edc'1e5fULL);

  const int num_items = config.num_items;
  const double round = config.round_duration;

  // Map items onto dataset cascades and stagger their registrations over
  // the first third of the simulation so churn (register / retire /
  // straggler ingest) overlaps with steady-state traffic.
  std::vector<ItemState> items(static_cast<size_t>(num_items));
  const int register_rounds = std::max(1, config.rounds / 3);
  std::vector<std::vector<int64_t>> to_register(
      static_cast<size_t>(config.rounds));
  for (int i = 0; i < num_items; ++i) {
    ItemState& item = items[static_cast<size_t>(i)];
    item.stream =
        MergeStreams(dataset.cascades[static_cast<size_t>(i) %
                                      dataset.cascades.size()]);
    const int reg_round = i % register_rounds;
    // Creation up to two rounds past registration: queries inside that gap
    // must answer kNotYetLive, and retirement must skip the item.
    item.creation_time = reg_round * round + rng.Uniform(0.0, 2.0 * round);
    to_register[static_cast<size_t>(reg_round)].push_back(i);
  }

  const bool mixed = config.faults == "mixed";
  int checkpoint_count = 0;

  auto push = [&schedule](Op op) { schedule.ops.push_back(std::move(op)); };

  for (int r = 0; r < config.rounds; ++r) {
    const double start = r * round;
    const double end = (r + 1) * round;
    // Every event ingested in round r is stamped <= this deadline, and
    // every query / retire / check in round r uses s >= it, so tracker
    // snapshots never run backwards in time.
    const double deadline = start + 0.6 * round;

    for (const int64_t id : to_register[static_cast<size_t>(r)]) {
      Op op;
      op.kind = OpKind::kRegister;
      op.time = start;
      op.item = id;
      op.creation_time = items[static_cast<size_t>(id)].creation_time;
      push(op);
      items[static_cast<size_t>(id)].registered = true;
      if (rng.Bernoulli(0.15)) {
        // Duplicate registration: must answer kAlreadyExists.
        Op dup = op;
        push(dup);
      }
    }

    // --- Ingest phase: a time-ordered merge of every live item's next
    // stream chunk, split into contiguous runs so per-item order survives.
    std::vector<serving::IngestEvent> pool;
    for (int i = 0; i < num_items; ++i) {
      ItemState& item = items[static_cast<size_t>(i)];
      if (!item.registered || item.creation_time > start) continue;
      if (item.cursor >= item.stream.size()) continue;
      const size_t want = 1 + rng.UniformInt(config.max_events_per_item_per_round);
      const size_t take = std::min(want, item.stream.size() - item.cursor);
      for (size_t k = 0; k < take; ++k) {
        const StreamEvent& e = item.stream[item.cursor + k];
        serving::IngestEvent out;
        out.item_id = i;
        out.type = e.type;
        // Clamping keeps the stamp under the deadline; min() preserves the
        // per-type non-decreasing order the tracker requires.
        out.time = std::min(item.creation_time + e.age, deadline);
        pool.push_back(out);
      }
      item.cursor += take;
    }
    std::stable_sort(pool.begin(), pool.end(),
                     [](const serving::IngestEvent& a,
                        const serving::IngestEvent& b) { return a.time < b.time; });
    // Late stragglers addressed to ids that were never registered: batch
    // ingest must drop them silently, single ingest must count kNotFound.
    const size_t stragglers = rng.UniformInt(3);
    for (size_t k = 0; k < stragglers; ++k) {
      serving::IngestEvent out;
      out.item_id = kUnknownIdBase + static_cast<int64_t>(rng.UniformInt(50));
      out.type = stream::EngagementType::kView;
      out.time = deadline;
      pool.push_back(out);
    }
    if (!pool.empty()) {
      const size_t chunks = 1 + rng.UniformInt(3);
      const size_t per = (pool.size() + chunks - 1) / chunks;
      for (size_t c = 0; c * per < pool.size(); ++c) {
        Op op;
        op.kind = rng.Bernoulli(0.4) ? OpKind::kIngest : OpKind::kIngestBatch;
        op.time = deadline;
        const size_t lo = c * per;
        const size_t hi = std::min(pool.size(), lo + per);
        op.events.assign(pool.begin() + static_cast<ptrdiff_t>(lo),
                         pool.begin() + static_cast<ptrdiff_t>(hi));
        push(op);
      }
    }

    // Explicit drain barrier after roughly half the ingest phases: in
    // async mode it forces a linearization point mid-schedule (vs the
    // implicit pre-query flushes), in sync mode it exercises the no-op
    // path.  Drawn unconditionally so the rng stream is stable.
    const bool flush_here = rng.Bernoulli(0.5);
    if (flush_here && !pool.empty()) {
      Op op;
      op.kind = OpKind::kFlush;
      op.time = deadline;
      push(op);
    }

    // --- Query phase: s past the ingest deadline so snapshots are legal.
    // Times are drawn independently, so the round's query/scan ops are
    // buffered and sorted before emission (op times must be monotone --
    // the executor's virtual clock only moves forward).
    std::vector<Op> round_queries;
    const size_t num_queries = 1 + rng.UniformInt(3);
    for (size_t q = 0; q < num_queries; ++q) {
      Op op;
      op.kind = OpKind::kQuery;
      op.time = rng.Uniform(deadline, start + 0.9 * round);
      const size_t num_ids = 1 + rng.UniformInt(static_cast<uint64_t>(num_items));
      for (size_t k = 0; k < num_ids; ++k) {
        // ~1 in 8 ids is unknown on purpose.
        op.ids.push_back(rng.Bernoulli(0.125)
                             ? kUnknownIdBase +
                                   static_cast<int64_t>(rng.UniformInt(50))
                             : static_cast<int64_t>(
                                   rng.UniformInt(static_cast<uint64_t>(num_items))));
      }
      op.s = op.time;
      op.delta = kDeltaGrid[rng.UniformInt(kDeltaGridSize)];
      op.top_k = rng.Bernoulli(0.3) ? 1 + rng.UniformInt(num_ids) : 0;
      round_queries.push_back(std::move(op));
    }
    {
      Op op;
      op.kind = OpKind::kScan;
      op.time = rng.Uniform(deadline, start + 0.9 * round);
      op.s = op.time;
      // Skip delta = 0: every increment ties at zero and the ranking is
      // meaningless (the per-id checks still cover delta = 0 via kQuery).
      op.delta = kDeltaGrid[1 + rng.UniformInt(kDeltaGridSize - 1)];
      // k often exceeds the live-item count on purpose.
      op.top_k = 1 + rng.UniformInt(static_cast<uint64_t>(num_items) + 3);
      round_queries.push_back(std::move(op));
    }
    std::stable_sort(round_queries.begin(), round_queries.end(),
                     [](const Op& a, const Op& b) { return a.time < b.time; });
    for (Op& op : round_queries) push(std::move(op));
    if (r % 3 == 1) {
      Op op;
      op.kind = OpKind::kBadQuery;
      op.time = start + 0.92 * round;
      op.bad_variant = static_cast<int>(rng.UniformInt(4));
      push(op);
    }

    if (r % 4 == 3) {
      Op op;
      op.kind = OpKind::kRetire;
      op.time = start + 0.94 * round;
      push(op);
    }

    // --- Durability phase: checkpoint every third round under the
    // configured fault schedule, then restore and re-verify.
    if (r % 3 == 2) {
      std::string mode = config.faults;
      if (mixed) {
        static const char* kModes[] = {"none", "crash", "transient", "corrupt"};
        mode = kModes[rng.UniformInt(4)];
      }
      ++checkpoint_count;
      const double t0 = start + 0.95 * round;
      // A service checkpoint performs at most 4 faultable IO ops per file
      // over (shards + model + MANIFEST + CURRENT) files; drawing the
      // fault index a little past that range occasionally arms a fault
      // that never fires, covering the "armed but clean" path too.
      const int max_fault_ops = 4 * (8 + 2);
      if (mode == "none") {
        Op op;
        op.kind = OpKind::kCheckpoint;
        op.time = t0;
        push(op);
      } else if (mode == "crash") {
        Op op;
        op.kind = OpKind::kCheckpointCrash;
        op.time = t0;
        op.fault_at = static_cast<int>(rng.UniformInt(max_fault_ops));
        push(op);
      } else if (mode == "transient") {
        Op op;
        op.kind = OpKind::kCheckpointTransient;
        op.time = t0;
        op.fault_at = static_cast<int>(rng.UniformInt(max_fault_ops));
        push(op);
      } else {  // corrupt: commit cleanly, then damage the committed bytes
        Op ck;
        ck.kind = OpKind::kCheckpoint;
        ck.time = t0;
        push(ck);
        Op corrupt;
        corrupt.kind = OpKind::kCorruptCheckpoint;
        corrupt.time = start + 0.955 * round;
        corrupt.corrupt_pick = rng.Next();
        push(corrupt);
      }
      if (mode != "none" || checkpoint_count % 2 == 0) {
        Op restore;
        restore.kind = OpKind::kRestore;
        restore.time = start + 0.96 * round;
        push(restore);
        Op check;
        check.kind = OpKind::kCheck;
        check.time = start + 0.97 * round;
        push(check);
      }
    }

    Op check;
    check.kind = OpKind::kCheck;
    check.time = end;
    push(check);
  }
  return schedule;
}

// ---------------------------------------------------------------------------
// Formatting

namespace {

std::string FormatSeconds(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", t);
  return buf;
}

}  // namespace

std::string FormatOp(const Op& op) {
  std::ostringstream os;
  os << "t=" << FormatSeconds(op.time) << " " << OpKindName(op.kind);
  switch (op.kind) {
    case OpKind::kRegister:
      os << " item=" << op.item
         << " creation=" << FormatSeconds(op.creation_time);
      break;
    case OpKind::kIngest:
    case OpKind::kIngestBatch:
      os << " events=" << op.events.size();
      break;
    case OpKind::kQuery: {
      os << " ids=[";
      for (size_t i = 0; i < op.ids.size(); ++i) {
        if (i > 0) os << ",";
        os << op.ids[i];
      }
      os << "] s=" << FormatSeconds(op.s) << " delta=" << FormatSeconds(op.delta)
         << " top_k=" << op.top_k;
      break;
    }
    case OpKind::kScan:
      os << " s=" << FormatSeconds(op.s) << " delta=" << FormatSeconds(op.delta)
         << " k=" << op.top_k;
      break;
    case OpKind::kBadQuery:
      os << " variant=" << op.bad_variant;
      break;
    case OpKind::kCheckpointCrash:
    case OpKind::kCheckpointTransient:
      os << " fault_at=" << op.fault_at;
      break;
    case OpKind::kCorruptCheckpoint:
      os << " pick=" << op.corrupt_pick;
      break;
    case OpKind::kRetire:
    case OpKind::kCheckpoint:
    case OpKind::kRestore:
    case OpKind::kCheck:
    case OpKind::kFlush:
      break;
  }
  return os.str();
}

std::string FormatTrace(const OpSchedule& schedule) {
  std::ostringstream os;
  os << "# seed=" << schedule.seed << " faults=" << schedule.config.faults
     << " rounds=" << schedule.config.rounds
     << " items=" << schedule.config.num_items << "\n";
  for (size_t i = 0; i < schedule.ops.size(); ++i) {
    os << "[" << i << "] " << FormatOp(schedule.ops[i]) << "\n";
  }
  return os.str();
}

}  // namespace horizon::sim
