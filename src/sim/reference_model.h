// Single-threaded reference model of the PredictionService.
//
// The simulator executes every op against both the real sharded service
// and this shadow: a plain std::map of CascadeTrackers answered through
// the per-row model entry points.  Because the service's batch inference
// is bit-identical to the per-row calls (a contract the flat-forest tests
// pin down) and tracker state round-trips bit-exactly, the comparison can
// demand EXACT equality of every observed count, predicted count, and
// alpha -- there is no tolerance to hide a divergence in.
#ifndef HORIZON_SIM_REFERENCE_MODEL_H_
#define HORIZON_SIM_REFERENCE_MODEL_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/hawkes_predictor.h"
#include "datagen/profiles.h"
#include "features/extractor.h"
#include "serving/prediction_service.h"
#include "stream/cascade_tracker.h"

namespace horizon::sim {

/// One reference answer for (item, s, delta).
struct RefAnswer {
  double observed = 0.0;   ///< N(s) from the shadow tracker
  double predicted = 0.0;  ///< model->PredictCount(row, observed, delta)
  double alpha = 0.0;      ///< model->PredictAlpha(row)
  double increment = 0.0;  ///< model->PredictIncrement(row, delta)
  std::vector<float> row;  ///< the feature row, for invariant checks
};

/// The shadow service.  Deliberately the simplest possible correct
/// implementation: no shards, no locks, no batching, ordered map.
class ReferenceService {
 public:
  /// Mirror of the real service's item state; the value type of State.
  struct Item {
    stream::CascadeTracker tracker;
    datagen::PageProfile page;
    datagen::PostProfile post;
  };
  /// Copyable whole-state snapshot used to model checkpoint/restore.
  using State = std::map<int64_t, Item>;

  /// `model` and `extractor` must outlive the reference and must be the
  /// same objects the real service uses.  The retirement knobs must match
  /// the real ServiceConfig.
  ReferenceService(const core::HawkesPredictor* model,
                   const features::FeatureExtractor* extractor,
                   const serving::ServiceConfig& config);

  /// kOk, or kAlreadyExists for a duplicate id.
  StatusCode Register(int64_t id, double creation_time,
                      const datagen::PageProfile& page,
                      const datagen::PostProfile& post);

  /// kOk, or kNotFound for an unknown (never registered / retired) id.
  StatusCode IngestCode(int64_t id, stream::EngagementType type, double t);

  /// kOk (answer in *out), kNotFound, or kNotYetLive (s strictly before
  /// the item's creation time -- the service's liveness rule).
  StatusCode Answer(int64_t id, double s, double delta, RefAnswer* out) const;

  /// Answers every item live at `s` (skipping not-yet-live ones), in
  /// ascending id order.  The scan-mode oracle.
  std::vector<std::pair<int64_t, RefAnswer>> Scan(double s, double delta) const;

  /// Retires items with the service's exact predicate (idle age OR
  /// Appendix A.14 death probability).  Returns the number retired.
  size_t Retire(double now);

  size_t live_items() const { return items_.size(); }
  bool Has(int64_t id) const { return items_.count(id) > 0; }

  /// All item ids, ascending.
  std::vector<int64_t> ItemIds() const;

  State SnapshotState() const { return items_; }
  void RestoreState(const State& state) { items_ = state; }

 private:
  const core::HawkesPredictor* model_;
  const features::FeatureExtractor* extractor_;
  double idle_retirement_age_;
  double death_probability_threshold_;
  State items_;
};

}  // namespace horizon::sim

#endif  // HORIZON_SIM_REFERENCE_MODEL_H_
