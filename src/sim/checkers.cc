#include "sim/checkers.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace horizon::sim {

namespace {

/// Slack for comparisons between quantities that are mathematically
/// ordered but computed through different floating-point routes.
constexpr double kUlpSlack = 1e-12;

/// The transfer identity goes through exp/log round trips (geometric
/// aggregation), so it holds to ~1e-15 per operation; 1e-9 relative is a
/// comfortable margin that still catches any real formula drift.
constexpr double kTransferTol = 1e-9;

bool ApproxLe(double a, double b) {
  return a <= b * (1.0 + kUlpSlack) + kUlpSlack;
}

}  // namespace

std::string CheckPredictionInvariants(const core::HawkesPredictor& model,
                                      const RefAnswer& answer, double delta) {
  std::ostringstream os;
  os.precision(17);
  const core::HawkesPredictorParams& params = model.params();
  if (answer.alpha < params.alpha_min || answer.alpha > params.alpha_max) {
    os << "alpha " << answer.alpha << " outside clamp range ["
       << params.alpha_min << ", " << params.alpha_max << "]";
    return os.str();
  }
  if (!(answer.predicted >= answer.observed)) {
    os << "predicted " << answer.predicted << " < observed " << answer.observed
       << " (negative increment)";
    return os.str();
  }
  if (delta == 0.0 && answer.increment != 0.0) {
    os << "delta=0 increment is " << answer.increment << ", want exactly 0";
    return os.str();
  }

  const float* row = answer.row.data();
  const double final_inc = model.PredictFinalIncrement(row);
  if (!(final_inc >= 0.0) || !std::isfinite(final_inc)) {
    os << "infinite-horizon increment is " << final_inc;
    return os.str();
  }

  // Prop. 3.2 over a horizon grid: monotone in delta, bounded by the
  // infinite-horizon limit, and equal to the transfer formula.
  const double grid[] = {0.0,      15 * kMinute, 1 * kHour, 6 * kHour,
                         1 * kDay, 4 * kDay,     30 * kDay};
  double prev = 0.0;
  for (const double d : grid) {
    const double inc = model.PredictIncrement(row, d);
    if (!ApproxLe(prev, inc)) {
      os << "increment not monotone: inc(" << d << ")=" << inc
         << " < previous grid value " << prev;
      return os.str();
    }
    if (!ApproxLe(inc, final_inc)) {
      os << "inc(" << d << ")=" << inc << " exceeds infinite-horizon limit "
         << final_inc;
      return os.str();
    }
    const double want = final_inc * (-std::expm1(-answer.alpha * d));
    const double tol = kTransferTol * std::max(1.0, std::abs(want));
    if (std::abs(inc - want) > tol) {
      os << "transfer identity violated at delta=" << d << ": inc=" << inc
         << " but final*( -expm1(-alpha*delta) )=" << want;
      return os.str();
    }
    prev = inc;
  }
  return std::string();
}

}  // namespace horizon::sim
