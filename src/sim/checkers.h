// Per-answer invariant checkers for the simulation harness.
//
// These check properties the PAPER guarantees rather than properties of
// any particular implementation: Prop. 3.2 (the conditional count over a
// horizon depends on history only through lambda(s), so the predicted
// increment is non-negative and non-decreasing in the horizon and bounded
// by the infinite-horizon limit) and the Sec. 3.2.2 transfer formula
// (inc(delta) = inc(inf) * (1 - e^{-alpha delta}) -- an exact identity of
// the model family, checkable to rounding error at every answer).
#ifndef HORIZON_SIM_CHECKERS_H_
#define HORIZON_SIM_CHECKERS_H_

#include <string>

#include "core/hawkes_predictor.h"
#include "sim/reference_model.h"

namespace horizon::sim {

/// Checks every invariant on one reference answer:
///   * alpha within the model's configured clamp range,
///   * predicted >= observed (non-negative increment),
///   * delta = 0 yields exactly zero increment,
///   * PredictIncrement is monotone non-decreasing over a horizon grid,
///   * every finite-horizon increment is bounded by the infinite-horizon
///     increment,
///   * the transfer identity inc(delta) = inc(inf) * (-expm1(-alpha delta))
///     holds to ~1e-9 relative error at every grid point.
/// Returns an empty string when all hold, else a description of the first
/// violation.
std::string CheckPredictionInvariants(const core::HawkesPredictor& model,
                                      const RefAnswer& answer, double delta);

}  // namespace horizon::sim

#endif  // HORIZON_SIM_CHECKERS_H_
