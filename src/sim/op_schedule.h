// Seeded operation schedules for the deterministic simulation harness.
//
// A schedule is a flat, fully materialized list of service operations
// (register / ingest / batch-ingest / query / scan / checkpoint / restore
// / fault arming / corruption / invariant check) derived from ONE 64-bit
// seed and a shared synthetic dataset.  Materializing everything up front
// -- no RNG draws during execution -- is what makes the harness
// reproducible and minimizable: the same seed always yields the same op
// list, and any sublist of a schedule is itself a valid schedule (the
// executor derives expected outcomes from the reference model at run
// time, so removing a register op merely turns its ingests into expected
// kNotFound drops rather than into an invalid scenario).
#ifndef HORIZON_SIM_OP_SCHEDULE_H_
#define HORIZON_SIM_OP_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "datagen/generator.h"
#include "serving/prediction_service.h"

namespace horizon::sim {

/// The operation vocabulary of the simulator.
enum class OpKind : int {
  kRegister = 0,    ///< RegisterItem (may deliberately duplicate an id)
  kIngest = 1,      ///< per-event Ingest calls, driven from several threads
  kIngestBatch = 2, ///< one IngestBatch call
  kQuery = 3,       ///< BatchQuery over an explicit id list
  kScan = 4,        ///< BatchQuery scan mode (ids empty, top_k > 0)
  kBadQuery = 5,    ///< malformed request; must fail kInvalidArgument
  kRetire = 6,      ///< RetireDeadItems(now)
  kCheckpoint = 7,  ///< Checkpoint that must succeed
  kCheckpointCrash = 8,     ///< Checkpoint under an armed crash fault
  kCheckpointTransient = 9, ///< Checkpoint under a fail-once fault + retry
  kCorruptCheckpoint = 10,  ///< flip a byte of the committed checkpoint
  kRestore = 11,    ///< Restore from the scratch checkpoint directory
  kCheck = 12,      ///< quiescent point: full divergence + invariant check
  kFlush = 13,      ///< explicit Flush drain barrier (no-op in sync mode)
};

/// Stable lower-case name of an op kind ("register", "ingest", ...).
const char* OpKindName(OpKind kind);

/// One schedule entry.  Which fields are meaningful depends on `kind`;
/// unused fields keep their defaults so FormatOp stays unambiguous.
struct Op {
  OpKind kind = OpKind::kCheck;
  double time = 0.0;  ///< logical time of the op (monotone over a schedule)

  // kRegister
  int64_t item = -1;
  double creation_time = 0.0;

  // kIngest / kIngestBatch
  std::vector<serving::IngestEvent> events;

  // kQuery / kScan / kBadQuery
  std::vector<int64_t> ids;
  double s = 0.0;      ///< prediction time of the query
  double delta = 0.0;
  size_t top_k = 0;
  int bad_variant = 0;  ///< which malformed request kBadQuery issues

  // kCheckpointCrash / kCheckpointTransient
  int fault_at = 0;  ///< faultable-op index handed to the FaultInjector

  // kCorruptCheckpoint: rng draw selecting the target file and byte
  uint64_t corrupt_pick = 0;
};

/// Schedule-shape knobs.  `faults` selects the fault schedule:
///   "none"       no injected faults; periodic checkpoint/restore
///   "crash"      checkpoints run under ArmCrashAt at seeded op indices
///   "transient"  checkpoints hit a fail-once kIoError and are retried
///   "corrupt"    committed checkpoints get a byte flipped, then restored
///   "mixed"      per-checkpoint seeded choice among all of the above
struct ScheduleConfig {
  int num_items = 10;
  int rounds = 24;  ///< simulation steps; each ends in a kCheck
  double round_duration = 45 * kMinute;
  std::string faults = "mixed";
  size_t max_events_per_item_per_round = 48;
};

/// True for the schedule names listed on ScheduleConfig::faults.
bool IsValidFaultSchedule(const std::string& name);

/// A materialized schedule.
struct OpSchedule {
  uint64_t seed = 0;
  ScheduleConfig config;
  std::vector<Op> ops;
};

/// Generates the schedule for `seed`.  Deterministic: equal inputs yield
/// an identical op list.  Items are mapped onto `dataset` cascades, whose
/// Hawkes view streams (plus derived share/comment/reaction streams)
/// provide realistic per-item event timing.
OpSchedule GenerateOpSchedule(const datagen::SyntheticDataset& dataset,
                              const ScheduleConfig& config, uint64_t seed);

/// One-line rendering of an op ("t=8100s ingest_batch events=37"), used
/// for traces and divergence reports.
std::string FormatOp(const Op& op);

/// The whole schedule, one "[index] FormatOp" line per op.
std::string FormatTrace(const OpSchedule& schedule);

}  // namespace horizon::sim

#endif  // HORIZON_SIM_OP_SCHEDULE_H_
