#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.h"

namespace horizon::obs {

namespace internal {

size_t ThreadSlot() {
  // One monotonically assigned slot per thread; cheaper and better spread
  // than hashing std::this_thread::get_id().
  static std::atomic<size_t> next{0};
  // order: relaxed; the ticket only needs uniqueness, not ordering --
  // each thread reads its own thread_local afterwards.
  thread_local const size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace internal

namespace {

/// Prometheus metric-name grammar: [a-zA-Z_:][a-zA-Z0-9_:]*.
bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

/// Shortest round-trip double formatting (JSON + Prometheus values).
std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shorter %g form when it round-trips.
  char shorter[32];
  std::snprintf(shorter, sizeof(shorter), "%g", v);
  double back = 0.0;
  std::sscanf(shorter, "%lf", &back);
  return back == v ? shorter : buf;
}

thread_local uint32_t sample_tick = 0;

}  // namespace

Histogram* SampleEvery(uint32_t rate, Histogram* hist) {
  if (rate <= 1) return hist;
  return (sample_tick++ % rate == 0) ? hist : nullptr;
}

std::vector<double> LatencyBuckets() {
  std::vector<double> bounds;
  double b = 1e-7;  // 100 ns
  for (int i = 0; i < 31; ++i, b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::vector<double> CountBuckets() {
  std::vector<double> bounds;
  double b = 1.0;
  for (int i = 0; i < 21; ++i, b *= 2.0) bounds.push_back(b);
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  HORIZON_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    HORIZON_CHECK(bounds_[i - 1] < bounds_[i]);
  }
}

void Histogram::Observe(double value) {
  // lower_bound: the first bound >= value owns it, i.e. Prometheus `le`
  // (inclusive upper edge) semantics.
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  // order: relaxed (all three); pure statistics paired with the
  // relaxed reads in BucketCounts/Count/Sum.  Scrapes may observe the
  // three fields mutually inconsistent; the exporter documents that.
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  // order: relaxed; see above.
  count_.fetch_add(1, std::memory_order_relaxed);
  // order: relaxed; see above.
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    // order: relaxed; pairs with the relaxed fetch_add in Observe --
    // a racy-by-contract scrape snapshot.
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (const uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  // Rank of the q-th observation (1-based, ceil), then walk the CDF.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] < rank) {
      seen += counts[i];
      continue;
    }
    if (i == counts.size() - 1) return bounds_.back();  // +Inf bucket: floor
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi = bounds_[i];
    const double frac =
        static_cast<double>(rank - seen) / static_cast<double>(counts[i]);
    return lo + frac * (hi - lo);
  }
  return bounds_.back();
}

void Histogram::Reset() {
  // order: relaxed (all three); test-only zeroing, same no-payload
  // contract as Observe.
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  // order: relaxed; see above.
  count_.store(0, std::memory_order_relaxed);
  // order: relaxed; see above.
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  // horizon-lint: allow(naked-new) -- intentionally leaked singleton:
  // instruments hand out stable pointers that hot paths may dereference
  // during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  HORIZON_CHECK(ValidMetricName(name));
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  HORIZON_CHECK(ValidMetricName(name));
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetHistogram(name, LatencyBuckets());
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  HORIZON_CHECK(ValidMetricName(name));
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else {
    HORIZON_CHECK(slot->bounds() == bounds);  // one meaning per name
  }
  return slot.get();
}

std::string MetricsRegistry::DumpPrometheus() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << "# TYPE " << name << " counter\n";
    os << name << " " << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << FormatDouble(gauge->Value()) << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    os << "# TYPE " << name << " histogram\n";
    const auto counts = hist->BucketCounts();
    const auto& bounds = hist->bounds();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      const std::string le =
          i < bounds.size() ? FormatDouble(bounds[i]) : "+Inf";
      os << name << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
    }
    os << name << "_sum " << FormatDouble(hist->Sum()) << "\n";
    os << name << "_count " << hist->Count() << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::DumpJson() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  os << "{";
  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << counter->Value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << FormatDouble(gauge->Value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":{\"count\":" << hist->Count()
       << ",\"sum\":" << FormatDouble(hist->Sum())
       << ",\"p50\":" << FormatDouble(hist->Quantile(0.50))
       << ",\"p95\":" << FormatDouble(hist->Quantile(0.95))
       << ",\"p99\":" << FormatDouble(hist->Quantile(0.99)) << "}";
  }
  os << "}}";
  return os.str();
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Set(0.0);
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace horizon::obs
