// Observability layer: a process-wide metrics registry with wait-free
// hot-path instruments and a text/JSON exposition surface.
//
// Instruments
//   Counter    monotone uint64, sharded across cache-line-padded slots
//              (same idea as the serving Shard design: writers pick a slot
//              by hashed thread id, the scraper sums).  Add() is one
//              relaxed fetch_add on a private cache line -- wait-free and
//              contention-free up to kCounterSlots writer threads.
//   Gauge      a single atomic double (Set/Add/Value).
//   Histogram  fixed bucket bounds chosen at registration; Observe() is
//              one relaxed fetch_add into the bucket plus sum/count
//              updates.  The scraper extracts p50/p95/p99 by linear
//              interpolation inside the owning bucket.
//   ScopedTimer  RAII trace hook: measures a steady_clock span and
//              Observe()s it (in seconds) into a Histogram on destruction.
//              Constructed with nullptr it is a no-op, which is how the
//              sampled hot paths (ingest) skip the clock reads entirely.
//
// Registration returns stable pointers that live as long as the registry;
// hot paths capture them once (at service construction) and never touch
// the registry map again.  Scrapes (DumpPrometheus/DumpJson) run under the
// registration mutex but only read relaxed atomics, so writers are never
// blocked; a scrape is a coherent-enough snapshot, same contract as
// ServiceStats.
#ifndef HORIZON_OBS_METRICS_H_
#define HORIZON_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"

namespace horizon::obs {

/// Writer-slot count of sharded counters.  16 padded slots cover the
/// thread counts the serving stack targets; beyond that writers share
/// slots (still wait-free, just contended).
inline constexpr size_t kCounterSlots = 16;

namespace internal {
/// Stable small index for the calling thread, used to pick counter slots.
size_t ThreadSlot();
}  // namespace internal

/// Monotone counter, sharded per thread slot.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment() { Add(1); }
  void Add(uint64_t n) {
    // order: relaxed; pure statistics counter paired with the relaxed
    // reads in Value() -- no payload is published through it and the
    // scrape tolerates being a few increments behind.
    slots_[internal::ThreadSlot() % kCounterSlots].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  /// Sum over the slots (a scrape-time snapshot; monotone across calls).
  uint64_t Value() const {
    uint64_t total = 0;
    // order: relaxed; pairs with the relaxed fetch_add in Add -- the
    // sum across slots is a racy-by-contract scrape snapshot.
    for (const auto& slot : slots_) total += slot.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    // order: relaxed; test-only zeroing, same no-payload contract as
    // Add/Value.
    for (auto& slot : slots_) slot.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  Slot slots_[kCounterSlots];
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  // order: relaxed on all three; a gauge is a single self-contained
  // value (store/fetch_add pair with the load) and scrapes tolerate
  // staleness by contract.
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  // order: relaxed; see Set.
  void Add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  // order: relaxed; see Set.
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Default latency bucket bounds in seconds: 100 ns doubling up to ~107 s
/// (31 finite bounds; values above the last land in the +Inf bucket).
std::vector<double> LatencyBuckets();

/// Bucket bounds for event-count histograms (group-commit batch sizes,
/// queue depths): 1 doubling up to ~1M (21 finite bounds).  Sum()/Count()
/// stay exact regardless of bucketing, which is what the DST conservation
/// checks scrape; the buckets only shape the quantile view.
std::vector<double> CountBuckets();

/// Fixed-bucket histogram.  Bounds are upper edges, strictly increasing;
/// an implicit +Inf bucket catches the overflow.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  // order: relaxed; pairs with the relaxed fetch_add in Observe.
  // count/sum/buckets are scraped independently and may be mutually
  // inconsistent by a few observations -- documented scrape semantics.
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  // order: relaxed; see Count.
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }

  /// Bucket counts including the final +Inf bucket (size bounds()+1).
  std::vector<uint64_t> BucketCounts() const;

  /// Quantile estimate (q in [0,1]) by linear interpolation within the
  /// bucket containing the q-th observation; 0 when empty.  Values in the
  /// +Inf bucket report the last finite bound (a floor, not an estimate).
  double Quantile(double q) const;

  void Reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// RAII latency probe: records the elapsed wall time into `hist` (seconds)
/// when it goes out of scope.  A null histogram disables the probe
/// including the clock reads.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist),
        start_(hist ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    hist_->Observe(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                       .count());
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Returns `hist` once every `rate` calls from this thread and nullptr
/// otherwise -- the sampling hook for instruments on paths too hot to pay
/// two clock reads per operation (ingest).  Percentiles are unaffected by
/// uniform sampling; the histogram's Count() counts samples, not ops.
Histogram* SampleEvery(uint32_t rate, Histogram* hist);

/// Name -> instrument registry.  Get* registers on first use and returns
/// the same stable pointer on every subsequent call.  Names must match
/// [a-zA-Z_:][a-zA-Z0-9_:]* (Prometheus rules); violations are fatal.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` is consulted only on first registration; re-registration
  /// with different bounds is fatal (one meaning per name).
  Histogram* GetHistogram(const std::string& name);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds);

  /// Prometheus text exposition (0.0.4): TYPE comments, _bucket{le=...} /
  /// _sum / _count expansion for histograms.
  std::string DumpPrometheus() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":
  /// {name:{count,sum,p50,p95,p99}}}.
  std::string DumpJson() const;

  /// Zeroes every instrument (tests and benchmark setup).
  void Reset();

 private:
  // The map (registration index) is guarded; the instruments themselves
  // are lock-free and are touched through stable pointers outside mu_.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      HORIZON_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      HORIZON_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      HORIZON_GUARDED_BY(mu_);
};

}  // namespace horizon::obs

#endif  // HORIZON_OBS_METRICS_H_
