// Feature schema: named, categorized features mirroring the taxonomy of the
// paper's Appendix A.16 (content features, page features, engagement
// features split by type, combination features, other features).
#ifndef HORIZON_FEATURES_SCHEMA_H_
#define HORIZON_FEATURES_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

namespace horizon::features {

/// Feature categories used for the Table 2 importance breakdown.
enum class FeatureCategory : int {
  kContent = 0,            ///< static properties of the post
  kPage = 1,               ///< properties of the authoring page
  kEngagementViews = 2,    ///< views on the original post
  kEngagementPageViews = 3,///< cumulative views on the page's other posts
  kEngagementShares = 4,
  kEngagementComments = 5,
  kEngagementReactions = 6,
  kEngagementCombos = 7,   ///< ratios between engagement counters
  kOther = 8,              ///< prediction time, content age, group size, ...
};
inline constexpr int kNumFeatureCategories = 9;
const char* FeatureCategoryName(FeatureCategory category);

/// One feature definition.
struct FeatureDef {
  std::string name;
  FeatureCategory category;
};

/// Ordered collection of feature definitions; the order defines the layout
/// of the feature vectors fed to the GBDT models.
class FeatureSchema {
 public:
  /// Appends a feature; returns its index.
  size_t Add(std::string name, FeatureCategory category);

  size_t size() const { return defs_.size(); }
  const FeatureDef& def(size_t i) const { return defs_[i]; }

  /// Indices of all features in a category.
  std::vector<size_t> IndicesOf(FeatureCategory category) const;

  /// Number of features in a category.
  size_t CountOf(FeatureCategory category) const;

 private:
  std::vector<FeatureDef> defs_;
};

}  // namespace horizon::features

#endif  // HORIZON_FEATURES_SCHEMA_H_
