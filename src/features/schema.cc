#include "features/schema.h"

#include "common/check.h"

namespace horizon::features {

const char* FeatureCategoryName(FeatureCategory category) {
  switch (category) {
    case FeatureCategory::kContent: return "content";
    case FeatureCategory::kPage: return "page";
    case FeatureCategory::kEngagementViews: return "engagement/views_on_post";
    case FeatureCategory::kEngagementPageViews: return "engagement/page_other_posts";
    case FeatureCategory::kEngagementShares: return "engagement/shares";
    case FeatureCategory::kEngagementComments: return "engagement/comments";
    case FeatureCategory::kEngagementReactions: return "engagement/reactions";
    case FeatureCategory::kEngagementCombos: return "engagement/combinations";
    case FeatureCategory::kOther: return "other";
  }
  return "unknown";
}

size_t FeatureSchema::Add(std::string name, FeatureCategory category) {
  defs_.push_back({std::move(name), category});
  return defs_.size() - 1;
}

std::vector<size_t> FeatureSchema::IndicesOf(FeatureCategory category) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < defs_.size(); ++i) {
    if (defs_[i].category == category) out.push_back(i);
  }
  return out;
}

size_t FeatureSchema::CountOf(FeatureCategory category) const {
  return IndicesOf(category).size();
}

}  // namespace horizon::features
