#include "features/extractor.h"

#include <cmath>
#include <string>

#include "common/check.h"
#include "common/units.h"
#include "obs/metrics.h"

namespace horizon::features {

namespace {

using stream::EngagementType;
using stream::StreamSnapshot;
using stream::TrackerConfig;
using stream::TrackerSnapshot;

float Log1p(double v) { return static_cast<float>(std::log1p(std::max(v, 0.0))); }

/// Category a given engagement stream's features belong to.
FeatureCategory CategoryOf(EngagementType type) {
  switch (type) {
    case EngagementType::kView: return FeatureCategory::kEngagementViews;
    case EngagementType::kShare: return FeatureCategory::kEngagementShares;
    case EngagementType::kComment: return FeatureCategory::kEngagementComments;
    case EngagementType::kReaction: return FeatureCategory::kEngagementReactions;
  }
  return FeatureCategory::kOther;
}

std::string WindowLabel(double seconds) { return FormatDuration(seconds); }

/// Emits every feature as (name, category, value) in a fixed order.  Both
/// schema construction and extraction flow through this single routine, so
/// they can never drift apart.
template <typename Emit>
void EmitAll(const datagen::PageProfile& page, const datagen::PostProfile& post,
             const TrackerSnapshot& snap, const TrackerConfig& cfg, Emit&& emit) {
  using FC = FeatureCategory;

  // --- Content features ---
  for (int m = 0; m < datagen::kNumMediaTypes; ++m) {
    emit(std::string("content/media_") +
             datagen::MediaTypeName(static_cast<datagen::MediaType>(m)),
         FC::kContent, static_cast<int>(post.media) == m ? 1.0f : 0.0f);
  }
  emit("content/language", FC::kContent, static_cast<float>(post.language));
  emit("content/num_mentions", FC::kContent, static_cast<float>(post.num_mentions));
  emit("content/num_hashtags", FC::kContent, static_cast<float>(post.num_hashtags));
  emit("content/log1p_text_length", FC::kContent, Log1p(post.text_length));
  emit("content/has_question", FC::kContent, static_cast<float>(post.has_question));
  emit("content/in_group", FC::kContent, static_cast<float>(post.in_group));

  // --- Page features ---
  emit("page/log1p_followers", FC::kPage, Log1p(page.followers));
  emit("page/log1p_fans", FC::kPage, Log1p(page.fans));
  emit("page/fans_to_followers", FC::kPage,
       static_cast<float>(page.followers > 0 ? page.fans / page.followers : 0.0));
  emit("page/log1p_posts_last_month", FC::kPage, Log1p(page.posts_last_month));
  emit("page/age_days", FC::kPage, static_cast<float>(page.page_age_days));
  emit("page/verified", FC::kPage, static_cast<float>(page.verified));
  for (int c = 0; c < datagen::kNumPageCategories; ++c) {
    emit(std::string("page/category_") +
             datagen::PageCategoryName(static_cast<datagen::PageCategory>(c)),
         FC::kPage, static_cast<int>(page.category) == c ? 1.0f : 0.0f);
  }

  // --- Cumulative engagement on the page's other posts ---
  emit("page_hist/log1p_mean_views", FC::kEngagementPageViews,
       Log1p(page.hist_mean_views));
  emit("page_hist/log_halflife_h", FC::kEngagementPageViews,
       static_cast<float>(std::log(std::max(page.hist_mean_halflife / kHour, 1e-3))));
  emit("page_hist/share_rate", FC::kEngagementPageViews,
       static_cast<float>(page.hist_share_rate));
  emit("page_hist/comment_rate", FC::kEngagementPageViews,
       static_cast<float>(page.hist_comment_rate));
  emit("page_hist/log1p_monthly_views", FC::kEngagementPageViews,
       Log1p(page.hist_mean_views * page.posts_last_month));

  // --- Per-stream engagement features ---
  for (int t = 0; t < stream::kNumEngagementTypes; ++t) {
    const auto type = static_cast<EngagementType>(t);
    const StreamSnapshot& s = snap.streams[t];
    const FC cat = CategoryOf(type);
    const std::string prefix = std::string(stream::EngagementTypeName(type)) + "s/";

    emit(prefix + "log1p_total", cat, Log1p(static_cast<double>(s.total)));
    for (size_t w = 0; w < cfg.window_lengths.size(); ++w) {
      const std::string label = WindowLabel(cfg.window_lengths[w]);
      emit(prefix + "log1p_last_" + label, cat,
           Log1p(static_cast<double>(s.window_counts[w])));
      emit(prefix + "rate_per_h_last_" + label, cat,
           static_cast<float>(s.window_rates[w] * kHour));
    }
    for (size_t l = 0; l < cfg.landmark_ages.size(); ++l) {
      emit(prefix + "log1p_first_" + WindowLabel(cfg.landmark_ages[l]), cat,
           Log1p(static_cast<double>(s.landmark_counts[l])));
    }
    emit(prefix + "log1p_ewma_per_h", cat, Log1p(s.ewma_rate * kHour));
    emit(prefix + "mean_event_age_h", cat,
         static_cast<float>(s.mean_event_age / kHour));
    emit(prefix + "first_event_age_h", cat,
         static_cast<float>(s.first_event_age / kHour));
    emit(prefix + "last_event_age_h", cat,
         static_cast<float>(s.last_event_age / kHour));
    emit(prefix + "recency_h", cat,
         static_cast<float>(s.last_event_age >= 0.0
                                ? (snap.age - s.last_event_age) / kHour
                                : -1.0));
  }

  // --- Combination (ratio) features ---
  const double views = static_cast<double>(snap.views().total);
  auto ratio = [&](double num) {
    return static_cast<float>(views > 0 ? num / views : 0.0);
  };
  emit("combo/shares_per_view", FC::kEngagementCombos,
       ratio(static_cast<double>(snap.shares().total)));
  emit("combo/comments_per_view", FC::kEngagementCombos,
       ratio(static_cast<double>(snap.comments().total)));
  emit("combo/reactions_per_view", FC::kEngagementCombos,
       ratio(static_cast<double>(snap.reactions().total)));
  emit("combo/views_recent_frac", FC::kEngagementCombos,
       ratio(static_cast<double>(
           snap.views().window_counts.empty() ? 0 : snap.views().window_counts.back())));
  {
    const auto& rates = snap.views().window_rates;
    const double short_rate = rates.empty() ? 0.0 : rates.front();
    const double long_rate = rates.empty() ? 0.0 : rates.back();
    emit("combo/velocity_short_to_long", FC::kEngagementCombos,
         static_cast<float>(long_rate > 0 ? short_rate / long_rate : 0.0));
  }

  // --- Other features ---
  emit("other/age_h", FC::kOther, static_cast<float>(snap.age / kHour));
  emit("other/log1p_age_h", FC::kOther, Log1p(snap.age / kHour));
  emit("other/creation_tod", FC::kOther, static_cast<float>(post.creation_tod));
  emit("other/day_of_week", FC::kOther, static_cast<float>(post.day_of_week));
  emit("other/log1p_group_members", FC::kOther, Log1p(post.group_members));
}

/// Dummy inputs used to walk the schema at construction time.
TrackerSnapshot DummySnapshot(const TrackerConfig& cfg) {
  TrackerSnapshot snap;
  for (auto& s : snap.streams) {
    s.window_counts.assign(cfg.window_lengths.size(), 0);
    s.window_rates.assign(cfg.window_lengths.size(), 0.0);
    s.landmark_counts.assign(cfg.landmark_ages.size(), 0);
  }
  return snap;
}

}  // namespace

FeatureExtractor::FeatureExtractor(const stream::TrackerConfig& tracker_config)
    : tracker_config_(tracker_config) {
  const datagen::PageProfile page{};
  const datagen::PostProfile post{};
  const TrackerSnapshot snap = DummySnapshot(tracker_config_);
  EmitAll(page, post, snap, tracker_config_,
          [this](std::string name, FeatureCategory cat, float /*value*/) {
            schema_.Add(std::move(name), cat);
          });
}

std::vector<float> FeatureExtractor::Extract(const datagen::PageProfile& page,
                                             const datagen::PostProfile& post,
                                             const stream::TrackerSnapshot& snapshot)
    const {
  std::vector<float> out(schema_.size());
  ExtractInto(page, post, snapshot, out.data());
  return out;
}

void FeatureExtractor::ExtractInto(const datagen::PageProfile& page,
                                   const datagen::PostProfile& post,
                                   const stream::TrackerSnapshot& snapshot,
                                   float* out) const {
  ExtractIntoStrided(page, post, snapshot, out, 1);
}

void FeatureExtractor::ExtractIntoStrided(const datagen::PageProfile& page,
                                          const datagen::PostProfile& post,
                                          const stream::TrackerSnapshot& snapshot,
                                          float* out, size_t stride) const {
  // Extraction runs in tight per-row loops (one call is ~100 ns), so the
  // trace hook is a sampled latency probe plus a wait-free row counter.
  static obs::Histogram* const extract_latency =
      obs::MetricsRegistry::Global().GetHistogram(
          "horizon_features_extract_latency_seconds");
  static obs::Counter* const rows_extracted =
      obs::MetricsRegistry::Global().GetCounter(
          "horizon_features_rows_extracted_total");
  const obs::ScopedTimer timer(obs::SampleEvery(64, extract_latency));
  rows_extracted->Increment();
  size_t i = 0;
  EmitAll(page, post, snapshot, tracker_config_,
          [&](const std::string& /*name*/, FeatureCategory /*cat*/, float value) {
            HORIZON_DCHECK(std::isfinite(value));
            out[i++ * stride] = value;
          });
  HORIZON_CHECK_EQ(i, schema_.size());
}

stream::TrackerSnapshot FeatureExtractor::ReplaySnapshot(
    const datagen::Cascade& cascade, double observe_age) const {
  stream::CascadeTracker tracker(0.0, tracker_config_);
  for (const auto& e : cascade.views) {
    if (e.time >= observe_age) break;
    tracker.Observe(EngagementType::kView, e.time);
  }
  for (double t : cascade.share_times) {
    if (t >= observe_age) break;
    tracker.Observe(EngagementType::kShare, t);
  }
  for (double t : cascade.comment_times) {
    if (t >= observe_age) break;
    tracker.Observe(EngagementType::kComment, t);
  }
  for (double t : cascade.reaction_times) {
    if (t >= observe_age) break;
    tracker.Observe(EngagementType::kReaction, t);
  }
  return tracker.Snapshot(observe_age);
}

}  // namespace horizon::features
