// Feature extraction: builds the dense feature vector for (page, post,
// tracker snapshot at prediction time).  Every temporal feature is derived
// from the O(1)-state CascadeTracker snapshot, honoring the paper's
// scalability requirement.
#ifndef HORIZON_FEATURES_EXTRACTOR_H_
#define HORIZON_FEATURES_EXTRACTOR_H_

#include <cstddef>
#include <vector>

#include "datagen/cascade.h"
#include "datagen/profiles.h"
#include "features/schema.h"
#include "stream/cascade_tracker.h"

namespace horizon::features {

/// Stateless feature extractor; the schema is fixed at construction from
/// the tracker configuration (window/landmark layouts).
class FeatureExtractor {
 public:
  explicit FeatureExtractor(const stream::TrackerConfig& tracker_config);

  const FeatureSchema& schema() const { return schema_; }
  const stream::TrackerConfig& tracker_config() const { return tracker_config_; }

  /// Extracts the feature vector (size schema().size()).
  std::vector<float> Extract(const datagen::PageProfile& page,
                             const datagen::PostProfile& post,
                             const stream::TrackerSnapshot& snapshot) const;

  /// Extracts into a caller-provided buffer of schema().size() floats —
  /// the allocation-free form used by the batch/serving hot paths.
  /// Thread-safe: the extractor is immutable after construction.
  void ExtractInto(const datagen::PageProfile& page,
                   const datagen::PostProfile& post,
                   const stream::TrackerSnapshot& snapshot, float* out) const;

  /// Strided form: feature i is written to out[i * stride].  With
  /// stride = batch.feature_stride() and out = batch.MutableRowBase(row)
  /// this fills one row of a column-major gbdt::ExampleBatch in place, so
  /// batches reach the SIMD inference kernels without a transposition
  /// pass.  ExtractInto is the stride-1 case.
  void ExtractIntoStrided(const datagen::PageProfile& page,
                          const datagen::PostProfile& post,
                          const stream::TrackerSnapshot& snapshot, float* out,
                          size_t stride) const;

  /// Convenience: replays a generated cascade's engagement events with age
  /// < observe_age into a fresh tracker and returns its snapshot.  (Real
  /// deployments keep trackers incrementally; experiments replay.)
  stream::TrackerSnapshot ReplaySnapshot(const datagen::Cascade& cascade,
                                         double observe_age) const;

 private:
  stream::TrackerConfig tracker_config_;
  FeatureSchema schema_;
};

}  // namespace horizon::features

#endif  // HORIZON_FEATURES_EXTRACTOR_H_
