// Assembles supervised training/evaluation examples from a synthetic
// dataset: feature vectors at sampled prediction times, log1p view-count
// increments at the reference horizons, and effective-growth-exponent
// targets (Sec. 3.2.2).
#ifndef HORIZON_CORE_TRAINER_H_
#define HORIZON_CORE_TRAINER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.h"
#include "core/alpha_estimator.h"
#include "datagen/generator.h"
#include "features/extractor.h"
#include "gbdt/dataset.h"

namespace horizon::core {

/// Controls example sampling and target construction.
struct ExampleSetOptions {
  /// Reference horizons delta*_i for which increments are computed.
  std::vector<double> reference_horizons{1 * kDay};
  /// Prediction times per cascade, sampled log-uniformly in
  /// [min_prediction_age, max_prediction_age].
  int samples_per_cascade = 2;
  double min_prediction_age = 30 * kMinute;
  double max_prediction_age = 4 * kDay;
  /// Alpha target construction: estimator kind applied to the view times
  /// observed AFTER the prediction time (remaining-growth timescale).
  AlphaEstimatorKind alpha_kind = AlphaEstimatorKind::kMeanValue;
  double alpha_quantile_gamma = 0.5;
  uint64_t seed = 7;
};

/// Back-reference from an example to its cascade, for evaluation.
struct ExampleRef {
  size_t cascade_index = 0;
  double prediction_age = 0.0;  ///< s, seconds since creation
  double n_s = 0.0;             ///< observed views N(s)
};

/// A materialized example set.
struct ExampleSet {
  gbdt::DataMatrix x;
  /// log1p(N(s + delta*_i) - N(s)) per reference horizon i, per example.
  std::vector<std::vector<double>> log1p_increments;
  /// Estimated effective growth exponent per example (0 if inestimable).
  std::vector<double> alpha_targets;
  std::vector<ExampleRef> refs;

  size_t size() const { return refs.size(); }
};

/// True increment N(s+delta) - N(s) of a cascade, truncated at the
/// tracking window (delta may be +inf).
double TrueIncrement(const datagen::Cascade& cascade, double s, double delta);

/// Builds examples for the given cascade indices of a dataset.
ExampleSet BuildExampleSet(const datagen::SyntheticDataset& dataset,
                           const std::vector<size_t>& cascade_indices,
                           const features::FeatureExtractor& extractor,
                           const ExampleSetOptions& options);

}  // namespace horizon::core

#endif  // HORIZON_CORE_TRAINER_H_
