// Split-conformal prediction intervals for popularity predictions.
//
// The paper motivates assessing prediction error (Appendix A.6 derives the
// process variance), but the end-to-end error also includes model error of
// the learned point predictors.  Split conformal calibration covers both
// without distributional assumptions: calibrate the empirical distribution
// of log-scale residuals
//     r = log1p(true increment) - log1p(predicted increment)
// on a held-out calibration set, bucketed by prediction horizon, and
// translate its adjusted quantiles back around any new prediction.  The
// resulting two-sided intervals have finite-sample marginal coverage
// >= 1 - miscoverage under exchangeability.
#ifndef HORIZON_CORE_CONFORMAL_H_
#define HORIZON_CORE_CONFORMAL_H_

#include <cstddef>
#include <vector>

#include "common/units.h"

namespace horizon::core {

/// Two-sided interval for a count increment.
struct PredictionInterval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Calibrates and serves conformal intervals.
class ConformalCalibrator {
 public:
  struct Options {
    /// Residuals are bucketed by horizon; bucket i covers
    /// (edges[i-1], edges[i]] with edges[-1] = 0.  Horizons beyond the
    /// last edge share the last bucket.
    std::vector<double> horizon_bucket_edges{3 * kHour, 12 * kHour, 2 * kDay,
                                             8 * kDay};
    /// Buckets with fewer residuals than this fall back to the pooled
    /// residual set.
    size_t min_bucket_size = 50;
  };

  ConformalCalibrator();
  explicit ConformalCalibrator(const Options& options);

  /// Calibrates from aligned triples (predicted increment, true increment,
  /// horizon).  May be called again to re-calibrate.
  void Calibrate(const std::vector<double>& predicted_increments,
                 const std::vector<double>& true_increments,
                 const std::vector<double>& horizons);

  bool calibrated() const { return !pooled_.empty(); }

  /// Interval around a new predicted increment for the given horizon with
  /// target miscoverage in (0, 1) (e.g. 0.1 for a 90% interval).  The
  /// lower end is clamped at 0 (counts cannot decrease).
  PredictionInterval IntervalFor(double predicted_increment, double horizon,
                                 double miscoverage) const;

  /// Number of calibration residuals in the bucket serving `horizon`
  /// (diagnostic; 0 before calibration).
  size_t BucketSize(double horizon) const;

 private:
  const std::vector<double>& ResidualsFor(double horizon) const;

  Options options_;
  std::vector<std::vector<double>> bucket_residuals_;  // sorted per bucket
  std::vector<double> pooled_;                         // sorted
};

}  // namespace horizon::core

#endif  // HORIZON_CORE_CONFORMAL_H_
