// Estimators of the effective growth exponent alpha = beta (1 - rho1)
// (Sec. 3.2.4): the mean-value estimator (reciprocal of the mean point
// time) and the quantile-value estimator (reciprocal of the gamma-quantile
// point time).
#ifndef HORIZON_CORE_ALPHA_ESTIMATOR_H_
#define HORIZON_CORE_ALPHA_ESTIMATOR_H_

#include <cstddef>
#include <vector>

namespace horizon::core {

/// Which estimator of alpha is used to build training targets for g.
enum class AlphaEstimatorKind {
  kMeanValue,
  kQuantileValue,
};
const char* AlphaEstimatorKindName(AlphaEstimatorKind kind);

/// Options shared by the estimators.
struct AlphaEstimatorOptions {
  /// Only events with time > start_time are used, measured relative to
  /// start_time (the paper's "start time = 1h" variant in Fig. 6).
  double start_time = 0.0;
  /// Quantile estimator: the gamma of T_gamma (1/2 = median estimator).
  double gamma = 0.5;
  /// Quantile estimator: when true, multiply by c_gamma = log(1/(1-gamma))
  /// per Eq. (6); the paper's definition (alpha_hat = 1/T_gamma) omits it.
  bool include_log_factor = false;
};

/// Mean-value estimator: alpha_hat = n / sum_i (T_i - start_time) over the
/// n events after start_time, i.e. the reciprocal of the mean point time.
/// Returns 0 when no usable events exist.
double MeanAlphaEstimate(const std::vector<double>& event_times,
                         const AlphaEstimatorOptions& options = {});

/// Quantile-value estimator: alpha_hat = (c_gamma) / T_gamma, with T_gamma
/// the time (relative to start_time) at which a gamma fraction of the
/// remaining events is reached.  Returns 0 when no usable events exist or
/// T_gamma == 0.
double QuantileAlphaEstimate(const std::vector<double>& event_times,
                             const AlphaEstimatorOptions& options = {});

/// Dispatches on `kind`.
double EstimateAlpha(AlphaEstimatorKind kind, const std::vector<double>& event_times,
                     const AlphaEstimatorOptions& options = {});

}  // namespace horizon::core

#endif  // HORIZON_CORE_ALPHA_ESTIMATOR_H_
