#include "core/hawkes_predictor.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/math_util.h"
#include "common/thread_pool.h"

namespace horizon::core {

const char* AggregationName(Aggregation aggregation) {
  switch (aggregation) {
    case Aggregation::kArithmeticMean: return "arithmetic";
    case Aggregation::kGeometricMean: return "geometric";
  }
  return "unknown";
}

HawkesPredictor::HawkesPredictor(HawkesPredictorParams params)
    : params_(std::move(params)), g_model_(params_.gbdt_alpha) {
  HORIZON_CHECK(!params_.reference_horizons.empty());
  for (size_t i = 0; i < params_.reference_horizons.size(); ++i) {
    HORIZON_CHECK_GT(params_.reference_horizons[i], 0.0);
    if (i > 0) {
      HORIZON_CHECK_GT(params_.reference_horizons[i], params_.reference_horizons[i - 1]);
    }
    f_models_.emplace_back(params_.gbdt_count);
  }
  HORIZON_CHECK_GT(params_.alpha_min, 0.0);
  HORIZON_CHECK_GT(params_.alpha_max, params_.alpha_min);
}

void HawkesPredictor::Fit(const gbdt::DataMatrix& x,
                          const std::vector<std::vector<double>>& log1p_increments,
                          const std::vector<double>& alpha_targets) {
  HORIZON_CHECK_EQ(log1p_increments.size(), f_models_.size());
  HORIZON_CHECK_EQ(alpha_targets.size(), x.num_rows());
  for (size_t i = 0; i < f_models_.size(); ++i) {
    HORIZON_CHECK_EQ(log1p_increments[i].size(), x.num_rows());
    f_models_[i].Fit(x, log1p_increments[i]);
  }
  // g is trained on log(alpha): alpha is positive and roughly lognormal
  // across items.  Zero-alpha targets (degenerate cascades) are clamped to
  // alpha_min before the log.
  std::vector<double> log_alpha(alpha_targets.size());
  for (size_t i = 0; i < alpha_targets.size(); ++i) {
    log_alpha[i] =
        std::log(Clamp(alpha_targets[i], params_.alpha_min, params_.alpha_max));
  }
  g_model_.Fit(x, log_alpha);
  trained_ = true;
}

double HawkesPredictor::PredictAlpha(const float* row) const {
  HORIZON_DCHECK(trained_);
  return Clamp(std::exp(g_model_.Predict(row)), params_.alpha_min, params_.alpha_max);
}

double HawkesPredictor::CombineIncrement(const double* increments_at_refs, size_t m,
                                         double alpha_hat, double delta) const {
  // Single reference horizon: Eq. (7) directly.
  // Multiple: arithmetic or geometric aggregation (Sec. 3.2.3).  Both are
  // computed in linear space on the lambda(s)/alpha "final increment" scale
  //   base_i = inc_i / (1 - e^{-alpha delta*_i}),
  // then scaled by (1 - e^{-alpha delta}).
  const double target_factor =
      std::isinf(delta) ? 1.0 : -std::expm1(-alpha_hat * delta);
  if (params_.aggregation == Aggregation::kArithmeticMean || m == 1) {
    double sum = 0.0;
    for (size_t i = 0; i < m; ++i) {
      const double ref_factor = -std::expm1(-alpha_hat * params_.reference_horizons[i]);
      sum += increments_at_refs[i] / ref_factor;
    }
    return sum / static_cast<double>(m) * target_factor;
  }
  // Geometric mean (Eq. 10), in log space for numerical stability.
  double log_sum = 0.0;
  for (size_t i = 0; i < m; ++i) {
    const double inc = std::max(increments_at_refs[i], 1e-9);
    log_sum += std::log(inc) - Log1mExp(alpha_hat * params_.reference_horizons[i]);
  }
  const double log_target =
      std::isinf(delta) ? 0.0 : Log1mExp(alpha_hat * delta);
  return std::exp(log_sum / static_cast<double>(m) + log_target);
}

double HawkesPredictor::PredictIncrement(const float* row, double delta) const {
  HORIZON_DCHECK(trained_);
  HORIZON_CHECK_GE(delta, 0.0);
  if (delta == 0.0) return 0.0;
  const double alpha_hat = PredictAlpha(row);
  std::vector<double> increments(f_models_.size());
  for (size_t i = 0; i < f_models_.size(); ++i) {
    // Invert the log1p transform; predictions below zero increment clamp
    // to zero.
    increments[i] = std::max(std::expm1(f_models_[i].Predict(row)), 0.0);
  }
  return CombineIncrement(increments.data(), increments.size(), alpha_hat, delta);
}

double HawkesPredictor::PredictCount(const float* row, double n_s, double delta) const {
  return n_s + PredictIncrement(row, delta);
}

double HawkesPredictor::PredictFinalIncrement(const float* row) const {
  return PredictIncrement(row, std::numeric_limits<double>::infinity());
}

template <typename Matrix>
std::vector<double> HawkesPredictor::PredictAlphaBatchImpl(
    const Matrix& x) const {
  HORIZON_DCHECK(trained_);
  std::vector<double> out = g_model_.PredictBatch(x);
  for (double& v : out) {
    v = Clamp(std::exp(v), params_.alpha_min, params_.alpha_max);
  }
  return out;
}

template <typename Matrix>
std::vector<double> HawkesPredictor::PredictIncrementBatchImpl(
    const Matrix& x, const std::vector<double>& deltas,
    std::vector<double>* alphas_out) const {
  HORIZON_DCHECK(trained_);
  HORIZON_CHECK_EQ(deltas.size(), x.num_rows());
  const size_t n = x.num_rows();
  const size_t m = f_models_.size();

  // One vectorized-forest pass per model over all rows.
  std::vector<double> alphas = PredictAlphaBatchImpl(x);
  std::vector<std::vector<double>> raw(m);
  for (size_t i = 0; i < m; ++i) raw[i] = f_models_[i].PredictBatch(x);

  std::vector<double> out(n);
  ParallelFor(n, 512, [&](size_t begin, size_t end) {
    std::vector<double> increments(m);
    for (size_t r = begin; r < end; ++r) {
      HORIZON_CHECK_GE(deltas[r], 0.0);
      if (deltas[r] == 0.0) {
        out[r] = 0.0;
        continue;
      }
      for (size_t i = 0; i < m; ++i) {
        increments[i] = std::max(std::expm1(raw[i][r]), 0.0);
      }
      out[r] = CombineIncrement(increments.data(), m, alphas[r], deltas[r]);
    }
  });
  if (alphas_out != nullptr) *alphas_out = std::move(alphas);
  return out;
}

std::vector<double> HawkesPredictor::PredictAlphaBatch(
    const gbdt::DataMatrix& x) const {
  return PredictAlphaBatchImpl(x);
}

std::vector<double> HawkesPredictor::PredictAlphaBatch(
    const gbdt::ExampleBatch& x) const {
  return PredictAlphaBatchImpl(x);
}

std::vector<double> HawkesPredictor::PredictIncrementBatch(
    const gbdt::DataMatrix& x, const std::vector<double>& deltas,
    std::vector<double>* alphas_out) const {
  return PredictIncrementBatchImpl(x, deltas, alphas_out);
}

std::vector<double> HawkesPredictor::PredictIncrementBatch(
    const gbdt::ExampleBatch& x, const std::vector<double>& deltas,
    std::vector<double>* alphas_out) const {
  return PredictIncrementBatchImpl(x, deltas, alphas_out);
}

std::vector<double> HawkesPredictor::PredictIncrementBatch(
    const gbdt::DataMatrix& x, double delta) const {
  return PredictIncrementBatchImpl(x, std::vector<double>(x.num_rows(), delta),
                                   nullptr);
}

std::vector<double> HawkesPredictor::PredictIncrementBatch(
    const gbdt::ExampleBatch& x, double delta) const {
  return PredictIncrementBatchImpl(x, std::vector<double>(x.num_rows(), delta),
                                   nullptr);
}

std::vector<double> HawkesPredictor::PredictCountBatch(
    const gbdt::DataMatrix& x, const std::vector<double>& n_s,
    const std::vector<double>& deltas,
    std::vector<double>* alphas_out) const {
  HORIZON_CHECK_EQ(n_s.size(), x.num_rows());
  std::vector<double> out = PredictIncrementBatchImpl(x, deltas, alphas_out);
  for (size_t i = 0; i < out.size(); ++i) out[i] += n_s[i];
  return out;
}

std::vector<double> HawkesPredictor::PredictCountBatch(
    const gbdt::ExampleBatch& x, const std::vector<double>& n_s,
    const std::vector<double>& deltas,
    std::vector<double>* alphas_out) const {
  HORIZON_CHECK_EQ(n_s.size(), x.num_rows());
  std::vector<double> out = PredictIncrementBatchImpl(x, deltas, alphas_out);
  for (size_t i = 0; i < out.size(); ++i) out[i] += n_s[i];
  return out;
}

std::string HawkesPredictor::Serialize() const {
  HORIZON_CHECK(trained_);
  std::ostringstream os;
  os.precision(17);
  os << "hwk v1\n";
  os << params_.reference_horizons.size() << " "
     << (params_.aggregation == Aggregation::kGeometricMean ? "geo" : "arith") << " "
     << params_.alpha_min << " " << params_.alpha_max << "\n";
  for (double ref : params_.reference_horizons) os << ref << " ";
  os << "\n";
  auto append_model = [&os](const gbdt::GbdtRegressor& model) {
    const std::string blob = model.Serialize();
    os << blob.size() << "\n" << blob;
  };
  for (const auto& f : f_models_) append_model(f);
  append_model(g_model_);
  return os.str();
}

std::string HawkesPredictor::SerializeQuantized() const {
  HORIZON_CHECK(trained_);
  std::ostringstream os;
  os << "qhwk v1\n" << f_models_.size() << "\n";
  const auto append_model = [&os](const gbdt::GbdtRegressor& model) {
    // Over-deep ensembles have no quantized form; an empty section keeps
    // the framing aligned (and byte-stable) either way.
    const std::string blob = model.quantized_forest().compiled()
                                 ? model.quantized_forest().Serialize()
                                 : std::string();
    os << blob.size() << "\n" << blob;
  };
  for (const auto& f : f_models_) append_model(f);
  append_model(g_model_);
  return os.str();
}

bool HawkesPredictor::Deserialize(const std::string& text) {
  // Must be safe on untrusted bytes: counts and sizes are bounded before
  // any allocation, reference horizons must be strictly increasing, and
  // the alpha clamp range must be a valid positive interval, mirroring the
  // constructor's contract.
  constexpr size_t kMaxReferenceHorizons = 64;
  std::istringstream is(text);
  std::string magic, version, agg;
  size_t m = 0;
  double alpha_min = 0.0, alpha_max = 0.0;
  if (!(is >> magic >> version) || magic != "hwk" || version != "v1") return false;
  if (!(is >> m >> agg >> alpha_min >> alpha_max) || m == 0) return false;
  if (m > kMaxReferenceHorizons) return false;
  if (agg != "geo" && agg != "arith") return false;
  if (!std::isfinite(alpha_min) || !std::isfinite(alpha_max) || alpha_min <= 0.0 ||
      alpha_max <= alpha_min) {
    return false;
  }
  std::vector<double> refs(m);
  for (size_t i = 0; i < m; ++i) {
    if (!(is >> refs[i]) || refs[i] <= 0.0 || !std::isfinite(refs[i])) return false;
    if (i > 0 && refs[i] <= refs[i - 1]) return false;
  }
  auto read_model = [&is](gbdt::GbdtRegressor* model) {
    // Model blobs beyond this size cannot come from a legitimately
    // serialized ensemble (the node caps bound the text length).
    constexpr size_t kMaxBlobBytes = 1u << 28;
    size_t size = 0;
    if (!(is >> size) || size == 0 || size > kMaxBlobBytes) return false;
    is.ignore(1);  // the newline after the size
    std::string blob(size, '\0');
    if (!is.read(blob.data(), static_cast<std::streamsize>(size))) return false;
    return model->Deserialize(blob);
  };
  std::vector<gbdt::GbdtRegressor> f_models(m);
  for (auto& f : f_models) {
    if (!read_model(&f)) return false;
  }
  gbdt::GbdtRegressor g_model;
  if (!read_model(&g_model)) return false;

  params_.reference_horizons = std::move(refs);
  params_.aggregation =
      agg == "geo" ? Aggregation::kGeometricMean : Aggregation::kArithmeticMean;
  params_.alpha_min = alpha_min;
  params_.alpha_max = alpha_max;
  f_models_ = std::move(f_models);
  g_model_ = std::move(g_model);
  trained_ = true;
  return true;
}

}  // namespace horizon::core
