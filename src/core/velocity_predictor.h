// Training-free Hawkes predictor -- the alternative Sec. 4 sketches for
// the exponential-kernel model: approximate the stochastic intensity
// lambda(s) by a velocity statistic over the recent event stream, estimate
// the effective growth exponent alpha directly from the observed event
// times (Sec. 3.2.4), and plug both into Proposition 3.2:
//
//   inc(delta) = lambda_hat(s) / alpha_hat * (1 - e^{-alpha_hat delta}).
//
// No model fitting, no features: everything comes from the O(1)-state
// tracker snapshot.  Accuracy is below the learned HWK model (it ignores
// static features entirely and the velocity is a noisy lambda proxy), but
// it works from the very first event of a brand-new item and needs no
// training data -- a useful cold-start / fallback predictor.
#ifndef HORIZON_CORE_VELOCITY_PREDICTOR_H_
#define HORIZON_CORE_VELOCITY_PREDICTOR_H_

#include <cstddef>
#include <vector>

#include "stream/cascade_tracker.h"

namespace horizon::core {

/// Stateless predictor over tracker snapshots.
class VelocityHawkesPredictor {
 public:
  struct Options {
    /// Use the EWMA rate as the velocity (default); otherwise the rate
    /// over sliding window `window_index`.
    bool use_ewma = true;
    size_t window_index = 0;
    /// Clamp range for the alpha estimate (1/s).
    double alpha_min = 1.0 / (365 * 86400.0);
    double alpha_max = 1.0 / 180.0;
  };

  VelocityHawkesPredictor();
  explicit VelocityHawkesPredictor(const Options& options);

  /// lambda(s) proxy from the snapshot's view stream.
  double EstimateIntensity(const stream::TrackerSnapshot& snapshot) const;

  /// Mean-value estimator of alpha from the snapshot's running mean event
  /// age (alpha_hat = 1 / mean event age), clamped.  Returns alpha_max for
  /// empty streams (instant decay: predict nothing).
  double EstimateAlpha(const stream::TrackerSnapshot& snapshot) const;

  /// Predicted view increment over `delta` (may be +inf).
  double PredictIncrement(const stream::TrackerSnapshot& snapshot,
                          double delta) const;

  /// Batch form over many snapshots with per-item horizons
  /// (deltas.size() must equal snapshots.size()).  The predictor is
  /// training-free, so there is no forest to vectorize -- this exists so
  /// serving's batch surface treats both predictor families uniformly.
  /// Bit-identical to per-snapshot PredictIncrement.
  std::vector<double> PredictIncrementBatch(
      const std::vector<stream::TrackerSnapshot>& snapshots,
      const std::vector<double>& deltas) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace horizon::core

#endif  // HORIZON_CORE_VELOCITY_PREDICTOR_H_
