#include "core/trainer.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace horizon::core {

double TrueIncrement(const datagen::Cascade& cascade, double s, double delta) {
  const size_t n_s = cascade.ViewsBefore(s);
  const size_t n_t = std::isinf(delta) ? cascade.TotalViews()
                                       : cascade.ViewsBefore(s + delta);
  return static_cast<double>(n_t - n_s);
}

ExampleSet BuildExampleSet(const datagen::SyntheticDataset& dataset,
                           const std::vector<size_t>& cascade_indices,
                           const features::FeatureExtractor& extractor,
                           const ExampleSetOptions& options) {
  HORIZON_CHECK(!options.reference_horizons.empty());
  HORIZON_CHECK_GT(options.samples_per_cascade, 0);
  HORIZON_CHECK_GT(options.min_prediction_age, 0.0);
  HORIZON_CHECK_GT(options.max_prediction_age, options.min_prediction_age);

  Rng rng(options.seed);
  ExampleSet out;
  out.x = gbdt::DataMatrix(0, 0);
  out.log1p_increments.resize(options.reference_horizons.size());

  const double log_min = std::log(options.min_prediction_age);
  const double log_max = std::log(options.max_prediction_age);

  AlphaEstimatorOptions alpha_options;
  alpha_options.gamma = options.alpha_quantile_gamma;

  for (size_t ci : cascade_indices) {
    HORIZON_CHECK_LT(ci, dataset.cascades.size());
    const datagen::Cascade& cascade = dataset.cascades[ci];
    const datagen::PageProfile& page = dataset.PageOf(cascade.post);

    for (int k = 0; k < options.samples_per_cascade; ++k) {
      const double s = std::exp(rng.Uniform(log_min, log_max));

      const auto snapshot = extractor.ReplaySnapshot(cascade, s);
      out.x.AppendRow(extractor.Extract(page, cascade.post, snapshot));

      for (size_t i = 0; i < options.reference_horizons.size(); ++i) {
        const double inc = TrueIncrement(cascade, s, options.reference_horizons[i]);
        out.log1p_increments[i].push_back(std::log1p(inc));
      }

      // Alpha target from the view times after s.  When nothing is
      // observed after s, fall back to the full cascade; 0 means
      // inestimable (the predictor clamps).
      std::vector<double> view_times;
      view_times.reserve(cascade.views.size());
      for (const auto& e : cascade.views) view_times.push_back(e.time);
      alpha_options.start_time = s;
      double alpha = EstimateAlpha(options.alpha_kind, view_times, alpha_options);
      if (alpha <= 0.0) {
        alpha_options.start_time = 0.0;
        alpha = EstimateAlpha(options.alpha_kind, view_times, alpha_options);
        alpha_options.start_time = s;
      }
      out.alpha_targets.push_back(alpha);

      ExampleRef ref;
      ref.cascade_index = ci;
      ref.prediction_age = s;
      ref.n_s = static_cast<double>(cascade.ViewsBefore(s));
      out.refs.push_back(ref);
    }
  }
  return out;
}

}  // namespace horizon::core
