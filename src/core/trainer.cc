#include "core/trainer.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace horizon::core {

double TrueIncrement(const datagen::Cascade& cascade, double s, double delta) {
  const size_t n_s = cascade.ViewsBefore(s);
  const size_t n_t = std::isinf(delta) ? cascade.TotalViews()
                                       : cascade.ViewsBefore(s + delta);
  return static_cast<double>(n_t - n_s);
}

ExampleSet BuildExampleSet(const datagen::SyntheticDataset& dataset,
                           const std::vector<size_t>& cascade_indices,
                           const features::FeatureExtractor& extractor,
                           const ExampleSetOptions& options) {
  HORIZON_CHECK(!options.reference_horizons.empty());
  HORIZON_CHECK_GT(options.samples_per_cascade, 0);
  HORIZON_CHECK_GT(options.min_prediction_age, 0.0);
  HORIZON_CHECK_GT(options.max_prediction_age, options.min_prediction_age);

  const double log_min = std::log(options.min_prediction_age);
  const double log_max = std::log(options.max_prediction_age);
  const size_t samples = static_cast<size_t>(options.samples_per_cascade);
  const size_t num_examples = cascade_indices.size() * samples;
  const size_t num_horizons = options.reference_horizons.size();

  // Serial pre-pass: draw every prediction time in the original order so
  // the output is bit-identical regardless of how the expensive replay
  // work below is scheduled across threads.
  Rng rng(options.seed);
  std::vector<double> pred_times(num_examples);
  for (size_t e = 0; e < num_examples; ++e) {
    HORIZON_CHECK_LT(cascade_indices[e / samples], dataset.cascades.size());
    pred_times[e] = std::exp(rng.Uniform(log_min, log_max));
  }

  ExampleSet out;
  out.x = gbdt::DataMatrix(num_examples, extractor.schema().size());
  out.log1p_increments.assign(num_horizons, std::vector<double>(num_examples));
  out.alpha_targets.resize(num_examples);
  out.refs.resize(num_examples);

  // Replay + feature extraction + target construction per example; every
  // example writes only its own slots.
  ParallelFor(num_examples, 4, [&](size_t begin, size_t end) {
    AlphaEstimatorOptions alpha_options;
    alpha_options.gamma = options.alpha_quantile_gamma;
    std::vector<double> view_times;
    for (size_t e = begin; e < end; ++e) {
      const size_t ci = cascade_indices[e / samples];
      const datagen::Cascade& cascade = dataset.cascades[ci];
      const datagen::PageProfile& page = dataset.PageOf(cascade.post);
      const double s = pred_times[e];

      const auto snapshot = extractor.ReplaySnapshot(cascade, s);
      extractor.ExtractInto(page, cascade.post, snapshot, out.x.MutableRow(e));

      for (size_t i = 0; i < num_horizons; ++i) {
        const double inc = TrueIncrement(cascade, s, options.reference_horizons[i]);
        out.log1p_increments[i][e] = std::log1p(inc);
      }

      // Alpha target from the view times after s.  When nothing is
      // observed after s, fall back to the full cascade; 0 means
      // inestimable (the predictor clamps).
      view_times.clear();
      view_times.reserve(cascade.views.size());
      for (const auto& e2 : cascade.views) view_times.push_back(e2.time);
      alpha_options.start_time = s;
      double alpha = EstimateAlpha(options.alpha_kind, view_times, alpha_options);
      if (alpha <= 0.0) {
        alpha_options.start_time = 0.0;
        alpha = EstimateAlpha(options.alpha_kind, view_times, alpha_options);
      }
      out.alpha_targets[e] = alpha;

      ExampleRef& ref = out.refs[e];
      ref.cascade_index = ci;
      ref.prediction_age = s;
      ref.n_s = static_cast<double>(cascade.ViewsBefore(s));
    }
  });
  return out;
}

}  // namespace horizon::core
