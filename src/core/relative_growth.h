// Relative-growth prediction (Appendix A.11): will the cascade eventually
// exceed c times its current size?  Threshold rule on the stochastic
// intensity (Eq. 25) plus the Chebyshev-corrected rule of Proposition A.5.
#ifndef HORIZON_CORE_RELATIVE_GROWTH_H_
#define HORIZON_CORE_RELATIVE_GROWTH_H_

namespace horizon::core {

/// Simple threshold rule (Eq. 25): predicts N(+inf) >= c N(s) iff
/// lambda(s) >= (c - 1) alpha N(s).  Requires c > 1, n_s >= 0.
bool PredictRelativeGrowth(double lambda_s, double alpha, double n_s, double c);

/// The correction term chi(N(s)) of Proposition A.5.
/// @param n_s       current count N(s) > 0
/// @param c         growth factor > 1
/// @param sigma_sq  Sigma^2 of Eq. (21)
/// @param delta     failure probability in (0, 1]
double ChiCorrection(double n_s, double c, double sigma_sq, double delta);

/// Chebyshev-corrected rule (Eq. 26): predicts N(+inf) > c N(s) with
/// probability >= 1 - delta iff
///   lambda(s) >= (c - 1 + chi(N(s))) alpha N(s).
bool PredictRelativeGrowthWithConfidence(double lambda_s, double alpha, double n_s,
                                         double c, double sigma_sq, double delta);

}  // namespace horizon::core

#endif  // HORIZON_CORE_RELATIVE_GROWTH_H_
