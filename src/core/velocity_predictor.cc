#include "core/velocity_predictor.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace horizon::core {

VelocityHawkesPredictor::VelocityHawkesPredictor()
    : VelocityHawkesPredictor(Options()) {}

VelocityHawkesPredictor::VelocityHawkesPredictor(const Options& options)
    : options_(options) {
  HORIZON_CHECK_GT(options.alpha_min, 0.0);
  HORIZON_CHECK_GT(options.alpha_max, options.alpha_min);
}

double VelocityHawkesPredictor::EstimateIntensity(
    const stream::TrackerSnapshot& snapshot) const {
  const auto& views = snapshot.views();
  if (options_.use_ewma) return views.ewma_rate;
  HORIZON_CHECK_LT(options_.window_index, views.window_rates.size());
  return views.window_rates[options_.window_index];
}

double VelocityHawkesPredictor::EstimateAlpha(
    const stream::TrackerSnapshot& snapshot) const {
  const auto& views = snapshot.views();
  if (views.total == 0 || views.mean_event_age <= 0.0) return options_.alpha_max;
  return Clamp(1.0 / views.mean_event_age, options_.alpha_min, options_.alpha_max);
}

double VelocityHawkesPredictor::PredictIncrement(
    const stream::TrackerSnapshot& snapshot, double delta) const {
  HORIZON_CHECK_GE(delta, 0.0);
  const double lambda_hat = EstimateIntensity(snapshot);
  if (lambda_hat <= 0.0 || delta == 0.0) return 0.0;
  const double alpha_hat = EstimateAlpha(snapshot);
  const double factor =
      std::isinf(delta) ? 1.0 : -std::expm1(-alpha_hat * delta);
  return lambda_hat / alpha_hat * factor;
}

std::vector<double> VelocityHawkesPredictor::PredictIncrementBatch(
    const std::vector<stream::TrackerSnapshot>& snapshots,
    const std::vector<double>& deltas) const {
  HORIZON_CHECK_EQ(deltas.size(), snapshots.size());
  std::vector<double> out(snapshots.size());
  for (size_t i = 0; i < snapshots.size(); ++i) {
    out[i] = PredictIncrement(snapshots[i], deltas[i]);
  }
  return out;
}

}  // namespace horizon::core
