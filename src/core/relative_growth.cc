#include "core/relative_growth.h"

#include <cmath>

#include "common/check.h"

namespace horizon::core {

bool PredictRelativeGrowth(double lambda_s, double alpha, double n_s, double c) {
  HORIZON_CHECK_GT(c, 1.0);
  HORIZON_CHECK_GT(alpha, 0.0);
  HORIZON_CHECK_GE(n_s, 0.0);
  return lambda_s >= (c - 1.0) * alpha * n_s;
}

double ChiCorrection(double n_s, double c, double sigma_sq, double delta) {
  HORIZON_CHECK_GT(n_s, 0.0);
  HORIZON_CHECK_GT(c, 1.0);
  HORIZON_CHECK_GE(sigma_sq, 0.0);
  HORIZON_CHECK(delta > 0.0 && delta <= 1.0);
  const double a = sigma_sq / (2.0 * delta * n_s);
  return a + std::sqrt(2.0 * (c - 1.0) * a + a * a);
}

bool PredictRelativeGrowthWithConfidence(double lambda_s, double alpha, double n_s,
                                         double c, double sigma_sq, double delta) {
  HORIZON_CHECK_GT(alpha, 0.0);
  const double chi = ChiCorrection(n_s, c, sigma_sq, delta);
  return lambda_s >= (c - 1.0 + chi) * alpha * n_s;
}

}  // namespace horizon::core
