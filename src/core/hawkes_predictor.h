// The paper's prediction model (Sec. 3.2): gradient-boosted point
// predictors of the view-count increment at one or more fixed reference
// horizons delta*_1 < ... < delta*_m, plus a point predictor of the
// effective growth exponent alpha, combined through the exponential-kernel
// Hawkes transfer formula (Eq. 7) to produce predictions for ANY horizon
// delta at ANY prediction time s -- in O(1) time per query with respect to
// the observed cascade size.
#ifndef HORIZON_CORE_HAWKES_PREDICTOR_H_
#define HORIZON_CORE_HAWKES_PREDICTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.h"
#include "gbdt/gbdt.h"

namespace horizon::core {

/// How outputs of multiple reference-horizon predictors are combined
/// (Sec. 3.2.3).
enum class Aggregation {
  kArithmeticMean,
  kGeometricMean,
};
const char* AggregationName(Aggregation aggregation);

/// Model hyper-parameters.
struct HawkesPredictorParams {
  /// Reference horizons delta*_i in seconds, strictly increasing.
  std::vector<double> reference_horizons{1 * kDay};
  Aggregation aggregation = Aggregation::kGeometricMean;
  /// GBDT settings for the count predictors f_i and the alpha predictor g.
  gbdt::GbdtParams gbdt_count;
  gbdt::GbdtParams gbdt_alpha;
  /// Clamp range for predicted alpha (1/s); keeps the transfer formula
  /// well-conditioned.  Defaults span ~3 minutes .. ~1 year characteristic
  /// times.
  double alpha_min = 1.0 / (365 * kDay);
  double alpha_max = 1.0 / (3 * kMinute);
};

/// Trained arbitrary-horizon popularity predictor.
///
/// Training inputs (assembled by core/trainer.h):
///   x                feature matrix (static + O(1) temporal features)
///   log1p_increments log1p(N(s + delta*_i) - N(s)) per example, per i
///   alpha_targets    estimated effective growth exponents per example
class HawkesPredictor {
 public:
  explicit HawkesPredictor(HawkesPredictorParams params = {});

  /// Fits the m count predictors and the alpha predictor.
  void Fit(const gbdt::DataMatrix& x,
           const std::vector<std::vector<double>>& log1p_increments,
           const std::vector<double>& alpha_targets);

  /// Predicted expected increment N(s+delta) - N(s) for one feature row.
  /// O(num_trees * depth) -- constant in cascade size.
  double PredictIncrement(const float* row, double delta) const;

  /// Predicted total count N(s+delta) given the observed count N(s).
  double PredictCount(const float* row, double n_s, double delta) const;

  /// Predicted effective growth exponent alpha_hat (clamped).
  double PredictAlpha(const float* row) const;

  // --- Batch inference -------------------------------------------------
  // Each batch call feeds all rows through the compiled vectorized
  // forests (runtime-dispatched scalar/SSE/AVX2 blocked kernels) in one
  // pass per model, then applies the transfer formula per row.  Results
  // are bit-identical to the per-row calls above.  Every method takes
  // either a row-major DataMatrix or a column-major ExampleBatch -- the
  // SoA layout the feature extractor fills in place, which reaches the
  // SIMD kernels without transposition.

  /// Predicted alpha_hat for every row of `x`.
  std::vector<double> PredictAlphaBatch(const gbdt::DataMatrix& x) const;
  std::vector<double> PredictAlphaBatch(const gbdt::ExampleBatch& x) const;

  /// Predicted increments, one per row; deltas.size() must equal
  /// x.num_rows().  When `alphas_out` is non-null it receives the per-row
  /// alpha_hat values the transfer formula used -- the alpha forest is
  /// walked once either way, so callers that need both should pass it
  /// rather than calling PredictAlphaBatch separately.
  std::vector<double> PredictIncrementBatch(
      const gbdt::DataMatrix& x, const std::vector<double>& deltas,
      std::vector<double>* alphas_out = nullptr) const;
  std::vector<double> PredictIncrementBatch(
      const gbdt::ExampleBatch& x, const std::vector<double>& deltas,
      std::vector<double>* alphas_out = nullptr) const;

  /// Predicted increments over a single shared horizon.
  std::vector<double> PredictIncrementBatch(const gbdt::DataMatrix& x,
                                            double delta) const;
  std::vector<double> PredictIncrementBatch(const gbdt::ExampleBatch& x,
                                            double delta) const;

  /// Predicted total counts: n_s[i] + increment for row i over deltas[i].
  /// `alphas_out` as in PredictIncrementBatch.
  std::vector<double> PredictCountBatch(
      const gbdt::DataMatrix& x, const std::vector<double>& n_s,
      const std::vector<double>& deltas,
      std::vector<double>* alphas_out = nullptr) const;
  std::vector<double> PredictCountBatch(
      const gbdt::ExampleBatch& x, const std::vector<double>& n_s,
      const std::vector<double>& deltas,
      std::vector<double>* alphas_out = nullptr) const;

  /// Predicted increment over an infinite horizon: lim_{delta->inf}.
  double PredictFinalIncrement(const float* row) const;

  /// Serializes the whole trained model (all count predictors, the alpha
  /// predictor, and the transfer-formula parameters) to a portable ASCII
  /// string; restorable with Deserialize.
  std::string Serialize() const;
  /// Restores a model serialized by Serialize.  Returns false on parse
  /// failure (model state is then unspecified but safe to destroy or
  /// re-Deserialize).
  bool Deserialize(const std::string& text);

  /// Serializes the quantized companions of every forest (count models
  /// then the alpha model, "qhwk v1" framing).  Deterministic for a given
  /// trained model -- Deserialize recompiles identical quantized forests,
  /// so checkpoint restore verifies this blob by byte equality.  A model
  /// whose blocked form did not compile contributes an empty section.
  std::string SerializeQuantized() const;

  bool trained() const { return trained_; }
  size_t num_reference_horizons() const { return params_.reference_horizons.size(); }
  const HawkesPredictorParams& params() const { return params_; }
  const gbdt::GbdtRegressor& count_model(size_t i) const { return f_models_[i]; }
  const gbdt::GbdtRegressor& alpha_model() const { return g_model_; }

 private:
  /// Combines the m reference predictions into the increment for `delta`
  /// using the transfer formula and the configured aggregation.
  double CombineIncrement(const double* increments_at_refs, size_t m,
                          double alpha_hat, double delta) const;

  // Layout-generic batch implementations (DataMatrix / ExampleBatch).
  template <typename Matrix>
  std::vector<double> PredictAlphaBatchImpl(const Matrix& x) const;
  template <typename Matrix>
  std::vector<double> PredictIncrementBatchImpl(
      const Matrix& x, const std::vector<double>& deltas,
      std::vector<double>* alphas_out) const;

  HawkesPredictorParams params_;
  bool trained_ = false;
  std::vector<gbdt::GbdtRegressor> f_models_;
  gbdt::GbdtRegressor g_model_;
};

}  // namespace horizon::core

#endif  // HORIZON_CORE_HAWKES_PREDICTOR_H_
