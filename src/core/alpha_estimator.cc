#include "core/alpha_estimator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace horizon::core {

const char* AlphaEstimatorKindName(AlphaEstimatorKind kind) {
  switch (kind) {
    case AlphaEstimatorKind::kMeanValue: return "mean";
    case AlphaEstimatorKind::kQuantileValue: return "quantile";
  }
  return "unknown";
}

namespace {

// First index with time > start (times sorted ascending).
size_t FirstAfter(const std::vector<double>& times, double start) {
  return static_cast<size_t>(
      std::upper_bound(times.begin(), times.end(), start) - times.begin());
}

}  // namespace

double MeanAlphaEstimate(const std::vector<double>& event_times,
                         const AlphaEstimatorOptions& options) {
  const size_t begin = FirstAfter(event_times, options.start_time);
  const size_t n = event_times.size() - begin;
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = begin; i < event_times.size(); ++i) {
    sum += event_times[i] - options.start_time;
  }
  if (sum <= 0.0) return 0.0;
  return static_cast<double>(n) / sum;
}

double QuantileAlphaEstimate(const std::vector<double>& event_times,
                             const AlphaEstimatorOptions& options) {
  HORIZON_CHECK(options.gamma > 0.0 && options.gamma < 1.0);
  const size_t begin = FirstAfter(event_times, options.start_time);
  const size_t n = event_times.size() - begin;
  if (n == 0) return 0.0;
  // T_gamma = inf{t : N(t) >= gamma N(inf)}: the ceil(gamma n)-th event.
  const size_t k = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(options.gamma * static_cast<double>(n))));
  const double t_gamma = event_times[begin + k - 1] - options.start_time;
  if (t_gamma <= 0.0) return 0.0;
  const double c_gamma =
      options.include_log_factor ? std::log(1.0 / (1.0 - options.gamma)) : 1.0;
  return c_gamma / t_gamma;
}

double EstimateAlpha(AlphaEstimatorKind kind, const std::vector<double>& event_times,
                     const AlphaEstimatorOptions& options) {
  switch (kind) {
    case AlphaEstimatorKind::kMeanValue:
      return MeanAlphaEstimate(event_times, options);
    case AlphaEstimatorKind::kQuantileValue:
      return QuantileAlphaEstimate(event_times, options);
  }
  return 0.0;
}

}  // namespace horizon::core
