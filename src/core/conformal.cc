#include "core/conformal.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace horizon::core {

ConformalCalibrator::ConformalCalibrator() : ConformalCalibrator(Options()) {}

ConformalCalibrator::ConformalCalibrator(const Options& options)
    : options_(options) {
  HORIZON_CHECK(!options_.horizon_bucket_edges.empty());
  for (size_t i = 1; i < options_.horizon_bucket_edges.size(); ++i) {
    HORIZON_CHECK_GT(options_.horizon_bucket_edges[i],
                     options_.horizon_bucket_edges[i - 1]);
  }
  bucket_residuals_.resize(options_.horizon_bucket_edges.size());
}

void ConformalCalibrator::Calibrate(const std::vector<double>& predicted_increments,
                                    const std::vector<double>& true_increments,
                                    const std::vector<double>& horizons) {
  HORIZON_CHECK_EQ(predicted_increments.size(), true_increments.size());
  HORIZON_CHECK_EQ(predicted_increments.size(), horizons.size());
  HORIZON_CHECK_GT(predicted_increments.size(), 0u);

  for (auto& bucket : bucket_residuals_) bucket.clear();
  pooled_.clear();

  const auto& edges = options_.horizon_bucket_edges;
  for (size_t i = 0; i < predicted_increments.size(); ++i) {
    const double r = std::log1p(std::max(true_increments[i], 0.0)) -
                     std::log1p(std::max(predicted_increments[i], 0.0));
    const size_t bucket = static_cast<size_t>(
        std::upper_bound(edges.begin(), edges.end(), horizons[i]) - edges.begin());
    bucket_residuals_[std::min(bucket, edges.size() - 1)].push_back(r);
    pooled_.push_back(r);
  }
  for (auto& bucket : bucket_residuals_) std::sort(bucket.begin(), bucket.end());
  std::sort(pooled_.begin(), pooled_.end());
}

const std::vector<double>& ConformalCalibrator::ResidualsFor(double horizon) const {
  const auto& edges = options_.horizon_bucket_edges;
  const size_t bucket = std::min(
      static_cast<size_t>(std::upper_bound(edges.begin(), edges.end(), horizon) -
                          edges.begin()),
      edges.size() - 1);
  const auto& residuals = bucket_residuals_[bucket];
  return residuals.size() >= options_.min_bucket_size ? residuals : pooled_;
}

size_t ConformalCalibrator::BucketSize(double horizon) const {
  return ResidualsFor(horizon).size();
}

PredictionInterval ConformalCalibrator::IntervalFor(double predicted_increment,
                                                    double horizon,
                                                    double miscoverage) const {
  HORIZON_CHECK(calibrated());
  HORIZON_CHECK(miscoverage > 0.0 && miscoverage < 1.0);
  const std::vector<double>& residuals = ResidualsFor(horizon);
  const auto n = static_cast<double>(residuals.size());

  // Conformal rank adjustment: the (1 - a)-quantile uses rank
  // ceil((n + 1)(1 - a)), clamped to the sample.
  auto adjusted_quantile = [&](double level) {
    const double rank = std::ceil((n + 1.0) * level);
    const size_t idx = static_cast<size_t>(
        Clamp(rank - 1.0, 0.0, n - 1.0));
    return residuals[idx];
  };
  const double r_lo = adjusted_quantile(miscoverage / 2.0);
  const double r_hi = adjusted_quantile(1.0 - miscoverage / 2.0);

  const double center = std::log1p(std::max(predicted_increment, 0.0));
  PredictionInterval interval;
  interval.lo = std::max(std::expm1(center + r_lo), 0.0);
  interval.hi = std::max(std::expm1(center + r_hi), 0.0);
  return interval;
}

}  // namespace horizon::core
