// Bounded per-shard ingest queue: backpressure policy, drain barriers
// and stall accounting on top of the lock-free common/mpsc_queue.h ring.
//
// Producers (Ingest / IngestBatch callers) push accepted events; one
// applier thread per shard drains them in group commits.  The wrapper
// adds exactly the policy the raw ring refuses to have:
//
//   * Backpressure: kBlock parks the producer until the applier frees
//     space (the service default -- no event accepted is ever dropped for
//     capacity); kReject fails fast with kResourceExhausted so the caller
//     can shed load.  Either way every full-queue encounter increments a
//     stall counter, so flash crowds concentrating on one shard (the HIP
//     self-excitation burst pattern) are visible in the scrape, not
//     silent.
//   * Drain barrier: WaitConsumed(target) blocks until the applier has
//     consumed at least `target` events -- the building block for
//     PredictionService::Flush and the checkpoint/retire/restore drain
//     barriers.
//   * Wakeups: producers and the applier sleep on eventcount-style
//     flag+condvar pairs.  A timed wait (1ms) backs the fast-path flag so
//     a lost race costs bounded latency, never a hang.
//
// "Consumed" counts events handed to the applier (applied or dropped);
// "pushed" counts events accepted.  consumed == pushed  <=>  the queue is
// drained and every accepted event has been applied or accounted as
// dropped -- the linearization barrier DST leans on.
#ifndef HORIZON_SERVING_INGEST_QUEUE_H_
#define HORIZON_SERVING_INGEST_QUEUE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/annotations.h"
#include "common/mpsc_queue.h"
#include "common/status.h"
#include "stream/cascade_tracker.h"

namespace horizon::serving {

/// One accepted-but-not-yet-applied engagement event.
struct QueuedEvent {
  int64_t item_id = 0;
  stream::EngagementType type = stream::EngagementType::kView;
  double time = 0.0;
  /// Steady-clock nanoseconds at enqueue for 1-in-64 sampled events;
  /// 0 means unsampled.  The applier turns it into the apply-lag
  /// histogram.
  uint64_t enqueue_ns = 0;
};

/// What a producer should do when the ring is full.
enum class BackpressurePolicy {
  kBlock = 0,  ///< park until the applier frees space (never drops)
  kReject,     ///< fail fast with kResourceExhausted
};

class IngestQueue {
 public:
  IngestQueue(size_t capacity, BackpressurePolicy policy);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  size_t capacity() const { return ring_.capacity(); }

  /// Producer side.  kOk when accepted; kResourceExhausted only under
  /// kReject.  Under kBlock a full ring parks the caller (it still
  /// returns kOk eventually).  Returns kResourceExhausted under either
  /// policy once Stop() has been called.
  Status Push(const QueuedEvent& event);

  /// Consumer side (single applier thread): drains up to `max` events
  /// into `out` (appended) and wakes parked producers.  Returns the
  /// number drained.
  // horizon-lint: allow(serving-status) -- count-returning drain helper:
  // 0 is "nothing queued", there is no failure mode.
  size_t PopBatch(std::vector<QueuedEvent>* out, size_t max);

  /// Consumer side: parks until the ring is non-empty or Stop() was
  /// called.  Returns false when stopped AND drained (applier may exit).
  // horizon-lint: allow(serving-status) -- the bool IS the protocol
  // ("keep draining?"); waiting cannot fail.
  bool WaitForEvents();

  /// Applier accounting: call after the popped events have been applied
  /// (under the shard lock).  Wakes WaitConsumed barriers.
  // horizon-lint: allow(serving-status) -- infallible counter bump +
  // notify; nothing to report.
  void MarkConsumed(uint64_t n);

  /// Blocks until consumed() >= target.  `target` is usually a pushed()
  /// snapshot: "everything accepted before now has been applied".  Const:
  /// it is a pure barrier (Checkpoint, a const method, drains through it).
  void WaitConsumed(uint64_t target) const;

  /// Asks the applier to exit once drained and unparks everyone.
  // horizon-lint: allow(serving-status) -- idempotent shutdown signal;
  // it cannot fail.
  void Stop();
  // order: acquire pairs with the release store in Stop(); whatever
  // preceded the shutdown signal is visible to observers of it.
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  uint64_t pushed() const { return ring_.pushed(); }
  // order: acquire pairs with the release fetch_add in MarkConsumed so
  // a reader that sees count >= N also sees the applied state of the
  // first N events.
  uint64_t consumed() const { return consumed_.load(std::memory_order_acquire); }
  size_t SizeApprox() const { return ring_.SizeApprox(); }

  /// Full-queue encounters (one per Push that found the ring full, both
  /// policies).  Monotone.
  uint64_t backpressure_events() const {
    // order: relaxed; statistics counter paired with the relaxed
    // fetch_add in Push -- no payload rides on it.
    return backpressure_.load(std::memory_order_relaxed);
  }

 private:
  MpscQueue<QueuedEvent> ring_;
  const BackpressurePolicy policy_;

  std::atomic<uint64_t> consumed_{0};
  std::atomic<uint64_t> backpressure_{0};
  std::atomic<bool> stopped_{false};

  // Eventcount flags: set (seq_cst) before re-checking the condition,
  // checked (seq_cst) by the other side after changing it.  The timed
  // waits bound the damage of any missed notify.
  std::atomic<bool> consumer_waiting_{false};
  std::atomic<bool> producer_waiting_{false};

  mutable Mutex mu_;
  CondVar consumer_cv_;          // signaled by producers on push / Stop
  CondVar producer_cv_;          // signaled by the applier on space / Stop
  mutable CondVar consumed_cv_;  // signaled by MarkConsumed / Stop
};

}  // namespace horizon::serving

#endif  // HORIZON_SERVING_INGEST_QUEUE_H_
