// Epoch-based reclamation for read-mostly snapshots.
//
// The async ingest path publishes an immutable `ShardView` per group
// commit; queries read the current view without taking any lock.  The
// view that was replaced cannot be freed while a reader may still hold
// it -- that is this domain's job.
//
// Protocol (all epoch atomics are seq_cst; the proof below leans on the
// single total order S that seq_cst provides):
//
//   * Readers: EpochGuard claims a reader slot (CAS 0 -> current epoch),
//     then loads whatever pointers it wants, then releases the slot
//     (store 0) on destruction.  The slot claim precedes every pointer
//     load in program order.
//   * Writers: publish the replacement pointer (seq_cst store), then
//     Retire() the old pointer (records the current epoch), then
//     Advance() -- bump the global epoch and free every retired node
//     whose epoch is below the minimum epoch held by any active slot
//     (minimum = +inf when no slot is active).
//
// Safety argument: suppose a retired node N (replaced by store P, retired
// at epoch e) is freed by a writer whose slot scan saw no active slot
// with value <= e.  Any reader that dereferences N must have loaded the
// pre-P pointer value, and its slot claim precedes that load in S.  If
// the claim preceded the scan in S, the scan would have observed the slot
// active with value <= e (slot values only exceed e after the Advance
// that follows N's retirement) and not freed N.  So the claim follows the
// scan in S; but the scan follows P in S (program order of the writer),
// so the reader's pointer load follows P in S and seq_cst coherence
// forbids it from returning the stale pre-P value.  Contradiction --
// readers of N always hold a slot the scan can see.  Stale slot values
// only ever *delay* reclamation (the minimum is conservative), never
// enable a premature free.
//
// The happens-before edge TSan needs for the free itself comes from the
// slot release-store (or the release sequence continued through later
// CAS claims of the same slot) being read by the freeing writer's scan.
#ifndef HORIZON_SERVING_EPOCH_H_
#define HORIZON_SERVING_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace horizon::serving {

class EpochDomain {
 public:
  /// Upper bound on concurrent readers; Enter() spins (yielding) when all
  /// slots are taken, so exceeding it is a throughput bug, not a crash.
  static constexpr size_t kReaderSlots = 64;

  EpochDomain();
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Hands `p` to the domain; `deleter(p)` runs once no reader that could
  /// have seen `p` remains.  Writer-side (takes the retire mutex).
  // horizon-lint: allow(serving-status) -- infallible by contract: taking
  // ownership of a pointer cannot fail.
  void Retire(void* p, void (*deleter)(void*));

  /// Bumps the global epoch and frees every retired node proven
  /// unreachable.  Writers call this once per publication.
  // horizon-lint: allow(serving-status) -- infallible reclamation tick;
  // deferred nodes are retried on the next Advance.
  void Advance();

  /// Frees everything still retired.  Caller must guarantee no concurrent
  /// readers or writers (service destructor).
  // horizon-lint: allow(serving-status) -- destructor-path cleanup,
  // nothing can fail or be reported.
  void DrainAll();

  /// Number of retired-but-not-yet-freed nodes (test hook).
  size_t RetiredApprox() const;

 private:
  friend class EpochGuard;

  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{0};  // 0 = inactive
  };

  size_t Enter();           // returns the claimed slot index
  void Exit(size_t slot);

  uint64_t MinActiveEpoch() const;

  std::atomic<uint64_t> global_epoch_{1};  // starts above the 0 sentinel
  std::vector<Slot> slots_;

  struct Retired {
    void* p;
    void (*deleter)(void*);
    uint64_t epoch;
  };
  mutable Mutex retire_mu_;
  std::vector<Retired> retired_ HORIZON_GUARDED_BY(retire_mu_);
};

/// RAII reader critical section.  Cheap: one CAS to claim a slot, one
/// store to release it.  Pointers loaded while the guard is alive stay
/// valid until the guard is destroyed.
class EpochGuard {
 public:
  // horizon-lint: allow(serving-status) -- RAII constructor; acquisition
  // spins until a slot frees, it never fails.
  explicit EpochGuard(EpochDomain& domain)
      : domain_(domain), slot_(domain.Enter()) {}
  ~EpochGuard() { domain_.Exit(slot_); }

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain& domain_;
  size_t slot_;
};

}  // namespace horizon::serving

#endif  // HORIZON_SERVING_EPOCH_H_
