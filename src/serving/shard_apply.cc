// The one translation unit allowed to mutate Shard item state (enforced
// by tools/horizon_lint.py rule `shard-mutation`).  Everything here runs
// under the shard mutex; the copy-on-write rule in ApplyEvents is what
// keeps published ShardViews frozen without copying untouched items.

#include "serving/shard.h"

#include <utility>

namespace horizon::serving {

bool ApplyRegister(Shard& shard, int64_t id, Item item) {
  return shard.items
      .try_emplace(id, std::make_shared<Item>(std::move(item)))
      .second;
}

size_t ApplyEvents(Shard& shard, const QueuedEvent* events, size_t n,
                   size_t* dropped) {
  size_t applied = 0;
  for (size_t i = 0; i < n; ++i) {
    const QueuedEvent& e = events[i];
    const auto it = shard.items.find(e.item_id);
    if (it == shard.items.end()) {
      ++*dropped;
      continue;
    }
    std::shared_ptr<Item>& ptr = it->second;
    // use_count == 1 means the canonical map is the sole owner: no
    // published view (and no reader that copied one) can see the item,
    // so mutate in place.  Sync mode never builds views, so it always
    // takes this branch.
    if (ptr.use_count() > 1) {
      ptr = std::make_shared<Item>(*ptr);
    }
    ptr->tracker.Observe(e.type, e.time);
    ++applied;
  }
  return applied;
}

size_t ApplyRetireSweep(Shard& shard,
                        const std::function<bool(const Item&)>& dead) {
  size_t retired = 0;
  for (auto it = shard.items.begin(); it != shard.items.end();) {
    if (dead(*it->second)) {
      it = shard.items.erase(it);
      ++retired;
    } else {
      ++it;
    }
  }
  return retired;
}

void ApplyClear(Shard& shard) { shard.items.clear(); }

void ApplyInsert(Shard& shard, int64_t id, Item item) {
  shard.items.insert_or_assign(id, std::make_shared<Item>(std::move(item)));
}

void PublishView(Shard& shard, EpochDomain& epochs) {
  // horizon-lint: allow(naked-new) -- ownership passes to the EpochDomain, which deletes the view after the reader grace period
  auto* next = new ShardView{shard.items};  // pointer copies only
  // order: seq_cst publication; readers load shard.view with seq_cst
  // inside an EpochGuard, and the reclamation proof needs this exchange
  // totally ordered against EpochDomain::Enter/Retire (epoch.cc).
  const ShardView* prev = shard.view.exchange(next, std::memory_order_seq_cst);
  if (prev != nullptr) {
    epochs.Retire(const_cast<ShardView*>(prev),
                  // horizon-lint: allow(naked-new) -- the type-erased deleter the EpochDomain runs after the grace period; the RAII owner is the domain itself
                  [](void* p) { delete static_cast<ShardView*>(p); });
  }
  epochs.Advance();
}

}  // namespace horizon::serving
