#include "serving/epoch.h"

#include <functional>
#include <limits>

#include "common/check.h"

namespace horizon::serving {

EpochDomain::EpochDomain() : slots_(kReaderSlots) {}

EpochDomain::~EpochDomain() { DrainAll(); }

size_t EpochDomain::Enter() {
  // Spread threads across slots so two concurrent readers rarely CAS the
  // same cache line; fall back to a linear probe, then to yielding when
  // every slot is held.
  const size_t start =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % slots_.size();
  for (;;) {
    const uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
    for (size_t i = 0; i < slots_.size(); ++i) {
      const size_t idx = (start + i) % slots_.size();
      uint64_t expected = 0;
      if (slots_[idx].epoch.compare_exchange_strong(
              expected, epoch, std::memory_order_seq_cst)) {
        return idx;
      }
    }
    std::this_thread::yield();
  }
}

void EpochDomain::Exit(size_t slot) {
  slots_[slot].epoch.store(0, std::memory_order_seq_cst);
}

uint64_t EpochDomain::MinActiveEpoch() const {
  uint64_t min = std::numeric_limits<uint64_t>::max();
  for (const Slot& s : slots_) {
    const uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min) min = e;
  }
  return min;
}

void EpochDomain::Retire(void* p, void (*deleter)(void*)) {
  const uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
  MutexLock lock(retire_mu_);
  retired_.push_back(Retired{p, deleter, epoch});
}

void EpochDomain::Advance() {
  global_epoch_.fetch_add(1, std::memory_order_seq_cst);

  // Collect the frees under the mutex, run them outside it.
  std::vector<Retired> free_now;
  {
    MutexLock lock(retire_mu_);
    if (retired_.empty()) return;
    const uint64_t min_active = MinActiveEpoch();
    size_t kept = 0;
    for (Retired& r : retired_) {
      if (r.epoch < min_active) {
        free_now.push_back(r);
      } else {
        retired_[kept++] = r;
      }
    }
    retired_.resize(kept);
  }
  for (const Retired& r : free_now) r.deleter(r.p);
}

void EpochDomain::DrainAll() {
  std::vector<Retired> free_now;
  {
    MutexLock lock(retire_mu_);
    free_now.swap(retired_);
  }
  for (const Retired& r : free_now) r.deleter(r.p);
}

size_t EpochDomain::RetiredApprox() const {
  MutexLock lock(retire_mu_);
  return retired_.size();
}

}  // namespace horizon::serving
