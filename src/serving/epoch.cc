#include "serving/epoch.h"

#include <functional>
#include <limits>

#include "common/check.h"

namespace horizon::serving {

EpochDomain::EpochDomain() : slots_(kReaderSlots) {}

EpochDomain::~EpochDomain() { DrainAll(); }

size_t EpochDomain::Enter() {
  // Spread threads across slots so two concurrent readers rarely CAS the
  // same cache line; fall back to a linear probe, then to yielding when
  // every slot is held.
  const size_t start =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % slots_.size();
  for (;;) {
    // order: seq_cst; the reclamation proof (epoch.h header comment)
    // needs one total order across this load, the slot CAS below, and
    // the writers' Advance/Retire seq_cst ops -- acquire/release alone
    // would allow a reader to publish a slot epoch that Retire's
    // MinActiveEpoch scan never observes.
    const uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
    for (size_t i = 0; i < slots_.size(); ++i) {
      const size_t idx = (start + i) % slots_.size();
      uint64_t expected = 0;
      // order: seq_cst slot claim; pairs with the seq_cst scan in
      // MinActiveEpoch so an Advance() that follows the claim in the
      // total order cannot miss this reader.
      if (slots_[idx].epoch.compare_exchange_strong(
              expected, epoch, std::memory_order_seq_cst)) {
        return idx;
      }
    }
    std::this_thread::yield();
  }
}

void EpochDomain::Exit(size_t slot) {
  // order: seq_cst release of the slot; pairs with the seq_cst scan in
  // MinActiveEpoch -- all reads the guard protected happen-before the
  // store, so a scan that sees slot==0 may free the old view.
  slots_[slot].epoch.store(0, std::memory_order_seq_cst);
}

uint64_t EpochDomain::MinActiveEpoch() const {
  uint64_t min = std::numeric_limits<uint64_t>::max();
  for (const Slot& s : slots_) {
    // order: seq_cst pairs with the slot CAS in Enter and the zeroing
    // store in Exit; part of the single total order the reclamation
    // proof relies on.
    const uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e != 0 && e < min) min = e;
  }
  return min;
}

void EpochDomain::Retire(void* p, void (*deleter)(void*)) {
  // order: seq_cst; the retirement must be stamped with an epoch no
  // older than any concurrent reader's Enter() observed, which only
  // the global total order (with Enter's seq_cst load) guarantees.
  const uint64_t epoch = global_epoch_.load(std::memory_order_seq_cst);
  MutexLock lock(retire_mu_);
  retired_.push_back(Retired{p, deleter, epoch});
}

void EpochDomain::Advance() {
  // order: seq_cst; the epoch bump must be totally ordered against
  // every Enter() load so late readers observe the new epoch and the
  // MinActiveEpoch scan below cannot race past them.
  global_epoch_.fetch_add(1, std::memory_order_seq_cst);

  // Collect the frees under the mutex, run them outside it.
  std::vector<Retired> free_now;
  {
    MutexLock lock(retire_mu_);
    if (retired_.empty()) return;
    const uint64_t min_active = MinActiveEpoch();
    size_t kept = 0;
    for (Retired& r : retired_) {
      if (r.epoch < min_active) {
        free_now.push_back(r);
      } else {
        retired_[kept++] = r;
      }
    }
    retired_.resize(kept);
  }
  for (const Retired& r : free_now) r.deleter(r.p);
}

void EpochDomain::DrainAll() {
  std::vector<Retired> free_now;
  {
    MutexLock lock(retire_mu_);
    free_now.swap(retired_);
  }
  for (const Retired& r : free_now) r.deleter(r.p);
}

size_t EpochDomain::RetiredApprox() const {
  MutexLock lock(retire_mu_);
  return retired_.size();
}

}  // namespace horizon::serving
