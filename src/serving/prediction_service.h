// Multi-item prediction service: the deployment shape the paper targets
// (Sec. 1: real-time popularity prediction "at planetary scale").
//
// The service owns one O(1)-state CascadeTracker per live content item,
// ingests the interleaved engagement-event stream, and answers popularity
// queries for any (prediction time, horizon) pair using a trained
// HawkesPredictor.  Idle items are retired either by inactivity age or by
// the model's cascade-death probability (Appendix A.14 closed form), so
// resident state stays proportional to the number of *live* items.
//
// Concurrency: the service is internally synchronized.  Item state is
// partitioned into `num_shards` shards keyed by a mixed hash of the item
// id; each shard has its own mutex and tracker map, so Ingest/Query from
// different threads contend only when they hit the same shard.  Model
// inference (feature extraction + flat-forest walks) always runs OUTSIDE
// the shard locks, against an immutable tracker snapshot.  Counters are
// atomics; stats() returns a coherent-enough snapshot of them.
#ifndef HORIZON_SERVING_PREDICTION_SERVICE_H_
#define HORIZON_SERVING_PREDICTION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/hawkes_predictor.h"
#include "datagen/profiles.h"
#include "features/extractor.h"
#include "stream/cascade_tracker.h"

namespace horizon::serving {

/// Service configuration.
struct ServiceConfig {
  stream::TrackerConfig tracker;
  /// Items with no engagement for this long are retired by RetireIdle.
  double idle_retirement_age = 14 * kDay;
  /// Items whose probability of any further view (per the decaying
  /// intensity proxy) falls below this are retired eagerly.
  double death_probability_threshold = 0.99;
  /// Number of item shards (>= 1).  More shards mean less lock contention
  /// at slightly more memory; the default suits up to ~32 serving threads.
  int num_shards = 16;
};

/// One answered query.
struct PredictionResult {
  double observed_views = 0.0;    ///< N(s)
  double predicted_views = 0.0;   ///< predicted N(s + delta)
  double alpha = 0.0;             ///< predicted effective growth exponent
};

/// Aggregate service counters (a stats() snapshot).
struct ServiceStats {
  uint64_t items_registered = 0;
  uint64_t events_ingested = 0;
  uint64_t queries_answered = 0;
  uint64_t items_retired = 0;
};

/// One engagement event of an IngestBatch.
struct IngestEvent {
  int64_t item_id = 0;
  stream::EngagementType type = stream::EngagementType::kView;
  double time = 0.0;
};

/// Thread-safe sharded prediction service.  All public methods may be
/// called concurrently from any number of threads; per-item event times
/// must still be non-decreasing (the tracker's contract).
class PredictionService {
 public:
  /// The model and extractor must outlive the service.  The extractor's
  /// tracker configuration must match `config.tracker`.
  PredictionService(const core::HawkesPredictor* model,
                    const features::FeatureExtractor* extractor,
                    const ServiceConfig& config);

  /// Registers a new content item.  Returns false if the id is taken.
  bool RegisterItem(int64_t item_id, double creation_time,
                    const datagen::PageProfile& page,
                    const datagen::PostProfile& post);

  bool HasItem(int64_t item_id) const;
  size_t LiveItems() const { return live_items_.load(std::memory_order_relaxed); }

  /// Ingests one engagement event.  Returns false for unknown items
  /// (events for retired items are dropped, which is the intended
  /// behavior for late stragglers).
  bool Ingest(int64_t item_id, stream::EngagementType type, double t);

  /// Ingests a batch of events: events are grouped by shard, each shard is
  /// locked once, and shards are processed in parallel.  Relative order of
  /// a given item's events is preserved.  Returns the number ingested
  /// (unknown items are dropped, as in Ingest).
  size_t IngestBatch(const std::vector<IngestEvent>& events);

  /// Predicted popularity of an item at time `s` over horizon `delta`.
  /// Returns nullopt for unknown items and for items whose creation time
  /// is after `s` (not yet live); TopK likewise skips not-yet-live items.
  std::optional<PredictionResult> Query(int64_t item_id, double s,
                                        double delta) const;

  /// The k live items with the largest predicted view increment over
  /// `delta` as of time `s` (the moderation-queue primitive), as
  /// (item_id, predicted increment), sorted descending.  Shards are
  /// scanned in parallel (snapshots under the shard lock, batch inference
  /// outside it) and their per-shard heaps reduced at the end.
  std::vector<std::pair<int64_t, double>> TopK(double s, double delta,
                                               size_t k) const;

  /// Retires items that are idle (no event for idle_retirement_age) or
  /// whose death probability exceeds the configured threshold at `now`.
  /// Returns the number retired.
  size_t RetireDeadItems(double now);

  /// Coherent snapshot of the service counters.
  ServiceStats stats() const;

  // --- Crash-safe persistence -------------------------------------------
  // Checkpoint layout under `dir`:
  //   CURRENT            -> name of the last committed checkpoint directory
  //   ckpt-<epoch>/      -> MANIFEST, model.hwk, shard-NNNN files
  // Every file is CRC32-framed and written atomically (temp -> fsync ->
  // rename); the CURRENT pointer update is the commit point.  A crash at
  // any write/fsync/rename therefore leaves the previous checkpoint fully
  // intact, and Restore never loads a torn file (the CRCs reject it).

  /// Writes a consistent snapshot of every live tracker, the item
  /// profiles, the model, and the service counters.  Shards are
  /// snapshotted under their own locks and serialized/written outside
  /// them, so concurrent Ingest/Query keep running during a checkpoint.
  /// Returns false on any IO failure (the previous checkpoint survives).
  bool Checkpoint(const std::string& dir) const;

  /// Restores the checkpoint committed under `dir`.  Verifies the CRC of
  /// every file, that this service uses the same model (bit-identical
  /// serialization), and the same tracker configuration; on any mismatch
  /// or corruption returns false WITHOUT modifying the service.  On
  /// success replaces all live items and counters, and subsequent
  /// predictions are bit-identical to the checkpointed service's.
  bool Restore(const std::string& dir);

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct Item {
    stream::CascadeTracker tracker;
    datagen::PageProfile page;
    datagen::PostProfile post;
  };

  /// One lock domain: a mutex plus the items hashed to it.
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<int64_t, Item> items;
  };

  size_t ShardOf(int64_t item_id) const;

  /// Per-shard TopK candidates: ids plus snapshotted feature rows.
  std::vector<std::pair<int64_t, double>> ShardTopK(const Shard& shard, double s,
                                                    double delta, size_t k) const;

  const core::HawkesPredictor* model_;
  const features::FeatureExtractor* extractor_;
  ServiceConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<size_t> live_items_{0};
  // Counters are independent atomics: cheap on the hot path; stats()
  // assembles a snapshot struct from them.
  mutable std::atomic<uint64_t> items_registered_{0};
  mutable std::atomic<uint64_t> events_ingested_{0};
  mutable std::atomic<uint64_t> queries_answered_{0};
  mutable std::atomic<uint64_t> items_retired_{0};
};

}  // namespace horizon::serving

#endif  // HORIZON_SERVING_PREDICTION_SERVICE_H_
