// Multi-item prediction service: the deployment shape the paper targets
// (Sec. 1: real-time popularity prediction "at planetary scale").
//
// The service owns one O(1)-state CascadeTracker per live content item,
// ingests the interleaved engagement-event stream, and answers popularity
// queries for any (prediction time, horizon) pair using a trained
// HawkesPredictor.  Idle items are retired either by inactivity age or by
// the model's cascade-death probability (Appendix A.14 closed form), so
// resident state stays proportional to the number of *live* items.
//
// Error model: every fallible entry point returns a typed Status /
// StatusOr (common/status.h) so callers can tell kNotFound (no such item)
// from kNotYetLive (registered, creation time in the future) from
// kCorruption (torn checkpoint) from kConfigMismatch (checkpoint written
// under a different model/tracker layout).  Status converts contextually
// to bool and StatusOr mimics std::optional, so pre-Status call sites
// keep compiling for one release.
//
// Query surface: BatchQuery(QueryRequest) is the single query entry point
// -- per-id lookups, ranked top-k over a requested id set, and the full
// top-k scan (the moderation-queue primitive) are all expressed through
// it, which gives the observability layer one choke point.  Query() and
// TopK() remain as thin shims over it.
//
// Concurrency: the service is internally synchronized.  Item state is
// partitioned into `num_shards` shards keyed by a mixed hash of the item
// id; each shard has its own mutex and tracker map, so Ingest/Query from
// different threads contend only when they hit the same shard.  Model
// inference (feature extraction + flat-forest walks) always runs OUTSIDE
// the shard locks, against an immutable tracker snapshot.
//
// Ingest modes (DESIGN.md section 13): in the default synchronous mode
// every Ingest applies under the shard mutex, exactly the pre-async
// behavior.  In asynchronous mode (ServiceConfig::ingest_mode, or
// HORIZON_ASYNC_INGEST=on under kAuto) each shard owns a bounded MPSC
// ingest queue drained by a dedicated applier thread in group commits;
// producers only CAS into the queue, queries read an epoch-protected
// immutable ShardView and take NO lock, and Flush()/Checkpoint/Restore/
// RetireDeadItems act as drain barriers at which async state is exactly
// the state a synchronous service would have (the DST-checked
// linearization contract).  Ingest still returns kNotFound for unknown
// ids (checked against the current view at enqueue time) and, under the
// kReject backpressure policy, kResourceExhausted when the shard queue
// is full.
//
// Observability: the service registers counters, a live-items gauge, and
// per-operation latency histograms in an obs::MetricsRegistry (the
// process-wide default unless ServiceConfig.metrics overrides it).
// Instrument pointers are captured once at construction; the hot paths
// touch only wait-free sharded atomics, and the finest-grained one
// (Ingest) samples its latency histogram 1-in-64 so the clock reads stay
// off the common path.  See DESIGN.md "Observability".
#ifndef HORIZON_SERVING_PREDICTION_SERVICE_H_
#define HORIZON_SERVING_PREDICTION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "core/hawkes_predictor.h"
#include "datagen/profiles.h"
#include "features/extractor.h"
#include "obs/metrics.h"
#include "serving/epoch.h"
#include "serving/ingest_queue.h"
#include "serving/shard.h"
#include "stream/cascade_tracker.h"

namespace horizon::serving {

/// How Ingest/IngestBatch apply events.
enum class IngestMode {
  /// kSync unless the HORIZON_ASYNC_INGEST environment variable says
  /// "on"/"1"/"true" at construction time (the ctest *_async pinned
  /// variants flip whole suites this way).
  kAuto = 0,
  kSync,   ///< apply under the shard mutex in the caller's thread
  kAsync,  ///< enqueue; per-shard applier threads group-commit
};

/// Service configuration.
struct ServiceConfig {
  stream::TrackerConfig tracker;
  /// Items with no engagement for this long are retired by RetireIdle.
  double idle_retirement_age = 14 * kDay;
  /// Items whose probability of any further view (per the decaying
  /// intensity proxy) falls below this are retired eagerly.
  double death_probability_threshold = 0.99;
  /// Number of item shards (>= 1).  More shards mean less lock contention
  /// at slightly more memory; the default suits up to ~32 serving threads.
  int num_shards = 16;
  /// Registry the service instruments into; nullptr means the process
  /// default (obs::MetricsRegistry::Global()).  Two services sharing one
  /// registry share instruments, so per-service assertions in tests
  /// should inject private registries.
  obs::MetricsRegistry* metrics = nullptr;
  /// Sync / async ingest selection (see IngestMode).
  IngestMode ingest_mode = IngestMode::kAuto;
  /// Async mode: per-shard ingest queue capacity, rounded up to a power
  /// of two (>= 2).
  size_t ingest_queue_capacity = 1 << 14;
  /// Async mode: what a producer does when its shard queue is full.
  /// kBlock (default) parks it -- accepted events are never capacity-
  /// dropped; kReject returns kResourceExhausted so callers can shed.
  BackpressurePolicy ingest_backpressure = BackpressurePolicy::kBlock;

  /// Rejects malformed configurations: num_shards < 1, non-positive
  /// retirement age, a death-probability threshold outside (0, 1], and --
  /// when an extractor is supplied -- a tracker layout that disagrees
  /// with the extractor's (kConfigMismatch: features would be computed
  /// against the wrong window/landmark layout).
  Status Validate(const features::FeatureExtractor* extractor = nullptr) const;
};

/// One answered query.
struct PredictionResult {
  double observed_views = 0.0;    ///< N(s)
  double predicted_views = 0.0;   ///< predicted N(s + delta)
  double alpha = 0.0;             ///< predicted effective growth exponent
};

/// Aggregate service counters (a stats() snapshot).
struct ServiceStats {
  uint64_t items_registered = 0;
  uint64_t events_ingested = 0;
  uint64_t queries_answered = 0;
  uint64_t items_retired = 0;
};

/// One engagement event of an IngestBatch.
struct IngestEvent {
  int64_t item_id = 0;
  stream::EngagementType type = stream::EngagementType::kView;
  double time = 0.0;
};

/// The unified query: resolves `ids` (or, when `ids` is empty and
/// `top_k` > 0, scans every live item) at prediction time `s` over
/// horizon `delta`, optionally keeping only the `top_k` items with the
/// largest predicted view increment.
struct QueryRequest {
  /// Items to answer for.  Empty selects scan mode (requires top_k > 0),
  /// which ranks ALL live items -- the moderation-queue primitive.
  std::vector<int64_t> ids;
  double s = 0.0;      ///< prediction time (absolute stream time)
  double delta = 0.0;  ///< horizon (seconds, > 0)
  /// 0 keeps every resolved id in request order; > 0 ranks by predicted
  /// increment descending and truncates.
  size_t top_k = 0;
};

/// One successfully answered item of a QueryResponse.
struct ItemPrediction {
  int64_t item_id = 0;
  PredictionResult prediction;
};

/// One per-item failure of a QueryResponse (kNotFound / kNotYetLive).
struct ItemError {
  int64_t item_id = 0;
  Status status;
};

struct QueryResponse {
  /// Answered items: request order in per-id mode, predicted-increment
  /// descending when top_k > 0 (both modes).
  std::vector<ItemPrediction> results;
  /// Ids that could not be answered (never populated in scan mode, which
  /// simply skips not-yet-live items).
  std::vector<ItemError> errors;
  /// Service-side wall time spent answering, also observed into the
  /// horizon_serving_batch_query_latency_seconds histogram.
  uint64_t latency_ns = 0;
};

/// Thread-safe sharded prediction service.  All public methods may be
/// called concurrently from any number of threads; per-item event times
/// must still be non-decreasing (the tracker's contract).
class PredictionService {
 public:
  /// The model and extractor must outlive the service.  The configuration
  /// must pass ServiceConfig::Validate(extractor); a rejected config is
  /// a fatal error (construction cannot report Status).
  PredictionService(const core::HawkesPredictor* model,
                    const features::FeatureExtractor* extractor,
                    const ServiceConfig& config);

  /// Drains the ingest queues (async mode), stops the applier threads
  /// and frees the published views.  No method may run concurrently with
  /// destruction.
  ~PredictionService();

  /// Whether this service resolved to asynchronous ingest.
  bool async_ingest() const { return async_; }

  /// Drain barrier: returns once every event accepted before the call
  /// has been applied (or accounted as dropped).  A no-op in sync mode.
  /// After Flush, queries/stats observe exactly the state a synchronous
  /// service would hold -- the DST linearization point.
  Status Flush();

  /// Registers a new content item.  kAlreadyExists if the id is taken.
  Status RegisterItem(int64_t item_id, double creation_time,
                      const datagen::PageProfile& page,
                      const datagen::PostProfile& post);

  bool HasItem(int64_t item_id) const;
  // order: relaxed; monotone gauge paired with the relaxed updates in
  // RegisterItem/RetireDeadItems -- a point-in-time count, no payload.
  size_t LiveItems() const { return live_items_.load(std::memory_order_relaxed); }

  /// Ingests one engagement event.  kNotFound for unknown items (events
  /// for retired items are dropped, which is the intended behavior for
  /// late stragglers).
  Status Ingest(int64_t item_id, stream::EngagementType type, double t);

  /// Ingests a batch of events: events are grouped by shard, each shard is
  /// locked once, and shards are processed in parallel.  Relative order of
  /// a given item's events is preserved.  Returns the number ingested
  /// (unknown items are dropped, as in Ingest).
  // horizon-lint: allow(serving-status) -- best-effort batch op: returns
  // the applied count; per-item kNotFound is the intended straggler-drop.
  size_t IngestBatch(const std::vector<IngestEvent>& events);

  /// The unified query entry point.  Request-level problems (non-finite
  /// `s`, `delta` < 0, empty ids with top_k == 0) return
  /// kInvalidArgument; per-item problems land in QueryResponse::errors.
  /// Inference is batched: one flat-forest pass over every resolved item.
  StatusOr<QueryResponse> BatchQuery(const QueryRequest& request) const;

  /// Single-item convenience shim over BatchQuery.  kNotFound for unknown
  /// items, kNotYetLive when the item's creation time is after `s`.
  StatusOr<PredictionResult> Query(int64_t item_id, double s,
                                   double delta) const;

  /// Deprecated shim over BatchQuery scan mode: the k live items with the
  /// largest predicted view increment over `delta` as of time `s`, as
  /// (item_id, predicted increment), sorted descending.
  std::vector<std::pair<int64_t, double>> TopK(double s, double delta,
                                               size_t k) const;

  /// Retires items that are idle (no event for idle_retirement_age) or
  /// whose death probability exceeds the configured threshold at `now`.
  /// Returns the number retired.
  // horizon-lint: allow(serving-status) -- infallible maintenance sweep:
  // the retired count is the result, there is no failure to report.
  size_t RetireDeadItems(double now);

  /// Coherent snapshot of the service counters.
  ServiceStats stats() const;

  /// The registry this service instruments into.
  obs::MetricsRegistry& metrics() const { return *registry_; }

  // --- Crash-safe persistence -------------------------------------------
  // Checkpoint layout under `dir`:
  //   CURRENT            -> name of the last committed checkpoint directory
  //   ckpt-<epoch>/      -> MANIFEST, model.hwk, shard-NNNN files
  // Every file is CRC32-framed and written atomically (temp -> fsync ->
  // rename); the CURRENT pointer update is the commit point.  A crash at
  // any write/fsync/rename therefore leaves the previous checkpoint fully
  // intact, and Restore never loads a torn file (the CRCs reject it).

  /// Writes a consistent snapshot of every live tracker, the item
  /// profiles, the model, and the service counters.  Shards are
  /// snapshotted under their own locks and serialized/written outside
  /// them, so concurrent Ingest/Query keep running during a checkpoint.
  /// kIoError on any write failure (the previous checkpoint survives).
  Status Checkpoint(const std::string& dir) const;

  /// Restores the checkpoint committed under `dir`.  Verifies the CRC of
  /// every file, that this service uses the same model (bit-identical
  /// serialization), and the same tracker configuration; on any failure
  /// the service is NOT modified and the code says why: kNotFound (no
  /// committed checkpoint there), kCorruption (torn or damaged bytes),
  /// kConfigMismatch (different model or tracker layout).  On success
  /// replaces all live items and counters, and subsequent predictions are
  /// bit-identical to the checkpointed service's.
  Status Restore(const std::string& dir);

  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  /// Scan-mode candidate surviving a per-shard top-k cut: enough state to
  /// finish the full prediction for the global winners.
  struct ScanCandidate {
    int64_t id = 0;
    double observed = 0.0;
    double increment = 0.0;
    std::vector<float> row;
  };

  size_t ShardOf(int64_t item_id) const;

  /// Per-shard scan: snapshots under the lock, batch inference outside
  /// it, returns the shard's k best candidates with their feature rows.
  std::vector<ScanCandidate> ShardScanTopK(const Shard& shard, double s,
                                           double delta, size_t k) const;

  StatusOr<QueryResponse> QueryByIds(const QueryRequest& request) const;
  StatusOr<QueryResponse> QueryScan(const QueryRequest& request) const;

  /// Increments the per-code error counter and forwards `status`.
  Status CountError(Status status) const;

  // --- async-ingest internals ------------------------------------------

  /// The per-shard applier: drains the queue in group commits, applies
  /// under the shard mutex, publishes a fresh view, updates the obs
  /// instruments, releases barrier waiters.
  void ApplierLoop(Shard& shard);

  /// Waits until every shard's consumed count catches its accepted count
  /// as of entry.  Const: a pure barrier (Checkpoint drains through it).
  void DrainAllQueues() const;

  /// Racy total of accepted-but-unapplied events across shards.
  size_t TotalQueueDepth() const;

  /// steady_clock ns for 1-in-64 enqueues (apply-lag sampling), else 0.
  uint64_t MaybeSampleEnqueueNs() const;

  const core::HawkesPredictor* model_;
  const features::FeatureExtractor* extractor_;
  ServiceConfig config_;
  bool async_ = false;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable EpochDomain epochs_;
  mutable std::atomic<uint64_t> lag_sample_tick_{0};

  std::atomic<size_t> live_items_{0};
  // Counters are independent atomics: cheap on the hot path; stats()
  // assembles a snapshot struct from them.  (The obs counters are shared
  // per registry, so the per-service truth lives here.)
  mutable std::atomic<uint64_t> items_registered_{0};
  mutable std::atomic<uint64_t> events_ingested_{0};
  mutable std::atomic<uint64_t> queries_answered_{0};
  mutable std::atomic<uint64_t> items_retired_{0};

  // Observability instruments, resolved once at construction.
  obs::MetricsRegistry* registry_;
  obs::Counter* m_items_registered_;
  obs::Counter* m_events_ingested_;
  obs::Counter* m_queries_;
  obs::Counter* m_scan_results_;
  obs::Counter* m_items_retired_;
  obs::Counter* m_errors_[10];  // indexed by StatusCode
  obs::Gauge* m_live_items_;
  // Async-ingest instruments (registered in both modes; flat in sync).
  obs::Counter* m_ingest_enqueued_;      // events accepted into queues
  obs::Counter* m_ingest_dropped_;       // accepted, unknown id at apply
  obs::Counter* m_ingest_backpressure_;  // full-queue producer stalls
  obs::Counter* m_ingest_commits_;       // group commits (lock acquisitions)
  obs::Counter* m_apply_wakeups_;        // applier activations with work
  obs::Gauge* m_queue_depth_;            // accepted - consumed, approximate
  obs::Histogram* m_apply_batch_events_; // events per group commit
  obs::Histogram* m_apply_lag_;          // enqueue->apply, sampled 1-in-64
  obs::Histogram* m_flush_latency_;
  obs::Histogram* m_ingest_latency_;
  obs::Histogram* m_ingest_batch_latency_;
  obs::Histogram* m_query_latency_;
  obs::Histogram* m_batch_query_latency_;
  obs::Histogram* m_topk_latency_;
  obs::Histogram* m_retire_latency_;
  obs::Histogram* m_checkpoint_latency_;
  obs::Histogram* m_restore_latency_;
};

}  // namespace horizon::serving

#endif  // HORIZON_SERVING_PREDICTION_SERVICE_H_
