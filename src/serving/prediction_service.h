// Multi-item prediction service: the deployment shape the paper targets
// (Sec. 1: real-time popularity prediction "at planetary scale").
//
// The service owns one O(1)-state CascadeTracker per live content item,
// ingests the interleaved engagement-event stream, and answers popularity
// queries for any (prediction time, horizon) pair using a trained
// HawkesPredictor.  Idle items are retired either by inactivity age or by
// the model's cascade-death probability (Appendix A.14 closed form), so
// resident state stays proportional to the number of *live* items.
#ifndef HORIZON_SERVING_PREDICTION_SERVICE_H_
#define HORIZON_SERVING_PREDICTION_SERVICE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/hawkes_predictor.h"
#include "datagen/profiles.h"
#include "features/extractor.h"
#include "stream/cascade_tracker.h"

namespace horizon::serving {

/// Service configuration.
struct ServiceConfig {
  stream::TrackerConfig tracker;
  /// Items with no engagement for this long are retired by RetireIdle.
  double idle_retirement_age = 14 * kDay;
  /// Items whose probability of any further view (per the decaying
  /// intensity proxy) falls below this are retired eagerly.
  double death_probability_threshold = 0.99;
};

/// One answered query.
struct PredictionResult {
  double observed_views = 0.0;    ///< N(s)
  double predicted_views = 0.0;   ///< predicted N(s + delta)
  double alpha = 0.0;             ///< predicted effective growth exponent
};

/// Aggregate service counters.
struct ServiceStats {
  uint64_t items_registered = 0;
  uint64_t events_ingested = 0;
  uint64_t queries_answered = 0;
  uint64_t items_retired = 0;
};

/// Thread-compatible (externally synchronized) prediction service.
class PredictionService {
 public:
  /// The model and extractor must outlive the service.  The extractor's
  /// tracker configuration must match `config.tracker`.
  PredictionService(const core::HawkesPredictor* model,
                    const features::FeatureExtractor* extractor,
                    const ServiceConfig& config);

  /// Registers a new content item.  Returns false if the id is taken.
  bool RegisterItem(int64_t item_id, double creation_time,
                    const datagen::PageProfile& page,
                    const datagen::PostProfile& post);

  bool HasItem(int64_t item_id) const;
  size_t LiveItems() const { return items_.size(); }

  /// Ingests one engagement event.  Returns false for unknown items
  /// (events for retired items are dropped, which is the intended
  /// behavior for late stragglers).
  bool Ingest(int64_t item_id, stream::EngagementType type, double t);

  /// Predicted popularity of an item at time `s` over horizon `delta`.
  /// Returns nullopt for unknown items and for items whose creation time
  /// is after `s` (not yet live); TopK likewise skips not-yet-live items.
  std::optional<PredictionResult> Query(int64_t item_id, double s,
                                        double delta) const;

  /// The k live items with the largest predicted view increment over
  /// `delta` as of time `s` (the moderation-queue primitive), as
  /// (item_id, predicted increment), sorted descending.
  std::vector<std::pair<int64_t, double>> TopK(double s, double delta,
                                               size_t k) const;

  /// Retires items that are idle (no event for idle_retirement_age) or
  /// whose death probability exceeds the configured threshold at `now`.
  /// Returns the number retired.
  size_t RetireDeadItems(double now);

  const ServiceStats& stats() const { return stats_; }

 private:
  struct Item {
    stream::CascadeTracker tracker;
    datagen::PageProfile page;
    datagen::PostProfile post;
  };

  const core::HawkesPredictor* model_;
  const features::FeatureExtractor* extractor_;
  ServiceConfig config_;
  std::unordered_map<int64_t, Item> items_;
  // Mutable: const queries still count toward stats.
  mutable ServiceStats stats_;
};

}  // namespace horizon::serving

#endif  // HORIZON_SERVING_PREDICTION_SERVICE_H_
