#include "serving/prediction_service.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>
#include <sstream>
#include <string>

#include "common/check.h"
#include "common/file_io.h"
#include "common/thread_pool.h"
#include "pointprocess/transform.h"

namespace horizon::serving {

namespace {

/// SplitMix64 finalizer: item ids are often sequential, so mix before
/// taking the shard residue to spread neighbors across shards.
uint64_t MixId(int64_t id) {
  uint64_t z = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Ingest latency is sampled 1-in-kIngestSampleRate: at ~1 us/op, two
/// clock reads per op would cost more than the histogram is worth.
constexpr uint32_t kIngestSampleRate = 64;

using SteadyClock = std::chrono::steady_clock;

uint64_t ElapsedNs(SteadyClock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() -
                                                           start)
          .count());
}

double PredictedIncrement(const ItemPrediction& p) {
  return p.prediction.predicted_views - p.prediction.observed_views;
}

/// Apply-lag is sampled at the same 1-in-64 rate as ingest latency.
constexpr uint64_t kLagSampleRate = 64;

/// Events drained per group commit (one lock acquisition).  Big enough
/// that a saturated queue amortizes the view republish over thousands of
/// events, small enough to bound commit latency.
constexpr size_t kMaxApplyBatch = 16384;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyClock::now().time_since_epoch())
          .count());
}

bool ResolveAsyncIngest(IngestMode mode) {
  switch (mode) {
    case IngestMode::kSync:
      return false;
    case IngestMode::kAsync:
      return true;
    case IngestMode::kAuto:
      break;
  }
  const char* env = std::getenv("HORIZON_ASYNC_INGEST");
  if (env == nullptr) return false;
  const std::string v(env);
  return v == "on" || v == "1" || v == "true";
}

}  // namespace

Status ServiceConfig::Validate(const features::FeatureExtractor* extractor) const {
  if (num_shards < 1) {
    return Status::InvalidArgument("ServiceConfig: num_shards must be >= 1");
  }
  if (!(idle_retirement_age > 0.0)) {
    return Status::InvalidArgument(
        "ServiceConfig: idle_retirement_age must be positive");
  }
  if (!(death_probability_threshold > 0.0) || death_probability_threshold > 1.0) {
    return Status::InvalidArgument(
        "ServiceConfig: death_probability_threshold must be in (0, 1]");
  }
  if (tracker.window_lengths.empty() || tracker.landmark_ages.empty()) {
    return Status::InvalidArgument(
        "ServiceConfig: tracker needs at least one window and landmark");
  }
  if (ingest_queue_capacity < 2) {
    return Status::InvalidArgument(
        "ServiceConfig: ingest_queue_capacity must be >= 2");
  }
  if (extractor != nullptr) {
    const stream::TrackerConfig& other = extractor->tracker_config();
    if (other.window_lengths != tracker.window_lengths ||
        other.landmark_ages != tracker.landmark_ages ||
        other.ewma_tau != tracker.ewma_tau || other.epsilon != tracker.epsilon) {
      return Status::ConfigMismatch(
          "ServiceConfig: extractor was built for a different tracker "
          "window/landmark layout");
    }
  }
  return Status::Ok();
}

PredictionService::PredictionService(const core::HawkesPredictor* model,
                                     const features::FeatureExtractor* extractor,
                                     const ServiceConfig& config)
    : model_(model), extractor_(extractor), config_(config) {
  HORIZON_CHECK(model != nullptr);
  HORIZON_CHECK(extractor != nullptr);
  HORIZON_CHECK(model->trained());
  const Status valid = config_.Validate(extractor);
  if (!valid.ok()) {
    std::fprintf(stderr, "rejected ServiceConfig: %s\n", valid.ToString().c_str());
  }
  HORIZON_CHECK(valid.ok());
  async_ = ResolveAsyncIngest(config_.ingest_mode);
  shards_.reserve(static_cast<size_t>(config_.num_shards));
  for (int i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }

  registry_ = config_.metrics != nullptr ? config_.metrics
                                         : &obs::MetricsRegistry::Global();
  m_items_registered_ = registry_->GetCounter("horizon_serving_items_registered_total");
  m_events_ingested_ = registry_->GetCounter("horizon_serving_events_ingested_total");
  m_queries_ = registry_->GetCounter("horizon_serving_queries_total");
  m_scan_results_ = registry_->GetCounter("horizon_serving_scan_results_total");
  m_items_retired_ = registry_->GetCounter("horizon_serving_items_retired_total");
  m_errors_[0] = nullptr;  // kOk is not an error
  for (int c = 1; c <= 9; ++c) {
    m_errors_[c] = registry_->GetCounter(
        "horizon_serving_errors_" +
        std::string(StatusCodeName(static_cast<StatusCode>(c))) + "_total");
  }
  m_live_items_ = registry_->GetGauge("horizon_serving_live_items");
  m_ingest_enqueued_ =
      registry_->GetCounter("horizon_serving_ingest_enqueued_total");
  m_ingest_dropped_ =
      registry_->GetCounter("horizon_serving_ingest_dropped_total");
  m_ingest_backpressure_ =
      registry_->GetCounter("horizon_serving_ingest_backpressure_total");
  m_ingest_commits_ =
      registry_->GetCounter("horizon_serving_ingest_commits_total");
  m_apply_wakeups_ =
      registry_->GetCounter("horizon_serving_apply_wakeups_total");
  m_queue_depth_ = registry_->GetGauge("horizon_serving_ingest_queue_depth");
  m_apply_batch_events_ = registry_->GetHistogram(
      "horizon_serving_apply_batch_events", obs::CountBuckets());
  m_apply_lag_ =
      registry_->GetHistogram("horizon_serving_apply_lag_seconds");
  m_flush_latency_ =
      registry_->GetHistogram("horizon_serving_flush_latency_seconds");
  m_ingest_latency_ = registry_->GetHistogram("horizon_serving_ingest_latency_seconds");
  m_ingest_batch_latency_ =
      registry_->GetHistogram("horizon_serving_ingest_batch_latency_seconds");
  m_query_latency_ = registry_->GetHistogram("horizon_serving_query_latency_seconds");
  m_batch_query_latency_ =
      registry_->GetHistogram("horizon_serving_batch_query_latency_seconds");
  m_topk_latency_ = registry_->GetHistogram("horizon_serving_topk_latency_seconds");
  m_retire_latency_ = registry_->GetHistogram("horizon_serving_retire_latency_seconds");
  m_checkpoint_latency_ =
      registry_->GetHistogram("horizon_serving_checkpoint_latency_seconds");
  m_restore_latency_ =
      registry_->GetHistogram("horizon_serving_restore_latency_seconds");

  if (async_) {
    for (auto& shard : shards_) {
      shard->queue = std::make_unique<IngestQueue>(
          config_.ingest_queue_capacity, config_.ingest_backpressure);
      {
        MutexLock lock(shard->mu);
        PublishView(*shard, epochs_);  // initial (empty) view
      }
      shard->applier = std::thread([this, s = shard.get()] { ApplierLoop(*s); });
    }
  }
}

PredictionService::~PredictionService() {
  if (!async_) return;
  // Stop() lets each applier drain whatever is still queued and exit;
  // accepted events are applied, not lost (the documented contract: only
  // a real crash drops the volatile queue contents, and then wholesale).
  for (auto& shard : shards_) shard->queue->Stop();
  for (auto& shard : shards_) {
    if (shard->applier.joinable()) shard->applier.join();
  }
  for (auto& shard : shards_) {
    // horizon-lint: allow(naked-new) -- reclaims the last published view; appliers are joined, so no reader can hold it
    // order: seq_cst keeps the final unpublish in the same total order
    // as PublishView's exchange; by now appliers are joined so this is
    // belt-and-braces, not load-bearing.
    delete shard->view.exchange(nullptr, std::memory_order_seq_cst);
  }
  // epochs_ frees any still-retired views in its destructor.
}

Status PredictionService::Flush() {
  const obs::ScopedTimer timer(m_flush_latency_);
  if (async_) {
    DrainAllQueues();
    m_queue_depth_->Set(static_cast<double>(TotalQueueDepth()));
  }
  return Status::Ok();
}

void PredictionService::DrainAllQueues() const {
  if (!async_) return;
  std::vector<uint64_t> targets(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    targets[i] = shards_[i]->queue->pushed();
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->queue->WaitConsumed(targets[i]);
  }
}

size_t PredictionService::TotalQueueDepth() const {
  size_t depth = 0;
  for (const auto& shard : shards_) {
    const uint64_t pushed = shard->queue->pushed();
    const uint64_t consumed = shard->queue->consumed();
    if (pushed > consumed) depth += static_cast<size_t>(pushed - consumed);
  }
  return depth;
}

uint64_t PredictionService::MaybeSampleEnqueueNs() const {
  // order: relaxed; sampling ticket -- only 1-in-N selection rides on
  // it, no payload.
  if (lag_sample_tick_.fetch_add(1, std::memory_order_relaxed) %
          kLagSampleRate !=
      0) {
    return 0;
  }
  const uint64_t ns = NowNs();
  return ns == 0 ? 1 : ns;  // 0 is the "unsampled" sentinel
}

void PredictionService::ApplierLoop(Shard& shard) {
  std::vector<QueuedEvent> batch;
  batch.reserve(kMaxApplyBatch);
  uint64_t backpressure_synced = 0;
  while (shard.queue->WaitForEvents()) {
    bool counted_wakeup = false;
    for (;;) {
      batch.clear();
      const size_t n = shard.queue->PopBatch(&batch, kMaxApplyBatch);
      if (n == 0) break;
      if (!counted_wakeup) {
        m_apply_wakeups_->Increment();
        counted_wakeup = true;
      }
      size_t dropped = 0;
      {
        MutexLock lock(shard.mu);
        ApplyEvents(shard, batch.data(), n, &dropped);
        PublishView(shard, epochs_);
      }
      const size_t applied = n - dropped;
      // Instrument updates precede MarkConsumed so a Flush barrier that
      // releases on this commit already sees them (the DST conservation
      // checks scrape right after Flush).
      // order: relaxed; statistics counter -- cross-thread visibility
      // for Flush readers is provided by MarkConsumed's release below,
      // which this update precedes program-order-wise.
      events_ingested_.fetch_add(applied, std::memory_order_relaxed);
      m_events_ingested_->Add(applied);
      if (dropped > 0) m_ingest_dropped_->Add(dropped);
      m_ingest_commits_->Increment();
      m_apply_batch_events_->Observe(static_cast<double>(n));
      uint64_t lag_now = 0;
      for (const QueuedEvent& e : batch) {
        if (e.enqueue_ns == 0) continue;
        if (lag_now == 0) lag_now = NowNs();
        if (lag_now > e.enqueue_ns) {
          m_apply_lag_->Observe(static_cast<double>(lag_now - e.enqueue_ns) *
                                1e-9);
        }
      }
      const uint64_t stalls = shard.queue->backpressure_events();
      if (stalls > backpressure_synced) {
        m_ingest_backpressure_->Add(stalls - backpressure_synced);
        backpressure_synced = stalls;
      }
      // This commit's n is not yet marked consumed, so subtract it out.
      const size_t raw_depth = TotalQueueDepth();
      m_queue_depth_->Set(static_cast<double>(raw_depth >= n ? raw_depth - n : 0));
      shard.queue->MarkConsumed(n);
    }
  }
}

Status PredictionService::CountError(Status status) const {
  const int code = static_cast<int>(status.code());
  if (code >= 1 && code <= 9) m_errors_[code]->Increment();
  return status;
}

size_t PredictionService::ShardOf(int64_t item_id) const {
  return static_cast<size_t>(MixId(item_id) % shards_.size());
}

Status PredictionService::RegisterItem(int64_t item_id, double creation_time,
                                       const datagen::PageProfile& page,
                                       const datagen::PostProfile& post) {
  Shard& shard = *shards_[ShardOf(item_id)];
  bool inserted = false;
  {
    MutexLock lock(shard.mu);
    inserted = ApplyRegister(
        shard, item_id,
        Item{stream::CascadeTracker(creation_time, config_.tracker), page,
             post});
    // Republish before returning so an async Ingest enqueued after this
    // call observes the item at its view-side existence check.
    if (inserted && async_) PublishView(shard, epochs_);
  }
  if (!inserted) {
    return CountError(Status::AlreadyExists("item id already registered"));
  }
  // order: relaxed; statistics counter paired with the relaxed load in
  // stats() -- no payload.
  items_registered_.fetch_add(1, std::memory_order_relaxed);
  m_items_registered_->Increment();
  // order: relaxed; gauge source paired with LiveItems()'s relaxed
  // load; fetch_add only so concurrent registrations count exactly.
  m_live_items_->Set(
      static_cast<double>(live_items_.fetch_add(1, std::memory_order_relaxed) + 1));
  return Status::Ok();
}

bool PredictionService::HasItem(int64_t item_id) const {
  const Shard& shard = *shards_[ShardOf(item_id)];
  if (async_) {
    const EpochGuard guard(epochs_);
    // order: seq_cst view load under the EpochGuard; participates in
    // the publisher exchange / epoch total order (see PublishView in
    // shard_apply.cc and the epoch.h reclamation proof).
    const ShardView* view = shard.view.load(std::memory_order_seq_cst);
    return view->items.count(item_id) > 0;
  }
  MutexLock lock(shard.mu);
  return shard.items.count(item_id) > 0;
}

Status PredictionService::Ingest(int64_t item_id, stream::EngagementType type,
                                 double t) {
  const obs::ScopedTimer timer(
      obs::SampleEvery(kIngestSampleRate, m_ingest_latency_));
  Shard& shard = *shards_[ShardOf(item_id)];
  if (async_) {
    // Existence is decided at enqueue time against the published view,
    // which the barrier ops keep current -- so the caller sees the same
    // kNotFound a synchronous service would return.  Applying happens in
    // the shard's applier; counters move when it does.
    {
      const EpochGuard guard(epochs_);
      // order: seq_cst view load under the EpochGuard; participates in
      // the publisher exchange / epoch total order (see PublishView in
      // shard_apply.cc and the epoch.h reclamation proof).
      const ShardView* view = shard.view.load(std::memory_order_seq_cst);
      if (view->items.find(item_id) == view->items.end()) {
        return CountError(
            Status::NotFound("unknown item (dropped straggler?)"));
      }
    }
    const QueuedEvent event{item_id, type, t, MaybeSampleEnqueueNs()};
    const Status pushed = shard.queue->Push(event);
    if (!pushed.ok()) return CountError(pushed);
    m_ingest_enqueued_->Increment();
    return Status::Ok();
  }
  {
    MutexLock lock(shard.mu);
    size_t dropped = 0;
    const QueuedEvent event{item_id, type, t, 0};
    ApplyEvents(shard, &event, 1, &dropped);
    if (dropped > 0) {
      return CountError(Status::NotFound("unknown item (dropped straggler?)"));
    }
  }
  // order: relaxed; statistics counter paired with the relaxed load in
  // stats().
  events_ingested_.fetch_add(1, std::memory_order_relaxed);
  m_events_ingested_->Increment();
  return Status::Ok();
}

size_t PredictionService::IngestBatch(const std::vector<IngestEvent>& events) {
  const obs::ScopedTimer timer(m_ingest_batch_latency_);
  if (async_) {
    // Enqueue in caller order (per-item order rides per-producer FIFO);
    // the count returned is the accepted count, decided -- like Ingest --
    // against the published views at enqueue time.  The appliers coalesce
    // the whole batch into a handful of group commits.
    size_t accepted = 0;
    const EpochGuard guard(epochs_);
    for (const IngestEvent& e : events) {
      Shard& shard = *shards_[ShardOf(e.item_id)];
      // order: seq_cst view load under the EpochGuard; participates in
      // the publisher exchange / epoch total order (see PublishView in
      // shard_apply.cc and the epoch.h reclamation proof).
      const ShardView* view = shard.view.load(std::memory_order_seq_cst);
      if (view->items.find(e.item_id) == view->items.end()) continue;
      const QueuedEvent event{e.item_id, e.type, e.time,
                              MaybeSampleEnqueueNs()};
      if (!shard.queue->Push(event).ok()) continue;  // kReject under load
      ++accepted;
    }
    m_ingest_enqueued_->Add(accepted);
    return accepted;
  }
  // Group event indices by shard (stable, so per-item order is kept),
  // then apply each shard's group under ONE lock acquisition -- the
  // group-commit contract IngestBatch shares with the async appliers,
  // counted by horizon_serving_ingest_commits_total either way.
  std::vector<std::vector<uint32_t>> by_shard(shards_.size());
  for (uint32_t i = 0; i < events.size(); ++i) {
    by_shard[ShardOf(events[i].item_id)].push_back(i);
  }
  std::atomic<size_t> ingested{0};
  std::atomic<size_t> commits{0};
  ParallelFor(shards_.size(), 1, [&](size_t begin, size_t end) {
    std::vector<QueuedEvent> group;
    for (size_t sh = begin; sh < end; ++sh) {
      if (by_shard[sh].empty()) continue;
      Shard& shard = *shards_[sh];
      group.clear();
      group.reserve(by_shard[sh].size());
      for (const uint32_t i : by_shard[sh]) {
        const IngestEvent& e = events[i];
        group.push_back(QueuedEvent{e.item_id, e.type, e.time, 0});
      }
      size_t dropped = 0;
      size_t applied = 0;
      {
        MutexLock lock(shard.mu);
        applied = ApplyEvents(shard, group.data(), group.size(), &dropped);
      }
      // order: relaxed (both); per-task tallies folded after the
      // ParallelFor barrier, which supplies the happens-before edge.
      ingested.fetch_add(applied, std::memory_order_relaxed);
      // order: relaxed; see above.
      commits.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // order: relaxed; reads after the ParallelFor join (drain_mu handoff
  // orders them); the atomics only arbitrate concurrent adds above.
  const size_t total = ingested.load(std::memory_order_relaxed);
  // order: relaxed; statistics counter paired with stats().
  events_ingested_.fetch_add(total, std::memory_order_relaxed);
  m_events_ingested_->Add(total);
  // order: relaxed; same post-join read as `total` above.
  m_ingest_commits_->Add(commits.load(std::memory_order_relaxed));
  return total;
}

// ---------------------------------------------------------------------------
// Query surface

StatusOr<QueryResponse> PredictionService::QueryByIds(
    const QueryRequest& request) const {
  struct Resolved {
    int64_t id;
    stream::TrackerSnapshot snapshot;
    datagen::PageProfile page;
    datagen::PostProfile post;
  };
  QueryResponse response;
  std::vector<Resolved> resolved;
  resolved.reserve(request.ids.size());
  const auto resolve = [&](int64_t id, const Item* item) {
    if (item == nullptr) {
      response.errors.push_back(
          {id, CountError(Status::NotFound("unknown item"))});
      return;
    }
    if (request.s < item->tracker.creation_time()) {
      response.errors.push_back(
          {id, CountError(Status::NotYetLive("item goes live after s"))});
      return;
    }
    resolved.push_back(
        {id, item->tracker.Snapshot(request.s), item->page, item->post});
  };
  if (async_) {
    // Lock-free: every lookup reads the shard's published (frozen) view
    // under one epoch guard, so queries never contend with group commits.
    const EpochGuard guard(epochs_);
    for (const int64_t id : request.ids) {
      // order: seq_cst view load under the EpochGuard; participates in
      // the publisher exchange / epoch total order (see PublishView in
      // shard_apply.cc and the epoch.h reclamation proof).
      const ShardView* view =
          shards_[ShardOf(id)]->view.load(std::memory_order_seq_cst);
      const auto it = view->items.find(id);
      resolve(id, it == view->items.end() ? nullptr : it->second.get());
    }
  } else {
    for (const int64_t id : request.ids) {
      const Shard& shard = *shards_[ShardOf(id)];
      MutexLock lock(shard.mu);
      const auto it = shard.items.find(id);
      resolve(id, it == shard.items.end() ? nullptr : it->second.get());
    }
  }
  if (resolved.empty()) return response;

  // Inference runs outside the shard locks, batched over every resolved
  // item: one vectorized-forest pass per model.  The extractor writes the
  // column-major SoA batch in place (strided emit), so the SIMD kernels
  // consume it without a transposition pass.
  gbdt::ExampleBatch x(resolved.size(), extractor_->schema().size());
  std::vector<double> observed(resolved.size());
  for (size_t i = 0; i < resolved.size(); ++i) {
    extractor_->ExtractIntoStrided(resolved[i].page, resolved[i].post,
                                   resolved[i].snapshot, x.MutableRowBase(i),
                                   x.feature_stride());
    observed[i] = static_cast<double>(resolved[i].snapshot.views().total);
  }
  const std::vector<double> deltas(resolved.size(), request.delta);
  std::vector<double> alphas;
  const std::vector<double> counts =
      model_->PredictCountBatch(x, observed, deltas, &alphas);

  response.results.reserve(resolved.size());
  for (size_t i = 0; i < resolved.size(); ++i) {
    response.results.push_back(
        {resolved[i].id, PredictionResult{observed[i], counts[i], alphas[i]}});
  }
  if (request.top_k > 0 && response.results.size() > request.top_k) {
    std::partial_sort(response.results.begin(),
                      response.results.begin() +
                          static_cast<ptrdiff_t>(request.top_k),
                      response.results.end(),
                      [](const ItemPrediction& a, const ItemPrediction& b) {
                        return PredictedIncrement(a) > PredictedIncrement(b);
                      });
    response.results.resize(request.top_k);
  } else if (request.top_k > 0) {
    std::sort(response.results.begin(), response.results.end(),
              [](const ItemPrediction& a, const ItemPrediction& b) {
                return PredictedIncrement(a) > PredictedIncrement(b);
              });
  }
  // order: relaxed; statistics counter paired with the relaxed load in
  // stats().
  queries_answered_.fetch_add(response.results.size(), std::memory_order_relaxed);
  m_queries_->Add(response.results.size());
  return response;
}

std::vector<PredictionService::ScanCandidate> PredictionService::ShardScanTopK(
    const Shard& shard, double s, double delta, size_t k) const {
  struct Candidate {
    int64_t id;
    stream::TrackerSnapshot snapshot;
    datagen::PageProfile page;
    datagen::PostProfile post;
  };
  std::vector<Candidate> candidates;
  const auto collect = [&](const ItemMap& items) {
    candidates.reserve(items.size());
    for (const auto& [id, ptr] : items) {
      const Item& item = *ptr;
      if (s < item.tracker.creation_time()) continue;  // not yet live
      candidates.push_back({id, item.tracker.Snapshot(s), item.page, item.post});
    }
  };
  if (async_) {
    // Scan the frozen view under an epoch guard: the whole-shard walk
    // never blocks a group commit (and vice versa).
    const EpochGuard guard(epochs_);
    // order: seq_cst view load under the EpochGuard; participates in
    // the publisher exchange / epoch total order (see PublishView in
    // shard_apply.cc and the epoch.h reclamation proof).
    collect(shard.view.load(std::memory_order_seq_cst)->items);
  } else {
    MutexLock lock(shard.mu);
    collect(shard.items);
  }
  if (candidates.empty()) return {};

  // Batch the whole shard through the vectorized forests in one pass,
  // extracting straight into the SoA layout the kernels read.
  const size_t width = extractor_->schema().size();
  gbdt::ExampleBatch x(candidates.size(), width);
  for (size_t i = 0; i < candidates.size(); ++i) {
    extractor_->ExtractIntoStrided(candidates[i].page, candidates[i].post,
                                   candidates[i].snapshot, x.MutableRowBase(i),
                                   x.feature_stride());
  }
  const std::vector<double> increments = model_->PredictIncrementBatch(x, delta);

  // Keep only the shard's k best; the winners carry their feature rows so
  // the merge step can finish the full prediction without re-extracting.
  std::vector<size_t> order(candidates.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  const size_t take = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<ptrdiff_t>(take),
                    order.end(), [&](size_t a, size_t b) {
                      return increments[a] > increments[b];
                    });
  std::vector<ScanCandidate> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    const size_t idx = order[i];
    std::vector<float> row(width);
    x.CopyRowTo(idx, row.data());
    out.push_back(
        {candidates[idx].id,
         static_cast<double>(candidates[idx].snapshot.views().total),
         increments[idx], std::move(row)});
  }
  return out;
}

StatusOr<QueryResponse> PredictionService::QueryScan(
    const QueryRequest& request) const {
  const obs::ScopedTimer timer(m_topk_latency_);
  const size_t k = request.top_k;
  std::vector<std::vector<ScanCandidate>> per_shard(shards_.size());
  ParallelFor(shards_.size(), 1, [&](size_t begin, size_t end) {
    for (size_t sh = begin; sh < end; ++sh) {
      per_shard[sh] = ShardScanTopK(*shards_[sh], request.s, request.delta, k);
    }
  });
  std::vector<ScanCandidate> merged;
  for (auto& partial : per_shard) {
    std::move(partial.begin(), partial.end(), std::back_inserter(merged));
  }
  const size_t take = std::min(k, merged.size());
  std::partial_sort(merged.begin(), merged.begin() + static_cast<ptrdiff_t>(take),
                    merged.end(), [](const ScanCandidate& a, const ScanCandidate& b) {
                      return a.increment > b.increment;
                    });
  merged.resize(take);

  QueryResponse response;
  if (merged.empty()) return response;
  // Only the global winners pay for the alpha forest.  Their feature rows
  // were already materialized row-major by the shard scans, so a row-major
  // matrix (strided kernel path) is the no-copy-beyond-this layout here.
  gbdt::DataMatrix x(merged.size(), extractor_->schema().size());
  for (size_t i = 0; i < merged.size(); ++i) {
    std::copy(merged[i].row.begin(), merged[i].row.end(), x.MutableRow(i));
  }
  const std::vector<double> alphas = model_->PredictAlphaBatch(x);
  response.results.reserve(merged.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    response.results.push_back(
        {merged[i].id,
         PredictionResult{merged[i].observed,
                          merged[i].observed + merged[i].increment, alphas[i]}});
  }
  // Scan answers are deliberately NOT counted into queries_answered (the
  // pre-BatchQuery TopK never was); they have their own counter.
  m_scan_results_->Add(response.results.size());
  return response;
}

StatusOr<QueryResponse> PredictionService::BatchQuery(
    const QueryRequest& request) const {
  const auto start = SteadyClock::now();
  if (!std::isfinite(request.s) || !std::isfinite(request.delta) ||
      request.delta < 0.0) {
    return CountError(
        Status::InvalidArgument("QueryRequest: s and delta must be finite, "
                                "delta >= 0"));
  }
  if (request.ids.empty() && request.top_k == 0) {
    return CountError(Status::InvalidArgument(
        "QueryRequest: empty ids (scan mode) requires top_k > 0"));
  }
  StatusOr<QueryResponse> response =
      request.ids.empty() ? QueryScan(request) : QueryByIds(request);
  if (response.ok()) {
    const uint64_t ns = ElapsedNs(start);
    response->latency_ns = ns;
    m_batch_query_latency_->Observe(static_cast<double>(ns) * 1e-9);
  }
  return response;
}

StatusOr<PredictionResult> PredictionService::Query(int64_t item_id, double s,
                                                    double delta) const {
  const obs::ScopedTimer timer(m_query_latency_);
  QueryRequest request;
  request.ids.push_back(item_id);
  request.s = s;
  request.delta = delta;
  StatusOr<QueryResponse> response = BatchQuery(request);
  if (!response.ok()) return response.status();
  if (!response->errors.empty()) return response->errors.front().status;
  HORIZON_CHECK(!response->results.empty());
  return response->results.front().prediction;
}

std::vector<std::pair<int64_t, double>> PredictionService::TopK(double s,
                                                                double delta,
                                                                size_t k) const {
  if (k == 0) return {};
  QueryRequest request;
  request.s = s;
  request.delta = delta;
  request.top_k = k;
  const StatusOr<QueryResponse> response = BatchQuery(request);
  if (!response.ok()) return {};
  std::vector<std::pair<int64_t, double>> out;
  out.reserve(response->results.size());
  for (const ItemPrediction& p : response->results) {
    out.emplace_back(p.item_id, PredictedIncrement(p));
  }
  return out;
}

size_t PredictionService::RetireDeadItems(double now) {
  const obs::ScopedTimer timer(m_retire_latency_);
  // Barrier op: drain accepted-but-unapplied events first so the liveness
  // decision sees every event the caller has been acknowledged for --
  // exactly what the synchronous service would have seen.
  DrainAllQueues();
  std::atomic<size_t> retired_total{0};
  ParallelFor(shards_.size(), 1, [&](size_t begin, size_t end) {
    std::vector<float> row(extractor_->schema().size());
    const auto dead = [&](const Item& item) {
      if (now < item.tracker.creation_time()) {
        return false;  // not yet live; nothing to retire
      }
      const auto snapshot = item.tracker.Snapshot(now);
      const auto& views = snapshot.views();
      if (views.last_event_age >= 0.0) {
        const double idle = snapshot.age - views.last_event_age;
        if (idle >= config_.idle_retirement_age) return true;
      } else if (snapshot.age >= config_.idle_retirement_age) {
        return true;  // never received a single view
      }
      if (views.ewma_rate > 0.0) {
        // Eager retirement: with the EWMA rate as the lambda(now) proxy
        // and the model's alpha as the decay scale, the probability that
        // the cascade produces no further views (Appendix A.14, u = 0
        // transform) exceeds the threshold.
        extractor_->ExtractInto(item.page, item.post, snapshot, row.data());
        const double alpha = model_->PredictAlpha(row.data());
        const double p_dead = pp::ProbabilityNoNewEvents(
            views.ewma_rate, std::numeric_limits<double>::infinity(), alpha);
        if (p_dead >= config_.death_probability_threshold) return true;
      }
      return false;
    };
    for (size_t sh = begin; sh < end; ++sh) {
      Shard& shard = *shards_[sh];
      MutexLock lock(shard.mu);
      const size_t retired = ApplyRetireSweep(shard, dead);
      if (async_ && retired > 0) PublishView(shard, epochs_);
      // order: relaxed; per-task tally folded after the ParallelFor
      // barrier, which supplies the happens-before edge.
      retired_total.fetch_add(retired, std::memory_order_relaxed);
    }
  });
  // order: relaxed; read after the ParallelFor join (drain_mu handoff
  // orders it).
  const size_t retired = retired_total.load(std::memory_order_relaxed);
  // order: relaxed; statistics counter paired with stats().
  items_retired_.fetch_add(retired, std::memory_order_relaxed);
  m_items_retired_->Add(retired);
  // order: relaxed; gauge source paired with LiveItems()'s relaxed
  // load; fetch_sub only so concurrent sweeps count exactly.
  m_live_items_->Set(static_cast<double>(
      live_items_.fetch_sub(retired, std::memory_order_relaxed) - retired));
  return retired;
}

// ---------------------------------------------------------------------------
// Checkpoint / Restore

namespace {

std::string CheckpointDirName(uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%09llu",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::string ShardFileName(size_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%04zu", shard);
  return buf;
}

std::optional<uint64_t> ParseCheckpointEpoch(const std::string& name) {
  if (name.rfind("ckpt-", 0) != 0 || name.size() <= 5) return std::nullopt;
  uint64_t epoch = 0;
  for (size_t i = 5; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    epoch = epoch * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return epoch;
}

std::string Trim(const std::string& text) {
  size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

void SerializePage(std::ostream& os, const datagen::PageProfile& p) {
  os << p.id << " " << p.followers << " " << p.fans << " " << p.posts_last_month
     << " " << p.page_age_days << " " << static_cast<int>(p.category) << " "
     << p.verified << " " << p.hist_mean_views << " " << p.hist_mean_halflife
     << " " << p.hist_share_rate << " " << p.hist_comment_rate << " " << p.quality
     << " " << p.audience_tau << " " << p.shareability << " " << p.alpha_page
     << "\n";
}

bool DeserializePage(std::istream& is, datagen::PageProfile* p) {
  int category = 0;
  if (!(is >> p->id >> p->followers >> p->fans >> p->posts_last_month >>
        p->page_age_days >> category >> p->verified >> p->hist_mean_views >>
        p->hist_mean_halflife >> p->hist_share_rate >> p->hist_comment_rate >>
        p->quality >> p->audience_tau >> p->shareability >> p->alpha_page)) {
    return false;
  }
  if (category < 0 || category >= datagen::kNumPageCategories) return false;
  p->category = static_cast<datagen::PageCategory>(category);
  return true;
}

void SerializePost(std::ostream& os, const datagen::PostProfile& p) {
  os << p.id << " " << p.page_id << " " << static_cast<int>(p.media) << " "
     << p.language << " " << p.num_mentions << " " << p.num_hashtags << " "
     << p.text_length << " " << p.creation_tod << " " << p.day_of_week << " "
     << p.in_group << " " << p.group_members << " " << p.has_question << " "
     << p.creation_time << " " << p.lambda0 << " " << p.beta << " " << p.rho1
     << " " << p.mark_sigma_log << "\n";
}

bool DeserializePost(std::istream& is, datagen::PostProfile* p) {
  int media = 0;
  if (!(is >> p->id >> p->page_id >> media >> p->language >> p->num_mentions >>
        p->num_hashtags >> p->text_length >> p->creation_tod >> p->day_of_week >>
        p->in_group >> p->group_members >> p->has_question >> p->creation_time >>
        p->lambda0 >> p->beta >> p->rho1 >> p->mark_sigma_log)) {
    return false;
  }
  if (media < 0 || media >= datagen::kNumMediaTypes) return false;
  p->media = static_cast<datagen::MediaType>(media);
  return true;
}

}  // namespace

Status PredictionService::Checkpoint(const std::string& dir) const {
  const obs::ScopedTimer latency(m_checkpoint_latency_);
  // Linearization barrier: every event accepted before this call is
  // applied before any state is copied.  The drain is memory-only and
  // precedes all checkpoint IO, so a crash mid-checkpoint loses the
  // volatile queues wholesale -- never a half-applied batch.
  DrainAllQueues();
  HORIZON_RETURN_IF_ERROR(io::EnsureDir(dir));
  uint64_t epoch = 1;
  if (const auto current = io::ReadFile(dir + "/CURRENT")) {
    if (const auto prev = ParseCheckpointEpoch(Trim(*current))) epoch = *prev + 1;
  }
  const std::string name = CheckpointDirName(epoch);
  const std::string ckpt = dir + "/" + name;
  HORIZON_RETURN_IF_ERROR(io::EnsureDir(ckpt));

  // One coherent counter snapshot up front; events ingested while the
  // shards are being copied belong to the next checkpoint.
  const ServiceStats counters = stats();
  const std::string model_blob = model_->Serialize();
  // Quantized companions of every forest, in the same epoch dir.  The blob
  // is a deterministic function of the trained model, which is what lets
  // Restore verify it by byte equality instead of a tolerance check.
  const std::string qforest_blob = model_->SerializeQuantized();

  // Snapshot each shard under its lock (a copy of the O(1)-state items),
  // then serialize and write the file outside the lock so ingest/query
  // never stall behind disk IO.  Shards proceed in parallel.
  const size_t num_shards = shards_.size();
  std::vector<uint32_t> shard_crc(num_shards, 0);
  std::vector<size_t> shard_bytes(num_shards, 0);
  std::vector<size_t> shard_items(num_shards, 0);
  Mutex error_mu;
  Status shard_error;  // first failure wins
  ParallelFor(num_shards, 1, [&](size_t begin, size_t end) {
    for (size_t sh = begin; sh < end; ++sh) {
      const Shard& shard = *shards_[sh];
      std::vector<std::pair<int64_t, Item>> snapshot;
      {
        MutexLock lock(shard.mu);
        snapshot.reserve(shard.items.size());
        for (const auto& [id, item] : shard.items) {
          snapshot.emplace_back(id, *item);
        }
      }
      std::ostringstream os;
      os.precision(17);
      os << "shard v1\n" << snapshot.size() << "\n";
      for (const auto& [id, item] : snapshot) {
        os << id << "\n";
        SerializePage(os, item.page);
        SerializePost(os, item.post);
        const std::string tracker = item.tracker.Serialize();
        os << tracker.size() << "\n" << tracker;
      }
      const std::string framed = io::WrapCrcFrame(os.str());
      shard_crc[sh] = io::Crc32(framed);
      shard_bytes[sh] = framed.size();
      shard_items[sh] = snapshot.size();
      const Status wrote =
          io::WriteFileAtomic(ckpt + "/" + ShardFileName(sh), framed);
      if (!wrote.ok()) {
        MutexLock lock(error_mu);
        if (shard_error.ok()) shard_error = wrote;
      }
    }
  });
  HORIZON_RETURN_IF_ERROR(shard_error);
  HORIZON_RETURN_IF_ERROR(
      io::WriteFileAtomic(ckpt + "/model.hwk", io::WrapCrcFrame(model_blob)));
  HORIZON_RETURN_IF_ERROR(io::WriteFileAtomic(ckpt + "/model.qforest",
                                              io::WrapCrcFrame(qforest_blob)));

  std::ostringstream manifest;
  manifest.precision(17);
  manifest << "manifest v1\n";
  manifest << "epoch " << epoch << "\n";
  manifest << "model " << io::Crc32(model_blob) << " " << model_blob.size() << "\n";
  manifest << "qforest " << io::Crc32(qforest_blob) << " " << qforest_blob.size()
           << "\n";
  const stream::TrackerConfig& tracker = config_.tracker;
  manifest << "windows " << tracker.window_lengths.size();
  for (double w : tracker.window_lengths) manifest << " " << w;
  manifest << "\n";
  manifest << "landmarks " << tracker.landmark_ages.size();
  for (double l : tracker.landmark_ages) manifest << " " << l;
  manifest << "\n";
  manifest << "ewma_tau " << tracker.ewma_tau << "\n";
  manifest << "epsilon " << tracker.epsilon << "\n";
  manifest << "counters " << counters.items_registered << " "
           << counters.events_ingested << " " << counters.queries_answered << " "
           << counters.items_retired << "\n";
  manifest << "shards " << num_shards << "\n";
  for (size_t sh = 0; sh < num_shards; ++sh) {
    manifest << ShardFileName(sh) << " " << shard_crc[sh] << " " << shard_bytes[sh]
             << " " << shard_items[sh] << "\n";
  }
  HORIZON_RETURN_IF_ERROR(
      io::WriteFileAtomic(ckpt + "/MANIFEST", io::WrapCrcFrame(manifest.str())));
  // Commit point: once CURRENT names the new directory, the checkpoint is
  // the one Restore will load.
  HORIZON_RETURN_IF_ERROR(io::WriteFileAtomic(dir + "/CURRENT", name + "\n"));

  // GC: drop checkpoints older than the committed one's predecessor
  // (including partial directories left by crashed attempts).
  for (const std::string& entry : io::ListDir(dir)) {
    if (const auto e = ParseCheckpointEpoch(entry)) {
      if (*e + 1 < epoch) io::RemoveTree(dir + "/" + entry);
    }
  }
  return Status::Ok();
}

Status PredictionService::Restore(const std::string& dir) {
  const obs::ScopedTimer latency(m_restore_latency_);
  // Barrier op: in-flight events against the pre-restore state must be
  // applied (to the state being replaced) before the swap, not smeared
  // into the restored state afterwards.
  DrainAllQueues();
  const auto current = io::ReadFile(dir + "/CURRENT");
  if (!current.ok()) {
    if (current.code() == StatusCode::kNotFound) {
      return CountError(
          Status::NotFound("no committed checkpoint under " + dir));
    }
    return CountError(current.status());
  }
  const std::string name = Trim(*current);
  if (!ParseCheckpointEpoch(name).has_value()) {
    return CountError(Status::Corruption("CURRENT names no valid checkpoint"));
  }
  const std::string ckpt = dir + "/" + name;

  const auto manifest_file = io::ReadFile(ckpt + "/MANIFEST");
  if (!manifest_file.ok()) {
    return CountError(Status::Corruption(
        "checkpoint manifest unreadable: " + manifest_file.status().ToString()));
  }
  const auto manifest = io::UnwrapCrcFrame(*manifest_file);
  if (!manifest.ok()) return CountError(manifest.status());

  std::istringstream is(*manifest);
  std::string magic, version, key;
  uint64_t epoch = 0;
  uint32_t model_crc = 0;
  size_t model_size = 0;
  if (!(is >> magic >> version) || magic != "manifest" || version != "v1") {
    return CountError(Status::Corruption("manifest: bad magic/version"));
  }
  if (!(is >> key >> epoch) || key != "epoch") {
    return CountError(Status::Corruption("manifest: missing epoch"));
  }
  if (!(is >> key >> model_crc >> model_size) || key != "model") {
    return CountError(Status::Corruption("manifest: missing model digest"));
  }
  uint32_t qforest_crc = 0;
  size_t qforest_size = 0;
  if (!(is >> key >> qforest_crc >> qforest_size) || key != "qforest") {
    return CountError(Status::Corruption("manifest: missing qforest digest"));
  }

  // The restored trackers only make sense if this service interprets their
  // state with the same window/landmark layout and EWMA constants.
  const stream::TrackerConfig& tracker = config_.tracker;
  size_t n = 0;
  if (!(is >> key >> n) || key != "windows") {
    return CountError(Status::Corruption("manifest: missing windows"));
  }
  if (n != tracker.window_lengths.size()) {
    return CountError(
        Status::ConfigMismatch("checkpoint uses a different window layout"));
  }
  for (size_t i = 0; i < n; ++i) {
    double w = 0.0;
    if (!(is >> w)) {
      return CountError(Status::Corruption("manifest: truncated windows"));
    }
    if (w != tracker.window_lengths[i]) {
      return CountError(
          Status::ConfigMismatch("checkpoint uses a different window layout"));
    }
  }
  if (!(is >> key >> n) || key != "landmarks") {
    return CountError(Status::Corruption("manifest: missing landmarks"));
  }
  if (n != tracker.landmark_ages.size()) {
    return CountError(
        Status::ConfigMismatch("checkpoint uses a different landmark layout"));
  }
  for (size_t i = 0; i < n; ++i) {
    double l = 0.0;
    if (!(is >> l)) {
      return CountError(Status::Corruption("manifest: truncated landmarks"));
    }
    if (l != tracker.landmark_ages[i]) {
      return CountError(
          Status::ConfigMismatch("checkpoint uses a different landmark layout"));
    }
  }
  double ewma_tau = 0.0, epsilon = 0.0;
  if (!(is >> key >> ewma_tau) || key != "ewma_tau") {
    return CountError(Status::Corruption("manifest: missing ewma_tau"));
  }
  if (ewma_tau != tracker.ewma_tau) {
    return CountError(
        Status::ConfigMismatch("checkpoint uses a different ewma_tau"));
  }
  if (!(is >> key >> epsilon) || key != "epsilon") {
    return CountError(Status::Corruption("manifest: missing epsilon"));
  }
  if (epsilon != tracker.epsilon) {
    return CountError(
        Status::ConfigMismatch("checkpoint uses a different epsilon"));
  }
  ServiceStats counters;
  if (!(is >> key >> counters.items_registered >> counters.events_ingested >>
        counters.queries_answered >> counters.items_retired) ||
      key != "counters") {
    return CountError(Status::Corruption("manifest: missing counters"));
  }
  size_t num_shard_files = 0;
  if (!(is >> key >> num_shard_files) || key != "shards" ||
      num_shard_files > 1u << 20) {
    return CountError(Status::Corruption("manifest: bad shard table"));
  }

  // Bit-identical predictions require the identical model.
  const std::string model_blob = model_->Serialize();
  if (io::Crc32(model_blob) != model_crc || model_blob.size() != model_size) {
    return CountError(Status::ConfigMismatch(
        "checkpoint was written by a different model (serialization digest "
        "mismatch)"));
  }
  // Same contract for the quantized companions: recompiling them from the
  // live model must reproduce the checkpointed blob byte for byte, or the
  // quantized query path would disagree with whoever wrote the checkpoint.
  const std::string qforest_blob = model_->SerializeQuantized();
  if (io::Crc32(qforest_blob) != qforest_crc ||
      qforest_blob.size() != qforest_size) {
    return CountError(Status::ConfigMismatch(
        "checkpoint was written by a different quantized forest (digest "
        "mismatch)"));
  }
  const auto qforest_file = io::ReadFile(ckpt + "/model.qforest");
  if (!qforest_file.ok()) {
    return CountError(
        Status::Corruption("checkpoint qforest file missing or unreadable"));
  }
  const auto qforest_payload = io::UnwrapCrcFrame(*qforest_file);
  if (!qforest_payload.ok() || *qforest_payload != qforest_blob) {
    return CountError(Status::Corruption("checkpoint qforest file damaged"));
  }

  // Stage every item first; the live service is only touched once the
  // whole checkpoint has been read and verified.
  std::vector<std::pair<int64_t, Item>> staged;
  for (size_t f = 0; f < num_shard_files; ++f) {
    std::string file;
    uint32_t crc = 0;
    size_t bytes = 0, items = 0;
    if (!(is >> file >> crc >> bytes >> items)) {
      return CountError(Status::Corruption("manifest: truncated shard table"));
    }
    if (file.find('/') != std::string::npos) {
      return CountError(Status::Corruption("manifest: shard name escapes dir"));
    }
    const auto raw = io::ReadFile(ckpt + "/" + file);
    if (!raw.ok() || raw->size() != bytes || io::Crc32(*raw) != crc) {
      return CountError(
          Status::Corruption("shard file " + file + " missing or damaged"));
    }
    const auto payload = io::UnwrapCrcFrame(*raw);
    if (!payload.ok()) return CountError(payload.status());
    std::istringstream ss(*payload);
    std::string smagic, sversion;
    size_t num_items = 0;
    if (!(ss >> smagic >> sversion) || smagic != "shard" || sversion != "v1") {
      return CountError(Status::Corruption("shard file: bad magic/version"));
    }
    if (!(ss >> num_items) || num_items != items) {
      return CountError(Status::Corruption("shard file: item count mismatch"));
    }
    for (size_t i = 0; i < num_items; ++i) {
      int64_t id = 0;
      datagen::PageProfile page;
      datagen::PostProfile post;
      if (!(ss >> id)) {
        return CountError(Status::Corruption("shard file: truncated item id"));
      }
      if (!DeserializePage(ss, &page) || !DeserializePost(ss, &post)) {
        return CountError(Status::Corruption("shard file: bad item profile"));
      }
      size_t blob_size = 0;
      if (!(ss >> blob_size) || blob_size > 1u << 24) {
        return CountError(Status::Corruption("shard file: bad tracker size"));
      }
      ss.ignore(1);  // the newline after the size
      std::string blob(blob_size, '\0');
      if (!ss.read(blob.data(), static_cast<std::streamsize>(blob_size))) {
        return CountError(Status::Corruption("shard file: truncated tracker"));
      }
      Item item{stream::CascadeTracker(0.0, tracker), page, post};
      if (!item.tracker.Deserialize(blob)) {
        return CountError(Status::Corruption("shard file: bad tracker state"));
      }
      staged.emplace_back(id, std::move(item));
    }
  }

  // Swap the staged state in.  Items re-shard by id hash, so a restored
  // service may even use a different shard count than the writer.
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    ApplyClear(*shard);
  }
  for (auto& [id, item] : staged) {
    Shard& shard = *shards_[ShardOf(id)];
    MutexLock lock(shard.mu);
    ApplyInsert(shard, id, std::move(item));
  }
  if (async_) {
    // Republish every shard so queries (and enqueue-time existence
    // checks) see the restored state immediately.
    for (const auto& shard : shards_) {
      MutexLock lock(shard->mu);
      PublishView(*shard, epochs_);
    }
  }
  // order: relaxed (all five); Restore runs before the service takes
  // traffic -- publication to other threads happens when the caller
  // hands the service over, and stats() reads are relaxed-paired.
  live_items_.store(staged.size(), std::memory_order_relaxed);
  m_live_items_->Set(static_cast<double>(staged.size()));
  // order: relaxed; see above.
  items_registered_.store(counters.items_registered, std::memory_order_relaxed);
  // order: relaxed; see above.
  events_ingested_.store(counters.events_ingested, std::memory_order_relaxed);
  // order: relaxed; see above.
  queries_answered_.store(counters.queries_answered, std::memory_order_relaxed);
  // order: relaxed; see above.
  items_retired_.store(counters.items_retired, std::memory_order_relaxed);
  return Status::Ok();
}

ServiceStats PredictionService::stats() const {
  ServiceStats out;
  // order: relaxed (all four); statistics snapshot paired with the
  // relaxed counter updates -- fields may be mutually inconsistent by
  // a few events, which the DST conservation checks tolerate by
  // draining (Flush) first.
  out.items_registered = items_registered_.load(std::memory_order_relaxed);
  // order: relaxed; see above.
  out.events_ingested = events_ingested_.load(std::memory_order_relaxed);
  // order: relaxed; see above.
  out.queries_answered = queries_answered_.load(std::memory_order_relaxed);
  // order: relaxed; see above.
  out.items_retired = items_retired_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace horizon::serving
